// Tests for the profiling layer: the trace ring buffers and their Chrome
// export, the perf-counter fallback path, the zero-work imbalance gauge,
// the trace-drop fault, and the ihtl_profile CLI end to end.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "check/oracle.h"
#include "cli/commands.h"
#include "parallel/parallel_for.h"
#include "parallel/thread_pool.h"
#include "telemetry/json.h"
#include "telemetry/metrics.h"
#include "telemetry/perf_counters.h"
#include "telemetry/report.h"
#include "telemetry/trace.h"

namespace ihtl {
namespace {

using telemetry::JsonValue;
using telemetry::MetricsRegistry;
using telemetry::ScopedSpan;
using telemetry::TraceBuffer;
using telemetry::TraceEventKind;

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// RAII active-buffer installer so a failing assertion can't leak a
/// dangling process-wide buffer into later tests.
struct ActiveTrace {
  explicit ActiveTrace(TraceBuffer* b) { prev = TraceBuffer::set_active(b); }
  ~ActiveTrace() { TraceBuffer::set_active(prev); }
  TraceBuffer* prev;
};

// ------------------------------------------------------------- TraceBuffer

TEST(TraceBuffer, RecordsAndExportsEvents) {
  TraceBuffer buf(2, 16);
  const std::uint32_t name = buf.intern("work");
  EXPECT_NE(name, 0u);
  EXPECT_EQ(buf.intern("work"), name);  // interning is idempotent
  buf.record(TraceEventKind::chunk, name, 100, 50, 0, 10);
  buf.record(TraceEventKind::steal, name, 200, 25, 10, 20);
  EXPECT_EQ(buf.recorded(), 2u);
  EXPECT_EQ(buf.dropped(), 0u);

  const JsonValue doc = buf.to_chrome_trace();
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->items().size(), 2u);
  const JsonValue& first = events->items()[0];
  EXPECT_EQ(first.find("name")->as_string(), "work");
  EXPECT_EQ(first.find("ph")->as_string(), "X");
  EXPECT_DOUBLE_EQ(first.find("ts")->as_number(), 0.1);  // 100 ns = 0.1 us
  const JsonValue* args = first.find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_DOUBLE_EQ(args->find("hi")->as_number(), 10.0);
}

TEST(TraceBuffer, WrapAroundUnderConcurrentWriters) {
  // Many writers, tiny rings: most events must be overwritten, none may
  // crash or corrupt the export, and the drop accounting must add up.
  constexpr std::size_t kCapacity = 32;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 5000;
  TraceBuffer buf(2, kCapacity);  // 2 rings: writers share rings on purpose
  const std::uint32_t name = buf.intern("storm");
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&buf, name] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        buf.record(TraceEventKind::span, name, i, 1);
      }
    });
  }
  for (auto& w : writers) w.join();

  EXPECT_EQ(buf.recorded(), kThreads * kPerThread);
  // Retained events are bounded by the total ring capacity; the rest must
  // be counted as dropped.
  EXPECT_GE(buf.dropped(), buf.recorded() - 2 * kCapacity);
  const JsonValue doc = buf.to_chrome_trace();
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_LE(events->items().size(), 2 * kCapacity);
  EXPECT_GT(events->items().size(), 0u);
  const JsonValue* other = doc.find("otherData");
  ASSERT_NE(other, nullptr);
  EXPECT_DOUBLE_EQ(other->find("recorded_events")->as_number(),
                   static_cast<double>(kThreads * kPerThread));
}

TEST(TraceBuffer, ChromeTraceJsonRoundTrips) {
  // The export must be well-formed JSON that our own parser accepts, with
  // the keys chrome://tracing requires on every event.
  TraceBuffer buf(1, 64);
  ActiveTrace guard(&buf);
  ThreadPool pool(2);
  std::atomic<std::uint64_t> sum{0};
  parallel_for(pool, 0, 1000, [&](std::uint64_t i, std::size_t) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  {
    ScopedSpan span(nullptr, "outer");  // null registry still traces
  }
  EXPECT_GT(buf.recorded(), 0u);

  const JsonValue parsed = JsonValue::parse(buf.to_chrome_trace().dump());
  const JsonValue* events = parsed.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_GT(events->items().size(), 0u);
  for (const JsonValue& ev : events->items()) {
    for (const char* key : {"name", "cat", "ph", "ts", "dur", "pid", "tid"}) {
      EXPECT_NE(ev.find(key), nullptr) << "missing " << key;
    }
    EXPECT_EQ(ev.find("ph")->as_string(), "X");
  }
}

TEST(TraceBuffer, SpanRecordsIntoActiveBuffer) {
  TraceBuffer buf(1, 64);
  {
    ActiveTrace guard(&buf);
    ScopedSpan outer(nullptr, "a");
    { ScopedSpan inner(nullptr, "b"); }
  }
  ASSERT_EQ(buf.recorded(), 2u);
  const JsonValue doc = buf.to_chrome_trace();
  const auto& events = doc.find("traceEvents")->items();
  // Inner span stops first, so it exports first; paths are '/'-joined.
  EXPECT_EQ(events[0].find("name")->as_string(), "a/b");
  EXPECT_EQ(events[1].find("name")->as_string(), "a");
}

TEST(TraceBuffer, DropAllDiscardsButCounts) {
  TraceBuffer buf(1, 64);
  buf.set_drop_all(true);
  buf.record(TraceEventKind::span, 0, 0, 1);
  buf.record(TraceEventKind::span, 0, 0, 1);
  EXPECT_EQ(buf.recorded(), 0u);
  EXPECT_EQ(buf.dropped(), 2u);
  EXPECT_TRUE(buf.to_chrome_trace().find("traceEvents")->items().empty());
}

TEST(TraceDropFault, PipelineDegradesGracefully) {
  check::TraceDropFault fault;
  ThreadPool pool(2);
  std::atomic<std::uint64_t> sum{0};
  parallel_for(pool, 0, 500, [&](std::uint64_t i, std::size_t) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  { ScopedSpan span(nullptr, "faulted"); }
  // The work itself is unaffected; every trace event is discarded but
  // accounted for.
  EXPECT_EQ(sum.load(), 500u * 499u / 2u);
  EXPECT_GT(fault.dropped(), 0u);
}

// ---------------------------------------------------------- perf fallback

TEST(PerfCounters, ForcedUnavailableReportsCleanly) {
  telemetry::perf::force_unavailable("forced by test");
  EXPECT_FALSE(telemetry::perf::enable());
  EXPECT_TRUE(telemetry::perf::enabled());
  EXPECT_FALSE(telemetry::perf::available());
  EXPECT_EQ(telemetry::perf::unavailable_reason(), "forced by test");

  const telemetry::PerfCounterValues v =
      telemetry::perf::snapshot_this_thread();
  EXPECT_FALSE(v.available);
  EXPECT_EQ(v.cycles, 0u);

  // A registry whose status says "unavailable" must emit an explicit
  // hw_counters section with available:false — never abort, never omit.
  MetricsRegistry reg(2);
  reg.set_hw_status(false, telemetry::perf::unavailable_reason());
  { ScopedSpan span(reg, "phase"); }
  const JsonValue doc = telemetry::metrics_to_json(reg);
  const JsonValue* hw = doc.find("hw_counters");
  ASSERT_NE(hw, nullptr);
  EXPECT_FALSE(hw->find("available")->as_bool());
  EXPECT_EQ(hw->find("reason")->as_string(), "forced by test");
  // The span itself still records (software timing is independent of HW).
  EXPECT_NE(doc.find("spans")->find("phase"), nullptr);

  telemetry::perf::clear_forced_unavailable();
  telemetry::perf::disable();
}

TEST(PerfCounters, DeltaClampsAndAccumulates) {
  telemetry::PerfCounterValues a, b;
  a.available = b.available = true;
  a.cycles = 100;
  b.cycles = 150;
  b.instructions = 75;
  const auto d = b.delta_since(a);
  EXPECT_TRUE(d.available);
  EXPECT_EQ(d.cycles, 50u);
  EXPECT_EQ(d.instructions, 75u);
  // Backwards wobble (multiplex scaling) clamps to zero, never underflows.
  const auto neg = a.delta_since(b);
  EXPECT_EQ(neg.cycles, 0u);

  telemetry::PerfCounterValues sum;
  sum.accumulate(d);
  sum.accumulate(d);
  EXPECT_EQ(sum.cycles, 100u);
  EXPECT_DOUBLE_EQ(sum.ipc(), 1.5);
  // Unavailable deltas are ignored entirely.
  telemetry::PerfCounterValues unavailable;
  unavailable.cycles = 999;
  sum.accumulate(unavailable);
  EXPECT_EQ(sum.cycles, 100u);
}

// ------------------------------------------------------- imbalance gauge

TEST(WorkerStats, ZeroChunksExportsImbalanceOne) {
  ThreadPool pool(3);
  pool.reset_stats();
  MetricsRegistry reg(2);
  pool.export_metrics(reg, "pool");
  const auto imbalance = reg.gauge("pool.imbalance");
  ASSERT_TRUE(imbalance.has_value());
  EXPECT_DOUBLE_EQ(*imbalance, 1.0);  // no work = balanced, never NaN
}

// -------------------------------------------------------- cmd_profile CLI

TEST(CmdProfile, EndToEndFallbackReport) {
  // Force the no-HW path so the test is deterministic on any machine, and
  // verify the CLI exits 0 with an explicit unavailable report plus a
  // loadable Chrome trace.
  const std::string out = testing::TempDir() + "ihtl_profile_report.json";
  const std::string trace = testing::TempDir() + "ihtl_profile_trace.json";
  const char* argv[] = {
      "ihtl_profile", "--dataset",   "TwtrMpi",     "--gen-scale",
      "tiny",         "--iterations", "2",          "--repeat",
      "2",            "--threads",    "2",          "--no-hw",
      "--fallback-ok", "--per-block", "--out",      out.c_str(),
      "--trace-out",  trace.c_str(),
  };
  const int rc = cmd_profile(static_cast<int>(std::size(argv)), argv);
  EXPECT_EQ(rc, 0);

  const JsonValue report = JsonValue::parse(slurp(out));
  const JsonValue* hw = report.find("hw_counters");
  ASSERT_NE(hw, nullptr);
  EXPECT_FALSE(hw->find("available")->as_bool());
  const JsonValue* profile = report.find("profile");
  ASSERT_NE(profile, nullptr);
  const JsonValue* phases = profile->find("phases");
  ASSERT_NE(phases, nullptr);
  for (const char* phase : {"reset", "push", "merge", "pull"}) {
    const JsonValue* entry = phases->find(phase);
    ASSERT_NE(entry, nullptr) << phase;
    EXPECT_GE(entry->find("seconds_total")->as_number(), 0.0);
    // Without HW counters the rows must omit the hw block, not fake it.
    EXPECT_EQ(entry->find("hw"), nullptr) << phase;
  }
  ASSERT_NE(profile->find("pull_baseline"), nullptr);
  // The per-rep pool stats reset keeps the imbalance gauge finite.
  const JsonValue* gauges = report.find("gauges");
  ASSERT_NE(gauges, nullptr);
  const JsonValue* imbalance = gauges->find("pool.imbalance");
  ASSERT_NE(imbalance, nullptr);
  EXPECT_GE(imbalance->as_number(), 1.0);

  const JsonValue trace_doc = JsonValue::parse(slurp(trace));
  const JsonValue* events = trace_doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_GT(events->items().size(), 0u);

  std::remove(out.c_str());
  std::remove(trace.c_str());
  telemetry::perf::clear_forced_unavailable();
  telemetry::perf::disable();
}

TEST(CmdProfile, RequireHwContradictsNoHw) {
  const char* argv[] = {"ihtl_profile", "--dataset", "TwtrMpi",
                        "--gen-scale",  "tiny",      "--no-hw",
                        "--require-hw"};
  EXPECT_EQ(cmd_profile(static_cast<int>(std::size(argv)), argv), 1);
}

}  // namespace
}  // namespace ihtl
