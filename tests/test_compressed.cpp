// Tests for the Section 6 compressed-topology extension.
#include <gtest/gtest.h>

#include "baselines/spmv.h"
#include "core/ihtl_compressed.h"
#include "gen/datasets.h"
#include "graph/compressed.h"
#include "test_util.h"

namespace ihtl {
namespace {

using testing::expect_values_near;
using testing::random_values;
using testing::small_rmat;
using testing::small_web;

// ------------------------------------------------------ CompressedAdjacency

TEST(CompressedAdjacency, RoundTripSmall) {
  const Graph g = testing::figure2_graph();
  const CompressedAdjacency c = CompressedAdjacency::encode(g.in());
  Adjacency decoded = c.decode();
  Adjacency expected = g.in();
  expected.sort_all_neighbor_lists();
  EXPECT_EQ(decoded.offsets, expected.offsets);
  EXPECT_EQ(decoded.targets, expected.targets);
}

TEST(CompressedAdjacency, RoundTripSkewedGraphs) {
  for (const auto& name : {"TwtrMpi", "SK"}) {
    const Graph g = make_dataset(name, DatasetScale::tiny);
    const CompressedAdjacency c = CompressedAdjacency::encode(g.in());
    EXPECT_EQ(c.num_edges(), g.num_edges());
    Adjacency decoded = c.decode();
    Adjacency expected = g.in();
    expected.sort_all_neighbor_lists();
    EXPECT_EQ(decoded.targets, expected.targets) << name;
  }
}

TEST(CompressedAdjacency, HandlesDuplicateNeighbors) {
  // Multigraph: parallel edges must survive the gap coding (zero deltas).
  const std::vector<Edge> edges = {{0, 1}, {0, 1}, {0, 1}, {1, 0}};
  const Graph g = build_graph(2, edges);
  const CompressedAdjacency c = CompressedAdjacency::encode(g.out());
  EXPECT_EQ(c.degree(0), 3u);
  std::vector<vid_t> nbrs;
  c.for_each_neighbor(0, [&](vid_t u) { nbrs.push_back(u); });
  EXPECT_EQ(nbrs, (std::vector<vid_t>{1, 1, 1}));
}

TEST(CompressedAdjacency, EmptyAndIsolatedVertices) {
  const std::vector<Edge> edges = {{2, 4}};
  const Graph g = build_graph(5, edges);
  const CompressedAdjacency c = CompressedAdjacency::encode(g.out());
  EXPECT_EQ(c.degree(0), 0u);
  EXPECT_EQ(c.degree(2), 1u);
  int calls = 0;
  c.for_each_neighbor(0, [&](vid_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(CompressedAdjacency, PayloadSmallerThanRawOnLocalGraph) {
  // Web graphs have strong neighbour locality -> small gaps -> ~1-2 B/edge
  // vs 4 B/edge raw.
  const Graph g = small_web(1u << 12);
  const CompressedAdjacency c = CompressedAdjacency::encode(g.out());
  EXPECT_LT(c.payload_bytes(), g.num_edges() * sizeof(vid_t));
}

TEST(CompressedAdjacency, VarintHandlesLargeIds) {
  // Gap of ~2^31 needs a 5-byte varint.
  Adjacency adj;
  adj.offsets = {0, 2};
  adj.targets = {0, 0x7FFFFFFFu};
  // Build a fake 2^31-vertex adjacency via direct struct (decode only reads
  // degrees/offsets, never validates n).
  const CompressedAdjacency c = CompressedAdjacency::encode(adj);
  std::vector<vid_t> nbrs;
  c.for_each_neighbor(0, [&](vid_t u) { nbrs.push_back(u); });
  EXPECT_EQ(nbrs, (std::vector<vid_t>{0, 0x7FFFFFFFu}));
}

// ----------------------------------------------------- CompressedIhtlGraph

IhtlConfig cfg_with_hubs(vid_t hubs) {
  IhtlConfig cfg;
  cfg.buffer_bytes = hubs * sizeof(value_t);
  return cfg;
}

TEST(CompressedIhtl, TopologySmallerThanUncompressed) {
  const Graph g = small_rmat(11, 16);
  const IhtlGraph ig = build_ihtl_graph(g, cfg_with_hubs(256));
  const CompressedIhtlGraph cig = CompressedIhtlGraph::from(ig);
  EXPECT_LT(cig.topology_bytes(), ig.topology_bytes());
  EXPECT_EQ(cig.num_edges(), ig.num_edges());
  EXPECT_EQ(cig.num_hubs(), ig.num_hubs());
}

class CompressedSpmvTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CompressedSpmvTest, MatchesSerialPull) {
  const Graph g = small_rmat(10, 8);
  ThreadPool pool(GetParam());
  const IhtlGraph ig = build_ihtl_graph(g, cfg_with_hubs(32));
  const CompressedIhtlGraph cig = CompressedIhtlGraph::from(ig);

  const auto x = random_values(g.num_vertices(), 7);
  std::vector<value_t> expected(g.num_vertices());
  spmv_pull_serial(g, x, expected);

  // Run in relabeled space, compare in original space.
  const auto& o2n = cig.old_to_new();
  std::vector<value_t> xp(g.num_vertices()), yp(g.num_vertices());
  for (vid_t v = 0; v < g.num_vertices(); ++v) xp[o2n[v]] = x[v];
  compressed_ihtl_spmv(pool, cig, xp, yp);
  std::vector<value_t> y(g.num_vertices());
  for (vid_t v = 0; v < g.num_vertices(); ++v) y[v] = yp[o2n[v]];
  expect_values_near(expected, y, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Threads, CompressedSpmvTest,
                         ::testing::Values(1, 2, 4));

TEST(CompressedIhtl, MinMonoidWorks) {
  const Graph g = small_web(1u << 10);
  ThreadPool pool(2);
  const IhtlGraph ig = build_ihtl_graph(g, cfg_with_hubs(16));
  const CompressedIhtlGraph cig = CompressedIhtlGraph::from(ig);
  const auto x = random_values(g.num_vertices(), 9);
  std::vector<value_t> expected(g.num_vertices());
  spmv_pull_serial<MinMonoid>(g, x, expected);
  const auto& o2n = cig.old_to_new();
  std::vector<value_t> xp(g.num_vertices()), yp(g.num_vertices());
  for (vid_t v = 0; v < g.num_vertices(); ++v) xp[o2n[v]] = x[v];
  compressed_ihtl_spmv<MinMonoid>(pool, cig, xp, yp);
  std::vector<value_t> y(g.num_vertices());
  for (vid_t v = 0; v < g.num_vertices(); ++v) y[v] = yp[o2n[v]];
  expect_values_near(expected, y);
}

TEST(CompressedIhtl, ZeroHubGraph) {
  std::vector<Edge> edges;
  for (vid_t v = 0; v < 32; ++v) edges.push_back({v, (v + 1) % 32});
  const Graph g = build_graph(32, edges);
  ThreadPool pool(2);
  const IhtlGraph ig = build_ihtl_graph(g, cfg_with_hubs(4));
  const CompressedIhtlGraph cig = CompressedIhtlGraph::from(ig);
  std::vector<value_t> x(32, 1.0), y(32, -1.0);
  compressed_ihtl_spmv(pool, cig, x, y);
  for (vid_t v = 0; v < 32; ++v) EXPECT_DOUBLE_EQ(y[v], 1.0);
}

}  // namespace
}  // namespace ihtl
