// Randomized property sweeps ("fuzz" tier), now driven by the check
// subsystem: each case is one point of the diff runner's seeded lattice
// (CaseParams::draw), so any failure here is replayable verbatim with
// `ihtl_check --replay <seed>`. On top of the lattice sweep, parameterized
// edge-case shapes pin down the corners the lattice only samples: non-power-
// of-two vertex counts, zero-edge and single-vertex graphs, and the all-hub /
// zero-hub threshold extremes — each across every oracle workload.
#include <gtest/gtest.h>

#include "baselines/spmv.h"
#include "check/diff_runner.h"
#include "check/oracle.h"
#include "core/ihtl_spmv.h"
#include "graph/permute.h"
#include "reorder/reorder.h"
#include "test_util.h"

namespace ihtl {
namespace {

using check::CaseParams;
using check::CaseResult;
using check::GenFamily;
using check::HubPolicy;
using check::OracleOptions;
using check::OracleReport;
using check::Workload;
using testing::expect_values_near;
using testing::random_values;

constexpr std::uint64_t kBaseSeed = 2026;

class FuzzTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  std::uint64_t seed() const {
    return check::point_seed(kBaseSeed, GetParam());
  }
};

/// The full differential oracle on one lattice point — the same run
/// `ihtl_check` performs, so CI failures replay outside gtest too.
TEST_P(FuzzTest, LatticePointIsClean) {
  const CaseResult r = check::run_point(seed());
  EXPECT_TRUE(r.report.ok) << r.params.describe() << "\n"
                           << r.report.summary() << "\nreplay: ihtl_check"
                           << " --replay " << r.params.seed;
}

TEST_P(FuzzTest, GraphInvariants) {
  const Graph g = check::make_case_graph(CaseParams::draw(seed()));
  EXPECT_TRUE(g.valid());
  eid_t in_sum = 0, out_sum = 0;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    in_sum += g.in_degree(v);
    out_sum += g.out_degree(v);
  }
  EXPECT_EQ(in_sum, g.num_edges());
  EXPECT_EQ(out_sum, g.num_edges());
}

TEST_P(FuzzTest, ReorderingsStayPermutations) {
  const Graph g = check::make_case_graph(CaseParams::draw(seed()));
  EXPECT_TRUE(is_permutation(slashburn_order(g)));
  EXPECT_TRUE(is_permutation(rabbit_order(g)));
  EXPECT_TRUE(is_permutation(degree_order(g)));
}

TEST_P(FuzzTest, PushPullAgreeOnRandomGraph) {
  const CaseParams p = CaseParams::draw(seed());
  const Graph g = check::make_case_graph(p);
  ThreadPool pool(p.threads);
  const auto x = random_values(g.num_vertices(), p.x_seed);
  std::vector<value_t> expected(g.num_vertices()), y(g.num_vertices());
  spmv_pull_serial(g, x, expected);
  spmv_push_buffered(pool, g, x, y);
  expect_values_near(expected, y, 1e-9);
  spmv_push_atomic(pool, g, x, y);
  expect_values_near(expected, y, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         ::testing::Range<std::uint64_t>(0, 20));

/// A pinned edge-case shape: the lattice families cover these statistically,
/// the named cases guarantee them on every run.
struct EdgeCaseSpec {
  const char* name;
  GenFamily family;
  vid_t num_vertices;
  HubPolicy policy;
};

void PrintTo(const EdgeCaseSpec& spec, std::ostream* os) { *os << spec.name; }

class EdgeCaseTest : public ::testing::TestWithParam<EdgeCaseSpec> {};

TEST_P(EdgeCaseTest, AllWorkloadsMatchReference) {
  const EdgeCaseSpec& spec = GetParam();
  // A fixed lattice point supplies the build options / config / x_seed; the
  // shape under test overrides the structural fields.
  CaseParams p = CaseParams::draw(check::point_seed(kBaseSeed, 12345));
  p.family = spec.family;
  p.num_vertices = spec.num_vertices;
  p.hub_policy = spec.policy;
  p.threads = 3;
  const Graph g = check::make_case_graph(p);
  ThreadPool pool(p.threads);
  for (int w = 0; w < check::kNumWorkloads; ++w) {
    OracleOptions opt = p.oracle_options();
    opt.workload = static_cast<Workload>(w);
    const OracleReport rep = check::run_oracle(pool, g, p.ihtl_config(), opt);
    EXPECT_TRUE(rep.ok) << spec.name << ": " << rep.summary();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EdgeCaseTest,
    ::testing::Values(
        // Non-power-of-two vertex counts across the generator families.
        EdgeCaseSpec{"rmat_n37", GenFamily::rmat, 37, HubPolicy::standard},
        EdgeCaseSpec{"web_n1000", GenFamily::web, 1000, HubPolicy::standard},
        EdgeCaseSpec{"er_n1023", GenFamily::erdos_renyi, 1023,
                     HubPolicy::standard},
        // Degenerate graphs.
        EdgeCaseSpec{"zero_edges_n5", GenFamily::empty_edges, 5,
                     HubPolicy::standard},
        EdgeCaseSpec{"single_vertex", GenFamily::single_vertex, 1,
                     HubPolicy::standard},
        EdgeCaseSpec{"ring_n97", GenFamily::ring, 97, HubPolicy::standard},
        EdgeCaseSpec{"star_n64", GenFamily::star, 64, HubPolicy::standard},
        // Hub-selection threshold extremes.
        EdgeCaseSpec{"all_hub_rmat", GenFamily::rmat, 211, HubPolicy::all_hub},
        EdgeCaseSpec{"zero_hub_web", GenFamily::web, 211, HubPolicy::zero_hub},
        EdgeCaseSpec{"all_hub_star", GenFamily::star, 64, HubPolicy::all_hub},
        EdgeCaseSpec{"zero_hub_ring", GenFamily::ring, 97,
                     HubPolicy::zero_hub}),
    [](const ::testing::TestParamInfo<EdgeCaseSpec>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace ihtl
