// Randomized property sweeps ("fuzz" tier): random graphs from every
// generator family x random build options x random iHTL configurations.
// Each case checks the full invariant stack — structural validity,
// permutation validity, exact edge partitioning, and SpMV equivalence
// against the serial pull oracle.
#include <gtest/gtest.h>

#include "baselines/spmv.h"
#include "core/ihtl_spmv.h"
#include "gen/generators.h"
#include "gen/rng.h"
#include "graph/permute.h"
#include "reorder/reorder.h"
#include "test_util.h"

namespace ihtl {
namespace {

using testing::expect_values_near;
using testing::random_values;

/// Builds a random graph whose family/size/options derive from the seed.
Graph random_graph(std::uint64_t seed) {
  Rng rng(seed);
  const std::uint64_t family = rng.next_below(3);
  const auto scale = static_cast<unsigned>(6 + rng.next_below(5));  // 64..1024
  std::vector<Edge> edges;
  vid_t n = vid_t{1} << scale;
  if (family == 0) {
    RmatParams p;
    p.scale = scale;
    p.edge_factor = static_cast<unsigned>(2 + rng.next_below(15));
    p.reciprocity = rng.next_double();
    p.seed = rng.next_u64();
    edges = rmat_edges(p);
  } else if (family == 1) {
    WebParams p;
    p.num_vertices = n;
    p.avg_out_degree = static_cast<unsigned>(2 + rng.next_below(20));
    p.max_out_degree = p.avg_out_degree * 3;
    p.hub_fraction = 0.001 + 0.01 * rng.next_double();
    p.hub_edge_share = rng.next_double();
    p.seed = rng.next_u64();
    edges = web_edges(p);
  } else {
    edges = erdos_renyi_edges(n, n * (1 + rng.next_below(12)), rng.next_u64());
  }
  BuildOptions opt;
  opt.remove_self_loops = rng.next_below(2) == 0;
  opt.dedup = rng.next_below(2) == 0;
  opt.remove_zero_degree = rng.next_below(2) == 0;
  opt.sort_neighbors = true;
  return build_graph(n, edges, opt);
}

class FuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzTest, GraphInvariants) {
  const Graph g = random_graph(GetParam());
  EXPECT_TRUE(g.valid());
  eid_t in_sum = 0, out_sum = 0;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    in_sum += g.in_degree(v);
    out_sum += g.out_degree(v);
  }
  EXPECT_EQ(in_sum, g.num_edges());
  EXPECT_EQ(out_sum, g.num_edges());
}

TEST_P(FuzzTest, IhtlPartitioningAndEquivalence) {
  const std::uint64_t seed = GetParam();
  const Graph g = random_graph(seed);
  Rng rng(seed * 31 + 7);
  IhtlConfig cfg;
  cfg.buffer_bytes = (vid_t{4} << rng.next_below(7)) * sizeof(value_t);
  cfg.admission_ratio = 0.1 + 0.8 * rng.next_double();
  cfg.min_hub_in_degree = 1 + rng.next_below(4);
  const IhtlGraph ig = build_ihtl_graph(g, cfg);
  ASSERT_TRUE(ig.valid(g)) << "seed " << seed;

  ThreadPool pool(1 + rng.next_below(4));
  const auto x = random_values(g.num_vertices(), seed);
  std::vector<value_t> expected(g.num_vertices()), y(g.num_vertices());
  spmv_pull_serial(g, x, expected);
  ihtl_spmv_once(pool, ig, x, y);
  expect_values_near(expected, y, 1e-9);
}

TEST_P(FuzzTest, ReorderingsStayPermutations) {
  const Graph g = random_graph(GetParam());
  EXPECT_TRUE(is_permutation(slashburn_order(g)));
  EXPECT_TRUE(is_permutation(rabbit_order(g)));
  EXPECT_TRUE(is_permutation(degree_order(g)));
}

TEST_P(FuzzTest, PushPullAgreeOnRandomGraph) {
  const std::uint64_t seed = GetParam();
  const Graph g = random_graph(seed);
  ThreadPool pool(2);
  const auto x = random_values(g.num_vertices(), seed + 1);
  std::vector<value_t> expected(g.num_vertices()), y(g.num_vertices());
  spmv_pull_serial(g, x, expected);
  spmv_push_buffered(pool, g, x, y);
  expect_values_near(expected, y, 1e-9);
  spmv_push_atomic(pool, g, x, y);
  expect_values_near(expected, y, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace ihtl
