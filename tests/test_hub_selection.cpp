#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/hub_selection.h"
#include "test_util.h"

namespace ihtl {
namespace {

using testing::figure2_graph;
using testing::small_rmat;
using testing::small_web;

IhtlConfig tiny_cfg(vid_t hubs_per_block) {
  IhtlConfig cfg;
  cfg.buffer_bytes = hubs_per_block * sizeof(value_t);
  cfg.min_hub_in_degree = 2;
  return cfg;
}

TEST(HubSelection, Figure2PicksThePaperHubs) {
  const Graph g = figure2_graph();
  const HubSelection sel = select_hubs(g, tiny_cfg(2));
  ASSERT_GE(sel.hubs.size(), 2u);
  // Paper: vertices 3 and 7 (our 2 and 6) are the in-hubs; they have the
  // two highest in-degrees (5 and 3) so they fill the first flipped block.
  EXPECT_EQ(sel.hubs[0], 2u);
  EXPECT_EQ(sel.hubs[1], 6u);
}

TEST(HubSelection, HubsSortedByDescendingInDegree) {
  const Graph g = small_rmat(10, 8);
  const HubSelection sel = select_hubs(g, tiny_cfg(16));
  for (std::size_t i = 1; i < sel.hubs.size(); ++i) {
    EXPECT_GE(g.in_degree(sel.hubs[i - 1]), g.in_degree(sel.hubs[i]));
  }
}

TEST(HubSelection, HubsAreDistinct) {
  const Graph g = small_rmat(10, 8);
  const HubSelection sel = select_hubs(g, tiny_cfg(32));
  std::set<vid_t> unique(sel.hubs.begin(), sel.hubs.end());
  EXPECT_EQ(unique.size(), sel.hubs.size());
}

TEST(HubSelection, MinHubDegreeIsAccurate) {
  const Graph g = small_rmat(10, 8);
  const HubSelection sel = select_hubs(g, tiny_cfg(16));
  ASSERT_FALSE(sel.hubs.empty());
  eid_t min_deg = ~eid_t{0};
  for (const vid_t h : sel.hubs) min_deg = std::min(min_deg, g.in_degree(h));
  EXPECT_EQ(sel.min_hub_degree, min_deg);
  EXPECT_GE(sel.min_hub_degree, 2u);
}

TEST(HubSelection, AdmissionRuleBoundsBlockSources) {
  // Every admitted block past the first must have > ratio * block1 sources.
  const Graph g = small_rmat(11, 16);
  IhtlConfig cfg = tiny_cfg(8);  // tiny blocks force many of them
  const HubSelection sel = select_hubs(g, cfg);
  ASSERT_GE(sel.num_blocks, 2u) << "test needs multiple blocks";
  ASSERT_EQ(sel.block_sources.size(), sel.num_blocks);
  for (std::size_t b = 1; b < sel.num_blocks; ++b) {
    EXPECT_GT(static_cast<double>(sel.block_sources[b]),
              cfg.admission_ratio * sel.block1_sources)
        << "block " << b;
  }
}

TEST(HubSelection, StricterRatioNeverAddsBlocks) {
  const Graph g = small_rmat(11, 16);
  IhtlConfig loose = tiny_cfg(8);
  loose.admission_ratio = 0.25;
  IhtlConfig strict = tiny_cfg(8);
  strict.admission_ratio = 0.75;
  EXPECT_GE(select_hubs(g, loose).num_blocks,
            select_hubs(g, strict).num_blocks);
}

TEST(HubSelection, MaxBlocksCapRespected) {
  const Graph g = small_rmat(11, 16);
  IhtlConfig cfg = tiny_cfg(4);
  cfg.max_blocks = 3;
  const HubSelection sel = select_hubs(g, cfg);
  EXPECT_LE(sel.num_blocks, 3u);
  EXPECT_LE(sel.hubs.size(), 3u * 4u);
}

TEST(HubSelection, EmptyGraph) {
  const Graph g = build_graph(0, {});
  const HubSelection sel = select_hubs(g, tiny_cfg(4));
  EXPECT_EQ(sel.num_blocks, 0u);
  EXPECT_TRUE(sel.hubs.empty());
}

TEST(HubSelection, GraphWithNoQualifyingHubs) {
  // A chain: every in-degree is 1, below min_hub_in_degree = 2.
  std::vector<Edge> edges;
  for (vid_t v = 0; v + 1 < 10; ++v) edges.push_back({v, v + 1});
  const Graph g = build_graph(10, edges);
  const HubSelection sel = select_hubs(g, tiny_cfg(4));
  EXPECT_EQ(sel.num_blocks, 0u);
  EXPECT_TRUE(sel.hubs.empty());
}

TEST(HubSelection, WebGraphConcentratesEdgesInFewHubs) {
  // Section 5.4's SK observation: a tiny hub fraction captures most edges.
  const Graph g = small_web(1u << 12);
  const HubSelection sel = select_hubs(g, tiny_cfg(64));
  ASSERT_GT(sel.hubs.size(), 0u);
  eid_t hub_edges = 0;
  for (const vid_t h : sel.hubs) hub_edges += g.in_degree(h);
  EXPECT_LT(sel.hubs.size(), g.num_vertices() / 20);
  EXPECT_GT(static_cast<double>(hub_edges), 0.3 * g.num_edges());
}

TEST(HubSelection, BiggerBufferMeansFewerBlocks) {
  const Graph g = small_rmat(11, 16);
  const HubSelection small_buf = select_hubs(g, tiny_cfg(8));
  const HubSelection big_buf = select_hubs(g, tiny_cfg(64));
  EXPECT_GE(small_buf.num_blocks, big_buf.num_blocks);
}

TEST(HubSelection, DeterministicAcrossRuns) {
  const Graph g = small_rmat(10, 8);
  const HubSelection a = select_hubs(g, tiny_cfg(16));
  const HubSelection b = select_hubs(g, tiny_cfg(16));
  EXPECT_EQ(a.hubs, b.hubs);
  EXPECT_EQ(a.num_blocks, b.num_blocks);
}

}  // namespace
}  // namespace ihtl
