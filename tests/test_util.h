// Shared fixtures/helpers for the ihtl test suite.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "gen/generators.h"
#include "gen/rng.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace ihtl::testing {

/// The paper's Figure 2(a) example graph (0-based: paper vertex k -> k-1).
/// In-hubs are vertices 2 and 6 (paper's 3 and 7).
inline Graph figure2_graph(bool sort_neighbors = true) {
  const std::vector<Edge> edges = {
      {0, 2}, {1, 2}, {1, 6}, {2, 5}, {3, 6}, {4, 2}, {4, 6},
      {5, 0}, {5, 2}, {5, 3}, {5, 7}, {6, 1}, {6, 4}, {7, 2},
  };
  return build_graph(8, edges, {.sort_neighbors = sort_neighbors});
}

/// A small deterministic skewed graph for fast structural tests.
inline Graph small_rmat(unsigned scale = 10, unsigned edge_factor = 8,
                        std::uint64_t seed = 123) {
  RmatParams p;
  p.scale = scale;
  p.edge_factor = edge_factor;
  p.seed = seed;
  return build_eval_graph(vid_t{1} << scale, rmat_edges(p));
}

/// A small deterministic web-like graph (asymmetric in-hubs).
inline Graph small_web(vid_t n = 1u << 10, std::uint64_t seed = 5) {
  WebParams p;
  p.num_vertices = n;
  p.seed = seed;
  return build_eval_graph(n, web_edges(p));
}

/// Random input vector with entries in [0, 1).
inline std::vector<value_t> random_values(std::size_t n, std::uint64_t seed) {
  std::vector<value_t> x(n);
  Rng rng(seed);
  for (auto& v : x) v = rng.next_double();
  return x;
}

/// Elementwise comparison with absolute/relative tolerance.
inline void expect_values_near(const std::vector<value_t>& expected,
                               const std::vector<value_t>& actual,
                               double tol = 1e-9) {
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    if (std::isinf(expected[i])) {
      EXPECT_EQ(expected[i], actual[i]) << "at index " << i;
    } else {
      EXPECT_NEAR(expected[i], actual[i],
                  tol * std::max(1.0, std::abs(expected[i])))
          << "at index " << i;
    }
  }
}

}  // namespace ihtl::testing
