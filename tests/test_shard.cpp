// Shard decomposition and ShardedEngine: plan/tiling properties, the S=1
// bitwise-identity contract, multi-shard correctness on boundary shapes
// (ranges not divisible by S, S > n, zero-hub / all-hub / zero-edge
// shards), interleaved scalar/batched calls, the exchange fault hook, and
// the shard axis of the check lattice.
#include <gtest/gtest.h>

#include <cstring>

#include "baselines/spmv.h"
#include "check/shard_check.h"
#include "core/ihtl_spmv.h"
#include "core/shard.h"
#include "core/sharded_engine.h"
#include "test_util.h"

namespace ihtl {
namespace {

using testing::expect_values_near;
using testing::random_values;
using testing::small_rmat;
using testing::small_web;

IhtlConfig cfg_with_hubs(vid_t hubs_per_block) {
  IhtlConfig cfg;
  cfg.buffer_bytes = hubs_per_block * sizeof(value_t);
  return cfg;
}

/// Plans must tile [0, n) exactly, stay block-aligned (no flipped block's
/// hub range straddles a boundary), and keep block ranges contiguous.
void expect_valid_plans(const IhtlGraph& ig,
                        const std::vector<ShardPlan>& plans) {
  ASSERT_FALSE(plans.empty());
  vid_t dst = 0;
  std::size_t block = 0;
  for (std::size_t s = 0; s < plans.size(); ++s) {
    const ShardPlan& p = plans[s];
    EXPECT_EQ(p.index, s);
    EXPECT_EQ(p.dst_begin, dst);
    EXPECT_LE(p.dst_begin, p.dst_end);
    EXPECT_EQ(p.block_begin, block);
    EXPECT_LE(p.block_begin, p.block_end);
    for (std::size_t b = p.block_begin; b < p.block_end; ++b) {
      EXPECT_GE(ig.blocks()[b].hub_begin, p.dst_begin);
      EXPECT_LE(ig.blocks()[b].hub_end, p.dst_end);
    }
    dst = p.dst_end;
    block = p.block_end;
  }
  EXPECT_EQ(dst, ig.num_vertices());
  EXPECT_EQ(block, ig.blocks().size());
}

TEST(PlanShards, TilesDestinationRangeForEverySInRange) {
  const Graph g = small_rmat(9, 8, 77);
  const IhtlGraph ig = build_ihtl_graph(g, cfg_with_hubs(16));
  ASSERT_GT(ig.blocks().size(), 1u);  // multiple atomic units to place
  for (const std::size_t s : {1u, 2u, 3u, 5u, 7u, 16u}) {
    SCOPED_TRACE("shards=" + std::to_string(s));
    const auto plans = plan_shards(ig, s);
    EXPECT_EQ(plans.size(), s);
    expect_valid_plans(ig, plans);
  }
}

TEST(PlanShards, MoreShardsThanVerticesYieldsEmptyTrailingPlans) {
  std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 0}};
  const Graph g = build_graph(3, edges, {});
  const IhtlGraph ig = build_ihtl_graph(g, cfg_with_hubs(4));
  const auto plans = plan_shards(ig, 9);
  EXPECT_EQ(plans.size(), 9u);
  expect_valid_plans(ig, plans);
  std::size_t non_empty = 0;
  for (const ShardPlan& p : plans) non_empty += p.dst_end > p.dst_begin;
  EXPECT_LE(non_empty, 3u);
}

TEST(PlanShards, ZeroEdgeGraphFallsBackToUnitCountBalance) {
  const Graph g = build_graph(64, {}, {});
  const IhtlGraph ig = build_ihtl_graph(g, cfg_with_hubs(8));
  EXPECT_TRUE(ig.blocks().empty());
  const auto plans = plan_shards(ig, 4);
  expect_valid_plans(ig, plans);
  // With no edge weights the split is by destination count.
  for (const ShardPlan& p : plans) EXPECT_EQ(p.dst_end - p.dst_begin, 16u);
}

TEST(PlanShards, ZeroHubGraphPartitionsOnlyTheSparseRange) {
  // Cycle: every in-degree is 1, below min_hub_in_degree — no hubs, no
  // blocks; shards slice the pure sparse range.
  std::vector<Edge> edges;
  for (vid_t v = 0; v < 60; ++v) edges.push_back({v, (v + 1) % 60});
  const Graph g = build_graph(60, edges, {});
  const IhtlGraph ig = build_ihtl_graph(g, cfg_with_hubs(8));
  ASSERT_EQ(ig.num_hubs(), 0u);
  const auto plans = plan_shards(ig, 4);
  expect_valid_plans(ig, plans);
  for (const ShardPlan& p : plans) {
    EXPECT_EQ(p.block_begin, p.block_end);
    EXPECT_GT(p.dst_end, p.dst_begin);
  }
}

TEST(PlanShards, AllHubGraphPartitionsWholeBlocks) {
  // Dense-ish small graph where every vertex with in-edges is a hub and
  // blocks are tiny, so plans are driven purely by block alignment.
  const Graph g = small_rmat(7, 16, 5);
  IhtlConfig cfg = cfg_with_hubs(4);
  cfg.admission_ratio = 0.0;  // admit blocks as long as candidates remain
  cfg.min_hub_in_degree = 1;
  const IhtlGraph ig = build_ihtl_graph(g, cfg);
  ASSERT_GT(ig.blocks().size(), 4u);
  const auto plans = plan_shards(ig, 4);
  expect_valid_plans(ig, plans);
  for (const ShardPlan& p : plans) EXPECT_GT(p.block_end, p.block_begin);
}

// ---------------------------------------------------------------------------

/// Bitwise comparison of ShardedEngine(S) against IhtlEngine on `iters`
/// fed-forward iterations (new-ID space; inputs must make the comparison
/// exact — see each caller).
void expect_bitwise_identical(ThreadPool& pool, const IhtlGraph& ig,
                              std::size_t shards,
                              const std::vector<value_t>& x0,
                              unsigned iters = 3) {
  IhtlEngine<PlusMonoid> reference(ig, pool);
  ShardedEngine<PlusMonoid> sharded(ig, pool, shards);
  std::vector<value_t> x = x0, ya(x0.size()), yb(x0.size());
  for (unsigned it = 0; it < iters; ++it) {
    reference.spmv(x, ya);
    sharded.spmv(x, yb);
    ASSERT_TRUE(ya.size() == 0 ||
                std::memcmp(ya.data(), yb.data(),
                            ya.size() * sizeof(value_t)) == 0)
        << "diverged at iteration " << it << " with " << shards << " shards";
    x = ya;
  }
}

TEST(ShardedEngine, SingleShardIsBitwiseIdenticalAtOneThread) {
  // The pinned regression of the tentpole: --shards 1 must be the
  // unsharded engine bit for bit (same decomposition, same execution
  // order at one thread), on arbitrary floating-point input.
  const Graph g = small_rmat(10, 8, 42);
  const IhtlGraph ig = build_ihtl_graph(g, cfg_with_hubs(32));
  ThreadPool pool(1);
  expect_bitwise_identical(pool, ig, 1,
                           random_values(ig.num_vertices(), 99));
}

TEST(ShardedEngine, IntegerInputsAreBitwiseIdenticalAtAnyShardCount) {
  // Small-integer sums are exact in double under any combine order, so
  // bitwise identity must survive multi-thread scheduling and any S.
  const Graph g = small_web(1u << 10, 3);
  const IhtlGraph ig = build_ihtl_graph(g, cfg_with_hubs(16));
  ThreadPool pool(4);
  std::vector<value_t> x(ig.num_vertices());
  Rng rng(7);
  for (auto& v : x) v = static_cast<value_t>(rng.next_below(8));
  for (const std::size_t s : {1u, 2u, 3u, 4u, 7u}) {
    SCOPED_TRACE("shards=" + std::to_string(s));
    expect_bitwise_identical(pool, ig, s, x);
  }
}

TEST(ShardedEngine, MatchesSerialPullAcrossShardCounts) {
  const Graph g = small_rmat(10, 8, 11);
  const IhtlGraph ig = build_ihtl_graph(g, cfg_with_hubs(32));
  const auto& o2n = ig.old_to_new();
  const auto x = random_values(g.num_vertices(), 21);
  std::vector<value_t> expected(g.num_vertices());
  spmv_pull_serial(g, x, expected);
  ThreadPool pool(3);
  for (const std::size_t s : {2u, 3u, 4u}) {
    SCOPED_TRACE("shards=" + std::to_string(s));
    ShardedEngine<PlusMonoid> engine(ig, pool, s);
    std::vector<value_t> xp(x.size()), yp(x.size()), y(x.size());
    for (std::size_t v = 0; v < x.size(); ++v) xp[o2n[v]] = x[v];
    engine.spmv(xp, yp);
    for (std::size_t v = 0; v < x.size(); ++v) y[v] = yp[o2n[v]];
    expect_values_near(expected, y, 1e-9);
  }
}

TEST(ShardedEngine, StarGraphGivesZeroEdgeShardsCorrectResults) {
  // All edges into vertex 0: after relabeling one mega-hub owns every
  // edge, so with S=4 at least two shards own destination ranges with no
  // edges at all — they must still produce (identity) output and not
  // disturb the hub shard.
  std::vector<Edge> edges;
  for (vid_t v = 1; v < 128; ++v) edges.push_back({v, 0});
  const Graph g = build_graph(128, edges, {});
  const IhtlGraph ig = build_ihtl_graph(g, cfg_with_hubs(8));
  ThreadPool pool(2);
  ShardedEngine<PlusMonoid> engine(ig, pool, 4);
  std::size_t zero_edge_shards = 0;
  for (std::size_t s = 0; s < engine.num_shards(); ++s) {
    zero_edge_shards += engine.shard(s).num_edges() == 0;
  }
  EXPECT_GE(zero_edge_shards, 2u);

  const auto& o2n = ig.old_to_new();
  const auto x = random_values(128, 5);
  std::vector<value_t> xp(128), yp(128), y(128), expected(128);
  for (std::size_t v = 0; v < 128; ++v) xp[o2n[v]] = x[v];
  engine.spmv(xp, yp);
  for (std::size_t v = 0; v < 128; ++v) y[v] = yp[o2n[v]];
  spmv_pull_serial(g, x, expected);
  expect_values_near(expected, y, 1e-9);
}

TEST(ShardedEngine, RangeNotDivisibleBySStaysExact) {
  // 1000 vertices, S=7: uneven everything (destination range, sparse
  // slice, team split of the owned copy).
  const Graph g = small_web(1000, 13);
  const IhtlGraph ig = build_ihtl_graph(g, cfg_with_hubs(8));
  const auto& o2n = ig.old_to_new();
  const auto x = random_values(1000, 31);
  std::vector<value_t> expected(1000);
  spmv_pull_serial(g, x, expected);
  ThreadPool pool(3);
  ShardedEngine<PlusMonoid> engine(ig, pool, 7);
  std::vector<value_t> xp(1000), yp(1000), y(1000);
  for (std::size_t v = 0; v < 1000; ++v) xp[o2n[v]] = x[v];
  engine.spmv(xp, yp);
  for (std::size_t v = 0; v < 1000; ++v) y[v] = yp[o2n[v]];
  expect_values_near(expected, y, 1e-9);
}

TEST(ShardedEngine, MoreShardsThanVerticesStillCorrect) {
  std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}, {1, 3}};
  const Graph g = build_graph(4, edges, {});
  const IhtlGraph ig = build_ihtl_graph(g, cfg_with_hubs(2));
  ThreadPool pool(2);
  ShardedEngine<PlusMonoid> engine(ig, pool, 11);
  EXPECT_EQ(engine.num_shards(), 11u);
  const auto& o2n = ig.old_to_new();
  const auto x = random_values(4, 17);
  std::vector<value_t> xp(4), yp(4), y(4), expected(4);
  for (std::size_t v = 0; v < 4; ++v) xp[o2n[v]] = x[v];
  engine.spmv(xp, yp);
  for (std::size_t v = 0; v < 4; ++v) y[v] = yp[o2n[v]];
  spmv_pull_serial(g, x, expected);
  expect_values_near(expected, y, 1e-9);
}

TEST(ShardedEngine, InterleavedScalarAndBatchedCallsShareOneEngine) {
  // Scalar and batched state (mirrors, buffers, touch bits) are disjoint
  // pairs inside each shard; alternating calls must not corrupt either.
  const Graph g = small_rmat(9, 8, 23);
  const IhtlGraph ig = build_ihtl_graph(g, cfg_with_hubs(16));
  const std::size_t n = ig.num_vertices();
  const std::size_t k = 3;
  ThreadPool pool(2);
  ShardedEngine<PlusMonoid> engine(ig, pool, 3);
  IhtlEngine<PlusMonoid> reference(ig, pool);

  const auto xs = random_values(n, 41);
  auto xb = random_values(n * k, 43);
  std::vector<value_t> ys(n), yb(n * k), es(n), eb(n * k);
  for (int round = 0; round < 3; ++round) {
    engine.spmv(xs, ys);
    reference.spmv(xs, es);
    expect_values_near(es, ys, 1e-9);
    engine.spmv_batch(xb, yb, k);
    reference.spmv_batch(xb, eb, k);
    expect_values_near(eb, yb, 1e-9);
  }
  EXPECT_EQ(engine.batch_lanes(), k);
}

TEST(ShardedEngine, TrafficIsZeroAtOneShardAndBoundedAboveOne) {
  const Graph g = small_rmat(10, 8, 9);
  const IhtlGraph ig = build_ihtl_graph(g, cfg_with_hubs(16));
  ThreadPool pool(2);
  ShardedEngine<PlusMonoid> one(ig, pool, 1);
  EXPECT_EQ(one.exchange_values_per_call(), 0u);
  EXPECT_DOUBLE_EQ(one.imbalance(), 1.0);

  ShardedEngine<PlusMonoid> four(ig, pool, 4);
  // Every shard can read at most all n sources it does not own.
  EXPECT_GT(four.exchange_values_per_call(), 0u);
  EXPECT_LT(four.exchange_values_per_call(),
            4u * static_cast<std::uint64_t>(ig.num_vertices()));
  EXPECT_GE(four.imbalance(), 1.0);

  // The stats of a live call agree with the structural prediction.
  std::vector<value_t> x(ig.num_vertices(), 1.0), y(ig.num_vertices());
  four.spmv(x, y);
  EXPECT_EQ(four.last_stats().exchange_values,
            four.exchange_values_per_call());
  EXPECT_EQ(four.last_stats().exchange_bytes,
            four.exchange_values_per_call() * sizeof(value_t));
}

TEST(ShardedEngine, ExchangeCorruptionPerturbsResults) {
  const Graph g = small_rmat(9, 8, 57);
  const IhtlGraph ig = build_ihtl_graph(g, cfg_with_hubs(16));
  ThreadPool pool(2);
  ShardedEngine<PlusMonoid> clean(ig, pool, 4);
  ShardedEngine<PlusMonoid> faulty(ig, pool, 4);
  std::size_t victim = clean.num_shards();
  for (std::size_t s = 0; s < clean.num_shards(); ++s) {
    if (!clean.shard(s).remote_sources.empty()) {
      victim = s;
      break;
    }
  }
  ASSERT_LT(victim, clean.num_shards()) << "no shard gathers anything";
  ASSERT_TRUE(faulty.inject_exchange_corruption(victim));

  const auto x = random_values(ig.num_vertices(), 3);
  std::vector<value_t> yc(x.size()), yf(x.size());
  clean.spmv(x, yc);
  faulty.spmv(x, yf);
  EXPECT_GE(faulty.exchange_corruptions_applied(), 1u);
  EXPECT_NE(0, std::memcmp(yc.data(), yf.data(), yc.size() * sizeof(value_t)))
      << "corrupted exchange slice left the results untouched";
}

TEST(ShardedEngine, CorruptionHookRefusesWhenNoRemoteSlice) {
  const Graph g = small_rmat(8, 8, 61);
  const IhtlGraph ig = build_ihtl_graph(g, cfg_with_hubs(16));
  ThreadPool pool(1);
  ShardedEngine<PlusMonoid> one(ig, pool, 1);
  EXPECT_FALSE(one.inject_exchange_corruption(0));   // S=1 never gathers
  EXPECT_FALSE(one.inject_exchange_corruption(99));  // out of range
}

// ---------------------------------------------------------------------------

TEST(SingleOwnerBoundary, AutomaticThresholdEdgeIsPinned) {
  // The exact boundary of block_single_owner under automatic: a block AT
  // max(4096, flipped/(16 T)) edges goes single-owner, one past it goes
  // shared. Pinning both sides keeps every caller (the unsharded engine,
  // each per-shard team) making the same call — the fix this PR ships was
  // exactly the two paths disagreeing here.
  // Light shard: the 4096-edge floor dominates.
  EXPECT_TRUE(block_single_owner(4096, 10'000, 4, PushPolicy::automatic));
  EXPECT_FALSE(block_single_owner(4097, 10'000, 4, PushPolicy::automatic));
  // Heavy shard: the proportional term dominates (T=2 -> flipped/32 = 8192).
  EXPECT_TRUE(block_single_owner(8192, 262'144, 2, PushPolicy::automatic));
  EXPECT_FALSE(block_single_owner(8193, 262'144, 2, PushPolicy::automatic));
  // Wide team on the same edges: the proportional term shrinks below the
  // floor and the floor takes back over.
  EXPECT_TRUE(block_single_owner(4096, 262'144, 16, PushPolicy::automatic));
  EXPECT_FALSE(block_single_owner(4097, 262'144, 16, PushPolicy::automatic));
}

TEST(SingleOwnerBoundary, ForcedPoliciesAndDegenerateInputs) {
  // shared forces merge for every block; zero-edge blocks stay shared
  // under EVERY policy (the merge tiles supply their hubs' identity fill);
  // one worker makes any block direct; binned classifies flipped blocks
  // exactly like automatic (it is a sparse-block policy).
  EXPECT_FALSE(block_single_owner(1 << 20, 1 << 20, 4, PushPolicy::shared));
  EXPECT_FALSE(block_single_owner(0, 0, 4, PushPolicy::single_owner));
  EXPECT_FALSE(block_single_owner(0, 0, 1, PushPolicy::automatic));
  EXPECT_TRUE(block_single_owner(1, 1, 4, PushPolicy::single_owner));
  EXPECT_TRUE(block_single_owner(1 << 20, 1 << 20, 1, PushPolicy::automatic));
  EXPECT_TRUE(block_single_owner(4096, 10'000, 4, PushPolicy::binned));
  EXPECT_FALSE(block_single_owner(4097, 10'000, 4, PushPolicy::binned));
}

TEST(SingleOwnerBoundary, EngineAndSingleShardClassifyIdentically) {
  // The S=1 bitwise contract presumes the same shared/single-owner call for
  // every block and the same sparse mode; compare the decompositions of
  // the two engines directly instead of only their outputs.
  const Graph g = small_rmat(10, 8, 33);
  const IhtlGraph ig = build_ihtl_graph(g, cfg_with_hubs(16));
  ThreadPool pool(3);
  IhtlEngine<PlusMonoid> engine(ig, pool);
  ShardedEngine<PlusMonoid> sharded(ig, pool, 1);
  const Shard& a = engine.shard();
  const Shard& b = sharded.shard(0);
  ASSERT_EQ(a.num_blocks(), b.num_blocks());
  EXPECT_EQ(a.single_owner_blocks, b.single_owner_blocks);
  EXPECT_EQ(a.block_direct, b.block_direct);
  EXPECT_EQ(a.sparse_binned, b.sparse_binned);
  EXPECT_EQ(a.num_bins, b.num_bins);
}

// ---------------------------------------------------------------------------

TEST(ShardedEngine, BinnedPolicyBitwiseMatchesUnshardedBinned) {
  // Integer inputs are exact under any combine order, so the forced-binned
  // sharded engine must match the unsharded binned engine bit for bit at
  // any S (the static-slot gather already makes the sparse region
  // deterministic even on floats; integers extend the claim to the hubs).
  const Graph g = small_web(1u << 10, 3);
  const IhtlGraph ig = build_ihtl_graph(g, cfg_with_hubs(16));
  ThreadPool pool(4);
  IhtlEngine<PlusMonoid> reference(ig, pool, PushPolicy::binned);
  ASSERT_TRUE(reference.sparse_binned());
  std::vector<value_t> x(ig.num_vertices());
  Rng rng(11);
  for (auto& v : x) v = static_cast<value_t>(rng.next_below(8));
  std::vector<value_t> ya(x.size()), yb(x.size());
  reference.spmv(x, ya);
  for (const std::size_t s : {1u, 2u, 3u, 5u}) {
    SCOPED_TRACE("shards=" + std::to_string(s));
    ShardedEngine<PlusMonoid> sharded(ig, pool, s, PushPolicy::binned);
    EXPECT_TRUE(sharded.any_binned());
    sharded.spmv(x, yb);
    EXPECT_EQ(0,
              std::memcmp(ya.data(), yb.data(), ya.size() * sizeof(value_t)));
  }
}

TEST(ShardedEngine, BinnedBatchMatchesUnshardedAcrossLaneCounts) {
  const Graph g = small_web(1u << 9, 4);
  const IhtlGraph ig = build_ihtl_graph(g, cfg_with_hubs(16));
  const std::size_t n = ig.num_vertices();
  ThreadPool pool(3);
  IhtlEngine<PlusMonoid> reference(ig, pool, PushPolicy::binned);
  ShardedEngine<PlusMonoid> sharded(ig, pool, 3, PushPolicy::binned);
  for (const std::size_t k : {1u, 8u}) {
    SCOPED_TRACE("k=" + std::to_string(k));
    std::vector<value_t> x(n * k);
    Rng rng(21 + k);
    for (auto& v : x) v = static_cast<value_t>(rng.next_below(8));
    std::vector<value_t> ya(n * k), yb(n * k);
    reference.spmv_batch(x, ya, k);
    sharded.spmv_batch(x, yb, k);
    EXPECT_EQ(0,
              std::memcmp(ya.data(), yb.data(), ya.size() * sizeof(value_t)));
  }
}

TEST(ShardedEngine, BinDropHookPerturbsBinnedResults) {
  const Graph g = small_web(1u << 9, 4);
  const IhtlGraph ig = build_ihtl_graph(g, cfg_with_hubs(16));
  ThreadPool pool(2);
  ShardedEngine<PlusMonoid> clean(ig, pool, 2, PushPolicy::binned);
  ShardedEngine<PlusMonoid> faulty(ig, pool, 2, PushPolicy::binned);
  ASSERT_TRUE(faulty.inject_bin_drop());
  std::vector<value_t> x(ig.num_vertices(), 1.0), yc(x.size()), yf(x.size());
  clean.spmv(x, yc);
  faulty.spmv(x, yf);
  EXPECT_GE(faulty.bin_drops_applied(), 1u);
  EXPECT_NE(0, std::memcmp(yc.data(), yf.data(), yc.size() * sizeof(value_t)))
      << "dropped bin slots left the sharded results untouched";
}

// ---------------------------------------------------------------------------

TEST(ShardBatchLanes, LayoutChangeUnderSameLaneCountRebuilds) {
  // Failing-before regression (this PR's batch-boundary fix):
  // ensure_batch_lanes used to key its cache on the lane count alone, so a
  // layout change under a cached k — an in-place patch growing the hub
  // span or the sparse edge count — handed spmv_batch buffers sized for
  // the PRE-change layout. The cache key is now the required sizes.
  const Graph g = small_rmat(9, 8, 77);
  const IhtlGraph ig = build_ihtl_graph(g, cfg_with_hubs(16));
  const auto plans = plan_shards(ig, 1);

  Shard sh = build_shard(ig, plans[0], 2, PushPolicy::shared, 0.0, false);
  ASSERT_TRUE(sh.any_shared());
  sh.ensure_batch_lanes(4, 0.0);
  const std::size_t before = sh.batch_buffers.length();
  ASSERT_EQ(before, static_cast<std::size_t>(sh.num_hubs()) * 4);
  sh.hub_end += 8;  // the patched layout owns more hubs at the same k
  sh.ensure_batch_lanes(4, 0.0);
  EXPECT_EQ(sh.batch_buffers.length(),
            static_cast<std::size_t>(sh.num_hubs()) * 4);
  EXPECT_GT(sh.batch_buffers.length(), before);

  Shard sb = build_shard(ig, plans[0], 2, PushPolicy::binned, 0.0, false);
  ASSERT_TRUE(sb.sparse_binned);
  sb.ensure_batch_lanes(4, 0.0);
  ASSERT_EQ(sb.batch_bin_values.size(),
            static_cast<std::size_t>(sb.sparse_edges) * 4);
  sb.sparse_edges += 16;  // more sparse edges at the same k
  sb.ensure_batch_lanes(4, 0.0);
  EXPECT_EQ(sb.batch_bin_values.size(),
            static_cast<std::size_t>(sb.sparse_edges) * 4);
}

// ---------------------------------------------------------------------------

TEST(ShardLattice, SmallLatticeIsClean) {
  check::ShardCheckOptions opt;
  opt.points = 4;
  const check::ShardCheckResult r = check::run_shard_lattice(opt);
  EXPECT_TRUE(r.ok) << r.failure;
  EXPECT_EQ(r.points_run, 4u);
  EXPECT_EQ(r.oracle_runs, 12u);  // 3 shard counts per point
  EXPECT_GE(r.bitwise_checks, 16u);
}

TEST(ShardLattice, FaultInjectionIsDetectedOrExplicitlySkipped) {
  check::ShardCheckOptions opt;
  opt.points = 4;
  opt.inject_fault = true;
  const check::ShardCheckResult r = check::run_shard_lattice(opt);
  EXPECT_TRUE(r.ok) << r.failure;
  EXPECT_EQ(r.faults_injected + r.faults_skipped, 4u);
  EXPECT_GE(r.faults_injected, 1u);  // the lattice is not all-skips
}

}  // namespace
}  // namespace ihtl
