#include <gtest/gtest.h>

#include "cachesim/cache.h"
#include "cachesim/trace_spmv.h"
#include "core/ihtl_graph.h"
#include "test_util.h"

namespace ihtl {
namespace {

using testing::small_rmat;
using testing::small_web;

// --------------------------------------------------------------- CacheLevel

TEST(CacheLevel, ColdMissThenHit) {
  CacheLevel cache({.size_bytes = 1024, .line_bytes = 64, .ways = 2});
  EXPECT_FALSE(cache.access(0));
  EXPECT_TRUE(cache.access(0));
  EXPECT_TRUE(cache.access(63));   // same line
  EXPECT_FALSE(cache.access(64));  // next line
  EXPECT_EQ(cache.accesses(), 4u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(CacheLevel, LruEvictionOrder) {
  // 1 set x 2 ways: lines A, B fill the set; touching A then adding C must
  // evict B (the least recently used).
  CacheLevel cache({.size_bytes = 128, .line_bytes = 64, .ways = 2});
  const std::uint64_t A = 0, B = 128, C = 256;  // all map to set 0
  cache.access(A);
  cache.access(B);
  cache.access(A);  // A is now MRU
  cache.access(C);  // evicts B
  EXPECT_TRUE(cache.access(A));
  EXPECT_FALSE(cache.access(B));
}

TEST(CacheLevel, WorkingSetLargerThanCacheThrashes) {
  CacheLevel cache({.size_bytes = 1u << 10, .line_bytes = 64, .ways = 4});
  // Stream over 64 KiB repeatedly: every access past the first pass still
  // misses (LRU + sequential sweep = no reuse).
  for (int pass = 0; pass < 3; ++pass) {
    for (std::uint64_t a = 0; a < (64u << 10); a += 64) cache.access(a);
  }
  EXPECT_EQ(cache.misses(), cache.accesses());
}

TEST(CacheLevel, WorkingSetFittingInCacheHitsAfterWarmup) {
  CacheLevel cache({.size_bytes = 64u << 10, .line_bytes = 64, .ways = 8});
  for (int pass = 0; pass < 4; ++pass) {
    for (std::uint64_t a = 0; a < (32u << 10); a += 64) cache.access(a);
  }
  // Only the first pass misses.
  EXPECT_EQ(cache.misses(), (32u << 10) / 64);
}

TEST(CacheLevel, NumSetsComputed) {
  CacheConfig cfg{.size_bytes = 1u << 20, .line_bytes = 64, .ways = 16};
  EXPECT_EQ(cfg.num_sets(), (1u << 20) / (64 * 16));
}

// ----------------------------------------------------------- CacheHierarchy

TEST(CacheHierarchy, MissFallsThroughLevels) {
  CacheHierarchy h = CacheHierarchy::tiny();
  EXPECT_EQ(h.access(0), 3u);  // cold: memory
  EXPECT_EQ(h.access(0), 0u);  // L1 hit
  EXPECT_EQ(h.level(0).misses(), 1u);
  EXPECT_EQ(h.level(1).misses(), 1u);
  EXPECT_EQ(h.level(2).misses(), 1u);
}

TEST(CacheHierarchy, L2HitAfterL1Eviction) {
  CacheHierarchy h = CacheHierarchy::tiny();  // L1 = 1 KiB
  // Fill well past L1 but within L2 (8 KiB).
  for (std::uint64_t a = 0; a < 4096; a += 64) h.access(a);
  // Address 0 was evicted from L1 but should still be in L2.
  EXPECT_EQ(h.access(0), 1u);
}

TEST(CacheHierarchy, CountersReset) {
  CacheHierarchy h = CacheHierarchy::tiny();
  h.access(0);
  h.access(64);
  h.reset_counters();
  EXPECT_EQ(h.total_accesses(), 0u);
  EXPECT_EQ(h.level(0).accesses(), 0u);
  EXPECT_EQ(h.memory_accesses(), 0u);
}

TEST(CacheHierarchy, XeonGeometryMatchesPaperMachine) {
  CacheHierarchy h = CacheHierarchy::xeon_gold_6130();
  EXPECT_EQ(h.levels(), 3u);
  EXPECT_EQ(h.level(0).config().size_bytes, 32u << 10);
  EXPECT_EQ(h.level(1).config().size_bytes, 1u << 20);
  EXPECT_EQ(h.level(2).config().size_bytes, 22u << 20);
}

// ------------------------------------------------------------ trace adapters

TEST(TraceSpmv, PullCountsAllAccesses) {
  const Graph g = testing::figure2_graph();
  CacheHierarchy h = CacheHierarchy::tiny();
  const TraceCounters c = trace_pull_spmv(g, h);
  // Per vertex: 1 offset + 1 y store; per edge: 1 target + 1 x read.
  EXPECT_EQ(c.memory_accesses, 2u * 8 + 2u * 14);
}

TEST(TraceSpmv, PushCountsAllAccesses) {
  const Graph g = testing::figure2_graph();
  CacheHierarchy h = CacheHierarchy::tiny();
  const TraceCounters c = trace_push_spmv(g, h);
  // Per vertex: 1 offset + 1 x read; per edge: 1 target + 1 y update.
  EXPECT_EQ(c.memory_accesses, 2u * 8 + 2u * 14);
}

TEST(TraceSpmv, ProfileAccountsEveryRandomAccess) {
  const Graph g = small_rmat(10, 8);
  CacheHierarchy h = CacheHierarchy::tiny();
  DegreeMissProfile profile;
  trace_pull_spmv(g, h, &profile);
  std::uint64_t total = 0;
  for (const auto a : profile.accesses) total += a;
  EXPECT_EQ(total, g.num_edges());  // one x-read per edge
  for (std::size_t b = 0; b < profile.accesses.size(); ++b) {
    EXPECT_LE(profile.llc_misses[b], profile.accesses[b]);
  }
}

TEST(TraceSpmv, IhtlIssuesMoreAccessesButFewerLlcMisses) {
  // Table 3's shape on a skewed graph whose vertex data (2^15 * 8 B =
  // 256 KiB) is 4x the tiny L3, so pull traversal actually thrashes.
  const Graph g = small_rmat(15, 16);
  IhtlConfig cfg;
  cfg.buffer_bytes = 8192;  // 1024 hubs/block == tiny L2 capacity
  const IhtlGraph ig = build_ihtl_graph(g, cfg);
  ASSERT_GT(ig.num_hubs(), 0u);

  CacheHierarchy pull_caches = CacheHierarchy::tiny();
  const TraceCounters pull = trace_pull_spmv(g, pull_caches);
  CacheHierarchy ihtl_caches = CacheHierarchy::tiny();
  const TraceCounters ihtl = trace_ihtl_spmv(g, ig, ihtl_caches);

  EXPECT_GT(ihtl.memory_accesses, pull.memory_accesses);
  EXPECT_LT(ihtl.l3_misses, pull.l3_misses);
}

TEST(TraceSpmv, IhtlCollapsesHubMissRate) {
  // Figure 1's shape: the top degree bucket's LLC miss rate must drop
  // dramatically under iHTL. Vertex data must exceed the tiny L3 (see
  // above) for pull to exhibit hub thrashing in the first place.
  const Graph g = small_rmat(15, 16);
  IhtlConfig cfg;
  cfg.buffer_bytes = 8192;
  const IhtlGraph ig = build_ihtl_graph(g, cfg);

  CacheHierarchy h1 = CacheHierarchy::tiny();
  DegreeMissProfile pull_profile;
  trace_pull_spmv(g, h1, &pull_profile);
  CacheHierarchy h2 = CacheHierarchy::tiny();
  DegreeMissProfile ihtl_profile;
  trace_ihtl_spmv(g, ig, h2, &ihtl_profile);

  // Find the highest bucket with meaningful traffic in pull.
  std::size_t hub_bucket = pull_profile.accesses.size();
  for (std::size_t b = pull_profile.accesses.size(); b-- > 0;) {
    if (pull_profile.accesses[b] > 100) {
      hub_bucket = b;
      break;
    }
  }
  ASSERT_LT(hub_bucket, pull_profile.accesses.size());
  ASSERT_LT(hub_bucket, ihtl_profile.accesses.size());
  EXPECT_LT(ihtl_profile.miss_rate(hub_bucket),
            0.5 * pull_profile.miss_rate(hub_bucket) + 1e-12);
}

TEST(TraceSpmv, EmptyGraphProducesNoAccesses) {
  const Graph g = build_graph(0, {});
  CacheHierarchy h = CacheHierarchy::tiny();
  const TraceCounters c = trace_pull_spmv(g, h);
  EXPECT_EQ(c.memory_accesses, 0u);
}

}  // namespace
}  // namespace ihtl
