// Tests for the Section 6 / Section 5.1 extension analytics: triangle
// counting (degree-differentiated) and HITS (two-direction pull).
#include <gtest/gtest.h>

#include <cmath>

#include "apps/analytics.h"
#include "apps/hits.h"
#include "apps/triangle_count.h"
#include "test_util.h"

namespace ihtl {
namespace {

using testing::expect_values_near;
using testing::small_rmat;
using testing::small_web;

// ---------------------------------------------------------------- triangles

Graph undirected(std::vector<Edge> edges, vid_t n) {
  return symmetrize(build_graph(n, edges));
}

TEST(TriangleCount, SingleTriangle) {
  const Graph g = undirected({{0, 1}, {1, 2}, {2, 0}}, 3);
  ThreadPool pool(2);
  EXPECT_EQ(count_triangles(pool, g).triangles, 1u);
  EXPECT_EQ(count_triangles_serial(g), 1u);
}

TEST(TriangleCount, SquareHasNoTriangles) {
  const Graph g = undirected({{0, 1}, {1, 2}, {2, 3}, {3, 0}}, 4);
  ThreadPool pool(2);
  EXPECT_EQ(count_triangles(pool, g).triangles, 0u);
}

TEST(TriangleCount, CompleteGraphK5) {
  std::vector<Edge> edges;
  for (vid_t u = 0; u < 5; ++u) {
    for (vid_t v = u + 1; v < 5; ++v) edges.push_back({u, v});
  }
  const Graph g = undirected(edges, 5);
  ThreadPool pool(3);
  EXPECT_EQ(count_triangles(pool, g).triangles, 10u);  // C(5,3)
}

TEST(TriangleCount, StarHasNoTriangles) {
  std::vector<Edge> edges;
  for (vid_t v = 1; v < 50; ++v) edges.push_back({0, v});
  const Graph g = undirected(edges, 50);
  ThreadPool pool(2);
  EXPECT_EQ(count_triangles(pool, g).triangles, 0u);
}

TEST(TriangleCount, WheelGraph) {
  // Hub 0 connected to a cycle 1..n-1: n-1 triangles.
  std::vector<Edge> edges;
  const vid_t n = 20;
  for (vid_t v = 1; v < n; ++v) {
    edges.push_back({0, v});
    edges.push_back({v, v == n - 1 ? 1 : v + 1});
  }
  const Graph g = undirected(edges, n);
  ThreadPool pool(2);
  EXPECT_EQ(count_triangles(pool, g).triangles, n - 1);
}

class TriangleEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TriangleEquivalence, ParallelHybridMatchesSerialReference) {
  const Graph g = symmetrize(small_rmat(9, 6, GetParam()));
  ThreadPool pool(4);
  const std::uint64_t expected = count_triangles_serial(g);
  // Default (auto threshold) and forced-bitmap configurations must agree.
  EXPECT_EQ(count_triangles(pool, g).triangles, expected);
  TriangleCountOptions all_bitmap;
  all_bitmap.hub_degree_threshold = 1;  // nearly everything via bitmap
  EXPECT_EQ(count_triangles(pool, g, all_bitmap).triangles, expected);
  TriangleCountOptions no_bitmap;
  no_bitmap.hub_degree_threshold = ~eid_t{0};  // pure merge
  EXPECT_EQ(count_triangles(pool, g, no_bitmap).triangles, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TriangleEquivalence,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(TriangleCount, HubPathActuallyUsedOnSkewedGraph) {
  const Graph g = symmetrize(small_web(1u << 11));
  ThreadPool pool(2);
  // Orientation directs edges toward higher rank, so even in-hubs keep a
  // modest oriented out-degree; a low threshold guarantees bitmap use.
  TriangleCountOptions opt;
  opt.hub_degree_threshold = 2;
  const auto result = count_triangles(pool, g, opt);
  EXPECT_GT(result.hub_vertices, 0u);
  EXPECT_EQ(result.triangles, count_triangles_serial(g));
}

TEST(TriangleCount, EmptyGraph) {
  ThreadPool pool(2);
  EXPECT_EQ(count_triangles(pool, build_graph(0, {})).triangles, 0u);
}

// --------------------------------------------------------------------- HITS

TEST(Hits, AuthorityGoesToPointedAtVertex) {
  // Everyone links to vertex 0; vertex 0 links nowhere.
  std::vector<Edge> edges;
  for (vid_t v = 1; v < 10; ++v) edges.push_back({v, 0});
  const Graph g = build_graph(10, edges);
  ThreadPool pool(2);
  HitsOptions opt;
  opt.iterations = 10;
  const HitsResult r = hits(pool, g, opt);
  for (vid_t v = 1; v < 10; ++v) {
    EXPECT_GT(r.authority[0], r.authority[v]);
    EXPECT_GT(r.hub[v], r.hub[0]);
  }
}

TEST(Hits, ScoresAreL2Normalized) {
  const Graph g = small_rmat(8, 6);
  ThreadPool pool(2);
  HitsOptions opt;
  opt.iterations = 5;
  const HitsResult r = hits(pool, g, opt);
  double a_norm = 0, h_norm = 0;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    a_norm += r.authority[v] * r.authority[v];
    h_norm += r.hub[v] * r.hub[v];
  }
  EXPECT_NEAR(a_norm, 1.0, 1e-9);
  EXPECT_NEAR(h_norm, 1.0, 1e-9);
}

TEST(Hits, IhtlMatchesPull) {
  const Graph g = small_rmat(9, 6);
  ThreadPool pool(3);
  HitsOptions pull_opt;
  pull_opt.iterations = 8;
  HitsOptions ihtl_opt = pull_opt;
  ihtl_opt.kernel = HitsKernel::ihtl;
  ihtl_opt.ihtl.buffer_bytes = 64 * sizeof(value_t);
  const HitsResult a = hits(pool, g, pull_opt);
  const HitsResult b = hits(pool, g, ihtl_opt);
  expect_values_near(a.authority, b.authority, 1e-8);
  expect_values_near(a.hub, b.hub, 1e-8);
}

TEST(Hits, IhtlMatchesPullOnWebGraph) {
  const Graph g = small_web(1u << 10);
  ThreadPool pool(2);
  HitsOptions pull_opt;
  pull_opt.iterations = 6;
  HitsOptions ihtl_opt = pull_opt;
  ihtl_opt.kernel = HitsKernel::ihtl;
  ihtl_opt.ihtl.buffer_bytes = 32 * sizeof(value_t);
  const HitsResult a = hits(pool, g, pull_opt);
  const HitsResult b = hits(pool, g, ihtl_opt);
  expect_values_near(a.authority, b.authority, 1e-8);
  expect_values_near(a.hub, b.hub, 1e-8);
}

TEST(Hits, ReversedViewSwapsDegrees) {
  const Graph g = small_rmat(8, 4);
  const Graph rev = reversed(g);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(rev.in_degree(v), g.out_degree(v));
    EXPECT_EQ(rev.out_degree(v), g.in_degree(v));
  }
}

TEST(Hits, EmptyGraph) {
  ThreadPool pool(2);
  HitsOptions opt;
  opt.iterations = 3;
  const HitsResult r = hits(pool, build_graph(0, {}), opt);
  EXPECT_TRUE(r.authority.empty());
}

}  // namespace
}  // namespace ihtl
