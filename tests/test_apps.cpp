#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

#include "apps/analytics.h"
#include "apps/pagerank.h"
#include "test_util.h"

namespace ihtl {
namespace {

using testing::expect_values_near;
using testing::figure2_graph;
using testing::small_rmat;
using testing::small_web;

// ----------------------------------------------------------------- PageRank

PageRankOptions test_pr_options() {
  PageRankOptions opt;
  opt.iterations = 8;
  opt.ihtl.buffer_bytes = 32 * sizeof(value_t);
  return opt;
}

TEST(PageRank, RanksSumToAtMostOne) {
  ThreadPool pool(2);
  const Graph g = small_rmat(9, 8);
  const auto result = pagerank(pool, g, SpmvKernel::pull, test_pr_options());
  const double sum =
      std::accumulate(result.ranks.begin(), result.ranks.end(), 0.0);
  // Dangling mass leaks (paper formula drops it), so sum <= 1.
  EXPECT_LE(sum, 1.0 + 1e-9);
  EXPECT_GT(sum, 0.3);
}

TEST(PageRank, HubOutranksLeaf) {
  ThreadPool pool(2);
  const Graph g = small_web(1u << 10);
  const auto result = pagerank(pool, g, SpmvKernel::pull, test_pr_options());
  vid_t hub = 0, leaf = 0;
  for (vid_t v = 1; v < g.num_vertices(); ++v) {
    if (g.in_degree(v) > g.in_degree(hub)) hub = v;
    if (g.in_degree(v) < g.in_degree(leaf)) leaf = v;
  }
  EXPECT_GT(result.ranks[hub], result.ranks[leaf]);
}

TEST(PageRank, UniformOnCycle) {
  // On a directed cycle PageRank is exactly uniform.
  std::vector<Edge> edges;
  for (vid_t v = 0; v < 32; ++v) edges.push_back({v, (v + 1) % 32});
  const Graph g = build_graph(32, edges);
  ThreadPool pool(2);
  const auto result = pagerank(pool, g, SpmvKernel::pull, test_pr_options());
  for (const value_t r : result.ranks) {
    EXPECT_NEAR(r, 1.0 / 32, 1e-12);
  }
}

class PageRankKernelsTest : public ::testing::TestWithParam<SpmvKernel> {};

TEST_P(PageRankKernelsTest, AllKernelsAgreeWithPull) {
  ThreadPool pool(3);
  const Graph g = small_rmat(9, 8);
  const auto opt = test_pr_options();
  const auto reference = pagerank(pool, g, SpmvKernel::pull, opt);
  const auto result = pagerank(pool, g, GetParam(), opt);
  expect_values_near(reference.ranks, result.ranks, 1e-9);
}

TEST_P(PageRankKernelsTest, AllKernelsAgreeOnWebGraph) {
  ThreadPool pool(2);
  const Graph g = small_web(1u << 10);
  const auto opt = test_pr_options();
  const auto reference = pagerank(pool, g, SpmvKernel::pull, opt);
  const auto result = pagerank(pool, g, GetParam(), opt);
  expect_values_near(reference.ranks, result.ranks, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, PageRankKernelsTest,
    ::testing::Values(SpmvKernel::pull_edge_balanced, SpmvKernel::push_atomic,
                      SpmvKernel::push_buffered, SpmvKernel::push_partitioned,
                      SpmvKernel::segmented_pull, SpmvKernel::ihtl),
    [](const ::testing::TestParamInfo<SpmvKernel>& info) {
      std::string name = kernel_name(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(PageRank, IhtlReportsPreprocessingTime) {
  ThreadPool pool(2);
  const Graph g = small_rmat(10, 8);
  const auto result = pagerank(pool, g, SpmvKernel::ihtl, test_pr_options());
  EXPECT_GT(result.preprocessing_seconds, 0.0);
  EXPECT_GT(result.seconds_per_iteration, 0.0);
}

TEST(PageRank, PrebuiltIhtlGraphGivesSameRanks) {
  ThreadPool pool(1);  // single thread -> identical accumulation order
  const Graph g = small_rmat(9, 8);
  const auto opt = test_pr_options();
  const auto direct = pagerank(pool, g, SpmvKernel::ihtl, opt);
  const IhtlGraph ig = build_ihtl_graph(g, opt.ihtl);
  const auto prebuilt = pagerank_ihtl(pool, g, ig, opt);
  EXPECT_EQ(direct.ranks, prebuilt.ranks);
}

TEST(PageRank, ToleranceTerminatesEarly) {
  ThreadPool pool(2);
  const Graph g = small_rmat(9, 8);
  PageRankOptions opt = test_pr_options();
  opt.iterations = 200;
  opt.tolerance = 1e-6;
  const auto result = pagerank(pool, g, SpmvKernel::pull, opt);
  EXPECT_LT(result.iterations_run, 200u);
  EXPECT_GT(result.iterations_run, 1u);
}

TEST(PageRank, ToleranceResultMatchesLongFixedRun) {
  ThreadPool pool(2);
  const Graph g = small_rmat(8, 6);
  PageRankOptions converged = test_pr_options();
  converged.iterations = 300;
  converged.tolerance = 1e-13;
  PageRankOptions fixed = test_pr_options();
  fixed.iterations = 300;
  const auto a = pagerank(pool, g, SpmvKernel::pull, converged);
  const auto b = pagerank(pool, g, SpmvKernel::pull, fixed);
  expect_values_near(b.ranks, a.ranks, 1e-9);
}

TEST(PageRank, IterationsRunReportedForFixedRun) {
  ThreadPool pool(2);
  const Graph g = small_rmat(7, 4);
  const auto result = pagerank(pool, g, SpmvKernel::pull, test_pr_options());
  EXPECT_EQ(result.iterations_run, test_pr_options().iterations);
}

TEST(PageRank, KernelNamesAreUnique) {
  std::set<std::string> names;
  for (const auto k :
       {SpmvKernel::pull, SpmvKernel::pull_edge_balanced,
        SpmvKernel::segmented_pull, SpmvKernel::push_atomic,
        SpmvKernel::push_buffered, SpmvKernel::push_partitioned,
        SpmvKernel::ihtl}) {
    EXPECT_TRUE(names.insert(kernel_name(k)).second);
  }
}

// -------------------------------------------------------------- symmetrize

TEST(Symmetrize, MakesEveryEdgeReciprocal) {
  const Graph g = small_rmat(8, 4);
  const Graph sym = symmetrize(g);
  for (vid_t v = 0; v < sym.num_vertices(); ++v) {
    for (const vid_t t : sym.out().neighbors(v)) {
      ASSERT_TRUE(sym.has_edge(t, v)) << v << "->" << t;
    }
    EXPECT_EQ(sym.in_degree(v), sym.out_degree(v));
  }
}

// ------------------------------------------------------ connected components

TEST(ConnectedComponents, TwoIslands) {
  std::vector<Edge> edges = {{0, 1}, {1, 2}, {3, 4}};
  const Graph g = symmetrize(build_graph(5, edges));
  ThreadPool pool(2);
  const auto result = connected_components(pool, g, AnalyticsKernel::pull);
  EXPECT_EQ(result.values[0], 0.0);
  EXPECT_EQ(result.values[1], 0.0);
  EXPECT_EQ(result.values[2], 0.0);
  EXPECT_EQ(result.values[3], 3.0);
  EXPECT_EQ(result.values[4], 3.0);
}

TEST(ConnectedComponents, LabelIsMinimumOfComponent) {
  ThreadPool pool(2);
  const Graph g = symmetrize(small_rmat(8, 4));
  const auto result = connected_components(pool, g, AnalyticsKernel::pull);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    // Label can never exceed the vertex's own ID.
    ASSERT_LE(result.values[v], static_cast<value_t>(v));
    // And the labelled vertex must carry its own label.
    ASSERT_EQ(result.values[static_cast<vid_t>(result.values[v])],
              result.values[v]);
  }
}

TEST(ConnectedComponents, IhtlMatchesPull) {
  ThreadPool pool(3);
  const Graph g = symmetrize(small_rmat(9, 6));
  IhtlConfig cfg;
  cfg.buffer_bytes = 32 * sizeof(value_t);
  const auto pull = connected_components(pool, g, AnalyticsKernel::pull);
  const auto ihtl = connected_components(pool, g, AnalyticsKernel::ihtl, cfg);
  EXPECT_EQ(pull.values, ihtl.values);
}

// --------------------------------------------------------------------- sssp

TEST(SsspUnit, ChainDistances) {
  std::vector<Edge> edges;
  for (vid_t v = 0; v + 1 < 10; ++v) edges.push_back({v, v + 1});
  const Graph g = build_graph(10, edges);
  ThreadPool pool(2);
  const auto result = sssp_unit(pool, g, 0, AnalyticsKernel::pull);
  for (vid_t v = 0; v < 10; ++v) {
    EXPECT_EQ(result.values[v], static_cast<value_t>(v));
  }
}

TEST(SsspUnit, UnreachableIsInfinity) {
  const std::vector<Edge> edges = {{0, 1}};
  const Graph g = build_graph(3, edges);
  ThreadPool pool(2);
  const auto result = sssp_unit(pool, g, 0, AnalyticsKernel::pull);
  EXPECT_EQ(result.values[1], 1.0);
  EXPECT_TRUE(std::isinf(result.values[2]));
}

TEST(SsspUnit, IhtlMatchesPull) {
  ThreadPool pool(2);
  const Graph g = small_rmat(9, 6);
  vid_t source = 0;
  for (vid_t v = 1; v < g.num_vertices(); ++v) {
    if (g.out_degree(v) > g.out_degree(source)) source = v;
  }
  IhtlConfig cfg;
  cfg.buffer_bytes = 32 * sizeof(value_t);
  const auto pull = sssp_unit(pool, g, source, AnalyticsKernel::pull);
  const auto ihtl = sssp_unit(pool, g, source, AnalyticsKernel::ihtl, cfg);
  EXPECT_EQ(pull.values, ihtl.values);
}

// ------------------------------------------- batched apps (spmv_batch users)

/// Serial personalized PageRank from one source; the lane-wise ground truth
/// for the batched variant.
std::vector<value_t> serial_personalized_pr(const Graph& g, vid_t source,
                                            const PageRankOptions& opt) {
  const vid_t n = g.num_vertices();
  std::vector<value_t> pr(n, 0.0), x(n), y(n);
  pr[source % n] = 1.0;
  for (unsigned it = 0; it < opt.iterations; ++it) {
    for (vid_t v = 0; v < n; ++v) {
      const eid_t deg = g.out_degree(v);
      x[v] = deg ? opt.damping * pr[v] / deg : 0.0;
    }
    for (vid_t v = 0; v < n; ++v) {
      value_t acc = 0.0;
      for (const vid_t u : g.in().neighbors(v)) acc += x[u];
      y[v] = acc;
    }
    for (vid_t v = 0; v < n; ++v) {
      pr[v] = (v == source % n ? 1.0 - opt.damping : 0.0) + y[v];
    }
  }
  return pr;
}

TEST(PersonalizedPageRankBatch, LanesMatchSerialReference) {
  ThreadPool pool(3);
  const Graph g = small_rmat(9, 8);
  const auto opt = test_pr_options();
  const IhtlGraph ig = build_ihtl_graph(g, opt.ihtl);
  const std::vector<vid_t> sources = {0, 7, 42, 311};
  const auto batch = pagerank_personalized_batch(pool, g, ig, sources, opt);
  ASSERT_EQ(batch.ranks.size(), g.num_vertices() * sources.size());
  for (std::size_t lane = 0; lane < sources.size(); ++lane) {
    const auto expected = serial_personalized_pr(g, sources[lane], opt);
    std::vector<value_t> actual(g.num_vertices());
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
      actual[v] = batch.ranks[v * sources.size() + lane];
    }
    expect_values_near(expected, actual, 1e-9);
  }
}

TEST(PersonalizedPageRankBatch, SingleSourceMatchesLaneOfBatch) {
  // k == 1 takes the scalar delegation path; its lane must agree with the
  // same source inside a wider batch.
  ThreadPool pool(2);
  const Graph g = small_rmat(8, 6);
  const auto opt = test_pr_options();
  const IhtlGraph ig = build_ihtl_graph(g, opt.ihtl);
  const std::vector<vid_t> sources = {3, 17};
  const auto batch = pagerank_personalized_batch(pool, g, ig, sources, opt);
  const std::vector<vid_t> one = {3};
  const auto single = pagerank_personalized_batch(pool, g, ig, one, opt);
  std::vector<value_t> lane0(g.num_vertices());
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    lane0[v] = batch.ranks[v * 2];
  }
  expect_values_near(single.ranks, lane0, 1e-9);
}

TEST(PersonalizedPageRankBatch, ToleranceTerminatesEarly) {
  ThreadPool pool(2);
  const Graph g = small_rmat(8, 6);
  PageRankOptions opt = test_pr_options();
  opt.iterations = 200;
  opt.tolerance = 1e-6;
  const IhtlGraph ig = build_ihtl_graph(g, opt.ihtl);
  const std::vector<vid_t> sources = {1, 2, 3, 4};
  const auto result = pagerank_personalized_batch(pool, g, ig, sources, opt);
  EXPECT_LT(result.iterations_run, 200u);
  EXPECT_GT(result.iterations_run, 1u);
}

TEST(MultiSourceBfs, LanesMatchPerSourceSsspOnBothKernels) {
  ThreadPool pool(3);
  const Graph g = small_rmat(9, 6);
  IhtlConfig cfg;
  cfg.buffer_bytes = 32 * sizeof(value_t);
  const std::vector<vid_t> sources = {0, 5, 9000, 77};
  for (const auto kernel : {AnalyticsKernel::pull, AnalyticsKernel::ihtl}) {
    const auto batch = bfs_multi_source(pool, g, sources, kernel, cfg);
    ASSERT_EQ(batch.values.size(), g.num_vertices() * sources.size());
    for (std::size_t lane = 0; lane < sources.size(); ++lane) {
      const auto expected = sssp_unit(pool, g, sources[lane] % g.num_vertices(),
                                      AnalyticsKernel::pull);
      for (vid_t v = 0; v < g.num_vertices(); ++v) {
        ASSERT_EQ(batch.values[v * sources.size() + lane], expected.values[v])
            << "kernel " << static_cast<int>(kernel) << " lane " << lane
            << " vertex " << v;
      }
    }
  }
}

TEST(MultiSourceBfs, UnreachedLanesStayInfinite) {
  const std::vector<Edge> edges = {{0, 1}};
  const Graph g = build_graph(3, edges);
  ThreadPool pool(2);
  const std::vector<vid_t> sources = {0, 2};
  const auto r = bfs_multi_source(pool, g, sources, AnalyticsKernel::pull);
  EXPECT_EQ(r.values[1 * 2 + 0], 1.0);        // 0 -> 1 in lane 0
  EXPECT_TRUE(std::isinf(r.values[2 * 2 + 0]));  // 2 unreached from 0
  EXPECT_TRUE(std::isinf(r.values[0 * 2 + 1]));  // 0 unreached from 2
  EXPECT_EQ(r.values[2 * 2 + 1], 0.0);        // source itself in lane 1
}

TEST(SsspUnit, TriangleInequalityOverEdges) {
  // Property: for every edge (u,v), dist[v] <= dist[u] + 1.
  ThreadPool pool(2);
  const Graph g = small_rmat(8, 6);
  const auto result = sssp_unit(pool, g, 3, AnalyticsKernel::pull);
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    if (std::isinf(result.values[u])) continue;
    for (const vid_t v : g.out().neighbors(u)) {
      ASSERT_LE(result.values[v], result.values[u] + 1.0);
    }
  }
}

}  // namespace
}  // namespace ihtl
