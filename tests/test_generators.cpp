#include <gtest/gtest.h>

#include "gen/datasets.h"
#include "gen/generators.h"
#include "gen/rng.h"
#include "graph/stats.h"

namespace ihtl {
namespace {

// ---------------------------------------------------------------------- rng

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);  // roughly uniform
}

// --------------------------------------------------------------------- rmat

TEST(Rmat, EdgeCountMatchesParams) {
  RmatParams p;
  p.scale = 10;
  p.edge_factor = 8;
  p.reciprocity = 0.0;
  const auto edges = rmat_edges(p);
  EXPECT_EQ(edges.size(), (1u << 10) * 8u);
}

TEST(Rmat, ReciprocityAddsReverseEdges) {
  RmatParams p;
  p.scale = 10;
  p.edge_factor = 8;
  p.reciprocity = 1.0;
  const auto edges = rmat_edges(p);
  EXPECT_EQ(edges.size(), 2u * (1u << 10) * 8u);
}

TEST(Rmat, DeterministicPerSeed) {
  RmatParams p;
  p.scale = 9;
  p.seed = 5;
  const auto a = rmat_edges(p);
  const auto b = rmat_edges(p);
  EXPECT_EQ(a, b);
  p.seed = 6;
  EXPECT_NE(rmat_edges(p), a);
}

TEST(Rmat, VertexIdsInRange) {
  RmatParams p;
  p.scale = 9;
  for (const Edge& e : rmat_edges(p)) {
    ASSERT_LT(e.src, 1u << 9);
    ASSERT_LT(e.dst, 1u << 9);
  }
}

TEST(Rmat, ProducesSkewedInDegrees) {
  RmatParams p;
  p.scale = 12;
  p.edge_factor = 16;
  const Graph g = build_eval_graph(1u << 12, rmat_edges(p));
  const GraphStats s = compute_stats(g);
  EXPECT_GT(static_cast<double>(s.max_in_degree), 10.0 * s.avg_degree);
}

TEST(Rmat, HubsNotConcentratedAtLowIds) {
  // The ID scrambler must scatter hubs across the ID space.
  RmatParams p;
  p.scale = 12;
  p.edge_factor = 16;
  const Graph g = build_eval_graph(1u << 12, rmat_edges(p));
  vid_t top = 0;
  for (vid_t v = 1; v < g.num_vertices(); ++v) {
    if (g.in_degree(v) > g.in_degree(top)) top = v;
  }
  // Probability the max-degree vertex lands in the lowest 1% by chance is
  // ~1%; the unscrambled RMAT would put it at ID 0 deterministically.
  EXPECT_GT(top, g.num_vertices() / 100);
}

// ---------------------------------------------------------------------- web

TEST(Web, OutDegreeBounded) {
  WebParams p;
  p.num_vertices = 1u << 12;
  p.max_out_degree = 32;
  const Graph g = build_eval_graph(p.num_vertices, web_edges(p));
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    ASSERT_LE(g.out_degree(v), 32u);
  }
}

TEST(Web, HasExtremeInHubsButNoOutHubs) {
  WebParams p;
  p.num_vertices = 1u << 13;
  p.hub_fraction = 0.002;
  p.hub_edge_share = 0.6;
  const Graph g = build_eval_graph(p.num_vertices, web_edges(p));
  const GraphStats s = compute_stats(g);
  // Table 1's SK shape: max in-degree orders of magnitude over max out.
  EXPECT_GT(s.max_in_degree, 20u * s.max_out_degree);
}

TEST(Web, Deterministic) {
  WebParams p;
  p.num_vertices = 1u << 10;
  EXPECT_EQ(web_edges(p), web_edges(p));
}

// -------------------------------------------------------------- erdos-renyi

TEST(ErdosRenyi, NoSkew) {
  const Graph g = build_eval_graph(1u << 12, erdos_renyi_edges(1u << 12, 1u << 16, 3));
  const GraphStats s = compute_stats(g);
  // Uniform random graph: max degree stays within a small factor of mean.
  EXPECT_LT(static_cast<double>(s.max_in_degree), 5.0 * s.avg_degree);
}

// ----------------------------------------------------------------- datasets

TEST(Datasets, RegistryHasAllTenPaperDatasets) {
  const auto& specs = all_datasets();
  ASSERT_EQ(specs.size(), 10u);
  EXPECT_EQ(specs[0].name, "LvJrnl");
  EXPECT_EQ(specs[4].name, "SK");
  EXPECT_EQ(specs[9].name, "ClWb9");
  int social = 0, web = 0;
  for (const auto& s : specs) {
    (s.kind == DatasetKind::social ? social : web)++;
  }
  EXPECT_EQ(social, 4);  // Table 1: first 4 are social networks
  EXPECT_EQ(web, 6);
}

TEST(Datasets, LookupByNameThrowsOnUnknown) {
  EXPECT_EQ(dataset_spec("SK").kind, DatasetKind::web);
  EXPECT_THROW(dataset_spec("nope"), std::out_of_range);
}

TEST(Datasets, TinyScaleIsSmallAndClean) {
  const Graph g = make_dataset("LvJrnl", DatasetScale::tiny);
  EXPECT_GT(g.num_vertices(), 100u);
  EXPECT_LT(g.num_vertices(), 2048u);
  EXPECT_TRUE(g.valid());
  // Evaluation preprocessing: no zero-degree vertices.
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    ASSERT_GT(g.in_degree(v) + g.out_degree(v), 0u);
  }
}

TEST(Datasets, DeterministicAcrossCalls) {
  const Graph a = make_dataset("Twtr10", DatasetScale::tiny);
  const Graph b = make_dataset("Twtr10", DatasetScale::tiny);
  EXPECT_EQ(to_edge_list(a), to_edge_list(b));
}

TEST(Datasets, SkewOrderingRespected) {
  // SK (skew 0.95) must concentrate in-edges far more than Frndstr (0.15).
  const GraphStats sk = compute_stats(make_dataset("SK", DatasetScale::small));
  const GraphStats fr =
      compute_stats(make_dataset("Frndstr", DatasetScale::small));
  EXPECT_GT(sk.top1pct_in_edge_share, fr.top1pct_in_edge_share);
}

class AllDatasetsTest : public ::testing::TestWithParam<DatasetSpec> {};

TEST_P(AllDatasetsTest, BuildsValidSkewedGraph) {
  const Graph g = make_dataset(GetParam(), DatasetScale::tiny);
  EXPECT_TRUE(g.valid());
  const GraphStats s = compute_stats(g);
  EXPECT_GT(s.num_edges, s.num_vertices);  // dense enough to be interesting
  // Every dataset must have in-hubs (iHTL's precondition).
  EXPECT_GT(static_cast<double>(s.max_in_degree), 4.0 * s.avg_degree);
}

INSTANTIATE_TEST_SUITE_P(
    Registry, AllDatasetsTest, ::testing::ValuesIn(all_datasets()),
    [](const ::testing::TestParamInfo<DatasetSpec>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace ihtl
