// Tests for the direction-optimizing BFS baseline (Section 5.2 family).
#include <gtest/gtest.h>

#include <cmath>

#include "apps/analytics.h"
#include "apps/bfs.h"
#include "test_util.h"

namespace ihtl {
namespace {

using testing::small_rmat;
using testing::small_web;

TEST(Bfs, ChainLevels) {
  std::vector<Edge> edges;
  for (vid_t v = 0; v + 1 < 10; ++v) edges.push_back({v, v + 1});
  const Graph g = build_graph(10, edges);
  ThreadPool pool(2);
  const BfsResult r = bfs(pool, g, 0);
  for (vid_t v = 0; v < 10; ++v) {
    EXPECT_EQ(r.level[v], static_cast<std::int64_t>(v));
  }
}

TEST(Bfs, UnreachableVerticesMarked) {
  const std::vector<Edge> edges = {{0, 1}};
  const Graph g = build_graph(3, edges);
  ThreadPool pool(2);
  const BfsResult r = bfs(pool, g, 0);
  EXPECT_EQ(r.level[0], 0);
  EXPECT_EQ(r.level[1], 1);
  EXPECT_EQ(r.level[2], BfsResult::kUnreached);
}

TEST(Bfs, DirectionIsRespected) {
  // Edges are directed: BFS from the sink reaches nothing.
  const std::vector<Edge> edges = {{0, 1}, {1, 2}};
  const Graph g = build_graph(3, edges);
  ThreadPool pool(2);
  const BfsResult r = bfs(pool, g, 2);
  EXPECT_EQ(r.level[2], 0);
  EXPECT_EQ(r.level[0], BfsResult::kUnreached);
  EXPECT_EQ(r.level[1], BfsResult::kUnreached);
}

class BfsModesTest : public ::testing::TestWithParam<BfsMode> {};

TEST_P(BfsModesTest, AllModesMatchSsspLevels) {
  // sssp_unit's Bellman-Ford levels are the ground truth.
  const Graph g = small_rmat(9, 8);
  ThreadPool pool(3);
  vid_t source = 0;
  for (vid_t v = 1; v < g.num_vertices(); ++v) {
    if (g.out_degree(v) > g.out_degree(source)) source = v;
  }
  const AnalyticsResult truth =
      sssp_unit(pool, g, source, AnalyticsKernel::pull);
  BfsOptions opt;
  opt.mode = GetParam();
  const BfsResult r = bfs(pool, g, source, opt);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (std::isinf(truth.values[v])) {
      ASSERT_EQ(r.level[v], BfsResult::kUnreached) << v;
    } else {
      ASSERT_EQ(r.level[v], static_cast<std::int64_t>(truth.values[v])) << v;
    }
  }
}

TEST_P(BfsModesTest, WebGraphMatchesSssp) {
  const Graph g = small_web(1u << 10);
  ThreadPool pool(2);
  const AnalyticsResult truth = sssp_unit(pool, g, 3, AnalyticsKernel::pull);
  BfsOptions opt;
  opt.mode = GetParam();
  const BfsResult r = bfs(pool, g, 3, opt);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (std::isinf(truth.values[v])) {
      ASSERT_EQ(r.level[v], BfsResult::kUnreached);
    } else {
      ASSERT_EQ(r.level[v], static_cast<std::int64_t>(truth.values[v]));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Modes, BfsModesTest,
    ::testing::Values(BfsMode::top_down, BfsMode::bottom_up,
                      BfsMode::direction_optimizing),
    [](const ::testing::TestParamInfo<BfsMode>& info) {
      switch (info.param) {
        case BfsMode::top_down:
          return "top_down";
        case BfsMode::bottom_up:
          return "bottom_up";
        case BfsMode::direction_optimizing:
          return "direction_optimizing";
      }
      return "unknown";
    });

TEST(Bfs, DirectionOptimizingUsesBottomUpOnDenseComponent) {
  // On a symmetrized skewed graph the frontier explodes after one hop; the
  // heuristic must pick bottom-up at least once.
  const Graph g = symmetrize(small_rmat(10, 16));
  ThreadPool pool(2);
  vid_t source = 0;
  for (vid_t v = 1; v < g.num_vertices(); ++v) {
    if (g.out_degree(v) > g.out_degree(source)) source = v;
  }
  const BfsResult r = bfs(pool, g, source);
  EXPECT_GT(r.bottom_up_steps, 0u);
  EXPECT_LT(r.bottom_up_steps, r.steps);  // and switches back for the tail
}

TEST(Bfs, SingleVertexGraph) {
  const Graph g = build_graph(1, {});
  ThreadPool pool(2);
  const BfsResult r = bfs(pool, g, 0);
  EXPECT_EQ(r.level[0], 0);
  EXPECT_EQ(r.steps, 1u);  // one (empty) expansion step
}

}  // namespace
}  // namespace ihtl
