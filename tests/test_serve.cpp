// Tests for the serve subsystem: wire protocol, result cache, admission
// batcher, GraphSession oracle equivalence, and the full TCP server loop.
// The heavier concurrent-client differential coverage lives in the serve
// lattice (src/check/serve_check.*, driven by ihtl_check --serve-points);
// these tests pin down each layer's contract in isolation.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "apps/analytics.h"
#include "cli/commands.h"
#include "core/ihtl_update.h"
#include "apps/pagerank.h"
#include "serve/batcher.h"
#include "serve/phase_stats.h"
#include "serve/protocol.h"
#include "serve/result_cache.h"
#include "serve/server.h"
#include "serve/session.h"
#include "serve/watchdog.h"
#include "telemetry/event_log.h"
#include "telemetry/exposition.h"
#include "telemetry/histogram.h"
#include "telemetry/metrics.h"
#include "telemetry/request_context.h"
#include "telemetry/trace.h"
#include "test_util.h"

namespace ihtl {
namespace {

using serve::Batcher;
using serve::BatcherOptions;
using serve::GraphSession;
using serve::QueryOp;
using serve::QueryRequest;
using serve::ResultCache;
using serve::SessionOptions;
using telemetry::JsonValue;
using testing::small_web;

// ---------------------------------------------------------------- protocol

QueryRequest ppr_request(std::vector<vid_t> sources, unsigned iterations = 5,
                         double damping = 0.85) {
  QueryRequest req;
  req.op = QueryOp::ppr;
  req.sources = std::move(sources);
  req.iterations = iterations;
  req.damping = damping;
  return req;
}

QueryRequest update_request(std::vector<Edge> insert,
                            std::vector<Edge> remove = {}) {
  QueryRequest req;
  req.op = QueryOp::update;
  req.insert = std::move(insert);
  req.remove = std::move(remove);
  return req;
}

/// First (u, v) pair absent from g — for must-reject update batches.
Edge missing_edge(const Graph& g) {
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    std::vector<vid_t> row(g.out().neighbors(u).begin(),
                           g.out().neighbors(u).end());
    std::sort(row.begin(), row.end());
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
      if (!std::binary_search(row.begin(), row.end(), v)) return {u, v};
    }
  }
  ADD_FAILURE() << "graph is complete; cannot build a missing edge";
  return {0, 0};
}

TEST(ServeProtocol, OpNamesRoundTrip) {
  for (const QueryOp op : {QueryOp::ppr, QueryOp::bfs, QueryOp::spmv,
                           QueryOp::update, QueryOp::stats,
                           QueryOp::bump_epoch, QueryOp::shutdown}) {
    const auto back = serve::op_from_name(serve::op_name(op));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, op);
  }
  EXPECT_FALSE(serve::op_from_name("pagerank").has_value());
}

TEST(ServeProtocol, RequestJsonRoundTrip) {
  QueryRequest req = ppr_request({3, 1, 4}, 7, 0.9);
  req.use_cache = false;
  const QueryRequest back = serve::parse_request(serve::request_to_json(req));
  EXPECT_EQ(back.op, QueryOp::ppr);
  EXPECT_EQ(back.sources, req.sources);
  EXPECT_EQ(back.iterations, 7u);
  EXPECT_DOUBLE_EQ(back.damping, 0.9);
  EXPECT_FALSE(back.use_cache);

  QueryRequest spmv;
  spmv.op = QueryOp::spmv;
  spmv.x_seed = 42;
  const QueryRequest sback =
      serve::parse_request(serve::request_to_json(spmv));
  EXPECT_EQ(sback.op, QueryOp::spmv);
  EXPECT_EQ(sback.x_seed, 42u);
  EXPECT_TRUE(sback.use_cache);
}

TEST(ServeProtocol, UpdateRequestJsonRoundTrip) {
  const QueryRequest req =
      update_request({{1, 2}, {2, 2}}, {{7, 3}});
  const QueryRequest back = serve::parse_request(serve::request_to_json(req));
  EXPECT_EQ(back.op, QueryOp::update);
  EXPECT_EQ(back.insert, req.insert);
  EXPECT_EQ(back.remove, req.remove);

  // Either side may be empty on the wire.
  const QueryRequest ins_only =
      serve::parse_request(serve::request_to_json(update_request({{0, 1}})));
  EXPECT_EQ(ins_only.insert, (std::vector<Edge>{{0, 1}}));
  EXPECT_TRUE(ins_only.remove.empty());
}

TEST(ServeProtocol, UpdateParseRejectsMalformedEdges) {
  const auto parse = [](const std::string& text) {
    return serve::parse_request(JsonValue::parse(text));
  };
  EXPECT_THROW(parse(R"({"op": "update", "insert": [[1]]})"),
               std::runtime_error);
  EXPECT_THROW(parse(R"({"op": "update", "insert": [[1, 2, 3]]})"),
               std::runtime_error);
  EXPECT_THROW(parse(R"({"op": "update", "remove": [[-1, 2]]})"),
               std::runtime_error);
  EXPECT_THROW(parse(R"({"op": "update", "insert": 5})"),
               std::runtime_error);
  // Over the per-request edge cap.
  std::string many = R"({"op": "update", "insert": [)";
  for (std::size_t i = 0; i <= serve::kMaxUpdateEdgesPerRequest; ++i) {
    if (i) many += ",";
    many += "[1,2]";
  }
  many += "]}";
  EXPECT_THROW(parse(many), std::runtime_error);
}

TEST(ServeProtocol, ParseRejectsSchemaViolations) {
  const auto parse = [](const std::string& text) {
    return serve::parse_request(JsonValue::parse(text));
  };
  EXPECT_THROW(parse(R"({"op": "nope"})"), std::runtime_error);
  EXPECT_THROW(parse(R"({"op": "ppr", "sources": []})"), std::runtime_error);
  EXPECT_THROW(parse(R"({"op": "bfs"})"), std::runtime_error);
  EXPECT_THROW(parse(R"({"op": "ppr", "sources": [-1]})"),
               std::runtime_error);
  EXPECT_THROW(parse(R"({"op": "ppr", "sources": [0], "iterations": 0})"),
               std::runtime_error);
  EXPECT_THROW(parse(R"({"op": "ppr", "sources": [0], "damping": 1.0})"),
               std::runtime_error);
  // One source over the lane cap.
  std::string many = R"({"op": "bfs", "sources": [)";
  for (std::size_t i = 0; i <= serve::kMaxSourcesPerRequest; ++i) {
    if (i) many += ",";
    many += std::to_string(i);
  }
  many += "]}";
  EXPECT_THROW(parse(many), std::runtime_error);
}

TEST(ServeProtocol, FingerprintCoversParamsBatchClassDoesNot) {
  const QueryRequest a = ppr_request({1, 2});
  const QueryRequest b = ppr_request({1, 3});
  // Sources are per-lane parameters: they change the fingerprint (cache
  // identity) but not the batch class (coalescing identity).
  EXPECT_NE(serve::fingerprint(a), serve::fingerprint(b));
  EXPECT_EQ(serve::batch_class(a), serve::batch_class(b));
  // Iterations/damping change the traversal itself, so both differ.
  const QueryRequest c = ppr_request({1, 2}, 9);
  EXPECT_NE(serve::fingerprint(a), serve::fingerprint(c));
  EXPECT_NE(serve::batch_class(a), serve::batch_class(c));
  // Same for spmv seeds: distinct seeds are distinct cache entries but
  // coalesce into one batched traversal.
  QueryRequest s1, s2;
  s1.op = s2.op = QueryOp::spmv;
  s1.x_seed = 1;
  s2.x_seed = 2;
  EXPECT_NE(serve::fingerprint(s1), serve::fingerprint(s2));
  EXPECT_EQ(serve::batch_class(s1), serve::batch_class(s2));
  // Different ops never share a class.
  QueryRequest bfs;
  bfs.op = QueryOp::bfs;
  bfs.sources = {1, 2};
  EXPECT_NE(serve::batch_class(a), serve::batch_class(bfs));
}

TEST(ServeProtocol, FrameRoundTripOverSocketpair) {
  int fds[2];
  ASSERT_EQ(0, socketpair(AF_UNIX, SOCK_STREAM, 0, fds));
  const std::string payload = R"({"op": "stats"})";
  serve::write_frame(fds[0], payload);
  std::string got;
  ASSERT_TRUE(serve::read_frame(fds[1], got));
  EXPECT_EQ(got, payload);
  // Clean EOF surfaces as false, not an exception.
  ::close(fds[0]);
  EXPECT_FALSE(serve::read_frame(fds[1], got));
  ::close(fds[1]);
}

TEST(ServeProtocol, OversizedFrameHeaderRejected) {
  int fds[2];
  ASSERT_EQ(0, socketpair(AF_UNIX, SOCK_STREAM, 0, fds));
  // A header advertising > kMaxFrameBytes must throw, not allocate.
  const std::uint32_t huge = serve::kMaxFrameBytes + 1;
  unsigned char header[4] = {
      static_cast<unsigned char>(huge >> 24),
      static_cast<unsigned char>(huge >> 16),
      static_cast<unsigned char>(huge >> 8),
      static_cast<unsigned char>(huge),
  };
  ASSERT_EQ(4, ::send(fds[0], header, 4, 0));
  std::string got;
  EXPECT_THROW(serve::read_frame(fds[1], got), std::runtime_error);
  ::close(fds[0]);
  ::close(fds[1]);
}

// ------------------------------------------------------------ result cache

ResultCache::Value make_value(std::size_t n, value_t fill) {
  return std::make_shared<const std::vector<value_t>>(n, fill);
}

TEST(ServeResultCache, MissThenHitThenEpochInvalidates) {
  ResultCache cache(1 << 20);
  EXPECT_EQ(nullptr, cache.get("q", 0));
  cache.put("q", 0, make_value(8, 1.0));
  const ResultCache::Value hit = cache.get("q", 0);
  ASSERT_NE(nullptr, hit);
  EXPECT_DOUBLE_EQ((*hit)[0], 1.0);
  // Same fingerprint at a newer epoch is a different key entirely.
  EXPECT_EQ(nullptr, cache.get("q", 1));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(ServeResultCache, LruEvictsWithinBudget) {
  // One shard so the LRU order is globally observable; each value is
  // ~4 KiB, the budget fits only a few.
  ResultCache cache(10 << 10, 1);
  cache.put("a", 0, make_value(512, 1.0));
  cache.put("b", 0, make_value(512, 2.0));
  ASSERT_NE(nullptr, cache.get("a", 0));  // refresh: "b" is now LRU
  cache.put("c", 0, make_value(512, 3.0));
  EXPECT_NE(nullptr, cache.get("a", 0));
  EXPECT_NE(nullptr, cache.get("c", 0));
  EXPECT_EQ(nullptr, cache.get("b", 0));  // evicted as least-recently-used
  EXPECT_GE(cache.evictions(), 1u);
  EXPECT_LE(cache.bytes(), 10u << 10);
}

TEST(ServeResultCache, ZeroBudgetDisablesAndOversizedNotAdmitted) {
  ResultCache off(0);
  EXPECT_FALSE(off.enabled());
  off.put("q", 0, make_value(8, 1.0));
  EXPECT_EQ(nullptr, off.get("q", 0));

  ResultCache tiny(1 << 10, 1);
  tiny.put("big", 0, make_value(1 << 16, 1.0));  // 512 KiB > whole budget
  EXPECT_EQ(nullptr, tiny.get("big", 0));
  EXPECT_EQ(tiny.entries(), 0u);
}

TEST(ServeResultCache, ExportsAbsoluteGauges) {
  ResultCache cache(1 << 20);
  cache.put("q", 0, make_value(8, 1.0));
  cache.get("q", 0);
  cache.get("absent", 0);
  telemetry::MetricsRegistry reg;
  cache.export_gauges(reg, "serve.cache");
  cache.export_gauges(reg, "serve.cache");  // idempotent
  const auto gauges = reg.gauges();
  EXPECT_DOUBLE_EQ(gauges.at("serve.cache.hits"), 1.0);
  EXPECT_DOUBLE_EQ(gauges.at("serve.cache.misses"), 1.0);
  EXPECT_DOUBLE_EQ(gauges.at("serve.cache.hit_rate"), 0.5);
  EXPECT_DOUBLE_EQ(gauges.at("serve.cache.entries"), 1.0);
}

// ---------------------------------------------------------------- batcher

/// Echo compute: each request's result is lanes() copies of its first
/// source (or its x_seed). Enough to verify routing without a graph.
std::vector<std::vector<value_t>> echo_compute(const Batcher::Group& g) {
  std::vector<std::vector<value_t>> out;
  out.reserve(g.requests.size());
  for (const QueryRequest& r : g.requests) {
    const value_t v = r.op == QueryOp::spmv
                          ? static_cast<value_t>(r.x_seed)
                          : static_cast<value_t>(r.sources.front());
    out.emplace_back(r.lanes(), v);
  }
  return out;
}

TEST(ServeBatcher, FullClassFlushesAsOneGroup) {
  // Deadline far away: the only way the submits can complete is a full
  // flush, so the coalescing assertion is deterministic.
  BatcherOptions opt;
  opt.max_lanes = 4;
  opt.max_delay = std::chrono::microseconds(10'000'000);
  Batcher batcher(opt, echo_compute);
  std::vector<std::thread> producers;
  std::vector<std::vector<value_t>> results(4);
  for (std::size_t i = 0; i < 4; ++i) {
    producers.emplace_back([&batcher, &results, i] {
      results[i] = batcher.submit(ppr_request({static_cast<vid_t>(i)}));
    });
  }
  for (auto& t : producers) t.join();
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_EQ(results[i].size(), 1u);
    EXPECT_DOUBLE_EQ(results[i][0], static_cast<value_t>(i));
  }
  EXPECT_EQ(batcher.flushes(), 1u);
  EXPECT_EQ(batcher.full_flushes(), 1u);
  EXPECT_EQ(batcher.lanes_flushed(), 4u);
  EXPECT_DOUBLE_EQ(batcher.mean_lane_occupancy(), 4.0);
  batcher.stop();
}

TEST(ServeBatcher, DeadlineFlushesPartialGroup) {
  BatcherOptions opt;
  opt.max_lanes = 8;
  opt.max_delay = std::chrono::microseconds(500);
  Batcher batcher(opt, echo_compute);
  const std::vector<value_t> r = batcher.submit(ppr_request({7}));
  ASSERT_EQ(r.size(), 1u);
  EXPECT_DOUBLE_EQ(r[0], 7.0);
  EXPECT_EQ(batcher.flushes(), 1u);
  EXPECT_EQ(batcher.deadline_flushes(), 1u);
  EXPECT_EQ(batcher.full_flushes(), 0u);
  batcher.stop();
}

TEST(ServeBatcher, OversizedRequestFlushesAlone) {
  BatcherOptions opt;
  opt.max_lanes = 2;
  opt.max_delay = std::chrono::microseconds(500);
  Batcher batcher(opt, echo_compute);
  const std::vector<value_t> r = batcher.submit(ppr_request({1, 2, 3}));
  EXPECT_EQ(r.size(), 3u);
  EXPECT_EQ(batcher.flushes(), 1u);
  EXPECT_EQ(batcher.lanes_flushed(), 3u);
  batcher.stop();
}

TEST(ServeBatcher, DistinctClassesNeverShareAGroup) {
  BatcherOptions opt;
  opt.max_lanes = 8;
  opt.max_delay = std::chrono::microseconds(500);
  std::mutex mu;
  std::vector<std::vector<std::string>> groups;
  Batcher batcher(opt, [&](const Batcher::Group& g) {
    std::lock_guard<std::mutex> lock(mu);
    std::vector<std::string> classes;
    for (const QueryRequest& r : g.requests) {
      classes.push_back(serve::batch_class(r));
    }
    groups.push_back(std::move(classes));
    return echo_compute(g);
  });
  std::thread t1([&] { batcher.submit(ppr_request({1}, 5)); });
  std::thread t2([&] { batcher.submit(ppr_request({2}, 9)); });
  t1.join();
  t2.join();
  batcher.stop();
  ASSERT_GE(groups.size(), 2u);
  for (const auto& classes : groups) {
    for (const auto& c : classes) EXPECT_EQ(c, classes.front());
  }
}

TEST(ServeBatcher, DropFaultRetriesUntilServed) {
  BatcherOptions opt;
  opt.max_lanes = 8;
  opt.max_delay = std::chrono::microseconds(200);
  opt.fault.drop_flushes = 2;
  Batcher batcher(opt, echo_compute);
  const std::vector<value_t> r = batcher.submit(ppr_request({5}));
  ASSERT_EQ(r.size(), 1u);
  EXPECT_DOUBLE_EQ(r[0], 5.0);
  EXPECT_EQ(batcher.dropped_flushes(), 2u);
  batcher.stop();
}

TEST(ServeBatcher, StopDrainsPendingRequests) {
  // The deadline is effectively infinite, so only stop() can release the
  // waiting submit — stop must drain, not abandon.
  BatcherOptions opt;
  opt.max_lanes = 8;
  opt.max_delay = std::chrono::microseconds(10'000'000);
  Batcher batcher(opt, echo_compute);
  std::vector<value_t> result;
  std::thread waiter(
      [&] { result = batcher.submit(ppr_request({9})); });
  while (batcher.queue_depth() == 0) std::this_thread::yield();
  batcher.stop();
  waiter.join();
  ASSERT_EQ(result.size(), 1u);
  EXPECT_DOUBLE_EQ(result[0], 9.0);
  batcher.stop();  // idempotent
  EXPECT_THROW(batcher.submit(ppr_request({1})), std::runtime_error);
}

TEST(ServeBatcher, ComputeExceptionPropagatesToSubmitter) {
  BatcherOptions opt;
  opt.max_delay = std::chrono::microseconds(100);
  Batcher batcher(opt, [](const Batcher::Group&)
                           -> std::vector<std::vector<value_t>> {
    throw std::runtime_error("engine on fire");
  });
  EXPECT_THROW(batcher.submit(ppr_request({1})), std::runtime_error);
  batcher.stop();
}

// ------------------------------------------------------------ GraphSession

SessionOptions one_thread_session() {
  SessionOptions opt;
  opt.ihtl.buffer_bytes = 32 * sizeof(value_t);
  opt.threads = 1;
  return opt;
}

TEST(ServeSession, PprBatchMatchesAppPersonalizedBatch) {
  const Graph g = small_web(1 << 9);
  GraphSession session(small_web(1 << 9), one_thread_session());
  const std::vector<vid_t> sources = {3, 17, 101};
  const std::vector<value_t> got = session.ppr_batch(sources, 5, 0.85);

  ThreadPool pool(1);
  IhtlConfig cfg;
  cfg.buffer_bytes = 32 * sizeof(value_t);
  const IhtlGraph ig = build_ihtl_graph(g, cfg);
  PageRankOptions popt;
  popt.iterations = 5;
  popt.tolerance = 0.0;  // fixed-count, like the session
  const PageRankResult want =
      pagerank_personalized_batch(pool, g, ig, sources, popt);
  ASSERT_EQ(got.size(), want.ranks.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_DOUBLE_EQ(got[i], want.ranks[i]) << "at " << i;
  }
}

TEST(ServeSession, BfsBatchMatchesAppWithMinusOneForUnreachable) {
  const Graph g = small_web(1 << 9);
  GraphSession session(small_web(1 << 9), one_thread_session());
  const std::vector<vid_t> sources = {0, 42};
  const std::vector<value_t> got = session.bfs_batch(sources);

  ThreadPool pool(1);
  IhtlConfig cfg;
  cfg.buffer_bytes = 32 * sizeof(value_t);
  const AnalyticsResult want =
      bfs_multi_source(pool, g, sources, AnalyticsKernel::ihtl, cfg);
  ASSERT_EQ(got.size(), want.values.size());
  bool saw_unreachable = false;
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (std::isinf(want.values[i])) {
      EXPECT_DOUBLE_EQ(got[i], -1.0) << "at " << i;
      saw_unreachable = true;
    } else {
      EXPECT_DOUBLE_EQ(got[i], want.values[i]) << "at " << i;
    }
  }
  // The web generator leaves some vertices unreachable from low sources;
  // if this ever stops holding, pick different sources so the -1 mapping
  // stays exercised.
  EXPECT_TRUE(saw_unreachable);
}

TEST(ServeSession, SpmvBatchMatchesEngineOnDerivedInput) {
  const Graph g = small_web(1 << 9);
  GraphSession session(small_web(1 << 9), one_thread_session());
  const std::uint64_t seed = 99;
  const std::vector<std::uint64_t> seeds = {seed};
  const std::vector<value_t> got = session.spmv_batch(seeds);

  ThreadPool pool(1);
  IhtlConfig cfg;
  cfg.buffer_bytes = 32 * sizeof(value_t);
  const IhtlGraph ig = build_ihtl_graph(g, cfg);
  const vid_t n = g.num_vertices();
  std::vector<value_t> x(n), want(n);
  for (vid_t v = 0; v < n; ++v) x[v] = serve::spmv_input_value(seed, v);
  ihtl_spmv_once(pool, ig, x, want);
  ASSERT_EQ(got.size(), want.size());
  for (vid_t v = 0; v < n; ++v) EXPECT_DOUBLE_EQ(got[v], want[v]);
}

TEST(ServeSession, BatchCompositionDoesNotChangeALanesAnswer) {
  // The whole admission-queue design rests on this: with a 1-thread pool a
  // lane's answer is bitwise independent of which requests were coalesced
  // around it.
  GraphSession session(small_web(1 << 9), one_thread_session());
  const std::vector<vid_t> all = {3, 17, 101, 7};
  const std::vector<value_t> fused = session.ppr_batch(all, 4, 0.85);
  const vid_t n = session.num_vertices();
  for (std::size_t lane = 0; lane < all.size(); ++lane) {
    const std::vector<vid_t> solo = {all[lane]};
    const std::vector<value_t> alone = session.ppr_batch(solo, 4, 0.85);
    for (vid_t v = 0; v < n; ++v) {
      ASSERT_EQ(alone[v], fused[static_cast<std::size_t>(v) * all.size() +
                                lane])
          << "lane " << lane << " vertex " << v;
    }
  }
}

TEST(ServeSession, DrainThenComputeStillWorksSerially) {
  GraphSession session(small_web(1 << 8), one_thread_session());
  const std::vector<vid_t> sources = {5};
  const std::vector<value_t> before = session.ppr_batch(sources, 3, 0.85);
  session.drain();
  session.drain();  // idempotent
  const std::vector<value_t> after = session.ppr_batch(sources, 3, 0.85);
  EXPECT_EQ(before, after);
}

TEST(ServeSession, EpochBumpsMonotonically) {
  GraphSession session(small_web(1 << 8), one_thread_session());
  EXPECT_EQ(session.epoch(), 0u);
  session.bump_epoch();
  session.bump_epoch();
  EXPECT_EQ(session.epoch(), 2u);
}

// ---------------------------------------------------------------- server

class ServeServerTest : public ::testing::Test {
 protected:
  ServeServerTest()
      : session_(small_web(1 << 8), one_thread_session()),
        server_(session_, make_options()) {
    client_.connect("127.0.0.1", server_.port());
  }
  static serve::ServerOptions make_options() {
    serve::ServerOptions opt;
    opt.max_lanes = 4;
    opt.max_batch_delay = std::chrono::microseconds(100);
    opt.cache_bytes = 4 << 20;
    return opt;
  }

  GraphSession session_;
  serve::Server server_;
  serve::Client client_;
};

TEST_F(ServeServerTest, ComputeCacheEpochAndStatsContract) {
  const QueryRequest req = ppr_request({3, 9}, 4);
  const JsonValue first = client_.roundtrip(req);
  ASSERT_TRUE(first.find("ok")->as_bool()) << first.dump();
  EXPECT_FALSE(first.find("cached")->as_bool());
  const auto& values = first.find("values")->items();
  ASSERT_EQ(values.size(),
            static_cast<std::size_t>(session_.num_vertices()) * 2);

  // Same request again: served verbatim from the cache.
  const JsonValue second = client_.roundtrip(req);
  ASSERT_TRUE(second.find("ok")->as_bool());
  EXPECT_TRUE(second.find("cached")->as_bool());
  const auto& cached_values = second.find("values")->items();
  ASSERT_EQ(cached_values.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(values[i].as_number(), cached_values[i].as_number());
  }

  // An epoch bump invalidates: the third answer is recomputed yet equal.
  QueryRequest bump;
  bump.op = QueryOp::bump_epoch;
  const JsonValue bumped = client_.roundtrip(bump);
  ASSERT_TRUE(bumped.find("ok")->as_bool());
  EXPECT_EQ(bumped.find("epoch")->as_number(), 1.0);
  const JsonValue third = client_.roundtrip(req);
  EXPECT_FALSE(third.find("cached")->as_bool());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(values[i].as_number(),
              third.find("values")->items()[i].as_number());
  }

  // Stats reflect what just happened.
  QueryRequest stats;
  stats.op = QueryOp::stats;
  const JsonValue s = client_.roundtrip(stats);
  ASSERT_TRUE(s.find("ok")->as_bool());
  const JsonValue* gauges = s.find("stats")->find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_GE(gauges->find("serve.cache.hits")->as_number(), 1.0);
  EXPECT_GE(gauges->find("serve.latency.count")->as_number(), 3.0);
  EXPECT_GE(gauges->find("serve.batch.flushes")->as_number(), 2.0);
  EXPECT_EQ(server_.requests_served(), 3u);
}

TEST_F(ServeServerTest, CacheOptOutRecomputes) {
  QueryRequest req = ppr_request({11}, 3);
  req.use_cache = false;
  const JsonValue first = client_.roundtrip(req);
  const JsonValue second = client_.roundtrip(req);
  ASSERT_TRUE(first.find("ok")->as_bool());
  ASSERT_TRUE(second.find("ok")->as_bool());
  EXPECT_FALSE(first.find("cached")->as_bool());
  EXPECT_FALSE(second.find("cached")->as_bool());
}

TEST_F(ServeServerTest, MalformedRequestGetsErrorNotDisconnect) {
  JsonValue bad = JsonValue::object();
  bad.set("op", "ppr");  // missing sources
  const JsonValue resp = client_.roundtrip(bad);
  ASSERT_FALSE(resp.find("ok")->as_bool());
  EXPECT_TRUE(resp.find("error")->is_string());
  // The connection survives the error: the next request still works.
  QueryRequest stats;
  stats.op = QueryOp::stats;
  EXPECT_TRUE(client_.roundtrip(stats).find("ok")->as_bool());
}

TEST_F(ServeServerTest, ShutdownOpStopsTheServer) {
  QueryRequest down;
  down.op = QueryOp::shutdown;
  const JsonValue resp = client_.roundtrip(down);
  ASSERT_TRUE(resp.find("ok")->as_bool());
  server_.wait();  // returns because the op signalled stop
  server_.stop();
  EXPECT_FALSE(server_.running());
}

TEST_F(ServeServerTest, ConcurrentClientsAllAnswered) {
  constexpr int kClients = 8;
  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([this, c, &ok] {
      serve::Client cl;
      cl.connect("127.0.0.1", server_.port());
      const JsonValue resp =
          cl.roundtrip(ppr_request({static_cast<vid_t>(c * 3 + 1)}, 3));
      if (resp.find("ok")->as_bool() &&
          resp.find("values")->items().size() ==
              static_cast<std::size_t>(session_.num_vertices())) {
        ok.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(ok.load(), kClients);
}

// ------------------------------------------------------- streaming updates

TEST_F(ServeServerTest, UpdateOpBumpsEpochAndInvalidatesCacheExactlyOnce) {
  const QueryRequest req = ppr_request({3}, 4);
  const JsonValue first = client_.roundtrip(req);
  ASSERT_TRUE(first.find("ok")->as_bool()) << first.dump();
  EXPECT_FALSE(first.find("cached")->as_bool());
  const JsonValue second = client_.roundtrip(req);
  EXPECT_TRUE(second.find("cached")->as_bool());

  const JsonValue up =
      client_.roundtrip(update_request({{1, 2}, {2, 3}, {9, 9}}));
  ASSERT_TRUE(up.find("ok")->as_bool()) << up.dump();
  EXPECT_EQ(up.find("epoch")->as_number(), 1.0);
  EXPECT_EQ(up.find("inserted")->as_number(), 3.0);
  EXPECT_EQ(up.find("removed")->as_number(), 0.0);
  ASSERT_NE(up.find("rebuilt"), nullptr);
  ASSERT_NE(up.find("drift"), nullptr);

  // Exactly one miss at the new epoch, then the cache re-hits.
  const JsonValue third = client_.roundtrip(req);
  ASSERT_TRUE(third.find("ok")->as_bool());
  EXPECT_FALSE(third.find("cached")->as_bool());
  EXPECT_EQ(third.find("epoch")->as_number(), 1.0);
  const JsonValue fourth = client_.roundtrip(req);
  EXPECT_TRUE(fourth.find("cached")->as_bool());

  // The recomputed answer is for the POST-update graph: compare against a
  // fresh session over the same mutation applied out-of-band.
  UpdateBatch batch;
  batch.insert = {{1, 2}, {2, 3}, {9, 9}};
  GraphSession oracle(apply_update(small_web(1 << 8), batch),
                      one_thread_session());
  const std::vector<vid_t> sources = {3};
  const std::vector<value_t> want = oracle.ppr_batch(sources, 4, 0.85);
  const auto& got = third.find("values")->items();
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_NEAR(got[i].as_number(), want[i], 1e-9) << "vertex " << i;
  }
}

TEST_F(ServeServerTest, RejectedUpdateKeepsEpochAndCachedEntries) {
  const QueryRequest req = ppr_request({5}, 3);
  ASSERT_TRUE(client_.roundtrip(req).find("ok")->as_bool());

  // A batch that removes a missing edge is rejected wholesale, even though
  // its insert half alone would be valid.
  const JsonValue resp = client_.roundtrip(
      update_request({{0, 1}}, {missing_edge(session_.graph())}));
  ASSERT_FALSE(resp.find("ok")->as_bool());
  EXPECT_NE(resp.find("error")->as_string().find("update rejected"),
            std::string::npos)
      << resp.dump();

  // Epoch untouched; the cached entry from before is still served.
  QueryRequest stats;
  stats.op = QueryOp::stats;
  EXPECT_EQ(client_.roundtrip(stats).find("epoch")->as_number(), 0.0);
  EXPECT_TRUE(client_.roundtrip(req).find("cached")->as_bool());
}

TEST_F(ServeServerTest, EmptyUpdateIsANoOpAtTheSameEpoch) {
  const JsonValue resp = client_.roundtrip(update_request({}));
  ASSERT_TRUE(resp.find("ok")->as_bool()) << resp.dump();
  EXPECT_EQ(resp.find("epoch")->as_number(), 0.0);
  EXPECT_EQ(resp.find("inserted")->as_number(), 0.0);
  EXPECT_EQ(resp.find("removed")->as_number(), 0.0);
}

// Regression: an epoch bump (here: a full update) racing an in-flight
// batched request must never surface stale values. handle_request reads
// the epoch ONCE before compute, so a mid-compute mutation can only waste
// a cache entry under the old key — every answer retrieved at the final
// epoch must be for the final graph.
TEST_F(ServeServerTest, UpdatesRacingBatchedQueriesNeverServeStaleValues) {
  constexpr int kUpdates = 5;
  QueryRequest query;
  query.op = QueryOp::spmv;
  query.x_seed = 17;

  std::atomic<bool> stop{false};
  std::atomic<int> hammer_errors{0};
  std::thread hammer([&] {
    serve::Client cl;
    cl.connect("127.0.0.1", server_.port());
    while (!stop.load(std::memory_order_relaxed)) {
      const JsonValue r = cl.roundtrip(query);
      if (!r.find("ok")->as_bool()) hammer_errors.fetch_add(1);
    }
  });

  std::vector<UpdateBatch> batches(kUpdates);
  for (int i = 0; i < kUpdates; ++i) {
    batches[i].insert = {{static_cast<vid_t>(i), static_cast<vid_t>(i + 1)},
                         {static_cast<vid_t>(3 * i + 2),
                          static_cast<vid_t>(2 * i + 7)}};
    const JsonValue up =
        client_.roundtrip(update_request(batches[i].insert));
    ASSERT_TRUE(up.find("ok")->as_bool()) << up.dump();
    EXPECT_EQ(up.find("epoch")->as_number(), static_cast<double>(i + 1));
  }
  stop.store(true);
  hammer.join();
  EXPECT_EQ(hammer_errors.load(), 0);

  // Whatever the race interleaving, the answer at the final epoch (cached
  // or not) matches a fresh session over the fully-updated graph.
  const JsonValue last = client_.roundtrip(query);
  ASSERT_TRUE(last.find("ok")->as_bool());
  EXPECT_EQ(last.find("epoch")->as_number(),
            static_cast<double>(kUpdates));
  Graph g = small_web(1 << 8);
  for (const UpdateBatch& b : batches) g = apply_update(g, b);
  GraphSession oracle(std::move(g), one_thread_session());
  const std::vector<std::uint64_t> seeds = {17};
  const std::vector<value_t> want = oracle.spmv_batch(seeds);
  const auto& got = last.find("values")->items();
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_NEAR(got[i].as_number(), want[i], 1e-9) << "vertex " << i;
  }
}

// ------------------------------------------------- phase stats & watchdog

TEST(ServePhaseStats, RecordsPerOpPhasesAndExportsBothViews) {
  serve::RequestPhaseStats stats;
  telemetry::RequestContext ctx;
  ctx.id = 1;
  ctx.queue_ns = 10'000;
  ctx.compute_ns = 40'000;
  ctx.cache_ns = 2'000;
  ctx.serialize_ns = 8'000;
  ctx.total_ns = 65'000;
  stats.record(QueryOp::ppr, ctx);
  stats.record(QueryOp::ppr, ctx);
  ctx.total_ns = 1'000;
  stats.record(QueryOp::stats, ctx);

  EXPECT_EQ(stats.count(QueryOp::ppr), 2u);
  EXPECT_EQ(stats.count(QueryOp::stats), 1u);
  EXPECT_EQ(stats.count(QueryOp::bfs), 0u);

  telemetry::LatencyHistogram merged;
  stats.merged_totals(merged);
  EXPECT_EQ(merged.count(), 3u);

  telemetry::MetricsRegistry reg(1);
  stats.export_gauges(reg, "serve.ops");
  EXPECT_DOUBLE_EQ(reg.gauge("serve.ops.ppr.total.count").value(), 2.0);
  EXPECT_GT(reg.gauge("serve.ops.ppr.compute.p50_us").value(), 0.0);
  // Op classes with no samples export nothing.
  EXPECT_FALSE(reg.gauge("serve.ops.bfs.total.count").has_value());

  std::string text;
  stats.exposition(text);
  std::string error;
  EXPECT_TRUE(telemetry::validate_exposition(text, &error)) << error;
  EXPECT_NE(text.find("ihtl_request_phase_latency_us_count"
                      "{op=\"ppr\",phase=\"compute\"} 2"),
            std::string::npos)
      << text;

  stats.reset();
  EXPECT_EQ(stats.count(QueryOp::ppr), 0u);
}

TEST(ServeWatchdog, DeadlineMissesCountPerRequestSaturationPerEdge) {
  serve::WatchdogOptions wopt;
  wopt.deadline_factor = 2.0;
  wopt.max_delay_ns = 1'000;
  wopt.queue_depth_limit = 4;
  serve::Watchdog dog(wopt);
  telemetry::EventLog log(16);
  dog.set_event_log(&log);

  dog.on_request(false, 500);    // within deadline
  dog.on_request(false, 10'000);  // miss
  dog.on_request(false, 10'000);  // miss
  EXPECT_EQ(dog.deadline_misses(), 2u);

  // Saturation is edge-triggered: a sustained deep queue is ONE event.
  dog.on_admission(10);
  dog.on_admission(12);
  dog.on_admission(1);  // recovers
  dog.on_admission(9);  // trips again
  EXPECT_EQ(dog.saturation_events(), 2u);
  EXPECT_EQ(log.count_event("watchdog_queue_saturation"), 2u);
}

TEST(ServeWatchdog, HitRateCollapseRequiresAHealthyPastAndFullWindow) {
  serve::WatchdogOptions wopt;
  wopt.window = 8;
  wopt.healthy_threshold = 0.5;
  wopt.collapse_threshold = 0.2;
  serve::Watchdog dog(wopt);
  EXPECT_DOUBLE_EQ(dog.window_hit_rate(), 1.0);  // no samples yet

  // All misses from a cold start: never healthy, so no collapse alert.
  for (int i = 0; i < 16; ++i) dog.on_request(false, 0);
  EXPECT_EQ(dog.hitrate_collapses(), 0u);

  // Become healthy, then collapse: exactly one alert for the excursion.
  for (int i = 0; i < 8; ++i) dog.on_request(true, 0);
  EXPECT_DOUBLE_EQ(dog.window_hit_rate(), 1.0);
  for (int i = 0; i < 16; ++i) dog.on_request(false, 0);
  EXPECT_EQ(dog.hitrate_collapses(), 1u);
  EXPECT_LT(dog.window_hit_rate(), 0.2);
}

TEST(ServeWatchdog, ImbalanceAlertsOncePerExcursion) {
  serve::Watchdog dog;
  dog.on_imbalance(1.1);
  dog.on_imbalance(2.0);
  dog.on_imbalance(2.5);  // same excursion
  dog.on_imbalance(1.0);  // recovers
  dog.on_imbalance(3.0);
  EXPECT_EQ(dog.imbalance_alerts(), 2u);
  telemetry::MetricsRegistry reg(1);
  dog.export_gauges(reg, "wd");
  EXPECT_DOUBLE_EQ(reg.gauge("wd.imbalance_alerts").value(), 2.0);
}

// --------------------------------------------- batcher tracing & resets

TEST(ServeBatcher, ResetStatsGivesPerRepCounters) {
  GraphSession session(small_web(1 << 8), one_thread_session());
  BatcherOptions opt;
  opt.max_lanes = 4;
  opt.max_delay = std::chrono::microseconds(100);
  Batcher batcher(opt, [&session](const Batcher::Group& g) {
    std::vector<std::vector<value_t>> out;
    for (const QueryRequest& r : g.requests) {
      out.push_back(
          session.ppr_batch(r.sources, r.iterations, r.damping));
    }
    return out;
  });
  auto run_rep = [&] {
    for (vid_t s = 0; s < 6; ++s) batcher.submit(ppr_request({s}, 2));
  };
  run_rep();
  const std::uint64_t first_flushes = batcher.flushes();
  EXPECT_GE(first_flushes, 1u);

  // The bench regression: without reset_stats, rep 2's counters silently
  // include rep 1's flushes.
  batcher.reset_stats();
  EXPECT_EQ(batcher.flushes(), 0u);
  run_rep();
  EXPECT_GE(batcher.flushes(), 1u);
  EXPECT_LE(batcher.flushes(), first_flushes + 6);
  batcher.stop();
}

TEST(ServeBatcher, RequestContextGetsQueueAndComputeSplits) {
  GraphSession session(small_web(1 << 8), one_thread_session());
  BatcherOptions opt;
  opt.max_lanes = 4;
  opt.max_delay = std::chrono::microseconds(100);
  Batcher batcher(opt, [&session](const Batcher::Group& g) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    std::vector<std::vector<value_t>> out;
    for (const QueryRequest& r : g.requests) {
      out.push_back(
          session.ppr_batch(r.sources, r.iterations, r.damping));
    }
    return out;
  });
  telemetry::RequestContext ctx;
  ctx.id = 5;
  batcher.submit(ppr_request({1}, 2), &ctx);
  batcher.stop();
  // The request waited at least part of the 100us deadline in the queue
  // and its group's compute includes the injected 2ms sleep.
  EXPECT_GT(ctx.queue_ns, 0u);
  EXPECT_GE(ctx.compute_ns, 2'000'000u);
}

// ------------------------------------------- server observability surface

serve::ServerOptions observed_options() {
  serve::ServerOptions opt;
  opt.max_lanes = 4;
  opt.max_batch_delay = std::chrono::microseconds(100);
  opt.cache_bytes = 4 << 20;
  return opt;
}

TEST(ServeServerObservability, RequestIdsMonotoneAndMetricsOpExposes) {
  GraphSession session(small_web(1 << 8), one_thread_session());
  serve::Server server(session, observed_options());
  serve::Client client;
  client.connect("127.0.0.1", server.port());

  const std::uint64_t before = server.requests_accepted();
  for (vid_t s = 0; s < 3; ++s) {
    ASSERT_TRUE(
        client.roundtrip(ppr_request({s}, 3)).find("ok")->as_bool());
  }
  QueryRequest mreq;
  mreq.op = QueryOp::metrics;
  const JsonValue resp = client.roundtrip(mreq);
  ASSERT_TRUE(resp.find("ok")->as_bool()) << resp.dump();
  // Every accepted frame got an id: 3 queries + this metrics op.
  EXPECT_EQ(server.requests_accepted(), before + 4);

  const std::string text = resp.find("metrics")->as_string();
  std::string error;
  EXPECT_TRUE(telemetry::validate_exposition(text, &error)) << error;
  EXPECT_NE(text.find("ihtl_serve_requests_accepted"), std::string::npos);
  EXPECT_NE(text.find("ihtl_serve_ops_ppr_total_count 3"), std::string::npos)
      << text;
  EXPECT_NE(text.find("ihtl_request_phase_latency_us_count"
                      "{op=\"ppr\",phase=\"queue\"} 3"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("ihtl_serve_watchdog_deadline_misses"),
            std::string::npos);
}

TEST(ServeServerObservability, PhaseSumTracksClientObservedWireLatency) {
  GraphSession session(small_web(1 << 8), one_thread_session());
  // A 100ms injected flush stall dominates every other cost, so the phase
  // sum (which books the stall as queue time) and the client-observed wire
  // latency must agree within the acceptance tolerance of 10%. The stall
  // is sized so that scheduling gaps on a loaded single-core host (a few
  // ms between the client and server taking their timestamps) stay well
  // inside that envelope.
  serve::ServerOptions opt = observed_options();
  opt.fault.delay_us = 100'000;
  serve::Server server(session, opt);
  serve::Client client;
  client.connect("127.0.0.1", server.port());

  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(client.roundtrip(ppr_request({2}, 3)).find("ok")->as_bool());
  const double wire_us =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - t0)
          .count();

  // finish_request runs after the response hits the wire, so racing it
  // from here can observe empty stats. A second roundtrip on the same
  // connection is ordered behind it on the handler thread.
  QueryRequest barrier;
  barrier.op = QueryOp::stats;
  ASSERT_TRUE(client.roundtrip(barrier).find("ok")->as_bool());

  const auto& stats = server.phase_stats();
  ASSERT_EQ(stats.count(QueryOp::ppr), 1u);
  double phase_sum_us = 0.0;
  double total_us = 0.0;
  for (std::size_t p = 0; p < serve::RequestPhaseStats::kNumPhases; ++p) {
    const double us =
        static_cast<double>(stats.histogram(QueryOp::ppr, p).sum_ns()) *
        1e-3;
    if (std::string(serve::RequestPhaseStats::phase_name(p)) == "total") {
      total_us = us;
    } else {
      phase_sum_us += us;
    }
  }
  EXPECT_GE(phase_sum_us, 100'000.0);  // the stall was attributed
  // The server total nests inside the wire time conceptually, but its
  // final timestamp is taken on the handler thread after the write — a
  // preemption there can make it trail the client's clock by a quantum.
  EXPECT_LE(total_us, wire_us * 1.10);
  EXPECT_GT(phase_sum_us, 0.9 * wire_us)
      << "phase sum " << phase_sum_us << "us vs wire " << wire_us << "us";
  EXPECT_LE(phase_sum_us, total_us * 1.001);
}

TEST(ServeServerObservability, SlowRequestsLandInTheEventLog) {
  GraphSession session(small_web(1 << 8), one_thread_session());
  serve::ServerOptions opt = observed_options();
  opt.fault.delay_us = 5'000;   // every flush stalls 5ms...
  opt.slow_request_us = 1'000;  // ...far above the 1ms slow threshold
  serve::Server server(session, opt);
  serve::Client client;
  client.connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.roundtrip(ppr_request({1}, 3)).find("ok")->as_bool());

  // The slow-request event is logged after the response is written; a
  // same-connection barrier roundtrip guarantees it has landed before we
  // read the log (the barrier itself may log too — select the ppr one).
  QueryRequest barrier;
  barrier.op = QueryOp::stats;
  ASSERT_TRUE(client.roundtrip(barrier).find("ok")->as_bool());

  telemetry::EventLog& log = server.event_log();
  ASSERT_GE(log.count_event("slow_request"), 1u);
  const JsonValue snap = log.snapshot();
  const JsonValue* slow = nullptr;
  for (const JsonValue& e : snap.items()) {
    if (e.find("event")->as_string() == "slow_request" &&
        e.find("op")->as_string() == "ppr") {
      slow = &e;
    }
  }
  ASSERT_NE(slow, nullptr);
  EXPECT_EQ(slow->find("level")->as_string(), "warn");
  EXPECT_EQ(slow->find("op")->as_string(), "ppr");
  EXPECT_GE(slow->find("total_us")->as_number(), 1'000.0);
  EXPECT_GE(slow->find("queue_us")->as_number(), 5'000.0);
  EXPECT_GE(slow->find("request")->as_number(), 1.0);
}

TEST(ServeServerObservability, MetricsAndStatsSurviveConcurrentLoad) {
  GraphSession session(small_web(1 << 8), one_thread_session());
  serve::Server server(session, observed_options());

  std::atomic<int> errors{0};
  std::atomic<bool> stop{false};
  auto ok_of = [](const JsonValue& r) {
    const JsonValue* ok = r.find("ok");
    return ok != nullptr && ok->as_bool();
  };

  std::thread poller([&] {
    serve::Client cl;
    cl.connect("127.0.0.1", server.port());
    QueryRequest mreq;
    mreq.op = QueryOp::metrics;
    QueryRequest sreq;
    sreq.op = QueryOp::stats;
    while (!stop.load(std::memory_order_relaxed)) {
      const JsonValue m = cl.roundtrip(mreq);
      std::string error;
      if (!ok_of(m) ||
          !telemetry::validate_exposition(
              m.find("metrics")->as_string(), &error)) {
        errors.fetch_add(1);
      }
      if (!ok_of(cl.roundtrip(sreq))) errors.fetch_add(1);
    }
  });
  std::thread updater([&] {
    serve::Client cl;
    cl.connect("127.0.0.1", server.port());
    for (int i = 0; i < 4; ++i) {
      if (!ok_of(cl.roundtrip(update_request(
              {{static_cast<vid_t>(i), static_cast<vid_t>(i + 2)}})))) {
        errors.fetch_add(1);
      }
    }
  });
  std::vector<std::thread> queriers;
  for (int q = 0; q < 2; ++q) {
    queriers.emplace_back([&, q] {
      serve::Client cl;
      cl.connect("127.0.0.1", server.port());
      for (int i = 0; i < 12; ++i) {
        if (!ok_of(cl.roundtrip(
                ppr_request({static_cast<vid_t>((q * 12 + i) % 64)}, 2)))) {
          errors.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : queriers) t.join();
  updater.join();
  stop.store(true);
  poller.join();
  EXPECT_EQ(errors.load(), 0);

  // After the dust settles the accounting is coherent: every finished
  // compute/update landed exactly one total-phase sample.
  const auto& stats = server.phase_stats();
  EXPECT_EQ(stats.count(QueryOp::ppr), 24u);
  EXPECT_EQ(stats.count(QueryOp::update), 4u);
  EXPECT_GE(stats.count(QueryOp::metrics), 1u);
}

TEST(ServeServerObservability, RequestFlowCoversThreeThreadsInTrace) {
  telemetry::TraceBuffer buffer(16, 4096);
  telemetry::TraceBuffer* prev = telemetry::TraceBuffer::set_active(&buffer);
  {
    SessionOptions sopt = one_thread_session();
    sopt.threads = 2;  // dispatch inlines tid 0; tid 1 is a pool worker
    GraphSession session(small_web(1 << 8), sopt);
    serve::Server server(session, observed_options());
    serve::Client client;
    client.connect("127.0.0.1", server.port());
    ASSERT_TRUE(
        client.roundtrip(ppr_request({3}, 4)).find("ok")->as_bool());
  }
  telemetry::TraceBuffer::set_active(prev);

  // The request's flow id appears on the handler thread (begin/end), the
  // batcher's dispatch thread, and at least one pool worker: >= 3 tids.
  const JsonValue doc = buffer.to_chrome_trace();
  std::map<double, std::set<double>> tids_by_flow;
  bool saw_begin = false, saw_end = false;
  for (const JsonValue& ev : doc.find("traceEvents")->items()) {
    if (ev.find("cat")->as_string() != "flow") continue;
    const double id = ev.find("id")->as_number();
    tids_by_flow[id].insert(ev.find("tid")->as_number());
    if (ev.find("ph")->as_string() == "s") saw_begin = true;
    if (ev.find("ph")->as_string() == "f") saw_end = true;
  }
  EXPECT_TRUE(saw_begin);
  EXPECT_TRUE(saw_end);
  std::size_t max_tids = 0;
  for (const auto& [id, tids] : tids_by_flow) {
    max_tids = std::max(max_tids, tids.size());
  }
  EXPECT_GE(max_tids, 3u) << doc.dump();
}

TEST(ServeServerObservability, CmdTopOncePollsTheLiveView) {
  GraphSession session(small_web(1 << 8), one_thread_session());
  serve::Server server(session, observed_options());
  serve::Client client;
  client.connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.roundtrip(ppr_request({2}, 3)).find("ok")->as_bool());

  const std::string port = std::to_string(server.port());
  const char* rendered[] = {"ihtl_top", "--port", port.c_str(), "--once"};
  EXPECT_EQ(cmd_top(4, rendered), 0);
  const char* raw[] = {"ihtl_top", "--port", port.c_str(), "--once",
                       "--raw"};
  EXPECT_EQ(cmd_top(5, raw), 0);
  // No server on the ephemeral port 1: connect fails, exit code 1.
  const char* bad[] = {"ihtl_top", "--port", "1", "--once"};
  EXPECT_EQ(cmd_top(4, bad), 1);
}

// ----------------------------------------------------- sharded sessions

TEST(ServeSession, ShardedSessionMatchesUnshardedAnswers) {
  SessionOptions plain = one_thread_session();
  SessionOptions sharded = one_thread_session();
  sharded.shards = 4;
  GraphSession a(small_web(1 << 9), plain);
  GraphSession b(small_web(1 << 9), sharded);
  EXPECT_EQ(b.num_shards(), 4u);
  EXPECT_GE(b.shard_imbalance(), 1.0);

  const std::vector<vid_t> sources = {7};
  const std::vector<value_t> ppr_a = a.ppr_batch(sources, 5, 0.85);
  const std::vector<value_t> ppr_b = b.ppr_batch(sources, 5, 0.85);
  ASSERT_EQ(ppr_a.size(), ppr_b.size());
  for (std::size_t i = 0; i < ppr_a.size(); ++i) {
    EXPECT_NEAR(ppr_a[i], ppr_b[i], 1e-9) << "vertex " << i;
  }
  const std::vector<vid_t> bfs_sources = {0, 11};
  const std::vector<value_t> bfs_a = a.bfs_batch(bfs_sources);
  const std::vector<value_t> bfs_b = b.bfs_batch(bfs_sources);
  ASSERT_EQ(bfs_a.size(), bfs_b.size());
  for (std::size_t i = 0; i < bfs_a.size(); ++i) {
    EXPECT_EQ(bfs_a[i], bfs_b[i]) << "lane-major index " << i;
  }
}

TEST(ServeServerObservability, ShardedServerExposesPerShardGauges) {
  SessionOptions sopt = one_thread_session();
  sopt.shards = 4;
  GraphSession session(small_web(1 << 8), sopt);
  serve::Server server(session, observed_options());
  serve::Client client;
  client.connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.roundtrip(ppr_request({5}, 3)).find("ok")->as_bool());

  QueryRequest mreq;
  mreq.op = QueryOp::metrics;
  const JsonValue resp = client.roundtrip(mreq);
  ASSERT_TRUE(resp.find("ok")->as_bool());
  const std::string text = resp.find("metrics")->as_string();
  EXPECT_NE(text.find("ihtl_serve_shards 4"), std::string::npos) << text;
  for (int s = 0; s < 4; ++s) {
    EXPECT_NE(text.find("ihtl_sharded_shard" + std::to_string(s) +
                        "_edges"),
              std::string::npos)
        << "missing shard " << s << " gauges in:\n"
        << text;
  }
}

}  // namespace
}  // namespace ihtl
