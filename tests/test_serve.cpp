// Tests for the serve subsystem: wire protocol, result cache, admission
// batcher, GraphSession oracle equivalence, and the full TCP server loop.
// The heavier concurrent-client differential coverage lives in the serve
// lattice (src/check/serve_check.*, driven by ihtl_check --serve-points);
// these tests pin down each layer's contract in isolation.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "apps/analytics.h"
#include "core/ihtl_update.h"
#include "apps/pagerank.h"
#include "serve/batcher.h"
#include "serve/protocol.h"
#include "serve/result_cache.h"
#include "serve/server.h"
#include "serve/session.h"
#include "telemetry/metrics.h"
#include "test_util.h"

namespace ihtl {
namespace {

using serve::Batcher;
using serve::BatcherOptions;
using serve::GraphSession;
using serve::QueryOp;
using serve::QueryRequest;
using serve::ResultCache;
using serve::SessionOptions;
using telemetry::JsonValue;
using testing::small_web;

// ---------------------------------------------------------------- protocol

QueryRequest ppr_request(std::vector<vid_t> sources, unsigned iterations = 5,
                         double damping = 0.85) {
  QueryRequest req;
  req.op = QueryOp::ppr;
  req.sources = std::move(sources);
  req.iterations = iterations;
  req.damping = damping;
  return req;
}

QueryRequest update_request(std::vector<Edge> insert,
                            std::vector<Edge> remove = {}) {
  QueryRequest req;
  req.op = QueryOp::update;
  req.insert = std::move(insert);
  req.remove = std::move(remove);
  return req;
}

/// First (u, v) pair absent from g — for must-reject update batches.
Edge missing_edge(const Graph& g) {
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    std::vector<vid_t> row(g.out().neighbors(u).begin(),
                           g.out().neighbors(u).end());
    std::sort(row.begin(), row.end());
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
      if (!std::binary_search(row.begin(), row.end(), v)) return {u, v};
    }
  }
  ADD_FAILURE() << "graph is complete; cannot build a missing edge";
  return {0, 0};
}

TEST(ServeProtocol, OpNamesRoundTrip) {
  for (const QueryOp op : {QueryOp::ppr, QueryOp::bfs, QueryOp::spmv,
                           QueryOp::update, QueryOp::stats,
                           QueryOp::bump_epoch, QueryOp::shutdown}) {
    const auto back = serve::op_from_name(serve::op_name(op));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, op);
  }
  EXPECT_FALSE(serve::op_from_name("pagerank").has_value());
}

TEST(ServeProtocol, RequestJsonRoundTrip) {
  QueryRequest req = ppr_request({3, 1, 4}, 7, 0.9);
  req.use_cache = false;
  const QueryRequest back = serve::parse_request(serve::request_to_json(req));
  EXPECT_EQ(back.op, QueryOp::ppr);
  EXPECT_EQ(back.sources, req.sources);
  EXPECT_EQ(back.iterations, 7u);
  EXPECT_DOUBLE_EQ(back.damping, 0.9);
  EXPECT_FALSE(back.use_cache);

  QueryRequest spmv;
  spmv.op = QueryOp::spmv;
  spmv.x_seed = 42;
  const QueryRequest sback =
      serve::parse_request(serve::request_to_json(spmv));
  EXPECT_EQ(sback.op, QueryOp::spmv);
  EXPECT_EQ(sback.x_seed, 42u);
  EXPECT_TRUE(sback.use_cache);
}

TEST(ServeProtocol, UpdateRequestJsonRoundTrip) {
  const QueryRequest req =
      update_request({{1, 2}, {2, 2}}, {{7, 3}});
  const QueryRequest back = serve::parse_request(serve::request_to_json(req));
  EXPECT_EQ(back.op, QueryOp::update);
  EXPECT_EQ(back.insert, req.insert);
  EXPECT_EQ(back.remove, req.remove);

  // Either side may be empty on the wire.
  const QueryRequest ins_only =
      serve::parse_request(serve::request_to_json(update_request({{0, 1}})));
  EXPECT_EQ(ins_only.insert, (std::vector<Edge>{{0, 1}}));
  EXPECT_TRUE(ins_only.remove.empty());
}

TEST(ServeProtocol, UpdateParseRejectsMalformedEdges) {
  const auto parse = [](const std::string& text) {
    return serve::parse_request(JsonValue::parse(text));
  };
  EXPECT_THROW(parse(R"({"op": "update", "insert": [[1]]})"),
               std::runtime_error);
  EXPECT_THROW(parse(R"({"op": "update", "insert": [[1, 2, 3]]})"),
               std::runtime_error);
  EXPECT_THROW(parse(R"({"op": "update", "remove": [[-1, 2]]})"),
               std::runtime_error);
  EXPECT_THROW(parse(R"({"op": "update", "insert": 5})"),
               std::runtime_error);
  // Over the per-request edge cap.
  std::string many = R"({"op": "update", "insert": [)";
  for (std::size_t i = 0; i <= serve::kMaxUpdateEdgesPerRequest; ++i) {
    if (i) many += ",";
    many += "[1,2]";
  }
  many += "]}";
  EXPECT_THROW(parse(many), std::runtime_error);
}

TEST(ServeProtocol, ParseRejectsSchemaViolations) {
  const auto parse = [](const std::string& text) {
    return serve::parse_request(JsonValue::parse(text));
  };
  EXPECT_THROW(parse(R"({"op": "nope"})"), std::runtime_error);
  EXPECT_THROW(parse(R"({"op": "ppr", "sources": []})"), std::runtime_error);
  EXPECT_THROW(parse(R"({"op": "bfs"})"), std::runtime_error);
  EXPECT_THROW(parse(R"({"op": "ppr", "sources": [-1]})"),
               std::runtime_error);
  EXPECT_THROW(parse(R"({"op": "ppr", "sources": [0], "iterations": 0})"),
               std::runtime_error);
  EXPECT_THROW(parse(R"({"op": "ppr", "sources": [0], "damping": 1.0})"),
               std::runtime_error);
  // One source over the lane cap.
  std::string many = R"({"op": "bfs", "sources": [)";
  for (std::size_t i = 0; i <= serve::kMaxSourcesPerRequest; ++i) {
    if (i) many += ",";
    many += std::to_string(i);
  }
  many += "]}";
  EXPECT_THROW(parse(many), std::runtime_error);
}

TEST(ServeProtocol, FingerprintCoversParamsBatchClassDoesNot) {
  const QueryRequest a = ppr_request({1, 2});
  const QueryRequest b = ppr_request({1, 3});
  // Sources are per-lane parameters: they change the fingerprint (cache
  // identity) but not the batch class (coalescing identity).
  EXPECT_NE(serve::fingerprint(a), serve::fingerprint(b));
  EXPECT_EQ(serve::batch_class(a), serve::batch_class(b));
  // Iterations/damping change the traversal itself, so both differ.
  const QueryRequest c = ppr_request({1, 2}, 9);
  EXPECT_NE(serve::fingerprint(a), serve::fingerprint(c));
  EXPECT_NE(serve::batch_class(a), serve::batch_class(c));
  // Same for spmv seeds: distinct seeds are distinct cache entries but
  // coalesce into one batched traversal.
  QueryRequest s1, s2;
  s1.op = s2.op = QueryOp::spmv;
  s1.x_seed = 1;
  s2.x_seed = 2;
  EXPECT_NE(serve::fingerprint(s1), serve::fingerprint(s2));
  EXPECT_EQ(serve::batch_class(s1), serve::batch_class(s2));
  // Different ops never share a class.
  QueryRequest bfs;
  bfs.op = QueryOp::bfs;
  bfs.sources = {1, 2};
  EXPECT_NE(serve::batch_class(a), serve::batch_class(bfs));
}

TEST(ServeProtocol, FrameRoundTripOverSocketpair) {
  int fds[2];
  ASSERT_EQ(0, socketpair(AF_UNIX, SOCK_STREAM, 0, fds));
  const std::string payload = R"({"op": "stats"})";
  serve::write_frame(fds[0], payload);
  std::string got;
  ASSERT_TRUE(serve::read_frame(fds[1], got));
  EXPECT_EQ(got, payload);
  // Clean EOF surfaces as false, not an exception.
  ::close(fds[0]);
  EXPECT_FALSE(serve::read_frame(fds[1], got));
  ::close(fds[1]);
}

TEST(ServeProtocol, OversizedFrameHeaderRejected) {
  int fds[2];
  ASSERT_EQ(0, socketpair(AF_UNIX, SOCK_STREAM, 0, fds));
  // A header advertising > kMaxFrameBytes must throw, not allocate.
  const std::uint32_t huge = serve::kMaxFrameBytes + 1;
  unsigned char header[4] = {
      static_cast<unsigned char>(huge >> 24),
      static_cast<unsigned char>(huge >> 16),
      static_cast<unsigned char>(huge >> 8),
      static_cast<unsigned char>(huge),
  };
  ASSERT_EQ(4, ::send(fds[0], header, 4, 0));
  std::string got;
  EXPECT_THROW(serve::read_frame(fds[1], got), std::runtime_error);
  ::close(fds[0]);
  ::close(fds[1]);
}

// ------------------------------------------------------------ result cache

ResultCache::Value make_value(std::size_t n, value_t fill) {
  return std::make_shared<const std::vector<value_t>>(n, fill);
}

TEST(ServeResultCache, MissThenHitThenEpochInvalidates) {
  ResultCache cache(1 << 20);
  EXPECT_EQ(nullptr, cache.get("q", 0));
  cache.put("q", 0, make_value(8, 1.0));
  const ResultCache::Value hit = cache.get("q", 0);
  ASSERT_NE(nullptr, hit);
  EXPECT_DOUBLE_EQ((*hit)[0], 1.0);
  // Same fingerprint at a newer epoch is a different key entirely.
  EXPECT_EQ(nullptr, cache.get("q", 1));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(ServeResultCache, LruEvictsWithinBudget) {
  // One shard so the LRU order is globally observable; each value is
  // ~4 KiB, the budget fits only a few.
  ResultCache cache(10 << 10, 1);
  cache.put("a", 0, make_value(512, 1.0));
  cache.put("b", 0, make_value(512, 2.0));
  ASSERT_NE(nullptr, cache.get("a", 0));  // refresh: "b" is now LRU
  cache.put("c", 0, make_value(512, 3.0));
  EXPECT_NE(nullptr, cache.get("a", 0));
  EXPECT_NE(nullptr, cache.get("c", 0));
  EXPECT_EQ(nullptr, cache.get("b", 0));  // evicted as least-recently-used
  EXPECT_GE(cache.evictions(), 1u);
  EXPECT_LE(cache.bytes(), 10u << 10);
}

TEST(ServeResultCache, ZeroBudgetDisablesAndOversizedNotAdmitted) {
  ResultCache off(0);
  EXPECT_FALSE(off.enabled());
  off.put("q", 0, make_value(8, 1.0));
  EXPECT_EQ(nullptr, off.get("q", 0));

  ResultCache tiny(1 << 10, 1);
  tiny.put("big", 0, make_value(1 << 16, 1.0));  // 512 KiB > whole budget
  EXPECT_EQ(nullptr, tiny.get("big", 0));
  EXPECT_EQ(tiny.entries(), 0u);
}

TEST(ServeResultCache, ExportsAbsoluteGauges) {
  ResultCache cache(1 << 20);
  cache.put("q", 0, make_value(8, 1.0));
  cache.get("q", 0);
  cache.get("absent", 0);
  telemetry::MetricsRegistry reg;
  cache.export_gauges(reg, "serve.cache");
  cache.export_gauges(reg, "serve.cache");  // idempotent
  const auto gauges = reg.gauges();
  EXPECT_DOUBLE_EQ(gauges.at("serve.cache.hits"), 1.0);
  EXPECT_DOUBLE_EQ(gauges.at("serve.cache.misses"), 1.0);
  EXPECT_DOUBLE_EQ(gauges.at("serve.cache.hit_rate"), 0.5);
  EXPECT_DOUBLE_EQ(gauges.at("serve.cache.entries"), 1.0);
}

// ---------------------------------------------------------------- batcher

/// Echo compute: each request's result is lanes() copies of its first
/// source (or its x_seed). Enough to verify routing without a graph.
std::vector<std::vector<value_t>> echo_compute(const Batcher::Group& g) {
  std::vector<std::vector<value_t>> out;
  out.reserve(g.requests.size());
  for (const QueryRequest& r : g.requests) {
    const value_t v = r.op == QueryOp::spmv
                          ? static_cast<value_t>(r.x_seed)
                          : static_cast<value_t>(r.sources.front());
    out.emplace_back(r.lanes(), v);
  }
  return out;
}

TEST(ServeBatcher, FullClassFlushesAsOneGroup) {
  // Deadline far away: the only way the submits can complete is a full
  // flush, so the coalescing assertion is deterministic.
  BatcherOptions opt;
  opt.max_lanes = 4;
  opt.max_delay = std::chrono::microseconds(10'000'000);
  Batcher batcher(opt, echo_compute);
  std::vector<std::thread> producers;
  std::vector<std::vector<value_t>> results(4);
  for (std::size_t i = 0; i < 4; ++i) {
    producers.emplace_back([&batcher, &results, i] {
      results[i] = batcher.submit(ppr_request({static_cast<vid_t>(i)}));
    });
  }
  for (auto& t : producers) t.join();
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_EQ(results[i].size(), 1u);
    EXPECT_DOUBLE_EQ(results[i][0], static_cast<value_t>(i));
  }
  EXPECT_EQ(batcher.flushes(), 1u);
  EXPECT_EQ(batcher.full_flushes(), 1u);
  EXPECT_EQ(batcher.lanes_flushed(), 4u);
  EXPECT_DOUBLE_EQ(batcher.mean_lane_occupancy(), 4.0);
  batcher.stop();
}

TEST(ServeBatcher, DeadlineFlushesPartialGroup) {
  BatcherOptions opt;
  opt.max_lanes = 8;
  opt.max_delay = std::chrono::microseconds(500);
  Batcher batcher(opt, echo_compute);
  const std::vector<value_t> r = batcher.submit(ppr_request({7}));
  ASSERT_EQ(r.size(), 1u);
  EXPECT_DOUBLE_EQ(r[0], 7.0);
  EXPECT_EQ(batcher.flushes(), 1u);
  EXPECT_EQ(batcher.deadline_flushes(), 1u);
  EXPECT_EQ(batcher.full_flushes(), 0u);
  batcher.stop();
}

TEST(ServeBatcher, OversizedRequestFlushesAlone) {
  BatcherOptions opt;
  opt.max_lanes = 2;
  opt.max_delay = std::chrono::microseconds(500);
  Batcher batcher(opt, echo_compute);
  const std::vector<value_t> r = batcher.submit(ppr_request({1, 2, 3}));
  EXPECT_EQ(r.size(), 3u);
  EXPECT_EQ(batcher.flushes(), 1u);
  EXPECT_EQ(batcher.lanes_flushed(), 3u);
  batcher.stop();
}

TEST(ServeBatcher, DistinctClassesNeverShareAGroup) {
  BatcherOptions opt;
  opt.max_lanes = 8;
  opt.max_delay = std::chrono::microseconds(500);
  std::mutex mu;
  std::vector<std::vector<std::string>> groups;
  Batcher batcher(opt, [&](const Batcher::Group& g) {
    std::lock_guard<std::mutex> lock(mu);
    std::vector<std::string> classes;
    for (const QueryRequest& r : g.requests) {
      classes.push_back(serve::batch_class(r));
    }
    groups.push_back(std::move(classes));
    return echo_compute(g);
  });
  std::thread t1([&] { batcher.submit(ppr_request({1}, 5)); });
  std::thread t2([&] { batcher.submit(ppr_request({2}, 9)); });
  t1.join();
  t2.join();
  batcher.stop();
  ASSERT_GE(groups.size(), 2u);
  for (const auto& classes : groups) {
    for (const auto& c : classes) EXPECT_EQ(c, classes.front());
  }
}

TEST(ServeBatcher, DropFaultRetriesUntilServed) {
  BatcherOptions opt;
  opt.max_lanes = 8;
  opt.max_delay = std::chrono::microseconds(200);
  opt.fault.drop_flushes = 2;
  Batcher batcher(opt, echo_compute);
  const std::vector<value_t> r = batcher.submit(ppr_request({5}));
  ASSERT_EQ(r.size(), 1u);
  EXPECT_DOUBLE_EQ(r[0], 5.0);
  EXPECT_EQ(batcher.dropped_flushes(), 2u);
  batcher.stop();
}

TEST(ServeBatcher, StopDrainsPendingRequests) {
  // The deadline is effectively infinite, so only stop() can release the
  // waiting submit — stop must drain, not abandon.
  BatcherOptions opt;
  opt.max_lanes = 8;
  opt.max_delay = std::chrono::microseconds(10'000'000);
  Batcher batcher(opt, echo_compute);
  std::vector<value_t> result;
  std::thread waiter(
      [&] { result = batcher.submit(ppr_request({9})); });
  while (batcher.queue_depth() == 0) std::this_thread::yield();
  batcher.stop();
  waiter.join();
  ASSERT_EQ(result.size(), 1u);
  EXPECT_DOUBLE_EQ(result[0], 9.0);
  batcher.stop();  // idempotent
  EXPECT_THROW(batcher.submit(ppr_request({1})), std::runtime_error);
}

TEST(ServeBatcher, ComputeExceptionPropagatesToSubmitter) {
  BatcherOptions opt;
  opt.max_delay = std::chrono::microseconds(100);
  Batcher batcher(opt, [](const Batcher::Group&)
                           -> std::vector<std::vector<value_t>> {
    throw std::runtime_error("engine on fire");
  });
  EXPECT_THROW(batcher.submit(ppr_request({1})), std::runtime_error);
  batcher.stop();
}

// ------------------------------------------------------------ GraphSession

SessionOptions one_thread_session() {
  SessionOptions opt;
  opt.ihtl.buffer_bytes = 32 * sizeof(value_t);
  opt.threads = 1;
  return opt;
}

TEST(ServeSession, PprBatchMatchesAppPersonalizedBatch) {
  const Graph g = small_web(1 << 9);
  GraphSession session(small_web(1 << 9), one_thread_session());
  const std::vector<vid_t> sources = {3, 17, 101};
  const std::vector<value_t> got = session.ppr_batch(sources, 5, 0.85);

  ThreadPool pool(1);
  IhtlConfig cfg;
  cfg.buffer_bytes = 32 * sizeof(value_t);
  const IhtlGraph ig = build_ihtl_graph(g, cfg);
  PageRankOptions popt;
  popt.iterations = 5;
  popt.tolerance = 0.0;  // fixed-count, like the session
  const PageRankResult want =
      pagerank_personalized_batch(pool, g, ig, sources, popt);
  ASSERT_EQ(got.size(), want.ranks.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_DOUBLE_EQ(got[i], want.ranks[i]) << "at " << i;
  }
}

TEST(ServeSession, BfsBatchMatchesAppWithMinusOneForUnreachable) {
  const Graph g = small_web(1 << 9);
  GraphSession session(small_web(1 << 9), one_thread_session());
  const std::vector<vid_t> sources = {0, 42};
  const std::vector<value_t> got = session.bfs_batch(sources);

  ThreadPool pool(1);
  IhtlConfig cfg;
  cfg.buffer_bytes = 32 * sizeof(value_t);
  const AnalyticsResult want =
      bfs_multi_source(pool, g, sources, AnalyticsKernel::ihtl, cfg);
  ASSERT_EQ(got.size(), want.values.size());
  bool saw_unreachable = false;
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (std::isinf(want.values[i])) {
      EXPECT_DOUBLE_EQ(got[i], -1.0) << "at " << i;
      saw_unreachable = true;
    } else {
      EXPECT_DOUBLE_EQ(got[i], want.values[i]) << "at " << i;
    }
  }
  // The web generator leaves some vertices unreachable from low sources;
  // if this ever stops holding, pick different sources so the -1 mapping
  // stays exercised.
  EXPECT_TRUE(saw_unreachable);
}

TEST(ServeSession, SpmvBatchMatchesEngineOnDerivedInput) {
  const Graph g = small_web(1 << 9);
  GraphSession session(small_web(1 << 9), one_thread_session());
  const std::uint64_t seed = 99;
  const std::vector<std::uint64_t> seeds = {seed};
  const std::vector<value_t> got = session.spmv_batch(seeds);

  ThreadPool pool(1);
  IhtlConfig cfg;
  cfg.buffer_bytes = 32 * sizeof(value_t);
  const IhtlGraph ig = build_ihtl_graph(g, cfg);
  const vid_t n = g.num_vertices();
  std::vector<value_t> x(n), want(n);
  for (vid_t v = 0; v < n; ++v) x[v] = serve::spmv_input_value(seed, v);
  ihtl_spmv_once(pool, ig, x, want);
  ASSERT_EQ(got.size(), want.size());
  for (vid_t v = 0; v < n; ++v) EXPECT_DOUBLE_EQ(got[v], want[v]);
}

TEST(ServeSession, BatchCompositionDoesNotChangeALanesAnswer) {
  // The whole admission-queue design rests on this: with a 1-thread pool a
  // lane's answer is bitwise independent of which requests were coalesced
  // around it.
  GraphSession session(small_web(1 << 9), one_thread_session());
  const std::vector<vid_t> all = {3, 17, 101, 7};
  const std::vector<value_t> fused = session.ppr_batch(all, 4, 0.85);
  const vid_t n = session.num_vertices();
  for (std::size_t lane = 0; lane < all.size(); ++lane) {
    const std::vector<vid_t> solo = {all[lane]};
    const std::vector<value_t> alone = session.ppr_batch(solo, 4, 0.85);
    for (vid_t v = 0; v < n; ++v) {
      ASSERT_EQ(alone[v], fused[static_cast<std::size_t>(v) * all.size() +
                                lane])
          << "lane " << lane << " vertex " << v;
    }
  }
}

TEST(ServeSession, DrainThenComputeStillWorksSerially) {
  GraphSession session(small_web(1 << 8), one_thread_session());
  const std::vector<vid_t> sources = {5};
  const std::vector<value_t> before = session.ppr_batch(sources, 3, 0.85);
  session.drain();
  session.drain();  // idempotent
  const std::vector<value_t> after = session.ppr_batch(sources, 3, 0.85);
  EXPECT_EQ(before, after);
}

TEST(ServeSession, EpochBumpsMonotonically) {
  GraphSession session(small_web(1 << 8), one_thread_session());
  EXPECT_EQ(session.epoch(), 0u);
  session.bump_epoch();
  session.bump_epoch();
  EXPECT_EQ(session.epoch(), 2u);
}

// ---------------------------------------------------------------- server

class ServeServerTest : public ::testing::Test {
 protected:
  ServeServerTest()
      : session_(small_web(1 << 8), one_thread_session()),
        server_(session_, make_options()) {
    client_.connect("127.0.0.1", server_.port());
  }
  static serve::ServerOptions make_options() {
    serve::ServerOptions opt;
    opt.max_lanes = 4;
    opt.max_batch_delay = std::chrono::microseconds(100);
    opt.cache_bytes = 4 << 20;
    return opt;
  }

  GraphSession session_;
  serve::Server server_;
  serve::Client client_;
};

TEST_F(ServeServerTest, ComputeCacheEpochAndStatsContract) {
  const QueryRequest req = ppr_request({3, 9}, 4);
  const JsonValue first = client_.roundtrip(req);
  ASSERT_TRUE(first.find("ok")->as_bool()) << first.dump();
  EXPECT_FALSE(first.find("cached")->as_bool());
  const auto& values = first.find("values")->items();
  ASSERT_EQ(values.size(),
            static_cast<std::size_t>(session_.num_vertices()) * 2);

  // Same request again: served verbatim from the cache.
  const JsonValue second = client_.roundtrip(req);
  ASSERT_TRUE(second.find("ok")->as_bool());
  EXPECT_TRUE(second.find("cached")->as_bool());
  const auto& cached_values = second.find("values")->items();
  ASSERT_EQ(cached_values.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(values[i].as_number(), cached_values[i].as_number());
  }

  // An epoch bump invalidates: the third answer is recomputed yet equal.
  QueryRequest bump;
  bump.op = QueryOp::bump_epoch;
  const JsonValue bumped = client_.roundtrip(bump);
  ASSERT_TRUE(bumped.find("ok")->as_bool());
  EXPECT_EQ(bumped.find("epoch")->as_number(), 1.0);
  const JsonValue third = client_.roundtrip(req);
  EXPECT_FALSE(third.find("cached")->as_bool());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(values[i].as_number(),
              third.find("values")->items()[i].as_number());
  }

  // Stats reflect what just happened.
  QueryRequest stats;
  stats.op = QueryOp::stats;
  const JsonValue s = client_.roundtrip(stats);
  ASSERT_TRUE(s.find("ok")->as_bool());
  const JsonValue* gauges = s.find("stats")->find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_GE(gauges->find("serve.cache.hits")->as_number(), 1.0);
  EXPECT_GE(gauges->find("serve.latency.count")->as_number(), 3.0);
  EXPECT_GE(gauges->find("serve.batch.flushes")->as_number(), 2.0);
  EXPECT_EQ(server_.requests_served(), 3u);
}

TEST_F(ServeServerTest, CacheOptOutRecomputes) {
  QueryRequest req = ppr_request({11}, 3);
  req.use_cache = false;
  const JsonValue first = client_.roundtrip(req);
  const JsonValue second = client_.roundtrip(req);
  ASSERT_TRUE(first.find("ok")->as_bool());
  ASSERT_TRUE(second.find("ok")->as_bool());
  EXPECT_FALSE(first.find("cached")->as_bool());
  EXPECT_FALSE(second.find("cached")->as_bool());
}

TEST_F(ServeServerTest, MalformedRequestGetsErrorNotDisconnect) {
  JsonValue bad = JsonValue::object();
  bad.set("op", "ppr");  // missing sources
  const JsonValue resp = client_.roundtrip(bad);
  ASSERT_FALSE(resp.find("ok")->as_bool());
  EXPECT_TRUE(resp.find("error")->is_string());
  // The connection survives the error: the next request still works.
  QueryRequest stats;
  stats.op = QueryOp::stats;
  EXPECT_TRUE(client_.roundtrip(stats).find("ok")->as_bool());
}

TEST_F(ServeServerTest, ShutdownOpStopsTheServer) {
  QueryRequest down;
  down.op = QueryOp::shutdown;
  const JsonValue resp = client_.roundtrip(down);
  ASSERT_TRUE(resp.find("ok")->as_bool());
  server_.wait();  // returns because the op signalled stop
  server_.stop();
  EXPECT_FALSE(server_.running());
}

TEST_F(ServeServerTest, ConcurrentClientsAllAnswered) {
  constexpr int kClients = 8;
  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([this, c, &ok] {
      serve::Client cl;
      cl.connect("127.0.0.1", server_.port());
      const JsonValue resp =
          cl.roundtrip(ppr_request({static_cast<vid_t>(c * 3 + 1)}, 3));
      if (resp.find("ok")->as_bool() &&
          resp.find("values")->items().size() ==
              static_cast<std::size_t>(session_.num_vertices())) {
        ok.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(ok.load(), kClients);
}

// ------------------------------------------------------- streaming updates

TEST_F(ServeServerTest, UpdateOpBumpsEpochAndInvalidatesCacheExactlyOnce) {
  const QueryRequest req = ppr_request({3}, 4);
  const JsonValue first = client_.roundtrip(req);
  ASSERT_TRUE(first.find("ok")->as_bool()) << first.dump();
  EXPECT_FALSE(first.find("cached")->as_bool());
  const JsonValue second = client_.roundtrip(req);
  EXPECT_TRUE(second.find("cached")->as_bool());

  const JsonValue up =
      client_.roundtrip(update_request({{1, 2}, {2, 3}, {9, 9}}));
  ASSERT_TRUE(up.find("ok")->as_bool()) << up.dump();
  EXPECT_EQ(up.find("epoch")->as_number(), 1.0);
  EXPECT_EQ(up.find("inserted")->as_number(), 3.0);
  EXPECT_EQ(up.find("removed")->as_number(), 0.0);
  ASSERT_NE(up.find("rebuilt"), nullptr);
  ASSERT_NE(up.find("drift"), nullptr);

  // Exactly one miss at the new epoch, then the cache re-hits.
  const JsonValue third = client_.roundtrip(req);
  ASSERT_TRUE(third.find("ok")->as_bool());
  EXPECT_FALSE(third.find("cached")->as_bool());
  EXPECT_EQ(third.find("epoch")->as_number(), 1.0);
  const JsonValue fourth = client_.roundtrip(req);
  EXPECT_TRUE(fourth.find("cached")->as_bool());

  // The recomputed answer is for the POST-update graph: compare against a
  // fresh session over the same mutation applied out-of-band.
  UpdateBatch batch;
  batch.insert = {{1, 2}, {2, 3}, {9, 9}};
  GraphSession oracle(apply_update(small_web(1 << 8), batch),
                      one_thread_session());
  const std::vector<vid_t> sources = {3};
  const std::vector<value_t> want = oracle.ppr_batch(sources, 4, 0.85);
  const auto& got = third.find("values")->items();
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_NEAR(got[i].as_number(), want[i], 1e-9) << "vertex " << i;
  }
}

TEST_F(ServeServerTest, RejectedUpdateKeepsEpochAndCachedEntries) {
  const QueryRequest req = ppr_request({5}, 3);
  ASSERT_TRUE(client_.roundtrip(req).find("ok")->as_bool());

  // A batch that removes a missing edge is rejected wholesale, even though
  // its insert half alone would be valid.
  const JsonValue resp = client_.roundtrip(
      update_request({{0, 1}}, {missing_edge(session_.graph())}));
  ASSERT_FALSE(resp.find("ok")->as_bool());
  EXPECT_NE(resp.find("error")->as_string().find("update rejected"),
            std::string::npos)
      << resp.dump();

  // Epoch untouched; the cached entry from before is still served.
  QueryRequest stats;
  stats.op = QueryOp::stats;
  EXPECT_EQ(client_.roundtrip(stats).find("epoch")->as_number(), 0.0);
  EXPECT_TRUE(client_.roundtrip(req).find("cached")->as_bool());
}

TEST_F(ServeServerTest, EmptyUpdateIsANoOpAtTheSameEpoch) {
  const JsonValue resp = client_.roundtrip(update_request({}));
  ASSERT_TRUE(resp.find("ok")->as_bool()) << resp.dump();
  EXPECT_EQ(resp.find("epoch")->as_number(), 0.0);
  EXPECT_EQ(resp.find("inserted")->as_number(), 0.0);
  EXPECT_EQ(resp.find("removed")->as_number(), 0.0);
}

// Regression: an epoch bump (here: a full update) racing an in-flight
// batched request must never surface stale values. handle_request reads
// the epoch ONCE before compute, so a mid-compute mutation can only waste
// a cache entry under the old key — every answer retrieved at the final
// epoch must be for the final graph.
TEST_F(ServeServerTest, UpdatesRacingBatchedQueriesNeverServeStaleValues) {
  constexpr int kUpdates = 5;
  QueryRequest query;
  query.op = QueryOp::spmv;
  query.x_seed = 17;

  std::atomic<bool> stop{false};
  std::atomic<int> hammer_errors{0};
  std::thread hammer([&] {
    serve::Client cl;
    cl.connect("127.0.0.1", server_.port());
    while (!stop.load(std::memory_order_relaxed)) {
      const JsonValue r = cl.roundtrip(query);
      if (!r.find("ok")->as_bool()) hammer_errors.fetch_add(1);
    }
  });

  std::vector<UpdateBatch> batches(kUpdates);
  for (int i = 0; i < kUpdates; ++i) {
    batches[i].insert = {{static_cast<vid_t>(i), static_cast<vid_t>(i + 1)},
                         {static_cast<vid_t>(3 * i + 2),
                          static_cast<vid_t>(2 * i + 7)}};
    const JsonValue up =
        client_.roundtrip(update_request(batches[i].insert));
    ASSERT_TRUE(up.find("ok")->as_bool()) << up.dump();
    EXPECT_EQ(up.find("epoch")->as_number(), static_cast<double>(i + 1));
  }
  stop.store(true);
  hammer.join();
  EXPECT_EQ(hammer_errors.load(), 0);

  // Whatever the race interleaving, the answer at the final epoch (cached
  // or not) matches a fresh session over the fully-updated graph.
  const JsonValue last = client_.roundtrip(query);
  ASSERT_TRUE(last.find("ok")->as_bool());
  EXPECT_EQ(last.find("epoch")->as_number(),
            static_cast<double>(kUpdates));
  Graph g = small_web(1 << 8);
  for (const UpdateBatch& b : batches) g = apply_update(g, b);
  GraphSession oracle(std::move(g), one_thread_session());
  const std::vector<std::uint64_t> seeds = {17};
  const std::vector<value_t> want = oracle.spmv_batch(seeds);
  const auto& got = last.find("values")->items();
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_NEAR(got[i].as_number(), want[i], 1e-9) << "vertex " << i;
  }
}

}  // namespace
}  // namespace ihtl
