#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <set>
#include <span>
#include <thread>

#include "parallel/parallel_for.h"
#include "parallel/partitioner.h"
#include "parallel/per_thread.h"
#include "parallel/thread_pool.h"

namespace ihtl {
namespace {

// ---------------------------------------------------------------- ThreadPool

TEST(ThreadPool, RunsJobOnAllWorkers) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> hits(4);
  pool.run([&](std::size_t tid) { hits[tid].fetch_add(1); });
  for (std::size_t t = 0; t < 4; ++t) EXPECT_EQ(hits[t].load(), 1);
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  bool ran = false;
  pool.run([&](std::size_t tid) {
    EXPECT_EQ(tid, 0u);
    ran = true;
  });
  EXPECT_TRUE(ran);
}

TEST(ThreadPool, ReusableAcrossJobs) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int job = 0; job < 50; ++job) {
    pool.run([&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 150);
}

TEST(ThreadPool, DefaultSizeIsHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
}

TEST(ThreadPool, ShutdownIsIdempotent) {
  ThreadPool pool(4);
  pool.shutdown();
  pool.shutdown();
  EXPECT_EQ(pool.size(), 4u);
}

TEST(ThreadPool, RunAfterShutdownExecutesSeriallyWithSameTidRange) {
  // The destructor-ordering contract for long-lived owners (GraphSession):
  // after shutdown() the workers are joined, yet run() still covers every
  // tid — serially, on the calling thread.
  ThreadPool pool(3);
  pool.shutdown();
  const auto caller = std::this_thread::get_id();
  std::set<std::size_t> tids;
  pool.run([&](std::size_t tid) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    tids.insert(tid);
  });
  EXPECT_EQ(tids, (std::set<std::size_t>{0, 1, 2}));
}

// -------------------------------------------------------------- parallel_for

class ParallelForTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(GetParam());
  constexpr std::uint64_t kN = 10007;  // prime: exercises uneven splits
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(pool, 0, kN,
               [&](std::uint64_t i, std::size_t) { hits[i].fetch_add(1); });
  for (std::uint64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST_P(ParallelForTest, RespectsNonZeroBegin) {
  ThreadPool pool(GetParam());
  std::vector<std::atomic<int>> hits(100);
  parallel_for(pool, 37, 83,
               [&](std::uint64_t i, std::size_t) { hits[i].fetch_add(1); });
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(hits[i].load(), (i >= 37 && i < 83) ? 1 : 0) << i;
  }
}

TEST_P(ParallelForTest, EmptyRangeIsNoop) {
  ThreadPool pool(GetParam());
  std::atomic<int> calls{0};
  parallel_for(pool, 5, 5, [&](std::uint64_t, std::size_t) { ++calls; });
  parallel_for(pool, 7, 3, [&](std::uint64_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST_P(ParallelForTest, TidStaysInBounds) {
  ThreadPool pool(GetParam());
  std::atomic<bool> ok{true};
  parallel_for(pool, 0, 5000, [&](std::uint64_t, std::size_t tid) {
    if (tid >= pool.size()) ok.store(false);
  });
  EXPECT_TRUE(ok.load());
}

TEST_P(ParallelForTest, ExplicitGrainCoversRange) {
  ThreadPool pool(GetParam());
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(
      pool, 0, 1000,
      [&](std::uint64_t i, std::size_t) { hits[i].fetch_add(1); },
      {.grain = 7});
  for (auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST_P(ParallelForTest, ChunkVariantPartitionsRange) {
  ThreadPool pool(GetParam());
  constexpr std::uint64_t kN = 4321;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for_chunks(pool, 0, kN,
                      [&](std::uint64_t lo, std::uint64_t hi, std::size_t) {
                        for (std::uint64_t i = lo; i < hi; ++i) {
                          hits[i].fetch_add(1);
                        }
                      });
  for (std::uint64_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1);
}

TEST_P(ParallelForTest, ReduceSumsCorrectly) {
  ThreadPool pool(GetParam());
  const std::uint64_t n = 100000;
  const auto total = parallel_reduce<std::uint64_t>(
      pool, 0, n, 0, [](std::uint64_t i, std::size_t) { return i; },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
  EXPECT_EQ(total, n * (n - 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(PoolSizes, ParallelForTest,
                         ::testing::Values(1, 2, 3, 4, 8));

// -------------------------------------------------------------- partitioner

TEST(PartitionByVertex, SplitsEvenly) {
  const auto parts = partition_by_vertex(100, 4);
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], (Range{0, 25}));
  EXPECT_EQ(parts[3], (Range{75, 100}));
}

TEST(PartitionByVertex, HandlesRemainder) {
  const auto parts = partition_by_vertex(10, 3);
  ASSERT_EQ(parts.size(), 3u);
  std::uint64_t total = 0;
  for (const auto& p : parts) {
    total += p.size();
    EXPECT_LE(p.size(), 4u);
    EXPECT_GE(p.size(), 3u);
  }
  EXPECT_EQ(total, 10u);
}

TEST(PartitionByVertex, MorePartsThanItems) {
  const auto parts = partition_by_vertex(3, 8);
  ASSERT_EQ(parts.size(), 8u);
  std::uint64_t total = 0;
  for (const auto& p : parts) total += p.size();
  EXPECT_EQ(total, 3u);
  EXPECT_EQ(parts.back().end, 3u);
}

TEST(PartitionByEdge, BalancesSkewedOffsets) {
  // One vertex holds 1000 edges, 9 hold one each.
  std::vector<std::uint64_t> offsets = {0, 1000};
  for (int i = 0; i < 9; ++i) offsets.push_back(offsets.back() + 1);
  const auto parts = partition_by_edge(offsets, 2);
  ASSERT_EQ(parts.size(), 2u);
  // The hub vertex alone fills part 0.
  EXPECT_EQ(parts[0], (Range{0, 1}));
  EXPECT_EQ(parts[1], (Range{1, 10}));
}

TEST(PartitionByEdge, CoversAllVerticesContiguously) {
  std::vector<std::uint64_t> offsets = {0};
  for (int i = 0; i < 1000; ++i) {
    offsets.push_back(offsets.back() + (i % 17));
  }
  const auto parts = partition_by_edge(offsets, 7);
  ASSERT_EQ(parts.size(), 7u);
  EXPECT_EQ(parts.front().begin, 0u);
  EXPECT_EQ(parts.back().end, 1000u);
  for (std::size_t p = 1; p < parts.size(); ++p) {
    EXPECT_EQ(parts[p].begin, parts[p - 1].end);
  }
}

TEST(PartitionByEdge, EmptyOffsets) {
  const auto parts = partition_by_edge(std::vector<std::uint64_t>{0}, 3);
  ASSERT_EQ(parts.size(), 3u);
  for (const auto& p : parts) EXPECT_EQ(p.size(), 0u);
}

TEST(PartitionByEdge, TrulyEmptySpan) {
  const auto parts = partition_by_edge(std::span<const std::uint64_t>{}, 4);
  ASSERT_EQ(parts.size(), 4u);
  for (const auto& p : parts) EXPECT_EQ(p, (Range{0, 0}));
}

TEST(PartitionByEdge, MorePartsThanVertices) {
  const std::vector<std::uint64_t> offsets = {0, 2, 5, 9};  // 3 vertices
  const auto parts = partition_by_edge(offsets, 8);
  ASSERT_EQ(parts.size(), 8u);
  EXPECT_EQ(parts.front().begin, 0u);
  EXPECT_EQ(parts.back().end, 3u);
  std::uint64_t total = 0;
  for (std::size_t p = 0; p < parts.size(); ++p) {
    if (p > 0) EXPECT_EQ(parts[p].begin, parts[p - 1].end);
    total += parts[p].size();
  }
  EXPECT_EQ(total, 3u);
}

TEST(PartitionByEdge, SingleVertex) {
  const std::vector<std::uint64_t> offsets = {0, 7};
  const auto parts = partition_by_edge(offsets, 3);
  ASSERT_EQ(parts.size(), 3u);
  std::uint64_t total = 0;
  for (const auto& p : parts) total += p.size();
  EXPECT_EQ(total, 1u);
  EXPECT_EQ(parts.back().end, 1u);
}

TEST(PartitionByEdge, AllEdgesOnLastVertex) {
  // Nine zero-degree vertices, then one holding every edge: the heavy
  // vertex must land in the final non-empty part without overflowing n.
  std::vector<std::uint64_t> offsets(10, 0);
  offsets.push_back(1000);
  const auto parts = partition_by_edge(offsets, 4);
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts.front().begin, 0u);
  EXPECT_EQ(parts.back().end, 10u);
  for (std::size_t p = 1; p < parts.size(); ++p) {
    EXPECT_EQ(parts[p].begin, parts[p - 1].end);
  }
  // The part containing the hub carries all 1000 edges.
  std::uint64_t max_edges = 0;
  for (const auto& p : parts) {
    max_edges = std::max(max_edges, offsets[p.end] - offsets[p.begin]);
  }
  EXPECT_EQ(max_edges, 1000u);
}

TEST(PartitionByEdge, EdgeCountsRoughlyEqual) {
  std::vector<std::uint64_t> offsets = {0};
  for (int i = 0; i < 5000; ++i) offsets.push_back(offsets.back() + 3);
  const auto parts = partition_by_edge(offsets, 5);
  for (const auto& p : parts) {
    const std::uint64_t edges = offsets[p.end] - offsets[p.begin];
    EXPECT_NEAR(static_cast<double>(edges), 3000.0, 3.0);
  }
}

// ---------------------------------------------------------------- PerThread

TEST(PerThread, BuffersAreIndependent) {
  PerThread<double> buf(4, 100, 0.0);
  for (std::size_t t = 0; t < 4; ++t) {
    for (std::size_t i = 0; i < 100; ++i) buf.get(t)[i] = t * 1000.0 + i;
  }
  for (std::size_t t = 0; t < 4; ++t) {
    for (std::size_t i = 0; i < 100; ++i) {
      ASSERT_EQ(buf.get(t)[i], t * 1000.0 + i);
    }
  }
}

TEST(PerThread, InitialValueApplied) {
  PerThread<int> buf(3, 17, 42);
  for (std::size_t t = 0; t < 3; ++t) {
    for (std::size_t i = 0; i < 17; ++i) ASSERT_EQ(buf.get(t)[i], 42);
  }
}

TEST(PerThread, BuffersAreCacheLineAligned) {
  PerThread<double> buf(2, 3, 0.0);
  const auto a = reinterpret_cast<std::uintptr_t>(buf.get(0));
  const auto b = reinterpret_cast<std::uintptr_t>(buf.get(1));
  EXPECT_EQ((b - a) % 64, 0u);
  EXPECT_GE(b - a, 3 * sizeof(double));
}

}  // namespace
}  // namespace ihtl
