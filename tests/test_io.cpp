#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/ihtl_graph.h"
#include "graph/io.h"
#include "test_util.h"

namespace ihtl {
namespace {

using testing::figure2_graph;
using testing::small_rmat;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(GraphBinaryIo, RoundTrip) {
  const Graph g = small_rmat(9, 8);
  const std::string path = temp_path("graph_roundtrip.bin");
  save_graph_binary(g, path);
  const Graph loaded = load_graph_binary(path);
  EXPECT_EQ(loaded.num_vertices(), g.num_vertices());
  EXPECT_EQ(loaded.num_edges(), g.num_edges());
  EXPECT_EQ(to_edge_list(loaded), to_edge_list(g));
  EXPECT_TRUE(loaded.valid());
  std::remove(path.c_str());
}

TEST(GraphBinaryIo, EmptyGraphRoundTrip) {
  const Graph g = build_graph(0, {});
  const std::string path = temp_path("empty_graph.bin");
  save_graph_binary(g, path);
  const Graph loaded = load_graph_binary(path);
  EXPECT_EQ(loaded.num_vertices(), 0u);
  std::remove(path.c_str());
}

TEST(GraphBinaryIo, RejectsMissingFile) {
  EXPECT_THROW(load_graph_binary(temp_path("does_not_exist.bin")),
               std::runtime_error);
}

TEST(GraphBinaryIo, RejectsWrongMagic) {
  const std::string path = temp_path("bad_magic.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOTAGRAPHFILE-------------------";
  }
  EXPECT_THROW(load_graph_binary(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(GraphBinaryIo, RejectsTruncatedFile) {
  const Graph g = small_rmat(8, 4);
  const std::string path = temp_path("truncated.bin");
  save_graph_binary(g, path);
  // Truncate to half size.
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  const auto full = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  std::vector<char> bytes(full / 2);
  in.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  in.close();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_THROW(load_graph_binary(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(GraphBinaryIo, RejectsCorruptAdjacencyCounts) {
  // A corrupt on-disk count must produce a clean "corrupt adjacency" error,
  // never a multi-GB resize that dies in bad_alloc. The offset count here
  // claims ~2^56 entries in a file a few hundred bytes long.
  const Graph g = small_rmat(8, 4);
  const std::string path = temp_path("corrupt_count.bin");
  save_graph_binary(g, path);
  {
    std::fstream io(path,
                    std::ios::binary | std::ios::in | std::ios::out);
    io.seekp(10);  // first adjacency's n_off, just past magic + widths
    const std::uint64_t huge = std::uint64_t{1} << 56;
    io.write(reinterpret_cast<const char*>(&huge), sizeof(huge));
  }
  try {
    load_graph_binary(path);
    FAIL() << "corrupt count accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("corrupt adjacency"),
              std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

TEST(GraphBinaryIo, RejectsV1HeaderWithClearMessage) {
  const std::string path = temp_path("v1_header.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "iHTLGRv1";
    // Arbitrary v1-era payload bytes.
    const std::uint64_t zeros[4] = {0, 0, 0, 0};
    out.write(reinterpret_cast<const char*>(zeros), sizeof(zeros));
  }
  try {
    load_graph_binary(path);
    FAIL() << "v1 file accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("v1 header"), std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

TEST(GraphBinaryIo, RejectsTypeWidthMismatch) {
  // A file stamped with 8-byte vertex ids must not load into this build's
  // 4-byte vid_t; before the v2 header it deserialized as garbage.
  const Graph g = small_rmat(8, 4);
  const std::string path = temp_path("width_mismatch.bin");
  save_graph_binary(g, path);
  {
    std::fstream io(path,
                    std::ios::binary | std::ios::in | std::ios::out);
    io.seekp(8);  // the width bytes directly after the magic
    const std::uint8_t widths[2] = {8, 8};
    io.write(reinterpret_cast<const char*>(widths), sizeof(widths));
  }
  try {
    load_graph_binary(path);
    FAIL() << "width mismatch accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("vid_t"), std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

TEST(EdgeListIo, RoundTrip) {
  const Graph g = figure2_graph();
  const std::string path = temp_path("edges.txt");
  save_edge_list(g, path);
  const Graph loaded = load_edge_list(path);
  EXPECT_EQ(to_edge_list(loaded), to_edge_list(g));
  std::remove(path.c_str());
}

TEST(EdgeListIo, InfersVertexCountWithoutHeader) {
  const std::string path = temp_path("headerless.txt");
  {
    std::ofstream out(path);
    out << "0 5\n2 3\n";
  }
  const Graph g = load_edge_list(path);
  EXPECT_EQ(g.num_vertices(), 6u);
  EXPECT_EQ(g.num_edges(), 2u);
  std::remove(path.c_str());
}

TEST(EdgeListIo, RejectsMalformedLine) {
  const std::string path = temp_path("malformed.txt");
  {
    std::ofstream out(path);
    out << "0 1\nbogus line\n";
  }
  EXPECT_THROW(load_edge_list(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(EdgeListIo, RejectsIdExceedingDeclaredCount) {
  // The header declares 4 vertices; an endpoint of 7 used to be accepted
  // silently and build an 8-vertex graph the header never promised.
  const std::string path = temp_path("oversized_id.txt");
  {
    std::ofstream out(path);
    out << "# 4 2\n0 1\n2 7\n";
  }
  try {
    load_edge_list(path);
    FAIL() << "out-of-range endpoint accepted";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 7"), std::string::npos) << what;
    EXPECT_NE(what.find("declared count 4"), std::string::npos) << what;
  }
  std::remove(path.c_str());
}

TEST(EdgeListIo, Rejects64BitIdTruncation) {
  // 2^33 used to be static_cast down to vid_t (== 0) silently.
  const std::string path = temp_path("truncated_id.txt");
  {
    std::ofstream out(path);
    out << "0 8589934592\n";
  }
  try {
    load_edge_list(path);
    FAIL() << "64-bit id accepted";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("overflows vid_t"), std::string::npos) << what;
    EXPECT_NE(what.find("8589934592"), std::string::npos) << what;
  }
  std::remove(path.c_str());
}

TEST(EdgeListIo, RejectsHeaderCountOverflow) {
  const std::string path = temp_path("huge_header.txt");
  {
    std::ofstream out(path);
    out << "# 8589934592 1\n0 1\n";
  }
  EXPECT_THROW(load_edge_list(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(IhtlGraphIo, RejectsTypeWidthMismatch) {
  const Graph g = small_rmat(7, 4);
  IhtlConfig cfg;
  cfg.buffer_bytes = 8 * sizeof(value_t);
  const IhtlGraph ig = build_ihtl_graph(g, cfg);
  const std::string path = temp_path("ihtl_width_mismatch.bin");
  ig.save_binary(path);
  {
    std::fstream io(path,
                    std::ios::binary | std::ios::in | std::ios::out);
    io.seekp(8);
    const std::uint8_t widths[2] = {2, 4};
    io.write(reinterpret_cast<const char*>(widths), sizeof(widths));
  }
  EXPECT_THROW(IhtlGraph::load_binary(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(IhtlGraphIo, RoundTripPreservesEverything) {
  const Graph g = small_rmat(9, 8);
  IhtlConfig cfg;
  cfg.buffer_bytes = 16 * sizeof(value_t);
  const IhtlGraph ig = build_ihtl_graph(g, cfg);
  const std::string path = temp_path("ihtl_graph.bin");
  ig.save_binary(path);
  const IhtlGraph loaded = IhtlGraph::load_binary(path);

  EXPECT_EQ(loaded.num_vertices(), ig.num_vertices());
  EXPECT_EQ(loaded.num_edges(), ig.num_edges());
  EXPECT_EQ(loaded.num_hubs(), ig.num_hubs());
  EXPECT_EQ(loaded.num_vweh(), ig.num_vweh());
  EXPECT_EQ(loaded.min_hub_degree(), ig.min_hub_degree());
  EXPECT_EQ(loaded.old_to_new(), ig.old_to_new());
  EXPECT_EQ(loaded.new_to_old(), ig.new_to_old());
  ASSERT_EQ(loaded.blocks().size(), ig.blocks().size());
  for (std::size_t b = 0; b < ig.blocks().size(); ++b) {
    EXPECT_EQ(loaded.blocks()[b].hub_begin, ig.blocks()[b].hub_begin);
    EXPECT_EQ(loaded.blocks()[b].hub_end, ig.blocks()[b].hub_end);
    EXPECT_EQ(loaded.blocks()[b].csr.offsets, ig.blocks()[b].csr.offsets);
    EXPECT_EQ(loaded.blocks()[b].csr.targets, ig.blocks()[b].csr.targets);
  }
  EXPECT_EQ(loaded.sparse().offsets, ig.sparse().offsets);
  EXPECT_EQ(loaded.sparse().targets, ig.sparse().targets);
  EXPECT_TRUE(loaded.valid(g));
  std::remove(path.c_str());
}

TEST(IhtlGraphIo, RejectsGraphFileMagic) {
  // An iHTL-graph loader must not accept a plain graph container.
  const Graph g = small_rmat(7, 4);
  const std::string path = temp_path("plain_graph.bin");
  save_graph_binary(g, path);
  EXPECT_THROW(IhtlGraph::load_binary(path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ihtl
