// Tests for k-core decomposition, PageRank-Delta, and the cache-simulator
// prefetcher model.
#include <gtest/gtest.h>

#include "apps/analytics.h"
#include "apps/kcore.h"
#include "apps/pagerank.h"
#include "apps/pagerank_delta.h"
#include "cachesim/cache.h"
#include "gen/rng.h"
#include "test_util.h"

namespace ihtl {
namespace {

using testing::expect_values_near;
using testing::small_rmat;
using testing::small_web;

// ------------------------------------------------------------------- k-core

Graph sym(std::vector<Edge> edges, vid_t n) {
  return symmetrize(build_graph(n, edges));
}

TEST(KCore, TriangleIsTwoCore) {
  ThreadPool pool(2);
  const KCoreResult r =
      kcore_decomposition(pool, sym({{0, 1}, {1, 2}, {2, 0}}, 3));
  EXPECT_EQ(r.max_core, 2u);
  for (vid_t v = 0; v < 3; ++v) EXPECT_EQ(r.coreness[v], 2u);
}

TEST(KCore, ChainIsOneCore) {
  std::vector<Edge> edges;
  for (vid_t v = 0; v + 1 < 8; ++v) edges.push_back({v, v + 1});
  ThreadPool pool(2);
  const KCoreResult r = kcore_decomposition(pool, sym(edges, 8));
  EXPECT_EQ(r.max_core, 1u);
  for (vid_t v = 0; v < 8; ++v) EXPECT_EQ(r.coreness[v], 1u);
}

TEST(KCore, CliqueWithPendant) {
  // K4 plus one pendant vertex: clique coreness 3, pendant 1.
  std::vector<Edge> edges;
  for (vid_t u = 0; u < 4; ++u) {
    for (vid_t v = u + 1; v < 4; ++v) edges.push_back({u, v});
  }
  edges.push_back({0, 4});
  ThreadPool pool(3);
  const KCoreResult r = kcore_decomposition(pool, sym(edges, 5));
  EXPECT_EQ(r.max_core, 3u);
  for (vid_t v = 0; v < 4; ++v) EXPECT_EQ(r.coreness[v], 3u);
  EXPECT_EQ(r.coreness[4], 1u);
}

TEST(KCore, IsolatedVertexIsZeroCore) {
  ThreadPool pool(2);
  const KCoreResult r = kcore_decomposition(pool, sym({{0, 1}}, 3));
  EXPECT_EQ(r.coreness[2], 0u);
}

TEST(KCore, CorenessInvariants) {
  // Property: coreness <= degree; the k-core subgraph check — every vertex
  // of coreness >= k has >= k neighbours of coreness >= k.
  ThreadPool pool(4);
  const Graph g = symmetrize(small_rmat(9, 6));
  const KCoreResult r = kcore_decomposition(pool, g);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    ASSERT_LE(r.coreness[v], g.out_degree(v));
    vid_t strong_neighbors = 0;
    for (const vid_t u : g.out().neighbors(v)) {
      strong_neighbors += r.coreness[u] >= r.coreness[v];
    }
    ASSERT_GE(strong_neighbors, r.coreness[v]) << "vertex " << v;
  }
  EXPECT_GT(r.max_core, 1u);  // skewed graphs have a dense core
}

TEST(KCore, HubsLiveInDeepCores) {
  ThreadPool pool(2);
  const Graph g = symmetrize(small_rmat(10, 8));
  const KCoreResult r = kcore_decomposition(pool, g);
  vid_t hub = 0;
  for (vid_t v = 1; v < g.num_vertices(); ++v) {
    if (g.out_degree(v) > g.out_degree(hub)) hub = v;
  }
  // The top hub's coreness is near the graph degeneracy.
  EXPECT_GE(r.coreness[hub], r.max_core / 2);
}

TEST(KCore, EmptyGraph) {
  ThreadPool pool(2);
  const KCoreResult r = kcore_decomposition(pool, build_graph(0, {}));
  EXPECT_EQ(r.max_core, 0u);
}

// ------------------------------------------------------------ PageRank-Delta

TEST(PageRankDelta, ConvergesToPowerIterationFixpoint) {
  const Graph g = small_rmat(9, 8);
  ThreadPool pool(2);
  PageRankOptions ref_opt;
  ref_opt.iterations = 300;
  ref_opt.tolerance = 1e-13;
  const auto reference = pagerank(pool, g, SpmvKernel::pull, ref_opt);

  PageRankDeltaOptions opt;
  opt.epsilon = 0.0;  // exact mode
  opt.max_rounds = 300;
  const auto delta = pagerank_delta(pool, g, opt);
  expect_values_near(reference.ranks, delta.ranks, 1e-7);
}

TEST(PageRankDelta, EpsilonShrinksWork) {
  const Graph g = small_rmat(10, 8);
  ThreadPool pool(2);
  PageRankDeltaOptions exact;
  exact.epsilon = 0.0;
  exact.max_rounds = 40;
  PageRankDeltaOptions pruned;
  pruned.epsilon = 1e-3;
  pruned.max_rounds = 40;
  const auto a = pagerank_delta(pool, g, exact);
  const auto b = pagerank_delta(pool, g, pruned);
  EXPECT_LT(b.total_active, a.total_active);
  // And the pruned result is still close.
  expect_values_near(a.ranks, b.ranks, 1e-2);
}

TEST(PageRankDelta, FrontierDrainsAndStops) {
  const Graph g = small_rmat(8, 6);
  ThreadPool pool(2);
  PageRankDeltaOptions opt;
  opt.epsilon = 1e-4;
  opt.max_rounds = 1000;
  const auto r = pagerank_delta(pool, g, opt);
  EXPECT_LT(r.rounds, 1000u);  // converged, not capped
}

TEST(PageRankDelta, EmptyGraph) {
  ThreadPool pool(2);
  const auto r = pagerank_delta(pool, build_graph(0, {}));
  EXPECT_TRUE(r.ranks.empty());
}

// --------------------------------------------------------------- prefetcher

TEST(Prefetcher, SequentialStreamHitsL2) {
  CacheHierarchy h = CacheHierarchy::tiny();
  h.set_next_line_prefetch(true);
  // Stream far beyond every level: without prefetch all accesses miss
  // everywhere; with next-line prefetch the L2 absorbs the stream.
  std::uint64_t l2_hits = 0;
  const std::uint64_t lines = 4096;
  for (std::uint64_t i = 0; i < lines; ++i) {
    l2_hits += h.access(i * 64) == 1;
  }
  EXPECT_GT(l2_hits, lines / 2);
  EXPECT_GT(h.prefetch_installs(), lines / 2);
}

TEST(Prefetcher, OffByDefaultAndNeutralForRandom) {
  CacheHierarchy plain = CacheHierarchy::tiny();
  EXPECT_EQ(plain.prefetch_installs(), 0u);
  // Random far-apart accesses: prefetching next lines never helps.
  CacheHierarchy pf = CacheHierarchy::tiny();
  pf.set_next_line_prefetch(true);
  std::uint64_t seed = 42;
  std::uint64_t plain_miss = 0, pf_miss = 0;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t addr = (splitmix64(seed) % (1u << 24)) & ~63ULL;
    plain_miss += plain.access(addr) == plain.levels();
    pf_miss += pf.access(addr) == pf.levels();
  }
  EXPECT_NEAR(static_cast<double>(pf_miss), static_cast<double>(plain_miss),
              plain_miss * 0.05 + 50.0);
}

TEST(Prefetcher, CountersResetIncludesPrefetch) {
  CacheHierarchy h = CacheHierarchy::tiny();
  h.set_next_line_prefetch(true);
  for (std::uint64_t i = 0; i < 100; ++i) h.access(i * 64);
  h.reset_counters();
  EXPECT_EQ(h.prefetch_installs(), 0u);
}

}  // namespace
}  // namespace ihtl
