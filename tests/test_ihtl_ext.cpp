// Tests for the Section 6 extensions: single-pass block counting and
// secondary (Rabbit-Order) sparse-block ordering.
#include <gtest/gtest.h>

#include "baselines/spmv.h"
#include "core/ihtl_ext.h"
#include "core/ihtl_spmv.h"
#include "gen/datasets.h"
#include "graph/permute.h"
#include "reorder/reorder.h"
#include "test_util.h"

namespace ihtl {
namespace {

using testing::expect_values_near;
using testing::random_values;
using testing::small_rmat;
using testing::small_web;

IhtlConfig cfg_with_hubs(vid_t hubs_per_block) {
  IhtlConfig cfg;
  cfg.buffer_bytes = hubs_per_block * sizeof(value_t);
  return cfg;
}

// ------------------------------------------------------- select_hubs_fast

TEST(SelectHubsFast, SameHubOrderingAsExact) {
  const Graph g = small_rmat(10, 8);
  const IhtlConfig cfg = cfg_with_hubs(16);
  const HubSelection exact = select_hubs(g, cfg);
  const HubSelection fast = select_hubs_fast(g, cfg);
  // Candidate ranking is identical; only the admitted count may differ
  // (the fast variant undercounts sources of later blocks).
  const std::size_t common = std::min(exact.hubs.size(), fast.hubs.size());
  for (std::size_t i = 0; i < common; ++i) {
    EXPECT_EQ(exact.hubs[i], fast.hubs[i]) << i;
  }
  EXPECT_LE(fast.num_blocks, exact.num_blocks);
  EXPECT_GT(fast.num_blocks, 0u);
}

TEST(SelectHubsFast, Block1CountsMatchExactly) {
  // Block 1's source count is computed the same way in both variants.
  const Graph g = small_rmat(10, 8);
  const IhtlConfig cfg = cfg_with_hubs(32);
  EXPECT_EQ(select_hubs(g, cfg).block1_sources,
            select_hubs_fast(g, cfg).block1_sources);
}

TEST(SelectHubsFast, GraphBuiltFromFastSelectionIsValidAndCorrect) {
  const Graph g = small_rmat(10, 8);
  ThreadPool pool(2);
  const IhtlConfig cfg = cfg_with_hubs(16);
  const IhtlGraph ig = build_ihtl_graph(g, select_hubs_fast(g, cfg), cfg);
  ASSERT_TRUE(ig.valid(g));
  const auto x = random_values(g.num_vertices(), 3);
  std::vector<value_t> expected(g.num_vertices()), y(g.num_vertices());
  spmv_pull_serial(g, x, expected);
  ihtl_spmv_once(pool, ig, x, y);
  expect_values_near(expected, y, 1e-9);
}

TEST(SelectHubsFast, EmptyAndHublessGraphs) {
  EXPECT_EQ(select_hubs_fast(build_graph(0, {}), cfg_with_hubs(4)).num_blocks,
            0u);
  std::vector<Edge> chain;
  for (vid_t v = 0; v + 1 < 8; ++v) chain.push_back({v, v + 1});
  EXPECT_EQ(
      select_hubs_fast(build_graph(8, chain), cfg_with_hubs(4)).num_blocks,
      0u);
}

TEST(SelectHubsFast, RespectsMaxBlocks) {
  const Graph g = small_rmat(11, 16);
  IhtlConfig cfg = cfg_with_hubs(8);
  cfg.max_blocks = 2;
  EXPECT_LE(select_hubs_fast(g, cfg).num_blocks, 2u);
}

class FastSelectionDatasets : public ::testing::TestWithParam<DatasetSpec> {};

TEST_P(FastSelectionDatasets, ValidAcrossRegistry) {
  const Graph g = make_dataset(GetParam(), DatasetScale::tiny);
  const IhtlConfig cfg = cfg_with_hubs(32);
  const HubSelection sel = select_hubs_fast(g, cfg);
  const IhtlGraph ig = build_ihtl_graph(g, sel, cfg);
  EXPECT_TRUE(ig.valid(g)) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Registry, FastSelectionDatasets, ::testing::ValuesIn(all_datasets()),
    [](const ::testing::TestParamInfo<DatasetSpec>& info) {
      return info.param.name;
    });

// --------------------------------------------------- secondary ordering

TEST(OrderedBuild, RabbitOrderedSparseBlockStillCorrect) {
  const Graph g = small_rmat(10, 8);
  ThreadPool pool(3);
  const IhtlConfig cfg = cfg_with_hubs(16);
  const auto priority = rabbit_order(g);
  const IhtlGraph ig =
      build_ihtl_graph_ordered(g, select_hubs(g, cfg), cfg, priority);
  ASSERT_TRUE(ig.valid(g));
  const auto x = random_values(g.num_vertices(), 5);
  std::vector<value_t> expected(g.num_vertices()), y(g.num_vertices());
  spmv_pull_serial(g, x, expected);
  ihtl_spmv_once(pool, ig, x, y);
  expect_values_near(expected, y, 1e-9);
}

TEST(OrderedBuild, ClassBoundariesUnchangedByPriority) {
  // The secondary order permutes WITHIN classes only: hub/VWEH/FV counts
  // and the hub order itself must be identical to the default build.
  const Graph g = small_web(1u << 10);
  const IhtlConfig cfg = cfg_with_hubs(16);
  const HubSelection sel = select_hubs(g, cfg);
  const IhtlGraph plain = build_ihtl_graph(g, sel, cfg);
  const IhtlGraph ordered = build_ihtl_graph_ordered(
      g, sel, cfg, random_order(g.num_vertices(), 99));
  EXPECT_EQ(plain.num_hubs(), ordered.num_hubs());
  EXPECT_EQ(plain.num_vweh(), ordered.num_vweh());
  EXPECT_EQ(plain.num_fv(), ordered.num_fv());
  for (vid_t h = 0; h < plain.num_hubs(); ++h) {
    EXPECT_EQ(plain.new_to_old()[h], ordered.new_to_old()[h]);
  }
}

TEST(OrderedBuild, PriorityActuallyReordersWithinClass) {
  const Graph g = small_rmat(9, 8);
  const IhtlConfig cfg = cfg_with_hubs(8);
  const HubSelection sel = select_hubs(g, cfg);
  const IhtlGraph plain = build_ihtl_graph(g, sel, cfg);
  // Reverse priority: within VWEH, the default ascending-ID order must
  // become descending.
  std::vector<vid_t> reverse_priority(g.num_vertices());
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    reverse_priority[v] = g.num_vertices() - 1 - v;
  }
  const IhtlGraph ordered =
      build_ihtl_graph_ordered(g, sel, cfg, reverse_priority);
  ASSERT_GT(plain.num_vweh(), 1u);
  const vid_t first = plain.num_hubs();
  const vid_t last = plain.num_push_sources() - 1;
  EXPECT_EQ(plain.new_to_old()[first], ordered.new_to_old()[last]);
  EXPECT_EQ(plain.new_to_old()[last], ordered.new_to_old()[first]);
  EXPECT_TRUE(ordered.valid(g));
}

TEST(OrderedBuild, IdentityPriorityReproducesDefaultBuild) {
  const Graph g = small_rmat(9, 8);
  const IhtlConfig cfg = cfg_with_hubs(8);
  const HubSelection sel = select_hubs(g, cfg);
  const IhtlGraph plain = build_ihtl_graph(g, sel, cfg);
  const IhtlGraph ordered = build_ihtl_graph_ordered(
      g, sel, cfg, identity_permutation(g.num_vertices()));
  EXPECT_EQ(plain.old_to_new(), ordered.old_to_new());
}

}  // namespace
}  // namespace ihtl
