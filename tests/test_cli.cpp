#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "cli/args.h"
#include "cli/commands.h"
#include "core/ihtl_graph.h"
#include "graph/io.h"
#include "telemetry/json.h"
#include "test_util.h"

namespace ihtl {
namespace {

// ---------------------------------------------------------------- ArgParser

ArgParser make_parser() {
  ArgParser p;
  p.add_flag("name", true, "a string value");
  p.add_flag("count", true, "an integer value");
  p.add_flag("ratio", true, "a float value");
  p.add_flag("verbose", false, "a boolean flag");
  return p;
}

TEST(ArgParser, ParsesSeparateValueForm) {
  ArgParser p = make_parser();
  const char* argv[] = {"tool", "--name", "alpha", "--count", "42"};
  p.parse(5, argv);
  EXPECT_EQ(p.get_string("name"), "alpha");
  EXPECT_EQ(p.get_int("count"), 42);
}

TEST(ArgParser, ParsesEqualsForm) {
  ArgParser p = make_parser();
  const char* argv[] = {"tool", "--name=beta", "--ratio=0.25"};
  p.parse(3, argv);
  EXPECT_EQ(p.get_string("name"), "beta");
  EXPECT_DOUBLE_EQ(p.get_double("ratio"), 0.25);
}

TEST(ArgParser, BooleanFlag) {
  ArgParser p = make_parser();
  const char* argv[] = {"tool", "--verbose"};
  p.parse(2, argv);
  EXPECT_TRUE(p.has("verbose"));
  EXPECT_FALSE(p.has("name"));
}

TEST(ArgParser, PositionalArguments) {
  ArgParser p = make_parser();
  const char* argv[] = {"tool", "input.txt", "--count", "1", "more.txt"};
  p.parse(5, argv);
  ASSERT_EQ(p.positional().size(), 2u);
  EXPECT_EQ(p.positional()[0], "input.txt");
  EXPECT_EQ(p.positional()[1], "more.txt");
}

TEST(ArgParser, DefaultsWhenAbsent) {
  ArgParser p = make_parser();
  const char* argv[] = {"tool"};
  p.parse(1, argv);
  EXPECT_EQ(p.get_string("name", "dflt"), "dflt");
  EXPECT_EQ(p.get_int("count", 7), 7);
  EXPECT_DOUBLE_EQ(p.get_double("ratio", 1.5), 1.5);
}

TEST(ArgParser, RejectsUnknownFlag) {
  ArgParser p = make_parser();
  const char* argv[] = {"tool", "--bogus"};
  EXPECT_THROW(p.parse(2, argv), std::invalid_argument);
}

TEST(ArgParser, RejectsMissingValue) {
  ArgParser p = make_parser();
  const char* argv[] = {"tool", "--name"};
  EXPECT_THROW(p.parse(2, argv), std::invalid_argument);
}

TEST(ArgParser, RejectsValueOnBooleanFlag) {
  ArgParser p = make_parser();
  const char* argv[] = {"tool", "--verbose=yes"};
  EXPECT_THROW(p.parse(2, argv), std::invalid_argument);
}

TEST(ArgParser, RejectsMalformedNumbers) {
  ArgParser p = make_parser();
  const char* argv[] = {"tool", "--count", "12x", "--ratio", "1.5z"};
  p.parse(5, argv);
  EXPECT_THROW(p.get_int("count"), std::invalid_argument);
  EXPECT_THROW(p.get_double("ratio"), std::invalid_argument);
}

TEST(ArgParser, HelpTextListsFlags) {
  ArgParser p = make_parser();
  const std::string help = p.help_text();
  EXPECT_NE(help.find("--name"), std::string::npos);
  EXPECT_NE(help.find("--verbose"), std::string::npos);
}

// ------------------------------------------------------------ CLI commands

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(CmdConvert, EdgeListToBinaryGraph) {
  const Graph g = testing::figure2_graph();
  const std::string in = temp_path("cli_edges.txt");
  const std::string out = temp_path("cli_graph.bin");
  save_edge_list(g, in);
  const char* argv[] = {"ihtl_convert", "--graph", in.c_str(),
                        "--output", out.c_str(), "--to", "graph"};
  EXPECT_EQ(cmd_convert(7, argv), 0);
  const Graph loaded = load_graph_binary(out);
  EXPECT_EQ(loaded.num_edges(), g.num_edges());
  std::remove(in.c_str());
  std::remove(out.c_str());
}

TEST(CmdConvert, GeneratedDatasetToIhtlBinary) {
  const std::string out = temp_path("cli_ihtl.bin");
  const char* argv[] = {"ihtl_convert", "--gen",   "LvJrnl",
                        "--gen-scale",  "tiny",    "--output",
                        out.c_str(),    "--to",    "ihtl",
                        "--buffer-bytes", "256"};
  EXPECT_EQ(cmd_convert(11, argv), 0);
  const IhtlGraph ig = IhtlGraph::load_binary(out);
  EXPECT_GT(ig.num_hubs(), 0u);
  std::remove(out.c_str());
}

TEST(CmdConvert, MissingOutputFails) {
  const char* argv[] = {"ihtl_convert", "--gen", "LvJrnl", "--gen-scale",
                        "tiny"};
  EXPECT_EQ(cmd_convert(5, argv), 1);
}

TEST(CmdConvert, BadFormatFails) {
  const std::string out = temp_path("cli_bad.bin");
  const char* argv[] = {"ihtl_convert", "--gen",  "LvJrnl", "--gen-scale",
                        "tiny",         "--output", out.c_str(), "--to",
                        "nonsense"};
  EXPECT_EQ(cmd_convert(9, argv), 1);
}

TEST(CmdInfo, RunsOnGeneratedDataset) {
  const char* argv[] = {"ihtl_info", "--gen", "SK", "--gen-scale", "tiny"};
  EXPECT_EQ(cmd_info(5, argv), 0);
}

TEST(CmdInfo, FailsWithoutInput) {
  const char* argv[] = {"ihtl_info"};
  EXPECT_EQ(cmd_info(1, argv), 1);
}

TEST(CmdRun, PageRankAllCliKernels) {
  for (const char* kernel : {"pull", "push-buffered", "ihtl"}) {
    const char* argv[] = {"ihtl_run", "--gen",    "Twtr10", "--gen-scale",
                          "tiny",     "--app",    "pagerank", "--kernel",
                          kernel,     "--iterations", "3"};
    EXPECT_EQ(cmd_run(11, argv), 0) << kernel;
  }
}

TEST(CmdRun, EveryAppRuns) {
  for (const char* app : {"cc", "sssp", "bfs", "bfs-frontier", "hits",
                          "triangles", "kcore", "pagerank-delta"}) {
    const char* argv[] = {"ihtl_run", "--gen", "LvJrnl", "--gen-scale",
                          "tiny",     "--app", app,      "--iterations", "3"};
    EXPECT_EQ(cmd_run(9, argv), 0) << app;
  }
}

TEST(CmdRun, UnknownAppFails) {
  const char* argv[] = {"ihtl_run", "--gen", "LvJrnl", "--gen-scale", "tiny",
                        "--app", "frobnicate"};
  EXPECT_EQ(cmd_run(7, argv), 1);
}

TEST(CmdRun, UnknownKernelFails) {
  const char* argv[] = {"ihtl_run", "--gen", "LvJrnl", "--gen-scale", "tiny",
                        "--app", "pagerank", "--kernel", "warp-drive"};
  EXPECT_EQ(cmd_run(9, argv), 1);
}

TEST(CmdRun, SourceOutOfRangeFails) {
  const char* argv[] = {"ihtl_run", "--gen",   "LvJrnl", "--gen-scale",
                        "tiny",     "--app",   "sssp",   "--source",
                        "99999999"};
  EXPECT_EQ(cmd_run(9, argv), 1);
}

TEST(CmdRun, HelpReturnsZero) {
  const char* argv[] = {"ihtl_run", "--help"};
  EXPECT_EQ(cmd_run(2, argv), 0);
}

TEST(CmdRun, MetricsOutWritesJson) {
  const std::string out = temp_path("cli_metrics.json");
  const char* argv[] = {"ihtl_run", "--gen",    "LvJrnl",  "--gen-scale",
                        "tiny",     "--app",    "pagerank", "--iterations",
                        "3",        "--metrics-out", out.c_str()};
  ASSERT_EQ(cmd_run(11, argv), 0);
  std::ifstream in(out);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const auto doc = telemetry::JsonValue::parse(ss.str());
  const auto* run = doc.find("run");
  ASSERT_NE(run, nullptr);
  ASSERT_NE(run->find("app"), nullptr);
  EXPECT_EQ(run->find("app")->as_string(), "pagerank");
  const auto* spans = doc.find("spans");
  ASSERT_NE(spans, nullptr);
  EXPECT_NE(spans->find("spmv"), nullptr);
  EXPECT_NE(spans->find("spmv/push"), nullptr);
  const auto* counters = doc.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_NE(counters->find("spmv.calls"), nullptr);
  std::remove(out.c_str());
}

TEST(CmdRun, MetricsOutUnwritablePathFails) {
  const std::string out = temp_path("no_such_dir") + "/metrics.json";
  const char* argv[] = {"ihtl_run", "--gen",    "LvJrnl",  "--gen-scale",
                        "tiny",     "--app",    "pagerank", "--metrics-out",
                        out.c_str()};
  EXPECT_EQ(cmd_run(9, argv), 1);
}

// ------------------------------------------------------------- bench_diff

void write_text(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  out << text;
}

TEST(CmdBenchDiff, MissingBaselineIsAnErrorByDefault) {
  const std::string fresh = temp_path("bd_new.json");
  write_text(fresh, R"({"serve": {"gauges": {"serve.qps": 100.0}}})");
  const std::string absent = temp_path("bd_absent.json");
  const char* argv[] = {"bench_diff", absent.c_str(), fresh.c_str()};
  EXPECT_EQ(cmd_bench_diff(3, argv), 2);
  std::remove(fresh.c_str());
}

TEST(CmdBenchDiff, BaselineMissingOkSkipsTheDiff) {
  // First run of a brand-new bench section: no baseline snapshot exists
  // yet, and that must not fail the regression gate.
  const std::string fresh = temp_path("bd_new2.json");
  write_text(fresh, R"({"serve": {"gauges": {"serve.qps": 100.0}}})");
  const std::string absent = temp_path("bd_absent2.json");
  const char* argv[] = {"bench_diff", absent.c_str(), fresh.c_str(),
                        "--baseline-missing-ok", "--strict"};
  EXPECT_EQ(cmd_bench_diff(5, argv), 0);
  std::remove(fresh.c_str());
}

TEST(CmdBenchDiff, BaselineMissingOkStillRequiresTheNewSnapshot) {
  // The escape hatch covers exactly one case — the missing baseline. A
  // missing or unparseable NEW snapshot stays an error.
  const std::string absent_old = temp_path("bd_absent3.json");
  const std::string absent_new = temp_path("bd_absent4.json");
  const char* argv[] = {"bench_diff", absent_old.c_str(), absent_new.c_str(),
                        "--baseline-missing-ok"};
  EXPECT_EQ(cmd_bench_diff(4, argv), 2);

  const std::string garbage = temp_path("bd_garbage.json");
  write_text(garbage, "not json");
  const char* argv2[] = {"bench_diff", absent_old.c_str(), garbage.c_str(),
                         "--baseline-missing-ok"};
  EXPECT_EQ(cmd_bench_diff(4, argv2), 2);
  std::remove(garbage.c_str());
}

TEST(CmdBenchDiff, NamedSectionsAreFlattenedAndDiffed) {
  // Sections merged beside the suite (BENCH_serve.json's "serve",
  // BENCH_spmv.json's "spmm_batch") must be visible to the diff —
  // --require-key on a section metric proves they were flattened.
  const std::string old_path = temp_path("bd_serve_old.json");
  const std::string new_path = temp_path("bd_serve_new.json");
  write_text(old_path,
             R"({"serve": {"run": {"dataset": "TwtrMpi"},)"
             R"( "gauges": {"serve.qps_batched": 200.0},)"
             R"( "counters": {"serve.batched.flushes": 4}}})");
  write_text(new_path,
             R"({"serve": {"run": {"dataset": "TwtrMpi"},)"
             R"( "gauges": {"serve.qps_batched": 210.0},)"
             R"( "counters": {"serve.batched.flushes": 4}}})");
  const char* argv[] = {"bench_diff",     old_path.c_str(), new_path.c_str(),
                        "--require-key", "serve.qps_batched", "--strict"};
  EXPECT_EQ(cmd_bench_diff(6, argv), 0);
  // A key that matches nothing still fails, proving the gate is live.
  const char* argv2[] = {"bench_diff",    old_path.c_str(), new_path.c_str(),
                         "--require-key", "no.such.metric"};
  EXPECT_EQ(cmd_bench_diff(5, argv2), 1);
  std::remove(old_path.c_str());
  std::remove(new_path.c_str());
}

TEST(CmdBenchDiff, SectionAbsentFromBaselineIsNamedNotEnumerated) {
  // A baseline that predates a whole merged section (BENCH_shard.json's
  // "shard" lands in a tree whose committed baseline was generated before
  // the bench existed) must diff cleanly: the section is reported by NAME
  // as one "new" row, --require-key still sees its metrics, and --strict
  // stays green because nothing regressed.
  const std::string old_path = temp_path("bd_sec_old.json");
  const std::string new_path = temp_path("bd_sec_new.json");
  write_text(old_path,
             R"({"serve": {"gauges": {"serve.qps": 100.0}}})");
  write_text(new_path,
             R"({"serve": {"gauges": {"serve.qps": 100.0}},)"
             R"( "shard": {"gauges": {"shard.worst_traffic_ratio": 1.4},)"
             R"( "counters": {"shard.s4.exchange_values": 31045}}})");
  ::testing::internal::CaptureStdout();
  const char* argv[] = {"bench_diff",    old_path.c_str(), new_path.c_str(),
                        "--require-key", "shard",          "--strict"};
  EXPECT_EQ(cmd_bench_diff(6, argv), 0);
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("section 'shard' (absent from baseline)"),
            std::string::npos);
  // Named summary replaces the per-metric rows of the absent section...
  EXPECT_EQ(out.find("shard.s4.exchange_values"), std::string::npos);
  std::remove(old_path.c_str());
  std::remove(new_path.c_str());
}

TEST(CmdBenchDiff, NewMetricInExistingSectionStaysEnumerated) {
  // ...but a single new metric inside a section BOTH snapshots carry is
  // still listed individually — the named collapse only fires when the
  // baseline has no metric at all under that section.
  const std::string old_path = temp_path("bd_grow_old.json");
  const std::string new_path = temp_path("bd_grow_new.json");
  write_text(old_path,
             R"({"serve": {"gauges": {"serve.qps": 100.0}}})");
  write_text(new_path,
             R"({"serve": {"gauges": {"serve.qps": 100.0,)"
             R"( "serve.p99_ms": 3.5}}})");
  ::testing::internal::CaptureStdout();
  const char* argv[] = {"bench_diff", old_path.c_str(), new_path.c_str()};
  EXPECT_EQ(cmd_bench_diff(3, argv), 0);
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("serve.p99_ms"), std::string::npos);
  EXPECT_EQ(out.find("absent from baseline"), std::string::npos);
  std::remove(old_path.c_str());
  std::remove(new_path.c_str());
}

TEST(CmdBenchDiff, BaselineMissingOkNamesTheNewSections) {
  // The first-run escape hatch reports WHAT it skipped: each section of
  // the fresh snapshot by name, so the CI log shows what the first real
  // diff will cover.
  const std::string fresh = temp_path("bd_name_new.json");
  write_text(fresh,
             R"({"shard": {"gauges": {"shard.worst_traffic_ratio": 1.4}}})");
  const std::string absent = temp_path("bd_name_absent.json");
  ::testing::internal::CaptureStdout();
  const char* argv[] = {"bench_diff", absent.c_str(), fresh.c_str(),
                        "--baseline-missing-ok"};
  EXPECT_EQ(cmd_bench_diff(4, argv), 0);
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("new section 'shard': 1 metric(s)"), std::string::npos);
  std::remove(fresh.c_str());
}

TEST(CmdBenchDiff, IdenticalSnapshotsPassStrict) {
  const std::string path = temp_path("bd_same.json");
  write_text(path,
             R"({"serve": {"gauges": {"serve.qps": 100.0},)"
             R"( "counters": {"serve.flushes": 4}}})");
  const char* argv[] = {"bench_diff", path.c_str(), path.c_str(),
                        "--strict"};
  EXPECT_EQ(cmd_bench_diff(4, argv), 0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ihtl
