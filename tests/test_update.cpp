// Tests for the streaming-update path: UpdateBatch semantics (round trips,
// duplicates, self-loops, whole-batch rejection), the incremental iHTL
// patcher and its rebuild-threshold boundary, session-level atomicity, the
// warm-start delta-PageRank consumer, and the mutation lattice's frozen
// draw contract. The heavier replay coverage lives in the mutation lattice
// (src/check/update_check.*, driven by ihtl_check --update-points); these
// pin each layer's contract in isolation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>
#include <vector>

#include "apps/pagerank_delta.h"
#include "check/update_check.h"
#include "core/ihtl_graph.h"
#include "core/ihtl_update.h"
#include "graph/graph.h"
#include "parallel/thread_pool.h"
#include "serve/session.h"
#include "test_util.h"

namespace ihtl {
namespace {

using serve::GraphSession;
using serve::SessionOptions;
using testing::expect_values_near;
using testing::small_web;

IhtlConfig small_cfg() {
  IhtlConfig cfg;
  cfg.buffer_bytes = 32 * sizeof(value_t);  // multi-block on tiny graphs
  return cfg;
}

SessionOptions small_session() {
  SessionOptions opt;
  opt.ihtl = small_cfg();
  opt.threads = 1;
  return opt;
}

std::vector<Edge> sorted_edges(const Graph& g) {
  std::vector<Edge> edges = to_edge_list(g);
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  });
  return edges;
}

/// First (u, v) pair absent from g — poison for must-reject batches.
Edge missing_edge(const Graph& g) {
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    std::vector<vid_t> row(g.out().neighbors(u).begin(),
                           g.out().neighbors(u).end());
    std::sort(row.begin(), row.end());
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
      if (!std::binary_search(row.begin(), row.end(), v)) return {u, v};
    }
  }
  ADD_FAILURE() << "graph is complete; cannot build a missing edge";
  return {0, 0};
}

// ------------------------------------------------------------ apply_update

TEST(UpdateBatchSemantics, InsertThenRemoveRoundTripsSeeded) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    std::mt19937_64 rng(seed);
    const Graph g = small_web(1 << 8, seed);
    const vid_t n = g.num_vertices();
    const std::vector<Edge> before = sorted_edges(g);

    UpdateBatch batch;
    const std::size_t k = 3 + rng() % 8;
    for (std::size_t i = 0; i < k; ++i) {
      const Edge e{static_cast<vid_t>(rng() % n),
                   static_cast<vid_t>(rng() % n)};
      batch.insert.push_back(e);
      if (rng() % 3 == 0) batch.insert.push_back(e);  // duplicate
    }
    const vid_t loop = static_cast<vid_t>(rng() % n);
    batch.insert.push_back({loop, loop});  // self-loop

    const Graph g1 = apply_update(g, batch);
    EXPECT_EQ(g1.num_edges(), g.num_edges() + batch.insert.size());

    // Removing exactly the inserted instances restores the edge multiset
    // (duplicates each consumed one instance).
    UpdateBatch undo;
    undo.remove = batch.insert;
    const Graph g2 = apply_update(g1, undo);
    EXPECT_EQ(sorted_edges(g2), before) << "seed " << seed;
  }
}

TEST(UpdateBatchSemantics, DuplicateInsertsEachCountInSpmv) {
  // A duplicated edge contributes twice to a plus-SpMV: multigraph
  // semantics, exactly like a CSR row with a repeated target.
  const Graph g = small_web(1 << 6);
  UpdateBatch batch;
  batch.insert = {{3, 7}, {3, 7}};
  const Graph g1 = apply_update(g, batch);
  const eid_t mult_before = [&] {
    eid_t c = 0;
    for (const vid_t t : g.out().neighbors(3)) c += t == 7;
    return c;
  }();
  eid_t mult_after = 0;
  for (const vid_t t : g1.out().neighbors(3)) mult_after += t == 7;
  EXPECT_EQ(mult_after, mult_before + 2);
  eid_t in_mult = 0;
  for (const vid_t s : g1.in().neighbors(7)) in_mult += s == 3;
  EXPECT_EQ(in_mult, mult_after);  // CSR and CSC stay mirror images
}

TEST(UpdateBatchSemantics, RemoveBeforeInsertAllowsDeleteAndReinsert) {
  const Graph g = small_web(1 << 6);
  const Edge existing = to_edge_list(g).front();
  UpdateBatch batch;
  batch.remove = {existing};
  batch.insert = {existing};
  const Graph g1 = apply_update(g, batch);
  EXPECT_EQ(sorted_edges(g1), sorted_edges(g));
}

TEST(UpdateBatchSemantics, WholeBatchRejectsOnMissingRemove) {
  const Graph g = small_web(1 << 6);
  UpdateBatch batch;
  batch.insert = {{1, 2}};  // would be fine alone
  batch.remove = {missing_edge(g)};
  EXPECT_THROW(apply_update(g, batch), std::invalid_argument);
}

TEST(UpdateBatchSemantics, RemovesOfSameEdgeNeedDistinctInstances) {
  const Graph g = small_web(1 << 6);
  const Edge e = missing_edge(g);
  UpdateBatch grow;
  grow.insert = {e};
  const Graph g1 = apply_update(g, grow);
  UpdateBatch shrink_twice;
  shrink_twice.remove = {e, e};  // only one instance exists
  EXPECT_THROW(apply_update(g1, shrink_twice), std::invalid_argument);
  UpdateBatch shrink_once;
  shrink_once.remove = {e};
  EXPECT_EQ(sorted_edges(apply_update(g1, shrink_once)), sorted_edges(g));
}

TEST(UpdateBatchSemantics, OutOfRangeEndpointThrows) {
  const Graph g = small_web(1 << 6);
  const vid_t n = g.num_vertices();
  UpdateBatch batch;
  batch.insert = {{n, 0}};
  EXPECT_THROW(apply_update(g, batch), std::invalid_argument);
  batch.insert.clear();
  batch.remove = {{0, n}};
  EXPECT_THROW(apply_update(g, batch), std::invalid_argument);
}

TEST(UpdateBatchSemantics, EmptyBatchIsIdentity) {
  const Graph g = small_web(1 << 6);
  const Graph g1 = apply_update(g, UpdateBatch{});
  EXPECT_EQ(sorted_edges(g1), sorted_edges(g));
}

// -------------------------------------------------------- update_ihtl_graph

TEST(UpdateIhtl, IncrementalAndRebuildBothReconstructTheNewGraph) {
  const Graph g = small_web(1 << 8);
  const IhtlConfig cfg = small_cfg();
  const IhtlGraph ig = build_ihtl_graph(g, cfg);
  ASSERT_TRUE(ig.valid(g));

  UpdateBatch batch;
  batch.insert = {{5, 9}, {9, 5}, {12, 12}};
  batch.remove = {to_edge_list(g).front()};
  const Graph g_new = apply_update(g, batch);

  UpdateConfig incremental;
  incremental.rebuild_threshold = 1e9;
  UpdateStats si;
  const IhtlGraph a =
      update_ihtl_graph(ig, g, g_new, batch, cfg, incremental, &si);
  EXPECT_TRUE(a.valid(g_new));

  UpdateConfig rebuild;
  rebuild.rebuild_threshold = -1.0;
  UpdateStats sr;
  const IhtlGraph b = update_ihtl_graph(ig, g, g_new, batch, cfg, rebuild,
                                        &sr);
  EXPECT_TRUE(sr.rebuilt);
  EXPECT_TRUE(b.valid(g_new));
  EXPECT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(a.num_vertices(), b.num_vertices());
}

TEST(UpdateIhtl, EmptyBatchReportsNoRebuildNoDrift) {
  const Graph g = small_web(1 << 7);
  const IhtlConfig cfg = small_cfg();
  const IhtlGraph ig = build_ihtl_graph(g, cfg);
  UpdateStats st;
  const IhtlGraph same =
      update_ihtl_graph(ig, g, g, UpdateBatch{}, cfg, UpdateConfig{}, &st);
  EXPECT_FALSE(st.rebuilt);
  EXPECT_EQ(st.drift, 0.0);
  EXPECT_TRUE(same.valid(g));
}

/// Builds a batch with KNOWN positive drift that stays patchable: inserts
/// raising one non-hub's in-degree strictly above the weakest hub's, with
/// a non-hub destination (routes to the sparse block, so the FV->hub
/// fallback never triggers).
UpdateBatch drift_batch(const Graph& g, const IhtlGraph& ig) {
  const vid_t n = g.num_vertices();
  vid_t target = n;  // a non-hub destination
  for (vid_t v = 0; v < n; ++v) {
    if (ig.old_to_new()[v] >= ig.num_hubs()) {
      target = v;
      break;
    }
  }
  EXPECT_LT(target, n) << "no non-hub vertex to promote";
  UpdateBatch batch;
  const eid_t k = ig.min_hub_degree() + 2;
  for (eid_t i = 0; i < k; ++i) {
    batch.insert.push_back(
        {static_cast<vid_t>((target + 1 + i) % n), target});
  }
  return batch;
}

TEST(UpdateIhtl, RebuildThresholdBoundaryIsStrictlyGreater) {
  const Graph g = small_web(1 << 8);
  const IhtlConfig cfg = small_cfg();
  const IhtlGraph ig = build_ihtl_graph(g, cfg);
  ASSERT_GT(ig.num_hubs(), 0u);

  const UpdateBatch batch = drift_batch(g, ig);
  const double d = hub_drift(g, ig, cfg, batch);
  ASSERT_GT(d, 0.0);
  const Graph g_new = apply_update(g, batch);

  // Exactly AT the threshold: drift == threshold is NOT strictly greater,
  // so the batch stays incremental.
  UpdateConfig at;
  at.rebuild_threshold = d;
  UpdateStats st_at;
  const IhtlGraph ig_at =
      update_ihtl_graph(ig, g, g_new, batch, cfg, at, &st_at);
  EXPECT_FALSE(st_at.rebuilt);
  EXPECT_DOUBLE_EQ(st_at.drift, d);
  EXPECT_TRUE(ig_at.valid(g_new));

  // One representable step BELOW: drift now exceeds it — full rebuild.
  UpdateConfig below;
  below.rebuild_threshold = std::nextafter(d, 0.0);
  UpdateStats st_below;
  const IhtlGraph ig_below =
      update_ihtl_graph(ig, g, g_new, batch, cfg, below, &st_below);
  EXPECT_TRUE(st_below.rebuilt);
  EXPECT_TRUE(ig_below.valid(g_new));

  // Above: comfortably incremental.
  UpdateConfig above;
  above.rebuild_threshold = d * 2.0 + 1.0;
  UpdateStats st_above;
  const IhtlGraph ig_above =
      update_ihtl_graph(ig, g, g_new, batch, cfg, above, &st_above);
  EXPECT_FALSE(st_above.rebuilt);
  EXPECT_TRUE(ig_above.valid(g_new));
}

// ------------------------------------------------------------ GraphSession

TEST(SessionUpdate, ApplyUpdateBumpsEpochAndServesTheNewGraph) {
  const Graph g = small_web(1 << 8);
  GraphSession session(small_web(1 << 8), small_session());
  ASSERT_EQ(session.epoch(), 0u);

  UpdateBatch batch;
  batch.insert = {{1, 2}, {3, 4}, {5, 5}};
  const UpdateStats st = session.apply_update(batch);
  EXPECT_EQ(session.epoch(), 1u);
  EXPECT_EQ(st.inserted, 3u);
  EXPECT_GE(st.seconds, 0.0);

  // The rebound engines answer for the POST-update graph: compare against
  // a fresh session built from scratch on it (tolerance, not bitwise — the
  // patched layout's reduction order may differ from a fresh build's).
  GraphSession fresh(apply_update(g, batch), small_session());
  const std::vector<std::uint64_t> seeds = {7};
  expect_values_near(fresh.spmv_batch(seeds), session.spmv_batch(seeds));
  const std::vector<vid_t> sources = {3};
  expect_values_near(fresh.ppr_batch(sources, 4, 0.85),
                     session.ppr_batch(sources, 4, 0.85));
}

TEST(SessionUpdate, RejectedBatchLeavesEverythingUnchanged) {
  GraphSession session(small_web(1 << 7), small_session());
  const std::vector<vid_t> sources = {5};
  const std::vector<value_t> before = session.ppr_batch(sources, 3, 0.85);

  UpdateBatch bad;
  bad.insert = {{0, 1}};
  bad.remove = {missing_edge(session.graph())};
  EXPECT_THROW(session.apply_update(bad), std::invalid_argument);
  EXPECT_EQ(session.epoch(), 0u);  // not bumped
  // State untouched: the same query answers bitwise identically.
  EXPECT_EQ(session.ppr_batch(sources, 3, 0.85), before);
}

TEST(SessionUpdate, BatchedPprAfterUpdateMatchesFreshSession) {
  // Failing-before shape of the stale-lane-cache bug (the Shard-level
  // regression lives in test_shard.cpp): run batched ppr BEFORE the update
  // so the k-lane batch state exists, mutate the graph, and the same
  // batched query must answer like a session built from scratch on the
  // post-update graph — not through buffers sized for the old layout.
  const Graph g = small_web(1 << 8);
  GraphSession session(small_web(1 << 8), small_session());
  const std::vector<vid_t> sources = {3, 9, 17, 40};
  (void)session.ppr_batch(sources, 4, 0.85);  // bake the k=4 lane state

  UpdateBatch batch;
  batch.insert = {{2, 7}, {9, 1}, {30, 31}, {0, 40}};
  batch.remove = {to_edge_list(g).front()};
  session.apply_update(batch);

  GraphSession fresh(apply_update(g, batch), small_session());
  expect_values_near(fresh.ppr_batch(sources, 4, 0.85),
                     session.ppr_batch(sources, 4, 0.85));
}

TEST(SessionUpdate, BinnedPolicySessionSurvivesUpdateAndBatchedQueries) {
  // The binned scatter->accumulate path through the full session stack:
  // batched queries, then an update (engines rebuilt over the patched
  // layout, binned structures included), then batched queries again.
  SessionOptions opt = small_session();
  opt.ihtl.push_policy = PushPolicy::binned;
  const Graph g = small_web(1 << 8);
  GraphSession session(small_web(1 << 8), opt);
  const std::vector<vid_t> sources = {1, 5};
  (void)session.ppr_batch(sources, 3, 0.85);

  UpdateBatch batch;
  batch.insert = {{4, 9}, {10, 3}};
  session.apply_update(batch);

  GraphSession fresh(apply_update(g, batch), opt);
  expect_values_near(fresh.ppr_batch(sources, 3, 0.85),
                     session.ppr_batch(sources, 3, 0.85));
}

TEST(SessionUpdate, EmptyBatchIsANoOpAtTheSameEpoch) {
  GraphSession session(small_web(1 << 7), small_session());
  const UpdateStats st = session.apply_update(UpdateBatch{});
  EXPECT_EQ(session.epoch(), 0u);
  EXPECT_FALSE(st.rebuilt);
  EXPECT_EQ(st.inserted + st.removed, 0u);
}

// -------------------------------------------------- delta-PageRank consumer

TEST(PageRankDeltaWarmStart, UniformStartMatchesTheOriginalBitwise) {
  const Graph g = small_web(1 << 8);
  ThreadPool pool(1);
  PageRankDeltaOptions opt;
  const PageRankDeltaResult cold = pagerank_delta(pool, g, opt);
  const std::vector<value_t> uniform(g.num_vertices(),
                                     1.0 / g.num_vertices());
  const PageRankDeltaResult from =
      pagerank_delta_from(pool, g, uniform, opt);
  EXPECT_EQ(cold.rounds, from.rounds);
  EXPECT_EQ(cold.ranks, from.ranks);
}

TEST(PageRankDeltaWarmStart, ResumingOldRanksMatchesColdStartWithLessWork) {
  const Graph g = small_web(1 << 9);
  ThreadPool pool(2);
  PageRankDeltaOptions opt;
  opt.epsilon = 1e-7;
  opt.max_rounds = 200;
  const PageRankDeltaResult pre = pagerank_delta(pool, g, opt);

  UpdateBatch batch;
  batch.insert = {{2, 3}, {10, 20}, {7, 7}};
  batch.remove = {to_edge_list(g).front()};
  const Graph g_new = apply_update(g, batch);

  const PageRankDeltaResult cold = pagerank_delta(pool, g_new, opt);
  const PageRankDeltaResult warm =
      pagerank_delta_from(pool, g_new, pre.ranks, opt);
  // Same fixpoint (a property of g_new alone), reached with far less
  // frontier WORK — the small batch left the old ranks near the new
  // fixpoint, so the frontier collapses immediately. Round count is not
  // ordered: low-rank stragglers can keep a tiny frontier alive, so the
  // honest payoff metric is total_active.
  expect_values_near(cold.ranks, warm.ranks, 1e-6);
  EXPECT_LT(warm.total_active * 2, cold.total_active);
}

TEST(PageRankDeltaWarmStart, SizeMismatchThrows) {
  const Graph g = small_web(1 << 6);
  ThreadPool pool(1);
  const std::vector<value_t> wrong(3, 0.1);
  EXPECT_THROW(pagerank_delta_from(pool, g, wrong, {}),
               std::invalid_argument);
}

// --------------------------------------------------------- mutation lattice

TEST(UpdateLatticeSeedStability, DrawIsFrozen) {
  // Golden pin of the APPEND-ONLY draw contract (like CaseParams::draw):
  // new knobs draw after poison_kind, never before.
  const check::UpdatePointParams p = check::UpdatePointParams::draw(424242);
  EXPECT_EQ(p.seed, 424242u);
  EXPECT_EQ(p.dataset, "UU");
  EXPECT_EQ(p.buffer_values, 64u);
  EXPECT_EQ(p.min_hub_in_degree, 2u);
  EXPECT_EQ(p.threads, 1u);
  EXPECT_EQ(p.threshold_mode, 2);  // forced-incremental point
  EXPECT_DOUBLE_EQ(p.threshold, 1e9);
  EXPECT_EQ(p.batches, 1u);
  EXPECT_FALSE(p.poison);
  EXPECT_EQ(p.poison_kind, 1);
}

TEST(UpdateLattice, SmokeCleanUnderBothThresholdRegimes) {
  check::UpdateCheckOptions opt;
  opt.base_seed = 2026;
  opt.points = 3;
  check::UpdateCheckResult r = check::run_update_lattice(opt);
  EXPECT_TRUE(r.ok) << r.failure;
  EXPECT_GT(r.batches_checked, 0u);

  opt.force_threshold = -1.0;  // from-scratch baseline on every batch
  r = check::run_update_lattice(opt);
  EXPECT_TRUE(r.ok) << r.failure;
  EXPECT_EQ(r.incremental, 0u);
}

}  // namespace
}  // namespace ihtl
