#include <gtest/gtest.h>

#include <functional>

#include "baselines/spmv.h"
#include "graph/permute.h"
#include "graph/stats.h"
#include "reorder/reorder.h"
#include "test_util.h"

namespace ihtl {
namespace {

using testing::small_rmat;
using testing::small_web;

using OrderFn = std::function<std::vector<vid_t>(const Graph&)>;

struct OrderCase {
  std::string name;
  OrderFn fn;
};

std::vector<OrderCase> all_orders() {
  return {
      {"SlashBurn", [](const Graph& g) { return slashburn_order(g); }},
      {"GOrder", [](const Graph& g) { return gorder(g); }},
      {"RabbitOrder", [](const Graph& g) { return rabbit_order(g); }},
      {"Degree", [](const Graph& g) { return degree_order(g); }},
      {"Random",
       [](const Graph& g) { return random_order(g.num_vertices(), 17); }},
  };
}

class ReorderTest : public ::testing::TestWithParam<OrderCase> {};

TEST_P(ReorderTest, ProducesValidPermutation) {
  const Graph g = small_rmat(9, 8);
  const auto perm = GetParam().fn(g);
  ASSERT_EQ(perm.size(), g.num_vertices());
  EXPECT_TRUE(is_permutation(perm));
}

TEST_P(ReorderTest, ValidOnWebGraph) {
  const Graph g = small_web(1u << 9);
  EXPECT_TRUE(is_permutation(GetParam().fn(g)));
}

TEST_P(ReorderTest, ValidOnEmptyAndSingletonGraphs) {
  EXPECT_TRUE(GetParam().fn(build_graph(0, {})).empty());
  const std::vector<Edge> one = {{0, 0}};
  EXPECT_EQ(GetParam().fn(build_graph(1, one)).size(), 1u);
}

TEST_P(ReorderTest, RelabeledGraphPreservesStructure) {
  const Graph g = small_rmat(8, 6);
  const auto perm = GetParam().fn(g);
  const Graph relabeled = apply_permutation(g, perm);
  EXPECT_EQ(relabeled.num_edges(), g.num_edges());
  const GraphStats a = compute_stats(g);
  const GraphStats b = compute_stats(relabeled);
  EXPECT_EQ(a.max_in_degree, b.max_in_degree);
  EXPECT_EQ(a.max_out_degree, b.max_out_degree);
}

TEST_P(ReorderTest, Deterministic) {
  const Graph g = small_rmat(8, 6);
  EXPECT_EQ(GetParam().fn(g), GetParam().fn(g));
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, ReorderTest, ::testing::ValuesIn(all_orders()),
    [](const ::testing::TestParamInfo<OrderCase>& info) {
      return info.param.name;
    });

// --------------------------------------------------------- algorithm-specific

TEST(SlashBurn, HubsLandAtLowIds) {
  const Graph g = small_rmat(10, 8);
  const auto perm = slashburn_order(g);
  // The max-degree vertex must be placed within the first slash (k ids).
  vid_t top = 0;
  for (vid_t v = 1; v < g.num_vertices(); ++v) {
    if (g.in_degree(v) + g.out_degree(v) >
        g.in_degree(top) + g.out_degree(top)) {
      top = v;
    }
  }
  const vid_t k = std::max<vid_t>(1, static_cast<vid_t>(0.005 * g.num_vertices()));
  EXPECT_LT(perm[top], k);
}

TEST(SlashBurn, StarGraphCenterIsFirst) {
  std::vector<Edge> edges;
  for (vid_t v = 1; v < 20; ++v) edges.push_back({v, 0});
  const Graph g = build_graph(20, edges);
  const auto perm = slashburn_order(g);
  EXPECT_EQ(perm[0], 0u);  // the star centre gets the first ID
}

TEST(GOrder, PlacesConnectedVerticesNearby) {
  // Two disjoint cliques: GOrder must number each clique contiguously.
  std::vector<Edge> edges;
  for (vid_t u = 0; u < 5; ++u) {
    for (vid_t v = 0; v < 5; ++v) {
      if (u != v) {
        edges.push_back({u, v});
        edges.push_back({u + 5, v + 5});
      }
    }
  }
  const Graph g = build_graph(10, edges);
  const auto perm = gorder(g, 3);
  // Within each clique, the spread of new IDs is exactly 4 (contiguous).
  vid_t lo0 = 10, hi0 = 0, lo1 = 10, hi1 = 0;
  for (vid_t v = 0; v < 5; ++v) {
    lo0 = std::min(lo0, perm[v]);
    hi0 = std::max(hi0, perm[v]);
    lo1 = std::min(lo1, perm[v + 5]);
    hi1 = std::max(hi1, perm[v + 5]);
  }
  EXPECT_EQ(hi0 - lo0, 4u);
  EXPECT_EQ(hi1 - lo1, 4u);
}

TEST(RabbitOrder, CommunitiesGetContiguousIds) {
  // Two dense communities joined by one bridge edge.
  std::vector<Edge> edges;
  for (vid_t u = 0; u < 6; ++u) {
    for (vid_t v = 0; v < 6; ++v) {
      if (u != v) {
        edges.push_back({u, v});
        edges.push_back({u + 6, v + 6});
      }
    }
  }
  edges.push_back({0, 6});
  const Graph g = build_graph(12, edges);
  const auto perm = rabbit_order(g);
  // Count how many of community 0's vertices land in the lower half.
  int lower = 0;
  for (vid_t v = 0; v < 6; ++v) lower += perm[v] < 6;
  EXPECT_TRUE(lower == 6 || lower == 0)
      << "community split across the ID space";
}

TEST(DegreeOrder, SortsByDescendingTotalDegree) {
  const Graph g = small_rmat(9, 8);
  const auto perm = degree_order(g);
  const auto inv = invert_permutation(perm);
  for (vid_t i = 1; i < g.num_vertices(); ++i) {
    const eid_t prev = g.in_degree(inv[i - 1]) + g.out_degree(inv[i - 1]);
    const eid_t cur = g.in_degree(inv[i]) + g.out_degree(inv[i]);
    ASSERT_GE(prev, cur);
  }
}

TEST(RandomOrder, DifferentSeedsDiffer) {
  EXPECT_NE(random_order(1000, 1), random_order(1000, 2));
  EXPECT_EQ(random_order(1000, 3), random_order(1000, 3));
}

TEST(Reorder, SpmvResultInvariantUnderRelabeling) {
  // Relabeling must never change SpMV results (mapped through the perm).
  const Graph g = small_rmat(8, 6);
  const auto x = testing::random_values(g.num_vertices(), 3);
  std::vector<value_t> y(g.num_vertices());
  spmv_pull_serial(g, x, y);

  for (const auto& oc : all_orders()) {
    const auto perm = oc.fn(g);
    const Graph rg = apply_permutation(g, perm);
    const auto xp = permute_values<value_t>(x, perm);
    std::vector<value_t> yp(g.num_vertices());
    spmv_pull_serial(rg, xp, yp);
    const auto y_back = unpermute_values<value_t>(yp, perm);
    testing::expect_values_near(y, y_back, 1e-9);
  }
}

}  // namespace
}  // namespace ihtl
