#include <gtest/gtest.h>

#include "baselines/spmv.h"
#include "test_util.h"

namespace ihtl {
namespace {

using testing::expect_values_near;
using testing::figure2_graph;
using testing::random_values;
using testing::small_rmat;

std::vector<value_t> reference_pull(const Graph& g,
                                    const std::vector<value_t>& x) {
  std::vector<value_t> y(g.num_vertices());
  spmv_pull_serial(g, x, y);
  return y;
}

TEST(SpmvPullSerial, Figure2HandComputed) {
  const Graph g = figure2_graph();
  std::vector<value_t> x(8);
  for (vid_t v = 0; v < 8; ++v) x[v] = v + 1.0;  // x = [1..8]
  std::vector<value_t> y(8);
  spmv_pull_serial(g, x, y);
  // In-neighbours: v0 <- {5}; v2 <- {0,1,4,5,7}; v6 <- {1,3,4}.
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[2], 1 + 2 + 5 + 6 + 8.0);
  EXPECT_DOUBLE_EQ(y[6], 2 + 4 + 5.0);
  EXPECT_DOUBLE_EQ(y[7], 6.0);  // v7 <- {5}
}

TEST(SpmvPullSerial, MinMonoid) {
  const Graph g = figure2_graph();
  std::vector<value_t> x(8);
  for (vid_t v = 0; v < 8; ++v) x[v] = 10.0 - v;
  std::vector<value_t> y(8);
  spmv_pull_serial<MinMonoid>(g, x, y);
  // In-neighbours of 2 are {0,1,4,5,7}: values {10,9,6,5,3} -> min 3.
  EXPECT_DOUBLE_EQ(y[2], 3.0);
  // In-neighbours of 6 are {1,3,4}: values {9,7,6} -> min 6.
  EXPECT_DOUBLE_EQ(y[6], 6.0);
}

class BaselineKernelsTest
    : public ::testing::TestWithParam<std::tuple<unsigned, std::size_t>> {
 protected:
  // (rmat scale, pool threads)
  Graph g_ = testing::small_rmat(std::get<0>(GetParam()), 8,
                                 std::get<0>(GetParam()) * 31 + 7);
  ThreadPool pool_{std::get<1>(GetParam())};
};

TEST_P(BaselineKernelsTest, ParallelPullMatchesSerial) {
  const auto x = random_values(g_.num_vertices(), 1);
  const auto expected = reference_pull(g_, x);
  std::vector<value_t> y(g_.num_vertices());
  spmv_pull(pool_, g_, x, y);
  expect_values_near(expected, y);
}

TEST_P(BaselineKernelsTest, EdgeBalancedPullMatchesSerial) {
  const auto x = random_values(g_.num_vertices(), 2);
  const auto expected = reference_pull(g_, x);
  std::vector<value_t> y(g_.num_vertices());
  spmv_pull_edge_balanced(pool_, g_, x, y);
  expect_values_near(expected, y);
}

TEST_P(BaselineKernelsTest, AtomicPushMatchesSerial) {
  const auto x = random_values(g_.num_vertices(), 3);
  const auto expected = reference_pull(g_, x);
  std::vector<value_t> y(g_.num_vertices());
  spmv_push_atomic(pool_, g_, x, y);
  expect_values_near(expected, y, 1e-9);
}

TEST_P(BaselineKernelsTest, BufferedPushMatchesSerial) {
  const auto x = random_values(g_.num_vertices(), 4);
  const auto expected = reference_pull(g_, x);
  std::vector<value_t> y(g_.num_vertices());
  spmv_push_buffered(pool_, g_, x, y);
  expect_values_near(expected, y, 1e-9);
}

TEST_P(BaselineKernelsTest, PartitionedPushMatchesSerial) {
  const auto x = random_values(g_.num_vertices(), 5);
  const auto expected = reference_pull(g_, x);
  DestinationPartitionedPush push(g_, 8);
  std::vector<value_t> y(g_.num_vertices());
  push.run(pool_, x, y);
  expect_values_near(expected, y, 1e-9);
}

TEST_P(BaselineKernelsTest, SegmentedPullMatchesSerial) {
  const auto x = random_values(g_.num_vertices(), 6);
  const auto expected = reference_pull(g_, x);
  SegmentedPull pull(g_, g_.num_vertices() / 4 + 1);
  std::vector<value_t> y(g_.num_vertices());
  pull.run(pool_, x, y);
  expect_values_near(expected, y, 1e-9);
}

TEST_P(BaselineKernelsTest, MinMonoidAcrossKernels) {
  const auto x = random_values(g_.num_vertices(), 7);
  std::vector<value_t> expected(g_.num_vertices());
  spmv_pull_serial<MinMonoid>(g_, x, expected);
  std::vector<value_t> y(g_.num_vertices());
  spmv_pull<MinMonoid>(pool_, g_, x, y);
  expect_values_near(expected, y);
  spmv_push_buffered<MinMonoid>(pool_, g_, x, y);
  expect_values_near(expected, y);
}

INSTANTIATE_TEST_SUITE_P(
    ScalesAndThreads, BaselineKernelsTest,
    ::testing::Combine(::testing::Values(6u, 8u, 10u),
                       ::testing::Values(1u, 2u, 4u)),
    [](const auto& info) {
      return "scale" + std::to_string(std::get<0>(info.param)) + "_t" +
             std::to_string(std::get<1>(info.param));
    });

TEST(DestinationPartitionedPush, PartitionsCoverEveryEdge) {
  const Graph g = small_rmat(9, 8);
  DestinationPartitionedPush push(g, 5);
  EXPECT_EQ(push.num_parts(), 5u);
  // Correctness of coverage is implied by the SpMV equivalence test above;
  // here check topology accounting is sane (>= one CSR of the graph).
  EXPECT_GE(push.topology_bytes(), g.num_edges() * sizeof(vid_t));
}

TEST(SegmentedPull, SingleSegmentEqualsPlainPull) {
  ThreadPool pool(2);
  const Graph g = small_rmat(8, 6);
  const auto x = random_values(g.num_vertices(), 8);
  SegmentedPull seg(g, g.num_vertices());  // one segment
  EXPECT_EQ(seg.num_segments(), 1u);
  std::vector<value_t> expected(g.num_vertices()), y(g.num_vertices());
  spmv_pull_serial(g, x, expected);
  seg.run(pool, x, y);
  expect_values_near(expected, y);
}

TEST(SegmentedPull, ManyTinySegmentsStillCorrect) {
  ThreadPool pool(3);
  const Graph g = small_rmat(8, 6);
  const auto x = random_values(g.num_vertices(), 9);
  SegmentedPull seg(g, 8);  // dozens of segments
  EXPECT_GT(seg.num_segments(), 10u);
  std::vector<value_t> expected(g.num_vertices()), y(g.num_vertices());
  spmv_pull_serial(g, x, expected);
  seg.run(pool, x, y);
  expect_values_near(expected, y, 1e-9);
}

TEST(Baselines, EmptyGraphAllKernels) {
  ThreadPool pool(2);
  const Graph g = build_graph(0, {});
  std::vector<value_t> x, y;
  spmv_pull(pool, g, x, y);
  spmv_push_atomic(pool, g, x, y);
  spmv_push_buffered(pool, g, x, y);
  SUCCEED();
}

}  // namespace
}  // namespace ihtl
