#include <gtest/gtest.h>

#include "core/ihtl_graph.h"
#include "gen/datasets.h"
#include "graph/permute.h"
#include "test_util.h"

namespace ihtl {
namespace {

using testing::figure2_graph;
using testing::small_rmat;
using testing::small_web;

IhtlConfig cfg_with_hubs(vid_t hubs_per_block) {
  IhtlConfig cfg;
  cfg.buffer_bytes = hubs_per_block * sizeof(value_t);
  return cfg;
}

TEST(IhtlGraph, Figure2Construction) {
  const Graph g = figure2_graph();
  IhtlConfig cfg = cfg_with_hubs(2);
  cfg.min_hub_in_degree = 3;
  const IhtlGraph ig = build_ihtl_graph(g, cfg);

  // Hubs are the paper's vertices 3 and 7 (our 2 and 6), relabeled to 0, 1.
  ASSERT_EQ(ig.num_hubs(), 2u);
  EXPECT_EQ(ig.new_to_old()[0], 2u);
  EXPECT_EQ(ig.new_to_old()[1], 6u);
  // VWEH: sources with edges to hubs = {0,1,3,4,5,7} minus hubs = 6 vertices
  // (paper Figure 4 relabeling: VWEH = {2,5,6,8} 1-based = {1,4,5,7}, plus
  // our 0-based extra sources: every in-neighbour of 2 or 6).
  EXPECT_EQ(ig.num_vweh(), 6u);
  EXPECT_EQ(ig.num_fv(), 0u);
  EXPECT_TRUE(ig.valid(g));
}

TEST(IhtlGraph, Figure2EdgeSplit) {
  const Graph g = figure2_graph();
  IhtlConfig cfg = cfg_with_hubs(2);
  cfg.min_hub_in_degree = 3;
  const IhtlGraph ig = build_ihtl_graph(g, cfg);
  // In-degree(2) = 5 and in-degree(6) = 3: 8 edges in flipped blocks.
  EXPECT_EQ(ig.flipped_edges(), 8u);
  EXPECT_EQ(ig.sparse_edges(), 6u);
}

TEST(IhtlGraph, RelabelingIsPermutationWithClassOrder) {
  const Graph g = small_rmat(10, 8);
  const IhtlGraph ig = build_ihtl_graph(g, cfg_with_hubs(16));
  EXPECT_TRUE(is_permutation(ig.old_to_new()));

  // VWEH and FV preserve original relative order (Section 3.2).
  vid_t prev_vweh = 0;
  bool first_vweh = true;
  for (vid_t nv = ig.num_hubs(); nv < ig.num_push_sources(); ++nv) {
    const vid_t old_id = ig.new_to_old()[nv];
    if (!first_vweh) EXPECT_GT(old_id, prev_vweh);
    prev_vweh = old_id;
    first_vweh = false;
  }
  vid_t prev_fv = 0;
  bool first_fv = true;
  for (vid_t nv = ig.num_push_sources(); nv < ig.num_vertices(); ++nv) {
    const vid_t old_id = ig.new_to_old()[nv];
    if (!first_fv) EXPECT_GT(old_id, prev_fv);
    prev_fv = old_id;
    first_fv = false;
  }
}

TEST(IhtlGraph, BlocksTileTheHubRange) {
  const Graph g = small_rmat(11, 16);
  const IhtlGraph ig = build_ihtl_graph(g, cfg_with_hubs(8));
  ASSERT_GT(ig.blocks().size(), 1u) << "want multiple blocks for this test";
  vid_t expected_begin = 0;
  for (const FlippedBlock& b : ig.blocks()) {
    EXPECT_EQ(b.hub_begin, expected_begin);
    EXPECT_GT(b.hub_end, b.hub_begin);
    expected_begin = b.hub_end;
  }
  EXPECT_EQ(expected_begin, ig.num_hubs());
}

TEST(IhtlGraph, BlockTargetsAreBlockRelative) {
  const Graph g = small_rmat(10, 8);
  const IhtlGraph ig = build_ihtl_graph(g, cfg_with_hubs(8));
  for (const FlippedBlock& b : ig.blocks()) {
    for (const vid_t rel : b.csr.targets) {
      ASSERT_LT(rel, b.num_hubs());
    }
  }
}

TEST(IhtlGraph, EveryEdgeExactlyOnce) {
  // The paper's key invariant: "every edge is traversed exactly once".
  for (const unsigned scale : {6u, 8u, 10u}) {
    const Graph g = small_rmat(scale, 8, scale);
    const IhtlGraph ig = build_ihtl_graph(g, cfg_with_hubs(8));
    EXPECT_TRUE(ig.valid(g)) << "scale " << scale;
    EXPECT_EQ(ig.flipped_edges() + ig.sparse_edges(), g.num_edges());
  }
}

TEST(IhtlGraph, FringeVerticesHaveNoEdgesToHubs) {
  const Graph g = small_web(1u << 11);
  const IhtlGraph ig = build_ihtl_graph(g, cfg_with_hubs(16));
  ASSERT_GT(ig.num_fv(), 0u);
  std::vector<char> is_hub_old(g.num_vertices(), 0);
  for (vid_t h = 0; h < ig.num_hubs(); ++h) is_hub_old[ig.new_to_old()[h]] = 1;
  for (vid_t nv = ig.num_push_sources(); nv < ig.num_vertices(); ++nv) {
    const vid_t old_v = ig.new_to_old()[nv];
    for (const vid_t t : g.out().neighbors(old_v)) {
      ASSERT_FALSE(is_hub_old[t])
          << "FV vertex " << old_v << " has an edge to hub " << t;
    }
  }
}

TEST(IhtlGraph, SparseBlockHasNoHubDestinations) {
  const Graph g = small_rmat(10, 8);
  const IhtlGraph ig = build_ihtl_graph(g, cfg_with_hubs(16));
  // The sparse CSC covers destinations [num_hubs, n) only; its size must
  // match and its sources must be valid new IDs.
  EXPECT_EQ(ig.sparse().num_vertices(), ig.num_vertices() - ig.num_hubs());
  for (const vid_t src : ig.sparse().targets) {
    ASSERT_LT(src, ig.num_vertices());
  }
}

TEST(IhtlGraph, HubInEdgesAllLandInFlippedBlocks) {
  const Graph g = small_rmat(10, 8);
  const IhtlGraph ig = build_ihtl_graph(g, cfg_with_hubs(16));
  eid_t hub_in_edges = 0;
  for (vid_t h = 0; h < ig.num_hubs(); ++h) {
    hub_in_edges += g.in_degree(ig.new_to_old()[h]);
  }
  EXPECT_EQ(hub_in_edges, ig.flipped_edges());
}

TEST(IhtlGraph, SocialGraphFlippedShareMatchesPaperBand) {
  // Table 5: flipped blocks hold 45-67% of social-network edges. Allow a
  // generous band for the synthetic stand-ins.
  const Graph g = small_rmat(12, 16);
  const IhtlGraph ig = build_ihtl_graph(g, cfg_with_hubs(256));
  const double share =
      static_cast<double>(ig.flipped_edges()) / ig.num_edges();
  EXPECT_GT(share, 0.10);
  EXPECT_LT(share, 0.90);
}

TEST(IhtlGraph, ZeroBlocksDegeneratesToPull) {
  // A cycle has no hubs; iHTL must degrade gracefully to a pure sparse
  // (pull) graph.
  std::vector<Edge> edges;
  for (vid_t v = 0; v < 16; ++v) edges.push_back({v, (v + 1) % 16});
  const Graph g = build_graph(16, edges);
  const IhtlGraph ig = build_ihtl_graph(g, cfg_with_hubs(4));
  EXPECT_EQ(ig.num_hubs(), 0u);
  EXPECT_TRUE(ig.blocks().empty());
  EXPECT_EQ(ig.sparse_edges(), g.num_edges());
  EXPECT_TRUE(ig.valid(g));
}

TEST(IhtlGraph, TopologyBytesExceedCscButModestly) {
  // Table 4: iHTL topology is larger than plain CSC (replicated index
  // arrays) but not absurdly so.
  const Graph g = small_rmat(12, 16);
  const IhtlGraph ig = build_ihtl_graph(g, cfg_with_hubs(512));
  EXPECT_GT(ig.topology_bytes(), g.csc_topology_bytes());
  EXPECT_LT(ig.topology_bytes(), 4 * g.csc_topology_bytes());
}

TEST(IhtlGraph, ValidRejectsWrongGraph) {
  const Graph g = small_rmat(8, 4);
  const Graph other = small_rmat(8, 4, 999);
  const IhtlGraph ig = build_ihtl_graph(g, cfg_with_hubs(8));
  EXPECT_TRUE(ig.valid(g));
  EXPECT_FALSE(ig.valid(other));
}

class AllDatasetsIhtlTest
    : public ::testing::TestWithParam<DatasetSpec> {};

TEST_P(AllDatasetsIhtlTest, ConstructionValidOnEveryDataset) {
  const Graph g = make_dataset(GetParam(), DatasetScale::tiny);
  IhtlConfig cfg;
  cfg.buffer_bytes = 32 * sizeof(value_t);
  const IhtlGraph ig = build_ihtl_graph(g, cfg);
  EXPECT_TRUE(ig.valid(g)) << GetParam().name;
  EXPECT_GT(ig.num_hubs(), 0u) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Registry, AllDatasetsIhtlTest, ::testing::ValuesIn(all_datasets()),
    [](const ::testing::TestParamInfo<DatasetSpec>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace ihtl
