// Tests of the check subsystem itself: the oracle must pass on correct
// engines, the mismatch reporter must localize an injected fault (vertex
// class, owning block, iteration), the minimizer must shrink a failing case
// below 32 vertices into a compilable snippet, replay must be bit-stable,
// and the parameter draw must never re-key existing seeds (golden test).
#include <gtest/gtest.h>

#include <optional>

#include "check/diff_runner.h"
#include "check/oracle.h"
#include "telemetry/metrics.h"
#include "test_util.h"

namespace ihtl {
namespace {

using check::CaseParams;
using check::CaseResult;
using check::DiffOptions;
using check::GenFamily;
using check::HubPolicy;
using check::MinimizedCase;
using check::Mismatch;
using check::OracleOptions;
using check::OracleReport;
using check::VertexClass;
using check::Workload;

TEST(Oracle, AllWorkloadsCleanOnFigure2) {
  const Graph g = testing::figure2_graph();
  ThreadPool pool(3);
  IhtlConfig cfg;
  cfg.buffer_bytes = 2 * sizeof(value_t);  // two hubs per block
  cfg.min_hub_in_degree = 3;
  for (int w = 0; w < check::kNumWorkloads; ++w) {
    OracleOptions opt;
    opt.workload = static_cast<Workload>(w);
    const OracleReport rep = check::run_oracle(pool, g, cfg, opt);
    EXPECT_TRUE(rep.ok) << rep.summary();
    EXPECT_EQ(rep.summary(),
              "OK[" + check::workload_name(opt.workload) + "]");
  }
}

TEST(Oracle, AllWorkloadsCleanOnSkewedGraphs) {
  ThreadPool pool(4);
  const IhtlConfig cfg;
  for (const Graph& g : {testing::small_rmat(8), testing::small_web(1u << 8)}) {
    for (int w = 0; w < check::kNumWorkloads; ++w) {
      OracleOptions opt;
      opt.workload = static_cast<Workload>(w);
      const OracleReport rep = check::run_oracle(pool, g, cfg, opt);
      EXPECT_TRUE(rep.ok) << rep.summary();
    }
  }
}

TEST(Oracle, DropMergeFaultIsDetectedAndClassified) {
  const Graph g = testing::small_web(1u << 8);
  ThreadPool pool(2);
  IhtlConfig cfg;
  cfg.buffer_bytes = 4 * sizeof(value_t);  // several blocks, so "last" is real
  OracleOptions opt;
  opt.workload = Workload::spmv_plus;
  opt.plus_engine_override = check::drop_merge_fault();
  const OracleReport rep = check::run_oracle(pool, g, cfg, opt);

  ASSERT_FALSE(rep.ok);
  EXPECT_EQ(rep.kind, "value");
  EXPECT_EQ(rep.engine, "ihtl");
  ASSERT_TRUE(rep.first.has_value());
  const Mismatch& m = *rep.first;
  // The dropped merge zeroes hub outputs, so the first divergent vertex must
  // be a hub owned by the LAST flipped block, at the first iteration.
  EXPECT_EQ(m.cls, VertexClass::hub);
  EXPECT_EQ(m.iteration, 0u);
  const IhtlGraph ig = build_ihtl_graph(g, cfg);
  ASSERT_FALSE(ig.blocks().empty());
  EXPECT_EQ(m.block, static_cast<int>(ig.blocks().size() - 1));
  EXPECT_GE(m.vertex_new, ig.blocks().back().hub_begin);
  EXPECT_LT(m.vertex_new, ig.blocks().back().hub_end);
  EXPECT_EQ(m.actual, 0.0);
  EXPECT_GT(m.expected, 0.0);
}

TEST(Oracle, PagerankAlsoSeesTheFault) {
  const Graph g = testing::small_web(1u << 8);
  ThreadPool pool(2);
  IhtlConfig cfg;
  cfg.buffer_bytes = 4 * sizeof(value_t);
  OracleOptions opt;
  opt.workload = Workload::pagerank;
  opt.plus_engine_override = check::drop_merge_fault();
  const OracleReport rep = check::run_oracle(pool, g, cfg, opt);
  ASSERT_FALSE(rep.ok);
  ASSERT_TRUE(rep.first.has_value());
  EXPECT_EQ(rep.first->cls, VertexClass::hub);
}

/// Finds a lattice point where the injected fault actually fires (a point
/// with at least one flipped block under the spmv_plus workload).
std::optional<CaseResult> find_faulting_point(const DiffOptions& opt) {
  for (std::size_t i = 0; i < 64; ++i) {
    CaseResult r = check::run_point(check::point_seed(opt.base_seed, i), opt);
    if (!r.report.ok) return r;
  }
  return std::nullopt;
}

TEST(Minimizer, ShrinksInjectedFaultBelow32Vertices) {
  DiffOptions opt;
  opt.base_seed = 2026;
  opt.force_workload = Workload::spmv_plus;
  opt.engine_override = check::drop_merge_fault();
  const std::optional<CaseResult> failure = find_faulting_point(opt);
  ASSERT_TRUE(failure.has_value())
      << "no lattice point produced a flipped block";

  const MinimizedCase m = check::minimize_case(*failure, opt);
  EXPECT_TRUE(m.reproduced);
  EXPECT_LT(m.num_vertices, 32u);
  EXPECT_FALSE(m.report.ok);
  EXPECT_GT(m.steps, 0u);

  const std::string snippet = check::repro_snippet(m);
  EXPECT_NE(snippet.find("build_graph"), std::string::npos);
  EXPECT_NE(snippet.find("run_oracle"), std::string::npos);
  EXPECT_NE(snippet.find("check::Workload::spmv_plus"), std::string::npos);
  EXPECT_NE(snippet.find("int main()"), std::string::npos);
}

TEST(Replay, SameSeedSameResult) {
  const std::uint64_t seed = check::point_seed(2026, 7);
  const CaseResult a = check::run_point(seed);
  const CaseResult b = check::run_point(seed);
  EXPECT_EQ(a.params.describe(), b.params.describe());
  EXPECT_EQ(a.report.summary(), b.report.summary());
  EXPECT_EQ(a.params.seed, seed);
}

// GOLDEN: CaseParams::draw(424242) must keep producing exactly these values.
// If this test fails, a draw was inserted/removed/reordered in
// CaseParams::draw — which silently re-keys every replay seed ever recorded
// (CI logs, committed repros). Only APPEND draws; see the seed-stability
// contract in diff_runner.h.
TEST(SeedStability, DrawIsFrozen) {
  const CaseParams p = CaseParams::draw(424242);
  EXPECT_EQ(p.seed, 424242u);
  EXPECT_EQ(p.family, GenFamily::single_vertex);
  EXPECT_EQ(p.num_vertices, 1u);  // pinned by the single_vertex family
  EXPECT_EQ(p.edge_factor, 11u);
  EXPECT_EQ(p.graph_seed, 5005801170018117661ull);
  EXPECT_EQ(p.buffer_values, 512u);
  EXPECT_EQ(p.min_hub_in_degree, 1u);
  EXPECT_EQ(p.hub_policy, HubPolicy::all_hub);
  EXPECT_EQ(p.threads, 2u);
  EXPECT_EQ(p.workload, Workload::hits);
  EXPECT_EQ(p.iterations, 3u);
  EXPECT_EQ(p.source, 114590u);
  EXPECT_EQ(p.x_seed, 3664447913708261913ull);
  // Appended in PR 3 (push-policy axis); draws after x_seed per the contract.
  // The PR 10 binned roll (appended after the batch roll) left this seed's
  // policy untouched — a roll of 0 would have overridden it to binned.
  EXPECT_EQ(p.push_policy, PushPolicy::shared);
  // Appended in PR 5 (batch axis); drawn after push_policy per the contract.
  EXPECT_EQ(p.batch, 1u);
}

// The lattice's push-policy axis: every policy must pass the oracle under
// all three spmv semirings (pinned points, so a regression in one policy's
// merge/reset path cannot hide behind lattice sampling).
TEST(SeedStability, PushPolicyLatticePinnedPerPolicyAndSemiring) {
  for (const PushPolicy policy : {PushPolicy::automatic, PushPolicy::shared,
                                  PushPolicy::single_owner,
                                  PushPolicy::binned}) {
    for (const Workload w :
         {Workload::spmv_plus, Workload::spmv_min, Workload::spmv_max}) {
      DiffOptions opt;
      opt.base_seed = 2026;
      opt.points = 4;
      opt.force_push_policy = policy;
      opt.force_workload = w;
      const std::optional<CaseResult> failure = check::run_lattice(opt);
      EXPECT_FALSE(failure.has_value())
          << "policy " << push_policy_name(policy) << " workload "
          << workload_name(w) << ": " << failure->report.summary();
    }
  }
}

// The lattice's batch axis: every forced lane count must pass the oracle
// under all three spmv semirings (pinned points, mirroring the push-policy
// pinning above, so a regression in the k-lane buffers cannot hide behind
// lattice sampling).
TEST(SeedStability, BatchLatticePinnedPerLaneCountAndSemiring) {
  for (const std::size_t batch : {std::size_t{2}, std::size_t{8}}) {
    for (const Workload w :
         {Workload::spmv_plus, Workload::spmv_min, Workload::spmv_max}) {
      DiffOptions opt;
      opt.base_seed = 2026;
      opt.points = 4;
      opt.force_batch = batch;
      opt.force_workload = w;
      const std::optional<CaseResult> failure = check::run_lattice(opt);
      EXPECT_FALSE(failure.has_value())
          << "batch " << batch << " workload " << workload_name(w) << ": "
          << failure->report.summary();
    }
  }
}

// Fault injection must still be detected when the lattice point itself draws
// a batch > 1: the scalar override path takes precedence (the hook wraps the
// scalar spmv signature), so the self-test keeps proving the oracle bites.
TEST(SeedStability, InjectedFaultDetectedWithForcedBatch) {
  DiffOptions opt;
  opt.base_seed = 2026;
  opt.force_workload = Workload::spmv_plus;
  opt.force_batch = 8;
  opt.engine_override = check::drop_merge_fault();
  const std::optional<CaseResult> failure = find_faulting_point(opt);
  ASSERT_TRUE(failure.has_value())
      << "no lattice point produced a flipped block";
  EXPECT_FALSE(failure->report.ok);
}

// The binned sparse path's fault hook: armed on a web graph forced binned,
// the dropped staged line must surface as a sparse-destination divergence
// under the plus semiring, and the report must say drops were applied.
TEST(Oracle, BinDropFaultIsDetected) {
  const Graph g = testing::small_web(1u << 8);
  ThreadPool pool(2);
  IhtlConfig cfg;
  cfg.push_policy = PushPolicy::binned;
  OracleOptions opt;
  opt.workload = Workload::spmv_plus;
  opt.inject_bin_drop = true;
  const OracleReport rep = check::run_oracle(pool, g, cfg, opt);
  ASSERT_GT(rep.bin_drops_applied, 0u)
      << "case never resolved to the binned sparse path";
  ASSERT_FALSE(rep.ok);
  EXPECT_EQ(rep.kind, "value");
  ASSERT_TRUE(rep.first.has_value());
  // Dropped slots feed sparse (non-hub) destinations only.
  EXPECT_NE(rep.first->cls, VertexClass::hub);
}

// Same fault through the sharded engine and through the batched path: the
// drop must land (and be detected) on both axes.
TEST(Oracle, BinDropFaultDetectedShardedAndBatched) {
  const Graph g = testing::small_web(1u << 8);
  ThreadPool pool(2);
  IhtlConfig cfg;
  cfg.push_policy = PushPolicy::binned;
  {
    OracleOptions opt;
    opt.workload = Workload::spmv_plus;
    opt.inject_bin_drop = true;
    opt.shards = 2;
    const OracleReport rep = check::run_oracle(pool, g, cfg, opt);
    ASSERT_GT(rep.bin_drops_applied, 0u);
    EXPECT_FALSE(rep.ok) << rep.summary();
  }
  {
    OracleOptions opt;
    opt.workload = Workload::spmv_plus;
    opt.inject_bin_drop = true;
    opt.batch = 4;
    const OracleReport rep = check::run_oracle(pool, g, cfg, opt);
    ASSERT_GT(rep.bin_drops_applied, 0u);
    EXPECT_FALSE(rep.ok) << rep.summary();
  }
}

// run_point's fault-missed contract: with the drop armed across the lattice,
// every point either reports a real divergence, never resolved binned (0
// drops), or — the bug this guards against — would be flipped to a
// "fault-missed" failure. At least one pinned point must actually arm.
TEST(Oracle, BinDropLatticeSelfTest) {
  DiffOptions opt;
  opt.base_seed = 2026;
  opt.force_workload = Workload::spmv_plus;
  opt.force_push_policy = PushPolicy::binned;
  opt.inject_bin_drop = true;
  bool any_armed = false;
  for (std::size_t i = 0; i < 16; ++i) {
    const CaseResult r =
        check::run_point(check::point_seed(opt.base_seed, i), opt);
    if (r.report.bin_drops_applied > 0) {
      any_armed = true;
      EXPECT_FALSE(r.report.ok)
          << "drops applied but no divergence: " << r.params.describe();
      EXPECT_NE(r.report.kind, "fault-missed") << r.params.describe();
    }
  }
  EXPECT_TRUE(any_armed) << "no pinned point resolved to the binned path";
}

TEST(Telemetry, CheckCountersGrow) {
  auto& reg = telemetry::MetricsRegistry::global();
  const std::uint64_t points0 = reg.counter_total("check/points_run");
  const std::uint64_t mism0 = reg.counter_total("check/mismatches");
  const std::uint64_t steps0 = reg.counter_total("check/minimize_steps");

  DiffOptions opt;
  opt.base_seed = 2026;
  opt.force_workload = Workload::spmv_plus;
  opt.engine_override = check::drop_merge_fault();
  const std::optional<CaseResult> failure = find_faulting_point(opt);
  ASSERT_TRUE(failure.has_value());
  check::minimize_case(*failure, opt);

  EXPECT_GT(reg.counter_total("check/points_run"), points0);
  EXPECT_GT(reg.counter_total("check/mismatches"), mism0);
  EXPECT_GT(reg.counter_total("check/minimize_steps"), steps0);
}

}  // namespace
}  // namespace ihtl
