#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cachesim/cache.h"
#include "core/ihtl_spmv.h"
#include "parallel/parallel_for.h"
#include "parallel/thread_pool.h"
#include "telemetry/event_log.h"
#include "telemetry/exposition.h"
#include "telemetry/histogram.h"
#include "telemetry/json.h"
#include "telemetry/metrics.h"
#include "telemetry/report.h"
#include "telemetry/trace.h"
#include "test_util.h"

namespace ihtl {
namespace {

using telemetry::Counter;
using telemetry::JsonValue;
using telemetry::MetricsRegistry;
using telemetry::ScopedSpan;
using telemetry::TimerStat;

// -------------------------------------------------------------------- JSON

TEST(Json, BuildAndDumpPrimitives) {
  JsonValue doc = JsonValue::object();
  doc.set("flag", true);
  doc.set("count", std::uint64_t{42});
  doc.set("ratio", 0.25);
  doc.set("name", "ihtl");
  doc.set("missing", JsonValue());
  const std::string text = doc.dump(0);
  EXPECT_NE(text.find("\"flag\":true"), std::string::npos);
  EXPECT_NE(text.find("\"count\":42"), std::string::npos);
  EXPECT_NE(text.find("\"ratio\":0.25"), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"ihtl\""), std::string::npos);
  EXPECT_NE(text.find("\"missing\":null"), std::string::npos);
}

TEST(Json, ObjectKeepsInsertionOrder) {
  JsonValue doc = JsonValue::object();
  doc.set("zebra", 1);
  doc.set("alpha", 2);
  const std::string text = doc.dump(0);
  EXPECT_LT(text.find("zebra"), text.find("alpha"));
}

TEST(Json, SetOverwritesExistingKey) {
  JsonValue doc = JsonValue::object();
  doc.set("k", 1);
  doc.set("k", 2);
  ASSERT_EQ(doc.entries().size(), 1u);
  EXPECT_DOUBLE_EQ(doc.find("k")->as_number(), 2.0);
}

TEST(Json, ParseRoundTrip) {
  JsonValue doc = JsonValue::object();
  doc.set("n", std::uint64_t{123456789});
  doc.set("f", 3.5);
  doc.set("s", "a \"quoted\"\nstring\twith\\escapes");
  JsonValue arr = JsonValue::array();
  arr.push_back(1);
  arr.push_back(false);
  arr.push_back(JsonValue());
  doc.set("arr", std::move(arr));
  JsonValue nested = JsonValue::object();
  nested.set("deep", "value");
  doc.set("obj", std::move(nested));

  const JsonValue back = JsonValue::parse(doc.dump());
  EXPECT_DOUBLE_EQ(back.find("n")->as_number(), 123456789.0);
  EXPECT_DOUBLE_EQ(back.find("f")->as_number(), 3.5);
  EXPECT_EQ(back.find("s")->as_string(), "a \"quoted\"\nstring\twith\\escapes");
  ASSERT_EQ(back.find("arr")->items().size(), 3u);
  EXPECT_FALSE(back.find("arr")->items()[1].as_bool());
  EXPECT_TRUE(back.find("arr")->items()[2].is_null());
  EXPECT_EQ(back.find("obj")->find("deep")->as_string(), "value");
}

TEST(Json, ParseUnicodeEscape) {
  // The JSON escape for U+00E9 decodes to the two UTF-8 bytes 0xC3 0xA9.
  const std::string input = std::string("\"\\") + "u00e9A\"";
  const JsonValue v = JsonValue::parse(input);
  EXPECT_EQ(v.as_string(), "\xc3\xa9"
                           "A");
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_THROW(JsonValue::parse("{"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("{\"a\":1} extra"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse(""), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("nul"), std::runtime_error);
}

TEST(Json, WrongTypeAccessThrows) {
  const JsonValue v(1.5);
  EXPECT_THROW(v.as_string(), std::runtime_error);
  EXPECT_THROW(v.entries(), std::runtime_error);
  EXPECT_EQ(v.find("k"), nullptr);
}

TEST(Json, IntegersSurviveExactly) {
  // Counter values are uint64 but stored as doubles — exact below 2^53.
  const std::uint64_t big = (std::uint64_t{1} << 53) - 1;
  JsonValue doc = JsonValue::object();
  doc.set("big", big);
  const JsonValue back = JsonValue::parse(doc.dump());
  EXPECT_EQ(static_cast<std::uint64_t>(back.find("big")->as_number()), big);
}

// ----------------------------------------------------------------- Counters

TEST(Metrics, CounterShardingAcrossThreads) {
  MetricsRegistry reg(4);
  Counter c = reg.counter("work.items");
  ThreadPool pool(4);
  parallel_for(pool, 0, 10000,
               [&](std::uint64_t, std::size_t tid) { c.inc(tid); });
  EXPECT_EQ(c.total(), 10000u);
  EXPECT_EQ(reg.counter_total("work.items"), 10000u);
}

TEST(Metrics, CounterTotalsDeterministicAcrossRuns) {
  // Sharded counters must sum to the same total regardless of which worker
  // claimed which chunk.
  for (const std::size_t threads : {1u, 2u, 4u}) {
    MetricsRegistry reg(threads);
    Counter c = reg.counter("det");
    ThreadPool pool(threads);
    for (int rep = 0; rep < 3; ++rep) {
      parallel_for(pool, 0, 4321,
                   [&](std::uint64_t, std::size_t tid) { c.inc(tid); });
    }
    EXPECT_EQ(c.total(), 3u * 4321u) << threads << " threads";
  }
}

TEST(Metrics, CounterTidBeyondShardCountFolds) {
  MetricsRegistry reg(2);
  Counter c = reg.counter("folded");
  c.add(0, 1);
  c.add(7, 2);   // folds onto shard 1
  c.add(98, 4);  // folds onto shard 0
  EXPECT_EQ(c.total(), 7u);
}

TEST(Metrics, DefaultConstructedHandlesAreInert) {
  Counter c;
  TimerStat t;
  c.inc(0);
  c.add(3, 100);
  t.record_seconds(1.0);
  EXPECT_EQ(c.total(), 0u);
}

TEST(Metrics, HandleSurvivesClear) {
  MetricsRegistry reg(2);
  Counter c = reg.counter("persist");
  c.add(0, 5);
  reg.clear();
  EXPECT_EQ(c.total(), 0u);
  c.add(1, 3);
  EXPECT_EQ(reg.counter_total("persist"), 3u);
}

// ------------------------------------------------------------------- Timers

TEST(Metrics, TimerStatAggregatesMinMaxCount) {
  MetricsRegistry reg(1);
  TimerStat t = reg.timer("phase");
  t.record_ns(2000);
  t.record_ns(500);
  t.record_ns(1000);
  const auto stats = reg.span("phase");
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->count, 3u);
  EXPECT_NEAR(stats->total_s, 3.5e-6, 1e-12);
  EXPECT_NEAR(stats->min_s, 5e-7, 1e-12);
  EXPECT_NEAR(stats->max_s, 2e-6, 1e-12);
  EXPECT_NEAR(stats->avg_s(), 3.5e-6 / 3, 1e-12);
}

TEST(Metrics, SpanAbsentReturnsNullopt) {
  MetricsRegistry reg(1);
  EXPECT_FALSE(reg.span("nope").has_value());
  EXPECT_FALSE(reg.gauge("nope").has_value());
  EXPECT_EQ(reg.counter_total("nope"), 0u);
}

// -------------------------------------------------------------- ScopedSpan

TEST(Metrics, ScopedSpanNestingBuildsPaths) {
  MetricsRegistry reg(1);
  {
    ScopedSpan outer(reg, "spmv");
    {
      ScopedSpan inner(reg, "push");
    }
    {
      ScopedSpan inner(reg, "merge");
    }
  }
  const auto spans = reg.spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_TRUE(spans.count("spmv"));
  EXPECT_TRUE(spans.count("spmv/push"));
  EXPECT_TRUE(spans.count("spmv/merge"));
  EXPECT_EQ(spans.at("spmv").count, 1u);
}

TEST(Metrics, ScopedSpanStopIsIdempotent) {
  MetricsRegistry reg(1);
  ScopedSpan span(reg, "once");
  const double first = span.stop();
  EXPECT_GE(first, 0.0);
  EXPECT_EQ(span.stop(), 0.0);
  EXPECT_EQ(reg.span("once")->count, 1u);
}

TEST(Metrics, ScopedSpanNullRegistryStillNests) {
  MetricsRegistry reg(1);
  {
    ScopedSpan silent(nullptr, "ghost");
    ScopedSpan real(reg, "child");
  }
  // The null-registry parent contributes to the path but records nothing.
  EXPECT_TRUE(reg.span("ghost/child").has_value());
  EXPECT_FALSE(reg.span("ghost").has_value());
}

// ------------------------------------------------------------------ Gauges

TEST(Metrics, GaugesSetAndSnapshot) {
  MetricsRegistry reg(1);
  reg.set_gauge("threads", 4.0);
  reg.set_gauge("threads", 8.0);  // overwrite
  EXPECT_DOUBLE_EQ(reg.gauge("threads").value(), 8.0);
  EXPECT_EQ(reg.gauges().size(), 1u);
}

// ------------------------------------------------------- subsystem exports

TEST(Metrics, ThreadPoolExportsChunkAndStealCounters) {
  MetricsRegistry reg(4);
  ThreadPool pool(2);
  pool.reset_stats();
  parallel_for(pool, 0, 1000, [](std::uint64_t, std::size_t) {});
  pool.export_metrics(reg, "pool");
  EXPECT_GE(reg.counter_total("pool.jobs"), 1u);
  EXPECT_GE(reg.counter_total("pool.chunks"), 1u);
  EXPECT_DOUBLE_EQ(reg.gauge("pool.threads").value(), 2.0);
  EXPECT_GE(reg.gauge("pool.imbalance").value(), 1.0);
  // Per-worker counters exist for every worker.
  std::uint64_t per_worker = 0;
  for (std::size_t t = 0; t < pool.size(); ++t) {
    per_worker += reg.counter_total("pool.worker" + std::to_string(t) +
                                    ".chunks");
  }
  EXPECT_EQ(per_worker, reg.counter_total("pool.chunks"));
}

TEST(Metrics, CacheHierarchyExportsPerLevelCounters) {
  MetricsRegistry reg(1);
  CacheHierarchy caches = CacheHierarchy::tiny();
  for (std::uint64_t i = 0; i < 256; ++i) caches.access(i * 64);
  caches.export_metrics(reg, "sim");
  EXPECT_EQ(reg.counter_total("sim.accesses"), 256u);
  EXPECT_EQ(reg.counter_total("sim.l1.accesses"), 256u);
  EXPECT_GE(reg.counter_total("sim.l1.misses"), 1u);
  EXPECT_EQ(reg.counter_total("sim.memory_accesses"),
            caches.memory_accesses());
  ASSERT_TRUE(reg.gauge("sim.l1.miss_rate").has_value());
  EXPECT_NEAR(reg.gauge("sim.l1.miss_rate").value(),
              caches.level(0).miss_rate(), 1e-12);
}

TEST(Metrics, EngineRecordsIntoCustomRegistry) {
  const Graph g = testing::figure2_graph();
  IhtlConfig cfg;
  cfg.buffer_bytes = 2 * sizeof(value_t);
  cfg.min_hub_in_degree = 3;
  const IhtlGraph ig = build_ihtl_graph(g, cfg);
  ThreadPool pool(2);
  IhtlEngine<PlusMonoid> engine(ig, pool);

  MetricsRegistry reg(4);
  engine.set_metrics(&reg);
  std::vector<value_t> x(g.num_vertices(), 1.0), y(g.num_vertices());
  engine.spmv(x, y);
  engine.spmv(x, y);

  EXPECT_EQ(reg.counter_total("spmv.calls"), 2u);
  for (const char* path : {"spmv", "spmv/reset", "spmv/push", "spmv/merge",
                           "spmv/pull"}) {
    const auto stats = reg.span(path);
    ASSERT_TRUE(stats.has_value()) << path;
    EXPECT_EQ(stats->count, 2u) << path;
  }
  // Detaching makes further calls silent.
  engine.set_metrics(nullptr);
  engine.spmv(x, y);
  EXPECT_EQ(reg.counter_total("spmv.calls"), 2u);
}

// ------------------------------------------------------------------ Report

TEST(Report, SchemaRoundTripsThroughParse) {
  MetricsRegistry reg(2);
  reg.counter("hits").add(0, 7);
  reg.record_span("phase/sub", 0.5);
  reg.set_gauge("ratio", 0.75);

  JsonValue run = JsonValue::object();
  run.set("tool", "test");
  JsonValue graph = JsonValue::object();
  graph.set("vertices", std::uint64_t{8});
  JsonValue config = JsonValue::object();
  config.set("buffer_bytes", std::uint64_t{1024});

  const JsonValue report = telemetry::make_report(
      reg, std::move(run), std::move(graph), std::move(config));
  const JsonValue back = JsonValue::parse(report.dump());

  EXPECT_EQ(back.find("run")->find("tool")->as_string(), "test");
  EXPECT_DOUBLE_EQ(back.find("graph")->find("vertices")->as_number(), 8.0);
  EXPECT_DOUBLE_EQ(back.find("config")->find("buffer_bytes")->as_number(),
                   1024.0);
  EXPECT_DOUBLE_EQ(back.find("counters")->find("hits")->as_number(), 7.0);
  EXPECT_DOUBLE_EQ(back.find("gauges")->find("ratio")->as_number(), 0.75);
  const JsonValue* span = back.find("spans")->find("phase/sub");
  ASSERT_NE(span, nullptr);
  EXPECT_DOUBLE_EQ(span->find("count")->as_number(), 1.0);
  EXPECT_NEAR(span->find("total_s")->as_number(), 0.5, 1e-9);
  EXPECT_NEAR(span->find("avg_s")->as_number(), 0.5, 1e-9);
  EXPECT_NEAR(span->find("min_s")->as_number(), 0.5, 1e-9);
  EXPECT_NEAR(span->find("max_s")->as_number(), 0.5, 1e-9);
}

TEST(Report, WriteJsonFileRoundTrip) {
  MetricsRegistry reg(1);
  reg.add("n", 3);
  const std::string path = ::testing::TempDir() + "/telemetry_report.json";
  telemetry::write_json_file(telemetry::metrics_to_json(reg), path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const JsonValue back = JsonValue::parse(ss.str());
  EXPECT_DOUBLE_EQ(back.find("counters")->find("n")->as_number(), 3.0);
  std::remove(path.c_str());
}

TEST(Report, WriteJsonFileThrowsOnBadPath) {
  EXPECT_THROW(telemetry::write_json_file(JsonValue::object(),
                                          "/no/such/dir/report.json"),
               std::runtime_error);
}

TEST(Report, ZeroSpanReportIsValidJson) {
  // A server's periodic metrics dump can fire before any request completed
  // a span; the writer must still emit a parseable document with every
  // section present (empty objects, not missing keys or bare commas).
  MetricsRegistry reg(1);
  const JsonValue report = telemetry::make_report(
      reg, JsonValue::object(), JsonValue(), JsonValue());
  const JsonValue back = JsonValue::parse(report.dump());
  for (const char* key : {"spans", "counters", "gauges"}) {
    const JsonValue* section = back.find(key);
    ASSERT_NE(section, nullptr) << key;
    EXPECT_TRUE(section->is_object()) << key;
    EXPECT_TRUE(section->entries().empty()) << key;
  }

  const std::string path = ::testing::TempDir() + "/telemetry_empty.json";
  telemetry::write_json_file(report, path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_NO_THROW(JsonValue::parse(ss.str()));
  std::remove(path.c_str());
}

TEST(Report, WriteJsonFileIsAtomicNoTempFileLeftBehind) {
  // The periodic dump rewrites the same path while readers may be mid-read;
  // the writer goes through <path>.tmp + rename, and must not leave the
  // temporary behind on success.
  MetricsRegistry reg(1);
  reg.add("n", 1);
  const std::string path = ::testing::TempDir() + "/telemetry_atomic.json";
  telemetry::write_json_file(telemetry::metrics_to_json(reg), path);
  reg.add("n", 1);
  telemetry::write_json_file(telemetry::metrics_to_json(reg), path);
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const JsonValue back = JsonValue::parse(ss.str());
  EXPECT_DOUBLE_EQ(back.find("counters")->find("n")->as_number(), 2.0);
  std::remove(path.c_str());
}

// --------------------------------------------------------------- Histogram

TEST(LatencyHistogram, EmptyReportsZero) {
  telemetry::LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile_us(50), 0.0);
  EXPECT_DOUBLE_EQ(h.max_us(), 0.0);
}

TEST(LatencyHistogram, PercentilesAreBucketAccurate) {
  telemetry::LatencyHistogram h;
  // 90 samples near 1us, 10 near 1ms: p50 lands in the 1us decade, p99 in
  // the 1ms decade. The log2-bucket estimate is within ~1.4x.
  for (int i = 0; i < 90; ++i) h.record_ns(1'000);
  for (int i = 0; i < 10; ++i) h.record_ns(1'000'000);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_GT(h.percentile_us(50), 0.5);
  EXPECT_LT(h.percentile_us(50), 2.0);
  EXPECT_GT(h.percentile_us(99), 500.0);
  EXPECT_LT(h.percentile_us(99), 2000.0);
  EXPECT_DOUBLE_EQ(h.max_us(), 1000.0);  // max is exact, not bucketed
  EXPECT_GE(h.percentile_us(99), h.percentile_us(50));
}

TEST(LatencyHistogram, ExportsGaugesAndResets) {
  telemetry::LatencyHistogram h;
  h.record_seconds(0.002);
  MetricsRegistry reg(1);
  h.export_gauges(reg, "lat");
  const auto gauges = reg.gauges();
  EXPECT_DOUBLE_EQ(gauges.at("lat.count"), 1.0);
  EXPECT_GT(gauges.at("lat.p99_us"), 0.0);
  EXPECT_DOUBLE_EQ(gauges.at("lat.max_us"), 2000.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.max_us(), 0.0);
}

TEST(LatencyHistogram, MergeCombinesBucketsSumAndMax) {
  telemetry::LatencyHistogram a;
  telemetry::LatencyHistogram b;
  for (int i = 0; i < 10; ++i) a.record_ns(1'000);
  for (int i = 0; i < 5; ++i) b.record_ns(1'000'000);
  a.merge(b);
  EXPECT_EQ(a.count(), 15u);
  EXPECT_EQ(a.sum_ns(), 10u * 1'000 + 5u * 1'000'000);
  EXPECT_DOUBLE_EQ(a.max_us(), 1000.0);
  EXPECT_GT(a.percentile_us(99), a.percentile_us(50));
  // b is untouched by the merge.
  EXPECT_EQ(b.count(), 5u);
}

TEST(LatencyHistogram, MergeOfEmptiesStaysZeroEverywhere) {
  telemetry::LatencyHistogram a;
  telemetry::LatencyHistogram b;
  a.merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.sum_ns(), 0u);
  // The whole percentile surface publishes 0 when empty — a scraper must
  // read "no data", never a stale or NaN latency.
  EXPECT_DOUBLE_EQ(a.percentile_us(50), 0.0);
  EXPECT_DOUBLE_EQ(a.percentile_us(90), 0.0);
  EXPECT_DOUBLE_EQ(a.percentile_us(99), 0.0);
  EXPECT_DOUBLE_EQ(a.max_us(), 0.0);
}

TEST(LatencyHistogram, SingleSampleEveryPercentileIsThatSampleExactly) {
  // Failing-before regression (this PR's percentile fix): with one sample
  // the old estimator answered the bucket's geometric midpoint — a
  // one-request histogram reported p50 != the request's own latency, off
  // by up to sqrt(2). One sample now answers sum_ns exactly.
  telemetry::LatencyHistogram h;
  h.record_ns(10'000);  // 10us; bucket midpoint would be ~11.6us
  for (const double p : {0.0, 50.0, 90.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(h.percentile_us(p), 10.0) << "p=" << p;
  }
  EXPECT_DOUBLE_EQ(h.max_us(), 10.0);
}

TEST(LatencyHistogram, TwoEqualSamplesRevertToTheBucketEstimate) {
  // The exact-single-sample answer is a special case: at two samples the
  // estimator is bucketed again, and must stay inside the samples' bucket.
  telemetry::LatencyHistogram h;
  h.record_ns(3'700);
  h.record_ns(3'700);
  const double p50 = h.percentile_us(50);
  EXPECT_GE(p50, 2.048);  // bucket [2048, 4096) ns
  EXPECT_LE(p50, 3.7);    // clamped to the observed max
  EXPECT_DOUBLE_EQ(h.percentile_us(99), p50);
}

TEST(LatencyHistogram, MidpointIsClampedToTheObservedMax) {
  // Two samples low in their bucket: the geometric midpoint (724ns for
  // bucket [512, 1024)) exceeds every recorded sample, so the estimate
  // must clamp to the exact max instead of inventing a larger latency.
  telemetry::LatencyHistogram h;
  h.record_ns(520);
  h.record_ns(530);
  EXPECT_DOUBLE_EQ(h.percentile_us(50), 0.53);
  EXPECT_DOUBLE_EQ(h.percentile_us(99), 0.53);
  EXPECT_DOUBLE_EQ(h.max_us(), 0.53);
}

TEST(LatencyHistogram, BucketBoundarySamplesLandInAdjacentBuckets) {
  // Bucket i holds bit_width(ns) == i, i.e. [2^(i-1), 2^i): 1023 and 1024
  // straddle the bucket-10/11 boundary. Percentiles stay ordered and
  // within the recorded range.
  telemetry::LatencyHistogram h;
  h.record_ns(1'023);
  h.record_ns(1'024);
  EXPECT_EQ(h.bucket_count(10), 1u);
  EXPECT_EQ(h.bucket_count(11), 1u);
  EXPECT_DOUBLE_EQ(telemetry::LatencyHistogram::bucket_upper_us(10), 1.024);
  EXPECT_LE(h.percentile_us(50), h.percentile_us(99));
  EXPECT_LE(h.percentile_us(99), h.max_us());
  EXPECT_GT(h.percentile_us(50), 0.0);
  EXPECT_DOUBLE_EQ(h.max_us(), 1.024);
}

// -------------------------------------------------------------- exposition

TEST(Exposition, SanitizesMetricNames) {
  EXPECT_EQ(telemetry::sanitize_metric_name("serve.cache.hits"),
            "serve_cache_hits");
  EXPECT_EQ(telemetry::sanitize_metric_name("9lives"), "_9lives");
  EXPECT_EQ(telemetry::sanitize_metric_name("a:b_c1"), "a:b_c1");
}

TEST(Exposition, RegistryExpositionValidatesAndCoversAllKinds) {
  MetricsRegistry reg(2);
  Counter c = reg.counter("requests.total");
  c.add(0, 7);
  reg.set_gauge("cache.hit_rate", 0.5);
  { ScopedSpan span(&reg, "compute"); }
  const std::string text = telemetry::registry_exposition(reg, "ihtl");
  std::string error;
  EXPECT_TRUE(telemetry::validate_exposition(text, &error)) << error;
  EXPECT_NE(text.find("ihtl_requests_total 7"), std::string::npos) << text;
  EXPECT_NE(text.find("ihtl_cache_hit_rate 0.5"), std::string::npos) << text;
  EXPECT_NE(text.find("ihtl_compute_seconds_sum"), std::string::npos);
  EXPECT_NE(text.find("ihtl_compute_count 1"), std::string::npos);
}

TEST(Exposition, HistogramBucketsAreCumulativeWithInfAndSum) {
  telemetry::LatencyHistogram h;
  for (int i = 0; i < 4; ++i) h.record_ns(1'000);   // ~1us bucket
  for (int i = 0; i < 2; ++i) h.record_ns(500'000);  // ~0.5ms bucket
  std::string text;
  telemetry::append_histogram_exposition(text, "lat_us", "op=\"ppr\"", h);
  std::string error;
  EXPECT_TRUE(telemetry::validate_exposition(text, &error)) << error;
  EXPECT_NE(text.find("# TYPE lat_us histogram"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\"} 6"), std::string::npos) << text;
  EXPECT_NE(text.find("lat_us_count{op=\"ppr\"} 6"), std::string::npos);
  // Bucket counts never decrease as le grows (cumulative form).
  std::istringstream lines(text);
  std::string line;
  double prev = 0.0;
  while (std::getline(lines, line)) {
    if (line.find("lat_us_bucket") != 0) continue;
    const double n = std::stod(line.substr(line.rfind(' ') + 1));
    EXPECT_GE(n, prev) << text;
    prev = n;
  }
  EXPECT_DOUBLE_EQ(prev, 6.0);
  // _sum is microseconds.
  const std::size_t sum_pos = text.find("lat_us_sum{op=\"ppr\"} ");
  ASSERT_NE(sum_pos, std::string::npos);
  const double sum_us = std::stod(
      text.substr(sum_pos + std::string("lat_us_sum{op=\"ppr\"} ").size()));
  EXPECT_DOUBLE_EQ(sum_us, (4 * 1'000 + 2 * 500'000) * 1e-3);
}

TEST(Exposition, ValidatorFlagsMalformedLines) {
  std::string error;
  EXPECT_TRUE(telemetry::validate_exposition("", &error));
  EXPECT_TRUE(telemetry::validate_exposition("# a comment\nx 1\n", &error));
  EXPECT_FALSE(telemetry::validate_exposition("9bad 1\n", &error));
  EXPECT_FALSE(telemetry::validate_exposition("name_only\n", &error));
  EXPECT_FALSE(telemetry::validate_exposition("name not_a_number\n", &error));
  EXPECT_FALSE(error.empty());
}

// --------------------------------------------------------------- event log

TEST(EventLog, RingRetainsNewestCountsDropsAndKeepsOrder) {
  telemetry::EventLog log(4);
  for (int i = 0; i < 6; ++i) {
    JsonValue f = JsonValue::object();
    f.set("i", static_cast<std::uint64_t>(i));
    log.log(telemetry::LogLevel::info, "tick", std::move(f));
  }
  EXPECT_EQ(log.recorded(), 6u);
  EXPECT_EQ(log.dropped(), 2u);
  EXPECT_EQ(log.count_event("tick"), 4u);
  const JsonValue snap = log.snapshot();
  ASSERT_EQ(snap.items().size(), 4u);
  // Oldest-first, and the two oldest events were overwritten.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(snap.items()[i].find("i")->as_number(),
              static_cast<double>(i + 2));
    EXPECT_EQ(snap.items()[i].find("event")->as_string(), "tick");
    EXPECT_GT(snap.items()[i].find("ts_ms")->as_number(), 0.0);
  }
}

TEST(EventLog, MinLevelFiltersAndSinkGetsJsonLines) {
  const std::string path = "test_event_log_sink.jsonl";
  std::remove(path.c_str());
  {
    telemetry::EventLog log(8);
    ASSERT_TRUE(log.open_sink(path));
    log.set_min_level(telemetry::LogLevel::warn);
    log.log(telemetry::LogLevel::debug, "ignored");
    log.log(telemetry::LogLevel::info, "ignored");
    JsonValue f = JsonValue::object();
    f.set("total_us", 1234.5);
    log.log(telemetry::LogLevel::warn, "slow_request", std::move(f));
    EXPECT_EQ(log.recorded(), 1u);
    EXPECT_EQ(log.count_event("ignored"), 0u);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    const JsonValue parsed = JsonValue::parse(line);
    EXPECT_EQ(parsed.find("event")->as_string(), "slow_request");
    EXPECT_EQ(parsed.find("level")->as_string(), "warn");
    EXPECT_DOUBLE_EQ(parsed.find("total_us")->as_number(), 1234.5);
  }
  EXPECT_EQ(lines, 1u);
  std::remove(path.c_str());
}

// ------------------------------------------------------------- trace flows

TEST(Trace, FlowMarksExportAsConnectedChromeFlowEvents) {
  telemetry::TraceBuffer buffer(2, 64);
  telemetry::TraceBuffer* prev = telemetry::TraceBuffer::set_active(&buffer);
  telemetry::flow_mark(telemetry::TraceEventKind::flow_begin, 42);
  telemetry::flow_mark(telemetry::TraceEventKind::flow_step, 42);
  telemetry::flow_mark(telemetry::TraceEventKind::flow_end, 42);
  telemetry::flow_mark(telemetry::TraceEventKind::flow_step, 0);  // no-op
  telemetry::TraceBuffer::set_active(prev);
  EXPECT_EQ(buffer.recorded(), 3u);

  const JsonValue doc = buffer.to_chrome_trace();
  std::size_t begins = 0, steps = 0, ends = 0;
  for (const JsonValue& ev : doc.find("traceEvents")->items()) {
    if (ev.find("cat")->as_string() != "flow") continue;
    const std::string ph = ev.find("ph")->as_string();
    EXPECT_EQ(ev.find("id")->as_number(), 42.0);
    EXPECT_EQ(ev.find("name")->as_string(), "request");
    EXPECT_EQ(ev.find("args")->find("request")->as_number(), 42.0);
    if (ph == "s") ++begins;
    if (ph == "t") ++steps;
    if (ph == "f") {
      ++ends;
      // The finish binds to its enclosing slice, not the next one.
      EXPECT_EQ(ev.find("bp")->as_string(), "e");
    }
  }
  EXPECT_EQ(begins, 1u);
  EXPECT_EQ(steps, 1u);
  EXPECT_EQ(ends, 1u);
}

TEST(Trace, PoolWorkersStampFlowStepsWhenAFlowIsActive) {
  telemetry::TraceBuffer buffer(8, 256);
  telemetry::TraceBuffer* prev = telemetry::TraceBuffer::set_active(&buffer);
  ThreadPool pool(2);
  telemetry::set_active_flow(9);
  pool.run([](std::size_t) {});
  telemetry::set_active_flow(0);
  const std::uint64_t with_flow = buffer.recorded();
  pool.run([](std::size_t) {});  // no active flow: no extra flow marks
  telemetry::TraceBuffer::set_active(prev);
  EXPECT_GE(with_flow, 2u);  // one flow_step per worker
  EXPECT_EQ(buffer.recorded(), with_flow);

  const JsonValue doc = buffer.to_chrome_trace();
  std::size_t flow_steps = 0;
  for (const JsonValue& ev : doc.find("traceEvents")->items()) {
    if (ev.find("cat")->as_string() == "flow" &&
        ev.find("ph")->as_string() == "t") {
      EXPECT_EQ(ev.find("id")->as_number(), 9.0);
      ++flow_steps;
    }
  }
  EXPECT_EQ(flow_steps, with_flow);
}

}  // namespace
}  // namespace ihtl
