#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cachesim/cache.h"
#include "core/ihtl_spmv.h"
#include "parallel/parallel_for.h"
#include "parallel/thread_pool.h"
#include "telemetry/histogram.h"
#include "telemetry/json.h"
#include "telemetry/metrics.h"
#include "telemetry/report.h"
#include "test_util.h"

namespace ihtl {
namespace {

using telemetry::Counter;
using telemetry::JsonValue;
using telemetry::MetricsRegistry;
using telemetry::ScopedSpan;
using telemetry::TimerStat;

// -------------------------------------------------------------------- JSON

TEST(Json, BuildAndDumpPrimitives) {
  JsonValue doc = JsonValue::object();
  doc.set("flag", true);
  doc.set("count", std::uint64_t{42});
  doc.set("ratio", 0.25);
  doc.set("name", "ihtl");
  doc.set("missing", JsonValue());
  const std::string text = doc.dump(0);
  EXPECT_NE(text.find("\"flag\":true"), std::string::npos);
  EXPECT_NE(text.find("\"count\":42"), std::string::npos);
  EXPECT_NE(text.find("\"ratio\":0.25"), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"ihtl\""), std::string::npos);
  EXPECT_NE(text.find("\"missing\":null"), std::string::npos);
}

TEST(Json, ObjectKeepsInsertionOrder) {
  JsonValue doc = JsonValue::object();
  doc.set("zebra", 1);
  doc.set("alpha", 2);
  const std::string text = doc.dump(0);
  EXPECT_LT(text.find("zebra"), text.find("alpha"));
}

TEST(Json, SetOverwritesExistingKey) {
  JsonValue doc = JsonValue::object();
  doc.set("k", 1);
  doc.set("k", 2);
  ASSERT_EQ(doc.entries().size(), 1u);
  EXPECT_DOUBLE_EQ(doc.find("k")->as_number(), 2.0);
}

TEST(Json, ParseRoundTrip) {
  JsonValue doc = JsonValue::object();
  doc.set("n", std::uint64_t{123456789});
  doc.set("f", 3.5);
  doc.set("s", "a \"quoted\"\nstring\twith\\escapes");
  JsonValue arr = JsonValue::array();
  arr.push_back(1);
  arr.push_back(false);
  arr.push_back(JsonValue());
  doc.set("arr", std::move(arr));
  JsonValue nested = JsonValue::object();
  nested.set("deep", "value");
  doc.set("obj", std::move(nested));

  const JsonValue back = JsonValue::parse(doc.dump());
  EXPECT_DOUBLE_EQ(back.find("n")->as_number(), 123456789.0);
  EXPECT_DOUBLE_EQ(back.find("f")->as_number(), 3.5);
  EXPECT_EQ(back.find("s")->as_string(), "a \"quoted\"\nstring\twith\\escapes");
  ASSERT_EQ(back.find("arr")->items().size(), 3u);
  EXPECT_FALSE(back.find("arr")->items()[1].as_bool());
  EXPECT_TRUE(back.find("arr")->items()[2].is_null());
  EXPECT_EQ(back.find("obj")->find("deep")->as_string(), "value");
}

TEST(Json, ParseUnicodeEscape) {
  // The JSON escape for U+00E9 decodes to the two UTF-8 bytes 0xC3 0xA9.
  const std::string input = std::string("\"\\") + "u00e9A\"";
  const JsonValue v = JsonValue::parse(input);
  EXPECT_EQ(v.as_string(), "\xc3\xa9"
                           "A");
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_THROW(JsonValue::parse("{"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("{\"a\":1} extra"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse(""), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("nul"), std::runtime_error);
}

TEST(Json, WrongTypeAccessThrows) {
  const JsonValue v(1.5);
  EXPECT_THROW(v.as_string(), std::runtime_error);
  EXPECT_THROW(v.entries(), std::runtime_error);
  EXPECT_EQ(v.find("k"), nullptr);
}

TEST(Json, IntegersSurviveExactly) {
  // Counter values are uint64 but stored as doubles — exact below 2^53.
  const std::uint64_t big = (std::uint64_t{1} << 53) - 1;
  JsonValue doc = JsonValue::object();
  doc.set("big", big);
  const JsonValue back = JsonValue::parse(doc.dump());
  EXPECT_EQ(static_cast<std::uint64_t>(back.find("big")->as_number()), big);
}

// ----------------------------------------------------------------- Counters

TEST(Metrics, CounterShardingAcrossThreads) {
  MetricsRegistry reg(4);
  Counter c = reg.counter("work.items");
  ThreadPool pool(4);
  parallel_for(pool, 0, 10000,
               [&](std::uint64_t, std::size_t tid) { c.inc(tid); });
  EXPECT_EQ(c.total(), 10000u);
  EXPECT_EQ(reg.counter_total("work.items"), 10000u);
}

TEST(Metrics, CounterTotalsDeterministicAcrossRuns) {
  // Sharded counters must sum to the same total regardless of which worker
  // claimed which chunk.
  for (const std::size_t threads : {1u, 2u, 4u}) {
    MetricsRegistry reg(threads);
    Counter c = reg.counter("det");
    ThreadPool pool(threads);
    for (int rep = 0; rep < 3; ++rep) {
      parallel_for(pool, 0, 4321,
                   [&](std::uint64_t, std::size_t tid) { c.inc(tid); });
    }
    EXPECT_EQ(c.total(), 3u * 4321u) << threads << " threads";
  }
}

TEST(Metrics, CounterTidBeyondShardCountFolds) {
  MetricsRegistry reg(2);
  Counter c = reg.counter("folded");
  c.add(0, 1);
  c.add(7, 2);   // folds onto shard 1
  c.add(98, 4);  // folds onto shard 0
  EXPECT_EQ(c.total(), 7u);
}

TEST(Metrics, DefaultConstructedHandlesAreInert) {
  Counter c;
  TimerStat t;
  c.inc(0);
  c.add(3, 100);
  t.record_seconds(1.0);
  EXPECT_EQ(c.total(), 0u);
}

TEST(Metrics, HandleSurvivesClear) {
  MetricsRegistry reg(2);
  Counter c = reg.counter("persist");
  c.add(0, 5);
  reg.clear();
  EXPECT_EQ(c.total(), 0u);
  c.add(1, 3);
  EXPECT_EQ(reg.counter_total("persist"), 3u);
}

// ------------------------------------------------------------------- Timers

TEST(Metrics, TimerStatAggregatesMinMaxCount) {
  MetricsRegistry reg(1);
  TimerStat t = reg.timer("phase");
  t.record_ns(2000);
  t.record_ns(500);
  t.record_ns(1000);
  const auto stats = reg.span("phase");
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->count, 3u);
  EXPECT_NEAR(stats->total_s, 3.5e-6, 1e-12);
  EXPECT_NEAR(stats->min_s, 5e-7, 1e-12);
  EXPECT_NEAR(stats->max_s, 2e-6, 1e-12);
  EXPECT_NEAR(stats->avg_s(), 3.5e-6 / 3, 1e-12);
}

TEST(Metrics, SpanAbsentReturnsNullopt) {
  MetricsRegistry reg(1);
  EXPECT_FALSE(reg.span("nope").has_value());
  EXPECT_FALSE(reg.gauge("nope").has_value());
  EXPECT_EQ(reg.counter_total("nope"), 0u);
}

// -------------------------------------------------------------- ScopedSpan

TEST(Metrics, ScopedSpanNestingBuildsPaths) {
  MetricsRegistry reg(1);
  {
    ScopedSpan outer(reg, "spmv");
    {
      ScopedSpan inner(reg, "push");
    }
    {
      ScopedSpan inner(reg, "merge");
    }
  }
  const auto spans = reg.spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_TRUE(spans.count("spmv"));
  EXPECT_TRUE(spans.count("spmv/push"));
  EXPECT_TRUE(spans.count("spmv/merge"));
  EXPECT_EQ(spans.at("spmv").count, 1u);
}

TEST(Metrics, ScopedSpanStopIsIdempotent) {
  MetricsRegistry reg(1);
  ScopedSpan span(reg, "once");
  const double first = span.stop();
  EXPECT_GE(first, 0.0);
  EXPECT_EQ(span.stop(), 0.0);
  EXPECT_EQ(reg.span("once")->count, 1u);
}

TEST(Metrics, ScopedSpanNullRegistryStillNests) {
  MetricsRegistry reg(1);
  {
    ScopedSpan silent(nullptr, "ghost");
    ScopedSpan real(reg, "child");
  }
  // The null-registry parent contributes to the path but records nothing.
  EXPECT_TRUE(reg.span("ghost/child").has_value());
  EXPECT_FALSE(reg.span("ghost").has_value());
}

// ------------------------------------------------------------------ Gauges

TEST(Metrics, GaugesSetAndSnapshot) {
  MetricsRegistry reg(1);
  reg.set_gauge("threads", 4.0);
  reg.set_gauge("threads", 8.0);  // overwrite
  EXPECT_DOUBLE_EQ(reg.gauge("threads").value(), 8.0);
  EXPECT_EQ(reg.gauges().size(), 1u);
}

// ------------------------------------------------------- subsystem exports

TEST(Metrics, ThreadPoolExportsChunkAndStealCounters) {
  MetricsRegistry reg(4);
  ThreadPool pool(2);
  pool.reset_stats();
  parallel_for(pool, 0, 1000, [](std::uint64_t, std::size_t) {});
  pool.export_metrics(reg, "pool");
  EXPECT_GE(reg.counter_total("pool.jobs"), 1u);
  EXPECT_GE(reg.counter_total("pool.chunks"), 1u);
  EXPECT_DOUBLE_EQ(reg.gauge("pool.threads").value(), 2.0);
  EXPECT_GE(reg.gauge("pool.imbalance").value(), 1.0);
  // Per-worker counters exist for every worker.
  std::uint64_t per_worker = 0;
  for (std::size_t t = 0; t < pool.size(); ++t) {
    per_worker += reg.counter_total("pool.worker" + std::to_string(t) +
                                    ".chunks");
  }
  EXPECT_EQ(per_worker, reg.counter_total("pool.chunks"));
}

TEST(Metrics, CacheHierarchyExportsPerLevelCounters) {
  MetricsRegistry reg(1);
  CacheHierarchy caches = CacheHierarchy::tiny();
  for (std::uint64_t i = 0; i < 256; ++i) caches.access(i * 64);
  caches.export_metrics(reg, "sim");
  EXPECT_EQ(reg.counter_total("sim.accesses"), 256u);
  EXPECT_EQ(reg.counter_total("sim.l1.accesses"), 256u);
  EXPECT_GE(reg.counter_total("sim.l1.misses"), 1u);
  EXPECT_EQ(reg.counter_total("sim.memory_accesses"),
            caches.memory_accesses());
  ASSERT_TRUE(reg.gauge("sim.l1.miss_rate").has_value());
  EXPECT_NEAR(reg.gauge("sim.l1.miss_rate").value(),
              caches.level(0).miss_rate(), 1e-12);
}

TEST(Metrics, EngineRecordsIntoCustomRegistry) {
  const Graph g = testing::figure2_graph();
  IhtlConfig cfg;
  cfg.buffer_bytes = 2 * sizeof(value_t);
  cfg.min_hub_in_degree = 3;
  const IhtlGraph ig = build_ihtl_graph(g, cfg);
  ThreadPool pool(2);
  IhtlEngine<PlusMonoid> engine(ig, pool);

  MetricsRegistry reg(4);
  engine.set_metrics(&reg);
  std::vector<value_t> x(g.num_vertices(), 1.0), y(g.num_vertices());
  engine.spmv(x, y);
  engine.spmv(x, y);

  EXPECT_EQ(reg.counter_total("spmv.calls"), 2u);
  for (const char* path : {"spmv", "spmv/reset", "spmv/push", "spmv/merge",
                           "spmv/pull"}) {
    const auto stats = reg.span(path);
    ASSERT_TRUE(stats.has_value()) << path;
    EXPECT_EQ(stats->count, 2u) << path;
  }
  // Detaching makes further calls silent.
  engine.set_metrics(nullptr);
  engine.spmv(x, y);
  EXPECT_EQ(reg.counter_total("spmv.calls"), 2u);
}

// ------------------------------------------------------------------ Report

TEST(Report, SchemaRoundTripsThroughParse) {
  MetricsRegistry reg(2);
  reg.counter("hits").add(0, 7);
  reg.record_span("phase/sub", 0.5);
  reg.set_gauge("ratio", 0.75);

  JsonValue run = JsonValue::object();
  run.set("tool", "test");
  JsonValue graph = JsonValue::object();
  graph.set("vertices", std::uint64_t{8});
  JsonValue config = JsonValue::object();
  config.set("buffer_bytes", std::uint64_t{1024});

  const JsonValue report = telemetry::make_report(
      reg, std::move(run), std::move(graph), std::move(config));
  const JsonValue back = JsonValue::parse(report.dump());

  EXPECT_EQ(back.find("run")->find("tool")->as_string(), "test");
  EXPECT_DOUBLE_EQ(back.find("graph")->find("vertices")->as_number(), 8.0);
  EXPECT_DOUBLE_EQ(back.find("config")->find("buffer_bytes")->as_number(),
                   1024.0);
  EXPECT_DOUBLE_EQ(back.find("counters")->find("hits")->as_number(), 7.0);
  EXPECT_DOUBLE_EQ(back.find("gauges")->find("ratio")->as_number(), 0.75);
  const JsonValue* span = back.find("spans")->find("phase/sub");
  ASSERT_NE(span, nullptr);
  EXPECT_DOUBLE_EQ(span->find("count")->as_number(), 1.0);
  EXPECT_NEAR(span->find("total_s")->as_number(), 0.5, 1e-9);
  EXPECT_NEAR(span->find("avg_s")->as_number(), 0.5, 1e-9);
  EXPECT_NEAR(span->find("min_s")->as_number(), 0.5, 1e-9);
  EXPECT_NEAR(span->find("max_s")->as_number(), 0.5, 1e-9);
}

TEST(Report, WriteJsonFileRoundTrip) {
  MetricsRegistry reg(1);
  reg.add("n", 3);
  const std::string path = ::testing::TempDir() + "/telemetry_report.json";
  telemetry::write_json_file(telemetry::metrics_to_json(reg), path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const JsonValue back = JsonValue::parse(ss.str());
  EXPECT_DOUBLE_EQ(back.find("counters")->find("n")->as_number(), 3.0);
  std::remove(path.c_str());
}

TEST(Report, WriteJsonFileThrowsOnBadPath) {
  EXPECT_THROW(telemetry::write_json_file(JsonValue::object(),
                                          "/no/such/dir/report.json"),
               std::runtime_error);
}

TEST(Report, ZeroSpanReportIsValidJson) {
  // A server's periodic metrics dump can fire before any request completed
  // a span; the writer must still emit a parseable document with every
  // section present (empty objects, not missing keys or bare commas).
  MetricsRegistry reg(1);
  const JsonValue report = telemetry::make_report(
      reg, JsonValue::object(), JsonValue(), JsonValue());
  const JsonValue back = JsonValue::parse(report.dump());
  for (const char* key : {"spans", "counters", "gauges"}) {
    const JsonValue* section = back.find(key);
    ASSERT_NE(section, nullptr) << key;
    EXPECT_TRUE(section->is_object()) << key;
    EXPECT_TRUE(section->entries().empty()) << key;
  }

  const std::string path = ::testing::TempDir() + "/telemetry_empty.json";
  telemetry::write_json_file(report, path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_NO_THROW(JsonValue::parse(ss.str()));
  std::remove(path.c_str());
}

TEST(Report, WriteJsonFileIsAtomicNoTempFileLeftBehind) {
  // The periodic dump rewrites the same path while readers may be mid-read;
  // the writer goes through <path>.tmp + rename, and must not leave the
  // temporary behind on success.
  MetricsRegistry reg(1);
  reg.add("n", 1);
  const std::string path = ::testing::TempDir() + "/telemetry_atomic.json";
  telemetry::write_json_file(telemetry::metrics_to_json(reg), path);
  reg.add("n", 1);
  telemetry::write_json_file(telemetry::metrics_to_json(reg), path);
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const JsonValue back = JsonValue::parse(ss.str());
  EXPECT_DOUBLE_EQ(back.find("counters")->find("n")->as_number(), 2.0);
  std::remove(path.c_str());
}

// --------------------------------------------------------------- Histogram

TEST(LatencyHistogram, EmptyReportsZero) {
  telemetry::LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile_us(50), 0.0);
  EXPECT_DOUBLE_EQ(h.max_us(), 0.0);
}

TEST(LatencyHistogram, PercentilesAreBucketAccurate) {
  telemetry::LatencyHistogram h;
  // 90 samples near 1us, 10 near 1ms: p50 lands in the 1us decade, p99 in
  // the 1ms decade. The log2-bucket estimate is within ~1.4x.
  for (int i = 0; i < 90; ++i) h.record_ns(1'000);
  for (int i = 0; i < 10; ++i) h.record_ns(1'000'000);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_GT(h.percentile_us(50), 0.5);
  EXPECT_LT(h.percentile_us(50), 2.0);
  EXPECT_GT(h.percentile_us(99), 500.0);
  EXPECT_LT(h.percentile_us(99), 2000.0);
  EXPECT_DOUBLE_EQ(h.max_us(), 1000.0);  // max is exact, not bucketed
  EXPECT_GE(h.percentile_us(99), h.percentile_us(50));
}

TEST(LatencyHistogram, ExportsGaugesAndResets) {
  telemetry::LatencyHistogram h;
  h.record_seconds(0.002);
  MetricsRegistry reg(1);
  h.export_gauges(reg, "lat");
  const auto gauges = reg.gauges();
  EXPECT_DOUBLE_EQ(gauges.at("lat.count"), 1.0);
  EXPECT_GT(gauges.at("lat.p99_us"), 0.0);
  EXPECT_DOUBLE_EQ(gauges.at("lat.max_us"), 2000.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.max_us(), 0.0);
}

}  // namespace
}  // namespace ihtl
