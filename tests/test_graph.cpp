#include <gtest/gtest.h>

#include <algorithm>

#include "graph/graph.h"
#include "graph/permute.h"
#include "graph/stats.h"
#include "test_util.h"

namespace ihtl {
namespace {

using testing::figure2_graph;
using testing::small_rmat;
using testing::small_web;

// -------------------------------------------------------------------- build

TEST(BuildGraph, Figure2HasExpectedShape) {
  const Graph g = figure2_graph();
  EXPECT_EQ(g.num_vertices(), 8u);
  EXPECT_EQ(g.num_edges(), 14u);
  // Paper: vertices 3 and 7 (our 2 and 6) are the in-hubs.
  EXPECT_EQ(g.in_degree(2), 5u);
  EXPECT_EQ(g.in_degree(6), 3u);
  EXPECT_EQ(g.out_degree(5), 4u);
}

TEST(BuildGraph, CsrAndCscAgree) {
  const Graph g = figure2_graph();
  EXPECT_TRUE(g.valid());
  // Every out-edge appears as an in-edge.
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    for (const vid_t t : g.out().neighbors(v)) {
      const auto in_nbrs = g.in().neighbors(t);
      EXPECT_NE(std::find(in_nbrs.begin(), in_nbrs.end(), v), in_nbrs.end());
    }
  }
}

TEST(BuildGraph, EmptyGraph) {
  const Graph g = build_graph(0, {});
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.valid());
}

TEST(BuildGraph, VerticesWithoutEdges) {
  const std::vector<Edge> edges = {{0, 1}};
  const Graph g = build_graph(5, edges);
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.out_degree(4), 0u);
}

TEST(BuildGraph, RemoveSelfLoops) {
  const std::vector<Edge> edges = {{0, 0}, {0, 1}, {1, 1}, {1, 0}};
  const Graph g = build_graph(2, edges, {.remove_self_loops = true});
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(BuildGraph, DedupRemovesParallelEdges) {
  const std::vector<Edge> edges = {{0, 1}, {0, 1}, {0, 1}, {1, 0}};
  const Graph g = build_graph(2, edges, {.dedup = true});
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(BuildGraph, RemoveZeroDegreeCompacts) {
  // Vertices 1 and 3 are isolated.
  const std::vector<Edge> edges = {{0, 2}, {2, 4}};
  const Graph g = build_graph(5, edges, {.remove_zero_degree = true});
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  // Relative order preserved: 0->0, 2->1, 4->2.
  EXPECT_TRUE(g.out().contains(0, 1) || g.out().degree(0) == 1);
  EXPECT_EQ(g.out().neighbors(0)[0], 1u);
  EXPECT_EQ(g.out().neighbors(1)[0], 2u);
}

TEST(BuildGraph, SortNeighborsEnablesContains) {
  const Graph g = figure2_graph(true);
  EXPECT_TRUE(g.has_edge(5, 2));
  EXPECT_FALSE(g.has_edge(2, 2));
  EXPECT_TRUE(g.has_edge(6, 4));
  EXPECT_FALSE(g.has_edge(0, 7));
}

// ---------------------------------------------------------------- transpose

TEST(Transpose, RoundTripsToOriginal) {
  const Graph g = small_rmat(8, 4);
  Adjacency t = transpose(g.out());
  Adjacency tt = transpose(t);
  // transpose(transpose(CSR)) has the same edge multiset; compare sorted.
  Adjacency orig = g.out();
  orig.sort_all_neighbor_lists();
  tt.sort_all_neighbor_lists();
  EXPECT_EQ(orig.offsets, tt.offsets);
  EXPECT_EQ(orig.targets, tt.targets);
}

TEST(Transpose, DegreesSwap) {
  const Graph g = figure2_graph();
  const Adjacency t = transpose(g.out());
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(t.degree(v), g.in_degree(v));
  }
}

// ---------------------------------------------------------------- adjacency

TEST(Adjacency, ValidDetectsBadOffsets) {
  Adjacency adj;
  adj.offsets = {0, 2, 1};  // non-monotone
  adj.targets = {0, 1};
  EXPECT_FALSE(adj.valid());
}

TEST(Adjacency, ValidDetectsOutOfRangeTarget) {
  Adjacency adj;
  adj.offsets = {0, 1, 2};
  adj.targets = {0, 5};  // vertex 5 doesn't exist
  EXPECT_FALSE(adj.valid());
}

TEST(Adjacency, TopologyBytesMatchesLayout) {
  const Graph g = figure2_graph();
  // 9 offsets * 8B + 14 targets * 4B.
  EXPECT_EQ(g.out().topology_bytes(), 9 * 8 + 14 * 4u);
}

// -------------------------------------------------------------------- stats

TEST(Stats, Figure2Stats) {
  const GraphStats s = compute_stats(figure2_graph());
  EXPECT_EQ(s.num_vertices, 8u);
  EXPECT_EQ(s.num_edges, 14u);
  EXPECT_EQ(s.max_in_degree, 5u);
  EXPECT_EQ(s.max_out_degree, 4u);
}

TEST(Stats, RmatIsSkewed) {
  const GraphStats s = compute_stats(small_rmat(12, 8));
  // Top 1% of vertices should hold far more than 1% of edges.
  EXPECT_GT(s.top1pct_in_edge_share, 0.05);
  EXPECT_GT(s.max_in_degree, 8 * 4u);  // well above average degree
}

TEST(Stats, AsymmetricityOfReciprocalPairIsZero) {
  const std::vector<Edge> edges = {{0, 1}, {1, 0}};
  const Graph g = build_graph(2, edges, {.sort_neighbors = true});
  EXPECT_DOUBLE_EQ(asymmetricity(g, 0), 0.0);
  EXPECT_DOUBLE_EQ(asymmetricity(g, 1), 0.0);
}

TEST(Stats, AsymmetricityOfOneWayEdgeIsOne) {
  const std::vector<Edge> edges = {{0, 1}};
  const Graph g = build_graph(2, edges, {.sort_neighbors = true});
  EXPECT_DOUBLE_EQ(asymmetricity(g, 1), 1.0);
  EXPECT_DOUBLE_EQ(asymmetricity(g, 0), 0.0);  // no in-edges -> 0
}

TEST(Stats, AsymmetricityMixed) {
  // v2 has in-neighbours {0,1}; reciprocates only to 0.
  const std::vector<Edge> edges = {{0, 2}, {1, 2}, {2, 0}};
  const Graph g = build_graph(3, edges, {.sort_neighbors = true});
  EXPECT_DOUBLE_EQ(asymmetricity(g, 2), 0.5);
}

TEST(Stats, WebHubsAreAsymmetricSocialHubsAreNot) {
  // Figure 9's contrast, as a property of our generators.
  const Graph web = small_web(1u << 11);
  const Graph social = small_rmat(11, 8);
  const double web_hub_asym =
      mean_asymmetricity_in_degree_range(web, 128, ~eid_t{0});
  const double social_hub_asym =
      mean_asymmetricity_in_degree_range(social, 128, ~eid_t{0});
  EXPECT_GT(web_hub_asym, 0.85);
  EXPECT_LT(social_hub_asym, 0.6);
}

TEST(Stats, BucketsPartitionNonZeroDegreeVertices) {
  const Graph g = small_rmat(10, 6);
  const auto buckets = bucket_by_in_degree(g);
  vid_t total = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    for (const vid_t v : buckets[b]) {
      const eid_t d = g.in_degree(v);
      EXPECT_GE(d, eid_t{1} << b);
      EXPECT_LT(d, eid_t{2} << b);
      ++total;
    }
  }
  vid_t expected = 0;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (g.in_degree(v) > 0) ++expected;
  }
  EXPECT_EQ(total, expected);
}

TEST(Stats, VerticesNeededForEdgeShare) {
  // Star graph: one vertex receives all 10 edges.
  std::vector<Edge> edges;
  for (vid_t v = 1; v <= 10; ++v) edges.push_back({v, 0});
  const Graph g = build_graph(11, edges);
  EXPECT_EQ(vertices_needed_for_edge_share(g, 0.8, false), 1u);
  // By out-degree every source holds one edge: need 8 of them.
  EXPECT_EQ(vertices_needed_for_edge_share(g, 0.8, true), 8u);
}

// ------------------------------------------------------------- permutations

TEST(Permute, IdentityKeepsGraph) {
  const Graph g = figure2_graph();
  const Graph p = apply_permutation(g, identity_permutation(8), true);
  EXPECT_EQ(to_edge_list(g), to_edge_list(p));
}

TEST(Permute, IsPermutationDetectsDuplicates) {
  EXPECT_TRUE(is_permutation(std::vector<vid_t>{2, 0, 1}));
  EXPECT_FALSE(is_permutation(std::vector<vid_t>{0, 0, 1}));
  EXPECT_FALSE(is_permutation(std::vector<vid_t>{0, 3, 1}));
}

TEST(Permute, InvertRoundTrips) {
  const std::vector<vid_t> perm = {3, 1, 0, 2};
  const auto inv = invert_permutation(perm);
  EXPECT_EQ(compose_permutations(perm, inv),
            identity_permutation(4));
  EXPECT_EQ(compose_permutations(inv, perm),
            identity_permutation(4));
}

TEST(Permute, ApplyPreservesDegrees) {
  const Graph g = small_rmat(9, 4);
  const std::vector<vid_t> perm = invert_permutation(
      identity_permutation(g.num_vertices()));  // identity; then a rotation:
  std::vector<vid_t> rot(g.num_vertices());
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    rot[v] = (v + 17) % g.num_vertices();
  }
  const Graph p = apply_permutation(g, rot);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(g.in_degree(v), p.in_degree(rot[v]));
    EXPECT_EQ(g.out_degree(v), p.out_degree(rot[v]));
  }
}

TEST(Permute, ValuesRoundTrip) {
  const std::vector<vid_t> perm = {2, 0, 3, 1};
  const std::vector<double> vals = {10, 20, 30, 40};
  const auto permuted = permute_values<double>(vals, perm);
  EXPECT_EQ(permuted, (std::vector<double>{20, 40, 10, 30}));
  EXPECT_EQ(unpermute_values<double>(permuted, perm), vals);
}

TEST(ToEdgeList, RoundTripsThroughBuild) {
  const Graph g = small_rmat(8, 4);
  const auto edges = to_edge_list(g);
  const Graph g2 = build_graph(g.num_vertices(), edges);
  EXPECT_EQ(to_edge_list(g2), edges);
}

}  // namespace
}  // namespace ihtl
