#include <gtest/gtest.h>

#include <cstring>

#include "baselines/spmv.h"
#include "core/ihtl_spmv.h"
#include "gen/datasets.h"
#include "test_util.h"

namespace ihtl {
namespace {

using testing::expect_values_near;
using testing::figure2_graph;
using testing::random_values;
using testing::small_rmat;
using testing::small_web;

IhtlConfig cfg_with_hubs(vid_t hubs_per_block) {
  IhtlConfig cfg;
  cfg.buffer_bytes = hubs_per_block * sizeof(value_t);
  return cfg;
}

/// Runs iHTL SpMV in original-ID space and compares against serial pull.
void expect_ihtl_matches_pull(const Graph& g, const IhtlConfig& cfg,
                              std::size_t threads, std::uint64_t seed) {
  ThreadPool pool(threads);
  const IhtlGraph ig = build_ihtl_graph(g, cfg);
  const auto x = random_values(g.num_vertices(), seed);
  std::vector<value_t> expected(g.num_vertices()), y(g.num_vertices());
  spmv_pull_serial(g, x, expected);
  ihtl_spmv_once(pool, ig, x, y);
  expect_values_near(expected, y, 1e-9);
}

TEST(IhtlSpmv, Figure2MatchesHandComputedPull) {
  const Graph g = figure2_graph();
  IhtlConfig cfg = cfg_with_hubs(2);
  cfg.min_hub_in_degree = 3;
  const IhtlGraph ig = build_ihtl_graph(g, cfg);
  ThreadPool pool(2);
  std::vector<value_t> x(8), y(8);
  for (vid_t v = 0; v < 8; ++v) x[v] = v + 1.0;
  ihtl_spmv_once(pool, ig, x, y);
  EXPECT_DOUBLE_EQ(y[2], 1 + 2 + 5 + 6 + 8.0);  // hub, via push + merge
  EXPECT_DOUBLE_EQ(y[6], 2 + 4 + 5.0);          // hub
  EXPECT_DOUBLE_EQ(y[0], 6.0);                  // non-hub, via sparse pull
  EXPECT_DOUBLE_EQ(y[5], 3.0);
}

class IhtlSpmvEquivalence
    : public ::testing::TestWithParam<std::tuple<unsigned, vid_t, std::size_t>> {
};

TEST_P(IhtlSpmvEquivalence, MatchesSerialPull) {
  const auto [scale, hubs_per_block, threads] = GetParam();
  const Graph g = small_rmat(scale, 8, scale * 13 + 1);
  expect_ihtl_matches_pull(g, cfg_with_hubs(hubs_per_block), threads,
                           scale + hubs_per_block);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IhtlSpmvEquivalence,
    ::testing::Combine(::testing::Values(6u, 8u, 10u),      // graph scale
                       ::testing::Values(4u, 32u, 256u),    // hubs per block
                       ::testing::Values(1u, 2u, 4u)),      // threads
    [](const auto& info) {
      return "scale" + std::to_string(std::get<0>(info.param)) + "_h" +
             std::to_string(std::get<1>(info.param)) + "_t" +
             std::to_string(std::get<2>(info.param));
    });

TEST(IhtlSpmv, WebGraphEquivalence) {
  expect_ihtl_matches_pull(small_web(1u << 11), cfg_with_hubs(16), 3, 77);
}

TEST(IhtlSpmv, ZeroHubGraphEquivalence) {
  // Cycle: no hubs, executor must still produce correct results through
  // the sparse block alone.
  std::vector<Edge> edges;
  for (vid_t v = 0; v < 64; ++v) edges.push_back({v, (v + 1) % 64});
  const Graph g = build_graph(64, edges);
  expect_ihtl_matches_pull(g, cfg_with_hubs(4), 2, 5);
}

TEST(IhtlSpmv, AllVerticesAreHubs) {
  // Tiny dense graph where the buffer holds everyone: every vertex with
  // in-degree >= 2 becomes a hub; results must still match.
  std::vector<Edge> edges;
  for (vid_t u = 0; u < 8; ++u) {
    for (vid_t v = 0; v < 8; ++v) {
      if (u != v) edges.push_back({u, v});
    }
  }
  const Graph g = build_graph(8, edges);
  expect_ihtl_matches_pull(g, cfg_with_hubs(64), 2, 6);
}

TEST(IhtlSpmv, MinMonoidEquivalence) {
  const Graph g = small_rmat(9, 8);
  ThreadPool pool(3);
  const IhtlGraph ig = build_ihtl_graph(g, cfg_with_hubs(16));
  const auto x = random_values(g.num_vertices(), 21);
  std::vector<value_t> expected(g.num_vertices()), y(g.num_vertices());
  spmv_pull_serial<MinMonoid>(g, x, expected);
  ihtl_spmv_once<MinMonoid>(pool, ig, x, y);
  expect_values_near(expected, y);
}

TEST(IhtlSpmv, MaxMonoidEquivalence) {
  const Graph g = small_rmat(9, 8);
  ThreadPool pool(2);
  const IhtlGraph ig = build_ihtl_graph(g, cfg_with_hubs(16));
  const auto x = random_values(g.num_vertices(), 22);
  std::vector<value_t> expected(g.num_vertices()), y(g.num_vertices());
  spmv_pull_serial<MaxMonoid>(g, x, expected);
  ihtl_spmv_once<MaxMonoid>(pool, ig, x, y);
  expect_values_near(expected, y);
}

TEST(IhtlSpmv, EngineReusableAcrossIterations) {
  const Graph g = small_rmat(9, 8);
  ThreadPool pool(2);
  const IhtlGraph ig = build_ihtl_graph(g, cfg_with_hubs(16));
  IhtlEngine<PlusMonoid> engine(ig, pool);
  const auto& o2n = ig.old_to_new();

  std::vector<value_t> x_new(g.num_vertices()), y_new(g.num_vertices());
  // Iterate SpMV 5 times in relabeled space; compare against 5 serial pulls.
  auto x = random_values(g.num_vertices(), 31);
  for (vid_t v = 0; v < g.num_vertices(); ++v) x_new[o2n[v]] = x[v];
  std::vector<value_t> expected(g.num_vertices()), tmp(g.num_vertices());
  for (int it = 0; it < 5; ++it) {
    spmv_pull_serial(g, x, expected);
    // Normalize to keep values bounded.
    for (auto& v : expected) v = v / 8.0;
    engine.spmv(x_new, y_new);
    for (auto& v : y_new) v = v / 8.0;
    // Compare in original space.
    for (vid_t v = 0; v < g.num_vertices(); ++v) tmp[v] = y_new[o2n[v]];
    expect_values_near(expected, tmp, 1e-9);
    x = expected;
    std::swap(x_new, y_new);
    for (vid_t v = 0; v < g.num_vertices(); ++v) x_new[o2n[v]] = x[v];
  }
}

TEST(IhtlSpmv, PhaseTimesPopulated) {
  const Graph g = small_rmat(10, 8);
  ThreadPool pool(2);
  const IhtlGraph ig = build_ihtl_graph(g, cfg_with_hubs(32));
  ASSERT_GT(ig.num_hubs(), 0u);
  IhtlEngine<PlusMonoid> engine(ig, pool);
  std::vector<value_t> x(g.num_vertices(), 1.0), y(g.num_vertices());
  engine.spmv(x, y);
  const IhtlPhaseTimes& t = engine.last_phase_times();
  EXPECT_GT(t.push_s, 0.0);
  EXPECT_GT(t.pull_s, 0.0);
  EXPECT_GE(t.merge_s, 0.0);
  EXPECT_GT(t.total(), 0.0);
}

TEST(IhtlSpmv, BitwiseDeterministicSingleThread) {
  // With one thread the push-chunk -> buffer assignment is fixed, so
  // repeated runs are bitwise identical. (With work stealing, which thread
  // accumulates which chunk varies, so multi-thread runs are only
  // numerically — not bitwise — reproducible; see the *_MatchesSerialPull
  // sweeps for that guarantee.)
  const Graph g = small_rmat(10, 8);
  ThreadPool pool(1);
  const IhtlGraph ig = build_ihtl_graph(g, cfg_with_hubs(32));
  IhtlEngine<PlusMonoid> engine(ig, pool);
  const auto x = random_values(g.num_vertices(), 41);
  std::vector<value_t> xp(g.num_vertices());
  for (vid_t v = 0; v < g.num_vertices(); ++v) xp[ig.old_to_new()[v]] = x[v];
  std::vector<value_t> y1(g.num_vertices()), y2(g.num_vertices());
  engine.spmv(xp, y1);
  engine.spmv(xp, y2);
  EXPECT_EQ(y1, y2);
}

TEST(IhtlSpmv, MultiThreadRunsNumericallyStable) {
  const Graph g = small_rmat(10, 8);
  ThreadPool pool(4);
  const IhtlGraph ig = build_ihtl_graph(g, cfg_with_hubs(32));
  IhtlEngine<PlusMonoid> engine(ig, pool);
  const auto x = random_values(g.num_vertices(), 41);
  std::vector<value_t> xp(g.num_vertices());
  for (vid_t v = 0; v < g.num_vertices(); ++v) xp[ig.old_to_new()[v]] = x[v];
  std::vector<value_t> y1(g.num_vertices()), y2(g.num_vertices());
  engine.spmv(xp, y1);
  engine.spmv(xp, y2);
  expect_values_near(y1, y2, 1e-12);
}

TEST(IhtlSpmv, SerializedGraphComputesSameResult) {
  const Graph g = small_rmat(9, 8);
  ThreadPool pool(1);  // single thread -> bitwise-comparable results
  const IhtlGraph ig = build_ihtl_graph(g, cfg_with_hubs(16));
  const std::string path = ::testing::TempDir() + "/ihtl_spmv_roundtrip.bin";
  ig.save_binary(path);
  const IhtlGraph loaded = IhtlGraph::load_binary(path);
  const auto x = random_values(g.num_vertices(), 51);
  std::vector<value_t> y1(g.num_vertices()), y2(g.num_vertices());
  ihtl_spmv_once(pool, ig, x, y1);
  ihtl_spmv_once(pool, loaded, x, y2);
  EXPECT_EQ(y1, y2);
  std::remove(path.c_str());
}

// --- push-policy and touched-tracking coverage ------------------------------

/// Runs one spmv under `policy` in the relabeled space and returns y.
template <typename Monoid>
std::vector<value_t> run_policy(const IhtlGraph& ig, ThreadPool& pool,
                                PushPolicy policy,
                                const std::vector<value_t>& xp) {
  IhtlEngine<Monoid> engine(ig, pool, policy);
  std::vector<value_t> y(xp.size());
  engine.spmv(xp, y);
  return y;
}

template <typename Monoid>
void expect_policies_bit_identical(const Graph& g) {
  // One worker: every policy processes each block in the same source order,
  // so plus/min/max results must agree to the last bit (the acceptance
  // criterion that lets --push-policy be flipped without perturbing apps).
  ThreadPool pool(1);
  const IhtlGraph ig = build_ihtl_graph(g, cfg_with_hubs(16));
  ASSERT_GT(ig.num_hubs(), 0u);
  const auto x = random_values(g.num_vertices(), 61);
  std::vector<value_t> xp(g.num_vertices());
  for (vid_t v = 0; v < g.num_vertices(); ++v) xp[ig.old_to_new()[v]] = x[v];
  const auto y_shared = run_policy<Monoid>(ig, pool, PushPolicy::shared, xp);
  const auto y_single =
      run_policy<Monoid>(ig, pool, PushPolicy::single_owner, xp);
  const auto y_auto = run_policy<Monoid>(ig, pool, PushPolicy::automatic, xp);
  const auto y_binned = run_policy<Monoid>(ig, pool, PushPolicy::binned, xp);
  EXPECT_EQ(y_shared, y_single);
  EXPECT_EQ(y_shared, y_auto);
  EXPECT_EQ(y_shared, y_binned);
}

TEST(IhtlSpmvPolicy, PoliciesBitIdenticalPlus) {
  expect_policies_bit_identical<PlusMonoid>(small_rmat(9, 8));
}
TEST(IhtlSpmvPolicy, PoliciesBitIdenticalMin) {
  expect_policies_bit_identical<MinMonoid>(small_rmat(9, 8));
}
TEST(IhtlSpmvPolicy, PoliciesBitIdenticalMax) {
  expect_policies_bit_identical<MaxMonoid>(small_rmat(9, 8));
}

TEST(IhtlSpmvPolicy, ForcedPoliciesMatchSerialPullMultiThread) {
  const Graph g = small_rmat(9, 8);
  for (const PushPolicy policy : {PushPolicy::automatic, PushPolicy::shared,
                                  PushPolicy::single_owner,
                                  PushPolicy::binned}) {
    ThreadPool pool(3);
    const IhtlGraph ig = build_ihtl_graph(g, cfg_with_hubs(16));
    const auto x = random_values(g.num_vertices(), 62);
    std::vector<value_t> expected(g.num_vertices()), y(g.num_vertices());
    spmv_pull_serial(g, x, expected);
    ihtl_spmv_once(pool, ig, x, y, policy);
    expect_values_near(expected, y, 1e-9);
  }
}

TEST(IhtlSpmvPolicy, ZeroHubGraphSkipsAllMergeWork) {
  // Cycle: no hubs, no flipped blocks. The touched-aware engine must not
  // allocate, reset, or merge any buffer — the old dense engine paid
  // O(threads x hubs) here for nothing.
  std::vector<Edge> edges;
  for (vid_t v = 0; v < 64; ++v) edges.push_back({v, (v + 1) % 64});
  const Graph g = build_graph(64, edges);
  ThreadPool pool(2);
  const IhtlGraph ig = build_ihtl_graph(g, cfg_with_hubs(4));
  ASSERT_EQ(ig.num_hubs(), 0u);
  IhtlEngine<PlusMonoid> engine(ig, pool);
  EXPECT_EQ(engine.merge_tile_count(), 0u);
  EXPECT_EQ(engine.single_owner_blocks(), 0u);
  std::vector<value_t> x(g.num_vertices(), 1.0), y(g.num_vertices());
  engine.spmv(x, y);
  const IhtlSpmvStats& s = engine.last_stats();
  EXPECT_EQ(s.merge_tiles, 0u);
  EXPECT_EQ(s.merge_segments_streamed, 0u);
  EXPECT_EQ(s.reset_values_cleared, 0u);
}

TEST(IhtlSpmvPolicy, SingleBlockGoesSingleOwnerAndSkipsMerge) {
  // One worker + one small flipped block: the automatic policy must resolve
  // it to single-owner, leaving zero merge tiles and zero buffer resets.
  const Graph g = figure2_graph();
  IhtlConfig cfg = cfg_with_hubs(2);
  cfg.min_hub_in_degree = 3;
  ThreadPool pool(1);
  const IhtlGraph ig = build_ihtl_graph(g, cfg);
  ASSERT_EQ(ig.blocks().size(), 1u);
  IhtlEngine<PlusMonoid> engine(ig, pool);
  EXPECT_EQ(engine.single_owner_blocks(), 1u);
  EXPECT_EQ(engine.merge_tile_count(), 0u);
  std::vector<value_t> x(8), y(8);
  for (vid_t v = 0; v < 8; ++v) x[ig.old_to_new()[v]] = v + 1.0;
  engine.spmv(x, y);
  const IhtlSpmvStats& s = engine.last_stats();
  EXPECT_EQ(s.merge_tiles, 0u);
  EXPECT_EQ(s.reset_values_cleared, 0u);
  // The dense engine would have zeroed threads x num_hubs slots.
  EXPECT_EQ(s.reset_values_skipped, ig.num_hubs());
  // Results still correct through the direct path.
  EXPECT_DOUBLE_EQ(y[ig.old_to_new()[2]], 1 + 2 + 5 + 6 + 8.0);
  EXPECT_DOUBLE_EQ(y[ig.old_to_new()[6]], 2 + 4 + 5.0);
}

TEST(IhtlSpmvPolicy, TouchedResetClearsOnlyDirtySegments) {
  // Forced-shared, one worker: the first call dirties every block the
  // thread pushed into; the second call's reset must clear exactly those
  // hub slots and nothing else (threads x hubs in the dense engine).
  const Graph g = small_rmat(9, 8);
  ThreadPool pool(1);
  const IhtlGraph ig = build_ihtl_graph(g, cfg_with_hubs(16));
  ASSERT_GT(ig.blocks().size(), 1u);
  IhtlEngine<PlusMonoid> engine(ig, pool, PushPolicy::shared);
  std::vector<value_t> x(g.num_vertices(), 1.0), y(g.num_vertices());
  engine.spmv(x, y);
  // Call 1 starts from freshly initialized buffers: nothing to clear.
  EXPECT_EQ(engine.last_stats().reset_values_cleared, 0u);
  vid_t dirty_hubs = 0;
  for (const FlippedBlock& blk : ig.blocks()) {
    if (blk.num_edges() > 0) dirty_hubs += blk.num_hubs();
  }
  engine.spmv(x, y);
  const IhtlSpmvStats& s = engine.last_stats();
  EXPECT_EQ(s.reset_values_cleared, dirty_hubs);
  EXPECT_EQ(s.reset_values_cleared + s.reset_values_skipped, ig.num_hubs());
  // One worker touches every block it merged: no segment skipped.
  EXPECT_EQ(s.merge_segments_skipped, 0u);
  EXPECT_EQ(s.merge_segments_streamed, s.merge_tiles);
}

TEST(IhtlSpmvPolicy, SingleOwnerGaugeExported) {
  const Graph g = figure2_graph();
  IhtlConfig cfg = cfg_with_hubs(2);
  cfg.min_hub_in_degree = 3;
  ThreadPool pool(1);
  const IhtlGraph ig = build_ihtl_graph(g, cfg);
  IhtlEngine<PlusMonoid> engine(ig, pool);
  const auto gauge =
      telemetry::MetricsRegistry::global().gauge("spmv.blocks_single_owner");
  ASSERT_TRUE(gauge.has_value());
  EXPECT_DOUBLE_EQ(*gauge, static_cast<double>(engine.single_owner_blocks()));
}

TEST(IhtlSpmvPolicy, OneShotEngineOverloadMatchesEngineless) {
  const Graph g = small_rmat(9, 8);
  ThreadPool pool(1);
  const IhtlGraph ig = build_ihtl_graph(g, cfg_with_hubs(16));
  const auto x = random_values(g.num_vertices(), 63);
  std::vector<value_t> y1(g.num_vertices()), y2(g.num_vertices());
  ihtl_spmv_once(pool, ig, x, y1);
  IhtlEngine<PlusMonoid> engine(ig, pool);
  ihtl_spmv_once(engine, x, y2);
  EXPECT_EQ(y1, y2);
  // The reuse overload leaves the engine consistent for further calls.
  ihtl_spmv_once(engine, x, y2);
  EXPECT_EQ(y1, y2);
}

// --- binned sparse path (propagation blocking) ------------------------------

TEST(IhtlSpmvBinned, SparseRegionBitwiseMatchesPullOnFloats) {
  // The gather permutation's contract: every sparse destination combines
  // its in-edges in exact CSC stored order, so the binned sparse region is
  // bitwise-identical to the pull's on arbitrary floats at ANY thread
  // count and chunk assignment (the hub region needs integer inputs for a
  // whole-vector bitwise claim — covered below).
  const Graph g = small_web(1u << 10, 3);
  const IhtlGraph ig = build_ihtl_graph(g, cfg_with_hubs(16));
  const vid_t num_hubs = ig.num_hubs();
  ASSERT_GT(num_hubs, 0u);
  ASSERT_LT(num_hubs, ig.num_vertices());
  ThreadPool pool(4);
  IhtlEngine<PlusMonoid> pull(ig, pool, PushPolicy::shared);
  IhtlEngine<PlusMonoid> binned(ig, pool, PushPolicy::binned);
  ASSERT_FALSE(pull.sparse_binned());
  ASSERT_TRUE(binned.sparse_binned());
  const auto x = random_values(ig.num_vertices(), 881);
  std::vector<value_t> ya(x.size()), yb(x.size());
  pull.spmv(x, ya);
  binned.spmv(x, yb);
  EXPECT_EQ(0, std::memcmp(ya.data() + num_hubs, yb.data() + num_hubs,
                           (ya.size() - num_hubs) * sizeof(value_t)));
  expect_values_near(ya, yb, 1e-9);  // hub region: same values, any order
}

TEST(IhtlSpmvBinned, IntegerInputsBitwiseMatchSharedPolicyMultiThread) {
  // Small-integer sums are exact under any combine order, so the whole
  // output — hub and sparse regions — must agree with the shared policy to
  // the last bit even under multi-thread scheduling.
  const Graph g = small_web(1u << 10, 3);
  const IhtlGraph ig = build_ihtl_graph(g, cfg_with_hubs(16));
  ThreadPool pool(4);
  std::vector<value_t> x(ig.num_vertices());
  Rng rng(5);
  for (auto& v : x) v = static_cast<value_t>(rng.next_below(8));
  IhtlEngine<PlusMonoid> shared(ig, pool, PushPolicy::shared);
  IhtlEngine<PlusMonoid> binned(ig, pool, PushPolicy::binned);
  std::vector<value_t> ya(x.size()), yb(x.size());
  for (int round = 0; round < 3; ++round) {
    shared.spmv(x, ya);
    binned.spmv(x, yb);
    ASSERT_EQ(0, std::memcmp(ya.data(), yb.data(),
                             ya.size() * sizeof(value_t)))
        << "diverged at round " << round;
    x = ya;
  }
}

TEST(IhtlSpmvBinned, AllHubGraphLeavesNothingToBin) {
  // Every vertex has in-degree >= 1 at min_hub_in_degree == 1: the hub
  // range swallows the whole destination range and the forced-binned
  // engine must degrade to "no sparse block" instead of building bins.
  std::vector<Edge> edges;
  for (vid_t v = 0; v < 64; ++v) edges.push_back({v, (v + 1) % 64});
  const Graph g = build_graph(64, edges);
  IhtlConfig cfg = cfg_with_hubs(8);
  cfg.min_hub_in_degree = 1;
  cfg.admission_ratio = 0.0;
  const IhtlGraph ig = build_ihtl_graph(g, cfg);
  ASSERT_EQ(ig.num_hubs(), ig.num_vertices());
  ThreadPool pool(2);
  IhtlEngine<PlusMonoid> engine(ig, pool, PushPolicy::binned);
  EXPECT_FALSE(engine.sparse_binned());
  EXPECT_EQ(engine.bin_count(), 0u);
  EXPECT_FALSE(engine.inject_bin_drop());  // hook refuses: nothing to drop
  const auto x = random_values(64, 884);
  std::vector<value_t> expected(64), y(64), xp(64), yp(64);
  spmv_pull_serial(g, x, expected);
  for (vid_t v = 0; v < 64; ++v) xp[ig.old_to_new()[v]] = x[v];
  engine.spmv(xp, yp);
  for (vid_t v = 0; v < 64; ++v) y[v] = yp[ig.old_to_new()[v]];
  expect_values_near(expected, y, 1e-12);
}

TEST(IhtlSpmvBinned, ZeroEdgeSparseSliceStillAnswersIdentity) {
  // Star graph: one mega-hub owns every edge, so the remaining sparse
  // destinations form a slice with ZERO edges. Forced binned must survive
  // the empty scatter (no sources, no slots) and write the identity fill.
  std::vector<Edge> edges;
  for (vid_t v = 1; v < 128; ++v) edges.push_back({v, 0});
  const Graph g = build_graph(128, edges);
  const IhtlGraph ig = build_ihtl_graph(g, cfg_with_hubs(8));
  ThreadPool pool(2);
  IhtlEngine<PlusMonoid> engine(ig, pool, PushPolicy::binned);
  ASSERT_TRUE(engine.sparse_binned());
  EXPECT_GE(engine.bin_count(), 1u);
  EXPECT_FALSE(engine.inject_bin_drop());  // an armed drop needs edges
  const auto x = random_values(128, 885);
  std::vector<value_t> expected(128), y(128), xp(128), yp(128);
  spmv_pull_serial(g, x, expected);
  for (vid_t v = 0; v < 128; ++v) xp[ig.old_to_new()[v]] = x[v];
  engine.spmv(xp, yp);
  for (vid_t v = 0; v < 128; ++v) y[v] = yp[ig.old_to_new()[v]];
  expect_values_near(expected, y, 1e-12);
}

TEST(IhtlSpmvBinned, TinySpanGetsMoreBinsThanThreadsAndStaysBitwise) {
  // A slice far smaller than one bin's 2 MiB byte target: the team floor
  // still asks for 4 bins per thread (bin count > thread count is the
  // normal regime), and at one worker the whole output stays bitwise-equal
  // to the shared policy on arbitrary floats.
  const Graph g = small_rmat(8, 8, 13);
  const IhtlGraph ig = build_ihtl_graph(g, cfg_with_hubs(16));
  ThreadPool pool(1);
  IhtlEngine<PlusMonoid> binned(ig, pool, PushPolicy::binned);
  ASSERT_TRUE(binned.sparse_binned());
  EXPECT_GT(binned.bin_count(), pool.size());
  IhtlEngine<PlusMonoid> shared(ig, pool, PushPolicy::shared);
  const auto x = random_values(ig.num_vertices(), 883);
  std::vector<value_t> ya(x.size()), yb(x.size());
  shared.spmv(x, ya);
  binned.spmv(x, yb);
  EXPECT_EQ(0,
            std::memcmp(ya.data(), yb.data(), ya.size() * sizeof(value_t)));
}

TEST(IhtlSpmvBinned, BinDropHookPerturbsPositiveInputs) {
  // The fault-injection contract the check lattice leans on: with strictly
  // positive inputs under plus, a dropped slot always changes some sum.
  const Graph g = small_web(1u << 9, 4);
  const IhtlGraph ig = build_ihtl_graph(g, cfg_with_hubs(16));
  ThreadPool pool(2);
  IhtlEngine<PlusMonoid> clean(ig, pool, PushPolicy::binned);
  IhtlEngine<PlusMonoid> faulty(ig, pool, PushPolicy::binned);
  ASSERT_TRUE(faulty.inject_bin_drop());
  std::vector<value_t> x(ig.num_vertices(), 1.0), yc(x.size()), yf(x.size());
  clean.spmv(x, yc);
  faulty.spmv(x, yf);
  EXPECT_GE(faulty.bin_drops_applied(), 1u);
  EXPECT_NE(0,
            std::memcmp(yc.data(), yf.data(), yc.size() * sizeof(value_t)))
      << "dropped bin slots left the results untouched";
}

// --- batched (SpMM-style) path ----------------------------------------------

/// Runs the batched engine in original-ID space against the serial batched
/// pull reference on vertex-major n×k arrays.
template <typename Monoid = PlusMonoid>
void expect_batch_matches_serial(const Graph& g, const IhtlConfig& cfg,
                                 std::size_t threads, std::size_t k,
                                 std::uint64_t seed,
                                 PushPolicy policy = PushPolicy::automatic) {
  ThreadPool pool(threads);
  const IhtlGraph ig = build_ihtl_graph(g, cfg);
  const auto x = random_values(g.num_vertices() * k, seed);
  std::vector<value_t> expected(x.size()), y(x.size());
  spmv_pull_serial_batch<Monoid>(g, x, expected, k);
  IhtlEngine<Monoid> engine(ig, pool, policy);
  ihtl_spmv_batch_once(engine, x, y, k);
  expect_values_near(expected, y, 1e-9);
}

class IhtlSpmvBatch
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(IhtlSpmvBatch, MatchesSerialBatchPull) {
  const auto [threads, k] = GetParam();
  expect_batch_matches_serial(small_rmat(9, 8), cfg_with_hubs(16), threads, k,
                              threads * 100 + k);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IhtlSpmvBatch,
    ::testing::Combine(::testing::Values(1u, 2u, 4u),       // threads
                       ::testing::Values(2u, 3u, 8u)),      // lanes
    [](const auto& info) {
      return "t" + std::to_string(std::get<0>(info.param)) + "_k" +
             std::to_string(std::get<1>(info.param));
    });

TEST(IhtlSpmvBatchPath, EachLaneMatchesScalarSpmv) {
  // Lane l of one batched call must equal a scalar call over lane l's
  // strided vector — the batched path changes layout, not semantics.
  const Graph g = small_rmat(9, 8);
  const std::size_t k = 4;
  ThreadPool pool(1);  // bitwise-comparable per-chunk combine order
  const IhtlGraph ig = build_ihtl_graph(g, cfg_with_hubs(16));
  IhtlEngine<PlusMonoid> engine(ig, pool);
  const vid_t n = g.num_vertices();
  const auto xb = random_values(n * k, 71);
  std::vector<value_t> yb(n * k);
  std::vector<value_t> xbp(n * k), ybp(n * k);
  const auto& o2n = ig.old_to_new();
  for (vid_t v = 0; v < n; ++v) {
    for (std::size_t lane = 0; lane < k; ++lane) {
      xbp[static_cast<std::size_t>(o2n[v]) * k + lane] = xb[v * k + lane];
    }
  }
  engine.spmv_batch(xbp, ybp, k);
  for (std::size_t lane = 0; lane < k; ++lane) {
    std::vector<value_t> xs(n), ys(n);
    for (vid_t v = 0; v < n; ++v) xs[o2n[v]] = xb[v * k + lane];
    engine.spmv(xs, ys);
    for (vid_t v = 0; v < n; ++v) {
      EXPECT_EQ(ys[o2n[v]], ybp[static_cast<std::size_t>(o2n[v]) * k + lane])
          << "lane " << lane << " vertex " << v;
    }
  }
}

TEST(IhtlSpmvBatchPath, KOneDelegatesToScalar) {
  const Graph g = small_rmat(9, 8);
  ThreadPool pool(1);
  const IhtlGraph ig = build_ihtl_graph(g, cfg_with_hubs(16));
  IhtlEngine<PlusMonoid> engine(ig, pool);
  const auto x = random_values(g.num_vertices(), 72);
  std::vector<value_t> xp(g.num_vertices());
  for (vid_t v = 0; v < g.num_vertices(); ++v) xp[ig.old_to_new()[v]] = x[v];
  std::vector<value_t> y1(xp.size()), y2(xp.size());
  engine.spmv(xp, y1);
  engine.spmv_batch(xp, y2, 1);
  EXPECT_EQ(y1, y2);
  EXPECT_EQ(engine.batch_lanes(), 0u);  // no k-lane buffers were built
}

TEST(IhtlSpmvBatchPath, ScalarAndBatchCallsInterleave) {
  // Scalar and batched calls keep separate buffers + touch bits; mixing
  // them (including changing k mid-stream) must never corrupt either path.
  const Graph g = small_rmat(9, 8);
  ThreadPool pool(2);
  const IhtlGraph ig = build_ihtl_graph(g, cfg_with_hubs(16));
  IhtlEngine<PlusMonoid> engine(ig, pool);
  const vid_t n = g.num_vertices();
  const auto xs = random_values(n, 73);
  std::vector<value_t> es(n);
  spmv_pull_serial(g, xs, es);
  for (const std::size_t k : {std::size_t{2}, std::size_t{8},
                              std::size_t{2}}) {
    const auto xb = random_values(n * k, 74 + k);
    std::vector<value_t> eb(n * k), yb(n * k);
    spmv_pull_serial_batch(g, xb, eb, k);
    ihtl_spmv_batch_once(engine, xb, yb, k);
    expect_values_near(eb, yb, 1e-9);
    std::vector<value_t> ys(n);
    ihtl_spmv_once(engine, xs, ys);
    expect_values_near(es, ys, 1e-9);
  }
}

TEST(IhtlSpmvBatchPath, BatchLanesTrackLazyBufferRebuilds) {
  // batch_buffers_ are (re)built lazily on the first spmv_batch call with a
  // new k; batch_lanes() exposes the currently-built width. Scalar calls in
  // between must neither tear the batch buffers down nor corrupt them.
  // The forced shared policy guarantees the lane-widened buffers actually
  // exist (single-owner blocks push straight to y and skip them).
  const Graph g = small_rmat(9, 8);
  ThreadPool pool(2);
  const IhtlGraph ig = build_ihtl_graph(g, cfg_with_hubs(16));
  IhtlEngine<PlusMonoid> engine(ig, pool, PushPolicy::shared);
  const vid_t n = g.num_vertices();
  EXPECT_EQ(engine.batch_lanes(), 0u);

  const auto run_k = [&](std::size_t k, std::uint64_t seed) {
    const auto xb = random_values(n * k, seed);
    std::vector<value_t> eb(n * k), yb(n * k);
    spmv_pull_serial_batch(g, xb, eb, k);
    ihtl_spmv_batch_once(engine, xb, yb, k);
    expect_values_near(eb, yb, 1e-9);
  };
  run_k(3, 81);
  EXPECT_EQ(engine.batch_lanes(), 3u);
  // Scalar call: batch buffers stay built at the old width.
  const auto xs = random_values(n, 82);
  std::vector<value_t> es(n), ys(n);
  spmv_pull_serial(g, xs, es);
  ihtl_spmv_once(engine, xs, ys);
  expect_values_near(es, ys, 1e-9);
  EXPECT_EQ(engine.batch_lanes(), 3u);
  // Widening and narrowing both rebuild; k=1 delegates and leaves the
  // buffers untouched.
  run_k(7, 83);
  EXPECT_EQ(engine.batch_lanes(), 7u);
  run_k(2, 84);
  EXPECT_EQ(engine.batch_lanes(), 2u);
  std::vector<value_t> xp(n), y1(n);
  for (vid_t v = 0; v < n; ++v) xp[ig.old_to_new()[v]] = xs[v];
  engine.spmv_batch(xp, y1, 1);
  EXPECT_EQ(engine.batch_lanes(), 2u);
  // And the previously-built width still computes correctly.
  run_k(2, 85);
}

TEST(IhtlSpmvBatchPath, PoolSharedAcrossManyBatchCallsThenShutdown) {
  // Regression for the long-lived-owner ordering hazard (GraphSession):
  // one pool feeding repeated spmv_batch calls across k changes, engines
  // still alive when the pool shuts down — compute must keep working
  // (serially) and the first parallel results must be reproduced exactly.
  const Graph g = small_rmat(9, 8);
  ThreadPool pool(4);
  const IhtlGraph ig = build_ihtl_graph(g, cfg_with_hubs(16));
  IhtlEngine<PlusMonoid> plus(ig, pool);
  IhtlEngine<MinMonoid> min(ig, pool);
  const vid_t n = g.num_vertices();
  const std::size_t k = 4;
  const auto xb = random_values(n * k, 86);
  std::vector<value_t> expected(n * k);
  spmv_pull_serial_batch(g, xb, expected, k);
  for (int round = 0; round < 20; ++round) {
    // Alternate widths so the lazy buffers rebuild repeatedly on one pool.
    const std::size_t kk = (round % 2) ? k : k / 2;
    const std::span<const value_t> xr(xb.data(), n * kk);
    std::vector<value_t> yb(n * kk), er(n * kk);
    spmv_pull_serial_batch(g, xr, er, kk);
    ihtl_spmv_batch_once(plus, xr, yb, kk);
    expect_values_near(er, yb, 1e-9);
  }
  pool.shutdown();
  // Both engines still compute after the workers are gone.
  std::vector<value_t> after(n * k);
  ihtl_spmv_batch_once(plus, xb, after, k);
  expect_values_near(expected, after, 1e-9);
  std::vector<value_t> ym(n), em(n);
  const auto xm = random_values(n, 87);
  spmv_pull_serial<MinMonoid>(g, xm, em);
  ihtl_spmv_once<MinMonoid>(pool, ig, xm, ym);
  expect_values_near(em, ym, 1e-9);
  // The engine built before shutdown works too.
  ihtl_spmv_once(min, xm, ym);
  expect_values_near(em, ym, 1e-9);
}

TEST(IhtlSpmvBatchPath, MinMonoidBatchEquivalence) {
  expect_batch_matches_serial<MinMonoid>(small_rmat(9, 8), cfg_with_hubs(16),
                                         3, 4, 75);
}

TEST(IhtlSpmvBatchPath, MaxMonoidBatchEquivalence) {
  expect_batch_matches_serial<MaxMonoid>(small_rmat(9, 8), cfg_with_hubs(16),
                                         2, 4, 76);
}

TEST(IhtlSpmvBatchPath, ForcedPoliciesBatchEquivalence) {
  for (const PushPolicy policy : {PushPolicy::automatic, PushPolicy::shared,
                                  PushPolicy::single_owner,
                                  PushPolicy::binned}) {
    expect_batch_matches_serial(small_rmat(9, 8), cfg_with_hubs(16), 3, 4, 77,
                                policy);
  }
}

TEST(IhtlSpmvBatchPath, BinnedLanesMatchSerialAtKOneAndKEight) {
  // Degenerate binned lane counts: k == 1 (the scalar-width rows) and
  // k == 8 (a full cache line per slot row) both land on the k-lane
  // scatter->accumulate and must match the serial batch pull.
  for (const std::size_t k : {1u, 8u}) {
    SCOPED_TRACE("k=" + std::to_string(k));
    expect_batch_matches_serial(small_web(1u << 9, 4), cfg_with_hubs(16), 3,
                                k, 900 + k, PushPolicy::binned);
  }
}

TEST(IhtlSpmvBatchPath, ZeroHubGraphBatchEquivalence) {
  std::vector<Edge> edges;
  for (vid_t v = 0; v < 64; ++v) edges.push_back({v, (v + 1) % 64});
  expect_batch_matches_serial(build_graph(64, edges), cfg_with_hubs(4), 2, 4,
                              78);
}

TEST(IhtlSpmvBatchPath, ParallelPullBatchMatchesSerial) {
  const Graph g = small_rmat(9, 8);
  const std::size_t k = 4;
  ThreadPool pool(3);
  const auto x = random_values(g.num_vertices() * k, 79);
  std::vector<value_t> expected(x.size()), y(x.size());
  spmv_pull_serial_batch(g, x, expected, k);
  spmv_pull_batch(pool, g, x, y, k);
  expect_values_near(expected, y, 1e-12);
}

class AllDatasetsSpmvTest : public ::testing::TestWithParam<DatasetSpec> {};

TEST_P(AllDatasetsSpmvTest, EquivalenceOnEveryDataset) {
  const Graph g = make_dataset(GetParam(), DatasetScale::tiny);
  expect_ihtl_matches_pull(g, cfg_with_hubs(32), 3, 99);
}

INSTANTIATE_TEST_SUITE_P(
    Registry, AllDatasetsSpmvTest, ::testing::ValuesIn(all_datasets()),
    [](const ::testing::TestParamInfo<DatasetSpec>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace ihtl
