// Cross-module integration and property tests: every traversal strategy,
// every relabeling, and the iHTL pipeline must compute identical SpMV
// results on identical logical graphs ("every edge is traversed exactly
// once" — Section 2.4). These sweeps are the repository's strongest
// correctness net.
#include <gtest/gtest.h>

#include "apps/pagerank.h"
#include "baselines/spmv.h"
#include "core/ihtl_spmv.h"
#include "gen/datasets.h"
#include "graph/permute.h"
#include "reorder/reorder.h"
#include "test_util.h"

namespace ihtl {
namespace {

using testing::expect_values_near;
using testing::random_values;

struct EquivCase {
  std::string dataset;
  vid_t hubs_per_block;
  std::size_t threads;
};

class FullEquivalence : public ::testing::TestWithParam<EquivCase> {};

TEST_P(FullEquivalence, AllSevenKernelsProduceTheSameSpmv) {
  const auto& p = GetParam();
  const Graph g = make_dataset(p.dataset, DatasetScale::tiny);
  ThreadPool pool(p.threads);
  const auto x = random_values(g.num_vertices(), 1234);
  std::vector<value_t> expected(g.num_vertices());
  spmv_pull_serial(g, x, expected);

  std::vector<value_t> y(g.num_vertices());
  spmv_pull(pool, g, x, y);
  expect_values_near(expected, y, 1e-9);
  spmv_pull_edge_balanced(pool, g, x, y);
  expect_values_near(expected, y, 1e-9);
  spmv_push_atomic(pool, g, x, y);
  expect_values_near(expected, y, 1e-9);
  spmv_push_buffered(pool, g, x, y);
  expect_values_near(expected, y, 1e-9);
  DestinationPartitionedPush push(g, 2 * p.threads);
  push.run(pool, x, y);
  expect_values_near(expected, y, 1e-9);
  SegmentedPull seg(g, g.num_vertices() / 3 + 1);
  seg.run(pool, x, y);
  expect_values_near(expected, y, 1e-9);

  IhtlConfig cfg;
  cfg.buffer_bytes = p.hubs_per_block * sizeof(value_t);
  const IhtlGraph ig = build_ihtl_graph(g, cfg);
  ihtl_spmv_once(pool, ig, x, y);
  expect_values_near(expected, y, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FullEquivalence,
    ::testing::Values(EquivCase{"LvJrnl", 16, 2}, EquivCase{"Twtr10", 64, 4},
                      EquivCase{"TwtrMpi", 8, 1}, EquivCase{"Frndstr", 32, 3},
                      EquivCase{"SK", 16, 2}, EquivCase{"WbCc", 64, 1},
                      EquivCase{"UKDls", 32, 2}, EquivCase{"UU", 8, 4},
                      EquivCase{"UKDmn", 16, 3}, EquivCase{"ClWb9", 32, 2}),
    [](const ::testing::TestParamInfo<EquivCase>& info) {
      return info.param.dataset + "_h" +
             std::to_string(info.param.hubs_per_block) + "_t" +
             std::to_string(info.param.threads);
    });

TEST(Integration, IhtlOnRelabeledGraphStillCorrect) {
  // iHTL applied on top of a locality-reordered graph (the paper's future
  // work: Rabbit-Order for the sparse block) must stay correct.
  const Graph g = make_dataset("LvJrnl", DatasetScale::tiny);
  ThreadPool pool(2);
  const auto x = random_values(g.num_vertices(), 7);

  for (const auto& perm :
       {rabbit_order(g), slashburn_order(g), degree_order(g)}) {
    const Graph rg = apply_permutation(g, perm);
    const auto xp = permute_values<value_t>(x, perm);
    std::vector<value_t> expected(g.num_vertices()), yp(g.num_vertices());
    spmv_pull_serial(rg, xp, expected);
    IhtlConfig cfg;
    cfg.buffer_bytes = 32 * sizeof(value_t);
    const IhtlGraph ig = build_ihtl_graph(rg, cfg);
    ASSERT_TRUE(ig.valid(rg));
    ihtl_spmv_once(pool, ig, xp, yp);
    expect_values_near(expected, yp, 1e-9);
  }
}

TEST(Integration, PageRankConvergesToSameFixpointAcrossKernels) {
  // Beyond per-iteration equality: run many iterations and compare the
  // converged vector, exercising accumulation of rounding differences.
  const Graph g = make_dataset("Twtr10", DatasetScale::tiny);
  ThreadPool pool(4);
  PageRankOptions opt;
  opt.iterations = 50;
  opt.ihtl.buffer_bytes = 64 * sizeof(value_t);
  const auto pull = pagerank(pool, g, SpmvKernel::pull, opt);
  const auto ihtl_r = pagerank(pool, g, SpmvKernel::ihtl, opt);
  const auto push = pagerank(pool, g, SpmvKernel::push_buffered, opt);
  expect_values_near(pull.ranks, ihtl_r.ranks, 1e-8);
  expect_values_near(pull.ranks, push.ranks, 1e-8);
}

TEST(Integration, AdmissionRatioZeroAndOneBracketBlockCounts) {
  // Property of the §3.3 rule: ratio -> 1 yields the fewest blocks, ratio
  // -> 0 the most; correctness must hold at both extremes.
  const Graph g = make_dataset("TwtrMpi", DatasetScale::tiny);
  ThreadPool pool(2);
  const auto x = random_values(g.num_vertices(), 13);
  std::vector<value_t> expected(g.num_vertices()), y(g.num_vertices());
  spmv_pull_serial(g, x, expected);

  IhtlConfig lo, hi;
  lo.buffer_bytes = hi.buffer_bytes = 16 * sizeof(value_t);
  lo.admission_ratio = 0.01;
  hi.admission_ratio = 0.99;
  const IhtlGraph ig_lo = build_ihtl_graph(g, lo);
  const IhtlGraph ig_hi = build_ihtl_graph(g, hi);
  EXPECT_GE(ig_lo.blocks().size(), ig_hi.blocks().size());
  ihtl_spmv_once(pool, ig_lo, x, y);
  expect_values_near(expected, y, 1e-9);
  ihtl_spmv_once(pool, ig_hi, x, y);
  expect_values_near(expected, y, 1e-9);
}

TEST(Integration, StressManySmallBlocksManyThreads) {
  const Graph g = make_dataset("SK", DatasetScale::small);
  ThreadPool pool(8);
  IhtlConfig cfg;
  cfg.buffer_bytes = 4 * sizeof(value_t);  // pathological: 4 hubs per block
  const IhtlGraph ig = build_ihtl_graph(g, cfg);
  const auto x = random_values(g.num_vertices(), 17);
  std::vector<value_t> expected(g.num_vertices()), y(g.num_vertices());
  spmv_pull_serial(g, x, expected);
  ihtl_spmv_once(pool, ig, x, y);
  expect_values_near(expected, y, 1e-9);
}

}  // namespace
}  // namespace ihtl
