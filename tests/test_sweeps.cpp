// Final parameterized sweep tier: cross-module properties exercised over
// the full dataset registry and seed ranges — the widest net in the suite.
#include <gtest/gtest.h>

#include "apps/kcore.h"
#include "apps/pagerank.h"
#include "cachesim/trace_spmv.h"
#include "core/ihtl_compressed.h"
#include "core/ihtl_spmv.h"
#include "gen/datasets.h"
#include "graph/compressed.h"
#include "test_util.h"

namespace ihtl {
namespace {

using testing::expect_values_near;
using testing::random_values;
using testing::small_rmat;

// -------------------------------------------------- compression round trips

class CompressionSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CompressionSweep, RoundTripOnRandomRmat) {
  const Graph g = small_rmat(8, 6, GetParam());
  for (const Adjacency* adj : {&g.out(), &g.in()}) {
    const CompressedAdjacency c = CompressedAdjacency::encode(*adj);
    Adjacency expected = *adj;
    expected.sort_all_neighbor_lists();
    const Adjacency decoded = c.decode();
    ASSERT_EQ(decoded.offsets, expected.offsets);
    ASSERT_EQ(decoded.targets, expected.targets);
    ASSERT_EQ(c.topology_bytes() > 0, g.num_vertices() > 0);
  }
}

TEST_P(CompressionSweep, DegreesPreserved) {
  const Graph g = small_rmat(8, 6, GetParam());
  const CompressedAdjacency c = CompressedAdjacency::encode(g.in());
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(c.degree(v), g.in_degree(v));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompressionSweep,
                         ::testing::Range<std::uint64_t>(100, 110));

// --------------------------------------- compressed executor on all datasets

class CompressedDatasetSweep : public ::testing::TestWithParam<DatasetSpec> {};

TEST_P(CompressedDatasetSweep, CompressedIhtlMatchesUncompressed) {
  const Graph g = make_dataset(GetParam(), DatasetScale::tiny);
  ThreadPool pool(2);
  IhtlConfig cfg;
  cfg.buffer_bytes = 32 * sizeof(value_t);
  const IhtlGraph ig = build_ihtl_graph(g, cfg);
  const CompressedIhtlGraph cig = CompressedIhtlGraph::from(ig);

  const auto x = random_values(g.num_vertices(), 77);
  const auto& o2n = ig.old_to_new();
  std::vector<value_t> xp(g.num_vertices());
  for (vid_t v = 0; v < g.num_vertices(); ++v) xp[o2n[v]] = x[v];

  IhtlEngine<PlusMonoid> engine(ig, pool);
  std::vector<value_t> y_raw(g.num_vertices()), y_zip(g.num_vertices());
  engine.spmv(xp, y_raw);
  compressed_ihtl_spmv(pool, cig, xp, y_zip);
  expect_values_near(y_raw, y_zip, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Registry, CompressedDatasetSweep, ::testing::ValuesIn(all_datasets()),
    [](const ::testing::TestParamInfo<DatasetSpec>& info) {
      return info.param.name;
    });

// ---------------------------------------------------- kcore across datasets

class KCoreDatasetSweep : public ::testing::TestWithParam<DatasetSpec> {};

TEST_P(KCoreDatasetSweep, InvariantsHoldOnRegistry) {
  ThreadPool pool(3);
  const Graph g = make_dataset(GetParam(), DatasetScale::tiny);
  // Run on the directed graph (out-degree peeling): coreness <= out-degree
  // and the k-core property must hold in the directed sense.
  const KCoreResult r = kcore_decomposition(pool, g);
  ASSERT_EQ(r.coreness.size(), g.num_vertices());
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    ASSERT_LE(r.coreness[v], g.out_degree(v));
    ASSERT_LE(r.coreness[v], r.max_core);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Registry, KCoreDatasetSweep, ::testing::ValuesIn(all_datasets()),
    [](const ::testing::TestParamInfo<DatasetSpec>& info) {
      return info.param.name;
    });

// ------------------------------------------- trace adapters across datasets

class TraceDatasetSweep : public ::testing::TestWithParam<DatasetSpec> {};

TEST_P(TraceDatasetSweep, TraceCountsAreStructural) {
  // Access counts depend only on topology: pull touches 2 per vertex +
  // 2 per edge; iHTL accounting must cover every edge exactly once across
  // its push and pull phases.
  const Graph g = make_dataset(GetParam(), DatasetScale::tiny);
  CacheHierarchy h = CacheHierarchy::tiny();
  const TraceCounters pull = trace_pull_spmv(g, h);
  EXPECT_EQ(pull.memory_accesses,
            2 * static_cast<std::uint64_t>(g.num_vertices()) +
                2 * g.num_edges());

  IhtlConfig cfg;
  cfg.buffer_bytes = 32 * sizeof(value_t);
  const IhtlGraph ig = build_ihtl_graph(g, cfg);
  CacheHierarchy h2 = CacheHierarchy::tiny();
  DegreeMissProfile profile;
  trace_ihtl_spmv(g, ig, h2, &profile);
  std::uint64_t attributed = 0;
  for (const auto a : profile.accesses) attributed += a;
  EXPECT_EQ(attributed, g.num_edges());  // every edge's random access, once
}

TEST_P(TraceDatasetSweep, PrefetcherNeverIncreasesPullL2MissesMuch) {
  // Prefetching next lines helps the sequential topology streams and can
  // only marginally pollute; L2 misses must not blow up.
  const Graph g = make_dataset(GetParam(), DatasetScale::tiny);
  CacheHierarchy plain = CacheHierarchy::tiny();
  const TraceCounters base = trace_pull_spmv(g, plain);
  CacheHierarchy pf = CacheHierarchy::tiny();
  pf.set_next_line_prefetch(true);
  const TraceCounters with_pf = trace_pull_spmv(g, pf);
  EXPECT_LT(with_pf.l2_misses, base.l2_misses * 1.1 + 100);
  EXPECT_GT(pf.prefetch_installs(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Registry, TraceDatasetSweep, ::testing::ValuesIn(all_datasets()),
    [](const ::testing::TestParamInfo<DatasetSpec>& info) {
      return info.param.name;
    });

// ------------------------------------------ PageRank kernels x web datasets

struct KernelDatasetCase {
  SpmvKernel kernel;
  std::string dataset;
};

class KernelDatasetSweep
    : public ::testing::TestWithParam<KernelDatasetCase> {};

TEST_P(KernelDatasetSweep, MatchesPullRanks) {
  ThreadPool pool(2);
  const Graph g = make_dataset(GetParam().dataset, DatasetScale::tiny);
  PageRankOptions opt;
  opt.iterations = 6;
  opt.ihtl.buffer_bytes = 64 * sizeof(value_t);
  const auto reference = pagerank(pool, g, SpmvKernel::pull, opt);
  const auto result = pagerank(pool, g, GetParam().kernel, opt);
  expect_values_near(reference.ranks, result.ranks, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Cross, KernelDatasetSweep,
    ::testing::Values(
        KernelDatasetCase{SpmvKernel::ihtl, "SK"},
        KernelDatasetCase{SpmvKernel::ihtl, "Frndstr"},
        KernelDatasetCase{SpmvKernel::ihtl, "ClWb9"},
        KernelDatasetCase{SpmvKernel::push_partitioned, "SK"},
        KernelDatasetCase{SpmvKernel::push_partitioned, "TwtrMpi"},
        KernelDatasetCase{SpmvKernel::segmented_pull, "UU"},
        KernelDatasetCase{SpmvKernel::segmented_pull, "LvJrnl"},
        KernelDatasetCase{SpmvKernel::push_buffered, "UKDmn"},
        KernelDatasetCase{SpmvKernel::push_atomic, "WbCc"}),
    [](const ::testing::TestParamInfo<KernelDatasetCase>& info) {
      std::string name =
          kernel_name(info.param.kernel) + "_" + info.param.dataset;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace ihtl
