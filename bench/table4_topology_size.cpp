// Table 4: topology data size — CSC representation vs iHTL graph, and the
// iHTL overhead percentage. Paper: 2-5% overhead for web graphs (one
// flipped block), 42-57% for the multi-block social graphs (replicated
// per-block index arrays).
#include "bench_common.h"
#include "core/ihtl_graph.h"

int main() {
  using namespace ihtl;
  using namespace ihtl::bench;
  print_header("table4", "Table 4",
               "Topology size: CSC vs iHTL graph (MiB) and overhead %");

  std::printf("%-8s %12s %12s %12s %8s\n", "Dataset", "CSC (MiB)",
              "iHTL (MiB)", "Overhead %", "#FB");
  for (const DatasetSpec& spec : all_datasets()) {
    const Graph g = make_dataset(spec, kBenchScale);
    const IhtlGraph ig = build_ihtl_graph(g, scaled_ihtl_config());
    const double csc = g.csc_topology_bytes() / (1024.0 * 1024.0);
    const double iht = ig.topology_bytes() / (1024.0 * 1024.0);
    std::printf("%-8s %12.2f %12.2f %12.0f %8zu\n", spec.name.c_str(), csc,
                iht, 100.0 * (iht - csc) / csc, ig.blocks().size());
  }
  std::printf("\n(paper: 2-5%% for single-block web graphs, 42-57%% for "
              "multi-block social graphs; overhead comes from replicating "
              "the index array per flipped block)\n");
  return 0;
}
