// Serving throughput of the micro-batching admission queue: queries/sec of
// concurrent single-source PPR requests through the Batcher at k = 1 (every
// request its own traversal) vs k = max_lanes with a coalescing deadline.
// This is the serving-side restatement of the spmm_batch result — k lanes
// share every edge fetch, so coalesced requests amortize the traversal —
// measured end to end through the admission queue, with the dispatch/
// promise overhead included and the TCP layer excluded.
//
//   ./bench/serve_throughput                         # TwtrMpi bench scale
//   ./bench/serve_throughput --min-speedup 1.2       # exit 1 unless k=8 wins
//   ./bench/serve_throughput --reps 3                # report the last rep
//   ./bench/serve_throughput --max-trace-overhead 2  # gate tracing cost
//
// With --reps > 1 each config reuses one Batcher across reps and calls
// reset_stats() between them, so the reported flush/occupancy counters
// describe exactly one rep (earlier versions accumulated across reps,
// which inflated flush counts and skewed occupancy).
//
// Results are merged into BENCH_serve.json under a top-level "serve"
// section; tools/bench_diff diffs them across commits.
#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "cli/args.h"
#include "serve/batcher.h"
#include "serve/session.h"
#include "telemetry/json.h"
#include "telemetry/report.h"
#include "telemetry/trace.h"

namespace {

using namespace ihtl;
using namespace ihtl::bench;
using serve::QueryOp;
using serve::QueryRequest;
using telemetry::JsonValue;

/// Loads an existing JSON snapshot to merge into; a missing or unreadable
/// file just starts a fresh document (the section is self-contained).
JsonValue load_snapshot(const std::string& path) {
  std::ifstream in(path);
  if (!in) return JsonValue::object();
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    JsonValue doc = JsonValue::parse(buf.str());
    if (doc.is_object()) return doc;
  } catch (const std::exception& e) {
    std::fprintf(stderr,
                 "serve_throughput: existing %s not parseable (%s); "
                 "rewriting\n",
                 path.c_str(), e.what());
  }
  return JsonValue::object();
}

struct ConfigResult {
  std::size_t max_lanes = 1;
  unsigned delay_us = 0;
  double seconds = 0.0;
  double qps = 0.0;
  double lane_occupancy = 0.0;
  std::uint64_t flushes = 0;
};

/// Runs `producers` threads, each submitting `queries` single-source PPR
/// requests with distinct sources (no two requests share a fingerprint, so
/// the batcher — not any cache — is what's measured). With `reps` > 1 the
/// same Batcher is driven `reps` times with reset_stats() between reps;
/// the returned numbers describe only the LAST rep, so warm-up reps do not
/// pollute the reported counters.
ConfigResult run_config(serve::GraphSession& session, std::size_t max_lanes,
                        unsigned delay_us, unsigned producers,
                        unsigned queries, unsigned iterations,
                        unsigned reps) {
  serve::BatcherOptions opt;
  opt.max_lanes = max_lanes;
  opt.max_delay = std::chrono::microseconds(delay_us);
  serve::Batcher batcher(
      opt, [&session](const serve::Batcher::Group& g) {
        std::vector<vid_t> sources;
        sources.reserve(g.lanes);
        for (const QueryRequest& r : g.requests) {
          sources.insert(sources.end(), r.sources.begin(), r.sources.end());
        }
        const std::vector<value_t> full = session.ppr_batch(
            sources, g.requests.front().iterations,
            g.requests.front().damping);
        const vid_t n = session.num_vertices();
        std::vector<std::vector<value_t>> out(g.requests.size());
        std::size_t off = 0;
        for (std::size_t i = 0; i < g.requests.size(); ++i) {
          const std::size_t k = g.requests[i].lanes();
          out[i].resize(static_cast<std::size_t>(n) * k);
          for (vid_t v = 0; v < n; ++v) {
            for (std::size_t lane = 0; lane < k; ++lane) {
              out[i][static_cast<std::size_t>(v) * k + lane] =
                  full[static_cast<std::size_t>(v) * g.lanes + off + lane];
            }
          }
          off += k;
        }
        return out;
      });

  const vid_t n = session.num_vertices();
  ConfigResult r;
  for (unsigned rep = 0; rep < std::max(1u, reps); ++rep) {
    // The counters must describe one rep: without the reset, flushes and
    // lane occupancy accumulate across reps and the last rep's report
    // silently includes every earlier rep's work.
    if (rep > 0) batcher.reset_stats();
    std::atomic<std::uint64_t> completed{0};
    Timer timer;
    std::vector<std::thread> threads;
    threads.reserve(producers);
    for (unsigned p = 0; p < producers; ++p) {
      threads.emplace_back([&, p] {
        for (unsigned q = 0; q < queries; ++q) {
          QueryRequest req;
          req.op = QueryOp::ppr;
          req.iterations = iterations;
          req.sources.push_back(
              static_cast<vid_t>((p * queries + q) % (n ? n : 1)));
          batcher.submit(req);
          completed.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (std::thread& t : threads) t.join();
    r.seconds = timer.elapsed_seconds();
    r.qps = r.seconds > 0
                ? static_cast<double>(completed.load()) / r.seconds
                : 0.0;
  }
  batcher.stop();
  r.max_lanes = max_lanes;
  r.delay_us = delay_us;
  r.lane_occupancy = batcher.mean_lane_occupancy();
  r.flushes = batcher.flushes();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args;
  args.add_flag("out", true,
                "snapshot to merge into (default BENCH_serve.json)");
  args.add_flag("dataset", true, "dataset name (default TwtrMpi)");
  args.add_flag("scale", true, "bench | large (default bench)");
  args.add_flag("producers", true, "concurrent client threads (default 8)");
  args.add_flag("queries", true, "queries per producer (default 24)");
  args.add_flag("iterations", true, "PPR iterations per query (default 5)");
  args.add_flag("max-lanes", true, "batched config lane count (default 8)");
  args.add_flag("delay-us", true,
                "batched config coalescing deadline (default 200)");
  args.add_flag("threads", true, "worker threads (default hw concurrency)");
  args.add_flag("reps", true,
                "repetitions per config with reset_stats between reps; the "
                "last rep is reported (default 1)");
  args.add_flag("min-speedup", true,
                "exit 1 unless the batched config reaches this queries/sec "
                "speedup over k=1 (default 0 = no check)");
  args.add_flag("max-trace-overhead", true,
                "also run the batched config with an active TraceBuffer and "
                "exit 1 if tracing costs more than this percent of "
                "queries/sec (default 0 = no check)");
  args.add_flag("help", false, "show usage");
  try {
    args.parse(argc, argv);
    if (args.has("help")) {
      std::printf("usage: serve_throughput [flags]\n%s",
                  args.help_text().c_str());
      return 0;
    }
    const std::string out_path =
        args.get_string("out", "BENCH_serve.json");
    const std::string name = args.get_string("dataset", "TwtrMpi");
    const std::string scale_name = args.get_string("scale", "bench");
    DatasetScale scale;
    if (scale_name == "large") {
      scale = kWallClockScale;
    } else if (scale_name == "bench") {
      scale = kBenchScale;
    } else {
      throw std::invalid_argument("--scale must be 'bench' or 'large'");
    }
    const auto producers = static_cast<unsigned>(
        std::max<std::int64_t>(1, args.get_int("producers", 8)));
    const auto queries = static_cast<unsigned>(
        std::max<std::int64_t>(1, args.get_int("queries", 24)));
    const auto iterations = static_cast<unsigned>(
        std::max<std::int64_t>(1, args.get_int("iterations", 5)));
    const auto max_lanes = static_cast<std::size_t>(
        std::max<std::int64_t>(2, args.get_int("max-lanes", 8)));
    const auto delay_us =
        static_cast<unsigned>(args.get_int("delay-us", 200));
    const auto reps = static_cast<unsigned>(
        std::max<std::int64_t>(1, args.get_int("reps", 1)));
    const double min_speedup = args.get_double("min-speedup", 0.0);
    const double max_trace_overhead =
        args.get_double("max-trace-overhead", 0.0);

    const std::string what =
        "queries/sec through the admission queue, k=1 vs k=" +
        std::to_string(max_lanes);
    print_header("serve_throughput", "micro-batched query serving",
                 what.c_str());

    const DatasetSpec& spec = dataset_spec(name);
    Graph g = load_bench_graph(spec, scale);
    print_dataset_line(g, spec);

    serve::SessionOptions sopt;
    sopt.ihtl = scale == DatasetScale::large ? hw_ihtl_config()
                                             : scaled_ihtl_config();
    sopt.threads =
        static_cast<std::size_t>(args.get_int("threads", 0));
    serve::GraphSession session(std::move(g), sopt);
    std::printf("# preprocessing %.1fs, %u hubs\n",
                session.preprocess_seconds(),
                session.ihtl_graph().num_hubs());
    std::printf("# %u producers x %u queries, PPR %u iteration(s)\n",
                producers, queries, iterations);
    std::printf("%-28s %12s %12s %10s %8s\n", "config", "seconds",
                "queries/s", "occupancy", "flushes");

    // k=1 first: every request flushes alone, the serving-layer analogue
    // of scalar SpMV. Then the batched config.
    const ConfigResult serial =
        run_config(session, 1, 0, producers, queries, iterations, reps);
    std::printf("%-28s %12.3f %12.1f %10.2f %8llu\n", "k=1 (no batching)",
                serial.seconds, serial.qps, serial.lane_occupancy,
                static_cast<unsigned long long>(serial.flushes));
    const ConfigResult batched =
        run_config(session, max_lanes, delay_us, producers, queries,
                   iterations, reps);
    std::ostringstream label;
    label << "k=" << max_lanes << " / " << delay_us << "us";
    std::printf("%-28s %12.3f %12.1f %10.2f %8llu\n",
                label.str().c_str(), batched.seconds, batched.qps,
                batched.lane_occupancy,
                static_cast<unsigned long long>(batched.flushes));

    // Tracing-overhead gate: the same batched config with a TraceBuffer
    // installed. Every flow/span/shard event the serve path emits is live
    // in this run, so the qps delta IS the end-to-end tracing cost.
    ConfigResult traced;
    double trace_overhead_pct = 0.0;
    if (max_trace_overhead > 0.0) {
      telemetry::TraceBuffer trace(0, std::size_t{1} << 16);
      telemetry::TraceBuffer* prev = telemetry::TraceBuffer::set_active(
          &trace);
      traced = run_config(session, max_lanes, delay_us, producers, queries,
                          iterations, reps);
      telemetry::TraceBuffer::set_active(prev);
      trace_overhead_pct =
          batched.qps > 0
              ? (1.0 - traced.qps / batched.qps) * 100.0
              : 0.0;
      std::ostringstream tlabel;
      tlabel << "k=" << max_lanes << " traced";
      std::printf("%-28s %12.3f %12.1f %10.2f %8llu\n",
                  tlabel.str().c_str(), traced.seconds, traced.qps,
                  traced.lane_occupancy,
                  static_cast<unsigned long long>(traced.flushes));
      std::printf("tracing overhead: %.2f%% of queries/sec "
                  "(%zu events recorded)\n",
                  trace_overhead_pct, trace.recorded());
    }

    const double speedup =
        serial.qps > 0 ? batched.qps / serial.qps : 0.0;
    std::printf("\nbatched speedup: %.2fx queries/sec "
                "(lane occupancy %.2f of %zu)\n",
                speedup, batched.lane_occupancy, max_lanes);

    JsonValue doc = load_snapshot(out_path);
    JsonValue section = JsonValue::object();
    JsonValue run = JsonValue::object();
    run.set("dataset", spec.name);
    run.set("scale", scale_name);
    run.set("producers", static_cast<std::uint64_t>(producers));
    run.set("queries_per_producer", static_cast<std::uint64_t>(queries));
    run.set("ppr_iterations", static_cast<std::uint64_t>(iterations));
    section.set("run", std::move(run));
    JsonValue gauges = JsonValue::object();
    gauges.set("serve.qps_k1", serial.qps);
    gauges.set("serve.qps_batched", batched.qps);
    gauges.set("serve.speedup", speedup);
    gauges.set("serve.lane_occupancy", batched.lane_occupancy);
    gauges.set("serve.k1.total_s", serial.seconds);
    gauges.set("serve.batched.total_s", batched.seconds);
    if (max_trace_overhead > 0.0) {
      gauges.set("serve.qps_traced", traced.qps);
      gauges.set("serve.trace_overhead_pct", trace_overhead_pct);
    }
    section.set("gauges", std::move(gauges));
    JsonValue counters = JsonValue::object();
    counters.set("serve.k1.flushes", serial.flushes);
    counters.set("serve.batched.flushes", batched.flushes);
    section.set("counters", std::move(counters));
    doc.set("serve", std::move(section));
    telemetry::write_json_file(doc, out_path);
    std::printf("wrote %s\n", out_path.c_str());

    if (min_speedup > 0.0 && speedup < min_speedup) {
      std::fprintf(stderr,
                   "serve_throughput: speedup %.2fx below required %.2fx\n",
                   speedup, min_speedup);
      return 1;
    }
    if (max_trace_overhead > 0.0 &&
        trace_overhead_pct > max_trace_overhead) {
      std::fprintf(stderr,
                   "serve_throughput: tracing overhead %.2f%% above the "
                   "allowed %.2f%%\n",
                   trace_overhead_pct, max_trace_overhead);
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "serve_throughput: %s\n", e.what());
    return 1;
  }
}
