// Table 5: iHTL graph statistics and PageRank execution breakdown —
// number of flipped blocks, VWEH share, minimum hub degree, share of edges
// in flipped blocks, share of time in the push phase, buffer-merge share,
// and "FB speed" (= %FB edges / %FB time; > 1 means flipped-block edges are
// processed faster than the graph average).
#include "apps/pagerank.h"
#include "bench_common.h"
#include "core/ihtl_spmv.h"

int main() {
  using namespace ihtl;
  using namespace ihtl::bench;
  print_header("table5", "Table 5",
               "iHTL graph statistics and execution breakdown (PageRank)");

  ThreadPool pool;
  const IhtlConfig cfg = hw_ihtl_config();
  constexpr unsigned kIterations = 10;

  std::printf("%-8s %5s %7s %9s %9s %9s %8s %9s\n", "Dataset", "#FB", "VWEH%",
              "MinHubDeg", "FBEdges%", "FBTime%", "Merge%", "FBSpeed");

  for (const DatasetSpec& spec : all_datasets()) {
    const Graph g = load_bench_graph(spec, kWallClockScale);
    const IhtlGraph ig = build_ihtl_graph(g, cfg);
    IhtlEngine<PlusMonoid> engine(ig, pool);

    // Run instrumented SpMV iterations (uniform x; the breakdown depends on
    // topology, not values).
    std::vector<value_t> x(g.num_vertices(), 1.0), y(g.num_vertices());
    IhtlPhaseTimes total;
    for (unsigned it = 0; it < kIterations; ++it) {
      engine.spmv(x, y);
      const IhtlPhaseTimes& t = engine.last_phase_times();
      total.reset_s += t.reset_s;
      total.push_s += t.push_s;
      total.merge_s += t.merge_s;
      total.pull_s += t.pull_s;
      std::swap(x, y);
    }

    const double fb_edges =
        100.0 * ig.flipped_edges() / static_cast<double>(ig.num_edges());
    const double fb_time = 100.0 * total.push_s / total.total();
    const double merge = 100.0 * total.merge_s / total.total();
    const double vweh =
        100.0 * ig.num_vweh() / static_cast<double>(ig.num_vertices());
    const double fb_speed = fb_time > 0 ? fb_edges / fb_time : 0.0;

    std::printf("%-8s %5zu %6.0f%% %9llu %8.0f%% %8.0f%% %7.2f%% %9.2f\n",
                spec.name.c_str(), ig.blocks().size(), vweh,
                static_cast<unsigned long long>(ig.min_hub_degree()), fb_edges,
                fb_time, merge, fb_speed);
    std::fflush(stdout);
  }
  std::printf("\n(paper: social graphs 45-67%% FB edges, FB speed 1.26-3.32, "
              "buffer merging <2.5%% of execution time)\n");
  return 0;
}
