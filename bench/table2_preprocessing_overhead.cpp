// Table 2: iHTL preprocessing overhead expressed as the number of PageRank
// iterations each baseline could run in the time iHTL spends preprocessing.
// Paper averages: GraphGrind 7.3, GraphIt 10.3, Galois 11.7, iHTL-itself
// 17.0 iterations.
#include "apps/pagerank.h"
#include "bench_common.h"
#include "core/ihtl_graph.h"
#include "parallel/timer.h"

int main() {
  using namespace ihtl;
  using namespace ihtl::bench;
  print_header("table2", "Table 2",
               "iHTL preprocessing cost in units of PageRank iterations of "
               "each baseline");

  ThreadPool pool;
  PageRankOptions opt;
  opt.iterations = 5;
  opt.ihtl = hw_ihtl_config();
  opt.segment_bytes = 2u << 20;

  std::printf("%-8s %10s %10s %10s %10s   %s\n", "Dataset", "PullGG",
              "PullGIt", "PullGal", "iHTL", "(preproc ms)");

  std::vector<double> col[4];
  for (const DatasetSpec& spec : all_datasets()) {
    const Graph g = load_bench_graph(spec, kWallClockScale);

    Timer prep;
    const IhtlGraph ig = build_ihtl_graph(g, opt.ihtl);
    const double preproc_s = prep.elapsed_seconds();

    const double gg =
        pagerank(pool, g, SpmvKernel::pull_edge_balanced, opt)
            .seconds_per_iteration;
    const double git =
        pagerank(pool, g, SpmvKernel::segmented_pull, opt)
            .seconds_per_iteration;
    const double gal =
        pagerank(pool, g, SpmvKernel::pull, opt).seconds_per_iteration;
    const double iht =
        pagerank_ihtl(pool, g, ig, opt).seconds_per_iteration;

    const double rows[4] = {preproc_s / gg, preproc_s / git, preproc_s / gal,
                            preproc_s / iht};
    std::printf("%-8s %10.1f %10.1f %10.1f %10.1f   (%.1f)\n",
                spec.name.c_str(), rows[0], rows[1], rows[2], rows[3],
                1e3 * preproc_s);
    for (int i = 0; i < 4; ++i) col[i].push_back(rows[i]);
  }

  std::printf("%-8s", "Average");
  for (int i = 0; i < 4; ++i) {
    double sum = 0;
    for (const double v : col[i]) sum += v;
    std::printf(" %10.1f", sum / col[i].size());
  }
  std::printf("\n\n(paper averages: 7.3 / 10.3 / 11.7 / 17.0 — preprocessing "
              "costs a handful of SpMV iterations and is amortized by "
              "storing the iHTL binary format)\n");
  return 0;
}
