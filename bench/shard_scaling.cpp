// Shard-count scaling of the destination-range ShardedEngine: time per
// SpMV iteration, cross-shard exchange traffic, and the per-shard edge
// imbalance gauge, swept over a shard-count list on one bench dataset.
//
// The structural claim under test: on hub-heavy (power-law) graphs the
// cross-shard traffic — the number of x-values a shard gathers from ranges
// it does not own, Σ_shard |remote_sources| — grows SUBLINEARLY in the
// shard count, because a source with out-degree d is mirrored into at most
// min(S, d) shards and hub-dominated edge mass concentrates on few
// sources. A uniform-degree graph has no such concentration, which is why
// shard counts are tuned per dataset (see EXPERIMENTS.md).
//
//   ./bench/shard_scaling                          # TwtrMpi, S = 1,2,4,8
//   ./bench/shard_scaling --shards 1,2,4,8,16 --dataset SK
//   ./bench/shard_scaling --max-traffic-ratio 2.0  # gate: per doubling of
//                                                  # S, traffic must grow
//                                                  # by less than 2x
//
// Results are merged into BENCH_shard.json under a top-level "shard"
// section; tools/bench_diff diffs them across commits.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "cli/args.h"
#include "core/ihtl_spmv.h"
#include "core/sharded_engine.h"
#include "telemetry/json.h"
#include "telemetry/report.h"

namespace {

using namespace ihtl;
using namespace ihtl::bench;
using telemetry::JsonValue;

JsonValue load_snapshot(const std::string& path) {
  std::ifstream in(path);
  if (!in) return JsonValue::object();
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    JsonValue doc = JsonValue::parse(buf.str());
    if (doc.is_object()) return doc;
  } catch (const std::exception& e) {
    std::fprintf(stderr,
                 "shard_scaling: existing %s not parseable (%s); rewriting\n",
                 path.c_str(), e.what());
  }
  return JsonValue::object();
}

std::vector<std::size_t> parse_shard_list(const std::string& s) {
  std::vector<std::size_t> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > start) {
      const long long v = std::stoll(s.substr(start, end - start));
      if (v < 1) throw std::invalid_argument("--shards entries must be >= 1");
      out.push_back(static_cast<std::size_t>(v));
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (out.empty()) throw std::invalid_argument("--shards list is empty");
  return out;
}

struct ShardRun {
  std::size_t shards = 0;
  double seconds_per_iter = 0.0;
  std::uint64_t exchange_values = 0;  ///< Σ_shard |remote_sources|, per call
  std::uint64_t exchange_bytes = 0;
  double imbalance = 0.0;  ///< max shard edges / mean shard edges
};

ShardRun run_one(ThreadPool& pool, const Graph& g, const IhtlGraph& ig,
                 PushPolicy policy, std::size_t shards, unsigned iterations) {
  ShardedEngine<PlusMonoid> engine(ig, pool, shards, policy);
  std::vector<value_t> x(g.num_vertices(), 1.0), y(g.num_vertices(), 0.0);
  engine.spmv(x, y);  // warm-up: mirrors touched, pool spun up
  Timer timer;
  for (unsigned i = 0; i < iterations; ++i) engine.spmv(x, y);
  ShardRun r;
  r.shards = shards;
  r.seconds_per_iter =
      iterations ? timer.elapsed_seconds() / iterations : 0.0;
  r.exchange_values = engine.exchange_values_per_call();
  r.exchange_bytes = r.exchange_values * sizeof(value_t);
  r.imbalance = engine.imbalance();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args;
  args.add_flag("out", true,
                "snapshot to merge into (default BENCH_shard.json)");
  args.add_flag("dataset", true, "dataset name (default TwtrMpi)");
  args.add_flag("shards", true,
                "comma-separated shard counts to sweep (default 1,2,4,8)");
  args.add_flag("iterations", true, "timed SpMV iterations per S (default 10)");
  args.add_flag("threads", true, "worker threads (default hw concurrency)");
  args.add_flag("buffer-bytes", true,
                "override the iHTL hub-buffer bytes (default 0 = bench "
                "config). Smaller buffers mean more flipped blocks — the "
                "atomic units of the destination partition — so this is "
                "the lever when the imbalance gauge shows one block "
                "dominating (see EXPERIMENTS.md)");
  args.add_flag("max-traffic-ratio", true,
                "exit 1 if cross-shard traffic grows by more than this "
                "factor across any doubling of S in the sweep (sublinearity "
                "gate; 0 = no check)");
  args.add_flag("help", false, "show usage");
  try {
    args.parse(argc, argv);
    if (args.has("help")) {
      std::printf("usage: shard_scaling [flags]\n%s",
                  args.help_text().c_str());
      return 0;
    }
    const std::string out_path = args.get_string("out", "BENCH_shard.json");
    const std::string name = args.get_string("dataset", "TwtrMpi");
    const std::vector<std::size_t> sweep =
        parse_shard_list(args.get_string("shards", "1,2,4,8"));
    const auto iterations = static_cast<unsigned>(
        std::max<std::int64_t>(1, args.get_int("iterations", 10)));
    const auto threads = static_cast<std::size_t>(
        std::max<std::int64_t>(0, args.get_int("threads", 0)));
    const double max_ratio = args.get_double("max-traffic-ratio", 0.0);
    const auto buffer_bytes = static_cast<std::size_t>(
        std::max<std::int64_t>(0, args.get_int("buffer-bytes", 0)));

    print_header("shard_scaling", "sharded engine scaling",
                 "time/iter + cross-shard exchange traffic vs shard count, "
                 "bench scale");

    const DatasetSpec& spec = dataset_spec(name);
    const Graph g = load_bench_graph(spec, kBenchScale);
    print_dataset_line(g, spec);
    IhtlConfig cfg = scaled_ihtl_config();
    if (buffer_bytes > 0) cfg.buffer_bytes = buffer_bytes;
    const IhtlGraph ig = build_ihtl_graph(g, cfg);
    std::printf("# %zu flipped blocks (buffer %zu bytes) — atomic partition "
                "units\n",
                ig.blocks().size(), cfg.buffer_bytes);
    ThreadPool pool(threads);

    std::printf("%8s %14s %16s %16s %10s\n", "shards", "ms/iter",
                "exchange vals", "exchange bytes", "imbalance");
    std::vector<ShardRun> runs;
    for (const std::size_t s : sweep) {
      const ShardRun r = run_one(pool, g, ig, cfg.push_policy, s, iterations);
      std::printf("%8zu %14.3f %16llu %16llu %10.3f\n", r.shards,
                  1e3 * r.seconds_per_iter,
                  static_cast<unsigned long long>(r.exchange_values),
                  static_cast<unsigned long long>(r.exchange_bytes),
                  r.imbalance);
      runs.push_back(r);
    }

    // Sublinearity: for each doubling present in the sweep, report (and
    // optionally gate) traffic(2S) / traffic(S). A linear-in-S exchange
    // would hold this at 2.0; hub concentration should pull it well below.
    double worst_ratio = 0.0;
    for (const ShardRun& hi : runs) {
      for (const ShardRun& lo : runs) {
        if (hi.shards != 2 * lo.shards || lo.exchange_values == 0) continue;
        const double ratio = static_cast<double>(hi.exchange_values) /
                             static_cast<double>(lo.exchange_values);
        std::printf("traffic ratio S=%zu -> S=%zu: %.3fx\n", lo.shards,
                    hi.shards, ratio);
        worst_ratio = std::max(worst_ratio, ratio);
      }
    }

    JsonValue doc = load_snapshot(out_path);
    JsonValue section = JsonValue::object();
    JsonValue run = JsonValue::object();
    run.set("dataset", spec.name);
    run.set("scale", "bench");
    run.set("iterations", static_cast<std::uint64_t>(iterations));
    run.set("threads", static_cast<std::uint64_t>(pool.size()));
    run.set("buffer_bytes", static_cast<std::uint64_t>(cfg.buffer_bytes));
    run.set("blocks", static_cast<std::uint64_t>(ig.blocks().size()));
    section.set("run", std::move(run));
    JsonValue gauges = JsonValue::object();
    for (const ShardRun& r : runs) {
      const std::string p = "shard.s" + std::to_string(r.shards);
      gauges.set(p + ".ms_per_iter", 1e3 * r.seconds_per_iter);
      gauges.set(p + ".imbalance", r.imbalance);
    }
    gauges.set("shard.worst_traffic_ratio", worst_ratio);
    section.set("gauges", std::move(gauges));
    JsonValue counters = JsonValue::object();
    for (const ShardRun& r : runs) {
      const std::string p = "shard.s" + std::to_string(r.shards);
      counters.set(p + ".exchange_values", r.exchange_values);
      counters.set(p + ".exchange_bytes", r.exchange_bytes);
    }
    section.set("counters", std::move(counters));
    doc.set("shard", std::move(section));
    telemetry::write_json_file(doc, out_path);
    std::printf("wrote %s\n", out_path.c_str());

    if (max_ratio > 0.0 && worst_ratio > max_ratio) {
      std::fprintf(stderr,
                   "shard_scaling: traffic ratio %.3fx exceeds allowed "
                   "%.3fx per doubling\n",
                   worst_ratio, max_ratio);
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "shard_scaling: %s\n", e.what());
    return 1;
  }
}
