// Structured perf suite: runs the iHTL SpMV engine and PageRank over the
// bench datasets and emits one machine-readable JSON snapshot
// (BENCH_spmv.json) combining per-phase span times, thread-pool
// chunk/steal counters, and cache-simulator miss counters per dataset.
// This file is the repo's perf trajectory: regenerate it after perf work
// and compare against the committed snapshot with `tools/bench_diff`.
//
//   ./bench/perf_suite                        # writes ./BENCH_spmv.json
//   ./bench/perf_suite --out new.json --iterations 20
//   ./tools/bench_diff BENCH_spmv.json new.json
#include <algorithm>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "apps/pagerank.h"
#include "bench_common.h"
#include "cachesim/trace_spmv.h"
#include "cli/args.h"
#include "core/ihtl_spmv.h"
#include "core/sharded_engine.h"
#include "telemetry/json.h"
#include "telemetry/metrics.h"
#include "telemetry/report.h"
#include "telemetry/trace.h"

namespace {

using namespace ihtl;
using namespace ihtl::bench;
using telemetry::JsonValue;

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > start) out.push_back(s.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

JsonValue run_dataset(const std::string& name, ThreadPool& pool,
                      unsigned iterations, PushPolicy policy,
                      std::size_t batch, std::size_t shards) {
  auto& reg = telemetry::MetricsRegistry::global();
  reg.clear();
  pool.reset_stats();

  const DatasetSpec& spec = dataset_spec(name);
  const Graph g = load_bench_graph(spec, kBenchScale);
  IhtlConfig cfg = scaled_ihtl_config();
  cfg.push_policy = policy;

  // Preprocessing spans ("preprocess/*") land in the global registry.
  const IhtlGraph ig = build_ihtl_graph(g, cfg);

  // SpMV phase breakdown ("spmv/*" spans) over `iterations` runs. With
  // --batch > 1 the k-lane engine path is profiled instead, so the same
  // span paths describe the batched traversal (spmv.batch_lanes in the
  // snapshot records which one ran).
  // --shards >= 2 profiles the destination-range ShardedEngine instead;
  // its "sharded/*" spans and "sharded.*" counters land in the same
  // registry so the snapshot records the exchange traffic alongside the
  // usual phase breakdown.
  std::optional<IhtlEngine<PlusMonoid>> engine;
  std::optional<ShardedEngine<PlusMonoid>> sharded;
  if (shards > 1) {
    sharded.emplace(ig, pool, shards, cfg.push_policy);
  } else {
    engine.emplace(ig, pool, cfg.push_policy);
  }
  std::vector<value_t> x(static_cast<std::size_t>(g.num_vertices()) * batch,
                         1.0);
  std::vector<value_t> y(x.size(), 0.0);
  for (unsigned i = 0; i < iterations; ++i) {
    if (batch > 1) {
      if (sharded) sharded->spmv_batch(x, y, batch);
      else engine->spmv_batch(x, y, batch);
    } else {
      if (sharded) sharded->spmv(x, y);
      else engine->spmv(x, y);
    }
  }

  // PageRank exercises the full app path (its engine also records into the
  // global registry, under the same spmv/* spans). Batched runs drive the
  // k-source personalized variant over sources 0..k-1.
  {
    telemetry::ScopedSpan span(reg, "pagerank");
    PageRankOptions opt;
    opt.iterations = iterations;
    opt.ihtl = cfg;
    opt.shards = shards;
    if (batch > 1) {
      std::vector<vid_t> sources(batch);
      for (std::size_t lane = 0; lane < batch; ++lane) {
        sources[lane] = static_cast<vid_t>(
            lane % std::max<vid_t>(1, g.num_vertices()));
      }
      pagerank_personalized_batch(pool, g, ig, sources, opt);
    } else {
      pagerank(pool, g, SpmvKernel::ihtl, opt);
    }
  }

  // Cache-model counters: replay iHTL and pull through the scaled
  // hierarchy so LLC-miss regressions are visible without PAPI.
  {
    CacheHierarchy caches = scaled_hierarchy();
    trace_ihtl_spmv(g, ig, caches);
    caches.export_metrics(reg, "cachesim.ihtl");
  }
  {
    CacheHierarchy caches = scaled_hierarchy();
    trace_pull_spmv(g, caches);
    caches.export_metrics(reg, "cachesim.pull");
  }

  pool.export_metrics(reg);

  JsonValue graph = JsonValue::object();
  graph.set("name", spec.name);
  graph.set("kind", spec.kind == DatasetKind::social ? "social" : "web");
  graph.set("vertices", static_cast<std::uint64_t>(g.num_vertices()));
  graph.set("edges", static_cast<std::uint64_t>(g.num_edges()));
  graph.set("hubs", static_cast<std::uint64_t>(ig.num_hubs()));
  graph.set("blocks", static_cast<std::uint64_t>(ig.blocks().size()));
  graph.set("flipped_edges", static_cast<std::uint64_t>(ig.flipped_edges()));

  JsonValue entry = JsonValue::object();
  entry.set("graph", std::move(graph));
  JsonValue snapshot = telemetry::metrics_to_json(reg);
  for (const auto& [key, value] : snapshot.entries()) entry.set(key, value);

  const auto spmv = shards > 1 ? reg.span("sharded") : reg.span("spmv");
  std::printf("%-8s %s %.3f ms/iter  llc misses (ihtl) %llu\n",
              spec.name.c_str(), shards > 1 ? "sharded" : "spmv",
              spmv ? 1e3 * spmv->avg_s() : 0.0,
              static_cast<unsigned long long>(
                  reg.counter_total("cachesim.ihtl.memory_accesses")));
  return entry;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args;
  args.add_flag("out", true, "output path (default BENCH_spmv.json)");
  args.add_flag("iterations", true, "SpMV/PageRank iterations (default 10)");
  args.add_flag("threads", true, "worker threads (default hw concurrency)");
  args.add_flag("datasets", true,
                "comma-separated dataset names (default TwtrMpi,SK,LvJrnl,WbCc)");
  args.add_flag("push-policy", true,
                "engine push/merge policy: auto | shared | single-owner | "
                "binned");
  args.add_flag("no-binned-section", false,
                "skip the extra per-dataset pass under --push-policy binned "
                "(the snapshot's \"binned\" section, gated by bench_diff)");
  args.add_flag("batch", true,
                "batch lanes k (default 1): profile the k-lane spmv_batch "
                "path and k-source personalized PageRank instead of the "
                "scalar engine");
  args.add_flag("shards", true,
                "destination-range shards S (default 1 = unsharded engine; "
                ">= 2 profiles the ShardedEngine and its exchange)");
  args.add_flag("trace-out", true,
                "write a Chrome trace_event JSON timeline of the whole "
                "suite here");
  args.add_flag("help", false, "show usage");
  try {
    args.parse(argc, argv);
    if (args.has("help")) {
      std::printf("usage: perf_suite [flags]\n%s", args.help_text().c_str());
      return 0;
    }
    const std::string out_path = args.get_string("out", "BENCH_spmv.json");
    const auto iterations =
        static_cast<unsigned>(args.get_int("iterations", 10));
    const std::vector<std::string> names =
        split_csv(args.get_string("datasets", "TwtrMpi,SK,LvJrnl,WbCc"));
    ThreadPool pool(static_cast<std::size_t>(args.get_int("threads", 0)));
    PushPolicy policy = PushPolicy::automatic;
    if (args.has("push-policy")) {
      const std::string pname = args.get_string("push-policy");
      const auto parsed = push_policy_from_name(pname);
      if (!parsed) {
        throw std::invalid_argument("unknown --push-policy: " + pname);
      }
      policy = *parsed;
    }
    const std::int64_t batch_arg = args.get_int("batch", 1);
    if (batch_arg < 1) throw std::invalid_argument("--batch must be >= 1");
    const auto batch = static_cast<std::size_t>(batch_arg);
    const std::int64_t shards_arg = args.get_int("shards", 1);
    if (shards_arg < 1) throw std::invalid_argument("--shards must be >= 1");
    const auto shards = static_cast<std::size_t>(shards_arg);

    print_header("perf_suite", "telemetry snapshot",
                 "per-phase spans + pool counters + cachesim misses, "
                 "bench scale");

    // Optional timeline of the whole suite; uninstalled before the buffer
    // dies so producers never see a dangling pointer.
    std::unique_ptr<telemetry::TraceBuffer> trace;
    const std::string trace_path = args.get_string("trace-out");
    if (!trace_path.empty()) {
      trace = std::make_unique<telemetry::TraceBuffer>(pool.size());
      telemetry::TraceBuffer::set_active(trace.get());
    }

    JsonValue datasets = JsonValue::array();
    for (const std::string& name : names) {
      datasets.push_back(
          run_dataset(name, pool, iterations, policy, batch, shards));
    }

    // The binned section: the same datasets re-profiled with the sparse
    // block forced onto the propagation-blocked scatter->accumulate path,
    // so the snapshot tracks both sparse kernels side by side (bench_diff
    // gates on this section being present).
    JsonValue binned = JsonValue::array();
    if (!args.has("no-binned-section")) {
      for (const std::string& name : names) {
        binned.push_back(run_dataset(name, pool, iterations,
                                     PushPolicy::binned, batch, shards));
      }
    }

    if (trace) {
      telemetry::TraceBuffer::set_active(nullptr);
      telemetry::write_json_file(trace->to_chrome_trace(), trace_path);
      std::printf("wrote trace to %s (%llu events, %llu dropped)\n",
                  trace_path.c_str(),
                  static_cast<unsigned long long>(trace->recorded()),
                  static_cast<unsigned long long>(trace->dropped()));
    }

    JsonValue doc = JsonValue::object();
    JsonValue run = JsonValue::object();
    run.set("suite", "perf_suite");
    run.set("scale", "bench");
    run.set("iterations", static_cast<std::uint64_t>(iterations));
    run.set("batch", static_cast<std::uint64_t>(batch));
    run.set("shards", static_cast<std::uint64_t>(shards));
    run.set("threads", static_cast<std::uint64_t>(pool.size()));
    doc.set("run", std::move(run));
    JsonValue config = JsonValue::object();
    const IhtlConfig cfg = scaled_ihtl_config();
    config.set("buffer_bytes", static_cast<std::uint64_t>(cfg.buffer_bytes));
    config.set("admission_ratio", cfg.admission_ratio);
    config.set("push_policy", push_policy_name(policy));
    doc.set("config", std::move(config));
    doc.set("datasets", std::move(datasets));
    if (!args.has("no-binned-section")) doc.set("binned", std::move(binned));

    telemetry::write_json_file(doc, out_path);
    std::printf("wrote %s (%zu datasets)\n", out_path.c_str(), names.size());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "perf_suite: %s\n", e.what());
    return 1;
  }
}
