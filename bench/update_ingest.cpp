// Streaming-update ingest throughput: updates/sec of seeded UpdateBatch
// streams through GraphSession::apply_update under the two threshold
// regimes — incremental patching (rebuild_threshold = 1e9, every batch
// patches the flipped/sparse blocks in place) vs forced full rebuild
// (rebuild_threshold = -1, every batch re-runs the iHTL builder). The gap
// is the price the rebuild threshold is trading against layout quality.
// Also measures the consuming workload: warm-start PageRank-Delta resumed
// from the pre-update ranks vs a cold start on the post-update graph.
//
//   ./bench/update_ingest                        # TwtrMpi bench scale
//   ./bench/update_ingest --min-speedup 2        # exit 1 unless patching wins
//
// Results are merged into BENCH_update.json under a top-level "update"
// section; tools/bench_diff diffs them across commits.
#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "apps/pagerank_delta.h"
#include "bench_common.h"
#include "cli/args.h"
#include "core/ihtl_update.h"
#include "parallel/thread_pool.h"
#include "serve/session.h"
#include "telemetry/json.h"
#include "telemetry/report.h"

namespace {

using namespace ihtl;
using namespace ihtl::bench;
using telemetry::JsonValue;

JsonValue load_snapshot(const std::string& path) {
  std::ifstream in(path);
  if (!in) return JsonValue::object();
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    JsonValue doc = JsonValue::parse(buf.str());
    if (doc.is_object()) return doc;
  } catch (const std::exception& e) {
    std::fprintf(stderr,
                 "update_ingest: existing %s not parseable (%s); rewriting\n",
                 path.c_str(), e.what());
  }
  return JsonValue::object();
}

/// Seeded batch stream: batch b inserts `edits` uniform edges and removes
/// batch b-1's inserts (guaranteed present, so every batch is valid and the
/// graph size stays bounded while both the insert and remove paths run).
std::vector<UpdateBatch> make_batches(vid_t n, unsigned batches,
                                      unsigned edits, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<UpdateBatch> out(batches);
  for (unsigned b = 0; b < batches; ++b) {
    out[b].insert.reserve(edits);
    for (unsigned i = 0; i < edits; ++i) {
      out[b].insert.push_back({static_cast<vid_t>(rng() % n),
                               static_cast<vid_t>(rng() % n)});
    }
    if (b > 0) out[b].remove = out[b - 1].insert;
  }
  return out;
}

struct RegimeResult {
  double seconds = 0.0;
  double updates_per_s = 0.0;
  std::uint64_t edits = 0;
  std::uint64_t rebuilds = 0;
};

RegimeResult run_regime(Graph g, const serve::SessionOptions& base,
                        double threshold,
                        const std::vector<UpdateBatch>& batches) {
  serve::SessionOptions opt = base;
  opt.update.rebuild_threshold = threshold;
  serve::GraphSession session(std::move(g), opt);
  RegimeResult r;
  Timer timer;
  for (const UpdateBatch& b : batches) {
    const UpdateStats st = session.apply_update(b);
    r.edits += st.inserted + st.removed;
    r.rebuilds += st.rebuilt;
  }
  r.seconds = timer.elapsed_seconds();
  r.updates_per_s =
      r.seconds > 0 ? static_cast<double>(r.edits) / r.seconds : 0.0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args;
  args.add_flag("out", true,
                "snapshot to merge into (default BENCH_update.json)");
  args.add_flag("dataset", true, "dataset name (default TwtrMpi)");
  args.add_flag("scale", true, "bench | large (default bench)");
  args.add_flag("batches", true, "update batches to stream (default 32)");
  args.add_flag("edits", true, "edge inserts per batch (default 64)");
  args.add_flag("seed", true, "batch stream seed (default 2026)");
  args.add_flag("threads", true, "worker threads (default hw concurrency)");
  args.add_flag("min-speedup", true,
                "exit 1 unless incremental ingest reaches this updates/sec "
                "speedup over forced rebuild (default 0 = no check)");
  args.add_flag("help", false, "show usage");
  try {
    args.parse(argc, argv);
    if (args.has("help")) {
      std::printf("usage: update_ingest [flags]\n%s",
                  args.help_text().c_str());
      return 0;
    }
    const std::string out_path =
        args.get_string("out", "BENCH_update.json");
    const std::string name = args.get_string("dataset", "TwtrMpi");
    const std::string scale_name = args.get_string("scale", "bench");
    DatasetScale scale;
    if (scale_name == "large") {
      scale = kWallClockScale;
    } else if (scale_name == "bench") {
      scale = kBenchScale;
    } else {
      throw std::invalid_argument("--scale must be 'bench' or 'large'");
    }
    const auto batches = static_cast<unsigned>(
        std::max<std::int64_t>(1, args.get_int("batches", 32)));
    const auto edits = static_cast<unsigned>(
        std::max<std::int64_t>(1, args.get_int("edits", 64)));
    const auto seed =
        static_cast<std::uint64_t>(args.get_int("seed", 2026));
    const auto threads = static_cast<std::size_t>(
        std::max<std::int64_t>(0, args.get_int("threads", 0)));
    const double min_speedup = args.get_double("min-speedup", 0.0);

    const std::string what =
        "updates/sec, incremental patching vs full rebuild, " +
        std::to_string(batches) + " batches x " + std::to_string(edits) +
        " edits";
    print_header("update_ingest", "streaming edge updates", what.c_str());

    const DatasetSpec& spec = dataset_spec(name);
    const Graph g = load_bench_graph(spec, scale);
    print_dataset_line(g, spec);

    const std::vector<UpdateBatch> stream =
        make_batches(g.num_vertices(), batches, edits, seed);

    serve::SessionOptions sopt;
    sopt.ihtl = scale == DatasetScale::large ? hw_ihtl_config()
                                             : scaled_ihtl_config();
    sopt.threads = threads;

    std::printf("%-28s %12s %12s %10s\n", "regime", "seconds",
                "updates/s", "rebuilds");
    const RegimeResult incremental =
        run_regime(g, sopt, 1e9, stream);
    std::printf("%-28s %12.3f %12.1f %10llu\n", "incremental (patch)",
                incremental.seconds, incremental.updates_per_s,
                static_cast<unsigned long long>(incremental.rebuilds));
    const RegimeResult rebuild = run_regime(g, sopt, -1.0, stream);
    std::printf("%-28s %12.3f %12.1f %10llu\n", "forced full rebuild",
                rebuild.seconds, rebuild.updates_per_s,
                static_cast<unsigned long long>(rebuild.rebuilds));
    const double speedup = rebuild.updates_per_s > 0
                               ? incremental.updates_per_s /
                                     rebuild.updates_per_s
                               : 0.0;
    std::printf("\nincremental ingest speedup: %.2fx updates/sec\n",
                speedup);

    // Consuming workload: resume PageRank-Delta from the pre-update ranks
    // on the fully-updated graph vs a cold uniform start.
    ThreadPool pool(threads ? threads
                            : std::max(1u,
                                       std::thread::hardware_concurrency()));
    const PageRankDeltaResult pre = pagerank_delta(pool, g);
    Graph g_final = g;
    for (const UpdateBatch& b : stream) g_final = apply_update(g_final, b);
    const PageRankDeltaResult cold = pagerank_delta(pool, g_final);
    const PageRankDeltaResult warm =
        pagerank_delta_from(pool, g_final, pre.ranks);
    const double active_ratio =
        cold.total_active > 0
            ? static_cast<double>(warm.total_active) /
                  static_cast<double>(cold.total_active)
            : 0.0;
    std::printf("pagerank-delta after ingest: cold %u rounds / %llu active, "
                "warm %u rounds / %llu active (%.2fx less frontier work)\n",
                cold.rounds,
                static_cast<unsigned long long>(cold.total_active),
                warm.rounds,
                static_cast<unsigned long long>(warm.total_active),
                active_ratio > 0 ? 1.0 / active_ratio : 0.0);

    JsonValue doc = load_snapshot(out_path);
    JsonValue section = JsonValue::object();
    JsonValue run = JsonValue::object();
    run.set("dataset", spec.name);
    run.set("scale", scale_name);
    run.set("batches", static_cast<std::uint64_t>(batches));
    run.set("edits_per_batch", static_cast<std::uint64_t>(edits));
    run.set("seed", seed);
    section.set("run", std::move(run));
    JsonValue gauges = JsonValue::object();
    gauges.set("update.updates_per_s_incremental",
               incremental.updates_per_s);
    gauges.set("update.updates_per_s_rebuild", rebuild.updates_per_s);
    gauges.set("update.speedup", speedup);
    gauges.set("update.incremental.total_s", incremental.seconds);
    gauges.set("update.rebuild.total_s", rebuild.seconds);
    gauges.set("update.pr_delta.cold_rounds",
               static_cast<double>(cold.rounds));
    gauges.set("update.pr_delta.warm_rounds",
               static_cast<double>(warm.rounds));
    gauges.set("update.pr_delta.active_ratio", active_ratio);
    section.set("gauges", std::move(gauges));
    JsonValue counters = JsonValue::object();
    counters.set("update.batches", static_cast<std::uint64_t>(batches));
    counters.set("update.edges_applied", incremental.edits);
    counters.set("update.incremental.rebuilds", incremental.rebuilds);
    counters.set("update.rebuild.rebuilds", rebuild.rebuilds);
    counters.set("update.pr_delta.cold_active", cold.total_active);
    counters.set("update.pr_delta.warm_active", warm.total_active);
    section.set("counters", std::move(counters));
    doc.set("update", std::move(section));
    telemetry::write_json_file(doc, out_path);
    std::printf("wrote %s\n", out_path.c_str());

    if (min_speedup > 0.0 && speedup < min_speedup) {
      std::fprintf(stderr,
                   "update_ingest: speedup %.2fx below required %.2fx\n",
                   speedup, min_speedup);
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "update_ingest: %s\n", e.what());
    return 1;
  }
}
