// Figure 9: asymmetricity (fraction of in-neighbours that are not
// out-neighbours) by in-degree bucket, contrasting a social network
// (TwtrMpi stand-in) with a web graph (UU stand-in). Expected shape:
// social in-hubs are nearly symmetric (asymmetricity -> 0 at high degree),
// web in-hubs are nearly fully asymmetric — which is why horizontal
// (out-hub) blocking cannot work on web graphs (Section 5.4).
#include "bench_common.h"
#include "graph/stats.h"

int main() {
  using namespace ihtl;
  using namespace ihtl::bench;
  print_header("fig9", "Figure 9",
               "Mean asymmetricity per in-degree bucket: social vs web");

  const char* names[] = {"TwtrMpi", "UU"};
  for (const char* name : names) {
    const Graph g = make_dataset(name, kBenchScale);
    print_dataset_line(g, dataset_spec(name));
    std::printf("%-14s %-12s %-10s %s\n", "degree range", "vertices",
                "asymmetry", "");
    const auto buckets = bucket_by_in_degree(g);
    for (std::size_t b = 0; b < buckets.size(); ++b) {
      if (buckets[b].empty()) continue;
      const eid_t lo = eid_t{1} << b;
      const eid_t hi = eid_t{2} << b;
      const double asym = mean_asymmetricity_in_degree_range(g, lo, hi);
      std::printf("[%6llu,%6llu) %-12zu %8.2f   ",
                  static_cast<unsigned long long>(lo),
                  static_cast<unsigned long long>(hi), buckets[b].size(),
                  asym);
      const int bars = static_cast<int>(asym * 40);
      for (int i = 0; i < bars; ++i) std::printf("#");
      std::printf("\n");
    }
    // Section 5.4's SK datapoint: vertices needed for 80% of edges.
    std::printf("vertices for 80%% of edges: %u (by in-degree) vs %u (by "
                "out-degree) of %u\n\n",
                vertices_needed_for_edge_share(g, 0.8, false),
                vertices_needed_for_edge_share(g, 0.8, true),
                g.num_vertices());
  }
  std::printf("(expected: the social graph's asymmetricity falls toward 0 "
              "for the top buckets, the web graph's stays near 1)\n");
  return 0;
}
