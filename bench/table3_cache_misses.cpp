// Table 3: memory accesses (loads+stores), L3 misses and L2 misses of one
// SpMV, pull vs iHTL, on all 10 datasets (cache simulator; counts in
// thousands at bench scale — the paper reports millions at full scale).
// Expected shape: iHTL issues MORE accesses (extra topology + buffer
// traffic) yet FEWER L3 and L2 misses.
#include "bench_common.h"
#include "cachesim/trace_spmv.h"
#include "core/ihtl_graph.h"

int main() {
  using namespace ihtl;
  using namespace ihtl::bench;
  print_header("table3", "Table 3",
               "Memory accesses / L3 misses / L2 misses (thousands), pull vs "
               "iHTL (cache simulator)");

  std::printf("%-8s | %10s %10s | %9s %9s | %9s %9s\n", "Dataset", "Acc.Pull",
              "Acc.iHTL", "L3.Pull", "L3.iHTL", "L2.Pull", "L2.iHTL");

  int l3_wins = 0, rows = 0;
  for (const DatasetSpec& spec : all_datasets()) {
    const Graph g = make_dataset(spec, kBenchScale);
    CacheHierarchy pull_caches = scaled_hierarchy();
    const TraceCounters pull = trace_pull_spmv(g, pull_caches);

    const IhtlGraph ig = build_ihtl_graph(g, scaled_ihtl_config());
    CacheHierarchy ihtl_caches = scaled_hierarchy();
    const TraceCounters ihtl = trace_ihtl_spmv(g, ig, ihtl_caches);

    std::printf("%-8s | %10.0f %10.0f | %9.0f %9.0f | %9.0f %9.0f\n",
                spec.name.c_str(), pull.memory_accesses / 1e3,
                ihtl.memory_accesses / 1e3, pull.l3_misses / 1e3,
                ihtl.l3_misses / 1e3, pull.l2_misses / 1e3,
                ihtl.l2_misses / 1e3);
    l3_wins += ihtl.l3_misses < pull.l3_misses;
    ++rows;
    std::fflush(stdout);
  }
  std::printf("\niHTL reduces L3 misses on %d/%d datasets "
              "(paper: 8/10, ties on UKDls/UKDmn)\n",
              l3_wins, rows);
  return 0;
}
