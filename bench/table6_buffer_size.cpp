// Table 6: effect of the per-thread hub-buffer size (= hubs per flipped
// block) on iHTL PageRank time. The paper sweeps L1 (32 KB), L2/2, L2
// (1 MB) and 2xL2 on its Xeon and finds L2 optimal: L1-sized buffers
// fragment the hubs into too many blocks, buffers beyond L2 push the random
// writes out of the private cache.
//
// This machine has a 48 KB L1d and a 2 MB private L2, so the sweep is
// 48 KB / 1 MB / 2 MB / 4 MB (wall clock, large-scale datasets). A second
// sub-table repeats the sweep on the cache SIMULATOR (scaled hierarchy,
// bench-scale datasets) where the L2-spill effect is exact by construction.
#include "apps/pagerank.h"
#include "bench_common.h"
#include "cachesim/trace_spmv.h"
#include "core/ihtl_spmv.h"

int main() {
  using namespace ihtl;
  using namespace ihtl::bench;
  print_header("table6", "Table 6",
               "iHTL PageRank per-iteration time vs hub-buffer size");

  ThreadPool pool;
  PageRankOptions opt;
  opt.iterations = 5;

  // The paper's Table 6 uses the 7 largest datasets.
  const char* datasets[] = {"TwtrMpi", "Frndstr", "WbCc", "UKDls",
                            "UU",      "UKDmn",   "ClWb9"};

  struct Sweep {
    const char* label;
    std::size_t bytes;
  };

  std::printf("A. Wall clock (ms/iteration), large-scale datasets\n");
  const Sweep hw_sweeps[] = {
      {"L1(48K)", 48u << 10},
      {"256K", 256u << 10},
      {"L2/2(1M)", 1u << 20},
      {"L2(2M)", 2u << 20},
      {"L2*2(4M)", 4u << 20},
  };
  std::printf("%-8s", "Dataset");
  for (const Sweep& s : hw_sweeps) std::printf(" %10s", s.label);
  std::printf("\n");
  for (const char* name : datasets) {
    const Graph g = load_bench_graph(name, kWallClockScale);
    std::printf("%-8s", name);
    for (const Sweep& s : hw_sweeps) {
      IhtlConfig cfg = hw_ihtl_config();
      cfg.buffer_bytes = s.bytes;
      opt.ihtl = cfg;
      const IhtlGraph ig = build_ihtl_graph(g, cfg);
      const double ms =
          1e3 * pagerank_ihtl(pool, g, ig, opt).seconds_per_iteration;
      std::printf(" %10.1f", ms);
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  std::printf("\nB. Simulated L2 misses (thousands) per SpMV, scaled "
              "hierarchy (L2 = 32 KB), bench-scale datasets\n");
  const Sweep sim_sweeps[] = {
      {"L1(1K)", 1u << 10},
      {"L2/2(16K)", 16u << 10},
      {"L2(32K)", 32u << 10},
      {"L2*2(64K)", 64u << 10},
  };
  std::printf("%-8s", "Dataset");
  for (const Sweep& s : sim_sweeps) std::printf(" %10s", s.label);
  std::printf("\n");
  for (const char* name : datasets) {
    const Graph g = make_dataset(name, kBenchScale);
    std::printf("%-8s", name);
    for (const Sweep& s : sim_sweeps) {
      IhtlConfig cfg = scaled_ihtl_config();
      cfg.buffer_bytes = s.bytes;
      const IhtlGraph ig = build_ihtl_graph(g, cfg);
      CacheHierarchy caches = scaled_hierarchy();
      const TraceCounters c = trace_ihtl_spmv(g, ig, caches);
      std::printf(" %10.0f", c.l2_misses / 1e3);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("\n(paper: the L2-sized buffer is the sweet spot; both halves "
              "should show the U-shape / knee around the L2 column)\n");
  return 0;
}
