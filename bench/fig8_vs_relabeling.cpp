// Figure 8: (left) per-iteration PageRank time of pull traversal on graphs
// relabeled by SlashBurn / GOrder / Rabbit-Order vs iHTL on the original
// order; (right) preprocessing time of each relabeling algorithm vs iHTL.
//
// Paper: iHTL is 1.3-1.5x faster than the best relabeled pull while
// preprocessing ~38x faster than Rabbit-Order, >200x than SlashBurn and
// >2000x than (sequential) GOrder.
//
// Two-part harness:
//   Part 1 (iteration time) runs at the LARGE wall-clock scale, where pull
//   actually thrashes this machine's L2. GOrder is infeasible at that
//   scale (its sequential cost on hub-heavy graphs is the paper's own
//   point), so its column is '-' there — mirroring the paper's blank cells.
//   Part 2 (preprocessing ratios) runs at bench scale; GOrder is included
//   for the bounded-out-degree web datasets where it terminates in
//   seconds, and skipped for social RMATs whose hubs make it explode.
#include "apps/pagerank.h"
#include "bench_common.h"
#include "graph/permute.h"
#include "parallel/timer.h"
#include "reorder/reorder.h"

int main() {
  using namespace ihtl;
  using namespace ihtl::bench;
  print_header("fig8", "Figure 8",
               "Pull-after-relabeling vs iHTL: iteration time and "
               "preprocessing time");

  ThreadPool pool;
  PageRankOptions opt;
  opt.iterations = 5;
  opt.ihtl = hw_ihtl_config();

  std::printf("Part 1 — per-iteration PageRank time (ms), large scale\n");
  std::printf("%-8s %10s %10s %10s\n", "Dataset", "SB.pull", "RO.pull",
              "iHTL");
  std::vector<double> sb_ratio, ro_ratio;
  for (const DatasetSpec& spec : all_datasets()) {
    const Graph g = load_bench_graph(spec, kWallClockScale);
    // Larger k keeps SlashBurn's round count (each a full-graph sweep)
    // bounded at this scale.
    SlashBurnParams sb_params;
    sb_params.k_fraction = 0.02;
    const double sb_it =
        1e3 * pagerank(pool, apply_permutation(g, slashburn_order(g, sb_params)),
                       SpmvKernel::pull, opt)
                  .seconds_per_iteration;
    const double ro_it =
        1e3 * pagerank(pool, apply_permutation(g, rabbit_order(g)),
                       SpmvKernel::pull, opt)
                  .seconds_per_iteration;
    const double ih_it =
        1e3 *
        pagerank(pool, g, SpmvKernel::ihtl, opt).seconds_per_iteration;
    std::printf("%-8s %10.1f %10.1f %10.1f\n", spec.name.c_str(), sb_it,
                ro_it, ih_it);
    std::fflush(stdout);
    sb_ratio.push_back(sb_it / ih_it);
    ro_ratio.push_back(ro_it / ih_it);
  }
  std::printf("iHTL speedup (geomean): vs SB %.2fx, vs RO %.2fx  "
              "(paper: 1.5x / 1.3x)\n\n",
              geomean(sb_ratio), geomean(ro_ratio));

  std::printf("Part 2 — preprocessing time (ms), bench scale\n");
  std::printf("%-8s %10s %10s %10s %10s\n", "Dataset", "SB", "GO", "RO",
              "iHTL");
  std::vector<double> sb_pre, go_pre, ro_pre;
  for (const DatasetSpec& spec : all_datasets()) {
    const Graph g = make_dataset(spec, kBenchScale);
    Timer t;
    (void)slashburn_order(g);
    const double sb_ms = t.elapsed_ms();
    double go_ms = -1;
    if (spec.kind == DatasetKind::web) {
      // Bounded out-degree keeps GOrder's sibling-score updates tractable.
      t.reset();
      (void)gorder(g);
      go_ms = t.elapsed_ms();
    }
    t.reset();
    (void)rabbit_order(g);
    const double ro_ms = t.elapsed_ms();
    t.reset();
    (void)build_ihtl_graph(g, hw_ihtl_config());
    const double ih_ms = t.elapsed_ms();

    std::printf("%-8s %10.1f", spec.name.c_str(), sb_ms);
    if (go_ms < 0) {
      std::printf(" %10s", "-");
    } else {
      std::printf(" %10.1f", go_ms);
    }
    std::printf(" %10.1f %10.1f\n", ro_ms, ih_ms);
    std::fflush(stdout);
    sb_pre.push_back(sb_ms / ih_ms);
    ro_pre.push_back(ro_ms / ih_ms);
    if (go_ms >= 0) go_pre.push_back(go_ms / ih_ms);
  }
  std::printf("preprocessing ratio vs iHTL (geomean): SB %.0fx, GO %.0fx "
              "(web only), RO %.0fx  (paper: >200x / >2000x / 38x)\n",
              geomean(sb_pre), geomean(go_pre), geomean(ro_pre));
  return 0;
}
