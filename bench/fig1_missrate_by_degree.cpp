// Figure 1: last-level-cache miss rate of SpMV conditional on the in-degree
// of the traversed (destination) vertex, for a social network (TwtrMpi
// stand-in) and a web graph (SK stand-in):
//   original order vs SlashBurn vs GOrder vs Rabbit-Order (pull traversal)
//   vs iHTL.
// Expected shape: reordering lowers miss rates for LOW-degree buckets but
// hubs stay near the worst case; iHTL collapses the hub buckets instead.
#include "bench_common.h"
#include "cachesim/trace_spmv.h"
#include "core/ihtl_graph.h"
#include "graph/permute.h"
#include "parallel/timer.h"
#include "reorder/reorder.h"

namespace {

using namespace ihtl;
using namespace ihtl::bench;

void profile_dataset(const std::string& name, bool include_gorder) {
  const Graph g = make_dataset(name, kBenchScale);
  print_dataset_line(g, dataset_spec(name));

  struct Row {
    std::string label;
    DegreeMissProfile profile;
  };
  std::vector<Row> rows;

  auto pull_profile = [&](const Graph& graph) {
    CacheHierarchy caches = scaled_hierarchy();
    DegreeMissProfile p;
    trace_pull_spmv(graph, caches, &p);
    return p;
  };

  rows.push_back({"original", pull_profile(g)});
  rows.push_back(
      {"SlashBurn", pull_profile(apply_permutation(g, slashburn_order(g)))});
  rows.push_back(
      {"RabbitOrder", pull_profile(apply_permutation(g, rabbit_order(g)))});
  if (include_gorder) {
    // Affordable only on bounded-out-degree (web) graphs at this scale;
    // GOrder's cost on hub-heavy social graphs is Figure 8's subject.
    rows.push_back(
        {"GOrder", pull_profile(apply_permutation(g, gorder(g)))});
  }
  rows.push_back(
      {"Degree", pull_profile(apply_permutation(g, degree_order(g)))});
  {
    CacheHierarchy caches = scaled_hierarchy();
    DegreeMissProfile p;
    const IhtlGraph ig = build_ihtl_graph(g, scaled_ihtl_config());
    trace_ihtl_spmv(g, ig, caches, &p);
    rows.push_back({"iHTL", std::move(p)});
  }

  std::size_t max_buckets = 0;
  for (const Row& r : rows) {
    max_buckets = std::max(max_buckets, r.profile.accesses.size());
  }
  std::printf("%-24s", "in-degree bucket:");
  for (std::size_t b = 0; b < max_buckets; ++b) {
    std::printf(" 2^%-4zu", b);
  }
  std::printf("\nLLC miss rate of the random accesses per bucket (%%):\n");
  for (const Row& r : rows) {
    std::printf("%-24s", r.label.c_str());
    for (std::size_t b = 0; b < max_buckets; ++b) {
      if (b < r.profile.accesses.size() && r.profile.accesses[b] > 0) {
        std::printf(" %5.1f ", 100.0 * r.profile.miss_rate(b));
      } else {
        std::printf("   -   ");
      }
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  print_header("fig1", "Figure 1",
               "LLC miss rate vs destination in-degree: pull on original / "
               "relabeled graphs vs iHTL (cache simulator)");
  profile_dataset("TwtrMpi", /*include_gorder=*/false);  // social panel
  profile_dataset("SK", /*include_gorder=*/true);        // web panel
  std::printf("(expected: relabeling helps low-degree buckets; the highest "
              "buckets stay high under every pull order and collapse only "
              "under iHTL)\n");
  return 0;
}
