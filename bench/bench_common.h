// Shared helpers for the table/figure reproduction harnesses.
//
// Every bench binary regenerates one table or figure of the paper on the
// synthetic Table 1 stand-in datasets (see DESIGN.md for the substitution
// rationale). Absolute numbers differ from the paper (simulated datasets,
// container hardware); the SHAPE — who wins, by what factor, where the
// crossovers sit — is the reproduction target, recorded in EXPERIMENTS.md.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include <filesystem>

#include "cachesim/cache.h"
#include "core/ihtl_config.h"
#include "gen/datasets.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "parallel/thread_pool.h"
#include "parallel/timer.h"

namespace ihtl::bench {

/// Scale used by the cache-simulator harnesses (~64 K vertices, ~1-2 M
/// edges per dataset; vertex data sized against scaled_hierarchy()).
inline constexpr DatasetScale kBenchScale = DatasetScale::bench;

/// Scale used by the wall-clock harnesses (~800 K vertices, ~20-30 M edges;
/// vertex data far exceeds this machine's 2 MB L2, so pull's random reads
/// miss the private caches the way the paper's datasets miss the LLC).
inline constexpr DatasetScale kWallClockScale = DatasetScale::large;

/// Generates a dataset once and caches it on disk (./bench_data); later
/// bench binaries just load the binary. Large-scale generation costs tens
/// of seconds per dataset, loading costs a fraction of that.
inline Graph load_bench_graph(const DatasetSpec& spec, DatasetScale scale) {
  namespace fs = std::filesystem;
  const char* suffix = scale == DatasetScale::large ? "large" : "bench";
  const fs::path dir = "bench_data";
  const fs::path path = dir / (spec.name + "_" + suffix + ".ihtlgr");
  if (fs::exists(path)) {
    // A stale or corrupt cache (e.g. written by a build with a different
    // container version or type widths) falls through to regeneration.
    try {
      return load_graph_binary(path.string());
    } catch (const std::exception& e) {
      std::fprintf(stderr,
                   "[bench_data] warning: cached %s unreadable (%s); "
                   "regenerating\n",
                   path.string().c_str(), e.what());
    }
  }
  Timer t;
  Graph g = make_dataset(spec, scale);
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr,
                 "[bench_data] warning: cannot create cache dir %s (%s); "
                 "this dataset will be regenerated on every run\n",
                 dir.string().c_str(), ec.message().c_str());
    return g;
  }
  try {
    save_graph_binary(g, path.string());
    std::fprintf(stderr, "[bench_data] generated %s in %.1fs (cached)\n",
                 path.string().c_str(), t.elapsed_seconds());
  } catch (const std::exception& e) {
    std::fprintf(stderr,
                 "[bench_data] warning: failed to cache %s (%s); "
                 "this dataset will be regenerated on every run\n",
                 path.string().c_str(), e.what());
  }
  return g;
}

inline Graph load_bench_graph(const std::string& name, DatasetScale scale) {
  return load_bench_graph(dataset_spec(name), scale);
}

/// iHTL configuration for the wall-clock harnesses on THIS machine.
/// The paper sizes the hub buffer to the private L2 (Section 4.7); our
/// table6 sweep lands lower — 256 KB, L2/8 — because at laptop scale the
/// streamed source/topology data competes for the same 2 MB L2 much more
/// than on the paper's billion-edge runs. The sweep (table6) is the
/// authority; this is its winner.
inline IhtlConfig hw_ihtl_config() {
  IhtlConfig cfg;
  cfg.buffer_bytes = 256u << 10;
  return cfg;
}

/// Reduced scale for the expensive relabeling comparisons (GOrder is
/// intentionally slow — that slowness is itself a Figure 8 result).
inline constexpr DatasetScale kReorderScale = DatasetScale::small;

/// Cache hierarchy for the simulator harnesses, scaled down from the
/// paper's Xeon Gold 6130 (32 KB / 1 MB / 22 MB) by ~32x so that the bench
/// datasets' vertex data (512 KB at bench scale) exceeds the LLC the way
/// the paper's billion-edge datasets exceed 22 MB.
inline CacheHierarchy scaled_hierarchy() {
  return CacheHierarchy({
      {.size_bytes = 1u << 10, .line_bytes = 64, .ways = 2},    // "L1" 1 KB
      {.size_bytes = 32u << 10, .line_bytes = 64, .ways = 8},   // "L2" 32 KB
      {.size_bytes = 256u << 10, .line_bytes = 64, .ways = 8},  // "L3" 256 KB
  });
}

/// iHTL configuration matched to scaled_hierarchy(): the per-thread hub
/// buffer equals the scaled L2, exactly as the paper sizes it to the real
/// L2 (Section 4.7).
inline IhtlConfig scaled_ihtl_config() {
  IhtlConfig cfg;
  cfg.buffer_bytes = 32u << 10;  // == scaled L2
  return cfg;
}

/// Prints the standard bench header.
inline void print_header(const char* id, const char* paper_ref,
                         const char* what) {
  std::printf("==============================================================="
              "=================\n");
  std::printf("%s — %s\n%s\n", id, paper_ref, what);
  std::printf("==============================================================="
              "=================\n");
}

inline void print_dataset_line(const Graph& g, const DatasetSpec& spec) {
  std::printf("# %-8s %-6s |V|=%-7u |E|=%llu\n", spec.name.c_str(),
              spec.kind == DatasetKind::social ? "social" : "web",
              g.num_vertices(), static_cast<unsigned long long>(g.num_edges()));
}

/// Geometric mean of ratios (the paper reports average speedups).
inline double geomean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double log_sum = 0.0;
  for (const double x : v) log_sum += std::log(x);
  return std::exp(log_sum / static_cast<double>(v.size()));
}

}  // namespace ihtl::bench
