// Figure 7: per-iteration PageRank execution time of push and pull
// traversals in the baseline "frameworks" vs iHTL, on all 10 datasets.
//
// Framework mapping (see apps/pagerank.h):
//   GraphGrind push -> destination-partitioned push
//   GraphIt push    -> atomic push
//   GraphGrind pull -> edge-balanced partitioned pull
//   GraphIt pull    -> Cagra-style segmented pull
//   Galois pull     -> plain pull
// Expected shape: pull beats push everywhere; iHTL beats every pull by
// ~1.5-2.4x in the paper (skewed datasets benefit most).
#include "apps/pagerank.h"
#include "bench_common.h"
#include "parallel/timer.h"

int main() {
  using namespace ihtl;
  using namespace ihtl::bench;
  print_header("fig7", "Figure 7",
               "Per-iteration PageRank time (ms): push/pull baselines vs iHTL");

  ThreadPool pool;
  PageRankOptions opt;
  opt.iterations = 5;
  opt.ihtl = hw_ihtl_config();
  opt.segment_bytes = 2u << 20;  // this machine's L2, as Cagra sizes segments

  const std::vector<SpmvKernel> kernels = {
      SpmvKernel::push_partitioned,  // GGrind push
      SpmvKernel::push_atomic,       // GraphIt push
      SpmvKernel::pull_edge_balanced,  // GGrind pull
      SpmvKernel::segmented_pull,    // GraphIt pull
      SpmvKernel::pull,              // Galois pull
      SpmvKernel::ihtl,
  };

  std::printf("%-8s %12s %12s %12s %12s %12s %12s\n", "Dataset", "PushGG",
              "PushGIt", "PullGG", "PullGIt", "PullGal", "iHTL");

  std::vector<std::vector<double>> ratios(kernels.size() - 1);
  for (const DatasetSpec& spec : all_datasets()) {
    const Graph g = load_bench_graph(spec, kWallClockScale);
    std::printf("%-8s", spec.name.c_str());
    std::vector<double> ms(kernels.size());
    for (std::size_t k = 0; k < kernels.size(); ++k) {
      const PageRankResult r = pagerank(pool, g, kernels[k], opt);
      ms[k] = 1e3 * r.seconds_per_iteration;
      std::printf(" %12.2f", ms[k]);
      std::fflush(stdout);
    }
    std::printf("\n");
    for (std::size_t k = 0; k + 1 < kernels.size(); ++k) {
      ratios[k].push_back(ms[k] / ms.back());
    }
  }

  std::printf("%-8s", "Speedup");
  for (const auto& r : ratios) std::printf(" %11.2fx", geomean(r));
  std::printf(" %11.2fx\n", 1.0);
  std::printf("\n(paper: push 4.8-9.5x slower, pull 1.5-2.4x slower than "
              "iHTL; single-core container mutes but should preserve the "
              "ordering)\n");
  return 0;
}
