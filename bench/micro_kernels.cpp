// Google-benchmark microbenchmarks of the individual SpMV kernels and the
// iHTL phases on one social and one web dataset. Complements the
// table/figure harnesses with statistically robust per-kernel timings.
#include <benchmark/benchmark.h>

#include "baselines/spmv.h"
#include "bench_common.h"
#include "core/ihtl_spmv.h"

namespace {

using namespace ihtl;
using namespace ihtl::bench;

struct Fixture {
  Graph g;
  IhtlGraph ig;
  std::vector<value_t> x, y;
  ThreadPool pool;

  explicit Fixture(const char* dataset)
      : g(make_dataset(dataset, DatasetScale::small)),
        ig(build_ihtl_graph(g, scaled_ihtl_config())),
        x(g.num_vertices(), 1.0),
        y(g.num_vertices(), 0.0) {}
};

Fixture& social() {
  static Fixture f("TwtrMpi");
  return f;
}
Fixture& web() {
  static Fixture f("SK");
  return f;
}

void report_edges(benchmark::State& state, const Graph& g) {
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_edges()));
}

template <Fixture& (*F)()>
void BM_Pull(benchmark::State& state) {
  Fixture& f = F();
  for (auto _ : state) {
    spmv_pull(f.pool, f.g, f.x, f.y);
    benchmark::DoNotOptimize(f.y.data());
  }
  report_edges(state, f.g);
}

template <Fixture& (*F)()>
void BM_PushAtomic(benchmark::State& state) {
  Fixture& f = F();
  for (auto _ : state) {
    spmv_push_atomic(f.pool, f.g, f.x, f.y);
    benchmark::DoNotOptimize(f.y.data());
  }
  report_edges(state, f.g);
}

template <Fixture& (*F)()>
void BM_PushBuffered(benchmark::State& state) {
  Fixture& f = F();
  for (auto _ : state) {
    spmv_push_buffered(f.pool, f.g, f.x, f.y);
    benchmark::DoNotOptimize(f.y.data());
  }
  report_edges(state, f.g);
}

template <Fixture& (*F)()>
void BM_Ihtl(benchmark::State& state) {
  Fixture& f = F();
  IhtlEngine<PlusMonoid> engine(f.ig, f.pool);
  for (auto _ : state) {
    engine.spmv(f.x, f.y);
    benchmark::DoNotOptimize(f.y.data());
  }
  report_edges(state, f.g);
}

template <Fixture& (*F)()>
void BM_IhtlBinned(benchmark::State& state) {
  Fixture& f = F();
  IhtlEngine<PlusMonoid> engine(f.ig, f.pool, PushPolicy::binned);
  for (auto _ : state) {
    engine.spmv(f.x, f.y);
    benchmark::DoNotOptimize(f.y.data());
  }
  report_edges(state, f.g);
}

template <Fixture& (*F)()>
void BM_IhtlPreprocessing(benchmark::State& state) {
  Fixture& f = F();
  for (auto _ : state) {
    IhtlGraph ig = build_ihtl_graph(f.g, scaled_ihtl_config());
    benchmark::DoNotOptimize(ig.num_hubs());
  }
  report_edges(state, f.g);
}

BENCHMARK(BM_Pull<social>)->Name("spmv_pull/social");
BENCHMARK(BM_Pull<web>)->Name("spmv_pull/web");
BENCHMARK(BM_PushAtomic<social>)->Name("spmv_push_atomic/social");
BENCHMARK(BM_PushAtomic<web>)->Name("spmv_push_atomic/web");
BENCHMARK(BM_PushBuffered<social>)->Name("spmv_push_buffered/social");
BENCHMARK(BM_PushBuffered<web>)->Name("spmv_push_buffered/web");
BENCHMARK(BM_Ihtl<social>)->Name("spmv_ihtl/social");
BENCHMARK(BM_Ihtl<web>)->Name("spmv_ihtl/web");
BENCHMARK(BM_IhtlBinned<social>)->Name("spmv_ihtl_binned/social");
BENCHMARK(BM_IhtlBinned<web>)->Name("spmv_ihtl_binned/web");
BENCHMARK(BM_IhtlPreprocessing<social>)->Name("ihtl_preprocess/social");
BENCHMARK(BM_IhtlPreprocessing<web>)->Name("ihtl_preprocess/web");

}  // namespace

BENCHMARK_MAIN();
