// Ablations beyond the paper's tables — design choices DESIGN.md calls out:
//   A. Flipped-block admission ratio (the paper fixes 0.5, Section 3.3):
//      sweep 0.25 / 0.50 / 0.75 and report block counts, FB edge share and
//      iteration time.
//   B. Fringe-vertex separation (Section 3.1): with it off, every non-hub
//      joins the push-source range, inflating block topology and push-phase
//      work exactly as the paper's two stated reasons predict.
#include "apps/pagerank.h"
#include "bench_common.h"
#include "core/ihtl_spmv.h"

int main() {
  using namespace ihtl;
  using namespace ihtl::bench;
  print_header("ablation", "(beyond paper)",
               "Design-choice ablations: admission ratio, fringe separation");

  ThreadPool pool;
  PageRankOptions opt;
  opt.iterations = 5;

  const char* datasets[] = {"TwtrMpi", "Frndstr", "SK", "ClWb9"};

  std::printf("A. Admission ratio sweep (Section 3.3 fixes 0.5)\n");
  std::printf("%-8s | %-22s | %-22s | %-22s\n", "Dataset", "ratio=0.25",
              "ratio=0.50", "ratio=0.75");
  std::printf("%-8s | %4s %7s %8s | %4s %7s %8s | %4s %7s %8s\n", "", "#FB",
              "FBedg%", "ms/iter", "#FB", "FBedg%", "ms/iter", "#FB",
              "FBedg%", "ms/iter");
  for (const char* name : datasets) {
    const Graph g = load_bench_graph(name, kWallClockScale);
    std::printf("%-8s |", name);
    for (const double ratio : {0.25, 0.5, 0.75}) {
      IhtlConfig cfg = hw_ihtl_config();
      cfg.admission_ratio = ratio;
      opt.ihtl = cfg;
      const IhtlGraph ig = build_ihtl_graph(g, cfg);
      const double ms =
          1e3 * pagerank_ihtl(pool, g, ig, opt).seconds_per_iteration;
      std::printf(" %4zu %6.0f%% %8.2f |", ig.blocks().size(),
                  100.0 * ig.flipped_edges() / ig.num_edges(), ms);
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  std::printf("\nB. Fringe separation on/off (Section 3.1)\n");
  std::printf("%-8s | %13s %13s | %13s %13s | %9s %9s\n", "Dataset",
              "topo.on MiB", "topo.off MiB", "ms.on", "ms.off", "FV%.on",
              "FV%.off");
  for (const char* name : datasets) {
    const Graph g = load_bench_graph(name, kWallClockScale);
    double ms[2], topo[2], fv[2];
    for (const bool separate : {true, false}) {
      IhtlConfig cfg = hw_ihtl_config();
      cfg.separate_fringe = separate;
      opt.ihtl = cfg;
      const IhtlGraph ig = build_ihtl_graph(g, cfg);
      const int i = separate ? 0 : 1;
      topo[i] = ig.topology_bytes() / (1024.0 * 1024.0);
      ms[i] = 1e3 * pagerank_ihtl(pool, g, ig, opt).seconds_per_iteration;
      fv[i] = 100.0 * ig.num_fv() / static_cast<double>(ig.num_vertices());
    }
    std::printf("%-8s | %13.2f %13.2f | %13.2f %13.2f | %8.0f%% %8.0f%%\n",
                name, topo[0], topo[1], ms[0], ms[1], fv[0], fv[1]);
    std::fflush(stdout);
  }
  std::printf("\n(expected: separation shrinks block topology and push time "
              "whenever FV%% is substantial; with FV%%=0 the two columns "
              "coincide)\n");
  return 0;
}
