// Batched multi-vector SpMV throughput: how much per-vector work one
// k-lane traversal buys over k scalar traversals. One edge visit feeds k
// lanes (a 64-byte line of doubles at k = 8), so the random-access cost of
// the topology and source rows is amortized k ways — the per-vector
// throughput curve over k is the payoff of the SpMM-style engine path.
//
//   ./bench/spmm_batch                          # TwtrMpi large, k in 1,2,4,8
//   ./bench/spmm_batch --ks 1,4 --scale bench   # CI smoke
//   ./bench/spmm_batch --min-speedup 1.3        # exit 1 unless max-k wins
//
// Results are merged into BENCH_spmv.json under a top-level "spmm_batch"
// section (existing perf_suite content is preserved).
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_common.h"
#include "cli/args.h"
#include "core/ihtl_spmv.h"
#include "telemetry/json.h"
#include "telemetry/report.h"

namespace {

using namespace ihtl;
using namespace ihtl::bench;
using telemetry::JsonValue;

std::vector<std::size_t> parse_ks(const std::string& s) {
  std::vector<std::size_t> ks;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > start) {
      const long v = std::stol(s.substr(start, end - start));
      if (v < 1) throw std::invalid_argument("--ks entries must be >= 1");
      ks.push_back(static_cast<std::size_t>(v));
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (ks.empty()) throw std::invalid_argument("--ks must name at least one k");
  return ks;
}

/// Loads an existing JSON snapshot to merge into; a missing or unreadable
/// file just starts a fresh document (the section is self-contained).
JsonValue load_snapshot(const std::string& path) {
  std::ifstream in(path);
  if (!in) return JsonValue::object();
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    JsonValue doc = JsonValue::parse(buf.str());
    if (doc.is_object()) return doc;
  } catch (const std::exception& e) {
    std::fprintf(stderr,
                 "spmm_batch: existing %s not parseable (%s); rewriting\n",
                 path.c_str(), e.what());
  }
  return JsonValue::object();
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args;
  args.add_flag("out", true, "snapshot to merge into (default BENCH_spmv.json)");
  args.add_flag("dataset", true, "dataset name (default TwtrMpi, RMAT social)");
  args.add_flag("scale", true, "bench | large (default large)");
  args.add_flag("iterations", true, "batched SpMV calls per k (default 10)");
  args.add_flag("threads", true, "worker threads (default hw concurrency)");
  args.add_flag("ks", true, "comma-separated lane counts (default 1,2,4,8)");
  args.add_flag("min-speedup", true,
                "exit 1 unless the largest k reaches this per-vector "
                "speedup over k=1 (default 0 = no check)");
  args.add_flag("help", false, "show usage");
  try {
    args.parse(argc, argv);
    if (args.has("help")) {
      std::printf("usage: spmm_batch [flags]\n%s", args.help_text().c_str());
      return 0;
    }
    const std::string out_path = args.get_string("out", "BENCH_spmv.json");
    const std::string name = args.get_string("dataset", "TwtrMpi");
    const std::string scale_name = args.get_string("scale", "large");
    DatasetScale scale;
    if (scale_name == "large") {
      scale = kWallClockScale;
    } else if (scale_name == "bench") {
      scale = kBenchScale;
    } else {
      throw std::invalid_argument("--scale must be 'bench' or 'large'");
    }
    const auto iterations = static_cast<unsigned>(
        std::max<std::int64_t>(1, args.get_int("iterations", 10)));
    const std::vector<std::size_t> ks = parse_ks(args.get_string("ks", "1,2,4,8"));
    const double min_speedup = args.get_double("min-speedup", 0.0);
    ThreadPool pool(static_cast<std::size_t>(args.get_int("threads", 0)));

    print_header("spmm_batch", "batched multi-vector SpMV",
                 "per-vector throughput of the k-lane engine path vs k=1");

    const DatasetSpec& spec = dataset_spec(name);
    const Graph g = load_bench_graph(spec, scale);
    print_dataset_line(g, spec);
    const IhtlConfig cfg = hw_ihtl_config();
    Timer prep;
    const IhtlGraph ig = build_ihtl_graph(g, cfg);
    std::printf("# preprocessing %.1fs, %zu block(s), %u hubs\n",
                prep.elapsed_seconds(), ig.blocks().size(), ig.num_hubs());

    IhtlEngine<PlusMonoid> engine(ig, pool, cfg.push_policy);
    const std::size_t n = ig.num_vertices();
    const double m = static_cast<double>(g.num_edges());

    std::printf("%6s %14s %14s %16s %12s\n", "k", "ms/batch-spmv",
                "ms/vector", "per-vec GTEPS", "vs k=1");
    JsonValue entries = JsonValue::array();
    double base_per_vector_s = 0.0;  // seconds per vector at k=1
    double max_k_speedup = 0.0;
    std::size_t max_k = 0;
    for (const std::size_t k : ks) {
      std::vector<value_t> x(n * k, n ? 1.0 / static_cast<double>(n) : 0.0);
      std::vector<value_t> y(x.size(), 0.0);
      engine.spmv_batch(x, y, k);  // warmup: first-touch + buffer build
      Timer t;
      for (unsigned i = 0; i < iterations; ++i) engine.spmv_batch(x, y, k);
      const double seconds = t.elapsed_seconds();
      const double per_call_s = seconds / iterations;
      const double per_vector_s = per_call_s / static_cast<double>(k);
      const double per_vector_gteps =
          per_vector_s > 0 ? m / per_vector_s / 1e9 : 0.0;
      if (k == 1) base_per_vector_s = per_vector_s;
      const double speedup = base_per_vector_s > 0 && per_vector_s > 0
                                 ? base_per_vector_s / per_vector_s
                                 : 0.0;
      if (k >= max_k) {
        max_k = k;
        max_k_speedup = speedup;
      }
      std::printf("%6zu %14.3f %14.3f %16.3f %11.2fx\n", k, 1e3 * per_call_s,
                  1e3 * per_vector_s, per_vector_gteps, speedup);

      JsonValue entry = JsonValue::object();
      entry.set("k", static_cast<std::uint64_t>(k));
      entry.set("seconds_per_call", per_call_s);
      entry.set("seconds_per_vector", per_vector_s);
      entry.set("per_vector_gteps", per_vector_gteps);
      if (speedup > 0) entry.set("per_vector_speedup_vs_k1", speedup);
      entries.push_back(std::move(entry));
    }

    JsonValue doc = load_snapshot(out_path);
    JsonValue section = JsonValue::object();
    section.set("dataset", spec.name);
    section.set("kind", spec.kind == DatasetKind::social ? "social" : "web");
    section.set("scale", scale_name);
    section.set("vertices", static_cast<std::uint64_t>(g.num_vertices()));
    section.set("edges", static_cast<std::uint64_t>(g.num_edges()));
    section.set("iterations", static_cast<std::uint64_t>(iterations));
    section.set("threads", static_cast<std::uint64_t>(pool.size()));
    section.set("buffer_bytes", static_cast<std::uint64_t>(cfg.buffer_bytes));
    section.set("entries", std::move(entries));
    doc.set("spmm_batch", std::move(section));
    telemetry::write_json_file(doc, out_path);
    std::printf("merged spmm_batch section into %s\n", out_path.c_str());

    if (min_speedup > 0.0) {
      if (max_k_speedup < min_speedup) {
        std::fprintf(stderr,
                     "spmm_batch: per-vector speedup at k=%zu is %.2fx, "
                     "below required %.2fx\n",
                     max_k, max_k_speedup, min_speedup);
        return 1;
      }
      std::printf("speedup check passed: %.2fx >= %.2fx at k=%zu\n",
                  max_k_speedup, min_speedup, max_k);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "spmm_batch: %s\n", e.what());
    return 1;
  }
}
