// Section 6 future-work extensions, measured:
//   A. Compressed topology: varint-gap coded blocks + sparse block — size
//      vs the raw iHTL graph and vs plain CSC (Table 4 revisited), and the
//      decode cost per SpMV iteration.
//   B. Secondary Rabbit-Order within VWEH/FV: does community order in the
//      sparse block speed up the pull phase?
//   C. Single-pass block counting (select_hubs_fast) vs the exact per-block
//      passes: preprocessing time and chosen block counts.
#include "apps/pagerank.h"
#include "bench_common.h"
#include "core/ihtl_compressed.h"
#include "core/ihtl_ext.h"
#include "core/ihtl_spmv.h"
#include "reorder/reorder.h"

int main() {
  using namespace ihtl;
  using namespace ihtl::bench;
  print_header("ext", "Section 6 (future work)",
               "Compression, Rabbit-ordered sparse block, fast block count");

  ThreadPool pool;
  const IhtlConfig cfg = hw_ihtl_config();
  const char* datasets[] = {"TwtrMpi", "Frndstr", "SK", "ClWb9"};
  constexpr unsigned kIters = 5;

  std::printf("A. Compressed topology (MiB) and SpMV time (ms/iter)\n");
  std::printf("%-8s %9s %9s %9s %12s %12s\n", "Dataset", "CSC", "iHTL",
              "iHTL.zip", "ms raw", "ms zip");
  for (const char* name : datasets) {
    const Graph g = load_bench_graph(name, kWallClockScale);
    const IhtlGraph ig = build_ihtl_graph(g, cfg);
    const CompressedIhtlGraph cig = CompressedIhtlGraph::from(ig);

    // Raw executor timing.
    IhtlEngine<PlusMonoid> engine(ig, pool);
    std::vector<value_t> x(g.num_vertices(), 1.0), y(g.num_vertices());
    Timer t;
    for (unsigned i = 0; i < kIters; ++i) engine.spmv(x, y);
    const double raw_ms = 1e3 * t.elapsed_seconds() / kIters;
    t.reset();
    for (unsigned i = 0; i < kIters; ++i) compressed_ihtl_spmv(pool, cig, x, y);
    const double zip_ms = 1e3 * t.elapsed_seconds() / kIters;

    std::printf("%-8s %9.1f %9.1f %9.1f %12.1f %12.1f\n", name,
                g.csc_topology_bytes() / (1024.0 * 1024.0),
                ig.topology_bytes() / (1024.0 * 1024.0),
                cig.topology_bytes() / (1024.0 * 1024.0), raw_ms, zip_ms);
    std::fflush(stdout);
  }

  std::printf("\nB. Rabbit-Order within VWEH/FV (sparse-block locality)\n");
  std::printf("%-8s %14s %14s\n", "Dataset", "original (ms)", "rabbit (ms)");
  PageRankOptions opt;
  opt.iterations = kIters;
  opt.ihtl = cfg;
  for (const char* name : datasets) {
    const Graph g = load_bench_graph(name, kWallClockScale);
    const HubSelection sel = select_hubs(g, cfg);
    const IhtlGraph plain = build_ihtl_graph(g, sel, cfg);
    const IhtlGraph ordered =
        build_ihtl_graph_ordered(g, sel, cfg, rabbit_order(g));
    const double plain_ms =
        1e3 * pagerank_ihtl(pool, g, plain, opt).seconds_per_iteration;
    const double ordered_ms =
        1e3 * pagerank_ihtl(pool, g, ordered, opt).seconds_per_iteration;
    std::printf("%-8s %14.1f %14.1f\n", name, plain_ms, ordered_ms);
    std::fflush(stdout);
  }

  std::printf("\nC. Hub selection: exact per-block passes vs single pass\n");
  std::printf("   (the single pass amortizes only when MANY blocks form, so "
              "both the default\n    1-2 block regime and a small-buffer "
              "many-block regime are measured)\n");
  std::printf("%-8s %10s | %9s %6s | %9s %6s\n", "Dataset", "buffer",
              "exact ms", "#FB", "fast ms", "#FB");
  for (const char* name : datasets) {
    const Graph g = load_bench_graph(name, kWallClockScale);
    for (const std::size_t buffer : {cfg.buffer_bytes, std::size_t{16} << 10}) {
      IhtlConfig c = cfg;
      c.buffer_bytes = buffer;
      Timer t;
      const HubSelection exact = select_hubs(g, c);
      const double exact_ms = t.elapsed_ms();
      t.reset();
      const HubSelection fast = select_hubs_fast(g, c);
      const double fast_ms = t.elapsed_ms();
      std::printf("%-8s %9zuK | %9.1f %6zu | %9.1f %6zu\n", name,
                  buffer >> 10, exact_ms, exact.num_blocks, fast_ms,
                  fast.num_blocks);
      std::fflush(stdout);
    }
  }
  std::printf("\n(expected: A. zip topology well below raw at a decode-time "
              "premium; B. rabbit order helps graphs whose sparse block "
              "dominates; C. in the 1-2 block regime the exact passes are "
              "already cheap and the single pass loses; with many small "
              "blocks the single pass amortizes — matching the paper's "
              "framing of it as an optimization for block-heavy graphs)\n");
  return 0;
}
