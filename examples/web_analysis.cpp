// Web-graph analysis: generate an SK-Domain-like crawl, inspect its hub
// asymmetry (Figure 9's contrast), preprocess to iHTL, persist the iHTL
// graph in its binary format, reload it and rank pages — the
// preprocess-once / run-many workflow of Section 4.2.
//
//   ./examples/web_analysis [vertices_log2]      (default 15)
#include <cstdio>
#include <cstdlib>

#include "apps/pagerank.h"
#include "core/ihtl_graph.h"
#include "gen/generators.h"
#include "graph/stats.h"
#include "parallel/thread_pool.h"
#include "parallel/timer.h"

int main(int argc, char** argv) {
  using namespace ihtl;
  WebParams params;
  params.num_vertices =
      vid_t{1} << (argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 15);
  params.hub_fraction = 0.002;
  params.hub_edge_share = 0.6;
  params.seed = 7;

  std::printf("generating web crawl graph (%u pages)...\n",
              params.num_vertices);
  const Graph g = build_eval_graph(params.num_vertices, web_edges(params));
  const GraphStats stats = compute_stats(g);
  std::printf("|V| = %u, |E| = %llu, max in-degree %llu, max out-degree %llu\n",
              stats.num_vertices,
              static_cast<unsigned long long>(stats.num_edges),
              static_cast<unsigned long long>(stats.max_in_degree),
              static_cast<unsigned long long>(stats.max_out_degree));

  // Figure 9: web in-hubs are asymmetric (popular pages don't link back).
  std::printf("asymmetricity of high in-degree vertices (>=256): %.2f\n",
              mean_asymmetricity_in_degree_range(g, 256, ~eid_t{0}));
  std::printf("asymmetricity of low in-degree vertices (1..16):  %.2f\n",
              mean_asymmetricity_in_degree_range(g, 1, 16));

  // Section 5.4's point: very few in-hubs capture most edges.
  std::printf("vertices needed for 80%% of edges: %u by in-degree, "
              "%u by out-degree\n",
              vertices_needed_for_edge_share(g, 0.8, false),
              vertices_needed_for_edge_share(g, 0.8, true));

  // Preprocess once, store the iHTL graph in its binary format.
  IhtlConfig cfg;
  cfg.buffer_bytes = 64u << 10;
  Timer prep;
  const IhtlGraph ig = build_ihtl_graph(g, cfg);
  std::printf("\niHTL preprocessing: %.1f ms — %zu flipped block(s), "
              "%u hubs holding %.0f%% of edges\n",
              prep.elapsed_ms(), ig.blocks().size(), ig.num_hubs(),
              100.0 * ig.flipped_edges() / ig.num_edges());
  const char* path = "web_analysis.ihtl";
  ig.save_binary(path);
  std::printf("saved iHTL graph to %s (%.1f MiB topology)\n", path,
              ig.topology_bytes() / (1024.0 * 1024.0));

  // Reload (amortized preprocessing) and rank.
  const IhtlGraph loaded = IhtlGraph::load_binary(path);
  ThreadPool pool;
  PageRankOptions opt;
  opt.iterations = 10;
  const PageRankResult pr = pagerank_ihtl(pool, g, loaded, opt);
  std::printf("PageRank on reloaded iHTL graph: %.2f ms/iteration\n",
              1e3 * pr.seconds_per_iteration);
  std::remove(path);
  return 0;
}
