// Beyond PageRank (the paper's future-work direction, Section 6): run
// Connected Components and unit-weight SSSP as min-monoid SpMV fixpoints on
// both the pull baseline and the iHTL executor, and verify they agree.
//
//   ./examples/components_and_paths [scale]     (default 14)
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "apps/analytics.h"
#include "gen/generators.h"
#include "parallel/thread_pool.h"

int main(int argc, char** argv) {
  using namespace ihtl;
  RmatParams params;
  params.scale = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 14;
  params.edge_factor = 8;
  params.seed = 11;

  const Graph g = build_eval_graph(vid_t{1} << params.scale, rmat_edges(params));
  std::printf("graph: %u vertices, %llu edges\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));

  ThreadPool pool;
  IhtlConfig cfg;
  cfg.buffer_bytes = 32u << 10;

  // --- Connected components (on the symmetric closure) -------------------
  const Graph sym = symmetrize(g);
  const AnalyticsResult cc_pull =
      connected_components(pool, sym, AnalyticsKernel::pull);
  const AnalyticsResult cc_ihtl =
      connected_components(pool, sym, AnalyticsKernel::ihtl, cfg);

  std::map<value_t, vid_t> comp_sizes;
  bool cc_match = true;
  for (vid_t v = 0; v < sym.num_vertices(); ++v) {
    ++comp_sizes[cc_pull.values[v]];
    cc_match &= cc_pull.values[v] == cc_ihtl.values[v];
  }
  vid_t largest = 0;
  for (const auto& [label, size] : comp_sizes) largest = std::max(largest, size);
  std::printf("\nconnected components: %zu components, largest %u vertices\n",
              comp_sizes.size(), largest);
  std::printf("  pull: %u rounds, %.1f ms | iHTL: %u rounds, %.1f ms | "
              "results %s\n",
              cc_pull.iterations, 1e3 * cc_pull.seconds, cc_ihtl.iterations,
              1e3 * cc_ihtl.seconds, cc_match ? "MATCH" : "MISMATCH");

  // --- Unit-weight SSSP from the highest in-degree vertex ----------------
  vid_t source = 0;
  for (vid_t v = 1; v < g.num_vertices(); ++v) {
    if (g.in_degree(v) > g.in_degree(source)) source = v;
  }
  const AnalyticsResult ss_pull =
      sssp_unit(pool, g, source, AnalyticsKernel::pull);
  const AnalyticsResult ss_ihtl =
      sssp_unit(pool, g, source, AnalyticsKernel::ihtl, cfg);

  vid_t reached = 0;
  double max_level = 0;
  bool ss_match = true;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (std::isfinite(ss_pull.values[v])) {
      ++reached;
      max_level = std::max(max_level, ss_pull.values[v]);
    }
    ss_match &= ss_pull.values[v] == ss_ihtl.values[v];
  }
  std::printf("\nSSSP from hub v%u: reached %u vertices, eccentricity %.0f\n",
              source, reached, max_level);
  std::printf("  pull: %u rounds, %.1f ms | iHTL: %u rounds, %.1f ms | "
              "results %s\n",
              ss_pull.iterations, 1e3 * ss_pull.seconds, ss_ihtl.iterations,
              1e3 * ss_ihtl.seconds, ss_match ? "MATCH" : "MISMATCH");
  return (cc_match && ss_match) ? 0 : 1;
}
