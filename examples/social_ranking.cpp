// Social-network ranking: generate a Twitter-like RMAT graph, run PageRank
// with the pull baseline and with iHTL, compare timings and verify the two
// agree, then report the top influencers.
//
//   ./examples/social_ranking [scale]     (default scale 15)
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <numeric>

#include "apps/pagerank.h"
#include "gen/generators.h"
#include "graph/stats.h"
#include "parallel/thread_pool.h"

int main(int argc, char** argv) {
  using namespace ihtl;
  RmatParams params;
  params.scale = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 15;
  params.edge_factor = 16;
  params.seed = 42;

  std::printf("generating RMAT social graph (scale %u)...\n", params.scale);
  const Graph g = build_eval_graph(vid_t{1} << params.scale, rmat_edges(params));
  const GraphStats stats = compute_stats(g);
  std::printf("|V| = %u, |E| = %llu, max in-degree %llu, "
              "top-1%% vertices hold %.0f%% of edges\n",
              stats.num_vertices,
              static_cast<unsigned long long>(stats.num_edges),
              static_cast<unsigned long long>(stats.max_in_degree),
              100.0 * stats.top1pct_in_edge_share);

  ThreadPool pool;
  PageRankOptions opt;
  opt.iterations = 10;
  // Hub buffer sized for a laptop-class L2 slice; small enough that the
  // flipped blocks stay cache-resident at this graph scale.
  opt.ihtl.buffer_bytes = 64u << 10;

  const PageRankResult pull = pagerank(pool, g, SpmvKernel::pull, opt);
  const PageRankResult ihtl_pr = pagerank(pool, g, SpmvKernel::ihtl, opt);

  std::printf("\nPageRank, %u iterations:\n", opt.iterations);
  std::printf("  pull : %8.2f ms/iteration\n",
              1e3 * pull.seconds_per_iteration);
  std::printf("  iHTL : %8.2f ms/iteration  (preprocessing %.1f ms, "
              "= %.1f pull iterations)\n",
              1e3 * ihtl_pr.seconds_per_iteration,
              1e3 * ihtl_pr.preprocessing_seconds,
              ihtl_pr.preprocessing_seconds / pull.seconds_per_iteration);
  std::printf("  speedup: %.2fx\n",
              pull.seconds_per_iteration / ihtl_pr.seconds_per_iteration);

  // The two kernels compute the same ranks.
  double max_diff = 0.0;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    max_diff = std::max(max_diff, std::abs(pull.ranks[v] - ihtl_pr.ranks[v]));
  }
  std::printf("  max |pull - iHTL| rank difference: %.3g\n", max_diff);

  std::vector<vid_t> top(g.num_vertices());
  std::iota(top.begin(), top.end(), vid_t{0});
  std::partial_sort(top.begin(), top.begin() + 10, top.end(),
                    [&](vid_t a, vid_t b) {
                      return ihtl_pr.ranks[a] > ihtl_pr.ranks[b];
                    });
  std::printf("\ntop influencers (vertex: rank, in-degree):\n");
  for (int i = 0; i < 10; ++i) {
    std::printf("  #%-2d v%-8u %.3e  %llu\n", i + 1, top[i],
                ihtl_pr.ranks[top[i]],
                static_cast<unsigned long long>(g.in_degree(top[i])));
  }
  return 0;
}
