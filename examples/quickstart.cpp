// Quickstart: build a small graph, preprocess it into an iHTL graph, and
// run one SpMV — the 8-vertex example of the paper's Figure 2.
//
//   ./examples/quickstart
#include <cstdio>

#include "core/ihtl_graph.h"
#include "core/ihtl_spmv.h"
#include "graph/graph.h"
#include "parallel/thread_pool.h"

int main() {
  using namespace ihtl;

  // The example graph of Figure 2(a): vertices 3 and 7 are the in-hubs.
  // (Paper IDs are 1-based; ours are 0-based, so hubs are 2 and 6.)
  const std::vector<Edge> edges = {
      {0, 2}, {1, 2}, {1, 6}, {2, 5}, {3, 6}, {4, 2}, {4, 6},
      {5, 0}, {5, 2}, {5, 3}, {5, 7}, {6, 1}, {6, 4}, {7, 2},
  };
  const Graph g = build_graph(8, edges, {.sort_neighbors = true});
  std::printf("graph: %u vertices, %llu edges\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));

  // Preprocess: with a buffer budget of 2 vertex values per flipped block,
  // iHTL picks the two highest in-degree vertices as in-hubs.
  IhtlConfig cfg;
  cfg.buffer_bytes = 2 * sizeof(value_t);  // effective cache size 2 (Fig. 2c)
  cfg.min_hub_in_degree = 3;
  const IhtlGraph ig = build_ihtl_graph(g, cfg);

  std::printf("iHTL graph: %u hubs, %u VWEH, %u FV, %zu flipped block(s)\n",
              ig.num_hubs(), ig.num_vweh(), ig.num_fv(), ig.blocks().size());
  std::printf("flipped-block edges: %llu of %llu (%.0f%%)\n",
              static_cast<unsigned long long>(ig.flipped_edges()),
              static_cast<unsigned long long>(ig.num_edges()),
              100.0 * ig.flipped_edges() / ig.num_edges());
  for (vid_t h = 0; h < ig.num_hubs(); ++h) {
    std::printf("  hub new-ID %u = original vertex %u (in-degree %llu)\n", h,
                ig.new_to_old()[h],
                static_cast<unsigned long long>(g.in_degree(ig.new_to_old()[h])));
  }

  // One SpMV: y[v] = sum of x[u] over in-neighbours u (Algorithm 1
  // semantics, executed as Algorithm 3: push flipped blocks, merge, pull).
  ThreadPool pool;
  std::vector<value_t> x(g.num_vertices()), y(g.num_vertices());
  for (vid_t v = 0; v < g.num_vertices(); ++v) x[v] = 1.0 + v;
  ihtl_spmv_once(pool, ig, x, y);

  std::printf("\nSpMV result (x[v] = v+1):\n");
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    std::printf("  y[%u] = %.0f\n", v, y[v]);
  }
  return 0;
}
