// Traversal zoo: one graph, every traversal philosophy the paper discusses.
//   - frontier BFS choosing push OR pull per step (Section 5.2 family);
//   - iHTL choosing push or pull per VERTEX CLASS in one sweep (the paper);
//   - degree-differentiated triangle counting (Section 5.1's AYZ lineage);
//   - HITS, two pull directions accelerated by two iHTL graphs.
//
//   ./examples/traversal_zoo [scale]     (default 15)
#include <cstdio>
#include <cstdlib>

#include "apps/analytics.h"
#include "apps/bfs.h"
#include "apps/hits.h"
#include "apps/pagerank.h"
#include "apps/triangle_count.h"
#include "gen/generators.h"
#include "parallel/thread_pool.h"

int main(int argc, char** argv) {
  using namespace ihtl;
  RmatParams params;
  params.scale = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 15;
  params.edge_factor = 12;
  params.seed = 99;
  const Graph g = build_eval_graph(vid_t{1} << params.scale, rmat_edges(params));
  std::printf("graph: %u vertices, %llu edges\n\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));
  ThreadPool pool;

  // 1. Frontier BFS: one direction per STEP.
  vid_t hub = 0;
  for (vid_t v = 1; v < g.num_vertices(); ++v) {
    if (g.out_degree(v) > g.out_degree(hub)) hub = v;
  }
  for (const auto& [mode, name] :
       {std::pair{BfsMode::top_down, "top-down"},
        std::pair{BfsMode::direction_optimizing, "direction-opt"}}) {
    BfsOptions opt;
    opt.mode = mode;
    const BfsResult r = bfs(pool, g, hub, opt);
    vid_t reached = 0;
    for (const auto l : r.level) reached += l != BfsResult::kUnreached;
    std::printf("bfs[%-13s] reached %u in %u steps (%u bottom-up), %.1f ms\n",
                name, reached, r.steps, r.bottom_up_steps, 1e3 * r.seconds);
  }

  // 2. iHTL PageRank: one direction per VERTEX CLASS, convergence-based.
  PageRankOptions pr_opt;
  pr_opt.iterations = 100;
  pr_opt.tolerance = 1e-9;
  pr_opt.ihtl.buffer_bytes = 64u << 10;
  const PageRankResult pr = pagerank(pool, g, SpmvKernel::ihtl, pr_opt);
  std::printf("\npagerank[ihtl] converged in %u iterations, %.2f ms each\n",
              pr.iterations_run, 1e3 * pr.seconds_per_iteration);

  // 3. Triangles with hub bitmaps.
  const Graph sym = symmetrize(g);
  const TriangleCountResult tc = count_triangles(pool, sym);
  std::printf("triangles: %llu (%u hub bitmaps), %.1f ms\n",
              static_cast<unsigned long long>(tc.triangles), tc.hub_vertices,
              1e3 * tc.seconds);

  // 4. HITS on two iHTL graphs (forward + reversed).
  HitsOptions h_opt;
  h_opt.iterations = 10;
  h_opt.kernel = HitsKernel::ihtl;
  h_opt.ihtl.buffer_bytes = 64u << 10;
  const HitsResult h = hits(pool, g, h_opt);
  std::printf("hits[ihtl]: %.2f ms/iteration (two iHTL graphs built in "
              "%.1f ms)\n",
              1e3 * h.seconds_per_iteration, 1e3 * h.preprocessing_seconds);
  return 0;
}
