// CLI: long-lived query daemon — load a graph once, answer ppr / bfs /
// spmv queries over TCP with micro-batching and a result cache. See
// `ihtl_serve --help` and src/serve/protocol.h for the wire format.
#include "cli/commands.h"

int main(int argc, char** argv) { return ihtl::cmd_serve(argc, argv); }
