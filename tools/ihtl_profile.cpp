// CLI: per-phase hardware-counter profile of the iHTL SpMV against the
// pull-only baseline (the paper's Table 3). See `ihtl_profile --help`.
#include "cli/commands.h"

int main(int argc, char** argv) { return ihtl::cmd_profile(argc, argv); }
