// CLI: convert edge lists / binary graphs into the ihtl container formats.
// See `ihtl_convert --help`.
#include "cli/commands.h"

int main(int argc, char** argv) { return ihtl::cmd_convert(argc, argv); }
