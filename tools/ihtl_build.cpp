// CLI: preprocess a graph into its iHTL form (alias of `ihtl_convert` —
// "build" matches the paper's preprocessing vocabulary and the docs; both
// binaries run the same command). See `ihtl_build --help`.
#include "cli/commands.h"

int main(int argc, char** argv) { return ihtl::cmd_convert(argc, argv); }
