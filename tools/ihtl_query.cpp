// CLI: client for ihtl_serve — single queries, stats, or a seeded
// concurrent mixed workload with cache-hit assertions. See
// `ihtl_query --help`.
#include "cli/commands.h"

int main(int argc, char** argv) { return ihtl::cmd_query(argc, argv); }
