// CLI: run an analytic (pagerank / cc / sssp / bfs / hits / triangles) on a
// graph with a chosen traversal kernel. See `ihtl_run --help`.
#include "cli/commands.h"

int main(int argc, char** argv) { return ihtl::cmd_run(argc, argv); }
