// CLI: live operational view of a running ihtl_serve — polls the
// `metrics` op and renders per-op phase latencies, cache/batcher state,
// watchdog trips, and per-shard load. See `ihtl_top --help`.
#include "cli/commands.h"

int main(int argc, char** argv) { return ihtl::cmd_top(argc, argv); }
