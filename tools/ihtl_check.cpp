// ihtl_check: differential-oracle CLI.
//
// Default mode walks a seeded configuration lattice (--points points under
// --seed) and exits 0 iff every point's iHTL results match the serial
// reference. On the first failing point it prints the replay command,
// greedily minimizes the case, prints a self-contained repro snippet
// (optionally written to --repro-out), and exits 1. `--replay SEED` re-runs
// exactly one lattice point; `--inject-fault` swaps in the deliberately
// broken drop-merge engine to demonstrate the detect/replay/minimize path.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "check/diff_runner.h"
#include "check/oracle.h"
#include "check/serve_check.h"
#include "check/shard_check.h"
#include "check/update_check.h"
#include "cli/args.h"
#include "telemetry/metrics.h"
#include "telemetry/report.h"

namespace {

using namespace ihtl;
using namespace ihtl::check;

void write_metrics(const std::string& path, std::uint64_t base_seed,
                   std::size_t points, bool ok) {
  auto& reg = telemetry::MetricsRegistry::global();
  telemetry::JsonValue run = telemetry::JsonValue::object();
  run.set("tool", "ihtl_check");
  run.set("seed", base_seed);
  run.set("points", static_cast<std::uint64_t>(points));
  run.set("ok", ok);
  const telemetry::JsonValue doc = telemetry::make_report(
      reg, std::move(run), telemetry::JsonValue(), telemetry::JsonValue());
  telemetry::write_json_file(doc, path);
}

int handle_failure(const CaseResult& failure, const DiffOptions& opt,
                   bool minimize, const std::string& repro_out) {
  std::cerr << "FAIL: " << failure.params.describe() << "\n"
            << "      " << failure.report.summary() << "\n"
            << "Replay with: ihtl_check --replay " << failure.params.seed;
  // Forced flags are part of the point's identity — echo them so the replay
  // command reproduces the exact run.
  if (opt.force_workload) {
    std::cerr << " --workload " << workload_name(*opt.force_workload);
  }
  if (opt.force_threads > 0) std::cerr << " --threads " << opt.force_threads;
  if (opt.force_push_policy) {
    std::cerr << " --push-policy " << push_policy_name(*opt.force_push_policy);
  }
  if (opt.force_batch) std::cerr << " --batch " << *opt.force_batch;
  if (opt.force_shards) std::cerr << " --shards " << *opt.force_shards;
  if (opt.engine_override) std::cerr << " --inject-fault";
  if (opt.inject_bin_drop) std::cerr << " --inject-bin-drop";
  std::cerr << "\n";
  if (!minimize) return 1;

  const MinimizedCase m = minimize_case(failure, opt);
  if (!m.reproduced) {
    std::cerr << "warning: failure did not reproduce from regenerated "
                 "inputs; skipping minimization (nondeterministic bug?)\n";
    return 1;
  }
  std::cerr << "Minimized to " << m.num_vertices << " vertices / "
            << m.edges.size() << " edges in " << m.steps
            << " oracle evaluations.\n";
  const std::string snippet = repro_snippet(m);
  std::cout << "\n" << snippet;
  if (!repro_out.empty()) {
    std::ofstream out(repro_out);
    if (!out) {
      std::cerr << "error: cannot open " << repro_out << " for writing\n";
    } else {
      out << snippet;
      std::cerr << "Repro snippet written to " << repro_out << "\n";
    }
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args;
  args.add_flag("points", true, "number of lattice points to run (64)");
  args.add_flag("seed", true, "base seed of the lattice (2026)");
  args.add_flag("replay", true, "re-run exactly one point by its seed");
  args.add_flag("workload", true,
                "force one workload (spmv-plus, spmv-min, spmv-max, "
                "pagerank, pagerank-delta, hits, bfs, kcore)");
  args.add_flag("threads", true, "force the thread count (0 = lattice)");
  args.add_flag("push-policy", true,
                "force the engine push policy (auto, shared, single-owner, "
                "binned)");
  args.add_flag("batch", true,
                "force the batch lane count for SpMV-shaped workloads "
                "(0 = lattice; k>1 runs the batched engine path)");
  args.add_flag("inject-fault", false,
                "swap in the broken drop-merge engine (self-test)");
  args.add_flag("inject-trace-drop", false,
                "install a drop-all trace buffer: the check must reach the "
                "same verdict while every trace event is discarded");
  args.add_flag("inject-bin-drop", false,
                "arm the binned sparse path's bin-drop fault (one staged "
                "cache line of scattered contributions is erased after every "
                "scatter); points that run binned under spmv-plus must "
                "report a divergence (self-test)");
  args.add_flag("serve-points", true,
                "also run N points of the serve lattice: concurrent TCP "
                "clients vs a serial oracle (0 = skip; separate seed space "
                "from the engine lattice)");
  args.add_flag("serve-clients", true,
                "force the client count per serve point (0 = lattice)");
  args.add_flag("serve-queries", true,
                "queries per client per serve point (default 6)");
  args.add_flag("inject-flush-delay-us", true,
                "serve fault injection: stall every batch flush this long");
  args.add_flag("inject-flush-drops", true,
                "serve fault injection: re-queue the first N flushes");
  args.add_flag("shard-points", true,
                "also run N points of the shard lattice: every point's "
                "workload re-run through the sharded engine per shard "
                "count, plus bitwise S=1 / order-independence contracts "
                "(0 = skip)");
  args.add_flag("shards", true,
                "force a single shard count for the shard lattice and for "
                "--replay (default lattice: 1, 2, 4)");
  args.add_flag("inject-shard-fault", false,
                "shard lattice self-test: corrupt one shard's exchange "
                "slice per point and require the oracle to notice");
  args.add_flag("update-points", true,
                "also run N points of the mutation lattice: seeded edge-"
                "update replay, each post-batch layout checked against the "
                "from-scratch rebuild oracle (0 = skip)");
  args.add_flag("update-batches", true,
                "cap on update batches per mutation point (default 4)");
  args.add_flag("rebuild-threshold", true,
                "force the hub-drift rebuild threshold for every mutation "
                "point (negative = rebuild each batch; default: lattice)");
  args.add_flag("no-minimize", false, "report the failure without shrinking");
  args.add_flag("repro-out", true, "write the repro snippet to this file");
  args.add_flag("metrics-out", true, "write a JSON telemetry report");
  args.add_flag("verbose", false, "log every lattice point");
  args.add_flag("help", false, "show this help");
  try {
    args.parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n" << args.help_text();
    return 2;
  }
  if (args.has("help")) {
    std::cout << "usage: ihtl_check [flags]\n" << args.help_text();
    return 0;
  }

  telemetry::MetricsRegistry::global().clear();

  DiffOptions opt;
  opt.base_seed = static_cast<std::uint64_t>(args.get_int("seed", 2026));
  opt.points = static_cast<std::size_t>(args.get_int("points", 64));
  opt.force_threads =
      static_cast<unsigned>(args.get_int("threads", 0));
  opt.verbose = args.has("verbose");
  opt.out = &std::cerr;
  if (args.has("workload")) {
    const std::string name = args.get_string("workload");
    const std::optional<Workload> w = workload_from_name(name);
    if (!w) {
      std::cerr << "error: unknown workload '" << name << "'\n";
      return 2;
    }
    opt.force_workload = w;
  }
  if (args.has("push-policy")) {
    const std::string name = args.get_string("push-policy");
    const std::optional<PushPolicy> p = push_policy_from_name(name);
    if (!p) {
      std::cerr << "error: unknown push policy '" << name
                << "' (auto, shared, single-owner, binned)\n";
      return 2;
    }
    opt.force_push_policy = p;
  }
  if (args.has("batch")) {
    const long long k = args.get_int("batch", 0);
    if (k < 0) {
      std::cerr << "error: --batch must be >= 1 (or 0 for the lattice)\n";
      return 2;
    }
    if (k > 0) opt.force_batch = static_cast<std::size_t>(k);
  }
  if (args.has("shards")) {
    const long long s = args.get_int("shards", 0);
    if (s < 1) {
      std::cerr << "error: --shards must be >= 1\n";
      return 2;
    }
    opt.force_shards = static_cast<std::size_t>(s);
  }
  if (args.has("inject-fault")) opt.engine_override = drop_merge_fault();
  opt.inject_bin_drop = args.has("inject-bin-drop");
  std::optional<TraceDropFault> trace_drop;
  if (args.has("inject-trace-drop")) trace_drop.emplace();

  const std::string metrics_out = args.get_string("metrics-out");
  const std::string repro_out = args.get_string("repro-out");
  const bool minimize = !args.has("no-minimize");

  int rc = 0;
  if (args.has("replay")) {
    const std::uint64_t seed =
        static_cast<std::uint64_t>(args.get_int("replay"));
    const CaseResult r = run_point(seed, opt);
    std::cerr << r.params.describe() << "\n" << r.report.summary() << "\n";
    rc = r.report.ok ? 0 : handle_failure(r, opt, minimize, repro_out);
  } else {
    const std::optional<CaseResult> failure = run_lattice(opt);
    if (failure) {
      rc = handle_failure(*failure, opt, minimize, repro_out);
    } else {
      std::cerr << "OK: " << opt.points << " lattice points clean (seed "
                << opt.base_seed << ")\n";
    }
  }

  // The serve lattice runs after the engine lattice (and only when the
  // latter passed): its oracle sits on top of the same engines, so an
  // engine-level divergence would just fail twice.
  const auto serve_points =
      static_cast<std::size_t>(args.get_int("serve-points", 0));
  if (rc == 0 && serve_points > 0) {
    ServeCheckOptions sopt;
    sopt.base_seed = opt.base_seed;
    sopt.points = serve_points;
    sopt.force_clients =
        static_cast<unsigned>(args.get_int("serve-clients", 0));
    sopt.force_threads = opt.force_threads;
    sopt.queries_per_client =
        static_cast<unsigned>(args.get_int("serve-queries", 6));
    sopt.fault.delay_us =
        static_cast<unsigned>(args.get_int("inject-flush-delay-us", 0));
    sopt.fault.drop_flushes =
        static_cast<unsigned>(args.get_int("inject-flush-drops", 0));
    sopt.verbose = opt.verbose;
    sopt.out = &std::cerr;
    const ServeCheckResult sr = run_serve_lattice(sopt);
    if (sr.ok) {
      std::cerr << "OK: " << sr.points_run << " serve points clean ("
                << sr.queries_checked << " queries vs serial oracle)\n";
    } else {
      std::cerr << "FAIL: " << sr.failure << "\n"
                << "Replay with: ihtl_check --points 0 --serve-points "
                << serve_points << " --seed " << opt.base_seed;
      if (sopt.force_clients) {
        std::cerr << " --serve-clients " << sopt.force_clients;
      }
      if (opt.force_threads) std::cerr << " --threads " << opt.force_threads;
      std::cerr << "\n";
      rc = 1;
    }
  }

  // The mutation lattice sits on the same engines and oracle again, so it
  // too only runs once the preceding stages are clean.
  const auto update_points =
      static_cast<std::size_t>(args.get_int("update-points", 0));
  if (rc == 0 && update_points > 0) {
    UpdateCheckOptions uopt;
    uopt.base_seed = opt.base_seed;
    uopt.points = update_points;
    uopt.max_batches =
        static_cast<unsigned>(args.get_int("update-batches", 4));
    if (args.has("rebuild-threshold")) {
      uopt.force_threshold =
          std::stod(args.get_string("rebuild-threshold"));
    }
    uopt.verbose = opt.verbose;
    uopt.out = &std::cerr;
    const UpdateCheckResult ur = run_update_lattice(uopt);
    if (ur.ok) {
      std::cerr << "OK: " << ur.points_run << " mutation points clean ("
                << ur.batches_checked << " batches: " << ur.incremental
                << " incremental, " << ur.rebuilds << " rebuilds; "
                << ur.oracle_runs << " oracle runs, " << ur.faults_injected
                << " fault injections)\n";
    } else {
      std::cerr << "FAIL: " << ur.failure << "\n"
                << "Replay with: ihtl_check --points 0 --update-points "
                << update_points << " --seed " << opt.base_seed;
      if (uopt.force_threshold) {
        std::cerr << " --rebuild-threshold " << *uopt.force_threshold;
      }
      std::cerr << "\n";
      rc = 1;
    }
  }

  // The shard lattice re-runs the engine-level workloads through the
  // ShardedEngine; like the stages above it only runs on a clean slate, so
  // a shard failure always indicts the sharded decomposition itself.
  const auto shard_points =
      static_cast<std::size_t>(args.get_int("shard-points", 0));
  if (rc == 0 && shard_points > 0) {
    ShardCheckOptions shopt;
    shopt.base_seed = opt.base_seed;
    shopt.points = shard_points;
    if (opt.force_shards) shopt.shard_counts = {*opt.force_shards};
    shopt.force_threads = opt.force_threads;
    shopt.inject_fault = args.has("inject-shard-fault");
    shopt.verbose = opt.verbose;
    shopt.out = &std::cerr;
    const ShardCheckResult shr = run_shard_lattice(shopt);
    if (shr.ok) {
      std::cerr << "OK: " << shr.points_run << " shard points clean ("
                << shr.oracle_runs << " oracle runs, " << shr.bitwise_checks
                << " bitwise identities";
      if (shopt.inject_fault) {
        std::cerr << ", " << shr.faults_injected << " faults detected, "
                  << shr.faults_skipped << " skipped (no remote slice)";
      }
      std::cerr << ")\n";
    } else {
      std::cerr << "FAIL: " << shr.failure << "\n"
                << "Replay with: ihtl_check --points 0 --shard-points "
                << shard_points << " --seed " << opt.base_seed;
      if (opt.force_shards) std::cerr << " --shards " << *opt.force_shards;
      if (opt.force_threads) std::cerr << " --threads " << opt.force_threads;
      if (shopt.inject_fault) std::cerr << " --inject-shard-fault";
      std::cerr << "\n";
      rc = 1;
    }
  }

  if (trace_drop) {
    std::cerr << "trace-drop fault: " << trace_drop->dropped()
              << " event(s) discarded; verdict unaffected\n";
  }
  if (!metrics_out.empty()) {
    write_metrics(metrics_out, opt.base_seed, opt.points, rc == 0);
  }
  return rc;
}
