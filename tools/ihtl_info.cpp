// CLI: structural report of a graph plus an iHTL hub-selection preview.
// See `ihtl_info --help`.
#include "cli/commands.h"

int main(int argc, char** argv) { return ihtl::cmd_info(argc, argv); }
