#!/usr/bin/env sh
# Docs-consistency checker: the README CLI reference must match each tool's
# actual --help output.
#
#   tools/check_cli_docs.sh [--update] <tools-dir> [readme]
#
# For every `<!-- cli:NAME -->` ... `<!-- /cli:NAME -->` block in the
# README, runs `<tools-dir>/NAME --help` and diffs it against the block's
# fenced code contents. Default mode exits 1 on any drift (CI's
# docs-consistency job); `--update` rewrites the blocks in place instead
# (run it after changing a tool's flags).
set -eu

MODE=check
if [ "${1:-}" = "--update" ]; then
  MODE=update
  shift
fi
TOOLS_DIR=${1:?usage: check_cli_docs.sh [--update] <tools-dir> [readme]}
README=${2:-README.md}

[ -f "$README" ] || { echo "error: $README not found" >&2; exit 2; }

TOOLS=$(sed -n 's/^<!-- cli:\([a-z_]*\) -->$/\1/p' "$README")
[ -n "$TOOLS" ] || { echo "error: no <!-- cli:* --> blocks in $README" >&2; exit 2; }

STATUS=0
for tool in $TOOLS; do
  BIN="$TOOLS_DIR/$tool"
  if [ ! -x "$BIN" ]; then
    echo "error: $BIN not built (build the tools target first)" >&2
    exit 2
  fi
  HELP=$("$BIN" --help)
  # The fenced block between this tool's markers, without the fences.
  DOC=$(awk -v tool="$tool" '
    $0 == "<!-- cli:" tool " -->" { grab = 1; next }
    $0 == "<!-- /cli:" tool " -->" { grab = 0 }
    grab && $0 != "```"' "$README")
  if [ "$HELP" = "$DOC" ]; then
    echo "ok: $tool --help matches $README"
    continue
  fi
  if [ "$MODE" = check ]; then
    echo "DRIFT: $tool --help no longer matches $README:" >&2
    printf '%s\n' "$DOC" > /tmp/cli_doc.$$
    printf '%s\n' "$HELP" > /tmp/cli_help.$$
    diff -u /tmp/cli_doc.$$ /tmp/cli_help.$$ >&2 || true
    rm -f /tmp/cli_doc.$$ /tmp/cli_help.$$
    echo "(refresh with: tools/check_cli_docs.sh --update $TOOLS_DIR $README)" >&2
    STATUS=1
  else
    printf '%s\n' "$HELP" > /tmp/cli_help.$$
    awk -v tool="$tool" -v helpfile="/tmp/cli_help.$$" '
      $0 == "<!-- cli:" tool " -->" {
        print; print "```"
        while ((getline line < helpfile) > 0) print line
        close(helpfile)
        print "```"
        skip = 1; next
      }
      $0 == "<!-- /cli:" tool " -->" { skip = 0 }
      !skip' "$README" > "$README.tmp"
    mv "$README.tmp" "$README"
    rm -f /tmp/cli_help.$$
    echo "updated: $tool block in $README"
  fi
done
exit $STATUS
