// CLI: diff two telemetry snapshots and flag perf regressions. See
// `bench_diff --help`.
#include "cli/commands.h"

int main(int argc, char** argv) { return ihtl::cmd_bench_diff(argc, argv); }
