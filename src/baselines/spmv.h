// Reference SpMV traversal kernels (the paper's comparison baselines).
//
// All kernels compute, for every vertex v,
//     y[v] = combine over u in N-(v) of x[u]          (Algorithm 1 semantics)
// differing only in traversal direction and write-protection strategy:
//   - spmv_pull: column-major over the CSC; random reads, private writes
//     (plain pull; Galois-style).
//   - spmv_pull_edge_balanced: same, but destinations are chunked so each
//     chunk carries ~equal edges (GraphGrind-style partitioning [35]).
//   - spmv_push_atomic: row-major over the CSR; random atomic writes.
//   - spmv_push_buffered: row-major with per-thread full-length vertex-data
//     copies merged afterwards (X-Stream-style buffering [29]).
//   - DestinationPartitionedPush: push over destination-range partitions so
//     concurrent threads never write the same range (GraphGrind push [35]).
//   - SegmentedPull: horizontal (source-range) blocking of the pull
//     traversal so random reads stay within a cache-sized segment
//     (Cagra/GraphIt-style [45]).
#pragma once

#include <span>
#include <vector>

#include "baselines/semiring.h"
#include "graph/graph.h"
#include "parallel/parallel_for.h"
#include "parallel/partitioner.h"
#include "parallel/per_thread.h"
#include "parallel/thread_pool.h"

namespace ihtl {

/// Plain pull: for each destination v, reduce x over in-neighbours.
template <typename Monoid = PlusMonoid>
void spmv_pull(ThreadPool& pool, const Graph& g, std::span<const value_t> x,
               std::span<value_t> y) {
  const Adjacency& in = g.in();
  parallel_for(pool, 0, g.num_vertices(), [&](std::uint64_t v, std::size_t) {
    value_t acc = Monoid::identity();
    for (const vid_t u : in.neighbors(static_cast<vid_t>(v))) {
      acc = Monoid::combine(acc, x[u]);
    }
    y[v] = acc;
  });
}

/// Serial pull; ground truth for every equivalence test.
template <typename Monoid = PlusMonoid>
void spmv_pull_serial(const Graph& g, std::span<const value_t> x,
                      std::span<value_t> y) {
  const Adjacency& in = g.in();
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    value_t acc = Monoid::identity();
    for (const vid_t u : in.neighbors(v)) acc = Monoid::combine(acc, x[u]);
    y[v] = acc;
  }
}

/// Serial batched pull over vertex-major n×k arrays (element (v, lane) at
/// v*k + lane): for every destination v and lane l,
///     y[v*k+l] = combine over u in N-(v) of x[u*k+l].
/// Ground truth for the engine's spmv_batch path — each lane is exactly
/// spmv_pull_serial over that lane's strided vector.
template <typename Monoid = PlusMonoid>
void spmv_pull_serial_batch(const Graph& g, std::span<const value_t> x,
                            std::span<value_t> y, std::size_t k) {
  const Adjacency& in = g.in();
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    value_t* acc = y.data() + static_cast<std::size_t>(v) * k;
    for (std::size_t lane = 0; lane < k; ++lane) {
      acc[lane] = Monoid::identity();
    }
    for (const vid_t u : in.neighbors(v)) {
      const value_t* xu = x.data() + static_cast<std::size_t>(u) * k;
      for (std::size_t lane = 0; lane < k; ++lane) {
        acc[lane] = Monoid::combine(acc[lane], xu[lane]);
      }
    }
  }
}

/// Parallel batched pull: the plain-pull comparison baseline at batch k —
/// one edge visit serves all k lanes of its source row.
template <typename Monoid = PlusMonoid>
void spmv_pull_batch(ThreadPool& pool, const Graph& g,
                     std::span<const value_t> x, std::span<value_t> y,
                     std::size_t k) {
  const Adjacency& in = g.in();
  parallel_for(pool, 0, g.num_vertices(), [&](std::uint64_t v, std::size_t) {
    value_t* acc = y.data() + v * k;
    for (std::size_t lane = 0; lane < k; ++lane) {
      acc[lane] = Monoid::identity();
    }
    for (const vid_t u : in.neighbors(static_cast<vid_t>(v))) {
      const value_t* xu = x.data() + static_cast<std::size_t>(u) * k;
      for (std::size_t lane = 0; lane < k; ++lane) {
        acc[lane] = Monoid::combine(acc[lane], xu[lane]);
      }
    }
  });
}

/// Pull with edge-balanced destination chunks (GraphGrind-style).
template <typename Monoid = PlusMonoid>
void spmv_pull_edge_balanced(ThreadPool& pool, const Graph& g,
                             std::span<const value_t> x,
                             std::span<value_t> y) {
  const Adjacency& in = g.in();
  const auto parts = partition_by_edge(in.offsets, pool.size() * 8);
  parallel_for(pool, 0, parts.size(), [&](std::uint64_t p, std::size_t) {
    for (std::uint64_t v = parts[p].begin; v < parts[p].end; ++v) {
      value_t acc = Monoid::identity();
      for (const vid_t u : in.neighbors(static_cast<vid_t>(v))) {
        acc = Monoid::combine(acc, x[u]);
      }
      y[v] = acc;
    }
  }, {.grain = 1});
}

/// Push with per-destination atomic protection (plus only: fetch-add loop).
void spmv_push_atomic(ThreadPool& pool, const Graph& g,
                      std::span<const value_t> x, std::span<value_t> y);

/// Push into per-thread full-length buffers, merged afterwards.
template <typename Monoid = PlusMonoid>
void spmv_push_buffered(ThreadPool& pool, const Graph& g,
                        std::span<const value_t> x, std::span<value_t> y) {
  const Adjacency& out = g.out();
  const vid_t n = g.num_vertices();
  PerThread<value_t> buffers(pool.size(), n, Monoid::identity());
  parallel_for(pool, 0, n, [&](std::uint64_t v, std::size_t tid) {
    value_t* buf = buffers.get(tid);
    const value_t xv = x[v];
    for (const vid_t t : out.neighbors(static_cast<vid_t>(v))) {
      buf[t] = Monoid::combine(buf[t], xv);
    }
  });
  parallel_for(pool, 0, n, [&](std::uint64_t v, std::size_t) {
    value_t acc = Monoid::identity();
    for (std::size_t t = 0; t < pool.size(); ++t) {
      acc = Monoid::combine(acc, buffers.get(t)[v]);
    }
    y[v] = acc;
  });
}

/// Push over destination-range partitions: edges are pre-grouped so that
/// partition p contains only edges whose destination lies in p's vertex
/// range; each partition is processed by one thread at a time, so writes
/// need no protection (GraphGrind's push strategy [35]).
class DestinationPartitionedPush {
 public:
  DestinationPartitionedPush(const Graph& g, std::size_t num_parts);

  template <typename Monoid = PlusMonoid>
  void run(ThreadPool& pool, std::span<const value_t> x,
           std::span<value_t> y) const {
    parallel_for(
        pool, 0, parts_.size(),
        [&](std::uint64_t p, std::size_t) {
          const Part& part = parts_[p];
          for (std::uint64_t i = part.dst_range.begin; i < part.dst_range.end;
               ++i) {
            y[i] = Monoid::identity();
          }
          const vid_t n_src = part.csr.num_vertices();
          for (vid_t s = 0; s < n_src; ++s) {
            const value_t xs = x[s];
            for (const vid_t d : part.csr.neighbors(s)) {
              y[d] = Monoid::combine(y[d], xs);
            }
          }
        },
        {.grain = 1});
  }

  std::size_t num_parts() const { return parts_.size(); }
  std::size_t topology_bytes() const;

 private:
  struct Part {
    Range dst_range;
    Adjacency csr;  // all sources; targets restricted to dst_range
  };
  std::vector<Part> parts_;
};

/// Horizontal source-range blocking of pull (Cagra-style). Segment size is
/// chosen so one segment's source data fits in cache; random reads during a
/// segment stay inside it.
class SegmentedPull {
 public:
  /// `segment_vertices`: sources per segment (e.g. cache_bytes/sizeof(value)).
  SegmentedPull(const Graph& g, vid_t segment_vertices);

  template <typename Monoid = PlusMonoid>
  void run(ThreadPool& pool, std::span<const value_t> x,
           std::span<value_t> y) const {
    for (std::size_t i = 0; i < y.size(); ++i) y[i] = Monoid::identity();
    for (const Segment& seg : segments_) {
      // Parallel over destinations within the segment: each destination is
      // written by exactly one thread; reads come only from the segment's
      // source range.
      const auto parts = partition_by_edge(seg.csc.offsets, 64);
      parallel_for(
          pool, 0, parts.size(),
          [&](std::uint64_t p, std::size_t) {
            for (std::uint64_t v = parts[p].begin; v < parts[p].end; ++v) {
              value_t acc = y[v];
              for (const vid_t u : seg.csc.neighbors(static_cast<vid_t>(v))) {
                acc = Monoid::combine(acc, x[u]);
              }
              y[v] = acc;
            }
          },
          {.grain = 1});
    }
  }

  std::size_t num_segments() const { return segments_.size(); }
  std::size_t topology_bytes() const;

 private:
  struct Segment {
    Range src_range;
    Adjacency csc;  // all destinations; sources restricted to src_range
  };
  std::vector<Segment> segments_;
};

}  // namespace ihtl
