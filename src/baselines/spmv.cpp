#include "baselines/spmv.h"

#include <atomic>
#include <numeric>

namespace ihtl {

void spmv_push_atomic(ThreadPool& pool, const Graph& g,
                      std::span<const value_t> x, std::span<value_t> y) {
  const Adjacency& out = g.out();
  const vid_t n = g.num_vertices();
  parallel_for(pool, 0, n, [&](std::uint64_t v, std::size_t) { y[v] = 0.0; });
  parallel_for(pool, 0, n, [&](std::uint64_t v, std::size_t) {
    const value_t xv = x[v];
    for (const vid_t t : out.neighbors(static_cast<vid_t>(v))) {
      std::atomic_ref<value_t> slot(y[t]);
      value_t cur = slot.load(std::memory_order_relaxed);
      while (!slot.compare_exchange_weak(cur, cur + xv,
                                         std::memory_order_relaxed)) {
      }
    }
  });
}

DestinationPartitionedPush::DestinationPartitionedPush(const Graph& g,
                                                       std::size_t num_parts) {
  if (num_parts == 0) num_parts = 1;
  const Adjacency& in = g.in();
  const Adjacency& out = g.out();
  const auto ranges = partition_by_edge(in.offsets, num_parts);
  parts_.reserve(ranges.size());
  for (const Range& r : ranges) {
    Part part;
    part.dst_range = r;
    // Build a CSR over all sources containing only edges whose destination
    // falls inside this part's range.
    const vid_t n = g.num_vertices();
    part.csr.offsets.assign(static_cast<std::size_t>(n) + 1, 0);
    for (vid_t s = 0; s < n; ++s) {
      eid_t cnt = 0;
      for (const vid_t d : out.neighbors(s)) {
        if (d >= r.begin && d < r.end) ++cnt;
      }
      part.csr.offsets[s + 1] = cnt;
    }
    std::partial_sum(part.csr.offsets.begin(), part.csr.offsets.end(),
                     part.csr.offsets.begin());
    part.csr.targets.resize(part.csr.offsets.back());
    std::vector<eid_t> cursor(part.csr.offsets.begin(),
                              part.csr.offsets.end() - 1);
    for (vid_t s = 0; s < n; ++s) {
      for (const vid_t d : out.neighbors(s)) {
        if (d >= r.begin && d < r.end) part.csr.targets[cursor[s]++] = d;
      }
    }
    parts_.push_back(std::move(part));
  }
}

std::size_t DestinationPartitionedPush::topology_bytes() const {
  std::size_t total = 0;
  for (const Part& p : parts_) total += p.csr.topology_bytes();
  return total;
}

SegmentedPull::SegmentedPull(const Graph& g, vid_t segment_vertices) {
  if (segment_vertices == 0) segment_vertices = 1;
  const Adjacency& in = g.in();
  const vid_t n = g.num_vertices();
  const std::size_t num_segments =
      (static_cast<std::size_t>(n) + segment_vertices - 1) / segment_vertices;
  segments_.reserve(num_segments);
  for (std::size_t s = 0; s < num_segments; ++s) {
    Segment seg;
    seg.src_range = {static_cast<std::uint64_t>(s) * segment_vertices,
                     std::min<std::uint64_t>(
                         (static_cast<std::uint64_t>(s) + 1) * segment_vertices,
                         n)};
    seg.csc.offsets.assign(static_cast<std::size_t>(n) + 1, 0);
    for (vid_t v = 0; v < n; ++v) {
      eid_t cnt = 0;
      for (const vid_t u : in.neighbors(v)) {
        if (u >= seg.src_range.begin && u < seg.src_range.end) ++cnt;
      }
      seg.csc.offsets[v + 1] = cnt;
    }
    std::partial_sum(seg.csc.offsets.begin(), seg.csc.offsets.end(),
                     seg.csc.offsets.begin());
    seg.csc.targets.resize(seg.csc.offsets.back());
    std::vector<eid_t> cursor(seg.csc.offsets.begin(),
                              seg.csc.offsets.end() - 1);
    for (vid_t v = 0; v < n; ++v) {
      for (const vid_t u : in.neighbors(v)) {
        if (u >= seg.src_range.begin && u < seg.src_range.end) {
          seg.csc.targets[cursor[v]++] = u;
        }
      }
    }
    segments_.push_back(std::move(seg));
  }
}

std::size_t SegmentedPull::topology_bytes() const {
  std::size_t total = 0;
  for (const Segment& s : segments_) total += s.csc.topology_bytes();
  return total;
}

}  // namespace ihtl
