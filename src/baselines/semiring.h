// Reduction monoids for generalized SpMV.
//
// The paper evaluates PageRank (plus-reduction); its future-work section
// points at Connected Components / SSSP / BFS, which are min-reductions over
// the same traversal. Every kernel in baselines/ and core/ is templated on
// one of these monoids, so each analytic is the same traversal with a
// different combine.
#pragma once

#include <algorithm>
#include <limits>

#include "graph/types.h"

namespace ihtl {

/// (+, 0): classic SpMV / PageRank accumulation.
struct PlusMonoid {
  using value_type = value_t;
  static constexpr value_type identity() { return 0.0; }
  static value_type combine(value_type a, value_type b) { return a + b; }
};

/// (min, +inf): label propagation (CC), BFS/SSSP relaxation.
struct MinMonoid {
  using value_type = value_t;
  static constexpr value_type identity() {
    return std::numeric_limits<value_type>::infinity();
  }
  static value_type combine(value_type a, value_type b) {
    return std::min(a, b);
  }
};

/// (max, -inf): completes the standard trio; used by property tests.
struct MaxMonoid {
  using value_type = value_t;
  static constexpr value_type identity() {
    return -std::numeric_limits<value_type>::infinity();
  }
  static value_type combine(value_type a, value_type b) {
    return std::max(a, b);
  }
};

}  // namespace ihtl
