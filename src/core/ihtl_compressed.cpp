#include "core/ihtl_compressed.h"

namespace ihtl {

CompressedIhtlGraph CompressedIhtlGraph::from(const IhtlGraph& ig) {
  CompressedIhtlGraph c;
  c.n_ = ig.num_vertices();
  c.m_ = ig.num_edges();
  c.num_hubs_ = ig.num_hubs();
  c.num_push_sources_ = ig.num_push_sources();
  c.old_to_new_ = ig.old_to_new();
  c.blocks_.reserve(ig.blocks().size());
  for (const FlippedBlock& b : ig.blocks()) {
    c.blocks_.push_back(
        {b.hub_begin, b.hub_end, CompressedAdjacency::encode(b.csr)});
  }
  c.sparse_ = CompressedAdjacency::encode(ig.sparse());
  return c;
}

std::size_t CompressedIhtlGraph::topology_bytes() const {
  std::size_t total = sparse_.topology_bytes();
  for (const Block& b : blocks_) total += b.csr.topology_bytes();
  total += old_to_new_.size() * sizeof(vid_t) * 2;  // both relabel arrays
  return total;
}

}  // namespace ihtl
