// The iHTL graph: relabeling array + flipped blocks + sparse block
// (Sections 3.1-3.3, Figure 3).
//
// Vertices are relabeled into three contiguous classes:
//     [0, num_hubs)                      in-hubs (block i owns the hub range
//                                        [block[i].hub_begin, hub_end))
//     [num_hubs, num_hubs+num_vweh)      VWEH — vertices with edges to hubs
//     [num_hubs+num_vweh, n)             FV — fringe vertices
// Flipped block i is a CSR over the push-source range [0, num_push_sources)
// holding exactly the edges whose destination is one of block i's hubs,
// destinations stored block-relative (so they directly index the per-thread
// push buffer). The sparse block is a CSC over non-hub destinations holding
// every remaining edge. Each input edge appears in exactly one block.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/hub_selection.h"
#include "core/ihtl_config.h"
#include "graph/adjacency.h"
#include "graph/graph.h"

namespace ihtl {

/// One flipped block (vertical dense block of Figure 3).
struct FlippedBlock {
  vid_t hub_begin = 0;  ///< first hub (new ID) owned by this block
  vid_t hub_end = 0;    ///< one past the last hub (new ID)
  /// CSR over new-ID sources [0, num_push_sources); targets are
  /// BLOCK-RELATIVE hub indices in [0, hub_end - hub_begin).
  Adjacency csr;

  vid_t num_hubs() const { return hub_end - hub_begin; }
  eid_t num_edges() const { return csr.num_edges(); }
};

class IhtlGraph;
struct UpdateBatch;   // core/ihtl_update.h
struct UpdateConfig;  // core/ihtl_update.h
struct UpdateStats;   // core/ihtl_update.h

namespace detail {
/// Shared construction core; `priority` (possibly empty) supplies the
/// Section 6 secondary order for the VWEH/FV classes.
IhtlGraph build_ihtl_graph_impl(const Graph& g, const HubSelection& sel,
                                const IhtlConfig& cfg,
                                std::span<const vid_t> priority);
}  // namespace detail

/// The preprocessed iHTL representation of a graph.
class IhtlGraph {
 public:
  IhtlGraph() = default;

  // --- class sizes -------------------------------------------------------
  vid_t num_vertices() const { return n_; }
  eid_t num_edges() const { return m_; }
  vid_t num_hubs() const { return num_hubs_; }
  vid_t num_vweh() const { return num_vweh_; }
  vid_t num_fv() const { return n_ - num_hubs_ - num_vweh_; }
  /// Sources traversed during the push phase: hubs + VWEH.
  vid_t num_push_sources() const { return num_hubs_ + num_vweh_; }

  // --- structure ---------------------------------------------------------
  const std::vector<FlippedBlock>& blocks() const { return blocks_; }
  /// CSC over non-hub destinations: sparse().neighbors(v - num_hubs()) are
  /// the (new-ID) in-neighbours of non-hub vertex v.
  const Adjacency& sparse() const { return sparse_; }

  // --- relabeling --------------------------------------------------------
  /// old ID -> new ID.
  const std::vector<vid_t>& old_to_new() const { return old_to_new_; }
  /// new ID -> old ID (the paper's relabeling array, Figure 4).
  const std::vector<vid_t>& new_to_old() const { return new_to_old_; }

  // --- statistics (Table 4 / Table 5) -------------------------------------
  eid_t flipped_edges() const;       ///< edges in all flipped blocks
  eid_t sparse_edges() const { return sparse_.num_edges(); }
  std::size_t topology_bytes() const;  ///< blocks + sparse + relabel arrays
  eid_t min_hub_degree() const { return min_hub_degree_; }

  /// Invariants: permutation valid, every edge in exactly one block,
  /// class ranges consistent, FV truly fringe.
  bool valid(const Graph& original) const;

  // --- serialization ------------------------------------------------------
  void save_binary(const std::string& path) const;
  static IhtlGraph load_binary(const std::string& path);

 private:
  friend IhtlGraph build_ihtl_graph(const Graph&, const IhtlConfig&);
  friend IhtlGraph build_ihtl_graph(const Graph&, const HubSelection&,
                                    const IhtlConfig&);
  friend IhtlGraph detail::build_ihtl_graph_impl(const Graph&,
                                                 const HubSelection&,
                                                 const IhtlConfig&,
                                                 std::span<const vid_t>);
  friend IhtlGraph update_ihtl_graph(const IhtlGraph&, const Graph&,
                                     const Graph&, const UpdateBatch&,
                                     const IhtlConfig&, const UpdateConfig&,
                                     UpdateStats*);

  vid_t n_ = 0;
  eid_t m_ = 0;
  vid_t num_hubs_ = 0;
  vid_t num_vweh_ = 0;
  eid_t min_hub_degree_ = 0;
  std::vector<vid_t> old_to_new_;
  std::vector<vid_t> new_to_old_;
  std::vector<FlippedBlock> blocks_;
  Adjacency sparse_;
};

/// Preprocesses `g` into its iHTL form (the paper's 3-step construction:
/// relabeling array, flipped blocks, sparse block — Section 3.2).
IhtlGraph build_ihtl_graph(const Graph& g, const IhtlConfig& cfg = {});

/// Variant taking a precomputed hub selection (used by ablations).
IhtlGraph build_ihtl_graph(const Graph& g, const HubSelection& sel,
                           const IhtlConfig& cfg);

}  // namespace ihtl
