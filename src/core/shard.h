// The shard: one destination-range locality domain of the iHTL layout.
//
// A shard owns a contiguous slice [dst_begin, dst_end) of the relabeled
// destination range — whole flipped blocks first (a block's hub range never
// straddles a shard boundary), then a slice of the sparse block's non-hub
// destinations. Everything the executor needs to produce that slice hangs
// off the shard: the owned flipped-block set with its push-chunk / merge-tile
// decomposition, the per-thread hub buffers and touch bitmaps (scalar and
// k-lane batch variants), the edge-balanced sparse pull chunks, and the
// sorted remote-source set (the x-vector entries the shard reads but does
// not own — the cross-shard exchange slice, and the communication-volume
// term of the Akbudak et al. cost model).
//
// IhtlEngine is exactly the one-shard special case: it builds a single
// full-range shard whose team is the whole pool. ShardedEngine builds S of
// them with disjoint destination ranges and per-shard thread teams. Both
// read the same decomposition fields, so S=1 is bitwise-identical to the
// unsharded engine by construction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/ihtl_config.h"
#include "core/ihtl_graph.h"
#include "parallel/partitioner.h"
#include "parallel/per_thread.h"
#include "parallel/touch_matrix.h"

namespace ihtl {

/// Destination-range plan of one shard, before any buffers are built.
/// Produced by plan_shards; block-aligned by construction.
struct ShardPlan {
  std::size_t index = 0;
  vid_t dst_begin = 0, dst_end = 0;  ///< owned destinations (new IDs)
  std::size_t block_begin = 0, block_end = 0;  ///< owned flipped blocks
};

/// Partitions the destination range [0, n) into `shards` contiguous,
/// edge-balanced, block-aligned plans. Units are whole flipped blocks
/// (weighted by their edge count) followed by individual sparse
/// destinations (weighted by in-degree); a zero-edge graph falls back to
/// unit-count balance. Plans tile [0, n) exactly; trailing plans may be
/// empty when there are fewer units than shards (S > n).
std::vector<ShardPlan> plan_shards(const IhtlGraph& ig, std::size_t shards);

/// One push-phase work item: a source chunk of one owned flipped block.
struct ShardPushChunk {
  std::size_t block;  ///< LOCAL block index within the shard
  Range sources;
  bool direct;  ///< single-owner: push straight into y, skip merge
};

/// One merge-phase work item: a cache-line tile of a shared block's hubs.
struct ShardMergeTile {
  std::size_t block;  ///< local block index
  vid_t begin;        ///< absolute hub IDs [begin, end) within the block
  vid_t end;
};

/// One shard's structure + mutable executor state. Plain aggregate: the
/// engines own the phase loops and mutate the buffer/touch state directly,
/// exactly as IhtlEngine did before the state moved here.
struct Shard {
  // --- identity / owned ranges -------------------------------------------
  std::size_t index = 0;
  vid_t dst_begin = 0, dst_end = 0;
  std::size_t block_begin = 0, block_end = 0;
  vid_t hub_begin = 0, hub_end = 0;  ///< owned hubs (block-aligned)
  /// Owned sparse destinations, as LOCAL sparse ids (new ID - num_hubs).
  std::uint64_t sparse_begin = 0, sparse_end = 0;
  eid_t flipped_edges = 0, sparse_edges = 0;
  std::size_t team_size = 1;  ///< threads the buffers are sized for

  // --- work decomposition --------------------------------------------------
  std::vector<std::uint8_t> block_direct;  ///< [num_blocks()]
  std::size_t single_owner_blocks = 0;
  std::vector<ShardPushChunk> push_chunks;
  std::vector<ShardMergeTile> merge_tiles;
  std::vector<Range> sparse_chunks;  ///< LOCAL sparse ids

  // --- cross-shard exchange ------------------------------------------------
  /// x-vector sources this shard reads that lie outside its destination
  /// range, sorted ascending. Empty unless built with compute_remote.
  std::vector<vid_t> remote_sources;

  // --- binned sparse path (propagation blocking) ---------------------------
  // When the sparse block resolves to binned mode (PushPolicy::binned, or
  // automatic over a pull whose x working set exceeds the LLC), the pull is
  // replaced by a two-phase scatter→accumulate: sources stream x values into
  // destination-range bins (B sequential write streams instead of random x
  // reads), then each bin — sized so its contribution slots stay
  // LLC-resident — combines its destinations in exact CSC stored order via
  // the precomputed gather permutation. Every edge has a STATIC slot in
  // bin_values (per-(chunk, bin) segments laid out bin-major), so the result
  // is bitwise-identical to the pull for any thread/chunk assignment.
  bool sparse_binned = false;
  std::size_t num_bins = 0;
  /// Bin boundaries over the owned sparse slice, LOCAL sparse ids
  /// ([num_bins + 1], edge-balanced, bin_dst.front() == sparse_begin).
  std::vector<std::uint64_t> bin_dst;
  /// First CSC edge of the owned slice (sparse offsets at sparse_begin);
  /// rebasing term between absolute CSC indices and gather_pos entries.
  eid_t sparse_edge_base = 0;
  /// Distinct sources with at least one edge into the owned sparse slice,
  /// ascending; scatter_offsets[i] .. scatter_offsets[i+1] are their
  /// positions in the source-major traversal order.
  std::vector<vid_t> scatter_sources;
  std::vector<eid_t> scatter_offsets;  ///< [scatter_sources.size() + 1]
  /// Destination bin of each source-major position ([sparse_edges]).
  std::vector<std::uint32_t> scatter_bin;
  /// Scatter work items: source-index ranges over scatter_sources,
  /// edge-balanced; a chunk's contributions into bin b occupy the static
  /// slot segment starting at scatter_seg_begin[chunk * num_bins + b].
  std::vector<Range> scatter_chunks;
  std::vector<eid_t> scatter_seg_begin;  ///< [chunks * num_bins]
  /// Slot of each CSC edge (rebased by sparse_edge_base) in bin_values —
  /// the gather permutation the accumulate replays in CSC order.
  std::vector<eid_t> gather_pos;
  /// Accumulate work items: LOCAL sparse-id ranges, each within one bin.
  std::vector<Range> bin_accum_chunks;
  /// Contribution slots ([sparse_edges], bin-major) and the lazily sized
  /// k-lane counterpart ([sparse_edges * batch_k]; see ensure_batch_lanes).
  std::vector<value_t> bin_values;
  std::vector<value_t> batch_bin_values;
  // Per-team-thread scatter scratch: running slot cursors (num_bins), the
  // cache-line staging buffers (num_bins * kBinStageValues values) and the
  // staged counts, reinitialized per claimed chunk.
  PerThread<eid_t> bin_cursor;
  PerThread<value_t> bin_stage;
  PerThread<std::uint32_t> bin_stage_len;

  // --- mutable executor state ---------------------------------------------
  PerThread<value_t> buffers;  ///< team_size x num_hubs() hub accumulators
  TouchMatrix touched;         ///< team_size x num_blocks() dirty bits
  // k-lane counterparts backing spmv_batch, (re)built lazily when the
  // requested lane count changes; disjoint from the scalar pair so scalar
  // and batched calls interleave without invalidating each other's bits.
  PerThread<value_t> batch_buffers;
  TouchMatrix batch_touched;
  std::size_t batch_k = 0;

  std::size_t num_blocks() const { return block_end - block_begin; }
  vid_t num_hubs() const { return hub_end - hub_begin; }
  std::uint64_t num_sparse() const { return sparse_end - sparse_begin; }
  std::uint64_t num_dst() const { return dst_end - dst_begin; }
  eid_t num_edges() const { return flipped_edges + sparse_edges; }
  bool owns_dst(vid_t v) const { return v >= dst_begin && v < dst_end; }
  /// Any block resolved to shared mode (needs buffers + merge)?
  bool any_shared() const { return single_owner_blocks < num_blocks(); }

  /// (Re)builds the k-lane batch state when the lane count changes — or
  /// when the shard's layout changed underneath a cached lane count (an
  /// in-place graph patch can alter the hub span or the sparse edge count
  /// without touching batch_k, so the cache key is the required SIZES, not
  /// the lane count alone; a stale early-return here would hand spmv_batch
  /// buffers sized for the pre-update layout). A fresh build is
  /// identity-initialized, so the first reset after it has nothing to clear.
  void ensure_batch_lanes(std::size_t k, value_t identity) {
    const std::size_t hub_len =
        any_shared() ? static_cast<std::size_t>(num_hubs()) * k : 0;
    const std::size_t bin_len =
        sparse_binned ? static_cast<std::size_t>(sparse_edges) * k : 0;
    if (hub_len == 0 && bin_len == 0) return;  // nothing lane-dependent
    if (batch_k == k && batch_buffers.length() == hub_len &&
        batch_bin_values.size() == bin_len) {
      return;
    }
    if (hub_len > 0) {
      batch_buffers = PerThread<value_t>(team_size, hub_len, identity);
      batch_touched = TouchMatrix(team_size, num_blocks());
    } else {
      batch_buffers = PerThread<value_t>();
      batch_touched = TouchMatrix();
    }
    batch_bin_values.assign(bin_len, identity);
    batch_k = k;
  }
};

/// Values staged per (thread, bin) before a flush to the bin's slot
/// segment: 8 doubles = one 64-byte cache line, the write-combining grain
/// of the propagation-blocking literature (HAPB).
inline constexpr std::size_t kBinStageValues = 8;

/// The single-owner boundary shared by every path that classifies a
/// flipped block: sharded and unsharded engines must make the SAME call
/// for a block exactly at the threshold,
/// or --shards 1 stops being bitwise-identical to the unsharded engine at
/// that size — pinned by SingleOwnerBoundary tests). A block goes
/// single-owner when chunking it across the team cannot pay for the extra
/// buffer reset + merge: one worker, or less than ~1/(16 T) of the shard's
/// flipped edges.
bool block_single_owner(eid_t block_edges, eid_t shard_flipped_edges,
                        std::size_t team_size, PushPolicy policy);

/// The automatic policy's sparse-block decision: binned when the slice is
/// heavy enough to amortize the scatter pass, spans more than one bin, and
/// the pull's random x reads are expected to miss the LLC (analytic
/// misses-per-edge estimate over the cachesim Xeon Gold 6130 geometry).
/// Exposed for the decision-diagram docs and the telemetry tests.
bool sparse_auto_binned(vid_t num_vertices, std::uint64_t sparse_dsts,
                        eid_t sparse_edges);

/// Scatter one claimed chunk: stream x over the chunk's sources, appending
/// each edge's value to its bin's static slot segment. Scalar calls (k=1)
/// go through the per-bin cache-line staging buffers; k-lane rows are
/// already line-granular and are written directly. Pure copies — no monoid
/// combine happens here, so the function is shared by every semiring.
inline void shard_bin_scatter_chunk(Shard& sh, const value_t* x,
                                    std::size_t k, std::size_t team,
                                    std::uint64_t c, value_t* values) {
  const Range chunk = sh.scatter_chunks[c];
  const std::size_t nbins = sh.num_bins;
  eid_t* cursor = sh.bin_cursor.get(team);
  const eid_t* seg = sh.scatter_seg_begin.data() + c * nbins;
  for (std::size_t b = 0; b < nbins; ++b) cursor[b] = seg[b];
  if (k == 1) {
    value_t* stage = sh.bin_stage.get(team);
    std::uint32_t* staged = sh.bin_stage_len.get(team);
    for (std::size_t b = 0; b < nbins; ++b) staged[b] = 0;
    for (std::uint64_t si = chunk.begin; si < chunk.end; ++si) {
      const value_t xv = x[sh.scatter_sources[si]];
      for (eid_t p = sh.scatter_offsets[si]; p < sh.scatter_offsets[si + 1];
           ++p) {
        const std::uint32_t b = sh.scatter_bin[p];
        value_t* line = stage + static_cast<std::size_t>(b) * kBinStageValues;
        line[staged[b]++] = xv;
        if (staged[b] == kBinStageValues) {
          value_t* out = values + cursor[b];
          for (std::size_t i = 0; i < kBinStageValues; ++i) out[i] = line[i];
          cursor[b] += kBinStageValues;
          staged[b] = 0;
        }
      }
    }
    for (std::size_t b = 0; b < nbins; ++b) {
      value_t* out = values + cursor[b];
      const value_t* line = stage + b * kBinStageValues;
      for (std::uint32_t i = 0; i < staged[b]; ++i) out[i] = line[i];
    }
  } else {
    for (std::uint64_t si = chunk.begin; si < chunk.end; ++si) {
      const value_t* xv =
          x + static_cast<std::size_t>(sh.scatter_sources[si]) * k;
      for (eid_t p = sh.scatter_offsets[si]; p < sh.scatter_offsets[si + 1];
           ++p) {
        value_t* out = values + cursor[sh.scatter_bin[p]]++ * k;
        for (std::size_t lane = 0; lane < k; ++lane) out[lane] = xv[lane];
      }
    }
  }
}

/// Accumulate one claimed item (a destination range within one bin):
/// combine each destination's slots in exact CSC stored order via the
/// gather permutation — the same per-destination combine sequence as the
/// pull, over values confined to one LLC-resident bin region.
template <typename Monoid>
inline void shard_bin_accumulate_chunk(const Shard& sh,
                                       const Adjacency& sparse,
                                       vid_t num_hubs, std::size_t k,
                                       std::uint64_t item,
                                       const value_t* values, value_t* y) {
  const Range r = sh.bin_accum_chunks[item];
  const eid_t base = sh.sparse_edge_base;
  if (k == 1) {
    for (std::uint64_t local = r.begin; local < r.end; ++local) {
      value_t acc = Monoid::identity();
      const eid_t lo = sparse.offsets[local], hi = sparse.offsets[local + 1];
      for (eid_t j = lo; j < hi; ++j) {
        acc = Monoid::combine(acc, values[sh.gather_pos[j - base]]);
      }
      y[num_hubs + local] = acc;
    }
  } else {
    for (std::uint64_t local = r.begin; local < r.end; ++local) {
      value_t* acc =
          y + (static_cast<std::size_t>(num_hubs) + local) * k;
      for (std::size_t lane = 0; lane < k; ++lane) {
        acc[lane] = Monoid::identity();
      }
      const eid_t lo = sparse.offsets[local], hi = sparse.offsets[local + 1];
      for (eid_t j = lo; j < hi; ++j) {
        const value_t* v = values + sh.gather_pos[j - base] * k;
        for (std::size_t lane = 0; lane < k; ++lane) {
          acc[lane] = Monoid::combine(acc[lane], v[lane]);
        }
      }
    }
  }
}

/// Builds one shard's work decomposition and buffers for a team of
/// `team_size` threads, resolving each owned block to shared or
/// single-owner under `policy` (same thresholds as IhtlEngine always used:
/// the full-range shard with team = pool reproduces its decomposition
/// exactly). `identity` is the monoid identity the buffers are filled with.
/// `compute_remote` additionally derives the sorted remote-source set (the
/// one-shard engine never exchanges, so it skips this O(n + edges) pass).
Shard build_shard(const IhtlGraph& ig, const ShardPlan& plan,
                  std::size_t team_size, PushPolicy policy, value_t identity,
                  bool compute_remote);

}  // namespace ihtl
