// The shard: one destination-range locality domain of the iHTL layout.
//
// A shard owns a contiguous slice [dst_begin, dst_end) of the relabeled
// destination range — whole flipped blocks first (a block's hub range never
// straddles a shard boundary), then a slice of the sparse block's non-hub
// destinations. Everything the executor needs to produce that slice hangs
// off the shard: the owned flipped-block set with its push-chunk / merge-tile
// decomposition, the per-thread hub buffers and touch bitmaps (scalar and
// k-lane batch variants), the edge-balanced sparse pull chunks, and the
// sorted remote-source set (the x-vector entries the shard reads but does
// not own — the cross-shard exchange slice, and the communication-volume
// term of the Akbudak et al. cost model).
//
// IhtlEngine is exactly the one-shard special case: it builds a single
// full-range shard whose team is the whole pool. ShardedEngine builds S of
// them with disjoint destination ranges and per-shard thread teams. Both
// read the same decomposition fields, so S=1 is bitwise-identical to the
// unsharded engine by construction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/ihtl_config.h"
#include "core/ihtl_graph.h"
#include "parallel/partitioner.h"
#include "parallel/per_thread.h"
#include "parallel/touch_matrix.h"

namespace ihtl {

/// Destination-range plan of one shard, before any buffers are built.
/// Produced by plan_shards; block-aligned by construction.
struct ShardPlan {
  std::size_t index = 0;
  vid_t dst_begin = 0, dst_end = 0;  ///< owned destinations (new IDs)
  std::size_t block_begin = 0, block_end = 0;  ///< owned flipped blocks
};

/// Partitions the destination range [0, n) into `shards` contiguous,
/// edge-balanced, block-aligned plans. Units are whole flipped blocks
/// (weighted by their edge count) followed by individual sparse
/// destinations (weighted by in-degree); a zero-edge graph falls back to
/// unit-count balance. Plans tile [0, n) exactly; trailing plans may be
/// empty when there are fewer units than shards (S > n).
std::vector<ShardPlan> plan_shards(const IhtlGraph& ig, std::size_t shards);

/// One push-phase work item: a source chunk of one owned flipped block.
struct ShardPushChunk {
  std::size_t block;  ///< LOCAL block index within the shard
  Range sources;
  bool direct;  ///< single-owner: push straight into y, skip merge
};

/// One merge-phase work item: a cache-line tile of a shared block's hubs.
struct ShardMergeTile {
  std::size_t block;  ///< local block index
  vid_t begin;        ///< absolute hub IDs [begin, end) within the block
  vid_t end;
};

/// One shard's structure + mutable executor state. Plain aggregate: the
/// engines own the phase loops and mutate the buffer/touch state directly,
/// exactly as IhtlEngine did before the state moved here.
struct Shard {
  // --- identity / owned ranges -------------------------------------------
  std::size_t index = 0;
  vid_t dst_begin = 0, dst_end = 0;
  std::size_t block_begin = 0, block_end = 0;
  vid_t hub_begin = 0, hub_end = 0;  ///< owned hubs (block-aligned)
  /// Owned sparse destinations, as LOCAL sparse ids (new ID - num_hubs).
  std::uint64_t sparse_begin = 0, sparse_end = 0;
  eid_t flipped_edges = 0, sparse_edges = 0;
  std::size_t team_size = 1;  ///< threads the buffers are sized for

  // --- work decomposition --------------------------------------------------
  std::vector<std::uint8_t> block_direct;  ///< [num_blocks()]
  std::size_t single_owner_blocks = 0;
  std::vector<ShardPushChunk> push_chunks;
  std::vector<ShardMergeTile> merge_tiles;
  std::vector<Range> sparse_chunks;  ///< LOCAL sparse ids

  // --- cross-shard exchange ------------------------------------------------
  /// x-vector sources this shard reads that lie outside its destination
  /// range, sorted ascending. Empty unless built with compute_remote.
  std::vector<vid_t> remote_sources;

  // --- mutable executor state ---------------------------------------------
  PerThread<value_t> buffers;  ///< team_size x num_hubs() hub accumulators
  TouchMatrix touched;         ///< team_size x num_blocks() dirty bits
  // k-lane counterparts backing spmv_batch, (re)built lazily when the
  // requested lane count changes; disjoint from the scalar pair so scalar
  // and batched calls interleave without invalidating each other's bits.
  PerThread<value_t> batch_buffers;
  TouchMatrix batch_touched;
  std::size_t batch_k = 0;

  std::size_t num_blocks() const { return block_end - block_begin; }
  vid_t num_hubs() const { return hub_end - hub_begin; }
  std::uint64_t num_sparse() const { return sparse_end - sparse_begin; }
  std::uint64_t num_dst() const { return dst_end - dst_begin; }
  eid_t num_edges() const { return flipped_edges + sparse_edges; }
  bool owns_dst(vid_t v) const { return v >= dst_begin && v < dst_end; }
  /// Any block resolved to shared mode (needs buffers + merge)?
  bool any_shared() const { return single_owner_blocks < num_blocks(); }

  /// (Re)builds the k-lane batch buffers when the lane count changes. A
  /// fresh build is identity-initialized, so the first reset after it has
  /// nothing to clear.
  void ensure_batch_lanes(std::size_t k, value_t identity) {
    if (!any_shared() || batch_k == k) return;
    batch_buffers = PerThread<value_t>(
        team_size, static_cast<std::size_t>(num_hubs()) * k, identity);
    batch_touched = TouchMatrix(team_size, num_blocks());
    batch_k = k;
  }
};

/// Builds one shard's work decomposition and buffers for a team of
/// `team_size` threads, resolving each owned block to shared or
/// single-owner under `policy` (same thresholds as IhtlEngine always used:
/// the full-range shard with team = pool reproduces its decomposition
/// exactly). `identity` is the monoid identity the buffers are filled with.
/// `compute_remote` additionally derives the sorted remote-source set (the
/// one-shard engine never exchanges, so it skips this O(n + edges) pass).
Shard build_shard(const IhtlGraph& ig, const ShardPlan& plan,
                  std::size_t team_size, PushPolicy policy, value_t identity,
                  bool compute_remote);

}  // namespace ihtl
