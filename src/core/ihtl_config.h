// iHTL configuration knobs (Section 3.3, Section 4.7).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "graph/types.h"

namespace ihtl {

/// How the engine distributes a flipped block's push work and merges the
/// result (see IhtlEngine in core/ihtl_spmv.h for the mechanics).
enum class PushPolicy {
  /// Per block, chosen at engine-build time from block/edge statistics:
  /// blocks too small to amortize multi-thread buffering go single-owner,
  /// the rest stay shared. The production default.
  automatic,
  /// Every block is chunked across threads into per-thread buffers and
  /// merged in fixed thread order (the paper's Algorithm 3).
  shared,
  /// Every block is one work item: the claiming thread pushes the whole
  /// block directly into the output slice (atomic-free — the block's hub
  /// range belongs to it alone), so the block needs no buffer reset and no
  /// merge, and its result is independent of which thread ran it.
  single_owner,
  /// Flipped blocks run as under `automatic`; the SPARSE block switches
  /// from the CSC pull to the propagation-blocked scatter→accumulate
  /// kernel: sources stream their value into destination-range bins sized
  /// to stay LLC-resident, then a per-bin pass combines each destination's
  /// contributions in exact CSC order — bitwise-identical to the pull (the
  /// gather permutation is fixed at build time), but every random access is
  /// confined to one bin. Under `automatic` the sparse block opts into this
  /// mode on its own when the pull's x working set exceeds the LLC.
  binned,
};

/// CLI-facing names: "auto", "shared", "single-owner", "binned".
std::string push_policy_name(PushPolicy p);
std::optional<PushPolicy> push_policy_from_name(const std::string& name);

/// Parameters controlling hub selection and flipped-block construction.
struct IhtlConfig {
  /// Per-thread push-buffer budget in bytes. The paper dimensions this to
  /// the private L2 cache (1 MiB on the evaluation machine, Section 4.7);
  /// hubs per flipped block H = buffer_bytes / sizeof(value_t).
  std::size_t buffer_bytes = 1u << 20;

  /// A new flipped block i is admitted while the count of distinct sources
  /// with edges into its hubs exceeds `admission_ratio` times block 1's
  /// count (the paper fixes 0.5, Section 3.3).
  double admission_ratio = 0.5;

  /// Safety cap on the number of flipped blocks.
  std::size_t max_blocks = 1024;

  /// Candidate hubs must have at least this in-degree (degree-0/1 vertices
  /// can never pay for flipped-block overhead).
  eid_t min_hub_in_degree = 2;

  /// Separate fringe vertices (no edges to hubs) from the flipped blocks'
  /// source range (Section 3.1: avoids loading their data during the push
  /// phase and shrinks block topology). Disabling this treats every
  /// non-hub as VWEH — the ablation for that design choice.
  bool separate_fringe = true;

  /// Push/merge execution policy for engines built from this config.
  /// Consumed by IhtlEngine only — build_ihtl_graph ignores it (the block
  /// structure is policy-independent), so a serialized IhtlGraph can be run
  /// under any policy.
  PushPolicy push_policy = PushPolicy::automatic;

  /// Hubs per flipped block.
  vid_t hubs_per_block() const {
    const auto h = buffer_bytes / sizeof(value_t);
    return h == 0 ? 1 : static_cast<vid_t>(h);
  }
};

inline std::string push_policy_name(PushPolicy p) {
  switch (p) {
    case PushPolicy::automatic:
      return "auto";
    case PushPolicy::shared:
      return "shared";
    case PushPolicy::single_owner:
      return "single-owner";
    case PushPolicy::binned:
      return "binned";
  }
  return "unknown";
}

inline std::optional<PushPolicy> push_policy_from_name(
    const std::string& name) {
  if (name == "auto") return PushPolicy::automatic;
  if (name == "shared") return PushPolicy::shared;
  if (name == "single-owner") return PushPolicy::single_owner;
  if (name == "binned") return PushPolicy::binned;
  return std::nullopt;
}

}  // namespace ihtl
