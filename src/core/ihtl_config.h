// iHTL configuration knobs (Section 3.3, Section 4.7).
#pragma once

#include <cstddef>
#include <cstdint>

#include "graph/types.h"

namespace ihtl {

/// Parameters controlling hub selection and flipped-block construction.
struct IhtlConfig {
  /// Per-thread push-buffer budget in bytes. The paper dimensions this to
  /// the private L2 cache (1 MiB on the evaluation machine, Section 4.7);
  /// hubs per flipped block H = buffer_bytes / sizeof(value_t).
  std::size_t buffer_bytes = 1u << 20;

  /// A new flipped block i is admitted while the count of distinct sources
  /// with edges into its hubs exceeds `admission_ratio` times block 1's
  /// count (the paper fixes 0.5, Section 3.3).
  double admission_ratio = 0.5;

  /// Safety cap on the number of flipped blocks.
  std::size_t max_blocks = 1024;

  /// Candidate hubs must have at least this in-degree (degree-0/1 vertices
  /// can never pay for flipped-block overhead).
  eid_t min_hub_in_degree = 2;

  /// Separate fringe vertices (no edges to hubs) from the flipped blocks'
  /// source range (Section 3.1: avoids loading their data during the push
  /// phase and shrinks block topology). Disabling this treats every
  /// non-hub as VWEH — the ablation for that design choice.
  bool separate_fringe = true;

  /// Hubs per flipped block.
  vid_t hubs_per_block() const {
    const auto h = buffer_bytes / sizeof(value_t);
    return h == 0 ? 1 : static_cast<vid_t>(h);
  }
};

}  // namespace ihtl
