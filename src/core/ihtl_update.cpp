#include "core/ihtl_update.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>

#include "check/invariants.h"
#include "telemetry/metrics.h"

namespace ihtl {

namespace {

/// Per-row delta of one adjacency view: `removes[t]` instances of target t
/// to delete from the row, `inserts` targets to append (in batch order).
struct RowDelta {
  std::unordered_map<vid_t, eid_t> removes;
  std::vector<vid_t> inserts;
  eid_t num_removes = 0;
};

using DeltaMap = std::unordered_map<vid_t, RowDelta>;

/// Rewrites `adj` under per-row deltas in one pass: untouched rows are
/// copied verbatim; a touched row drops the first `removes[t]` instances of
/// each target t and appends its inserts at the row end.
Adjacency patch_adjacency(const Adjacency& adj, const DeltaMap& deltas,
                          eid_t new_edges) {
  const vid_t n = adj.num_vertices();
  Adjacency out;
  out.offsets.assign(static_cast<std::size_t>(n) + 1, 0);
  for (vid_t v = 0; v < n; ++v) {
    eid_t deg = adj.degree(v);
    if (const auto it = deltas.find(v); it != deltas.end()) {
      deg -= it->second.num_removes;
      deg += it->second.inserts.size();
    }
    out.offsets[v + 1] = deg;
  }
  std::partial_sum(out.offsets.begin(), out.offsets.end(),
                   out.offsets.begin());
  out.targets.resize(out.offsets.back());
  IHTL_INVARIANT(out.offsets.back() == new_edges,
                 "patched adjacency does not conserve the edge count");
  for (vid_t v = 0; v < n; ++v) {
    eid_t cur = out.offsets[v];
    const auto it = deltas.find(v);
    if (it == deltas.end()) {
      for (const vid_t t : adj.neighbors(v)) out.targets[cur++] = t;
      continue;
    }
    auto remaining = it->second.removes;  // copy: decremented while copying
    for (const vid_t t : adj.neighbors(v)) {
      if (const auto r = remaining.find(t);
          r != remaining.end() && r->second > 0) {
        --r->second;
        continue;
      }
      out.targets[cur++] = t;
    }
    for (const vid_t t : it->second.inserts) out.targets[cur++] = t;
  }
  return out;
}

std::string edge_str(const Edge& e) {
  return std::to_string(e.src) + "->" + std::to_string(e.dst);
}

/// Counts instances of dst in src's out-row (no sortedness assumed — rows
/// patched by previous batches append out of order).
eid_t edge_multiplicity(const Graph& g, vid_t src, vid_t dst) {
  eid_t count = 0;
  for (const vid_t t : g.out().neighbors(src)) {
    if (t == dst) ++count;
  }
  return count;
}

}  // namespace

void validate_update(const Graph& g, const UpdateBatch& batch) {
  const vid_t n = g.num_vertices();
  for (const Edge& e : batch.insert) {
    if (e.src >= n || e.dst >= n) {
      throw std::invalid_argument(
          "update: insert " + edge_str(e) + " references a vertex >= " +
          std::to_string(n) + " (the vertex set is fixed)");
    }
  }
  // Removes of the same edge consume distinct instances, so validate the
  // summed multiplicity per distinct edge against the graph.
  std::unordered_map<std::uint64_t, eid_t> wanted;
  for (const Edge& e : batch.remove) {
    if (e.src >= n || e.dst >= n) {
      throw std::invalid_argument(
          "update: remove " + edge_str(e) + " references a vertex >= " +
          std::to_string(n));
    }
    ++wanted[(std::uint64_t{e.src} << 32) | e.dst];
  }
  for (const auto& [key, count] : wanted) {
    const vid_t src = static_cast<vid_t>(key >> 32);
    const vid_t dst = static_cast<vid_t>(key & 0xffffffffu);
    const eid_t have = edge_multiplicity(g, src, dst);
    if (have < count) {
      throw std::invalid_argument(
          "update: remove " + edge_str({src, dst}) + " x" +
          std::to_string(count) + " but the graph holds " +
          std::to_string(have) + " instance(s)");
    }
  }
}

Graph apply_update(const Graph& g, const UpdateBatch& batch) {
  validate_update(g, batch);
  if (batch.empty()) return g;

  DeltaMap out_deltas;  // keyed by src, targets are dsts (CSR)
  DeltaMap in_deltas;   // keyed by dst, targets are srcs (CSC)
  for (const Edge& e : batch.remove) {
    RowDelta& o = out_deltas[e.src];
    ++o.removes[e.dst];
    ++o.num_removes;
    RowDelta& i = in_deltas[e.dst];
    ++i.removes[e.src];
    ++i.num_removes;
  }
  for (const Edge& e : batch.insert) {
    out_deltas[e.src].inserts.push_back(e.dst);
    in_deltas[e.dst].inserts.push_back(e.src);
  }
  const eid_t new_edges =
      g.num_edges() - batch.remove.size() + batch.insert.size();
  Adjacency out = patch_adjacency(g.out(), out_deltas, new_edges);
  Adjacency in = patch_adjacency(g.in(), in_deltas, new_edges);
  return Graph(std::move(out), std::move(in));
}

double hub_drift(const Graph& g, const IhtlGraph& ig, const IhtlConfig& cfg,
                 const UpdateBatch& batch, vid_t* enters_out,
                 vid_t* leaves_out) {
  // In-degree deltas of the destinations the batch touches.
  std::unordered_map<vid_t, std::int64_t> delta;
  for (const Edge& e : batch.insert) ++delta[e.dst];
  for (const Edge& e : batch.remove) --delta[e.dst];

  const auto& o2n = ig.old_to_new();
  const std::int64_t bar =
      static_cast<std::int64_t>(ig.min_hub_degree());
  const std::int64_t floor =
      static_cast<std::int64_t>(cfg.min_hub_in_degree);
  vid_t enters = 0, leaves = 0;
  for (const auto& [v, d] : delta) {
    if (d == 0) continue;
    const std::int64_t new_deg =
        static_cast<std::int64_t>(g.in_degree(v)) + d;
    const bool is_hub = o2n[v] < ig.num_hubs();
    if (!is_hub) {
      // With hubs selected, every non-hub sits at or below the weakest
      // selected hub's in-degree; rising strictly above it (and clearing
      // the candidate floor) can displace a member. With none selected,
      // clearing the floor alone can seat the first hub.
      const bool clears =
          ig.num_hubs() > 0 ? (new_deg > bar && new_deg >= floor)
                            : new_deg >= floor;
      if (clears) ++enters;
    } else if (new_deg < bar || new_deg < floor) {
      ++leaves;
    }
  }
  if (enters_out) *enters_out = enters;
  if (leaves_out) *leaves_out = leaves;
  if (ig.num_hubs() == 0) return enters > 0 ? 1.0 : 0.0;
  return static_cast<double>(enters + leaves) /
         static_cast<double>(ig.num_hubs());
}

IhtlGraph update_ihtl_graph(const IhtlGraph& ig, const Graph& g_old,
                            const Graph& g_new, const UpdateBatch& batch,
                            const IhtlConfig& cfg, const UpdateConfig& ucfg,
                            UpdateStats* stats) {
  UpdateStats local;
  UpdateStats& st = stats ? *stats : local;
  st.inserted = batch.insert.size();
  st.removed = batch.remove.size();
  if (batch.empty()) {
    st.rebuilt = false;
    st.drift = 0.0;
    return ig;
  }

  auto& reg = telemetry::MetricsRegistry::global();
  st.drift = hub_drift(g_old, ig, cfg, batch, &st.enter_candidates,
                       &st.leave_candidates);

  const auto& o2n = ig.old_to_new();
  const vid_t num_hubs = ig.num_hubs();
  const vid_t push_sources = ig.num_push_sources();

  // Strictly-greater rule: drift exactly at the threshold stays
  // incremental (pinned by the threshold-boundary tests).
  bool rebuild =
      ucfg.rebuild_threshold < 0.0 || st.drift > ucfg.rebuild_threshold;
  if (!rebuild) {
    // An insert into a hub from a fringe source has no row in the flipped
    // blocks' push-source CSR; representing it needs a relabel (FV -> VWEH
    // promotion), i.e. a rebuild.
    for (const Edge& e : batch.insert) {
      if (o2n[e.dst] < num_hubs && o2n[e.src] >= push_sources) {
        rebuild = true;
        break;
      }
    }
  }
  if (rebuild) {
    st.rebuilt = true;
    reg.counter("update/rebuilds").inc(0);
    return build_ihtl_graph(g_new, cfg);
  }

  telemetry::ScopedSpan span(reg, "update-patch");
  reg.counter("update/incremental").inc(0);

  IhtlGraph patched = ig;
  patched.m_ = g_new.num_edges();

  // Route every delta edge to its owning block: destination-is-hub goes to
  // the flipped block that owns the hub (row = relabeled source, target =
  // block-relative hub index), anything else to the sparse CSC (row =
  // destination's non-hub offset, target = relabeled source).
  std::vector<DeltaMap> block_deltas(patched.blocks_.size());
  DeltaMap sparse_deltas;
  eid_t sparse_removed = 0, sparse_inserted = 0;
  std::vector<std::int64_t> block_edge_delta(patched.blocks_.size(), 0);

  auto owning_block = [&](vid_t hub_new) -> std::size_t {
    for (std::size_t b = 0; b < patched.blocks_.size(); ++b) {
      if (hub_new >= patched.blocks_[b].hub_begin &&
          hub_new < patched.blocks_[b].hub_end) {
        return b;
      }
    }
    IHTL_INVARIANT(false, "hub new-ID outside every flipped block");
    return 0;
  };

  auto route = [&](const Edge& e, bool is_insert) {
    const vid_t src_new = o2n[e.src];
    const vid_t dst_new = o2n[e.dst];
    if (dst_new < num_hubs) {
      const std::size_t b = owning_block(dst_new);
      const vid_t rel = dst_new - patched.blocks_[b].hub_begin;
      RowDelta& row = block_deltas[b][src_new];
      if (is_insert) {
        row.inserts.push_back(rel);
        ++block_edge_delta[b];
      } else {
        ++row.removes[rel];
        ++row.num_removes;
        --block_edge_delta[b];
      }
    } else {
      const vid_t local = dst_new - num_hubs;
      RowDelta& row = sparse_deltas[local];
      if (is_insert) {
        row.inserts.push_back(src_new);
        ++sparse_inserted;
      } else {
        ++row.removes[src_new];
        ++row.num_removes;
        ++sparse_removed;
      }
    }
  };
  for (const Edge& e : batch.remove) route(e, false);
  for (const Edge& e : batch.insert) route(e, true);

  for (std::size_t b = 0; b < patched.blocks_.size(); ++b) {
    if (block_deltas[b].empty()) continue;
    FlippedBlock& blk = patched.blocks_[b];
    blk.csr = patch_adjacency(
        blk.csr, block_deltas[b],
        static_cast<eid_t>(static_cast<std::int64_t>(blk.csr.num_edges()) +
                           block_edge_delta[b]));
  }
  if (!sparse_deltas.empty()) {
    patched.sparse_ =
        patch_adjacency(patched.sparse_, sparse_deltas,
                        patched.sparse_.num_edges() - sparse_removed +
                            sparse_inserted);
  }

  IHTL_INVARIANT(
      patched.flipped_edges() + patched.sparse_edges() == patched.m_,
      "incremental update does not conserve the edge partition");
  return patched;
}

}  // namespace ihtl
