#include "core/hub_selection.h"

#include <algorithm>
#include <numeric>

namespace ihtl {

HubSelection select_hubs(const Graph& g, const IhtlConfig& cfg) {
  HubSelection sel;
  const vid_t n = g.num_vertices();
  if (n == 0) return sel;

  // Candidates: vertices with in-degree >= threshold, sorted by descending
  // in-degree, ties broken by original ID (stable, deterministic).
  std::vector<vid_t> candidates;
  candidates.reserve(n / 8 + 1);
  for (vid_t v = 0; v < n; ++v) {
    if (g.in_degree(v) >= cfg.min_hub_in_degree) candidates.push_back(v);
  }
  std::sort(candidates.begin(), candidates.end(), [&](vid_t a, vid_t b) {
    const eid_t da = g.in_degree(a), db = g.in_degree(b);
    return da != db ? da > db : a < b;
  });
  if (candidates.empty()) return sel;

  const vid_t hubs_per_block = cfg.hubs_per_block();
  const Adjacency& in = g.in();

  // Epoch-marked distinct-source counting: one pass over the in-edges of a
  // prospective block's hubs (Section 3.3's two passes collapsed into one
  // by counting at mark time).
  std::vector<std::uint32_t> mark(n, 0);
  std::uint32_t epoch = 0;
  auto count_sources = [&](std::size_t lo, std::size_t hi) {
    ++epoch;
    vid_t distinct = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      for (const vid_t u : in.neighbors(candidates[i])) {
        if (mark[u] != epoch) {
          mark[u] = epoch;
          ++distinct;
        }
      }
    }
    return distinct;
  };

  std::size_t taken = 0;
  while (taken < candidates.size() && sel.num_blocks < cfg.max_blocks) {
    const std::size_t hi =
        std::min(taken + hubs_per_block, candidates.size());
    const vid_t sources = count_sources(taken, hi);
    if (sel.num_blocks == 0) {
      if (sources == 0) break;  // no edges into any hub: pure pull graph
      sel.block1_sources = sources;
    } else if (static_cast<double>(sources) <=
               cfg.admission_ratio * sel.block1_sources) {
      break;
    }
    sel.block_sources.push_back(sources);
    ++sel.num_blocks;
    taken = hi;
  }

  sel.hubs.assign(candidates.begin(),
                  candidates.begin() + static_cast<std::ptrdiff_t>(taken));
  if (!sel.hubs.empty()) {
    sel.min_hub_degree = g.in_degree(sel.hubs.back());
    for (const vid_t h : sel.hubs) {
      sel.min_hub_degree = std::min(sel.min_hub_degree, g.in_degree(h));
    }
  }
  return sel;
}

}  // namespace ihtl
