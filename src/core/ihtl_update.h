// Streaming edge updates with incremental hub relabeling.
//
// An UpdateBatch is the mutation unit: edge inserts and deletes applied
// atomically to a Graph and its IhtlGraph. The expensive part of iHTL is
// the preprocessing (hub selection + relabeling + block construction), so
// the update path patches the existing layout in place — the relabeling and
// hub set are KEPT, and only the adjacency rows touched by the batch are
// rewritten — and falls back to a full rebuild only when the batch's
// in-degree changes imply hub-membership drift above a threshold (the
// reordering-cost/benefit tradeoff of PAPERS.md's "Locality-based Graph
// Reordering": most batches leave the in-hub set unchanged, so re-paying
// the reordering cost per batch is waste).
//
// Semantics (mirrored by the serial reference, so the differential oracle
// checks them end to end):
//   - The vertex set is fixed: every endpoint must be < num_vertices().
//   - Removes are validated against the current graph; each remove deletes
//     ONE instance of its edge. A remove with no matching instance rejects
//     the WHOLE batch (std::invalid_argument) before any mutation — the
//     strong exception guarantee is what makes a partial batch impossible.
//   - Removes apply before inserts, so a batch may delete an edge and
//     re-insert it.
//   - Duplicate inserts each count (multigraph semantics: a duplicated edge
//     contributes twice to a plus-SpMV, exactly as a CSR with a repeated
//     target does). Self-loops are permitted.
//   - An empty batch is a no-op.
#pragma once

#include <cstdint>
#include <vector>

#include "core/ihtl_config.h"
#include "core/ihtl_graph.h"
#include "graph/graph.h"

namespace ihtl {

/// One atomic mutation: `remove` applied first, then `insert`.
struct UpdateBatch {
  std::vector<Edge> insert;
  std::vector<Edge> remove;

  bool empty() const { return insert.empty() && remove.empty(); }
  std::size_t size() const { return insert.size() + remove.size(); }
};

/// Validates `batch` against `g` without mutating anything: every endpoint
/// in range, every removed edge present with sufficient multiplicity
/// (removes of the same edge consume distinct instances). Throws
/// std::invalid_argument describing the first violation.
void validate_update(const Graph& g, const UpdateBatch& batch);

/// Returns the post-batch graph (both CSR and CSC rebuilt by a per-row
/// merge pass — O(n + m + |batch|), no global edge-list sort). Validates
/// first; throws std::invalid_argument with `g` untouched on a bad batch.
/// Inserted edges append at the end of their row (row-internal order is not
/// part of graph semantics; float-order effects are covered by the oracle
/// tolerance).
Graph apply_update(const Graph& g, const UpdateBatch& batch);

/// Incremental-maintenance knobs.
struct UpdateConfig {
  /// Hub-membership drift fraction STRICTLY above which a batch triggers a
  /// full iHTL rebuild instead of an in-place patch. Drift exactly at the
  /// threshold stays incremental. Negative forces a rebuild on every
  /// non-empty batch (the from-scratch baseline); a large value (e.g. 1e9)
  /// forces the incremental path whenever it is representable.
  double rebuild_threshold = 0.1;
};

/// What one update_ihtl_graph call did.
struct UpdateStats {
  bool rebuilt = false;      ///< full rebuild (drift/threshold/fallback)
  double drift = 0.0;        ///< hub-membership drift estimate of the batch
  vid_t enter_candidates = 0;  ///< non-hubs whose new in-degree clears the bar
  vid_t leave_candidates = 0;  ///< hubs whose new in-degree drops below it
  std::size_t inserted = 0;
  std::size_t removed = 0;
  double seconds = 0.0;  ///< filled by GraphSession::apply_update
};

/// Estimates the hub-membership churn `batch` implies, in O(|batch|):
/// every vertex not currently selected has in-degree <= min_hub_degree()
/// (the weakest selected hub), so a non-hub whose post-batch in-degree
/// rises strictly above that bar (and clears cfg.min_hub_in_degree) is an
/// enter candidate, and a hub whose post-batch in-degree falls below either
/// bound is a leave candidate. Returns (enters + leaves) / num_hubs; with
/// no hubs selected, any enter candidate returns 1.0. A heuristic — it
/// bounds membership churn without re-running select_hubs.
double hub_drift(const Graph& g, const IhtlGraph& ig, const IhtlConfig& cfg,
                 const UpdateBatch& batch, vid_t* enters = nullptr,
                 vid_t* leaves = nullptr);

/// Returns the iHTL layout of `g_new` (which must equal
/// apply_update(g_old, batch)). Patches `ig` in place — same hub set, same
/// relabeling, only the flipped/sparse rows the batch touches rewritten —
/// unless (a) hub_drift exceeds ucfg.rebuild_threshold, or (b) an inserted
/// edge targets a hub from a fringe source (unrepresentable in the flipped
/// blocks' push-source CSR without relabeling); either case falls back to
/// build_ihtl_graph(g_new, cfg). The result always satisfies
/// valid(g_new).
IhtlGraph update_ihtl_graph(const IhtlGraph& ig, const Graph& g_old,
                            const Graph& g_new, const UpdateBatch& batch,
                            const IhtlConfig& cfg, const UpdateConfig& ucfg,
                            UpdateStats* stats = nullptr);

}  // namespace ihtl
