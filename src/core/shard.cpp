#include "core/shard.h"

#include <algorithm>
#include <cassert>

#include "check/invariants.h"

namespace ihtl {

namespace {

/// Merge tile width in hub values: 4 KB of value_t, a whole number of
/// cache lines, small enough that a tile plus one buffer segment per
/// thread stays L1/L2-resident while streaming.
constexpr vid_t kMergeTileValues = 512;
/// automatic keeps blocks below this edge count single-owner outright.
constexpr eid_t kSingleOwnerMinEdges = 4096;

}  // namespace

std::vector<ShardPlan> plan_shards(const IhtlGraph& ig, std::size_t shards) {
  if (shards == 0) shards = 1;
  const auto& blocks = ig.blocks();
  const std::size_t nb = blocks.size();
  const vid_t n = ig.num_vertices();
  const vid_t num_hubs = ig.num_hubs();
  const std::uint64_t num_sparse = n - num_hubs;
  const std::uint64_t units = nb + num_sparse;

  // Unit weights: whole flipped blocks (by edge count) followed by single
  // sparse destinations (by in-degree). Cumulative weight before unit u:
  std::vector<eid_t> block_prefix(nb + 1, 0);
  for (std::size_t b = 0; b < nb; ++b) {
    block_prefix[b + 1] = block_prefix[b] + blocks[b].num_edges();
  }
  const auto& sp_off = ig.sparse().offsets;
  const eid_t total =
      block_prefix[nb] + (sp_off.empty() ? 0 : sp_off.back());
  auto prefix = [&](std::uint64_t u) -> eid_t {
    if (total == 0) return u;  // zero-edge graph: unit-count balance
    if (u <= nb) return block_prefix[u];
    return block_prefix[nb] + sp_off[u - nb];
  };
  const eid_t weight = total == 0 ? units : total;

  // Destination ID at unit boundary u (blocks first, then sparse verts).
  auto unit_dst = [&](std::uint64_t u) -> vid_t {
    if (u < nb) return blocks[u].hub_begin;
    if (u == nb) return num_hubs;
    return static_cast<vid_t>(num_hubs + (u - nb));
  };

  // Boundary s = first unit whose cumulative weight reaches s/S of the
  // total. Monotone in s, so plans tile the unit range; a shard may end up
  // empty when a single heavy unit absorbs several targets (or S > units).
  std::vector<std::uint64_t> bounds(shards + 1, units);
  bounds[0] = 0;
  std::uint64_t u = 0;
  for (std::size_t s = 1; s < shards; ++s) {
    const eid_t target = weight * s / shards;
    while (u < units && prefix(u) < target) ++u;
    bounds[s] = u;
  }

  std::vector<ShardPlan> plans(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    ShardPlan& p = plans[s];
    p.index = s;
    p.block_begin = static_cast<std::size_t>(std::min<std::uint64_t>(bounds[s], nb));
    p.block_end = static_cast<std::size_t>(std::min<std::uint64_t>(bounds[s + 1], nb));
    p.dst_begin = bounds[s] >= units ? n : unit_dst(bounds[s]);
    p.dst_end = bounds[s + 1] >= units ? n : unit_dst(bounds[s + 1]);
  }

  IHTL_IF_INVARIANTS({
    // The plans must tile [0, n) exactly and never split a flipped block.
    vid_t dst = 0;
    std::size_t blk = 0;
    for (const ShardPlan& p : plans) {
      IHTL_INVARIANT(p.dst_begin == dst && p.dst_end >= p.dst_begin,
                     "shard plans leave a gap or overlap in the dst range");
      IHTL_INVARIANT(p.block_begin == blk && p.block_end >= p.block_begin,
                     "shard plans leave a gap or overlap in the block range");
      if (p.block_end > p.block_begin) {
        IHTL_INVARIANT(blocks[p.block_begin].hub_begin == p.dst_begin,
                       "shard plan splits a flipped block's hub range");
      }
      dst = p.dst_end;
      blk = p.block_end;
    }
    IHTL_INVARIANT(dst == n && blk == nb,
                   "shard plans do not cover the destination range");
  });
  return plans;
}

Shard build_shard(const IhtlGraph& ig, const ShardPlan& plan,
                  std::size_t team_size, PushPolicy policy, value_t identity,
                  bool compute_remote) {
  assert(team_size >= 1);
  Shard sh;
  sh.index = plan.index;
  sh.dst_begin = plan.dst_begin;
  sh.dst_end = plan.dst_end;
  sh.block_begin = plan.block_begin;
  sh.block_end = plan.block_end;
  sh.team_size = team_size;

  const auto& blocks = ig.blocks();
  const vid_t num_hubs = ig.num_hubs();
  if (sh.block_end > sh.block_begin) {
    sh.hub_begin = blocks[sh.block_begin].hub_begin;
    sh.hub_end = blocks[sh.block_end - 1].hub_end;
  } else {
    sh.hub_begin = sh.hub_end = std::min<vid_t>(sh.dst_begin, num_hubs);
  }
  sh.sparse_begin = std::max<vid_t>(sh.dst_begin, num_hubs) - num_hubs;
  sh.sparse_end = std::max<vid_t>(sh.dst_end, num_hubs) - num_hubs;

  const std::size_t nb = sh.num_blocks();
  sh.block_direct.assign(nb, 0);
  for (std::size_t b = 0; b < nb; ++b) {
    sh.flipped_edges += blocks[sh.block_begin + b].num_edges();
  }

  // Resolve the per-block mode. A block goes single-owner when splitting
  // it across the team cannot pay for the extra buffer reset + merge: with
  // one worker chunking never helps, and a block holding less than
  // ~1/(16 T) of the shard's flipped edges contributes a few percent of
  // one thread's push share at most. (The full-range shard with team =
  // pool reproduces IhtlEngine's historical thresholds exactly.)
  if (nb > 0 && policy != PushPolicy::shared) {
    const eid_t threshold = std::max<eid_t>(
        kSingleOwnerMinEdges,
        sh.flipped_edges / static_cast<eid_t>(team_size * 16));
    for (std::size_t b = 0; b < nb; ++b) {
      const eid_t edges = blocks[sh.block_begin + b].num_edges();
      if (edges == 0) continue;  // merge tiles supply the identity fill
      if (policy == PushPolicy::single_owner || team_size == 1 ||
          edges <= threshold) {
        sh.block_direct[b] = 1;
        ++sh.single_owner_blocks;
      }
    }
  }

  // Work decomposition for the push phase: edge-balanced (block,
  // source-chunk) items for shared blocks, one whole-block item for
  // single-owner blocks.
  const std::size_t chunks_per_block = team_size * 4;
  for (std::size_t b = 0; b < nb; ++b) {
    const auto& offsets = blocks[sh.block_begin + b].csr.offsets;
    if (sh.block_direct[b]) {
      sh.push_chunks.push_back({b, Range{0, offsets.size() - 1}, true});
      continue;
    }
    const auto parts = partition_by_edge(offsets, chunks_per_block);
    for (const Range& r : parts) {
      if (r.size() > 0) sh.push_chunks.push_back({b, r, false});
    }
  }

  // Per-thread buffers + touch bitmaps back the shared blocks only; an
  // all-single-owner decomposition needs neither.
  if (sh.any_shared()) {
    sh.buffers = PerThread<value_t>(team_size, sh.num_hubs(), identity);
    sh.touched = TouchMatrix(team_size, nb);
    // Cache-line-tiled merge chunks over the shared blocks' hub ranges.
    for (std::size_t b = 0; b < nb; ++b) {
      if (sh.block_direct[b]) continue;
      const FlippedBlock& blk = blocks[sh.block_begin + b];
      for (vid_t lo = blk.hub_begin; lo < blk.hub_end;
           lo += kMergeTileValues) {
        const vid_t hi = std::min<vid_t>(lo + kMergeTileValues, blk.hub_end);
        sh.merge_tiles.push_back({b, lo, hi});
      }
    }
  }

  // Edge-balanced destination chunks for the sparse pull phase.
  // partition_by_edge expects offsets starting at 0, so a mid-range shard
  // rebases its offset slice; the full-range shard rebases by 0 and gets
  // the historical decomposition bit for bit.
  const auto& sp_off = ig.sparse().offsets;
  if (sh.sparse_end > sh.sparse_begin) {
    sh.sparse_edges = sp_off[sh.sparse_end] - sp_off[sh.sparse_begin];
    std::vector<eid_t> rebased(sp_off.begin() + sh.sparse_begin,
                               sp_off.begin() + sh.sparse_end + 1);
    const eid_t base = rebased.front();
    for (eid_t& o : rebased) o -= base;
    sh.sparse_chunks = partition_by_edge(rebased, team_size * 8);
    for (Range& r : sh.sparse_chunks) {
      r.begin += sh.sparse_begin;
      r.end += sh.sparse_begin;
    }
  } else if (sh.sparse_begin == 0 && sp_off.size() <= 1) {
    // Degenerate full-range shard over a hub-only graph: IhtlEngine always
    // called the partitioner here, so keep its (empty-range) chunk list for
    // bitwise-stable telemetry counts.
    sh.sparse_chunks = partition_by_edge(sp_off, team_size * 8);
  }

  // The exchange slice: every source the shard's traversal reads (push
  // sources of its blocks, in-neighbours of its sparse slice) that another
  // shard owns. This is the per-shard communication volume of the Akbudak
  // cost model; the exchange step gathers exactly these slots.
  if (compute_remote) {
    const vid_t n = ig.num_vertices();
    std::vector<std::uint8_t> referenced(n, 0);
    for (std::size_t b = 0; b < nb; ++b) {
      const Adjacency& csr = blocks[sh.block_begin + b].csr;
      const vid_t sources = csr.num_vertices();
      for (vid_t v = 0; v < sources; ++v) {
        if (csr.degree(v) > 0) referenced[v] = 1;
      }
    }
    const Adjacency& sparse = ig.sparse();
    for (std::uint64_t local = sh.sparse_begin; local < sh.sparse_end;
         ++local) {
      for (const vid_t u : sparse.neighbors(static_cast<vid_t>(local))) {
        referenced[u] = 1;
      }
    }
    for (vid_t v = 0; v < n; ++v) {
      if (referenced[v] && !sh.owns_dst(v)) sh.remote_sources.push_back(v);
    }
  }

  // Invariant-build checks. The push decomposition must tile each owned
  // block exactly (chunks in source order, non-overlapping, edges covered
  // once), single-owner blocks must be exactly one chunk, the merge tiles
  // must partition each shared block's hub range in order, the sparse
  // chunks must tile the owned sparse slice, and the per-thread hub
  // buffers must occupy disjoint memory — push and merge rely on these
  // for race freedom.
  IHTL_IF_INVARIANTS({
    for (std::size_t b = 0; b < nb; ++b) {
      const FlippedBlock& blk = blocks[sh.block_begin + b];
      eid_t covered = 0;
      std::size_t chunks = 0;
      std::uint64_t prev_end = 0;
      for (const ShardPushChunk& c : sh.push_chunks) {
        if (c.block != b) continue;
        ++chunks;
        IHTL_INVARIANT(c.direct == (sh.block_direct[b] != 0),
                       "push chunk mode disagrees with its block's policy");
        IHTL_INVARIANT(c.sources.begin >= prev_end,
                       "push chunks overlap or are unsorted within a block");
        IHTL_INVARIANT(c.sources.end <= blk.csr.offsets.size() - 1,
                       "push chunk exceeds the block's source range");
        prev_end = c.sources.end;
        covered += blk.csr.offsets[c.sources.end] -
                   blk.csr.offsets[c.sources.begin];
      }
      IHTL_INVARIANT(covered == blk.num_edges(),
                     "push chunks do not cover the block's edges exactly");
      IHTL_INVARIANT(!sh.block_direct[b] || chunks == 1,
                     "single-owner block decomposed into multiple chunks");
      if (!sh.block_direct[b]) {
        vid_t expect = blk.hub_begin;
        for (const ShardMergeTile& t : sh.merge_tiles) {
          if (t.block != b) continue;
          IHTL_INVARIANT(t.begin == expect,
                         "merge tiles leave a gap or overlap in a block");
          expect = t.end;
        }
        IHTL_INVARIANT(expect == blk.hub_end,
                       "merge tiles do not cover the block's hub range");
      }
    }
    {
      std::uint64_t expect = sh.sparse_begin;
      for (const Range& r : sh.sparse_chunks) {
        IHTL_INVARIANT(r.begin == expect,
                       "sparse chunks leave a gap in the owned slice");
        expect = r.end;
      }
      IHTL_INVARIANT(sh.sparse_chunks.empty() || expect == sh.sparse_end,
                     "sparse chunks do not cover the owned slice");
    }
    const vid_t local_hubs = sh.num_hubs();
    if (sh.buffers.length() == local_hubs && local_hubs > 0) {
      for (std::size_t t = 0; t + 1 < team_size; ++t) {
        const value_t* lo = sh.buffers.get(t);
        const value_t* hi = sh.buffers.get(t + 1);
        IHTL_INVARIANT(lo + local_hubs <= hi || hi + local_hubs <= lo,
                       "per-thread hub buffers overlap before merge");
      }
    }
    for (const vid_t v : sh.remote_sources) {
      IHTL_INVARIANT(!sh.owns_dst(v),
                     "remote-source set contains an owned destination");
    }
  });
  return sh;
}

}  // namespace ihtl
