#include "core/shard.h"

#include <algorithm>
#include <cassert>

#include "check/invariants.h"

namespace ihtl {

namespace {

/// Merge tile width in hub values: 4 KB of value_t, a whole number of
/// cache lines, small enough that a tile plus one buffer segment per
/// thread stays L1/L2-resident while streaming.
constexpr vid_t kMergeTileValues = 512;
/// automatic keeps blocks below this edge count single-owner outright.
constexpr eid_t kSingleOwnerMinEdges = 4096;

/// Target bytes of contribution slots per destination-range bin: 2 MiB
/// keeps one bin's random-access region LLC-resident even with several
/// teams accumulating different bins concurrently (the Xeon Gold 6130 LLC
/// modeled in src/cachesim is 22 MiB).
constexpr std::size_t kBinTargetBytes = 2u << 20;
/// The cachesim LLC the automatic heuristic budgets the pull's x working
/// set against (CacheHierarchy::xeon_gold_6130, 22 MiB shared L3).
constexpr std::size_t kAutoLlcBytes = 22u << 20;
/// automatic never bins a sparse slice lighter than this: below it the
/// scatter pass and the slot array cannot amortize.
constexpr eid_t kAutoBinnedMinEdges = 1u << 16;

}  // namespace

bool block_single_owner(eid_t block_edges, eid_t shard_flipped_edges,
                        std::size_t team_size, PushPolicy policy) {
  if (policy == PushPolicy::shared) return false;
  if (block_edges == 0) return false;  // merge tiles supply the identity fill
  if (policy == PushPolicy::single_owner || team_size == 1) return true;
  const eid_t threshold = std::max<eid_t>(
      kSingleOwnerMinEdges,
      shard_flipped_edges / static_cast<eid_t>(team_size * 16));
  return block_edges <= threshold;
}

bool sparse_auto_binned(vid_t num_vertices, std::uint64_t sparse_dsts,
                        eid_t sparse_edges) {
  if (sparse_edges < kAutoBinnedMinEdges) return false;
  // A slice narrower than one bin cannot gain destination locality.
  if (sparse_dsts * sizeof(value_t) <= kBinTargetBytes) return false;
  // Analytic misses-per-edge estimate for the pull's random x reads: the
  // fraction of the x array that cannot be LLC-resident. Bin only when the
  // majority of reads are expected misses (the crossover the
  // cachesim.pull trace shows on the perf_suite datasets).
  const double x_bytes =
      static_cast<double>(num_vertices) * sizeof(value_t);
  const double miss_per_edge =
      x_bytes > 0 ? 1.0 - static_cast<double>(kAutoLlcBytes) / x_bytes : 0.0;
  return miss_per_edge > 0.5;
}

std::vector<ShardPlan> plan_shards(const IhtlGraph& ig, std::size_t shards) {
  if (shards == 0) shards = 1;
  const auto& blocks = ig.blocks();
  const std::size_t nb = blocks.size();
  const vid_t n = ig.num_vertices();
  const vid_t num_hubs = ig.num_hubs();
  const std::uint64_t num_sparse = n - num_hubs;
  const std::uint64_t units = nb + num_sparse;

  // Unit weights: whole flipped blocks (by edge count) followed by single
  // sparse destinations (by in-degree). Cumulative weight before unit u:
  std::vector<eid_t> block_prefix(nb + 1, 0);
  for (std::size_t b = 0; b < nb; ++b) {
    block_prefix[b + 1] = block_prefix[b] + blocks[b].num_edges();
  }
  const auto& sp_off = ig.sparse().offsets;
  const eid_t total =
      block_prefix[nb] + (sp_off.empty() ? 0 : sp_off.back());
  auto prefix = [&](std::uint64_t u) -> eid_t {
    if (total == 0) return u;  // zero-edge graph: unit-count balance
    if (u <= nb) return block_prefix[u];
    return block_prefix[nb] + sp_off[u - nb];
  };
  const eid_t weight = total == 0 ? units : total;

  // Destination ID at unit boundary u (blocks first, then sparse verts).
  auto unit_dst = [&](std::uint64_t u) -> vid_t {
    if (u < nb) return blocks[u].hub_begin;
    if (u == nb) return num_hubs;
    return static_cast<vid_t>(num_hubs + (u - nb));
  };

  // Boundary s = first unit whose cumulative weight reaches s/S of the
  // total. Monotone in s, so plans tile the unit range; a shard may end up
  // empty when a single heavy unit absorbs several targets (or S > units).
  std::vector<std::uint64_t> bounds(shards + 1, units);
  bounds[0] = 0;
  std::uint64_t u = 0;
  for (std::size_t s = 1; s < shards; ++s) {
    const eid_t target = weight * s / shards;
    while (u < units && prefix(u) < target) ++u;
    bounds[s] = u;
  }

  std::vector<ShardPlan> plans(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    ShardPlan& p = plans[s];
    p.index = s;
    p.block_begin = static_cast<std::size_t>(std::min<std::uint64_t>(bounds[s], nb));
    p.block_end = static_cast<std::size_t>(std::min<std::uint64_t>(bounds[s + 1], nb));
    p.dst_begin = bounds[s] >= units ? n : unit_dst(bounds[s]);
    p.dst_end = bounds[s + 1] >= units ? n : unit_dst(bounds[s + 1]);
  }

  IHTL_IF_INVARIANTS({
    // The plans must tile [0, n) exactly and never split a flipped block.
    vid_t dst = 0;
    std::size_t blk = 0;
    for (const ShardPlan& p : plans) {
      IHTL_INVARIANT(p.dst_begin == dst && p.dst_end >= p.dst_begin,
                     "shard plans leave a gap or overlap in the dst range");
      IHTL_INVARIANT(p.block_begin == blk && p.block_end >= p.block_begin,
                     "shard plans leave a gap or overlap in the block range");
      if (p.block_end > p.block_begin) {
        IHTL_INVARIANT(blocks[p.block_begin].hub_begin == p.dst_begin,
                       "shard plan splits a flipped block's hub range");
      }
      dst = p.dst_end;
      blk = p.block_end;
    }
    IHTL_INVARIANT(dst == n && blk == nb,
                   "shard plans do not cover the destination range");
  });
  return plans;
}

Shard build_shard(const IhtlGraph& ig, const ShardPlan& plan,
                  std::size_t team_size, PushPolicy policy, value_t identity,
                  bool compute_remote) {
  assert(team_size >= 1);
  Shard sh;
  sh.index = plan.index;
  sh.dst_begin = plan.dst_begin;
  sh.dst_end = plan.dst_end;
  sh.block_begin = plan.block_begin;
  sh.block_end = plan.block_end;
  sh.team_size = team_size;

  const auto& blocks = ig.blocks();
  const vid_t num_hubs = ig.num_hubs();
  if (sh.block_end > sh.block_begin) {
    sh.hub_begin = blocks[sh.block_begin].hub_begin;
    sh.hub_end = blocks[sh.block_end - 1].hub_end;
  } else {
    sh.hub_begin = sh.hub_end = std::min<vid_t>(sh.dst_begin, num_hubs);
  }
  sh.sparse_begin = std::max<vid_t>(sh.dst_begin, num_hubs) - num_hubs;
  sh.sparse_end = std::max<vid_t>(sh.dst_end, num_hubs) - num_hubs;

  const std::size_t nb = sh.num_blocks();
  sh.block_direct.assign(nb, 0);
  for (std::size_t b = 0; b < nb; ++b) {
    sh.flipped_edges += blocks[sh.block_begin + b].num_edges();
  }

  // Resolve the per-block mode through the ONE shared boundary predicate
  // (block_single_owner): a block goes single-owner when splitting it
  // across the team cannot pay for the extra buffer reset + merge — with
  // one worker chunking never helps, and a block holding less than
  // ~1/(16 T) of the shard's flipped edges contributes a few percent of
  // one thread's push share at most. Both engines classify through this
  // same call, so a block exactly at the threshold cannot drift between
  // the sharded and unsharded paths (the full-range shard with team = pool
  // reproduces IhtlEngine's historical thresholds exactly).
  for (std::size_t b = 0; b < nb; ++b) {
    if (block_single_owner(blocks[sh.block_begin + b].num_edges(),
                           sh.flipped_edges, team_size, policy)) {
      sh.block_direct[b] = 1;
      ++sh.single_owner_blocks;
    }
  }

  // Work decomposition for the push phase: edge-balanced (block,
  // source-chunk) items for shared blocks, one whole-block item for
  // single-owner blocks.
  const std::size_t chunks_per_block = team_size * 4;
  for (std::size_t b = 0; b < nb; ++b) {
    const auto& offsets = blocks[sh.block_begin + b].csr.offsets;
    if (sh.block_direct[b]) {
      sh.push_chunks.push_back({b, Range{0, offsets.size() - 1}, true});
      continue;
    }
    const auto parts = partition_by_edge(offsets, chunks_per_block);
    for (const Range& r : parts) {
      if (r.size() > 0) sh.push_chunks.push_back({b, r, false});
    }
  }

  // Per-thread buffers + touch bitmaps back the shared blocks only; an
  // all-single-owner decomposition needs neither.
  if (sh.any_shared()) {
    sh.buffers = PerThread<value_t>(team_size, sh.num_hubs(), identity);
    sh.touched = TouchMatrix(team_size, nb);
    // Cache-line-tiled merge chunks over the shared blocks' hub ranges.
    for (std::size_t b = 0; b < nb; ++b) {
      if (sh.block_direct[b]) continue;
      const FlippedBlock& blk = blocks[sh.block_begin + b];
      for (vid_t lo = blk.hub_begin; lo < blk.hub_end;
           lo += kMergeTileValues) {
        const vid_t hi = std::min<vid_t>(lo + kMergeTileValues, blk.hub_end);
        sh.merge_tiles.push_back({b, lo, hi});
      }
    }
  }

  // Edge-balanced destination chunks for the sparse pull phase.
  // partition_by_edge expects offsets starting at 0, so a mid-range shard
  // rebases its offset slice; the full-range shard rebases by 0 and gets
  // the historical decomposition bit for bit.
  const auto& sp_off = ig.sparse().offsets;
  if (sh.sparse_end > sh.sparse_begin) {
    sh.sparse_edges = sp_off[sh.sparse_end] - sp_off[sh.sparse_begin];
    std::vector<eid_t> rebased(sp_off.begin() + sh.sparse_begin,
                               sp_off.begin() + sh.sparse_end + 1);
    const eid_t base = rebased.front();
    for (eid_t& o : rebased) o -= base;
    sh.sparse_chunks = partition_by_edge(rebased, team_size * 8);
    for (Range& r : sh.sparse_chunks) {
      r.begin += sh.sparse_begin;
      r.end += sh.sparse_begin;
    }
  } else if (sh.sparse_begin == 0 && sp_off.size() <= 1) {
    // Degenerate full-range shard over a hub-only graph: IhtlEngine always
    // called the partitioner here, so keep its (empty-range) chunk list for
    // bitwise-stable telemetry counts.
    sh.sparse_chunks = partition_by_edge(sp_off, team_size * 8);
  }

  // Resolve the sparse-block mode and, when binned, build the propagation-
  // blocking structures: destination bins, the source-major scatter layout
  // with static per-(chunk, bin) slot segments, and the gather permutation
  // that lets the accumulate replay each destination's contributions in
  // exact CSC stored order (the bitwise contract with the pull). A slice
  // with no destinations has nothing to bin either way.
  sh.sparse_binned =
      sh.sparse_end > sh.sparse_begin &&
      (policy == PushPolicy::binned ||
       (policy == PushPolicy::automatic &&
        sparse_auto_binned(ig.num_vertices(), sh.num_sparse(),
                           sh.sparse_edges)));
  if (sh.sparse_binned) {
    const eid_t E = sh.sparse_edges;
    const eid_t edge_base = sp_off[sh.sparse_begin];
    sh.sparse_edge_base = edge_base;

    // Bin boundaries: edge-balanced over the owned slice. The byte target
    // keeps each bin's slot region LLC-resident; the team floor gives the
    // accumulate enough independent bins to go parallel (and is what makes
    // bin count routinely exceed the thread count). Tiny slices degenerate
    // to one bin per destination — span-smaller-than-one-bin is legal.
    std::vector<eid_t> rebased(sp_off.begin() + sh.sparse_begin,
                               sp_off.begin() + sh.sparse_end + 1);
    const eid_t rb = rebased.front();
    for (eid_t& o : rebased) o -= rb;
    const std::size_t by_bytes = static_cast<std::size_t>(
        (static_cast<std::uint64_t>(E) * sizeof(value_t) + kBinTargetBytes -
         1) /
        kBinTargetBytes);
    std::size_t target_bins = std::max(by_bytes, team_size * 4);
    target_bins = std::max<std::size_t>(
        1, std::min<std::size_t>(target_bins, sh.num_sparse()));
    sh.bin_dst.clear();
    std::vector<std::uint32_t> bin_of_dst(sh.num_sparse());
    for (const Range& r : partition_by_edge(rebased, target_bins)) {
      if (r.size() == 0) continue;
      sh.bin_dst.push_back(r.begin + sh.sparse_begin);
      for (std::uint64_t d = r.begin; d < r.end; ++d) {
        bin_of_dst[d] = static_cast<std::uint32_t>(sh.bin_dst.size() - 1);
      }
    }
    sh.bin_dst.push_back(sh.sparse_end);
    sh.num_bins = sh.bin_dst.size() - 1;

    // Source-major layout: count, prefix, fill — walking destinations in
    // CSC order, so a source's positions keep their CSC edge order and the
    // whole layout is a pure function of the graph (no execution order).
    const Adjacency& sparse = ig.sparse();
    const vid_t n = ig.num_vertices();
    std::vector<eid_t> src_count(n, 0);
    for (std::uint64_t local = sh.sparse_begin; local < sh.sparse_end;
         ++local) {
      for (const vid_t u : sparse.neighbors(static_cast<vid_t>(local))) {
        ++src_count[u];
      }
    }
    std::vector<std::uint32_t> src_index(n, 0);
    sh.scatter_sources.clear();
    sh.scatter_offsets.assign(1, 0);
    for (vid_t u = 0; u < n; ++u) {
      if (src_count[u] == 0) continue;
      src_index[u] = static_cast<std::uint32_t>(sh.scatter_sources.size());
      sh.scatter_sources.push_back(u);
      sh.scatter_offsets.push_back(sh.scatter_offsets.back() + src_count[u]);
    }
    sh.scatter_bin.assign(E, 0);
    std::vector<eid_t> pos_edge(E);  // position -> rebased CSC index
    {
      std::vector<eid_t> fill(sh.scatter_sources.size());
      std::copy(sh.scatter_offsets.begin(), sh.scatter_offsets.end() - 1,
                fill.begin());
      eid_t je = 0;
      for (std::uint64_t local = sh.sparse_begin; local < sh.sparse_end;
           ++local) {
        const std::uint32_t b = bin_of_dst[local - sh.sparse_begin];
        for (const vid_t u : sparse.neighbors(static_cast<vid_t>(local))) {
          const eid_t p = fill[src_index[u]]++;
          sh.scatter_bin[p] = b;
          pos_edge[p] = je++;
        }
      }
    }

    // Scatter chunks (source-aligned, edge-balanced) and their static slot
    // segments, laid out bin-major so bin b's region is contiguous. The
    // gather permutation is the simulated append order: chunk by chunk,
    // position by position, each bin's cursor advancing from its segment
    // start — exactly what shard_bin_scatter_chunk replays at run time.
    sh.scatter_chunks.clear();
    for (const Range& r :
         partition_by_edge(sh.scatter_offsets, team_size * 4)) {
      if (r.size() > 0) sh.scatter_chunks.push_back(r);
    }
    const std::size_t nchunks = sh.scatter_chunks.size();
    std::vector<eid_t> seg_count(nchunks * sh.num_bins, 0);
    for (std::size_t c = 0; c < nchunks; ++c) {
      const Range& r = sh.scatter_chunks[c];
      for (eid_t p = sh.scatter_offsets[r.begin];
           p < sh.scatter_offsets[r.end]; ++p) {
        ++seg_count[c * sh.num_bins + sh.scatter_bin[p]];
      }
    }
    sh.scatter_seg_begin.assign(nchunks * sh.num_bins, 0);
    eid_t slot = 0;
    for (std::size_t b = 0; b < sh.num_bins; ++b) {
      for (std::size_t c = 0; c < nchunks; ++c) {
        sh.scatter_seg_begin[c * sh.num_bins + b] = slot;
        slot += seg_count[c * sh.num_bins + b];
      }
    }
    assert(slot == E);
    sh.gather_pos.assign(E, 0);
    std::vector<eid_t> cur = sh.scatter_seg_begin;
    for (std::size_t c = 0; c < nchunks; ++c) {
      const Range& r = sh.scatter_chunks[c];
      for (eid_t p = sh.scatter_offsets[r.begin];
           p < sh.scatter_offsets[r.end]; ++p) {
        sh.gather_pos[pos_edge[p]] = cur[c * sh.num_bins + sh.scatter_bin[p]]++;
      }
    }

    // Accumulate items: each bin split edge-balanced so small bin counts
    // still feed the whole team; items never cross a bin boundary.
    const std::size_t parts_per_bin = std::max<std::size_t>(
        1, (team_size * 8 + sh.num_bins - 1) / sh.num_bins);
    for (std::size_t b = 0; b < sh.num_bins; ++b) {
      const std::uint64_t lo = sh.bin_dst[b], hi = sh.bin_dst[b + 1];
      std::vector<eid_t> brb(sp_off.begin() + lo, sp_off.begin() + hi + 1);
      const eid_t bb = brb.front();
      for (eid_t& o : brb) o -= bb;
      for (const Range& r : partition_by_edge(brb, parts_per_bin)) {
        if (r.size() > 0) {
          sh.bin_accum_chunks.push_back({r.begin + lo, r.end + lo});
        }
      }
    }

    sh.bin_values.assign(E, identity);
    sh.bin_cursor = PerThread<eid_t>(team_size, sh.num_bins);
    sh.bin_stage = PerThread<value_t>(team_size, sh.num_bins * kBinStageValues);
    sh.bin_stage_len = PerThread<std::uint32_t>(team_size, sh.num_bins);
  }

  // The exchange slice: every source the shard's traversal reads (push
  // sources of its blocks, in-neighbours of its sparse slice) that another
  // shard owns. This is the per-shard communication volume of the Akbudak
  // cost model; the exchange step gathers exactly these slots.
  if (compute_remote) {
    const vid_t n = ig.num_vertices();
    std::vector<std::uint8_t> referenced(n, 0);
    for (std::size_t b = 0; b < nb; ++b) {
      const Adjacency& csr = blocks[sh.block_begin + b].csr;
      const vid_t sources = csr.num_vertices();
      for (vid_t v = 0; v < sources; ++v) {
        if (csr.degree(v) > 0) referenced[v] = 1;
      }
    }
    const Adjacency& sparse = ig.sparse();
    for (std::uint64_t local = sh.sparse_begin; local < sh.sparse_end;
         ++local) {
      for (const vid_t u : sparse.neighbors(static_cast<vid_t>(local))) {
        referenced[u] = 1;
      }
    }
    for (vid_t v = 0; v < n; ++v) {
      if (referenced[v] && !sh.owns_dst(v)) sh.remote_sources.push_back(v);
    }
  }

  // Invariant-build checks. The push decomposition must tile each owned
  // block exactly (chunks in source order, non-overlapping, edges covered
  // once), single-owner blocks must be exactly one chunk, the merge tiles
  // must partition each shared block's hub range in order, the sparse
  // chunks must tile the owned sparse slice, and the per-thread hub
  // buffers must occupy disjoint memory — push and merge rely on these
  // for race freedom.
  IHTL_IF_INVARIANTS({
    for (std::size_t b = 0; b < nb; ++b) {
      const FlippedBlock& blk = blocks[sh.block_begin + b];
      eid_t covered = 0;
      std::size_t chunks = 0;
      std::uint64_t prev_end = 0;
      for (const ShardPushChunk& c : sh.push_chunks) {
        if (c.block != b) continue;
        ++chunks;
        IHTL_INVARIANT(c.direct == (sh.block_direct[b] != 0),
                       "push chunk mode disagrees with its block's policy");
        IHTL_INVARIANT(c.sources.begin >= prev_end,
                       "push chunks overlap or are unsorted within a block");
        IHTL_INVARIANT(c.sources.end <= blk.csr.offsets.size() - 1,
                       "push chunk exceeds the block's source range");
        prev_end = c.sources.end;
        covered += blk.csr.offsets[c.sources.end] -
                   blk.csr.offsets[c.sources.begin];
      }
      IHTL_INVARIANT(covered == blk.num_edges(),
                     "push chunks do not cover the block's edges exactly");
      IHTL_INVARIANT(!sh.block_direct[b] || chunks == 1,
                     "single-owner block decomposed into multiple chunks");
      if (!sh.block_direct[b]) {
        vid_t expect = blk.hub_begin;
        for (const ShardMergeTile& t : sh.merge_tiles) {
          if (t.block != b) continue;
          IHTL_INVARIANT(t.begin == expect,
                         "merge tiles leave a gap or overlap in a block");
          expect = t.end;
        }
        IHTL_INVARIANT(expect == blk.hub_end,
                       "merge tiles do not cover the block's hub range");
      }
    }
    {
      std::uint64_t expect = sh.sparse_begin;
      for (const Range& r : sh.sparse_chunks) {
        IHTL_INVARIANT(r.begin == expect,
                       "sparse chunks leave a gap in the owned slice");
        expect = r.end;
      }
      IHTL_INVARIANT(sh.sparse_chunks.empty() || expect == sh.sparse_end,
                     "sparse chunks do not cover the owned slice");
    }
    if (sh.sparse_binned) {
      // The bins and the accumulate items must tile the owned slice, and
      // the gather permutation must be a bijection onto the slot space —
      // a repeated or skipped slot is a wrong (or stale) contribution in
      // every accumulate thereafter.
      IHTL_INVARIANT(sh.bin_dst.size() == sh.num_bins + 1 &&
                         sh.bin_dst.front() == sh.sparse_begin &&
                         sh.bin_dst.back() == sh.sparse_end,
                     "bin boundaries do not tile the owned sparse slice");
      for (std::size_t b = 0; b + 1 < sh.bin_dst.size(); ++b) {
        IHTL_INVARIANT(sh.bin_dst[b] < sh.bin_dst[b + 1],
                       "empty or unsorted destination bin");
      }
      std::uint64_t expect = sh.sparse_begin;
      for (const Range& r : sh.bin_accum_chunks) {
        IHTL_INVARIANT(r.begin == expect,
                       "bin accumulate items leave a gap in the slice");
        expect = r.end;
      }
      IHTL_INVARIANT(sh.bin_accum_chunks.empty() || expect == sh.sparse_end,
                     "bin accumulate items do not cover the slice");
      std::vector<std::uint8_t> seen(sh.gather_pos.size(), 0);
      for (const eid_t slot : sh.gather_pos) {
        IHTL_INVARIANT(slot < seen.size() && !seen[slot],
                       "gather permutation repeats or overflows a slot");
        seen[slot] = 1;
      }
      IHTL_INVARIANT(sh.gather_pos.size() == sh.sparse_edges,
                     "gather permutation does not cover the sparse edges");
    }
    const vid_t local_hubs = sh.num_hubs();
    if (sh.buffers.length() == local_hubs && local_hubs > 0) {
      for (std::size_t t = 0; t + 1 < team_size; ++t) {
        const value_t* lo = sh.buffers.get(t);
        const value_t* hi = sh.buffers.get(t + 1);
        IHTL_INVARIANT(lo + local_hubs <= hi || hi + local_hubs <= lo,
                       "per-thread hub buffers overlap before merge");
      }
    }
    for (const vid_t v : sh.remote_sources) {
      IHTL_INVARIANT(!sh.owns_dst(v),
                     "remote-source set contains an owned destination");
    }
  });
  return sh;
}

}  // namespace ihtl
