// Section 6 future-work extensions to the core algorithm:
//
//  1. `select_hubs_fast` — the lower-complexity flipped-block counting the
//     paper sketches: bound the block count up front, then identify every
//     |FV_i| in a SINGLE pass over the out-edges of block 1's sources,
//     instead of one pass over the in-edges of each prospective block.
//  2. `build_ihtl_graph_ordered` — iHTL relabeling with a secondary
//     locality order (e.g. Rabbit-Order) applied WITHIN the VWEH and FV
//     classes, so the sparse block's pull traversal inherits the reordered
//     spatial locality ("locality of the sparse block may improve by
//     applying Rabbit-Order").
#pragma once

#include <span>

#include "core/hub_selection.h"
#include "core/ihtl_graph.h"

namespace ihtl {

/// Single-pass block counting (Section 6, first bullet).
///
/// Semantics match select_hubs' admission rule — block i is kept while its
/// distinct-source count exceeds `cfg.admission_ratio * |sources(1)|` — but
/// all counts are computed together: every source of block 1 walks its
/// out-edges once, tagging each prospective block it reaches. Sources that
/// feed ONLY later blocks are missed by this approximation (they are not
/// sources of block 1); on skewed graphs that set is small, and the paper
/// accepts the approximation for its complexity win.
HubSelection select_hubs_fast(const Graph& g, const IhtlConfig& cfg);

/// iHTL construction with a secondary vertex order.
///
/// `priority` maps each ORIGINAL vertex ID to a rank; VWEH and FV receive
/// their new IDs in ascending rank (ties by original ID) instead of
/// original-ID order. Hubs are unaffected (their order is the descending
/// in-degree order that defines the flipped blocks). Pass a relabeling such
/// as rabbit_order(g) to give the sparse block community locality.
IhtlGraph build_ihtl_graph_ordered(const Graph& g, const HubSelection& sel,
                                   const IhtlConfig& cfg,
                                   std::span<const vid_t> priority);

}  // namespace ihtl
