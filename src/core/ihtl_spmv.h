// The iHTL SpMV executor (Algorithm 3).
//
// One SpMV over the iHTL graph runs three phases:
//   1. PUSH the flipped blocks: threads claim (block, source-chunk) work
//      items; every update lands in the thread's private hub buffer (the
//      block-relative target index stored in the block CSR plus the block's
//      hub base is exactly the buffer slot). No synchronization needed;
//      a thread works on one flipped block at a time.
//   2. MERGE the per-thread buffers into the hub results (parallel over
//      hubs; fixed thread order -> deterministic floating point).
//   3. PULL the sparse block for all non-hub destinations (edge-balanced
//      chunks, private writes).
// Inputs and outputs live in the NEW (relabeled) ID space; apps permute at
// the boundary (the paper iterates entirely in the relabeled space too).
#pragma once

#include <cassert>
#include <span>
#include <vector>

#include "baselines/semiring.h"
#include "check/invariants.h"
#include "core/ihtl_graph.h"
#include "parallel/parallel_for.h"
#include "parallel/partitioner.h"
#include "parallel/per_thread.h"
#include "parallel/thread_pool.h"
#include "parallel/timer.h"
#include "telemetry/metrics.h"

namespace ihtl {

/// Wall-clock per phase of the last spmv() call (Table 5's breakdown).
/// Thin single-call view over the cumulative "spmv/*" telemetry spans.
struct IhtlPhaseTimes {
  double reset_s = 0.0;  ///< zeroing the per-thread buffers
  double push_s = 0.0;   ///< flipped-block push traversal
  double merge_s = 0.0;  ///< per-thread buffer aggregation
  double pull_s = 0.0;   ///< sparse-block pull traversal
  double total() const { return reset_s + push_s + merge_s + pull_s; }
};

/// Reusable executor; holds the per-thread buffers and the precomputed
/// work decomposition so repeated iterations pay no setup cost.
template <typename Monoid = PlusMonoid>
class IhtlEngine {
 public:
  IhtlEngine(const IhtlGraph& ig, ThreadPool& pool)
      : ig_(&ig),
        pool_(&pool),
        buffers_(pool.size(), ig.num_hubs(), Monoid::identity()) {
    // Edge-balanced (block, source-chunk) work items for the push phase.
    const std::size_t chunks_per_block = pool.size() * 4;
    for (std::size_t b = 0; b < ig.blocks().size(); ++b) {
      const auto parts =
          partition_by_edge(ig.blocks()[b].csr.offsets, chunks_per_block);
      for (const Range& r : parts) {
        if (r.size() > 0) push_chunks_.push_back({b, r});
      }
    }
    // Edge-balanced destination chunks for the sparse pull phase.
    sparse_chunks_ = partition_by_edge(ig.sparse().offsets, pool.size() * 8);
    set_metrics(&telemetry::MetricsRegistry::global());

    // Invariant-build checks. The push decomposition must tile each flipped
    // block exactly (chunks in source order, non-overlapping, edges covered
    // once), and the per-thread hub buffers must occupy disjoint memory —
    // the push phase relies on both for race freedom.
    IHTL_IF_INVARIANTS({
      for (std::size_t b = 0; b < ig.blocks().size(); ++b) {
        const auto& offsets = ig.blocks()[b].csr.offsets;
        eid_t covered = 0;
        std::uint64_t prev_end = 0;
        for (const PushChunk& c : push_chunks_) {
          if (c.block != b) continue;
          IHTL_INVARIANT(c.sources.begin >= prev_end,
                         "push chunks overlap or are unsorted within a block");
          IHTL_INVARIANT(c.sources.end <= offsets.size() - 1,
                         "push chunk exceeds the block's source range");
          prev_end = c.sources.end;
          covered += offsets[c.sources.end] - offsets[c.sources.begin];
        }
        IHTL_INVARIANT(covered == ig.blocks()[b].num_edges(),
                       "push chunks do not cover the block's edges exactly");
      }
      const vid_t num_hubs = ig.num_hubs();
      for (std::size_t t = 0; t + 1 < pool.size(); ++t) {
        const value_t* lo = buffers_.get(t);
        const value_t* hi = buffers_.get(t + 1);
        IHTL_INVARIANT(lo + num_hubs <= hi || hi + num_hubs <= lo,
                       "per-thread hub buffers overlap before merge");
      }
    });
  }

  const IhtlGraph& graph() const { return *ig_; }
  const IhtlPhaseTimes& last_phase_times() const { return times_; }

  /// Redirects the engine's spans/counters to `reg` (nullptr disables
  /// recording entirely). Handles are resolved once here, so the per-call
  /// cost in spmv() is a few relaxed atomic adds per phase.
  void set_metrics(telemetry::MetricsRegistry* reg) {
    if (reg) {
      span_total_ = reg->timer("spmv");
      span_reset_ = reg->timer("spmv/reset");
      span_push_ = reg->timer("spmv/push");
      span_merge_ = reg->timer("spmv/merge");
      span_pull_ = reg->timer("spmv/pull");
      calls_ = reg->counter("spmv.calls");
      push_chunk_items_ = reg->counter("spmv.push_chunk_items");
      sparse_chunk_items_ = reg->counter("spmv.sparse_chunk_items");
    } else {
      span_total_ = span_reset_ = span_push_ = span_merge_ = span_pull_ =
          telemetry::TimerStat();
      calls_ = push_chunk_items_ = sparse_chunk_items_ = telemetry::Counter();
    }
  }

  /// y[v] = combine over u in N-(v) of x[u], both in new-ID space.
  void spmv(std::span<const value_t> x, std::span<value_t> y) {
    assert(x.size() == ig_->num_vertices());
    assert(y.size() == ig_->num_vertices());
    const vid_t num_hubs = ig_->num_hubs();
    Timer phase;

    // Phase 0: reset per-thread buffers (each thread clears its own copy).
    if (num_hubs > 0) {
      pool_->run([&](std::size_t tid) {
        value_t* buf = buffers_.get(tid);
        for (vid_t h = 0; h < num_hubs; ++h) buf[h] = Monoid::identity();
      });
    }
    times_.reset_s = phase.elapsed_seconds();
    span_reset_.record_seconds(times_.reset_s);

    // Phase 1: push the flipped blocks (Algorithm 3, lines 1-4).
    phase.reset();
    parallel_for(
        *pool_, 0, push_chunks_.size(),
        [&](std::uint64_t c, std::size_t tid) {
          const PushChunk& chunk = push_chunks_[c];
          const FlippedBlock& blk = ig_->blocks()[chunk.block];
          value_t* buf = buffers_.get(tid) + blk.hub_begin;
          for (std::uint64_t v = chunk.sources.begin; v < chunk.sources.end;
               ++v) {
            const value_t xv = x[v];
            for (const vid_t rel : blk.csr.neighbors(static_cast<vid_t>(v))) {
              buf[rel] = Monoid::combine(buf[rel], xv);
            }
          }
        },
        {.grain = 1});
    times_.push_s = phase.elapsed_seconds();
    span_push_.record_seconds(times_.push_s);

    // Phase 2: aggregate thread buffers (Algorithm 3, lines 5-7).
    phase.reset();
    if (num_hubs > 0) {
      parallel_for(*pool_, 0, num_hubs, [&](std::uint64_t h, std::size_t) {
        value_t acc = Monoid::identity();
        for (std::size_t t = 0; t < pool_->size(); ++t) {
          acc = Monoid::combine(acc, buffers_.get(t)[h]);
        }
        y[h] = acc;
      });
    }
    times_.merge_s = phase.elapsed_seconds();
    span_merge_.record_seconds(times_.merge_s);

    // Phase 3: pull the sparse block (Algorithm 3, lines 8-10).
    phase.reset();
    const Adjacency& sparse = ig_->sparse();
    parallel_for(
        *pool_, 0, sparse_chunks_.size(),
        [&](std::uint64_t p, std::size_t) {
          for (std::uint64_t local = sparse_chunks_[p].begin;
               local < sparse_chunks_[p].end; ++local) {
            value_t acc = Monoid::identity();
            for (const vid_t u : sparse.neighbors(static_cast<vid_t>(local))) {
              acc = Monoid::combine(acc, x[u]);
            }
            y[num_hubs + local] = acc;
          }
        },
        {.grain = 1});
    times_.pull_s = phase.elapsed_seconds();
    span_pull_.record_seconds(times_.pull_s);

    span_total_.record_seconds(times_.total());
    calls_.inc(0);
    push_chunk_items_.add(0, push_chunks_.size());
    sparse_chunk_items_.add(0, sparse_chunks_.size());
  }

 private:
  struct PushChunk {
    std::size_t block;
    Range sources;
  };

  const IhtlGraph* ig_;
  ThreadPool* pool_;
  PerThread<value_t> buffers_;
  std::vector<PushChunk> push_chunks_;
  std::vector<Range> sparse_chunks_;
  IhtlPhaseTimes times_;
  telemetry::TimerStat span_total_, span_reset_, span_push_, span_merge_,
      span_pull_;
  telemetry::Counter calls_, push_chunk_items_, sparse_chunk_items_;
};

/// One-shot convenience wrapper operating in the ORIGINAL ID space:
/// permutes x in, runs one SpMV, permutes y back. For repeated iterations
/// build an IhtlEngine and stay in the relabeled space instead.
template <typename Monoid = PlusMonoid>
void ihtl_spmv_once(ThreadPool& pool, const IhtlGraph& ig,
                    std::span<const value_t> x, std::span<value_t> y) {
  const auto& o2n = ig.old_to_new();
  std::vector<value_t> xp(x.size()), yp(y.size());
  for (std::size_t v = 0; v < x.size(); ++v) xp[o2n[v]] = x[v];
  IhtlEngine<Monoid> engine(ig, pool);
  engine.spmv(xp, yp);
  for (std::size_t v = 0; v < y.size(); ++v) y[v] = yp[o2n[v]];
}

}  // namespace ihtl
