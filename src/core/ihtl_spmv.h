// The iHTL SpMV executor (Algorithm 3), touched-aware and tiled.
//
// One SpMV over the iHTL graph runs three phases:
//   1. PUSH the flipped blocks: threads claim (block, source-chunk) work
//      items; every update lands in the thread's private hub buffer (the
//      block-relative target index stored in the block CSR plus the block's
//      hub base is exactly the buffer slot). No synchronization needed;
//      a thread works on one flipped block at a time. Blocks resolved to
//      single-owner (see PushPolicy) are one work item each and push
//      straight into the output slice instead — their hub range belongs to
//      exactly one thread, so the write is atomic-free and the block needs
//      neither buffer reset nor merge.
//   2. MERGE the per-thread buffers into the hub results, in cache-line
//      tiles: each tile streams every touching thread's buffer segment once
//      (vectorizable inner loop), in fixed thread order so floating-point
//      results are deterministic for a given chunk->thread assignment.
//      Threads that never pushed into a tile's block are skipped entirely.
//   3. PULL the sparse block for all non-hub destinations (edge-balanced
//      chunks, private writes).
// Buffer RESET before the push is equally touched-aware: only the (thread,
// block) segments dirtied by the PREVIOUS call are re-zeroed, so zero-hub
// graphs and skewed chunk ownership pay O(touched) instead of
// O(threads x hubs).
// Inputs and outputs live in the NEW (relabeled) ID space; apps permute at
// the boundary (the paper iterates entirely in the relabeled space too).
#pragma once

#include <algorithm>
#include <cassert>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "baselines/semiring.h"
#include "check/invariants.h"
#include "core/ihtl_config.h"
#include "core/ihtl_graph.h"
#include "core/shard.h"
#include "parallel/parallel_for.h"
#include "parallel/partitioner.h"
#include "parallel/per_thread.h"
#include "parallel/thread_pool.h"
#include "parallel/timer.h"
#include "parallel/touch_matrix.h"
#include "telemetry/metrics.h"
#include "telemetry/perf_counters.h"
#include "telemetry/trace.h"

namespace ihtl {

/// Wall-clock per phase of the last spmv() call (Table 5's breakdown).
/// Thin single-call view over the cumulative "spmv/*" telemetry spans.
struct IhtlPhaseTimes {
  double reset_s = 0.0;  ///< zeroing the dirtied per-thread buffer segments
  double push_s = 0.0;   ///< flipped-block push traversal
  double merge_s = 0.0;  ///< tiled per-thread buffer aggregation
  double pull_s = 0.0;   ///< sparse-block pull traversal
  double total() const { return reset_s + push_s + merge_s + pull_s; }
};

/// Work-avoidance counters of the last spmv() call (also accumulated into
/// the "spmv.*" telemetry counters; see set_metrics).
struct IhtlSpmvStats {
  /// Buffer values re-zeroed by the reset phase (dirty segments only).
  std::uint64_t reset_values_cleared = 0;
  /// Buffer values the dense engine would have zeroed but reset skipped
  /// (untouched segments + single-owner hub ranges, per thread).
  std::uint64_t reset_values_skipped = 0;
  /// Merge tiles processed (shared blocks only).
  std::uint64_t merge_tiles = 0;
  /// Per-tile thread segments streamed by the merge.
  std::uint64_t merge_segments_streamed = 0;
  /// Per-tile thread segments skipped because the thread never pushed into
  /// the tile's block.
  std::uint64_t merge_segments_skipped = 0;
};

/// Reusable executor; holds the per-thread buffers, the touch bitmaps and
/// the precomputed work decomposition so repeated iterations pay no setup
/// cost. `policy` resolves each flipped block to shared (multi-thread
/// buffers + tiled merge) or single-owner (direct push, no merge) at build
/// time; PushPolicy::automatic picks per block from block/edge statistics.
template <typename Monoid = PlusMonoid>
class IhtlEngine {
 public:
  IhtlEngine(const IhtlGraph& ig, ThreadPool& pool,
             PushPolicy policy = PushPolicy::automatic)
      : ig_(&ig), pool_(&pool), policy_(policy) {
    // The engine is the one-shard special case: a single full-range shard
    // whose team is the whole pool. build_shard reproduces the historical
    // decomposition (single-owner thresholds, chunk and tile sizes) bit for
    // bit and runs the build-time invariants (chunk tiling, merge-tile
    // coverage, buffer disjointness) that push and merge rely on.
    shard_ = build_shard(ig, plan_shards(ig, 1).front(), pool.size(), policy,
                         Monoid::identity(), /*compute_remote=*/false);
    assert(shard_.hub_begin == 0 && shard_.dst_end == ig.num_vertices());
    reset_tally_.assign(pool.size(), PhaseTally{});
    merge_tally_.assign(pool.size(), PhaseTally{});
    set_metrics(&telemetry::MetricsRegistry::global());
  }

  const IhtlGraph& graph() const { return *ig_; }
  const IhtlPhaseTimes& last_phase_times() const { return times_; }
  const IhtlSpmvStats& last_stats() const { return stats_; }

  /// The policy this engine was built with (as requested, not resolved).
  PushPolicy policy() const { return policy_; }
  /// Blocks resolved to single-owner direct push at build time.
  std::size_t single_owner_blocks() const {
    return shard_.single_owner_blocks;
  }
  /// Merge tiles covering the shared blocks' hub ranges.
  std::size_t merge_tile_count() const { return shard_.merge_tiles.size(); }
  /// Whether the sparse block resolved to the binned scatter→accumulate
  /// path (PushPolicy::binned, or automatic past the LLC crossover).
  bool sparse_binned() const { return shard_.sparse_binned; }
  /// Destination-range bins of the binned sparse path (0 when pulling).
  std::size_t bin_count() const { return shard_.num_bins; }
  /// The full-range shard holding this engine's decomposition and buffers.
  const Shard& shard() const { return shard_; }

  /// Fault-injection hook (check lattice, --inject-bin-drop): after every
  /// scatter, the first staged cache line of slot space is overwritten
  /// with the monoid identity — as if one bin flush never landed — so the
  /// next accumulate computes with dropped contributions. Returns false
  /// (arming nothing) when the engine has no binned slots to drop.
  bool inject_bin_drop() {
    if (!shard_.sparse_binned || shard_.sparse_edges == 0) return false;
    bin_drop_armed_ = true;
    return true;
  }
  std::uint64_t bin_drops_applied() const { return bin_drops_applied_; }

  /// When on (and HW profiling is available), the push phase additionally
  /// attributes per-chunk HW-counter deltas to "spmv/push/block<k>" paths —
  /// the per-flipped-block rows of the paper's Table 3. Costs two counter
  /// reads per push chunk; meant for ihtl_profile runs, off by default.
  void set_per_block_hw(bool on) {
    per_block_hw_ = on;
    if (on && block_hw_paths_.size() != shard_.num_blocks()) {
      block_hw_paths_.resize(shard_.num_blocks());
      for (std::size_t b = 0; b < block_hw_paths_.size(); ++b) {
        block_hw_paths_[b] = "spmv/push/block" + std::to_string(b);
      }
    }
  }

  /// Redirects the engine's spans/counters to `reg` (nullptr disables
  /// recording entirely). Handles are resolved once here, so the per-call
  /// cost in spmv() is a few relaxed atomic adds per phase.
  void set_metrics(telemetry::MetricsRegistry* reg) {
    metrics_reg_ = reg;
    if (reg) {
      span_total_ = reg->timer("spmv");
      span_reset_ = reg->timer("spmv/reset");
      span_push_ = reg->timer("spmv/push");
      span_merge_ = reg->timer("spmv/merge");
      span_pull_ = reg->timer("spmv/pull");
      span_bin_scatter_ = reg->timer("spmv/bin-scatter");
      span_bin_accum_ = reg->timer("spmv/bin-accumulate");
      calls_ = reg->counter("spmv.calls");
      batch_lanes_ = reg->counter("spmv.batch_lanes");
      push_chunk_items_ = reg->counter("spmv.push_chunk_items");
      sparse_chunk_items_ = reg->counter("spmv.sparse_chunk_items");
      merge_tiles_run_ = reg->counter("spmv.merge_tiles");
      merge_tiles_skipped_ = reg->counter("spmv.merge_tiles_skipped");
      reset_values_cleared_ = reg->counter("spmv.reset_values_cleared");
      reset_values_skipped_ = reg->counter("spmv.reset_values_skipped");
      // Per-call mode attribution: how the build-time decisions resolved
      // (shared/single-owner block counts, pull vs binned sparse path) —
      // the perf_suite push_mode section and the automatic-policy tests
      // read these.
      push_mode_shared_ = reg->counter("spmv.push_mode.shared_blocks");
      push_mode_single_owner_ =
          reg->counter("spmv.push_mode.single_owner_blocks");
      push_mode_binned_ = reg->counter("spmv.push_mode.binned_sparse");
      push_mode_pull_ = reg->counter("spmv.push_mode.pull_sparse");
      bin_scatter_items_ = reg->counter("spmv.bin_scatter_items");
      bin_accum_items_ = reg->counter("spmv.bin_accum_items");
      reg->set_gauge("spmv.blocks_single_owner",
                     static_cast<double>(shard_.single_owner_blocks));
      reg->set_gauge("spmv.sparse_bins",
                     static_cast<double>(shard_.num_bins));
    } else {
      span_total_ = span_reset_ = span_push_ = span_merge_ = span_pull_ =
          span_bin_scatter_ = span_bin_accum_ = telemetry::TimerStat();
      calls_ = batch_lanes_ = push_chunk_items_ = sparse_chunk_items_ =
          merge_tiles_run_ = merge_tiles_skipped_ = reset_values_cleared_ =
              reset_values_skipped_ = push_mode_shared_ =
                  push_mode_single_owner_ = push_mode_binned_ =
                      push_mode_pull_ = bin_scatter_items_ =
                          bin_accum_items_ = telemetry::Counter();
    }
  }

  /// y[v] = combine over u in N-(v) of x[u], both in new-ID space.
  void spmv(std::span<const value_t> x, std::span<value_t> y) {
    assert(x.size() == ig_->num_vertices());
    assert(y.size() == ig_->num_vertices());
    const vid_t num_hubs = ig_->num_hubs();
    stats_ = IhtlSpmvStats{};
    // Timeline hook: the per-flipped-block push items land as "phase"
    // events (block id + direct flag), on top of the generic chunk/steal
    // events parallel_for emits. Name interned once per call.
    telemetry::TraceBuffer* const trace = telemetry::TraceBuffer::active();
    const std::uint32_t trace_push_block =
        trace ? trace->intern("push-block") : 0;
    Timer phase;

    // Phase 0: reset — each thread re-zeroes only the buffer segments it
    // dirtied in the PREVIOUS call (the touch bits), then clears its bits.
    // The PhaseScope routes every worker's HW-counter job delta (captured
    // by ThreadPool::run when profiling is on) to this phase's span path;
    // re-emplacing it per phase keeps exactly one target installed.
    std::optional<telemetry::perf::PhaseScope> hw;
    hw.emplace(metrics_reg_, "spmv/reset");
    if (shard_.buffers.length() > 0) {
      pool_->run([&](std::size_t tid) {
        // Full-range shard: local block/hub indices equal absolute ones.
        value_t* buf = shard_.buffers.get(tid);
        std::uint64_t cleared = 0;
        for (std::size_t b = 0; b < shard_.num_blocks(); ++b) {
          if (shard_.block_direct[b] || !shard_.touched.test(tid, b)) continue;
          const FlippedBlock& blk = ig_->blocks()[b];
          for (vid_t h = blk.hub_begin; h < blk.hub_end; ++h) {
            buf[h] = Monoid::identity();
          }
          cleared += blk.num_hubs();
        }
        shard_.touched.clear_row(tid);
        reset_tally_[tid] = {cleared, num_hubs - cleared};
      });
      for (const PhaseTally& t : reset_tally_) {
        stats_.reset_values_cleared += t.a;
        stats_.reset_values_skipped += t.b;
      }
    } else {
      // No shared blocks: the dense engine would still have zeroed every
      // per-thread hub slot; all of it is skipped here.
      stats_.reset_values_skipped =
          static_cast<std::uint64_t>(pool_->size()) * num_hubs;
    }
    IHTL_IF_INVARIANTS({
      // The touched-tracking must leave reset buffers indistinguishable
      // from freshly initialized ones (a stale dirty bit or a missed one
      // shows up here, one call late).
      for (std::size_t t = 0; t < pool_->size(); ++t) {
        for (std::size_t h = 0; h < shard_.buffers.length(); ++h) {
          IHTL_INVARIANT(shard_.buffers.get(t)[h] == Monoid::identity(),
                         "buffer not identity after touched-aware reset");
        }
      }
    });
    times_.reset_s = phase.elapsed_seconds();
    span_reset_.record_seconds(times_.reset_s);

    // Phase 1: push the flipped blocks (Algorithm 3, lines 1-4). Shared
    // chunks accumulate into the thread's private buffer and set the
    // (thread, block) touch bit; single-owner chunks initialize and
    // accumulate the block's output slice directly.
    phase.reset();
    hw.emplace(metrics_reg_, "spmv/push");
    const bool per_block_hw =
        per_block_hw_ && metrics_reg_ && telemetry::perf::available();
    parallel_for(
        *pool_, 0, shard_.push_chunks.size(),
        [&](std::uint64_t c, std::size_t tid) {
          const ShardPushChunk& chunk = shard_.push_chunks[c];
          const FlippedBlock& blk = ig_->blocks()[chunk.block];
          const std::uint64_t t0 = trace ? trace->now_ns() : 0;
          telemetry::PerfCounterValues hw0;
          if (per_block_hw) hw0 = telemetry::perf::snapshot_this_thread();
          value_t* buf;
          if (chunk.direct) {
            buf = y.data() + blk.hub_begin;
            const vid_t nh = blk.num_hubs();
            for (vid_t h = 0; h < nh; ++h) buf[h] = Monoid::identity();
          } else {
            shard_.touched.set(tid, chunk.block);
            buf = shard_.buffers.get(tid) + blk.hub_begin;
          }
          for (std::uint64_t v = chunk.sources.begin; v < chunk.sources.end;
               ++v) {
            const value_t xv = x[v];
            for (const vid_t rel : blk.csr.neighbors(static_cast<vid_t>(v))) {
              buf[rel] = Monoid::combine(buf[rel], xv);
            }
          }
          if (per_block_hw && hw0.available) {
            metrics_reg_->add_hw(
                block_hw_paths_[chunk.block],
                telemetry::perf::snapshot_this_thread().delta_since(hw0));
          }
          if (trace) {
            trace->record(telemetry::TraceEventKind::phase, trace_push_block,
                          t0, trace->now_ns() - t0,
                          static_cast<std::uint32_t>(chunk.block),
                          chunk.direct ? 1 : 0);
          }
        },
        {.grain = 1});
    times_.push_s = phase.elapsed_seconds();
    span_push_.record_seconds(times_.push_s);

    // Phase 2: tiled aggregation of the shared blocks (Algorithm 3, lines
    // 5-7). Each tile streams the touching threads' segments once, in
    // ascending thread order — the same combine order per hub as the
    // classic per-hub loop, so results are unchanged.
    phase.reset();
    hw.emplace(metrics_reg_, "spmv/merge");
    if (!shard_.merge_tiles.empty()) {
      for (PhaseTally& t : merge_tally_) t = PhaseTally{};
      parallel_for(
          *pool_, 0, shard_.merge_tiles.size(),
          [&](std::uint64_t i, std::size_t tid) {
            const ShardMergeTile& tile = shard_.merge_tiles[i];
            const vid_t len = tile.end - tile.begin;
            value_t* yt = y.data() + tile.begin;
            for (vid_t k = 0; k < len; ++k) yt[k] = Monoid::identity();
            std::uint64_t streamed = 0;
            for (std::size_t t = 0; t < pool_->size(); ++t) {
              if (!shard_.touched.test(t, tile.block)) continue;
              ++streamed;
              const value_t* seg = shard_.buffers.get(t) + tile.begin;
              for (vid_t k = 0; k < len; ++k) {
                yt[k] = Monoid::combine(yt[k], seg[k]);
              }
            }
            merge_tally_[tid].a += streamed;
            merge_tally_[tid].b += pool_->size() - streamed;
          },
          {.grain = 1});
      stats_.merge_tiles = shard_.merge_tiles.size();
      for (const PhaseTally& t : merge_tally_) {
        stats_.merge_segments_streamed += t.a;
        stats_.merge_segments_skipped += t.b;
      }
    }
    times_.merge_s = phase.elapsed_seconds();
    span_merge_.record_seconds(times_.merge_s);

    // Phase 3: the sparse block — the CSC pull (Algorithm 3, lines 8-10),
    // or the propagation-blocked scatter→accumulate pair when the block
    // resolved to binned mode (bitwise-identical to the pull by the gather
    // permutation; see shard.h). times_.pull_s covers the whole sparse
    // phase either way; the bin sub-phases get their own spans on top.
    phase.reset();
    const Adjacency& sparse = ig_->sparse();
    if (shard_.sparse_binned) {
      hw.emplace(metrics_reg_, "spmv/bin-scatter");
      parallel_for(
          *pool_, 0, shard_.scatter_chunks.size(),
          [&](std::uint64_t c, std::size_t tid) {
            shard_bin_scatter_chunk(shard_, x.data(), 1, tid, c,
                                    shard_.bin_values.data());
          },
          {.grain = 1});
      apply_bin_drop(shard_.bin_values.data(), 1);
      const double scatter_s = phase.elapsed_seconds();
      span_bin_scatter_.record_seconds(scatter_s);
      phase.reset();
      hw.emplace(metrics_reg_, "spmv/bin-accumulate");
      parallel_for(
          *pool_, 0, shard_.bin_accum_chunks.size(),
          [&](std::uint64_t i, std::size_t) {
            shard_bin_accumulate_chunk<Monoid>(shard_, sparse, num_hubs, 1, i,
                                               shard_.bin_values.data(),
                                               y.data());
          },
          {.grain = 1});
      const double accum_s = phase.elapsed_seconds();
      span_bin_accum_.record_seconds(accum_s);
      times_.pull_s = scatter_s + accum_s;
    } else {
      hw.emplace(metrics_reg_, "spmv/pull");
      parallel_for(
          *pool_, 0, shard_.sparse_chunks.size(),
          [&](std::uint64_t p, std::size_t) {
            for (std::uint64_t local = shard_.sparse_chunks[p].begin;
                 local < shard_.sparse_chunks[p].end; ++local) {
              value_t acc = Monoid::identity();
              for (const vid_t u :
                   sparse.neighbors(static_cast<vid_t>(local))) {
                acc = Monoid::combine(acc, x[u]);
              }
              y[num_hubs + local] = acc;
            }
          },
          {.grain = 1});
      times_.pull_s = phase.elapsed_seconds();
    }
    span_pull_.record_seconds(times_.pull_s);
    hw.reset();

    span_total_.record_seconds(times_.total());
    calls_.inc(0);
    push_chunk_items_.add(0, shard_.push_chunks.size());
    merge_tiles_run_.add(0, stats_.merge_tiles);
    merge_tiles_skipped_.add(0, stats_.merge_segments_skipped);
    reset_values_cleared_.add(0, stats_.reset_values_cleared);
    reset_values_skipped_.add(0, stats_.reset_values_skipped);
    record_push_mode();
  }

  /// Batched SpMM-style variant: k right-hand-side vectors per traversal.
  /// x and y are vertex-major n×k arrays (element (v, lane) at v*k + lane),
  /// both in the new-ID space. The graph — blocks, chunks, tiles — is walked
  /// exactly once per call; each random access (a hub-buffer slot in push, an
  /// x row in pull) is amortized over the k lanes, and at k=8 doubles one
  /// row is exactly one 64-byte cache line. The k-lane hub buffers live
  /// beside the scalar ones (hub-major, hub h at offset h*k) with their own
  /// touch bitmaps, so scalar and batched calls can interleave freely; both
  /// are sized/reset lazily on first use at a given k. k==1 delegates to the
  /// scalar path outright.
  void spmv_batch(std::span<const value_t> x, std::span<value_t> y,
                  std::size_t k) {
    assert(k >= 1);
    if (k == 1) {
      spmv(x, y);
      return;
    }
    const std::size_t n = ig_->num_vertices();
    assert(x.size() == n * k);
    assert(y.size() == n * k);
    (void)n;
    const vid_t num_hubs = ig_->num_hubs();
    const std::size_t num_blocks = shard_.num_blocks();
    const bool any_shared = shard_.any_shared();
    stats_ = IhtlSpmvStats{};
    telemetry::TraceBuffer* const trace = telemetry::TraceBuffer::active();
    const std::uint32_t trace_push_block =
        trace ? trace->intern("push-block") : 0;
    Timer phase;

    // Lane-widened buffers are (re)built whenever k changes; a fresh build
    // is identity-initialized, so the first reset has nothing to clear.
    shard_.ensure_batch_lanes(k, Monoid::identity());

    // Phase 0: reset — identical touched-aware policy to the scalar path,
    // over k-wide segments (hub h spans [h*k, (h+1)*k)).
    std::optional<telemetry::perf::PhaseScope> hw;
    hw.emplace(metrics_reg_, "spmv/reset");
    if (any_shared) {
      pool_->run([&](std::size_t tid) {
        value_t* buf = shard_.batch_buffers.get(tid);
        std::uint64_t cleared = 0;
        for (std::size_t b = 0; b < num_blocks; ++b) {
          if (shard_.block_direct[b] || !shard_.batch_touched.test(tid, b)) {
            continue;
          }
          const FlippedBlock& blk = ig_->blocks()[b];
          value_t* seg = buf + static_cast<std::size_t>(blk.hub_begin) * k;
          const std::size_t len = static_cast<std::size_t>(blk.num_hubs()) * k;
          for (std::size_t i = 0; i < len; ++i) seg[i] = Monoid::identity();
          cleared += len;
        }
        shard_.batch_touched.clear_row(tid);
        reset_tally_[tid] = {cleared,
                             static_cast<std::uint64_t>(num_hubs) * k - cleared};
      });
      for (const PhaseTally& t : reset_tally_) {
        stats_.reset_values_cleared += t.a;
        stats_.reset_values_skipped += t.b;
      }
    } else {
      stats_.reset_values_skipped =
          static_cast<std::uint64_t>(pool_->size()) * num_hubs * k;
    }
    IHTL_IF_INVARIANTS({
      for (std::size_t t = 0; t < pool_->size(); ++t) {
        for (std::size_t i = 0; i < shard_.batch_buffers.length(); ++i) {
          IHTL_INVARIANT(shard_.batch_buffers.get(t)[i] == Monoid::identity(),
                         "batch buffer not identity after touched-aware reset");
        }
      }
    });
    times_.reset_s = phase.elapsed_seconds();
    span_reset_.record_seconds(times_.reset_s);

    // Phase 1: push. Same (block, source-chunk) decomposition as the scalar
    // path; each edge updates a contiguous k-lane row of the hub buffer.
    phase.reset();
    hw.emplace(metrics_reg_, "spmv/push");
    const bool per_block_hw =
        per_block_hw_ && metrics_reg_ && telemetry::perf::available();
    parallel_for(
        *pool_, 0, shard_.push_chunks.size(),
        [&](std::uint64_t c, std::size_t tid) {
          const ShardPushChunk& chunk = shard_.push_chunks[c];
          const FlippedBlock& blk = ig_->blocks()[chunk.block];
          const std::uint64_t t0 = trace ? trace->now_ns() : 0;
          telemetry::PerfCounterValues hw0;
          if (per_block_hw) hw0 = telemetry::perf::snapshot_this_thread();
          value_t* buf;
          if (chunk.direct) {
            buf = y.data() + static_cast<std::size_t>(blk.hub_begin) * k;
            const std::size_t len =
                static_cast<std::size_t>(blk.num_hubs()) * k;
            for (std::size_t i = 0; i < len; ++i) buf[i] = Monoid::identity();
          } else {
            shard_.batch_touched.set(tid, chunk.block);
            buf = shard_.batch_buffers.get(tid) +
                  static_cast<std::size_t>(blk.hub_begin) * k;
          }
          for (std::uint64_t v = chunk.sources.begin; v < chunk.sources.end;
               ++v) {
            const value_t* xv = x.data() + v * k;
            for (const vid_t rel : blk.csr.neighbors(static_cast<vid_t>(v))) {
              value_t* dst = buf + static_cast<std::size_t>(rel) * k;
              for (std::size_t lane = 0; lane < k; ++lane) {
                dst[lane] = Monoid::combine(dst[lane], xv[lane]);
              }
            }
          }
          if (per_block_hw && hw0.available) {
            metrics_reg_->add_hw(
                block_hw_paths_[chunk.block],
                telemetry::perf::snapshot_this_thread().delta_since(hw0));
          }
          if (trace) {
            trace->record(telemetry::TraceEventKind::phase, trace_push_block,
                          t0, trace->now_ns() - t0,
                          static_cast<std::uint32_t>(chunk.block),
                          chunk.direct ? 1 : 0);
          }
        },
        {.grain = 1});
    times_.push_s = phase.elapsed_seconds();
    span_push_.record_seconds(times_.push_s);

    // Phase 2: merge. A scalar tile of [begin, end) hubs is the contiguous
    // value range [begin*k, end*k) here — same streaming, k× longer runs.
    phase.reset();
    hw.emplace(metrics_reg_, "spmv/merge");
    if (!shard_.merge_tiles.empty()) {
      for (PhaseTally& t : merge_tally_) t = PhaseTally{};
      parallel_for(
          *pool_, 0, shard_.merge_tiles.size(),
          [&](std::uint64_t i, std::size_t tid) {
            const ShardMergeTile& tile = shard_.merge_tiles[i];
            const std::size_t len =
                static_cast<std::size_t>(tile.end - tile.begin) * k;
            value_t* yt =
                y.data() + static_cast<std::size_t>(tile.begin) * k;
            for (std::size_t j = 0; j < len; ++j) yt[j] = Monoid::identity();
            std::uint64_t streamed = 0;
            for (std::size_t t = 0; t < pool_->size(); ++t) {
              if (!shard_.batch_touched.test(t, tile.block)) continue;
              ++streamed;
              const value_t* seg = shard_.batch_buffers.get(t) +
                                   static_cast<std::size_t>(tile.begin) * k;
              for (std::size_t j = 0; j < len; ++j) {
                yt[j] = Monoid::combine(yt[j], seg[j]);
              }
            }
            merge_tally_[tid].a += streamed;
            merge_tally_[tid].b += pool_->size() - streamed;
          },
          {.grain = 1});
      stats_.merge_tiles = shard_.merge_tiles.size();
      for (const PhaseTally& t : merge_tally_) {
        stats_.merge_segments_streamed += t.a;
        stats_.merge_segments_skipped += t.b;
      }
    }
    times_.merge_s = phase.elapsed_seconds();
    span_merge_.record_seconds(times_.merge_s);

    // Phase 3: the sparse block, k lanes wide — pull (each in-edge reads
    // one contiguous k-lane x row into k private accumulators) or the
    // binned scatter→accumulate over k-lane slot rows (at k=8 doubles one
    // row is exactly one cache line, so the scatter skips the scalar
    // path's staging buffers).
    phase.reset();
    const Adjacency& sparse = ig_->sparse();
    if (shard_.sparse_binned) {
      hw.emplace(metrics_reg_, "spmv/bin-scatter");
      parallel_for(
          *pool_, 0, shard_.scatter_chunks.size(),
          [&](std::uint64_t c, std::size_t tid) {
            shard_bin_scatter_chunk(shard_, x.data(), k, tid, c,
                                    shard_.batch_bin_values.data());
          },
          {.grain = 1});
      apply_bin_drop(shard_.batch_bin_values.data(), k);
      const double scatter_s = phase.elapsed_seconds();
      span_bin_scatter_.record_seconds(scatter_s);
      phase.reset();
      hw.emplace(metrics_reg_, "spmv/bin-accumulate");
      parallel_for(
          *pool_, 0, shard_.bin_accum_chunks.size(),
          [&](std::uint64_t i, std::size_t) {
            shard_bin_accumulate_chunk<Monoid>(shard_, sparse, num_hubs, k, i,
                                               shard_.batch_bin_values.data(),
                                               y.data());
          },
          {.grain = 1});
      const double accum_s = phase.elapsed_seconds();
      span_bin_accum_.record_seconds(accum_s);
      times_.pull_s = scatter_s + accum_s;
    } else {
      hw.emplace(metrics_reg_, "spmv/pull");
      parallel_for(
          *pool_, 0, shard_.sparse_chunks.size(),
          [&](std::uint64_t p, std::size_t) {
            for (std::uint64_t local = shard_.sparse_chunks[p].begin;
                 local < shard_.sparse_chunks[p].end; ++local) {
              value_t* acc =
                  y.data() + (static_cast<std::size_t>(num_hubs) + local) * k;
              for (std::size_t lane = 0; lane < k; ++lane) {
                acc[lane] = Monoid::identity();
              }
              for (const vid_t u :
                   sparse.neighbors(static_cast<vid_t>(local))) {
                const value_t* xu = x.data() + static_cast<std::size_t>(u) * k;
                for (std::size_t lane = 0; lane < k; ++lane) {
                  acc[lane] = Monoid::combine(acc[lane], xu[lane]);
                }
              }
            }
          },
          {.grain = 1});
      times_.pull_s = phase.elapsed_seconds();
    }
    span_pull_.record_seconds(times_.pull_s);
    hw.reset();

    span_total_.record_seconds(times_.total());
    calls_.inc(0);
    batch_lanes_.add(0, k);
    push_chunk_items_.add(0, shard_.push_chunks.size());
    merge_tiles_run_.add(0, stats_.merge_tiles);
    merge_tiles_skipped_.add(0, stats_.merge_segments_skipped);
    reset_values_cleared_.add(0, stats_.reset_values_cleared);
    reset_values_skipped_.add(0, stats_.reset_values_skipped);
    record_push_mode();
  }

  /// Lanes the batch buffers are currently sized for (0 until the first
  /// spmv_batch call with k > 1).
  std::size_t batch_lanes() const { return shard_.batch_k; }

 private:
  struct alignas(64) PhaseTally {
    std::uint64_t a = 0, b = 0;
  };

  /// Per-call mode attribution shared by the scalar and batched paths.
  /// sparse_chunk_items / bin_*_items count only the path that actually
  /// ran this call.
  void record_push_mode() {
    push_mode_shared_.add(0,
                          shard_.num_blocks() - shard_.single_owner_blocks);
    push_mode_single_owner_.add(0, shard_.single_owner_blocks);
    if (shard_.sparse_binned) {
      push_mode_binned_.inc(0);
      bin_scatter_items_.add(0, shard_.scatter_chunks.size());
      bin_accum_items_.add(0, shard_.bin_accum_chunks.size());
    } else {
      push_mode_pull_.inc(0);
      sparse_chunk_items_.add(0, shard_.sparse_chunks.size());
    }
  }

  /// Applies an armed bin-flush drop to the slot array just scattered.
  void apply_bin_drop(value_t* values, std::size_t k) {
    if (!bin_drop_armed_) return;
    const std::size_t nv =
        std::min<std::size_t>(kBinStageValues,
                              static_cast<std::size_t>(shard_.sparse_edges)) *
        k;
    for (std::size_t i = 0; i < nv; ++i) values[i] = Monoid::identity();
    ++bin_drops_applied_;
  }

  const IhtlGraph* ig_;
  ThreadPool* pool_;
  PushPolicy policy_;
  /// The engine's entire decomposition + buffer state lives in one
  /// full-range shard (dst range [0, n), every flipped block, team = whole
  /// pool); local block/hub indices coincide with absolute ones.
  Shard shard_;
  std::vector<PhaseTally> reset_tally_, merge_tally_;
  IhtlPhaseTimes times_;
  IhtlSpmvStats stats_;
  telemetry::MetricsRegistry* metrics_reg_ = nullptr;
  bool per_block_hw_ = false;
  std::vector<std::string> block_hw_paths_;
  telemetry::TimerStat span_total_, span_reset_, span_push_, span_merge_,
      span_pull_, span_bin_scatter_, span_bin_accum_;
  telemetry::Counter calls_, batch_lanes_, push_chunk_items_,
      sparse_chunk_items_,
      merge_tiles_run_, merge_tiles_skipped_, reset_values_cleared_,
      reset_values_skipped_, push_mode_shared_, push_mode_single_owner_,
      push_mode_binned_, push_mode_pull_, bin_scatter_items_,
      bin_accum_items_;
  bool bin_drop_armed_ = false;
  std::uint64_t bin_drops_applied_ = 0;
};

/// One-shot convenience wrapper operating in the ORIGINAL ID space:
/// permutes x in, runs one SpMV on `engine`, permutes y back. Reuses the
/// caller's engine, so repeated one-shot calls pay no buffer or work-
/// decomposition setup.
template <typename Monoid>
void ihtl_spmv_once(IhtlEngine<Monoid>& engine, std::span<const value_t> x,
                    std::span<value_t> y) {
  const auto& o2n = engine.graph().old_to_new();
  std::vector<value_t> xp(x.size()), yp(y.size());
  for (std::size_t v = 0; v < x.size(); ++v) xp[o2n[v]] = x[v];
  engine.spmv(xp, yp);
  for (std::size_t v = 0; v < y.size(); ++v) y[v] = yp[o2n[v]];
}

/// Batched counterpart of ihtl_spmv_once: permutes every lane of the
/// vertex-major n×k arrays into the relabeled space, runs one batched SpMV,
/// permutes back. A vertex's k-lane row moves as one contiguous block.
template <typename Monoid>
void ihtl_spmv_batch_once(IhtlEngine<Monoid>& engine,
                          std::span<const value_t> x, std::span<value_t> y,
                          std::size_t k) {
  const auto& o2n = engine.graph().old_to_new();
  const std::size_t n = o2n.size();
  std::vector<value_t> xp(x.size()), yp(y.size());
  for (std::size_t v = 0; v < n; ++v) {
    const std::size_t nv = o2n[v];
    for (std::size_t lane = 0; lane < k; ++lane) {
      xp[nv * k + lane] = x[v * k + lane];
    }
  }
  engine.spmv_batch(xp, yp, k);
  for (std::size_t v = 0; v < n; ++v) {
    const std::size_t nv = o2n[v];
    for (std::size_t lane = 0; lane < k; ++lane) {
      y[v * k + lane] = yp[nv * k + lane];
    }
  }
}

/// Engine-less variant. NOTE: constructs a fresh IhtlEngine — per-thread
/// buffers plus the push/merge work decomposition, O(threads x hubs + m/
/// chunk) — on EVERY call. Fine for a genuine one-shot; for anything
/// iterative build an IhtlEngine once and use the overload above (or stay
/// in the relabeled space entirely, as the apps do).
template <typename Monoid = PlusMonoid>
void ihtl_spmv_once(ThreadPool& pool, const IhtlGraph& ig,
                    std::span<const value_t> x, std::span<value_t> y,
                    PushPolicy policy = PushPolicy::automatic) {
  IhtlEngine<Monoid> engine(ig, pool, policy);
  ihtl_spmv_once(engine, x, y);
}

}  // namespace ihtl
