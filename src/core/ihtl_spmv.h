// The iHTL SpMV executor (Algorithm 3), touched-aware and tiled.
//
// One SpMV over the iHTL graph runs three phases:
//   1. PUSH the flipped blocks: threads claim (block, source-chunk) work
//      items; every update lands in the thread's private hub buffer (the
//      block-relative target index stored in the block CSR plus the block's
//      hub base is exactly the buffer slot). No synchronization needed;
//      a thread works on one flipped block at a time. Blocks resolved to
//      single-owner (see PushPolicy) are one work item each and push
//      straight into the output slice instead — their hub range belongs to
//      exactly one thread, so the write is atomic-free and the block needs
//      neither buffer reset nor merge.
//   2. MERGE the per-thread buffers into the hub results, in cache-line
//      tiles: each tile streams every touching thread's buffer segment once
//      (vectorizable inner loop), in fixed thread order so floating-point
//      results are deterministic for a given chunk->thread assignment.
//      Threads that never pushed into a tile's block are skipped entirely.
//   3. PULL the sparse block for all non-hub destinations (edge-balanced
//      chunks, private writes).
// Buffer RESET before the push is equally touched-aware: only the (thread,
// block) segments dirtied by the PREVIOUS call are re-zeroed, so zero-hub
// graphs and skewed chunk ownership pay O(touched) instead of
// O(threads x hubs).
// Inputs and outputs live in the NEW (relabeled) ID space; apps permute at
// the boundary (the paper iterates entirely in the relabeled space too).
#pragma once

#include <algorithm>
#include <cassert>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "baselines/semiring.h"
#include "check/invariants.h"
#include "core/ihtl_config.h"
#include "core/ihtl_graph.h"
#include "parallel/parallel_for.h"
#include "parallel/partitioner.h"
#include "parallel/per_thread.h"
#include "parallel/thread_pool.h"
#include "parallel/timer.h"
#include "parallel/touch_matrix.h"
#include "telemetry/metrics.h"
#include "telemetry/perf_counters.h"
#include "telemetry/trace.h"

namespace ihtl {

/// Wall-clock per phase of the last spmv() call (Table 5's breakdown).
/// Thin single-call view over the cumulative "spmv/*" telemetry spans.
struct IhtlPhaseTimes {
  double reset_s = 0.0;  ///< zeroing the dirtied per-thread buffer segments
  double push_s = 0.0;   ///< flipped-block push traversal
  double merge_s = 0.0;  ///< tiled per-thread buffer aggregation
  double pull_s = 0.0;   ///< sparse-block pull traversal
  double total() const { return reset_s + push_s + merge_s + pull_s; }
};

/// Work-avoidance counters of the last spmv() call (also accumulated into
/// the "spmv.*" telemetry counters; see set_metrics).
struct IhtlSpmvStats {
  /// Buffer values re-zeroed by the reset phase (dirty segments only).
  std::uint64_t reset_values_cleared = 0;
  /// Buffer values the dense engine would have zeroed but reset skipped
  /// (untouched segments + single-owner hub ranges, per thread).
  std::uint64_t reset_values_skipped = 0;
  /// Merge tiles processed (shared blocks only).
  std::uint64_t merge_tiles = 0;
  /// Per-tile thread segments streamed by the merge.
  std::uint64_t merge_segments_streamed = 0;
  /// Per-tile thread segments skipped because the thread never pushed into
  /// the tile's block.
  std::uint64_t merge_segments_skipped = 0;
};

/// Reusable executor; holds the per-thread buffers, the touch bitmaps and
/// the precomputed work decomposition so repeated iterations pay no setup
/// cost. `policy` resolves each flipped block to shared (multi-thread
/// buffers + tiled merge) or single-owner (direct push, no merge) at build
/// time; PushPolicy::automatic picks per block from block/edge statistics.
template <typename Monoid = PlusMonoid>
class IhtlEngine {
 public:
  IhtlEngine(const IhtlGraph& ig, ThreadPool& pool,
             PushPolicy policy = PushPolicy::automatic)
      : ig_(&ig), pool_(&pool), policy_(policy) {
    const std::size_t num_blocks = ig.blocks().size();
    block_direct_.assign(num_blocks, 0);

    // Resolve the per-block mode. A block goes single-owner when splitting
    // it across threads cannot pay for the extra buffer reset + merge: with
    // one worker chunking never helps, and a block holding less than
    // ~1/(16 T) of the flipped edges contributes a few percent of one
    // thread's push share at most.
    if (num_blocks > 0 && policy != PushPolicy::shared) {
      eid_t flipped = 0;
      for (const FlippedBlock& b : ig.blocks()) flipped += b.num_edges();
      const eid_t threshold = std::max<eid_t>(
          kSingleOwnerMinEdges,
          flipped / static_cast<eid_t>(pool.size() * 16));
      for (std::size_t b = 0; b < num_blocks; ++b) {
        const eid_t edges = ig.blocks()[b].num_edges();
        if (edges == 0) continue;  // merge tiles supply the identity fill
        if (policy == PushPolicy::single_owner || pool.size() == 1 ||
            edges <= threshold) {
          block_direct_[b] = 1;
          ++single_owner_blocks_;
        }
      }
    }

    // Work decomposition for the push phase: edge-balanced (block,
    // source-chunk) items for shared blocks, one whole-block item for
    // single-owner blocks.
    const std::size_t chunks_per_block = pool.size() * 4;
    for (std::size_t b = 0; b < num_blocks; ++b) {
      const auto& offsets = ig.blocks()[b].csr.offsets;
      if (block_direct_[b]) {
        push_chunks_.push_back({b, Range{0, offsets.size() - 1}, true});
        continue;
      }
      const auto parts = partition_by_edge(offsets, chunks_per_block);
      for (const Range& r : parts) {
        if (r.size() > 0) push_chunks_.push_back({b, r, false});
      }
    }

    // Per-thread buffers + touch bitmaps back the shared blocks only; an
    // all-single-owner decomposition needs neither.
    const bool any_shared = single_owner_blocks_ < num_blocks;
    if (any_shared) {
      buffers_ = PerThread<value_t>(pool.size(), ig.num_hubs(),
                                    Monoid::identity());
      touched_ = TouchMatrix(pool.size(), num_blocks);
      // Cache-line-tiled merge chunks over the shared blocks' hub ranges.
      for (std::size_t b = 0; b < num_blocks; ++b) {
        if (block_direct_[b]) continue;
        const FlippedBlock& blk = ig.blocks()[b];
        for (vid_t lo = blk.hub_begin; lo < blk.hub_end;
             lo += kMergeTileValues) {
          const vid_t hi = std::min<vid_t>(lo + kMergeTileValues, blk.hub_end);
          merge_tiles_.push_back({b, lo, hi});
        }
      }
    }
    reset_tally_.assign(pool.size(), PhaseTally{});
    merge_tally_.assign(pool.size(), PhaseTally{});

    // Edge-balanced destination chunks for the sparse pull phase.
    sparse_chunks_ = partition_by_edge(ig.sparse().offsets, pool.size() * 8);
    set_metrics(&telemetry::MetricsRegistry::global());

    // Invariant-build checks. The push decomposition must tile each flipped
    // block exactly (chunks in source order, non-overlapping, edges covered
    // once), single-owner blocks must be exactly one chunk, the merge tiles
    // must partition each shared block's hub range in order, and the
    // per-thread hub buffers must occupy disjoint memory — push and merge
    // rely on all four for race freedom.
    IHTL_IF_INVARIANTS({
      for (std::size_t b = 0; b < num_blocks; ++b) {
        const auto& offsets = ig.blocks()[b].csr.offsets;
        eid_t covered = 0;
        std::size_t chunks = 0;
        std::uint64_t prev_end = 0;
        for (const PushChunk& c : push_chunks_) {
          if (c.block != b) continue;
          ++chunks;
          IHTL_INVARIANT(c.direct == (block_direct_[b] != 0),
                         "push chunk mode disagrees with its block's policy");
          IHTL_INVARIANT(c.sources.begin >= prev_end,
                         "push chunks overlap or are unsorted within a block");
          IHTL_INVARIANT(c.sources.end <= offsets.size() - 1,
                         "push chunk exceeds the block's source range");
          prev_end = c.sources.end;
          covered += offsets[c.sources.end] - offsets[c.sources.begin];
        }
        IHTL_INVARIANT(covered == ig.blocks()[b].num_edges(),
                       "push chunks do not cover the block's edges exactly");
        IHTL_INVARIANT(!block_direct_[b] || chunks == 1,
                       "single-owner block decomposed into multiple chunks");
        if (!block_direct_[b]) {
          vid_t expect = ig.blocks()[b].hub_begin;
          for (const MergeTile& t : merge_tiles_) {
            if (t.block != b) continue;
            IHTL_INVARIANT(t.begin == expect,
                           "merge tiles leave a gap or overlap in a block");
            expect = t.end;
          }
          IHTL_INVARIANT(expect == ig.blocks()[b].hub_end,
                         "merge tiles do not cover the block's hub range");
        }
      }
      const vid_t num_hubs = ig.num_hubs();
      if (buffers_.length() == num_hubs && num_hubs > 0) {
        for (std::size_t t = 0; t + 1 < pool.size(); ++t) {
          const value_t* lo = buffers_.get(t);
          const value_t* hi = buffers_.get(t + 1);
          IHTL_INVARIANT(lo + num_hubs <= hi || hi + num_hubs <= lo,
                         "per-thread hub buffers overlap before merge");
        }
      }
    });
  }

  const IhtlGraph& graph() const { return *ig_; }
  const IhtlPhaseTimes& last_phase_times() const { return times_; }
  const IhtlSpmvStats& last_stats() const { return stats_; }

  /// The policy this engine was built with (as requested, not resolved).
  PushPolicy policy() const { return policy_; }
  /// Blocks resolved to single-owner direct push at build time.
  std::size_t single_owner_blocks() const { return single_owner_blocks_; }
  /// Merge tiles covering the shared blocks' hub ranges.
  std::size_t merge_tile_count() const { return merge_tiles_.size(); }

  /// When on (and HW profiling is available), the push phase additionally
  /// attributes per-chunk HW-counter deltas to "spmv/push/block<k>" paths —
  /// the per-flipped-block rows of the paper's Table 3. Costs two counter
  /// reads per push chunk; meant for ihtl_profile runs, off by default.
  void set_per_block_hw(bool on) {
    per_block_hw_ = on;
    if (on && block_hw_paths_.size() != block_direct_.size()) {
      block_hw_paths_.resize(block_direct_.size());
      for (std::size_t b = 0; b < block_hw_paths_.size(); ++b) {
        block_hw_paths_[b] = "spmv/push/block" + std::to_string(b);
      }
    }
  }

  /// Redirects the engine's spans/counters to `reg` (nullptr disables
  /// recording entirely). Handles are resolved once here, so the per-call
  /// cost in spmv() is a few relaxed atomic adds per phase.
  void set_metrics(telemetry::MetricsRegistry* reg) {
    metrics_reg_ = reg;
    if (reg) {
      span_total_ = reg->timer("spmv");
      span_reset_ = reg->timer("spmv/reset");
      span_push_ = reg->timer("spmv/push");
      span_merge_ = reg->timer("spmv/merge");
      span_pull_ = reg->timer("spmv/pull");
      calls_ = reg->counter("spmv.calls");
      batch_lanes_ = reg->counter("spmv.batch_lanes");
      push_chunk_items_ = reg->counter("spmv.push_chunk_items");
      sparse_chunk_items_ = reg->counter("spmv.sparse_chunk_items");
      merge_tiles_run_ = reg->counter("spmv.merge_tiles");
      merge_tiles_skipped_ = reg->counter("spmv.merge_tiles_skipped");
      reset_values_cleared_ = reg->counter("spmv.reset_values_cleared");
      reset_values_skipped_ = reg->counter("spmv.reset_values_skipped");
      reg->set_gauge("spmv.blocks_single_owner",
                     static_cast<double>(single_owner_blocks_));
    } else {
      span_total_ = span_reset_ = span_push_ = span_merge_ = span_pull_ =
          telemetry::TimerStat();
      calls_ = batch_lanes_ = push_chunk_items_ = sparse_chunk_items_ =
          merge_tiles_run_ = merge_tiles_skipped_ = reset_values_cleared_ =
              reset_values_skipped_ = telemetry::Counter();
    }
  }

  /// y[v] = combine over u in N-(v) of x[u], both in new-ID space.
  void spmv(std::span<const value_t> x, std::span<value_t> y) {
    assert(x.size() == ig_->num_vertices());
    assert(y.size() == ig_->num_vertices());
    const vid_t num_hubs = ig_->num_hubs();
    stats_ = IhtlSpmvStats{};
    // Timeline hook: the per-flipped-block push items land as "phase"
    // events (block id + direct flag), on top of the generic chunk/steal
    // events parallel_for emits. Name interned once per call.
    telemetry::TraceBuffer* const trace = telemetry::TraceBuffer::active();
    const std::uint32_t trace_push_block =
        trace ? trace->intern("push-block") : 0;
    Timer phase;

    // Phase 0: reset — each thread re-zeroes only the buffer segments it
    // dirtied in the PREVIOUS call (the touch bits), then clears its bits.
    // The PhaseScope routes every worker's HW-counter job delta (captured
    // by ThreadPool::run when profiling is on) to this phase's span path;
    // re-emplacing it per phase keeps exactly one target installed.
    std::optional<telemetry::perf::PhaseScope> hw;
    hw.emplace(metrics_reg_, "spmv/reset");
    if (buffers_.length() > 0) {
      pool_->run([&](std::size_t tid) {
        value_t* buf = buffers_.get(tid);
        std::uint64_t cleared = 0;
        for (std::size_t b = 0; b < block_direct_.size(); ++b) {
          if (block_direct_[b] || !touched_.test(tid, b)) continue;
          const FlippedBlock& blk = ig_->blocks()[b];
          for (vid_t h = blk.hub_begin; h < blk.hub_end; ++h) {
            buf[h] = Monoid::identity();
          }
          cleared += blk.num_hubs();
        }
        touched_.clear_row(tid);
        reset_tally_[tid] = {cleared, num_hubs - cleared};
      });
      for (const PhaseTally& t : reset_tally_) {
        stats_.reset_values_cleared += t.a;
        stats_.reset_values_skipped += t.b;
      }
    } else {
      // No shared blocks: the dense engine would still have zeroed every
      // per-thread hub slot; all of it is skipped here.
      stats_.reset_values_skipped =
          static_cast<std::uint64_t>(pool_->size()) * num_hubs;
    }
    IHTL_IF_INVARIANTS({
      // The touched-tracking must leave reset buffers indistinguishable
      // from freshly initialized ones (a stale dirty bit or a missed one
      // shows up here, one call late).
      for (std::size_t t = 0; t < pool_->size(); ++t) {
        for (std::size_t h = 0; h < buffers_.length(); ++h) {
          IHTL_INVARIANT(buffers_.get(t)[h] == Monoid::identity(),
                         "buffer not identity after touched-aware reset");
        }
      }
    });
    times_.reset_s = phase.elapsed_seconds();
    span_reset_.record_seconds(times_.reset_s);

    // Phase 1: push the flipped blocks (Algorithm 3, lines 1-4). Shared
    // chunks accumulate into the thread's private buffer and set the
    // (thread, block) touch bit; single-owner chunks initialize and
    // accumulate the block's output slice directly.
    phase.reset();
    hw.emplace(metrics_reg_, "spmv/push");
    const bool per_block_hw =
        per_block_hw_ && metrics_reg_ && telemetry::perf::available();
    parallel_for(
        *pool_, 0, push_chunks_.size(),
        [&](std::uint64_t c, std::size_t tid) {
          const PushChunk& chunk = push_chunks_[c];
          const FlippedBlock& blk = ig_->blocks()[chunk.block];
          const std::uint64_t t0 = trace ? trace->now_ns() : 0;
          telemetry::PerfCounterValues hw0;
          if (per_block_hw) hw0 = telemetry::perf::snapshot_this_thread();
          value_t* buf;
          if (chunk.direct) {
            buf = y.data() + blk.hub_begin;
            const vid_t nh = blk.num_hubs();
            for (vid_t h = 0; h < nh; ++h) buf[h] = Monoid::identity();
          } else {
            touched_.set(tid, chunk.block);
            buf = buffers_.get(tid) + blk.hub_begin;
          }
          for (std::uint64_t v = chunk.sources.begin; v < chunk.sources.end;
               ++v) {
            const value_t xv = x[v];
            for (const vid_t rel : blk.csr.neighbors(static_cast<vid_t>(v))) {
              buf[rel] = Monoid::combine(buf[rel], xv);
            }
          }
          if (per_block_hw && hw0.available) {
            metrics_reg_->add_hw(
                block_hw_paths_[chunk.block],
                telemetry::perf::snapshot_this_thread().delta_since(hw0));
          }
          if (trace) {
            trace->record(telemetry::TraceEventKind::phase, trace_push_block,
                          t0, trace->now_ns() - t0,
                          static_cast<std::uint32_t>(chunk.block),
                          chunk.direct ? 1 : 0);
          }
        },
        {.grain = 1});
    times_.push_s = phase.elapsed_seconds();
    span_push_.record_seconds(times_.push_s);

    // Phase 2: tiled aggregation of the shared blocks (Algorithm 3, lines
    // 5-7). Each tile streams the touching threads' segments once, in
    // ascending thread order — the same combine order per hub as the
    // classic per-hub loop, so results are unchanged.
    phase.reset();
    hw.emplace(metrics_reg_, "spmv/merge");
    if (!merge_tiles_.empty()) {
      for (PhaseTally& t : merge_tally_) t = PhaseTally{};
      parallel_for(
          *pool_, 0, merge_tiles_.size(),
          [&](std::uint64_t i, std::size_t tid) {
            const MergeTile& tile = merge_tiles_[i];
            const vid_t len = tile.end - tile.begin;
            value_t* yt = y.data() + tile.begin;
            for (vid_t k = 0; k < len; ++k) yt[k] = Monoid::identity();
            std::uint64_t streamed = 0;
            for (std::size_t t = 0; t < pool_->size(); ++t) {
              if (!touched_.test(t, tile.block)) continue;
              ++streamed;
              const value_t* seg = buffers_.get(t) + tile.begin;
              for (vid_t k = 0; k < len; ++k) {
                yt[k] = Monoid::combine(yt[k], seg[k]);
              }
            }
            merge_tally_[tid].a += streamed;
            merge_tally_[tid].b += pool_->size() - streamed;
          },
          {.grain = 1});
      stats_.merge_tiles = merge_tiles_.size();
      for (const PhaseTally& t : merge_tally_) {
        stats_.merge_segments_streamed += t.a;
        stats_.merge_segments_skipped += t.b;
      }
    }
    times_.merge_s = phase.elapsed_seconds();
    span_merge_.record_seconds(times_.merge_s);

    // Phase 3: pull the sparse block (Algorithm 3, lines 8-10).
    phase.reset();
    hw.emplace(metrics_reg_, "spmv/pull");
    const Adjacency& sparse = ig_->sparse();
    parallel_for(
        *pool_, 0, sparse_chunks_.size(),
        [&](std::uint64_t p, std::size_t) {
          for (std::uint64_t local = sparse_chunks_[p].begin;
               local < sparse_chunks_[p].end; ++local) {
            value_t acc = Monoid::identity();
            for (const vid_t u : sparse.neighbors(static_cast<vid_t>(local))) {
              acc = Monoid::combine(acc, x[u]);
            }
            y[num_hubs + local] = acc;
          }
        },
        {.grain = 1});
    times_.pull_s = phase.elapsed_seconds();
    span_pull_.record_seconds(times_.pull_s);
    hw.reset();

    span_total_.record_seconds(times_.total());
    calls_.inc(0);
    push_chunk_items_.add(0, push_chunks_.size());
    sparse_chunk_items_.add(0, sparse_chunks_.size());
    merge_tiles_run_.add(0, stats_.merge_tiles);
    merge_tiles_skipped_.add(0, stats_.merge_segments_skipped);
    reset_values_cleared_.add(0, stats_.reset_values_cleared);
    reset_values_skipped_.add(0, stats_.reset_values_skipped);
  }

  /// Batched SpMM-style variant: k right-hand-side vectors per traversal.
  /// x and y are vertex-major n×k arrays (element (v, lane) at v*k + lane),
  /// both in the new-ID space. The graph — blocks, chunks, tiles — is walked
  /// exactly once per call; each random access (a hub-buffer slot in push, an
  /// x row in pull) is amortized over the k lanes, and at k=8 doubles one
  /// row is exactly one 64-byte cache line. The k-lane hub buffers live
  /// beside the scalar ones (hub-major, hub h at offset h*k) with their own
  /// touch bitmaps, so scalar and batched calls can interleave freely; both
  /// are sized/reset lazily on first use at a given k. k==1 delegates to the
  /// scalar path outright.
  void spmv_batch(std::span<const value_t> x, std::span<value_t> y,
                  std::size_t k) {
    assert(k >= 1);
    if (k == 1) {
      spmv(x, y);
      return;
    }
    const std::size_t n = ig_->num_vertices();
    assert(x.size() == n * k);
    assert(y.size() == n * k);
    (void)n;
    const vid_t num_hubs = ig_->num_hubs();
    const std::size_t num_blocks = block_direct_.size();
    const bool any_shared = single_owner_blocks_ < num_blocks;
    stats_ = IhtlSpmvStats{};
    telemetry::TraceBuffer* const trace = telemetry::TraceBuffer::active();
    const std::uint32_t trace_push_block =
        trace ? trace->intern("push-block") : 0;
    Timer phase;

    // Lane-widened buffers are (re)built whenever k changes; a fresh build
    // is identity-initialized, so the first reset has nothing to clear.
    if (any_shared && batch_k_ != k) {
      batch_buffers_ = PerThread<value_t>(
          pool_->size(), static_cast<std::size_t>(num_hubs) * k,
          Monoid::identity());
      batch_touched_ = TouchMatrix(pool_->size(), num_blocks);
      batch_k_ = k;
    }

    // Phase 0: reset — identical touched-aware policy to the scalar path,
    // over k-wide segments (hub h spans [h*k, (h+1)*k)).
    std::optional<telemetry::perf::PhaseScope> hw;
    hw.emplace(metrics_reg_, "spmv/reset");
    if (any_shared) {
      pool_->run([&](std::size_t tid) {
        value_t* buf = batch_buffers_.get(tid);
        std::uint64_t cleared = 0;
        for (std::size_t b = 0; b < num_blocks; ++b) {
          if (block_direct_[b] || !batch_touched_.test(tid, b)) continue;
          const FlippedBlock& blk = ig_->blocks()[b];
          value_t* seg = buf + static_cast<std::size_t>(blk.hub_begin) * k;
          const std::size_t len = static_cast<std::size_t>(blk.num_hubs()) * k;
          for (std::size_t i = 0; i < len; ++i) seg[i] = Monoid::identity();
          cleared += len;
        }
        batch_touched_.clear_row(tid);
        reset_tally_[tid] = {cleared,
                             static_cast<std::uint64_t>(num_hubs) * k - cleared};
      });
      for (const PhaseTally& t : reset_tally_) {
        stats_.reset_values_cleared += t.a;
        stats_.reset_values_skipped += t.b;
      }
    } else {
      stats_.reset_values_skipped =
          static_cast<std::uint64_t>(pool_->size()) * num_hubs * k;
    }
    IHTL_IF_INVARIANTS({
      for (std::size_t t = 0; t < pool_->size(); ++t) {
        for (std::size_t i = 0; i < batch_buffers_.length(); ++i) {
          IHTL_INVARIANT(batch_buffers_.get(t)[i] == Monoid::identity(),
                         "batch buffer not identity after touched-aware reset");
        }
      }
    });
    times_.reset_s = phase.elapsed_seconds();
    span_reset_.record_seconds(times_.reset_s);

    // Phase 1: push. Same (block, source-chunk) decomposition as the scalar
    // path; each edge updates a contiguous k-lane row of the hub buffer.
    phase.reset();
    hw.emplace(metrics_reg_, "spmv/push");
    const bool per_block_hw =
        per_block_hw_ && metrics_reg_ && telemetry::perf::available();
    parallel_for(
        *pool_, 0, push_chunks_.size(),
        [&](std::uint64_t c, std::size_t tid) {
          const PushChunk& chunk = push_chunks_[c];
          const FlippedBlock& blk = ig_->blocks()[chunk.block];
          const std::uint64_t t0 = trace ? trace->now_ns() : 0;
          telemetry::PerfCounterValues hw0;
          if (per_block_hw) hw0 = telemetry::perf::snapshot_this_thread();
          value_t* buf;
          if (chunk.direct) {
            buf = y.data() + static_cast<std::size_t>(blk.hub_begin) * k;
            const std::size_t len =
                static_cast<std::size_t>(blk.num_hubs()) * k;
            for (std::size_t i = 0; i < len; ++i) buf[i] = Monoid::identity();
          } else {
            batch_touched_.set(tid, chunk.block);
            buf = batch_buffers_.get(tid) +
                  static_cast<std::size_t>(blk.hub_begin) * k;
          }
          for (std::uint64_t v = chunk.sources.begin; v < chunk.sources.end;
               ++v) {
            const value_t* xv = x.data() + v * k;
            for (const vid_t rel : blk.csr.neighbors(static_cast<vid_t>(v))) {
              value_t* dst = buf + static_cast<std::size_t>(rel) * k;
              for (std::size_t lane = 0; lane < k; ++lane) {
                dst[lane] = Monoid::combine(dst[lane], xv[lane]);
              }
            }
          }
          if (per_block_hw && hw0.available) {
            metrics_reg_->add_hw(
                block_hw_paths_[chunk.block],
                telemetry::perf::snapshot_this_thread().delta_since(hw0));
          }
          if (trace) {
            trace->record(telemetry::TraceEventKind::phase, trace_push_block,
                          t0, trace->now_ns() - t0,
                          static_cast<std::uint32_t>(chunk.block),
                          chunk.direct ? 1 : 0);
          }
        },
        {.grain = 1});
    times_.push_s = phase.elapsed_seconds();
    span_push_.record_seconds(times_.push_s);

    // Phase 2: merge. A scalar tile of [begin, end) hubs is the contiguous
    // value range [begin*k, end*k) here — same streaming, k× longer runs.
    phase.reset();
    hw.emplace(metrics_reg_, "spmv/merge");
    if (!merge_tiles_.empty()) {
      for (PhaseTally& t : merge_tally_) t = PhaseTally{};
      parallel_for(
          *pool_, 0, merge_tiles_.size(),
          [&](std::uint64_t i, std::size_t tid) {
            const MergeTile& tile = merge_tiles_[i];
            const std::size_t len =
                static_cast<std::size_t>(tile.end - tile.begin) * k;
            value_t* yt =
                y.data() + static_cast<std::size_t>(tile.begin) * k;
            for (std::size_t j = 0; j < len; ++j) yt[j] = Monoid::identity();
            std::uint64_t streamed = 0;
            for (std::size_t t = 0; t < pool_->size(); ++t) {
              if (!batch_touched_.test(t, tile.block)) continue;
              ++streamed;
              const value_t* seg = batch_buffers_.get(t) +
                                   static_cast<std::size_t>(tile.begin) * k;
              for (std::size_t j = 0; j < len; ++j) {
                yt[j] = Monoid::combine(yt[j], seg[j]);
              }
            }
            merge_tally_[tid].a += streamed;
            merge_tally_[tid].b += pool_->size() - streamed;
          },
          {.grain = 1});
      stats_.merge_tiles = merge_tiles_.size();
      for (const PhaseTally& t : merge_tally_) {
        stats_.merge_segments_streamed += t.a;
        stats_.merge_segments_skipped += t.b;
      }
    }
    times_.merge_s = phase.elapsed_seconds();
    span_merge_.record_seconds(times_.merge_s);

    // Phase 3: pull. Edge-visited-once over the strided n×k array: each
    // in-edge reads one contiguous k-lane x row into k private accumulators.
    phase.reset();
    hw.emplace(metrics_reg_, "spmv/pull");
    const Adjacency& sparse = ig_->sparse();
    parallel_for(
        *pool_, 0, sparse_chunks_.size(),
        [&](std::uint64_t p, std::size_t) {
          for (std::uint64_t local = sparse_chunks_[p].begin;
               local < sparse_chunks_[p].end; ++local) {
            value_t* acc =
                y.data() + (static_cast<std::size_t>(num_hubs) + local) * k;
            for (std::size_t lane = 0; lane < k; ++lane) {
              acc[lane] = Monoid::identity();
            }
            for (const vid_t u : sparse.neighbors(static_cast<vid_t>(local))) {
              const value_t* xu = x.data() + static_cast<std::size_t>(u) * k;
              for (std::size_t lane = 0; lane < k; ++lane) {
                acc[lane] = Monoid::combine(acc[lane], xu[lane]);
              }
            }
          }
        },
        {.grain = 1});
    times_.pull_s = phase.elapsed_seconds();
    span_pull_.record_seconds(times_.pull_s);
    hw.reset();

    span_total_.record_seconds(times_.total());
    calls_.inc(0);
    batch_lanes_.add(0, k);
    push_chunk_items_.add(0, push_chunks_.size());
    sparse_chunk_items_.add(0, sparse_chunks_.size());
    merge_tiles_run_.add(0, stats_.merge_tiles);
    merge_tiles_skipped_.add(0, stats_.merge_segments_skipped);
    reset_values_cleared_.add(0, stats_.reset_values_cleared);
    reset_values_skipped_.add(0, stats_.reset_values_skipped);
  }

  /// Lanes the batch buffers are currently sized for (0 until the first
  /// spmv_batch call with k > 1).
  std::size_t batch_lanes() const { return batch_k_; }

 private:
  /// Merge tile width in hub values: 4 KB of value_t, a whole number of
  /// cache lines, small enough that a tile plus one buffer segment per
  /// thread stays L1/L2-resident while streaming.
  static constexpr vid_t kMergeTileValues = 512;
  /// automatic keeps blocks below this edge count single-owner outright.
  static constexpr eid_t kSingleOwnerMinEdges = 4096;

  struct PushChunk {
    std::size_t block;
    Range sources;
    bool direct;  ///< single-owner: push straight into y, skip merge
  };
  struct MergeTile {
    std::size_t block;
    vid_t begin;  ///< absolute hub IDs [begin, end) within the block
    vid_t end;
  };
  struct alignas(64) PhaseTally {
    std::uint64_t a = 0, b = 0;
  };

  const IhtlGraph* ig_;
  ThreadPool* pool_;
  PushPolicy policy_;
  std::vector<std::uint8_t> block_direct_;
  std::size_t single_owner_blocks_ = 0;
  PerThread<value_t> buffers_;
  TouchMatrix touched_;
  // k-lane counterparts backing spmv_batch, (re)built lazily when the
  // requested lane count changes; disjoint from the scalar pair so scalar
  // and batched calls interleave without invalidating each other's touch
  // bits.
  PerThread<value_t> batch_buffers_;
  TouchMatrix batch_touched_;
  std::size_t batch_k_ = 0;
  std::vector<PushChunk> push_chunks_;
  std::vector<MergeTile> merge_tiles_;
  std::vector<Range> sparse_chunks_;
  std::vector<PhaseTally> reset_tally_, merge_tally_;
  IhtlPhaseTimes times_;
  IhtlSpmvStats stats_;
  telemetry::MetricsRegistry* metrics_reg_ = nullptr;
  bool per_block_hw_ = false;
  std::vector<std::string> block_hw_paths_;
  telemetry::TimerStat span_total_, span_reset_, span_push_, span_merge_,
      span_pull_;
  telemetry::Counter calls_, batch_lanes_, push_chunk_items_,
      sparse_chunk_items_,
      merge_tiles_run_, merge_tiles_skipped_, reset_values_cleared_,
      reset_values_skipped_;
};

/// One-shot convenience wrapper operating in the ORIGINAL ID space:
/// permutes x in, runs one SpMV on `engine`, permutes y back. Reuses the
/// caller's engine, so repeated one-shot calls pay no buffer or work-
/// decomposition setup.
template <typename Monoid>
void ihtl_spmv_once(IhtlEngine<Monoid>& engine, std::span<const value_t> x,
                    std::span<value_t> y) {
  const auto& o2n = engine.graph().old_to_new();
  std::vector<value_t> xp(x.size()), yp(y.size());
  for (std::size_t v = 0; v < x.size(); ++v) xp[o2n[v]] = x[v];
  engine.spmv(xp, yp);
  for (std::size_t v = 0; v < y.size(); ++v) y[v] = yp[o2n[v]];
}

/// Batched counterpart of ihtl_spmv_once: permutes every lane of the
/// vertex-major n×k arrays into the relabeled space, runs one batched SpMV,
/// permutes back. A vertex's k-lane row moves as one contiguous block.
template <typename Monoid>
void ihtl_spmv_batch_once(IhtlEngine<Monoid>& engine,
                          std::span<const value_t> x, std::span<value_t> y,
                          std::size_t k) {
  const auto& o2n = engine.graph().old_to_new();
  const std::size_t n = o2n.size();
  std::vector<value_t> xp(x.size()), yp(y.size());
  for (std::size_t v = 0; v < n; ++v) {
    const std::size_t nv = o2n[v];
    for (std::size_t lane = 0; lane < k; ++lane) {
      xp[nv * k + lane] = x[v * k + lane];
    }
  }
  engine.spmv_batch(xp, yp, k);
  for (std::size_t v = 0; v < n; ++v) {
    const std::size_t nv = o2n[v];
    for (std::size_t lane = 0; lane < k; ++lane) {
      y[v * k + lane] = yp[nv * k + lane];
    }
  }
}

/// Engine-less variant. NOTE: constructs a fresh IhtlEngine — per-thread
/// buffers plus the push/merge work decomposition, O(threads x hubs + m/
/// chunk) — on EVERY call. Fine for a genuine one-shot; for anything
/// iterative build an IhtlEngine once and use the overload above (or stay
/// in the relabeled space entirely, as the apps do).
template <typename Monoid = PlusMonoid>
void ihtl_spmv_once(ThreadPool& pool, const IhtlGraph& ig,
                    std::span<const value_t> x, std::span<value_t> y,
                    PushPolicy policy = PushPolicy::automatic) {
  IhtlEngine<Monoid> engine(ig, pool, policy);
  ihtl_spmv_once(engine, x, y);
}

}  // namespace ihtl
