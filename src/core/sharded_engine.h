// The sharded iHTL executor: S destination-range locality domains.
//
// ShardedEngine partitions the relabeled destination range into S
// contiguous shards (plan_shards: whole flipped blocks first, then sparse
// destinations, edge-balanced). Each shard carries its own flipped-block
// set, hub buffers, touch bitmaps, sparse-block slice and thread-team
// affinity: the pool's threads are split into per-shard teams (contiguous,
// sized by shard edge weight; when S > threads, shard s falls to thread
// s mod T), and within a phase each team claims work items only from its
// own shard — the in-hub temporal locality the paper exploits per cache
// hierarchy becomes per-shard locality, the prerequisite for the NUMA and
// out-of-core directions.
//
// One spmv() runs five globally-barriered phases (one ThreadPool::run per
// phase, so every shard finishes phase p before any shard starts p+1):
//
//   0. EXCHANGE: each shard fills its private x mirror — a straight copy of
//      its owned slice plus a gather of its remote-source set (the sorted
//      x entries it reads but another shard owns). The mirrors are
//      double-buffered: the gather writes the back buffer, then the buffers
//      flip, so iteration i+1's exchange could overlap iteration i's
//      compute in an asynchronous successor. The per-call gathered volume
//      is the cross-shard traffic term of the Akbudak et al. cost model.
//   1-4. RESET / PUSH / MERGE / PULL: the IhtlEngine phases, run per shard
//      by its team against the shard's mirror. Output ranges are disjoint
//      by construction (a shard only writes y inside [dst_begin, dst_end)),
//      so the phases need no cross-shard synchronization at all.
//
// S=1 degenerates to a single full-range shard whose team is the whole
// pool — the identical decomposition IhtlEngine builds — so S=1 results are
// bitwise-identical to the unsharded engine (pinned by regression tests and
// the ihtl_check --shard-points lattice).
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "baselines/semiring.h"
#include "check/invariants.h"
#include "core/ihtl_config.h"
#include "core/ihtl_graph.h"
#include "core/shard.h"
#include "parallel/thread_pool.h"
#include "parallel/timer.h"
#include "telemetry/metrics.h"
#include "telemetry/perf_counters.h"
#include "telemetry/trace.h"

namespace ihtl {

/// Wall-clock per phase of the last ShardedEngine::spmv call.
struct ShardedPhaseTimes {
  double exchange_s = 0.0;  ///< mirror fill: owned copy + remote gather
  double reset_s = 0.0;
  double push_s = 0.0;
  double merge_s = 0.0;
  /// Binned shards' scatter pass (its own barrier; 0 when no shard binned).
  double bin_scatter_s = 0.0;
  double pull_s = 0.0;  ///< sparse accumulate-or-pull
  double total() const {
    return exchange_s + reset_s + push_s + merge_s + bin_scatter_s + pull_s;
  }
};

/// Exchange-volume counters of the last ShardedEngine::spmv call.
struct ShardedSpmvStats {
  /// x values gathered across shard boundaries (sum of remote-set sizes,
  /// times the lane count for batched calls).
  std::uint64_t exchange_values = 0;
  std::uint64_t exchange_bytes = 0;  ///< exchange_values * sizeof(value_t)
  /// x values copied within their owning shard (the local term; always
  /// n * lanes summed over shards).
  std::uint64_t local_values = 0;
};

template <typename Monoid = PlusMonoid>
class ShardedEngine {
 public:
  ShardedEngine(const IhtlGraph& ig, ThreadPool& pool, std::size_t num_shards,
                PushPolicy policy = PushPolicy::automatic)
      : ig_(&ig), pool_(&pool), policy_(policy) {
    if (num_shards == 0) num_shards = 1;
    const std::vector<ShardPlan> plans = plan_shards(ig, num_shards);

    // Thread-team affinity. S <= T: contiguous teams sized proportionally
    // to shard edge weight (every shard gets at least one thread). S > T:
    // shard s belongs to thread s mod T as a one-thread team.
    const std::size_t T = pool.size();
    const std::size_t S = plans.size();
    team_begin_.assign(S, 0);
    team_size_.assign(S, 1);
    shards_of_thread_.assign(T, {});
    if (S <= T) {
      eid_t total = 0;
      std::vector<eid_t> weight(S);
      for (std::size_t s = 0; s < S; ++s) {
        const ShardPlan& p = plans[s];
        eid_t w = 0;
        for (std::size_t b = p.block_begin; b < p.block_end; ++b) {
          w += ig.blocks()[b].num_edges();
        }
        const auto& off = ig.sparse().offsets;
        const vid_t hubs = ig.num_hubs();
        const std::uint64_t lo = std::max<vid_t>(p.dst_begin, hubs) - hubs;
        const std::uint64_t hi = std::max<vid_t>(p.dst_end, hubs) - hubs;
        if (hi > lo) w += off[hi] - off[lo];
        weight[s] = w;
        total += w;
      }
      // Largest-remainder allocation of the T threads with a floor of 1.
      std::size_t assigned = 0;
      for (std::size_t s = 0; s < S; ++s) {
        const std::size_t share =
            total ? static_cast<std::size_t>(
                        static_cast<unsigned long long>(weight[s]) * T / total)
                  : T / S;
        team_size_[s] = std::max<std::size_t>(1, share);
        assigned += team_size_[s];
      }
      // Trim overshoot from the largest teams, hand leftovers to the
      // heaviest shards; both loops terminate because S <= T.
      while (assigned > T) {
        const auto it = std::max_element(team_size_.begin(), team_size_.end());
        if (*it <= 1) break;
        --*it;
        --assigned;
      }
      for (std::size_t s = 0; assigned < T; s = (s + 1) % S) {
        std::size_t best = 0;
        for (std::size_t c = 1; c < S; ++c) {
          if (weight[c] / team_size_[c] > weight[best] / team_size_[best]) {
            best = c;
          }
        }
        ++team_size_[best];
        ++assigned;
        (void)s;
      }
      std::size_t cursor = 0;
      for (std::size_t s = 0; s < S; ++s) {
        team_begin_[s] = cursor;
        for (std::size_t t = 0; t < team_size_[s]; ++t) {
          shards_of_thread_[cursor + t].push_back(s);
        }
        cursor += team_size_[s];
      }
      assert(cursor == T);
    } else {
      for (std::size_t s = 0; s < S; ++s) {
        team_begin_[s] = s % T;
        team_size_[s] = 1;
        shards_of_thread_[s % T].push_back(s);
      }
    }

    shards_.reserve(S);
    for (std::size_t s = 0; s < S; ++s) {
      shards_.push_back(build_shard(ig, plans[s], team_size_[s], policy,
                                    Monoid::identity(),
                                    /*compute_remote=*/true));
      any_binned_ = any_binned_ || shards_.back().sparse_binned;
    }
    IHTL_IF_INVARIANTS({
      vid_t dst = 0;
      for (const Shard& sh : shards_) {
        IHTL_INVARIANT(sh.dst_begin == dst,
                       "sharded engine: shards do not tile the dst range");
        dst = sh.dst_end;
      }
      IHTL_INVARIANT(dst == ig.num_vertices(),
                     "sharded engine: shards do not cover the dst range");
    });

    const std::size_t n = ig.num_vertices();
    for (int side = 0; side < 2; ++side) {
      mirrors_[side].assign(S, std::vector<value_t>(n, Monoid::identity()));
    }
    cursors_ = std::vector<Cursor>(S);
    tallies_ = std::vector<Tally>(T);
    set_metrics(&telemetry::MetricsRegistry::global());
  }

  const IhtlGraph& graph() const { return *ig_; }
  PushPolicy policy() const { return policy_; }
  std::size_t num_shards() const { return shards_.size(); }
  const Shard& shard(std::size_t s) const { return shards_[s]; }
  /// First pool thread of shard s's team (teams are contiguous for S <= T).
  std::size_t team_begin(std::size_t s) const { return team_begin_[s]; }
  std::size_t team_size(std::size_t s) const { return team_size_[s]; }

  const ShardedPhaseTimes& last_phase_times() const { return times_; }
  const ShardedSpmvStats& last_stats() const { return stats_; }

  /// Load-imbalance gauge: max shard edge count over the mean (1.0 =
  /// perfectly balanced; the shard-count tuning guide reads this).
  double imbalance() const {
    eid_t max_edges = 0, total = 0;
    for (const Shard& sh : shards_) {
      max_edges = std::max(max_edges, sh.num_edges());
      total += sh.num_edges();
    }
    if (total == 0 || shards_.empty()) return 1.0;
    const double mean =
        static_cast<double>(total) / static_cast<double>(shards_.size());
    return mean > 0.0 ? static_cast<double>(max_edges) / mean : 1.0;
  }

  /// Structural cross-shard traffic per scalar spmv call: the sum of the
  /// shards' remote-set sizes. Known at build time (the exchange gathers
  /// exactly these slots every call); bench/shard_scaling plots it against
  /// S for the sublinear-scaling acceptance gate.
  std::uint64_t exchange_values_per_call() const {
    std::uint64_t v = 0;
    for (const Shard& sh : shards_) v += sh.remote_sources.size();
    return v;
  }

  /// Fault-injection hook (check lattice): corrupt shard `s`'s exchange
  /// slice — the first gathered remote value is perturbed every call, so
  /// every downstream consumer of that slice computes with a wrong x.
  /// Returns false (and arms nothing) if the shard has no remote sources
  /// (e.g. S=1), in which case there is no cross-shard slice to corrupt.
  bool inject_exchange_corruption(std::size_t s) {
    if (s >= shards_.size() || shards_[s].remote_sources.empty()) {
      return false;
    }
    corrupt_shard_ = static_cast<long>(s);
    return true;
  }
  std::uint64_t exchange_corruptions_applied() const {
    return corruptions_applied_;
  }

  /// Fault-injection hook (check lattice, --inject-bin-drop): on the first
  /// shard with binned slots, the leading staged cache line of slot space
  /// is overwritten with the monoid identity after every scatter barrier —
  /// one dropped bin flush. Returns false (arming nothing) when no shard
  /// runs the binned sparse path.
  bool inject_bin_drop() {
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      if (shards_[s].sparse_binned && shards_[s].sparse_edges > 0) {
        bin_drop_shard_ = static_cast<long>(s);
        return true;
      }
    }
    return false;
  }
  std::uint64_t bin_drops_applied() const { return bin_drops_applied_; }

  /// Whether any shard's sparse slice resolved to the binned path.
  bool any_binned() const { return any_binned_; }

  /// Redirects spans/counters/gauges to `reg` (nullptr disables). Static
  /// per-shard facts (edges, flipped blocks, remote-set size) land as
  /// gauges once here; per-call volumes accumulate into counters.
  void set_metrics(telemetry::MetricsRegistry* reg) {
    metrics_reg_ = reg;
    if (reg) {
      span_total_ = reg->timer("sharded");
      span_exchange_ = reg->timer("sharded/exchange");
      span_reset_ = reg->timer("sharded/reset");
      span_push_ = reg->timer("sharded/push");
      span_merge_ = reg->timer("sharded/merge");
      span_bin_scatter_ = reg->timer("sharded/bin-scatter");
      span_pull_ = reg->timer("sharded/pull");
      calls_ = reg->counter("sharded.calls");
      batch_lanes_ = reg->counter("sharded.batch_lanes");
      exchange_values_ = reg->counter("sharded.exchange_values");
      exchange_bytes_ = reg->counter("sharded.exchange_bytes");
      local_values_ = reg->counter("sharded.local_values");
      reg->set_gauge("sharded.shards", static_cast<double>(shards_.size()));
      reg->set_gauge("sharded.imbalance", imbalance());
      for (std::size_t s = 0; s < shards_.size(); ++s) {
        const Shard& sh = shards_[s];
        const std::string base = "sharded.shard" + std::to_string(s);
        reg->set_gauge(base + ".edges", static_cast<double>(sh.num_edges()));
        reg->set_gauge(base + ".flipped_blocks",
                       static_cast<double>(sh.num_blocks()));
        reg->set_gauge(base + ".remote_sources",
                       static_cast<double>(sh.remote_sources.size()));
        reg->set_gauge(base + ".team_size",
                       static_cast<double>(team_size_[s]));
        reg->set_gauge(base + ".sparse_binned",
                       sh.sparse_binned ? 1.0 : 0.0);
        reg->set_gauge(base + ".bins", static_cast<double>(sh.num_bins));
      }
    } else {
      span_total_ = span_exchange_ = span_reset_ = span_push_ = span_merge_ =
          span_bin_scatter_ = span_pull_ = telemetry::TimerStat();
      calls_ = batch_lanes_ = exchange_values_ = exchange_bytes_ =
          local_values_ = telemetry::Counter();
    }
  }

  /// y[v] = combine over u in N-(v) of x[u], both in new-ID space.
  void spmv(std::span<const value_t> x, std::span<value_t> y) {
    assert(x.size() == ig_->num_vertices());
    assert(y.size() == ig_->num_vertices());
    run_phases(x.data(), y.data(), 1, /*batch=*/false);
  }

  /// Batched SpMM-style variant over vertex-major n×k arrays; semantics
  /// match IhtlEngine::spmv_batch lane for lane. k==1 delegates to the
  /// scalar path (and its scalar mirrors/buffers).
  void spmv_batch(std::span<const value_t> x, std::span<value_t> y,
                  std::size_t k) {
    assert(k >= 1);
    if (k == 1) {
      spmv(x, y);
      return;
    }
    assert(x.size() == ig_->num_vertices() * k);
    assert(y.size() == ig_->num_vertices() * k);
    const std::size_t n = ig_->num_vertices();
    if (batch_mirror_k_ != k) {
      for (int side = 0; side < 2; ++side) {
        batch_mirrors_[side].assign(
            shards_.size(),
            std::vector<value_t>(n * k, Monoid::identity()));
      }
      batch_mirror_k_ = k;
    }
    for (Shard& sh : shards_) {
      sh.ensure_batch_lanes(k, Monoid::identity());
    }
    run_phases(x.data(), y.data(), k, /*batch=*/true);
  }

  std::size_t batch_lanes() const { return batch_mirror_k_; }

 private:
  struct alignas(64) Cursor {
    std::atomic<std::uint64_t> next{0};
  };
  struct alignas(64) Tally {
    std::uint64_t a = 0, b = 0;
  };

  /// Iterates a thread's shards, handing each body its shard and the
  /// thread's team-relative index.
  template <typename Body>
  void for_owned_shards(std::size_t tid, const Body& body) {
    for (const std::size_t s : shards_of_thread_[tid]) {
      body(shards_[s], s, tid - team_begin_[s]);
    }
  }

  /// Claims items [0, count) of shard s's phase cursor, one at a time —
  /// the dynamic within-team schedule (an atomic fetch_add per item, like
  /// parallel_for at grain 1). At team size 1 items run in index order, so
  /// S=1/threads=1 reproduces the unsharded engine's execution exactly.
  template <typename Body>
  void claim(std::size_t s, std::uint64_t count, const Body& body) {
    Cursor& cur = cursors_[s];
    for (;;) {
      const std::uint64_t i = cur.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      body(i);
    }
  }

  void reset_cursors() {
    for (Cursor& c : cursors_) c.next.store(0, std::memory_order_relaxed);
  }

  /// The five barriered phases; scalar and batched paths share the
  /// structure and differ only in lane width (k) and which mirror /
  /// buffer / touch set they address.
  void run_phases(const value_t* x, value_t* y, std::size_t k, bool batch) {
    const vid_t num_hubs = ig_->num_hubs();
    stats_ = ShardedSpmvStats{};
    Timer phase;

    // Per-shard timeline slices: when a TraceBuffer is recording, every
    // (shard, phase) unit of work lands as one "shard" event on the worker
    // that ran it, args {shard, team} — the slices the serve layer's
    // request flow-arrows bind into. Interning is a short mutex'd scan, and
    // the whole block is skipped when tracing is off.
    telemetry::TraceBuffer* const tb = telemetry::TraceBuffer::active();
    std::uint32_t pn[6] = {};
    if (tb != nullptr) {
      pn[0] = tb->intern("sharded/exchange");
      pn[1] = tb->intern("sharded/reset");
      pn[2] = tb->intern("sharded/push");
      pn[3] = tb->intern("sharded/merge");
      pn[4] = tb->intern("sharded/pull");
      pn[5] = tb->intern("sharded/bin-scatter");
    }
    auto traced = [&](std::size_t tid, std::uint32_t name,
                      const auto& body) {
      if (tb == nullptr) {
        for_owned_shards(tid, body);
        return;
      }
      for_owned_shards(tid,
                       [&](Shard& sh, std::size_t s, std::size_t team) {
                         const std::uint64_t t0 = tb->now_ns();
                         body(sh, s, team);
                         tb->record(telemetry::TraceEventKind::shard, name,
                                    t0, tb->now_ns() - t0,
                                    static_cast<std::uint32_t>(s),
                                    static_cast<std::uint32_t>(team));
                       });
    };

    // Phase 0: exchange. Flip the double buffer, then fill every shard's
    // back-now-front mirror: contiguous copy of the owned slice, gather of
    // the remote-source set. Team threads split both by team index.
    std::optional<telemetry::perf::PhaseScope> hw;
    hw.emplace(metrics_reg_, "sharded/exchange");
    front_ ^= 1;
    auto& mirrors = batch ? batch_mirrors_[front_] : mirrors_[front_];
    for (Tally& t : tallies_) t = Tally{};
    pool_->run([&](std::size_t tid) {
      std::uint64_t remote = 0, local = 0;
      traced(tid, pn[0], [&](Shard& sh, std::size_t s, std::size_t team) {
        value_t* m = mirrors[s].data();
        // Owned slice: split [dst_begin, dst_end) across the team.
        const std::uint64_t own = sh.num_dst();
        const std::uint64_t per = (own + sh.team_size - 1) / sh.team_size;
        const std::uint64_t lo = std::min<std::uint64_t>(team * per, own);
        const std::uint64_t hi = std::min<std::uint64_t>(lo + per, own);
        for (std::uint64_t i = lo; i < hi; ++i) {
          const std::size_t v = sh.dst_begin + i;
          for (std::size_t lane = 0; lane < k; ++lane) {
            m[v * k + lane] = x[v * k + lane];
          }
        }
        local += (hi - lo) * k;
        // Remote slice: split the sorted remote-source set across the team.
        const std::uint64_t nr = sh.remote_sources.size();
        const std::uint64_t rper = (nr + sh.team_size - 1) / sh.team_size;
        const std::uint64_t rlo = std::min<std::uint64_t>(team * rper, nr);
        const std::uint64_t rhi = std::min<std::uint64_t>(rlo + rper, nr);
        for (std::uint64_t i = rlo; i < rhi; ++i) {
          const std::size_t v = sh.remote_sources[i];
          for (std::size_t lane = 0; lane < k; ++lane) {
            m[v * k + lane] = x[v * k + lane];
          }
        }
        remote += (rhi - rlo) * k;
        // Fault injection: perturb the first gathered remote value of the
        // armed shard, after the gather so it survives to the compute
        // phases. A remote source has at least one edge into this shard,
        // so the corruption must surface in y (the lattice asserts it).
        if (corrupt_shard_ == static_cast<long>(s) && team == 0 && nr > 0) {
          const std::size_t v = sh.remote_sources[0];
          m[v * k] = m[v * k] == value_t{0} ? value_t{1} : -m[v * k];
          ++corruptions_applied_;
        }
      });
      tallies_[tid] = {remote, local};
    });
    for (const Tally& t : tallies_) {
      stats_.exchange_values += t.a;
      stats_.local_values += t.b;
    }
    stats_.exchange_bytes = stats_.exchange_values * sizeof(value_t);
    times_.exchange_s = phase.elapsed_seconds();
    span_exchange_.record_seconds(times_.exchange_s);

    // Phase 1: reset — touched-aware, per shard, per team thread.
    phase.reset();
    hw.emplace(metrics_reg_, "sharded/reset");
    pool_->run([&](std::size_t tid) {
      traced(tid, pn[1], [&](Shard& sh, std::size_t, std::size_t team) {
        auto& touched = batch ? sh.batch_touched : sh.touched;
        auto& buffers = batch ? sh.batch_buffers : sh.buffers;
        if (buffers.length() == 0) return;
        value_t* buf = buffers.get(team);
        for (std::size_t b = 0; b < sh.num_blocks(); ++b) {
          if (sh.block_direct[b] || !touched.test(team, b)) continue;
          const FlippedBlock& blk = ig_->blocks()[sh.block_begin + b];
          value_t* seg =
              buf + static_cast<std::size_t>(blk.hub_begin - sh.hub_begin) * k;
          const std::size_t len = static_cast<std::size_t>(blk.num_hubs()) * k;
          for (std::size_t i = 0; i < len; ++i) seg[i] = Monoid::identity();
        }
        touched.clear_row(team);
      });
    });
    times_.reset_s = phase.elapsed_seconds();
    span_reset_.record_seconds(times_.reset_s);

    // Phase 2: push — each team claims its shard's (block, source-chunk)
    // items and accumulates into team-private hub buffers (or directly
    // into y for single-owner blocks), reading the shard's mirror.
    phase.reset();
    hw.emplace(metrics_reg_, "sharded/push");
    reset_cursors();
    pool_->run([&](std::size_t tid) {
      traced(tid, pn[2], [&](Shard& sh, std::size_t s, std::size_t team) {
        const value_t* xs = mirrors[s].data();
        auto& touched = batch ? sh.batch_touched : sh.touched;
        auto& buffers = batch ? sh.batch_buffers : sh.buffers;
        claim(s, sh.push_chunks.size(), [&](std::uint64_t c) {
          const ShardPushChunk& chunk = sh.push_chunks[c];
          const FlippedBlock& blk = ig_->blocks()[sh.block_begin + chunk.block];
          value_t* buf;
          if (chunk.direct) {
            buf = y + static_cast<std::size_t>(blk.hub_begin) * k;
            const std::size_t len =
                static_cast<std::size_t>(blk.num_hubs()) * k;
            for (std::size_t i = 0; i < len; ++i) buf[i] = Monoid::identity();
          } else {
            touched.set(team, chunk.block);
            buf = buffers.get(team) +
                  static_cast<std::size_t>(blk.hub_begin - sh.hub_begin) * k;
          }
          for (std::uint64_t v = chunk.sources.begin; v < chunk.sources.end;
               ++v) {
            const value_t* xv = xs + v * k;
            for (const vid_t rel : blk.csr.neighbors(static_cast<vid_t>(v))) {
              value_t* dst = buf + static_cast<std::size_t>(rel) * k;
              for (std::size_t lane = 0; lane < k; ++lane) {
                dst[lane] = Monoid::combine(dst[lane], xv[lane]);
              }
            }
          }
        });
      });
    });
    times_.push_s = phase.elapsed_seconds();
    span_push_.record_seconds(times_.push_s);

    // Phase 3: merge — teams stream their shard's tiles in ascending team
    // order, the same deterministic combine order as the unsharded engine.
    phase.reset();
    hw.emplace(metrics_reg_, "sharded/merge");
    reset_cursors();
    pool_->run([&](std::size_t tid) {
      traced(tid, pn[3], [&](Shard& sh, std::size_t s, std::size_t) {
        auto& touched = batch ? sh.batch_touched : sh.touched;
        auto& buffers = batch ? sh.batch_buffers : sh.buffers;
        claim(s, sh.merge_tiles.size(), [&](std::uint64_t i) {
          const ShardMergeTile& tile = sh.merge_tiles[i];
          const std::size_t len =
              static_cast<std::size_t>(tile.end - tile.begin) * k;
          value_t* yt = y + static_cast<std::size_t>(tile.begin) * k;
          for (std::size_t j = 0; j < len; ++j) yt[j] = Monoid::identity();
          for (std::size_t t = 0; t < sh.team_size; ++t) {
            if (!touched.test(t, tile.block)) continue;
            const value_t* seg =
                buffers.get(t) +
                static_cast<std::size_t>(tile.begin - sh.hub_begin) * k;
            for (std::size_t j = 0; j < len; ++j) {
              yt[j] = Monoid::combine(yt[j], seg[j]);
            }
          }
        });
      });
    });
    times_.merge_s = phase.elapsed_seconds();
    span_merge_.record_seconds(times_.merge_s);

    // Phase 4a (only when some shard resolved to the binned sparse path):
    // binned shards scatter their sparse edges' x values into the static
    // per-(chunk, bin) slot segments. Its own barrier — every slot must be
    // written before any accumulate reads it. Non-binned shards idle here
    // (their teams return immediately), which is why the phase is skipped
    // wholesale when no shard is binned.
    times_.bin_scatter_s = 0.0;
    const Adjacency& sparse = ig_->sparse();
    if (any_binned_) {
      phase.reset();
      hw.emplace(metrics_reg_, "sharded/bin-scatter");
      reset_cursors();
      pool_->run([&](std::size_t tid) {
        traced(tid, pn[5], [&](Shard& sh, std::size_t s, std::size_t team) {
          if (!sh.sparse_binned) return;
          value_t* values =
              batch ? sh.batch_bin_values.data() : sh.bin_values.data();
          const value_t* xs = mirrors[s].data();
          claim(s, sh.scatter_chunks.size(), [&](std::uint64_t c) {
            shard_bin_scatter_chunk(sh, xs, k, team, c, values);
          });
        });
      });
      // Fault injection: drop the leading staged cache line of the armed
      // shard's slot space. Applied on the caller thread between the
      // scatter and accumulate barriers, so it cannot race with either.
      if (bin_drop_shard_ >= 0) {
        Shard& sh = shards_[static_cast<std::size_t>(bin_drop_shard_)];
        value_t* values =
            batch ? sh.batch_bin_values.data() : sh.bin_values.data();
        const std::size_t len =
            std::min<std::size_t>(kBinStageValues,
                                  static_cast<std::size_t>(sh.sparse_edges)) *
            k;
        for (std::size_t i = 0; i < len; ++i) values[i] = Monoid::identity();
        ++bin_drops_applied_;
      }
      times_.bin_scatter_s = phase.elapsed_seconds();
      span_bin_scatter_.record_seconds(times_.bin_scatter_s);
    }

    // Phase 4: sparse slice into y — binned shards accumulate their slot
    // segments in exact CSC order (bitwise-identical to the pull), the
    // rest pull from their mirror.
    phase.reset();
    hw.emplace(metrics_reg_, "sharded/pull");
    reset_cursors();
    pool_->run([&](std::size_t tid) {
      traced(tid, pn[4], [&](Shard& sh, std::size_t s, std::size_t) {
        const value_t* xs = mirrors[s].data();
        if (sh.sparse_binned) {
          const value_t* values =
              batch ? sh.batch_bin_values.data() : sh.bin_values.data();
          claim(s, sh.bin_accum_chunks.size(), [&](std::uint64_t i) {
            shard_bin_accumulate_chunk<Monoid>(sh, sparse, num_hubs, k, i,
                                               values, y);
          });
          return;
        }
        claim(s, sh.sparse_chunks.size(), [&](std::uint64_t p) {
          for (std::uint64_t local = sh.sparse_chunks[p].begin;
               local < sh.sparse_chunks[p].end; ++local) {
            value_t* acc =
                y + (static_cast<std::size_t>(num_hubs) + local) * k;
            for (std::size_t lane = 0; lane < k; ++lane) {
              acc[lane] = Monoid::identity();
            }
            for (const vid_t u : sparse.neighbors(static_cast<vid_t>(local))) {
              const value_t* xu = xs + static_cast<std::size_t>(u) * k;
              for (std::size_t lane = 0; lane < k; ++lane) {
                acc[lane] = Monoid::combine(acc[lane], xu[lane]);
              }
            }
          }
        });
      });
    });
    times_.pull_s = phase.elapsed_seconds();
    span_pull_.record_seconds(times_.pull_s);
    hw.reset();

    span_total_.record_seconds(times_.total());
    calls_.inc(0);
    if (batch) batch_lanes_.add(0, k);
    exchange_values_.add(0, stats_.exchange_values);
    exchange_bytes_.add(0, stats_.exchange_bytes);
    local_values_.add(0, stats_.local_values);
  }

  const IhtlGraph* ig_;
  ThreadPool* pool_;
  PushPolicy policy_;
  std::vector<Shard> shards_;
  std::vector<std::size_t> team_begin_, team_size_;
  std::vector<std::vector<std::size_t>> shards_of_thread_;
  std::vector<Cursor> cursors_;
  std::vector<Tally> tallies_;
  // Double-buffered per-shard x mirrors: [side][shard] -> n (or n*k)
  // values. front_ indexes the side the current call computes from.
  std::vector<std::vector<value_t>> mirrors_[2];
  std::vector<std::vector<value_t>> batch_mirrors_[2];
  std::size_t batch_mirror_k_ = 0;
  int front_ = 0;
  long corrupt_shard_ = -1;
  std::uint64_t corruptions_applied_ = 0;
  bool any_binned_ = false;
  long bin_drop_shard_ = -1;
  std::uint64_t bin_drops_applied_ = 0;
  ShardedPhaseTimes times_;
  ShardedSpmvStats stats_;
  telemetry::MetricsRegistry* metrics_reg_ = nullptr;
  telemetry::TimerStat span_total_, span_exchange_, span_reset_, span_push_,
      span_merge_, span_bin_scatter_, span_pull_;
  telemetry::Counter calls_, batch_lanes_, exchange_values_, exchange_bytes_,
      local_values_;
};

}  // namespace ihtl
