// Structure-aware hub selection (Section 3.3).
//
// Hubs per block come from the cache budget; the number of blocks comes
// from graph structure: block i is admitted while its hubs receive edges
// from at least `admission_ratio` of the sources that feed block 1.
#pragma once

#include <vector>

#include "core/ihtl_config.h"
#include "graph/graph.h"

namespace ihtl {

/// Result of hub selection.
struct HubSelection {
  /// Selected hubs in block order: hubs[0..H) are block 1's hubs, etc.
  /// (original vertex IDs, sorted by descending in-degree).
  std::vector<vid_t> hubs;
  /// Number of admitted flipped blocks (hubs.size() <= blocks * H; the last
  /// block may be partial if candidates ran out).
  std::size_t num_blocks = 0;
  /// |active_sources(block 1)|: distinct vertices with >= 1 edge into block
  /// 1's hubs — the admission baseline.
  vid_t block1_sources = 0;
  /// Per-block distinct-source counts (|FV_i| in the paper's notation).
  std::vector<vid_t> block_sources;
  /// Smallest in-degree among selected hubs (Table 5's "Min. Hub Degree").
  eid_t min_hub_degree = 0;
};

/// Selects in-hubs and the flipped-block count for `g` under `cfg`.
///
/// Candidates are vertices ordered by descending in-degree (ties by original
/// ID for determinism), filtered by cfg.min_hub_in_degree. Chunks of
/// H = cfg.hubs_per_block() candidates form prospective blocks; block 1 is
/// always admitted if it receives any edge, block i while
/// |sources(i)| > cfg.admission_ratio * |sources(1)|.
HubSelection select_hubs(const Graph& g, const IhtlConfig& cfg);

}  // namespace ihtl
