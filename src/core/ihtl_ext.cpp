#include "core/ihtl_ext.h"

#include <algorithm>

#include "telemetry/metrics.h"

namespace ihtl {

HubSelection select_hubs_fast(const Graph& g, const IhtlConfig& cfg) {
  HubSelection sel;
  const vid_t n = g.num_vertices();
  if (n == 0) return sel;

  // Candidate ordering identical to select_hubs.
  std::vector<vid_t> candidates;
  for (vid_t v = 0; v < n; ++v) {
    if (g.in_degree(v) >= cfg.min_hub_in_degree) candidates.push_back(v);
  }
  std::sort(candidates.begin(), candidates.end(), [&](vid_t a, vid_t b) {
    const eid_t da = g.in_degree(a), db = g.in_degree(b);
    return da != db ? da > db : a < b;
  });
  if (candidates.empty()) return sel;

  const vid_t hubs_per_block = cfg.hubs_per_block();
  const std::size_t max_candidate_blocks = std::min(
      cfg.max_blocks,
      (candidates.size() + hubs_per_block - 1) / hubs_per_block);

  // Map each candidate hub to its prospective block (0-based), others to
  // "no block". One vector of size n — cheap and O(1) lookup.
  constexpr std::uint32_t kNoBlock = ~std::uint32_t{0};
  std::vector<std::uint32_t> block_of(n, kNoBlock);
  for (std::size_t i = 0;
       i < candidates.size() && i / hubs_per_block < max_candidate_blocks;
       ++i) {
    block_of[candidates[i]] = static_cast<std::uint32_t>(i / hubs_per_block);
  }

  // Pass 1: identify block 1's sources (in-edges of the first H hubs).
  const Adjacency& in = g.in();
  std::vector<char> is_block1_source(n, 0);
  const std::size_t first_hi =
      std::min<std::size_t>(hubs_per_block, candidates.size());
  for (std::size_t i = 0; i < first_hi; ++i) {
    for (const vid_t u : in.neighbors(candidates[i])) {
      is_block1_source[u] = 1;
    }
  }

  // Pass 2 (the Section 6 single pass): every block-1 source walks its
  // out-edges ONCE, tagging each prospective block it reaches; per-block
  // distinct-source counts accumulate simultaneously.
  std::vector<vid_t> sources_per_block(max_candidate_blocks, 0);
  std::vector<std::uint32_t> touched(max_candidate_blocks, 0);
  std::uint32_t stamp = 0;
  const Adjacency& out = g.out();
  for (vid_t u = 0; u < n; ++u) {
    if (!is_block1_source[u]) continue;
    ++stamp;
    for (const vid_t t : out.neighbors(u)) {
      const std::uint32_t b = block_of[t];
      if (b != kNoBlock && touched[b] != stamp) {
        touched[b] = stamp;
        ++sources_per_block[b];
      }
    }
  }

  // Admission rule, evaluated on the precomputed counts.
  if (sources_per_block[0] == 0) return sel;
  sel.block1_sources = sources_per_block[0];
  std::size_t blocks = 1;
  while (blocks < max_candidate_blocks &&
         static_cast<double>(sources_per_block[blocks]) >
             cfg.admission_ratio * sel.block1_sources) {
    ++blocks;
  }
  sel.num_blocks = blocks;
  sel.block_sources.assign(sources_per_block.begin(),
                           sources_per_block.begin() + blocks);
  const std::size_t taken =
      std::min(blocks * hubs_per_block, candidates.size());
  sel.hubs.assign(candidates.begin(),
                  candidates.begin() + static_cast<std::ptrdiff_t>(taken));
  sel.min_hub_degree = g.in_degree(sel.hubs.back());
  for (const vid_t h : sel.hubs) {
    sel.min_hub_degree = std::min(sel.min_hub_degree, g.in_degree(h));
  }
  return sel;
}

IhtlGraph build_ihtl_graph_ordered(const Graph& g, const HubSelection& sel,
                                   const IhtlConfig& cfg,
                                   std::span<const vid_t> priority) {
  telemetry::ScopedSpan preprocess(telemetry::MetricsRegistry::global(),
                                   "preprocess");
  return detail::build_ihtl_graph_impl(g, sel, cfg, priority);
}

}  // namespace ihtl
