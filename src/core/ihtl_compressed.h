// Compressed-topology iHTL (Section 6): the flipped blocks' CSRs and the
// sparse block's CSC stored as varint-gap streams (graph/compressed.h),
// with an executor that decodes on the fly. Trades ~2-3x smaller topology
// (Table 4's overhead practically vanishes) for decode work per edge.
#pragma once

#include <vector>

#include "baselines/semiring.h"
#include "core/ihtl_graph.h"
#include "graph/compressed.h"
#include "parallel/parallel_for.h"
#include "parallel/partitioner.h"
#include "parallel/per_thread.h"
#include "parallel/thread_pool.h"

namespace ihtl {

/// An IhtlGraph with every topology array varint-compressed.
class CompressedIhtlGraph {
 public:
  /// Compresses an existing iHTL graph (relabeling arrays are shared
  /// semantics, copied as-is).
  static CompressedIhtlGraph from(const IhtlGraph& ig);

  vid_t num_vertices() const { return n_; }
  eid_t num_edges() const { return m_; }
  vid_t num_hubs() const { return num_hubs_; }
  vid_t num_push_sources() const { return num_push_sources_; }

  struct Block {
    vid_t hub_begin = 0;
    vid_t hub_end = 0;
    CompressedAdjacency csr;
  };
  const std::vector<Block>& blocks() const { return blocks_; }
  const CompressedAdjacency& sparse() const { return sparse_; }
  const std::vector<vid_t>& old_to_new() const { return old_to_new_; }

  /// Compressed topology bytes (compare with IhtlGraph::topology_bytes()).
  std::size_t topology_bytes() const;

 private:
  vid_t n_ = 0;
  eid_t m_ = 0;
  vid_t num_hubs_ = 0;
  vid_t num_push_sources_ = 0;
  std::vector<Block> blocks_;
  CompressedAdjacency sparse_;
  std::vector<vid_t> old_to_new_;
};

/// iHTL SpMV (Algorithm 3) over the compressed representation. Inputs and
/// outputs in the relabeled ID space, as with IhtlEngine.
template <typename Monoid = PlusMonoid>
void compressed_ihtl_spmv(ThreadPool& pool, const CompressedIhtlGraph& cig,
                          std::span<const value_t> x, std::span<value_t> y) {
  const vid_t num_hubs = cig.num_hubs();
  PerThread<value_t> buffers(pool.size(), num_hubs, Monoid::identity());

  // Push phase: per block, decode-balance source chunks by byte counts.
  for (const auto& blk : cig.blocks()) {
    const auto parts = partition_by_edge(blk.csr.byte_offsets(),
                                         pool.size() * 8);
    parallel_for(
        pool, 0, parts.size(),
        [&](std::uint64_t p, std::size_t tid) {
          value_t* buf = buffers.get(tid) + blk.hub_begin;
          for (std::uint64_t v = parts[p].begin; v < parts[p].end; ++v) {
            const value_t xv = x[v];
            blk.csr.for_each_neighbor(static_cast<vid_t>(v), [&](vid_t rel) {
              buf[rel] = Monoid::combine(buf[rel], xv);
            });
          }
        },
        {.grain = 1});
  }

  // Merge.
  if (num_hubs > 0) {
    parallel_for(pool, 0, num_hubs, [&](std::uint64_t h, std::size_t) {
      value_t acc = Monoid::identity();
      for (std::size_t t = 0; t < pool.size(); ++t) {
        acc = Monoid::combine(acc, buffers.get(t)[h]);
      }
      y[h] = acc;
    });
  }

  // Sparse pull.
  const auto parts =
      partition_by_edge(cig.sparse().byte_offsets(), pool.size() * 8);
  parallel_for(
      pool, 0, parts.size(),
      [&](std::uint64_t p, std::size_t) {
        for (std::uint64_t local = parts[p].begin; local < parts[p].end;
             ++local) {
          value_t acc = Monoid::identity();
          cig.sparse().for_each_neighbor(
              static_cast<vid_t>(local),
              [&](vid_t u) { acc = Monoid::combine(acc, x[u]); });
          y[num_hubs + local] = acc;
        }
      },
      {.grain = 1});
}

}  // namespace ihtl
