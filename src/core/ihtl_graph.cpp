#include "core/ihtl_graph.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <numeric>
#include <stdexcept>

#include "check/invariants.h"
#include "graph/permute.h"
#include "telemetry/metrics.h"

namespace ihtl {

eid_t IhtlGraph::flipped_edges() const {
  eid_t total = 0;
  for (const FlippedBlock& b : blocks_) total += b.num_edges();
  return total;
}

std::size_t IhtlGraph::topology_bytes() const {
  std::size_t total = sparse_.topology_bytes();
  for (const FlippedBlock& b : blocks_) total += b.csr.topology_bytes();
  total += (old_to_new_.size() + new_to_old_.size()) * sizeof(vid_t);
  return total;
}

IhtlGraph build_ihtl_graph(const Graph& g, const IhtlConfig& cfg) {
  auto& reg = telemetry::MetricsRegistry::global();
  telemetry::ScopedSpan preprocess(reg, "preprocess");
  HubSelection sel;
  {
    telemetry::ScopedSpan s(reg, "hub-select");
    sel = select_hubs(g, cfg);
  }
  return detail::build_ihtl_graph_impl(g, sel, cfg, {});
}

IhtlGraph build_ihtl_graph(const Graph& g, const HubSelection& sel,
                           const IhtlConfig& cfg) {
  telemetry::ScopedSpan preprocess(telemetry::MetricsRegistry::global(),
                                   "preprocess");
  return detail::build_ihtl_graph_impl(g, sel, cfg, {});
}

IhtlGraph detail::build_ihtl_graph_impl(const Graph& g,
                                        const HubSelection& sel,
                                        const IhtlConfig& cfg,
                                        std::span<const vid_t> priority) {
  IhtlGraph ig;
  const vid_t n = g.num_vertices();
  ig.n_ = n;
  ig.m_ = g.num_edges();
  ig.num_hubs_ = static_cast<vid_t>(sel.hubs.size());
  ig.min_hub_degree_ = sel.min_hub_degree;

  auto& reg = telemetry::MetricsRegistry::global();

  // Step 1: relabeling array (Section 3.2 / Figure 4). Hubs take the lowest
  // IDs in selection (descending-degree) order; VWEH then FV keep their
  // original relative order.
  telemetry::ScopedSpan relabel_span(reg, "relabel");
  std::vector<char> is_hub(n, 0);
  ig.old_to_new_.assign(n, 0);
  for (vid_t i = 0; i < ig.num_hubs_; ++i) {
    is_hub[sel.hubs[i]] = 1;
    ig.old_to_new_[sel.hubs[i]] = i;
  }
  std::vector<char> is_vweh(n, 0);
  const Adjacency& in = g.in();
  if (cfg.separate_fringe) {
    for (const vid_t h : sel.hubs) {
      for (const vid_t u : in.neighbors(h)) {
        if (!is_hub[u]) is_vweh[u] = 1;
      }
    }
  } else {
    // Ablation: no fringe separation — every non-hub joins the push-source
    // range, as if the zero block of Figure 3 did not exist.
    for (vid_t v = 0; v < n; ++v) {
      if (!is_hub[v]) is_vweh[v] = 1;
    }
  }
  // Within-class order: original IDs by default (the paper preserves the
  // initial neighbourhood, Section 3.2); with a secondary `priority`
  // (Section 6: e.g. Rabbit-Order), ascending rank instead.
  auto assign_class = [&](auto&& belongs, vid_t first_id) {
    std::vector<vid_t> members;
    for (vid_t v = 0; v < n; ++v) {
      if (belongs(v)) members.push_back(v);
    }
    if (!priority.empty()) {
      std::sort(members.begin(), members.end(), [&](vid_t a, vid_t b) {
        return priority[a] != priority[b] ? priority[a] < priority[b] : a < b;
      });
    }
    vid_t id = first_id;
    for (const vid_t v : members) ig.old_to_new_[v] = id++;
    return id;
  };
  vid_t next = assign_class([&](vid_t v) { return bool(is_vweh[v]); },
                            ig.num_hubs_);
  ig.num_vweh_ = next - ig.num_hubs_;
  next = assign_class([&](vid_t v) { return !is_hub[v] && !is_vweh[v]; },
                      next);
  ig.new_to_old_.assign(n, 0);
  for (vid_t v = 0; v < n; ++v) ig.new_to_old_[ig.old_to_new_[v]] = v;
  relabel_span.stop();

  // Step 2: flipped blocks — a pass over in-edges of each block's hubs,
  // stored as a CSR over the push-source range (Section 3.2 builds this
  // from the CSR of the main graph; building from the CSC of the same edges
  // is equivalent and touches only the needed edges).
  telemetry::ScopedSpan flipped_span(reg, "build-flipped");
  const vid_t hubs_per_block = cfg.hubs_per_block();
  const vid_t num_push_sources = ig.num_hubs_ + ig.num_vweh_;
  ig.blocks_.reserve(sel.num_blocks);
  for (std::size_t b = 0; b < sel.num_blocks; ++b) {
    FlippedBlock blk;
    blk.hub_begin = static_cast<vid_t>(b) * hubs_per_block;
    blk.hub_end =
        std::min<vid_t>(blk.hub_begin + hubs_per_block, ig.num_hubs_);
    blk.csr.offsets.assign(static_cast<std::size_t>(num_push_sources) + 1, 0);
    for (vid_t h = blk.hub_begin; h < blk.hub_end; ++h) {
      for (const vid_t u : in.neighbors(ig.new_to_old_[h])) {
        ++blk.csr.offsets[ig.old_to_new_[u] + 1];
      }
    }
    std::partial_sum(blk.csr.offsets.begin(), blk.csr.offsets.end(),
                     blk.csr.offsets.begin());
    blk.csr.targets.resize(blk.csr.offsets.back());
    std::vector<eid_t> cursor(blk.csr.offsets.begin(),
                              blk.csr.offsets.end() - 1);
    for (vid_t h = blk.hub_begin; h < blk.hub_end; ++h) {
      const vid_t rel = h - blk.hub_begin;  // block-relative buffer index
      for (const vid_t u : in.neighbors(ig.new_to_old_[h])) {
        blk.csr.targets[cursor[ig.old_to_new_[u]]++] = rel;
      }
    }
    ig.blocks_.push_back(std::move(blk));
  }
  flipped_span.stop();

  // Step 3: sparse block — CSC over non-hub destinations with relabeled
  // sources (a pass over the CSC of the main graph, Section 3.2).
  telemetry::ScopedSpan sparse_span(reg, "build-sparse");
  const vid_t num_sparse_dst = n - ig.num_hubs_;
  ig.sparse_.offsets.assign(static_cast<std::size_t>(num_sparse_dst) + 1, 0);
  for (vid_t local = 0; local < num_sparse_dst; ++local) {
    const vid_t old_v = ig.new_to_old_[ig.num_hubs_ + local];
    ig.sparse_.offsets[local + 1] = in.degree(old_v);
  }
  std::partial_sum(ig.sparse_.offsets.begin(), ig.sparse_.offsets.end(),
                   ig.sparse_.offsets.begin());
  ig.sparse_.targets.resize(ig.sparse_.offsets.back());
  for (vid_t local = 0; local < num_sparse_dst; ++local) {
    const vid_t old_v = ig.new_to_old_[ig.num_hubs_ + local];
    eid_t cur = ig.sparse_.offsets[local];
    for (const vid_t u : in.neighbors(old_v)) {
      ig.sparse_.targets[cur++] = ig.old_to_new_[u];
    }
  }

  // Invariant-build checks: the relabeling must be a bijection and the
  // flipped blocks plus the sparse block must partition the edge set (every
  // edge owned exactly once — the structural precondition for push + merge
  // + pull to equal one pull SpMV).
  IHTL_INVARIANT(is_permutation(ig.old_to_new_),
                 "iHTL relabeling is not a bijection");
  IHTL_INVARIANT(ig.flipped_edges() + ig.sparse_edges() == ig.m_,
                 "flipped + sparse blocks do not conserve the edge count");
  return ig;
}

bool IhtlGraph::valid(const Graph& original) const {
  if (original.num_vertices() != n_ || original.num_edges() != m_) {
    return false;
  }
  // Relabeling must be a bijection.
  {
    std::vector<char> seen(n_, 0);
    for (const vid_t p : old_to_new_) {
      if (p >= n_ || seen[p]) return false;
      seen[p] = 1;
    }
    for (vid_t v = 0; v < n_; ++v) {
      if (new_to_old_[old_to_new_[v]] != v) return false;
    }
  }
  if (flipped_edges() + sparse_edges() != m_) return false;

  // Reconstruct the edge multiset (in old IDs) from blocks + sparse and
  // compare with the original.
  std::vector<Edge> rebuilt;
  rebuilt.reserve(m_);
  const vid_t push_sources = num_push_sources();
  for (const FlippedBlock& b : blocks_) {
    if (!b.csr.valid()) return false;
    if (b.csr.num_vertices() != push_sources) return false;
    if (b.hub_end < b.hub_begin || b.hub_end > num_hubs_) return false;
    for (vid_t s = 0; s < push_sources; ++s) {
      for (const vid_t rel : b.csr.neighbors(s)) {
        if (rel >= b.num_hubs()) return false;
        rebuilt.push_back(
            {new_to_old_[s], new_to_old_[b.hub_begin + rel]});
      }
    }
  }
  // The sparse block's targets are GLOBAL new IDs (sources anywhere in
  // [0, n)), so Adjacency::valid()'s targets-in-vertex-range check does not
  // apply; check offsets and target range directly.
  if (sparse_.offsets.empty() || sparse_.offsets.front() != 0) return false;
  for (std::size_t i = 1; i < sparse_.offsets.size(); ++i) {
    if (sparse_.offsets[i] < sparse_.offsets[i - 1]) return false;
  }
  if (sparse_.offsets.back() != sparse_.targets.size()) return false;
  for (const vid_t src : sparse_.targets) {
    if (src >= n_) return false;
  }
  for (vid_t local = 0; local < n_ - num_hubs_; ++local) {
    const vid_t old_dst = new_to_old_[num_hubs_ + local];
    for (const vid_t src_new : sparse_.neighbors(local)) {
      rebuilt.push_back({new_to_old_[src_new], old_dst});
    }
  }
  std::vector<Edge> expected = to_edge_list(original);
  auto less = [](const Edge& a, const Edge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  };
  std::sort(rebuilt.begin(), rebuilt.end(), less);
  std::sort(expected.begin(), expected.end(), less);
  if (rebuilt != expected) return false;

  // FV must be fringe: no FV vertex may appear as a flipped-block source
  // (their offsets rows must be empty).
  for (const FlippedBlock& b : blocks_) {
    (void)b;  // covered by num_vertices == push_sources above
  }
  return true;
}

namespace {

// v2: the header stamps sizeof(vid_t)/sizeof(eid_t) so files written by a
// build with different type widths are rejected instead of loading garbage.
constexpr char kMagic[8] = {'i', 'H', 'T', 'L', 'I', 'G', 'v', '2'};
constexpr char kMagicV1[8] = {'i', 'H', 'T', 'L', 'I', 'G', 'v', '1'};

void put(std::ofstream& out, const void* p, std::size_t bytes) {
  out.write(static_cast<const char*>(p), static_cast<std::streamsize>(bytes));
  if (!out) throw std::runtime_error("IhtlGraph::save_binary: write failed");
}
void get(std::ifstream& in, void* p, std::size_t bytes) {
  in.read(static_cast<char*>(p), static_cast<std::streamsize>(bytes));
  if (!in) throw std::runtime_error("IhtlGraph::load_binary: read failed");
}

template <typename T>
void put_vec(std::ofstream& out, const std::vector<T>& v) {
  const std::uint64_t len = v.size();
  put(out, &len, sizeof(len));
  put(out, v.data(), len * sizeof(T));
}
template <typename T>
std::vector<T> get_vec(std::ifstream& in) {
  std::uint64_t len = 0;
  get(in, &len, sizeof(len));
  std::vector<T> v(len);
  get(in, v.data(), len * sizeof(T));
  return v;
}

}  // namespace

void IhtlGraph::save_binary(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  put(out, kMagic, sizeof(kMagic));
  const std::uint8_t widths[2] = {sizeof(vid_t), sizeof(eid_t)};
  put(out, widths, sizeof(widths));
  put(out, &n_, sizeof(n_));
  put(out, &m_, sizeof(m_));
  put(out, &num_hubs_, sizeof(num_hubs_));
  put(out, &num_vweh_, sizeof(num_vweh_));
  put(out, &min_hub_degree_, sizeof(min_hub_degree_));
  put_vec(out, old_to_new_);
  put_vec(out, new_to_old_);
  const std::uint64_t nblocks = blocks_.size();
  put(out, &nblocks, sizeof(nblocks));
  for (const FlippedBlock& b : blocks_) {
    put(out, &b.hub_begin, sizeof(b.hub_begin));
    put(out, &b.hub_end, sizeof(b.hub_end));
    put_vec(out, b.csr.offsets);
    put_vec(out, b.csr.targets);
  }
  put_vec(out, sparse_.offsets);
  put_vec(out, sparse_.targets);
}

IhtlGraph IhtlGraph::load_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for read: " + path);
  char magic[8];
  get(in, magic, sizeof(magic));
  if (std::memcmp(magic, kMagicV1, sizeof(kMagicV1)) == 0) {
    throw std::runtime_error(
        "ihtl IhtlGraph file " + path +
        " uses the v1 header (no type widths); regenerate it with this "
        "version's save_binary");
  }
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("not an ihtl IhtlGraph file: " + path);
  }
  std::uint8_t widths[2] = {0, 0};
  get(in, widths, sizeof(widths));
  if (widths[0] != sizeof(vid_t) || widths[1] != sizeof(eid_t)) {
    throw std::runtime_error(
        "ihtl IhtlGraph file " + path + " was written with vid_t=" +
        std::to_string(widths[0]) + "B/eid_t=" + std::to_string(widths[1]) +
        "B but this build uses vid_t=" + std::to_string(sizeof(vid_t)) +
        "B/eid_t=" + std::to_string(sizeof(eid_t)) +
        "B; regenerate the file with a matching build");
  }
  IhtlGraph ig;
  get(in, &ig.n_, sizeof(ig.n_));
  get(in, &ig.m_, sizeof(ig.m_));
  get(in, &ig.num_hubs_, sizeof(ig.num_hubs_));
  get(in, &ig.num_vweh_, sizeof(ig.num_vweh_));
  get(in, &ig.min_hub_degree_, sizeof(ig.min_hub_degree_));
  ig.old_to_new_ = get_vec<vid_t>(in);
  ig.new_to_old_ = get_vec<vid_t>(in);
  std::uint64_t nblocks = 0;
  get(in, &nblocks, sizeof(nblocks));
  ig.blocks_.resize(nblocks);
  for (FlippedBlock& b : ig.blocks_) {
    get(in, &b.hub_begin, sizeof(b.hub_begin));
    get(in, &b.hub_end, sizeof(b.hub_end));
    b.csr.offsets = get_vec<eid_t>(in);
    b.csr.targets = get_vec<vid_t>(in);
  }
  ig.sparse_.offsets = get_vec<eid_t>(in);
  ig.sparse_.targets = get_vec<vid_t>(in);
  return ig;
}

}  // namespace ihtl
