// cmd_serve / cmd_query — the query daemon and its line client.
//
// ihtl_serve loads (or generates) a graph ONCE, preprocesses it into the
// iHTL layout, and then answers ppr/bfs/spmv queries over the TCP protocol
// in serve/protocol.h until a shutdown op or SIGTERM-by-ctrl-c. ihtl_query
// is the matching client: single queries, or a seeded mixed workload from
// N concurrent connections (the CI smoke test's hammer).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli/args.h"
#include "cli/commands.h"
#include "cli/common.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/session.h"
#include "telemetry/json.h"
#include "telemetry/report.h"
#include "telemetry/trace.h"

namespace ihtl {

namespace {

using serve::QueryOp;
using serve::QueryRequest;
using telemetry::JsonValue;

}  // namespace

int cmd_serve(int argc, const char* const* argv) {
  ArgParser args;
  add_common_input_flags(args);
  args.add_flag("port", true, "TCP port on 127.0.0.1 (default 0 = ephemeral)");
  args.add_flag("port-file", true,
                "write the bound port here once listening (scripts poll "
                "this instead of parsing stdout)");
  args.add_flag("threads", true, "worker threads (default hw concurrency)");
  args.add_flag("shards", true,
                "destination-range shards of the serving engines (default 1 "
                "= unsharded; >1 exposes per-shard gauges in /metrics)");
  args.add_flag("max-lanes", true,
                "batch lanes per flush, k of spmv_batch (default 8)");
  args.add_flag("max-batch-delay-us", true,
                "micro-batching deadline: max extra latency a request pays "
                "waiting for lane-mates (default 200)");
  args.add_flag("cache-bytes", true,
                "result-cache byte budget, 0 disables (default 64 MiB)");
  args.add_flag("rebuild-threshold", true,
                "hub-drift fraction strictly above which an update op "
                "rebuilds the iHTL layout instead of patching it in place "
                "(negative = rebuild every batch; default 0.1)");
  args.add_flag("metrics-out", true,
                "write a JSON telemetry report here on shutdown");
  args.add_flag("metrics-interval-ms", true,
                "also rewrite --metrics-out every N ms while serving "
                "(atomic replace; default 0 = only on shutdown)");
  args.add_flag("slow-request-us", true,
                "log any request slower than this (wire latency) to the "
                "event log with its phase breakdown (default 0 = off)");
  args.add_flag("log-out", true,
                "append the structured event log here as JSON lines "
                "(slow requests, watchdog trips, lifecycle)");
  args.add_flag("log-capacity", true,
                "in-memory event-log ring size (default 1024)");
  args.add_flag("trace-out", true,
                "record a Chrome trace (request flows, shard slices, spans) "
                "while serving; written on shutdown");
  args.add_flag("inject-flush-delay-us", true,
                "fault injection: stall every batch flush this long");
  args.add_flag("inject-flush-drops", true,
                "fault injection: re-queue the first N flushes");
  try {
    args.parse(argc, argv);
    if (args.has("help")) return usage("ihtl_serve", args);

    OutputFileGuard metrics;
    if (!metrics.open(args, "metrics-out", "ihtl_serve")) return 1;
    // The guard only validates writability; the server rewrites the path
    // atomically itself (tmp + rename), so release the pre-opened handle.
    if (metrics.file.is_open()) metrics.file.close();

    const Graph g = load_input_graph(args);
    std::fprintf(stderr, "loaded graph: %u vertices, %llu edges\n",
                 g.num_vertices(),
                 static_cast<unsigned long long>(g.num_edges()));

    serve::SessionOptions sopt;
    sopt.ihtl = config_from_args(args);
    sopt.threads = static_cast<std::size_t>(args.get_int("threads", 0));
    sopt.shards = static_cast<std::size_t>(args.get_int("shards", 1));
    sopt.update.rebuild_threshold =
        args.get_double("rebuild-threshold", sopt.update.rebuild_threshold);
    serve::ServerOptions opt;
    opt.port = static_cast<std::uint16_t>(args.get_int("port", 0));
    opt.max_lanes = static_cast<std::size_t>(args.get_int("max-lanes", 8));
    opt.max_batch_delay =
        std::chrono::microseconds(args.get_int("max-batch-delay-us", 200));
    opt.cache_bytes =
        static_cast<std::size_t>(args.get_int("cache-bytes", 64 << 20));
    opt.fault.delay_us =
        static_cast<unsigned>(args.get_int("inject-flush-delay-us", 0));
    opt.fault.drop_flushes =
        static_cast<unsigned>(args.get_int("inject-flush-drops", 0));
    opt.slow_request_us =
        static_cast<std::uint64_t>(args.get_int("slow-request-us", 0));
    opt.event_log_path = args.get_string("log-out");
    opt.event_log_capacity =
        static_cast<std::size_t>(args.get_int("log-capacity", 1024));

    // Tracing covers the daemon's whole life: the buffer goes active
    // before the session (so preprocessing spans land too) and the Chrome
    // JSON is written after the server stops.
    const std::string trace_out = args.get_string("trace-out");
    std::unique_ptr<telemetry::TraceBuffer> trace;
    telemetry::TraceBuffer* prev_trace = nullptr;
    if (!trace_out.empty()) {
      trace = std::make_unique<telemetry::TraceBuffer>(0, std::size_t{1}
                                                              << 15);
      prev_trace = telemetry::TraceBuffer::set_active(trace.get());
    }

    serve::GraphSession session(std::move(g), sopt);
    std::fprintf(stderr, "iHTL preprocessing: %u hubs, %zu block(s) (%.1fs)\n",
                 session.ihtl_graph().num_hubs(),
                 session.ihtl_graph().blocks().size(),
                 session.preprocess_seconds());
    serve::Server server(session, opt);

    // Port first to stdout (parseable), then the port file: a script that
    // saw the file can connect immediately.
    std::printf("listening on 127.0.0.1:%u\n", server.port());
    std::fflush(stdout);
    const std::string port_file = args.get_string("port-file");
    if (!port_file.empty()) {
      std::ofstream pf(port_file);
      pf << server.port() << "\n";
      if (!pf) {
        std::fprintf(stderr, "ihtl_serve: cannot write --port-file %s\n",
                     port_file.c_str());
        server.stop();
        return 1;
      }
    }

    const auto interval_ms = args.get_int("metrics-interval-ms", 0);
    std::thread dumper;
    std::atomic<bool> dump_stop{false};
    if (!metrics.path.empty() && interval_ms > 0) {
      dumper = std::thread([&] {
        while (!dump_stop.load(std::memory_order_acquire)) {
          std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
          if (dump_stop.load(std::memory_order_acquire)) break;
          try {
            server.dump_metrics(metrics.path);
          } catch (const std::exception&) {
            // Periodic dump failures are non-fatal; the shutdown dump
            // reports them.
          }
        }
      });
    }

    server.wait();
    server.stop();
    dump_stop.store(true, std::memory_order_release);
    if (dumper.joinable()) dumper.join();

    if (trace) {
      telemetry::TraceBuffer::set_active(prev_trace);
      telemetry::write_json_file(trace->to_chrome_trace(), trace_out);
      std::fprintf(stderr, "wrote trace to %s (%llu event(s), %llu dropped)\n",
                   trace_out.c_str(),
                   static_cast<unsigned long long>(trace->recorded()),
                   static_cast<unsigned long long>(trace->dropped()));
    }

    if (!metrics.path.empty()) {
      server.dump_metrics(metrics.path);
      metrics.keep = true;
      std::fprintf(stderr, "wrote metrics to %s\n", metrics.path.c_str());
    }
    std::fprintf(stderr, "served %llu request(s)\n",
                 static_cast<unsigned long long>(server.requests_served()));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ihtl_serve: %s\n", e.what());
    return 1;
  }
}

namespace {

/// Seeded mixed workload of one client thread: `count` queries drawn from
/// ppr/bfs/spmv with small source sets. Drawn per-thread from (seed,
/// thread id), so N threads send distinct but reproducible streams.
/// Parses "3-7,9-9" into edges; throws on malformed pairs.
std::vector<Edge> parse_edge_spec(const std::string& spec) {
  std::vector<Edge> out;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t comma = spec.find(',', start);
    const std::size_t end = comma == std::string::npos ? spec.size() : comma;
    if (end > start) {
      const std::string pair = spec.substr(start, end - start);
      const std::size_t dash = pair.find('-');
      if (dash == std::string::npos || dash == 0 || dash + 1 == pair.size()) {
        throw std::invalid_argument("bad edge '" + pair +
                                    "' (want SRC-DST)");
      }
      out.push_back({static_cast<vid_t>(std::stoul(pair.substr(0, dash))),
                     static_cast<vid_t>(std::stoul(pair.substr(dash + 1)))});
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

/// Replays an update stream file against the server: '+ SRC DST' inserts,
/// '- SRC DST' removes, '#' comments. Line order is preserved exactly: a
/// request's removes apply before its inserts, so a new request starts
/// whenever a remove follows an insert (or the edge cap is hit).
int replay_update_file(serve::Client& client, const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open --update-file " + path);
  }
  QueryRequest req;
  req.op = QueryOp::update;
  unsigned sent = 0, edits = 0;
  std::uint64_t final_epoch = 0;
  auto flush = [&]() -> bool {
    if (req.insert.empty() && req.remove.empty()) return true;
    const JsonValue resp = client.roundtrip(req);
    const JsonValue* ok = resp.find("ok");
    if (!ok || !ok->is_bool() || !ok->as_bool()) {
      const JsonValue* err = resp.find("error");
      std::fprintf(stderr, "ihtl_query: update batch %u rejected: %s\n",
                   sent,
                   err && err->is_string() ? err->as_string().c_str()
                                           : "(no error message)");
      return false;
    }
    const JsonValue* epoch = resp.find("epoch");
    if (epoch && epoch->is_number()) {
      final_epoch = static_cast<std::uint64_t>(epoch->as_number());
    }
    ++sent;
    req.insert.clear();
    req.remove.clear();
    return true;
  };
  std::string line;
  unsigned line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream ls(line);
    std::string tag;
    if (!(ls >> tag) || tag[0] == '#') continue;
    std::uint64_t src = 0, dst = 0;
    if ((tag != "+" && tag != "-") || !(ls >> src >> dst)) {
      throw std::runtime_error("--update-file line " +
                               std::to_string(line_no) +
                               ": want '+ SRC DST' or '- SRC DST'");
    }
    const bool is_remove = tag == "-";
    // Removes apply first within a request, so a remove after an insert
    // must start a new one to keep the stream's order.
    if ((is_remove && !req.insert.empty()) ||
        req.insert.size() + req.remove.size() >=
            serve::kMaxUpdateEdgesPerRequest) {
      if (!flush()) return 1;
    }
    const Edge e{static_cast<vid_t>(src), static_cast<vid_t>(dst)};
    if (is_remove) {
      req.remove.push_back(e);
    } else {
      req.insert.push_back(e);
    }
    ++edits;
  }
  if (!flush()) return 1;
  std::printf("update replay: %u edit(s) in %u request(s), epoch %llu\n",
              edits, sent, static_cast<unsigned long long>(final_epoch));
  return 0;
}

std::vector<QueryRequest> make_workload(std::uint64_t seed, unsigned count,
                                        vid_t num_vertices) {
  std::mt19937_64 rng(seed);
  std::vector<QueryRequest> out;
  out.reserve(count);
  const vid_t n = num_vertices ? num_vertices : 1;
  for (unsigned i = 0; i < count; ++i) {
    QueryRequest req;
    switch (rng() % 3) {
      case 0:
        req.op = QueryOp::ppr;
        req.iterations = 5;
        break;
      case 1:
        req.op = QueryOp::bfs;
        break;
      default:
        req.op = QueryOp::spmv;
        req.x_seed = rng() % 16;
        break;
    }
    if (req.op != QueryOp::spmv) {
      const std::size_t k = 1 + rng() % 4;
      for (std::size_t j = 0; j < k; ++j) {
        // Narrow source pool → duplicate fingerprints across threads → the
        // cache-hit assertion has something to assert.
        req.sources.push_back(static_cast<vid_t>(rng() % std::min<vid_t>(
                                                     n, 64)));
      }
    }
    out.push_back(std::move(req));
  }
  return out;
}

}  // namespace

int cmd_query(int argc, const char* const* argv) {
  ArgParser args;
  args.add_flag("host", true, "server host (default 127.0.0.1)");
  args.add_flag("port", true, "server port (required unless --port-file)");
  args.add_flag("port-file", true, "read the port from this file");
  args.add_flag("op", true, "single query: ppr | bfs | spmv | update | "
                            "stats | bump-epoch | shutdown");
  args.add_flag("source", true,
                "source vertex for ppr/bfs; repeatable via comma list");
  args.add_flag("iterations", true, "ppr iterations (default 10)");
  args.add_flag("damping", true, "ppr damping (default 0.85)");
  args.add_flag("x-seed", true, "spmv input-vector seed (default 1)");
  args.add_flag("insert", true,
                "edges to insert for --op update, as src-dst pairs: "
                "\"3-7,9-9\"");
  args.add_flag("remove", true,
                "edges to remove for --op update, same src-dst format");
  args.add_flag("update-file", true,
                "replay an update stream: one edit per line, '+ SRC DST' or "
                "'- SRC DST' ('#' comments); sent as a minimal sequence of "
                "update requests preserving the line order");
  args.add_flag("no-cache", false, "bypass the server's result cache");
  args.add_flag("mix", true,
                "instead of --op: run a seeded mixed workload of N queries "
                "per client thread, sent twice (second pass must hit the "
                "cache)");
  args.add_flag("clients", true, "concurrent client threads for --mix "
                                 "(default 4)");
  args.add_flag("seed", true, "workload seed for --mix (default 42)");
  args.add_flag("vertices", true,
                "source-id upper bound for --mix (default 64)");
  args.add_flag("assert-cache-hits", false,
                "after --mix, query /stats and fail unless the cache served "
                "at least one full second pass");
  args.add_flag("latency-out", true,
                "write client-observed per-request latencies (one JSON "
                "entry per request: op, us, ok, cached) to this file");
  args.add_flag("shutdown-after", false,
                "send a shutdown op when done (stops the server)");
  args.add_flag("help", false, "show usage");
  try {
    args.parse(argc, argv);
    if (args.has("help")) return usage("ihtl_query", args);
    const std::string host = args.get_string("host", "127.0.0.1");
    std::uint16_t port = static_cast<std::uint16_t>(args.get_int("port", 0));
    const std::string port_file = args.get_string("port-file");
    if (port == 0 && !port_file.empty()) {
      std::ifstream pf(port_file);
      unsigned p = 0;
      if (!(pf >> p) || p == 0 || p > 65535) {
        throw std::runtime_error("cannot read a port from " + port_file);
      }
      port = static_cast<std::uint16_t>(p);
    }
    if (port == 0) throw std::invalid_argument("need --port or --port-file");

    // Client-observed latency capture (--latency-out): every measured
    // roundtrip appends one entry; the file is written before returning.
    // This is the ground truth the server's phase histograms are checked
    // against (phase sum ≈ wire latency minus client-side socket time).
    const std::string latency_out = args.get_string("latency-out");
    std::mutex lat_mutex;
    JsonValue latencies = JsonValue::array();
    auto timed_roundtrip = [&](serve::Client& client,
                               const QueryRequest& req) {
      const auto t0 = std::chrono::steady_clock::now();
      const JsonValue resp = client.roundtrip(req);
      const double us =
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - t0)
              .count();
      if (!latency_out.empty()) {
        const JsonValue* ok = resp.find("ok");
        const JsonValue* cached = resp.find("cached");
        JsonValue entry = JsonValue::object();
        entry.set("op", serve::op_name(req.op));
        entry.set("us", us);
        entry.set("ok", ok && ok->is_bool() && ok->as_bool());
        entry.set("cached",
                  cached && cached->is_bool() && cached->as_bool());
        std::lock_guard<std::mutex> lock(lat_mutex);
        latencies.push_back(std::move(entry));
      }
      return resp;
    };
    auto write_latencies = [&] {
      if (latency_out.empty()) return;
      JsonValue doc = JsonValue::object();
      doc.set("tool", "ihtl_query");
      doc.set("latencies", std::move(latencies));
      telemetry::write_json_file(doc, latency_out);
      std::fprintf(stderr, "wrote latencies to %s\n", latency_out.c_str());
    };

    if (args.has("mix")) {
      const auto per_client = static_cast<unsigned>(args.get_int("mix"));
      const auto clients =
          static_cast<unsigned>(args.get_int("clients", 4));
      const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
      const auto vertices =
          static_cast<vid_t>(args.get_int("vertices", 64));
      std::atomic<unsigned> failures{0};
      std::atomic<std::uint64_t> sent{0};
      std::vector<std::thread> threads;
      threads.reserve(clients);
      for (unsigned c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
          try {
            serve::Client client;
            client.connect(host, port);
            const std::vector<QueryRequest> workload =
                make_workload(seed + c, per_client, vertices);
            // Two passes: the second sends identical fingerprints, so with
            // caching on every one of its answers is servable from cache.
            for (int pass = 0; pass < 2; ++pass) {
              for (const QueryRequest& req : workload) {
                const JsonValue resp = timed_roundtrip(client, req);
                const JsonValue* ok = resp.find("ok");
                if (!ok || !ok->is_bool() || !ok->as_bool()) {
                  failures.fetch_add(1);
                  return;
                }
                sent.fetch_add(1);
              }
            }
          } catch (const std::exception& e) {
            std::fprintf(stderr, "ihtl_query[client %u]: %s\n", c, e.what());
            failures.fetch_add(1);
          }
        });
      }
      for (std::thread& t : threads) t.join();
      std::printf("mix: %llu queries ok, %u client failure(s)\n",
                  static_cast<unsigned long long>(sent.load()),
                  failures.load());
      write_latencies();
      if (failures.load() > 0) return 1;

      if (args.has("assert-cache-hits")) {
        serve::Client client;
        client.connect(host, port);
        QueryRequest stats;
        stats.op = QueryOp::stats;
        const JsonValue resp = client.roundtrip(stats);
        const JsonValue* s = resp.find("stats");
        const JsonValue* hits =
            s ? s->find("gauges") : nullptr;
        const JsonValue* hit_count =
            hits ? hits->find("serve.cache.hits") : nullptr;
        const double observed =
            hit_count && hit_count->is_number() ? hit_count->as_number() : 0;
        // Every second-pass query repeats a first-pass fingerprint; even
        // with cross-thread duplication the hit count must reach one full
        // pass worth of queries.
        const double expected =
            static_cast<double>(clients) * per_client;
        std::printf("cache hits: %.0f (expected >= %.0f)\n", observed,
                    expected);
        if (observed < expected) {
          std::fprintf(stderr,
                       "ihtl_query: cache hits below the duplicate-query "
                       "floor\n");
          return 1;
        }
      }
      if (args.has("shutdown-after")) {
        serve::Client client;
        client.connect(host, port);
        QueryRequest req;
        req.op = QueryOp::shutdown;
        client.roundtrip(req);
      }
      return 0;
    }

    // Single query.
    const std::string op_str = args.get_string("op", "stats");
    const auto op = serve::op_from_name(op_str);
    if (!op) throw std::invalid_argument("unknown --op: " + op_str);
    QueryRequest req;
    req.op = *op;
    if (req.op == QueryOp::ppr || req.op == QueryOp::bfs) {
      const std::string spec = args.get_string("source", "0");
      std::size_t start = 0;
      while (start <= spec.size()) {
        const std::size_t comma = spec.find(',', start);
        const std::size_t end =
            comma == std::string::npos ? spec.size() : comma;
        if (end > start) {
          req.sources.push_back(static_cast<vid_t>(
              std::stoul(spec.substr(start, end - start))));
        }
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
      if (req.sources.empty()) req.sources.push_back(0);
    }
    req.iterations = static_cast<unsigned>(args.get_int("iterations", 10));
    req.damping = args.get_double("damping", 0.85);
    req.x_seed = static_cast<std::uint64_t>(args.get_int("x-seed", 1));
    req.use_cache = !args.has("no-cache");
    if (req.op == QueryOp::update) {
      if (args.has("update-file")) {
        serve::Client client;
        client.connect(host, port);
        const int rc = replay_update_file(client,
                                          args.get_string("update-file"));
        if (rc == 0 && args.has("shutdown-after")) {
          QueryRequest sd;
          sd.op = QueryOp::shutdown;
          client.roundtrip(sd);
        }
        return rc;
      }
      req.insert = parse_edge_spec(args.get_string("insert", ""));
      req.remove = parse_edge_spec(args.get_string("remove", ""));
      if (req.insert.empty() && req.remove.empty()) {
        throw std::invalid_argument(
            "--op update needs --insert, --remove, or --update-file");
      }
    }

    serve::Client client;
    client.connect(host, port);
    const JsonValue resp = timed_roundtrip(client, req);
    std::printf("%s\n", resp.dump(2).c_str());
    write_latencies();
    const JsonValue* ok = resp.find("ok");
    const bool success = ok && ok->is_bool() && ok->as_bool();
    if (success && args.has("shutdown-after") &&
        req.op != QueryOp::shutdown) {
      QueryRequest sd;
      sd.op = QueryOp::shutdown;
      client.roundtrip(sd);
    }
    return success ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ihtl_query: %s\n", e.what());
    return 1;
  }
}

}  // namespace ihtl
