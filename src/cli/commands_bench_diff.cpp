// Compares two telemetry snapshots (BENCH_*.json from bench/perf_suite, or
// single-run reports from `ihtl_run --metrics-out`) and reports per-metric
// deltas. Metrics whose time/miss cost grew past the threshold are flagged
// as regressions; with --strict the exit code reflects them, so CI can gate
// on perf without parsing the output.
//
//   bench_diff old.json new.json [--threshold 0.10] [--strict] [--all]
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "cli/args.h"
#include "cli/commands.h"
#include "telemetry/json.h"

namespace ihtl {

namespace {

using telemetry::JsonValue;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool file_exists(const std::string& path) {
  return std::ifstream(path).good();
}

/// Flattens the spans/counters/gauges/hw_counters sections of one run/
/// dataset object into dotted metric names under `prefix`. The report
/// schema is additive — newer producers attach extra keys (per-span "hw"
/// sub-objects, whole new sections) — so everything unrecognized or
/// non-numeric is skipped, never an error: an old bench_diff must keep
/// working against a new report and vice versa.
void flatten_sections(const JsonValue& obj, const std::string& prefix,
                      std::map<std::string, double>& out) {
  if (const JsonValue* spans = obj.find("spans"); spans && spans->is_object()) {
    for (const auto& [path, entry] : spans->entries()) {
      if (const JsonValue* v = entry.find("total_s");
          v && v->is_number()) {
        out[prefix + "span." + path + ".total_s"] = v->as_number();
      }
      if (const JsonValue* v = entry.find("count"); v && v->is_number()) {
        out[prefix + "span." + path + ".count"] = v->as_number();
      }
    }
  }
  if (const JsonValue* counters = obj.find("counters");
      counters && counters->is_object()) {
    for (const auto& [name, v] : counters->entries()) {
      if (v.is_number()) out[prefix + "counter." + name] = v.as_number();
    }
  }
  if (const JsonValue* gauges = obj.find("gauges");
      gauges && gauges->is_object()) {
    for (const auto& [name, v] : gauges->entries()) {
      if (v.is_number()) out[prefix + "gauge." + name] = v.as_number();
    }
  }
  // Hardware-counter paths land as `hw.<span path>.<event>`, so CI can
  // gate on e.g. `--require-key llc_misses` and regressions in real cache
  // misses are diffed like any other metric.
  if (const JsonValue* hw = obj.find("hw_counters");
      hw && hw->is_object()) {
    if (const JsonValue* paths = hw->find("paths");
        paths && paths->is_object()) {
      for (const auto& [path, entry] : paths->entries()) {
        if (!entry.is_object()) continue;
        for (const auto& [event, v] : entry.entries()) {
          if (v.is_number()) {
            out[prefix + "hw." + path + "." + event] = v.as_number();
          }
        }
      }
    }
  }
}

/// True for a top-level value shaped like a merged bench section — an
/// object carrying its own metric sub-objects (the "spmm_batch" section of
/// BENCH_spmv.json, the "serve" section of BENCH_serve.json).
bool is_metric_section(const JsonValue& v) {
  if (!v.is_object()) return false;
  for (const char* key : {"spans", "counters", "gauges", "hw_counters"}) {
    if (const JsonValue* s = v.find(key); s && s->is_object()) return true;
  }
  return false;
}

/// One per-dataset suite entry: prefix is the dataset name from its
/// "graph" sub-object (under `section.` for named sections).
void flatten_dataset_entry(const JsonValue& entry, const std::string& section,
                           std::map<std::string, double>& out) {
  std::string name = "dataset";
  if (const JsonValue* g = entry.find("graph")) {
    if (const JsonValue* n = g->find("name")) name = n->as_string();
  }
  flatten_sections(entry, section + name + ".", out);
}

std::map<std::string, double> flatten(const JsonValue& doc) {
  std::map<std::string, double> out;
  if (const JsonValue* datasets = doc.find("datasets");
      datasets && datasets->is_array()) {
    for (const JsonValue& entry : datasets->items()) {
      flatten_dataset_entry(entry, "", out);
    }
  } else {
    flatten_sections(doc, "", out);
  }
  // Named sections merged beside the report/suite (e.g. "serve",
  // "spmm_batch") are flattened under their section name, so one snapshot
  // file can accumulate sections from several bench binaries and still
  // diff as a whole. An ARRAY-shaped section (e.g. "binned": the datasets
  // re-profiled under another policy) flattens per dataset under
  // `<section>.<dataset>.`.
  for (const auto& [key, v] : doc.entries()) {
    if (key == "datasets" || key == "run" || key == "graph" ||
        key == "config" || key == "spans" || key == "counters" ||
        key == "gauges" || key == "hw_counters") {
      continue;  // the report's own sections, already flattened above
    }
    if (is_metric_section(v)) {
      flatten_sections(v, key + ".", out);
    } else if (v.is_array()) {
      for (const JsonValue& entry : v.items()) {
        if (is_metric_section(entry)) {
          flatten_dataset_entry(entry, key + ".", out);
        }
      }
    }
  }
  return out;
}

/// Section of a flattened metric name: the leading component ("serve" for
/// "serve.gauge.serve.qps", dataset name for suite entries). Used to report
/// a whole section that one side lacks by NAME instead of one row per
/// metric — a brand-new bench section (e.g. "shard") diffed against a
/// baseline that predates it should read as one named event.
std::string section_of(const std::string& key) {
  const std::size_t dot = key.find('.');
  return dot == std::string::npos ? key : key.substr(0, dot);
}

/// Regressions are judged on metrics where "more" is "worse": span times,
/// cache misses / memory accesses, and steal counts.
bool regression_sensitive(const std::string& key) {
  return key.find(".total_s") != std::string::npos ||
         key.find("misses") != std::string::npos ||
         key.find("memory_accesses") != std::string::npos ||
         key.find("steals") != std::string::npos;
}

}  // namespace

int cmd_bench_diff(int argc, const char* const* argv) {
  ArgParser args;
  args.add_flag("threshold", true, "regression threshold (default 0.10)");
  args.add_flag("strict", false, "exit 1 if any regression is flagged");
  args.add_flag("all", false, "print unchanged metrics too");
  args.add_flag("require-key", true,
                "comma-separated substrings that must each match at least "
                "one metric in new.json (e.g. llc_misses); exit 1 otherwise");
  args.add_flag("baseline-missing-ok", false,
                "exit 0 (skip the diff) when old.json does not exist — for "
                "CI jobs whose baseline artifact appears only after the "
                "first run on a branch");
  args.add_flag("help", false, "show usage");
  try {
    args.parse(argc, argv);
    if (args.has("help") || args.positional().size() != 2) {
      std::printf("usage: bench_diff <old.json> <new.json> "
                  "[--threshold 0.10] [--strict] [--all]\n%s",
                  args.help_text().c_str());
      return args.has("help") ? 0 : 2;
    }
    const double threshold = args.get_double("threshold", 0.10);
    const std::string old_path = args.positional()[0];
    const std::string new_path = args.positional()[1];
    // The skip applies ONLY to a missing baseline; new.json must always
    // exist and parse (--require-key still gates it below), so a broken
    // producer cannot hide behind the first-run escape hatch.
    if (args.has("baseline-missing-ok") && !file_exists(old_path)) {
      const auto new_metrics = flatten(JsonValue::parse(read_file(new_path)));
      std::printf("bench_diff: no baseline at %s; skipping diff "
                  "(%zu metrics in %s)\n",
                  old_path.c_str(), new_metrics.size(), new_path.c_str());
      // Name what the first real diff will cover, so the skip is auditable.
      std::map<std::string, int> sections;
      for (const auto& [key, v] : new_metrics) ++sections[section_of(key)];
      for (const auto& [name, count] : sections) {
        std::printf("  new section '%s': %d metric(s)\n", name.c_str(),
                    count);
      }
      return 0;
    }
    const auto old_metrics = flatten(JsonValue::parse(read_file(old_path)));
    const auto new_metrics = flatten(JsonValue::parse(read_file(new_path)));

    // Gate on required metrics BEFORE diffing: a report that silently lost
    // its hardware counters (perf became unavailable on the CI runner)
    // must fail loudly, not pass because nothing regressed.
    if (args.has("require-key")) {
      const std::string spec = args.get_string("require-key");
      int missing = 0;
      std::size_t start = 0;
      while (start <= spec.size()) {
        const std::size_t comma = spec.find(',', start);
        const std::size_t end = comma == std::string::npos ? spec.size() : comma;
        if (end > start) {
          const std::string needle = spec.substr(start, end - start);
          bool found = false;
          for (const auto& [key, v] : new_metrics) {
            if (key.find(needle) != std::string::npos) {
              found = true;
              break;
            }
          }
          if (!found) {
            std::fprintf(stderr,
                         "bench_diff: required key '%s' matches no metric "
                         "in %s\n",
                         needle.c_str(), new_path.c_str());
            ++missing;
          }
        }
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
      if (missing > 0) return 1;
    }

    std::printf("%-56s %14s %14s %9s\n", "metric", "old", "new", "delta");
    int regressions = 0, improvements = 0, compared = 0;
    for (const auto& [key, old_v] : old_metrics) {
      const auto it = new_metrics.find(key);
      if (it == new_metrics.end()) {
        std::printf("%-56s %14.6g %14s %9s\n", key.c_str(), old_v, "-",
                    "gone");
        continue;
      }
      ++compared;
      const double new_v = it->second;
      const double delta =
          old_v != 0.0 ? (new_v - old_v) / std::fabs(old_v)
                       : (new_v == 0.0 ? 0.0 : INFINITY);
      const bool beyond = std::fabs(delta) > threshold;
      const bool sensitive = regression_sensitive(key);
      const char* mark = "";
      if (beyond && sensitive) {
        if (delta > 0) {
          mark = "  << REGRESSION";
          ++regressions;
        } else {
          mark = "  << improved";
          ++improvements;
        }
      }
      if (beyond || args.has("all")) {
        std::printf("%-56s %14.6g %14.6g %+8.1f%%%s\n", key.c_str(), old_v,
                    new_v, 100.0 * delta, mark);
      }
    }
    // Sections the baseline predates entirely (every metric of theirs is
    // new) are reported by NAME: one line per section instead of a wall of
    // per-metric "new" rows. With --baseline-missing-ok this also extends
    // the first-run escape hatch to a baseline FILE that exists but lacks
    // the section — the named skip is the audit trail.
    std::map<std::string, int> old_sections, fresh_sections;
    for (const auto& [key, v] : old_metrics) ++old_sections[section_of(key)];
    for (const auto& [key, new_v] : new_metrics) {
      if (old_metrics.count(key)) continue;
      const std::string section = section_of(key);
      if (!old_sections.count(section)) {
        ++fresh_sections[section];
        continue;
      }
      std::printf("%-56s %14s %14.6g %9s\n", key.c_str(), "-", new_v, "new");
    }
    for (const auto& [name, count] : fresh_sections) {
      std::printf("%-56s %14s %14d %9s\n",
                  ("section '" + name + "' (absent from baseline)").c_str(),
                  "-", count, "new");
    }
    std::printf("\ncompared %d metrics: %d regression(s), %d improvement(s) "
                "beyond %.0f%%\n",
                compared, regressions, improvements, 100.0 * threshold);
    if (args.has("strict") && regressions > 0) return 1;
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_diff: %s\n", e.what());
    return 2;
  }
}

}  // namespace ihtl
