#include "cli/args.h"

#include <sstream>

namespace ihtl {

void ArgParser::add_flag(const std::string& name, bool takes_value,
                         const std::string& help) {
  specs_[name] = {takes_value, help};
}

void ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::optional<std::string> inline_value;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      inline_value = name.substr(eq + 1);
      name = name.substr(0, eq);
    }
    const auto it = specs_.find(name);
    if (it == specs_.end()) {
      throw std::invalid_argument("unknown flag: --" + name);
    }
    if (!it->second.takes_value) {
      if (inline_value) {
        throw std::invalid_argument("flag --" + name + " takes no value");
      }
      values_[name] = "true";
      continue;
    }
    if (inline_value) {
      values_[name] = *inline_value;
    } else if (i + 1 < argc) {
      values_[name] = argv[++i];
    } else {
      throw std::invalid_argument("flag --" + name + " requires a value");
    }
  }
}

bool ArgParser::has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string ArgParser::get_string(const std::string& name,
                                  const std::string& default_value) const {
  const auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

std::int64_t ArgParser::get_int(const std::string& name,
                                std::int64_t default_value) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  std::size_t pos = 0;
  const std::int64_t v = std::stoll(it->second, &pos);
  if (pos != it->second.size()) {
    throw std::invalid_argument("flag --" + name +
                                " expects an integer, got: " + it->second);
  }
  return v;
}

double ArgParser::get_double(const std::string& name,
                             double default_value) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  std::size_t pos = 0;
  const double v = std::stod(it->second, &pos);
  if (pos != it->second.size()) {
    throw std::invalid_argument("flag --" + name +
                                " expects a number, got: " + it->second);
  }
  return v;
}

std::string ArgParser::help_text() const {
  std::ostringstream out;
  for (const auto& [name, spec] : specs_) {
    out << "  --" << name << (spec.takes_value ? " <value>" : "") << "\n      "
        << spec.help << "\n";
  }
  return out.str();
}

}  // namespace ihtl
