#include "cli/common.h"

#include <cstdio>
#include <stdexcept>

#include "gen/datasets.h"
#include "graph/io.h"
#include "telemetry/report.h"

namespace ihtl {

Graph load_input_graph(const ArgParser& args) {
  // --dataset is an alias for --gen, registered by tools (ihtl_profile)
  // whose vocabulary centers on the named datasets.
  if (args.has("gen") || args.has("dataset")) {
    const std::string scale_name = args.get_string("gen-scale", "bench");
    DatasetScale scale;
    if (scale_name == "tiny") {
      scale = DatasetScale::tiny;
    } else if (scale_name == "small") {
      scale = DatasetScale::small;
    } else if (scale_name == "bench") {
      scale = DatasetScale::bench;
    } else if (scale_name == "large") {
      scale = DatasetScale::large;
    } else {
      throw std::invalid_argument("unknown --gen-scale: " + scale_name);
    }
    return make_dataset(args.has("gen") ? args.get_string("gen")
                                        : args.get_string("dataset"),
                        scale);
  }
  const std::string path = args.get_string("graph");
  if (path.empty()) {
    throw std::invalid_argument("need --graph <file> or --gen <dataset>");
  }
  try {
    return load_graph_binary(path);
  } catch (const std::exception&) {
    BuildOptions opt;
    opt.dedup = true;
    opt.remove_self_loops = true;
    opt.sort_neighbors = true;
    return load_edge_list(path, opt);
  }
}

IhtlConfig config_from_args(const ArgParser& args) {
  IhtlConfig cfg;
  if (args.has("buffer-bytes")) {
    cfg.buffer_bytes = static_cast<std::size_t>(args.get_int("buffer-bytes"));
  }
  if (args.has("admission-ratio")) {
    cfg.admission_ratio = args.get_double("admission-ratio");
  }
  if (args.has("push-policy")) {
    const std::string name = args.get_string("push-policy");
    const auto policy = push_policy_from_name(name);
    if (!policy) {
      throw std::invalid_argument("unknown --push-policy '" + name +
                                  "' (auto, shared, single-owner, binned)");
    }
    cfg.push_policy = *policy;
  }
  return cfg;
}

void add_common_input_flags(ArgParser& args) {
  args.add_flag("graph", true, "input graph: ihtl binary or edge-list text");
  args.add_flag("gen", true, "generate a named dataset instead (e.g. TwtrMpi)");
  args.add_flag("gen-scale", true, "tiny|small|bench|large (default bench)");
  args.add_flag("buffer-bytes", true, "iHTL hub-buffer bytes (default 1 MiB)");
  args.add_flag("admission-ratio", true,
                "flipped-block admission ratio (default 0.5)");
  args.add_flag("push-policy", true,
                "engine push/merge policy: auto | shared | single-owner | "
                "binned (default auto)");
  args.add_flag("help", false, "show usage");
}

int usage(const char* tool, const ArgParser& args) {
  std::printf("usage: %s [flags]\n%s", tool, args.help_text().c_str());
  return 0;
}

std::string invoked_as(int argc, const char* const* argv,
                       const char* fallback) {
  if (argc < 1 || !argv[0] || !*argv[0]) return fallback;
  const std::string path = argv[0];
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

bool OutputFileGuard::open(const ArgParser& args, const char* flag,
                           const char* tool) {
  path = args.get_string(flag);
  if (path.empty()) return true;
  file.open(path);
  if (!file) {
    std::fprintf(stderr, "%s: cannot open --%s path '%s' for writing\n",
                 tool, flag, path.c_str());
    return false;
  }
  return true;
}

OutputFileGuard::~OutputFileGuard() {
  if (file.is_open() && !keep) {
    file.close();
    std::remove(path.c_str());
  }
}

void TraceGuard::install(const std::string& out_path, std::size_t rings) {
  if (out_path.empty()) return;
  path = out_path;
  buffer = std::make_unique<telemetry::TraceBuffer>(rings);
  telemetry::TraceBuffer::set_active(buffer.get());
}

void TraceGuard::uninstall() {
  if (buffer) telemetry::TraceBuffer::set_active(nullptr);
}

TraceGuard::~TraceGuard() { uninstall(); }

int TraceGuard::write(const char* tool) {
  if (!buffer) return 0;
  uninstall();
  try {
    telemetry::write_json_file(buffer->to_chrome_trace(), path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", tool, e.what());
    return 1;
  }
  std::fprintf(stderr, "wrote trace to %s (%llu events, %llu dropped)\n",
               path.c_str(),
               static_cast<unsigned long long>(buffer->recorded()),
               static_cast<unsigned long long>(buffer->dropped()));
  return 0;
}

}  // namespace ihtl
