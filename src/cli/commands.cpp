#include "cli/commands.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <exception>
#include <fstream>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "apps/analytics.h"
#include "apps/bfs.h"
#include "apps/hits.h"
#include "apps/kcore.h"
#include "apps/pagerank.h"
#include "apps/pagerank_delta.h"
#include "apps/triangle_count.h"
#include "baselines/spmv.h"
#include "cli/args.h"
#include "cli/common.h"
#include "core/ihtl_graph.h"
#include "core/ihtl_spmv.h"
#include "gen/datasets.h"
#include "graph/io.h"
#include "graph/stats.h"
#include "parallel/thread_pool.h"
#include "parallel/timer.h"
#include "telemetry/json.h"
#include "telemetry/metrics.h"
#include "telemetry/perf_counters.h"
#include "telemetry/report.h"
#include "telemetry/trace.h"

namespace ihtl {


int cmd_convert(int argc, const char* const* argv) {
  ArgParser args;
  add_common_input_flags(args);
  args.add_flag("output", true, "output path (required)");
  args.add_flag("to", true, "output format: graph | ihtl (default graph)");
  try {
    args.parse(argc, argv);
    if (args.has("help")) {
      return usage(invoked_as(argc, argv, "ihtl_convert").c_str(), args);
    }
    const std::string output = args.get_string("output");
    if (output.empty()) throw std::invalid_argument("need --output <path>");
    const std::string to = args.get_string("to", "graph");

    Timer t;
    const Graph g = load_input_graph(args);
    std::fprintf(stderr, "loaded graph: %u vertices, %llu edges (%.1fs)\n",
                 g.num_vertices(),
                 static_cast<unsigned long long>(g.num_edges()),
                 t.elapsed_seconds());
    t.reset();
    if (to == "graph") {
      save_graph_binary(g, output);
    } else if (to == "ihtl") {
      const IhtlGraph ig = build_ihtl_graph(g, config_from_args(args));
      std::fprintf(stderr,
                   "iHTL preprocessing: %zu block(s), %u hubs, %.0f%% of "
                   "edges flipped (%.1fs)\n",
                   ig.blocks().size(), ig.num_hubs(),
                   ig.num_edges()
                       ? 100.0 * ig.flipped_edges() / ig.num_edges()
                       : 0.0,
                   t.elapsed_seconds());
      ig.save_binary(output);
    } else {
      throw std::invalid_argument("--to must be 'graph' or 'ihtl'");
    }
    std::fprintf(stderr, "wrote %s\n", output.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", invoked_as(argc, argv, "ihtl_convert").c_str(),
                 e.what());
    return 1;
  }
}

int cmd_info(int argc, const char* const* argv) {
  ArgParser args;
  add_common_input_flags(args);
  try {
    args.parse(argc, argv);
    if (args.has("help")) return usage("ihtl_info", args);
    const Graph g = load_input_graph(args);
    const GraphStats s = compute_stats(g);
    std::printf("vertices          %u\n", s.num_vertices);
    std::printf("edges             %llu\n",
                static_cast<unsigned long long>(s.num_edges));
    std::printf("avg degree        %.2f\n", s.avg_degree);
    std::printf("max in-degree     %llu\n",
                static_cast<unsigned long long>(s.max_in_degree));
    std::printf("max out-degree    %llu\n",
                static_cast<unsigned long long>(s.max_out_degree));
    std::printf("top-1%% edge share %.1f%%\n", 100.0 * s.top1pct_in_edge_share);
    std::printf("CSC topology      %.2f MiB\n",
                g.csc_topology_bytes() / (1024.0 * 1024.0));

    const IhtlConfig cfg = config_from_args(args);
    const HubSelection sel = select_hubs(g, cfg);
    std::printf("\niHTL preview (buffer %zu KiB -> %u hubs/block):\n",
                cfg.buffer_bytes >> 10, cfg.hubs_per_block());
    std::printf("flipped blocks    %zu\n", sel.num_blocks);
    std::printf("hubs              %zu\n", sel.hubs.size());
    std::printf("min hub degree    %llu\n",
                static_cast<unsigned long long>(sel.min_hub_degree));
    eid_t flipped = 0;
    for (const vid_t h : sel.hubs) flipped += g.in_degree(h);
    std::printf("flipped edges     %llu (%.0f%%)\n",
                static_cast<unsigned long long>(flipped),
                s.num_edges ? 100.0 * flipped / s.num_edges : 0.0);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ihtl_info: %s\n", e.what());
    return 1;
  }
}

int cmd_run(int argc, const char* const* argv) {
  ArgParser args;
  add_common_input_flags(args);
  args.add_flag("app", true,
                "pagerank | pagerank-delta | cc | sssp | bfs | bfs-frontier "
                "| hits | triangles | kcore (required)");
  args.add_flag("kernel", true,
                "pull | pull-edge-balanced | segmented-pull | push-atomic | "
                "push-buffered | push-partitioned | ihtl (default ihtl)");
  args.add_flag("iterations", true, "iteration count (default 20)");
  args.add_flag("source", true, "source vertex for sssp/bfs (default 0)");
  args.add_flag("batch", true,
                "batch lanes k (default 1): pagerank becomes k-source "
                "personalized PageRank and sssp/bfs become multi-source, "
                "sources --source .. --source+k-1, one batched SpMV per "
                "iteration (ihtl kernel only for pagerank)");
  args.add_flag("top", true, "print top-K vertices (default 5)");
  args.add_flag("threads", true, "worker threads (default hw concurrency)");
  args.add_flag("shards", true,
                "destination-range shards S for the iHTL engine (default 1 "
                "= unsharded; pagerank with --kernel ihtl only)");
  args.add_flag("metrics-out", true,
                "write a JSON telemetry report (spans/counters/gauges) here");
  args.add_flag("trace-out", true,
                "write a Chrome trace_event JSON timeline here (open in "
                "chrome://tracing or Perfetto)");
  try {
    args.parse(argc, argv);
    if (args.has("help")) return usage("ihtl_run", args);
    const std::string app = args.get_string("app");
    if (app.empty()) throw std::invalid_argument("need --app <name>");

    OutputFileGuard metrics;
    if (!metrics.open(args, "metrics-out", "ihtl_run")) return 1;
    if (metrics.file.is_open()) telemetry::MetricsRegistry::global().clear();

    const Graph g = load_input_graph(args);
    ThreadPool pool(static_cast<std::size_t>(args.get_int("threads", 0)));
    TraceGuard trace;
    trace.install(args.get_string("trace-out"), pool.size());
    const IhtlConfig cfg = config_from_args(args);
    const auto iterations =
        static_cast<unsigned>(args.get_int("iterations", 20));
    const auto top_k =
        static_cast<std::size_t>(std::max<std::int64_t>(0, args.get_int("top", 5)));
    const std::string kernel_str = args.get_string("kernel", "ihtl");
    const std::int64_t batch_arg = args.get_int("batch", 1);
    if (batch_arg < 1) throw std::invalid_argument("--batch must be >= 1");
    const auto batch = static_cast<std::size_t>(batch_arg);
    const std::int64_t shards_arg = args.get_int("shards", 1);
    if (shards_arg < 1) throw std::invalid_argument("--shards must be >= 1");
    const auto shards = static_cast<std::size_t>(shards_arg);
    if (shards > 1 && (app != "pagerank" || kernel_str != "ihtl")) {
      throw std::invalid_argument(
          "--shards > 1 is only supported for --app pagerank --kernel ihtl "
          "(the sharded engine underlies the iHTL SpMV path)");
    }

    // Lane l of a batched run starts from --source + l (wrapped mod n).
    auto batch_sources = [&]() {
      const auto source = static_cast<vid_t>(args.get_int("source", 0));
      if (source >= g.num_vertices()) {
        throw std::invalid_argument("--source out of range");
      }
      std::vector<vid_t> sources(batch);
      for (std::size_t lane = 0; lane < batch; ++lane) {
        sources[lane] = static_cast<vid_t>(
            (source + lane) % std::max<vid_t>(1, g.num_vertices()));
      }
      return sources;
    };

    auto print_top = [&](const std::vector<value_t>& score,
                         const char* what) {
      std::vector<vid_t> idx(score.size());
      std::iota(idx.begin(), idx.end(), vid_t{0});
      const std::size_t k = std::min(top_k, idx.size());
      std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k),
                        idx.end(),
                        [&](vid_t a, vid_t b) { return score[a] > score[b]; });
      for (std::size_t i = 0; i < k; ++i) {
        std::printf("top %s #%zu: vertex %u (%.4e)\n", what, i + 1, idx[i],
                    score[idx[i]]);
      }
    };

    // Dispatch in a lambda so every successful app path funnels through the
    // telemetry report writer below.
    const int rc = [&]() -> int {
    if (app == "pagerank" && batch > 1) {
      // Batched personalized PageRank rides the k-lane engine path, which
      // only the iHTL executor implements.
      if (kernel_str != "ihtl") {
        throw std::invalid_argument(
            "--batch > 1 requires --kernel ihtl for pagerank");
      }
      const std::vector<vid_t> sources = batch_sources();
      PageRankOptions opt;
      opt.iterations = iterations;
      opt.ihtl = cfg;
      opt.shards = shards;
      Timer prep;
      const IhtlGraph ig = build_ihtl_graph(g, cfg);
      const double prep_s = prep.elapsed_seconds();
      const PageRankResult r =
          pagerank_personalized_batch(pool, g, ig, sources, opt);
      std::printf("pagerank[ihtl] x%zu lanes: %.2f ms/iteration "
                  "(preprocessing %.1f ms)\n",
                  batch, 1e3 * r.seconds_per_iteration, 1e3 * prep_s);
      std::vector<value_t> lane_ranks(g.num_vertices());
      for (std::size_t lane = 0; lane < batch; ++lane) {
        for (vid_t v = 0; v < g.num_vertices(); ++v) {
          lane_ranks[v] = r.ranks[static_cast<std::size_t>(v) * batch + lane];
        }
        const std::string what =
            "rank (source " + std::to_string(sources[lane]) + ")";
        print_top(lane_ranks, what.c_str());
      }
      return 0;
    }
    if (app == "pagerank") {
      SpmvKernel kernel = SpmvKernel::ihtl;
      const SpmvKernel all[] = {
          SpmvKernel::pull,          SpmvKernel::pull_edge_balanced,
          SpmvKernel::segmented_pull, SpmvKernel::push_atomic,
          SpmvKernel::push_buffered, SpmvKernel::push_partitioned,
          SpmvKernel::ihtl};
      bool found = false;
      for (const SpmvKernel k : all) {
        if (kernel_name(k) == kernel_str) {
          kernel = k;
          found = true;
        }
      }
      if (!found) throw std::invalid_argument("unknown kernel: " + kernel_str);
      PageRankOptions opt;
      opt.iterations = iterations;
      opt.ihtl = cfg;
      opt.shards = shards;
      const PageRankResult r = pagerank(pool, g, kernel, opt);
      std::printf("pagerank[%s]: %.2f ms/iteration (preprocessing %.1f ms)\n",
                  kernel_str.c_str(), 1e3 * r.seconds_per_iteration,
                  1e3 * r.preprocessing_seconds);
      print_top(r.ranks, "rank");
      return 0;
    }

    const AnalyticsKernel akernel = kernel_str == "pull"
                                        ? AnalyticsKernel::pull
                                        : AnalyticsKernel::ihtl;
    if (app == "cc") {
      const Graph sym = symmetrize(g);
      const AnalyticsResult r = connected_components(pool, sym, akernel, cfg);
      std::vector<value_t> sorted_labels = r.values;
      std::sort(sorted_labels.begin(), sorted_labels.end());
      const auto components = static_cast<std::size_t>(
          std::unique(sorted_labels.begin(), sorted_labels.end()) -
          sorted_labels.begin());
      std::printf("cc[%s]: %zu components in %u rounds (%.1f ms)\n",
                  kernel_str.c_str(), components, r.iterations,
                  1e3 * r.seconds);
      return 0;
    }
    if ((app == "sssp" || app == "bfs") && batch > 1) {
      const std::vector<vid_t> sources = batch_sources();
      const AnalyticsResult r = bfs_multi_source(pool, g, sources, akernel, cfg);
      std::printf("%s[%s] x%zu sources: %u rounds (%.1f ms)\n", app.c_str(),
                  kernel_str.c_str(), batch, r.iterations, 1e3 * r.seconds);
      for (std::size_t lane = 0; lane < batch; ++lane) {
        vid_t reached = 0;
        double ecc = 0;
        for (vid_t v = 0; v < g.num_vertices(); ++v) {
          const value_t d = r.values[static_cast<std::size_t>(v) * batch + lane];
          if (std::isfinite(d)) {
            ++reached;
            ecc = std::max(ecc, static_cast<double>(d));
          }
        }
        std::printf("  lane %zu from %u: reached %u/%u, eccentricity %.0f\n",
                    lane, sources[lane], reached, g.num_vertices(), ecc);
      }
      return 0;
    }
    if (app == "sssp" || app == "bfs") {
      const auto source = static_cast<vid_t>(args.get_int("source", 0));
      if (source >= g.num_vertices()) {
        throw std::invalid_argument("--source out of range");
      }
      const AnalyticsResult r = sssp_unit(pool, g, source, akernel, cfg);
      vid_t reached = 0;
      double ecc = 0;
      for (const value_t d : r.values) {
        if (std::isfinite(d)) {
          ++reached;
          ecc = std::max(ecc, d);
        }
      }
      std::printf("%s[%s] from %u: reached %u/%u, eccentricity %.0f, "
                  "%u rounds (%.1f ms)\n",
                  app.c_str(), kernel_str.c_str(), source, reached,
                  g.num_vertices(), ecc, r.iterations, 1e3 * r.seconds);
      return 0;
    }
    if (app == "hits") {
      HitsOptions opt;
      opt.iterations = iterations;
      opt.kernel = kernel_str == "pull" ? HitsKernel::pull : HitsKernel::ihtl;
      opt.ihtl = cfg;
      const HitsResult r = hits(pool, g, opt);
      std::printf("hits[%s]: %.2f ms/iteration (preprocessing %.1f ms)\n",
                  kernel_str.c_str(), 1e3 * r.seconds_per_iteration,
                  1e3 * r.preprocessing_seconds);
      print_top(r.authority, "authority");
      print_top(r.hub, "hub");
      return 0;
    }
    if (app == "pagerank-delta") {
      PageRankDeltaOptions dopt;
      dopt.max_rounds = iterations;
      const PageRankDeltaResult r = pagerank_delta(pool, g, dopt);
      std::printf("pagerank-delta: %u rounds, %llu total-active vertices "
                  "(%.1f ms)\n",
                  r.rounds, static_cast<unsigned long long>(r.total_active),
                  1e3 * r.seconds);
      print_top(r.ranks, "rank");
      return 0;
    }
    if (app == "kcore") {
      const Graph sym = symmetrize(g);
      const KCoreResult r = kcore_decomposition(pool, sym);
      std::printf("kcore: degeneracy %u, %u peel rounds (%.1f ms)\n",
                  r.max_core, r.peel_rounds, 1e3 * r.seconds);
      return 0;
    }
    if (app == "bfs-frontier") {
      // Direction-optimizing frontier BFS (Section 5.2 baseline family).
      const auto source = static_cast<vid_t>(args.get_int("source", 0));
      if (source >= g.num_vertices()) {
        throw std::invalid_argument("--source out of range");
      }
      const BfsResult r = bfs(pool, g, source);
      vid_t reached = 0;
      std::int64_t ecc = 0;
      for (const std::int64_t l : r.level) {
        if (l != BfsResult::kUnreached) {
          ++reached;
          ecc = std::max(ecc, l);
        }
      }
      std::printf("bfs-frontier from %u: reached %u/%u, eccentricity %lld, "
                  "%u steps (%u bottom-up) in %.1f ms\n",
                  source, reached, g.num_vertices(),
                  static_cast<long long>(ecc), r.steps, r.bottom_up_steps,
                  1e3 * r.seconds);
      return 0;
    }
    if (app == "triangles") {
      const Graph sym = symmetrize(g);
      const TriangleCountResult r = count_triangles(pool, sym);
      std::printf("triangles: %llu (%u bitmap hubs, %.1f ms)\n",
                  static_cast<unsigned long long>(r.triangles),
                  r.hub_vertices, 1e3 * r.seconds);
      return 0;
    }
    throw std::invalid_argument("unknown app: " + app);
    }();

    if (rc == 0) {
      const int trc = trace.write("ihtl_run");
      if (trc != 0) return trc;
    }
    if (rc == 0 && metrics.file.is_open()) {
      using telemetry::JsonValue;
      auto& reg = telemetry::MetricsRegistry::global();
      pool.export_metrics(reg);
      JsonValue run = JsonValue::object();
      run.set("tool", "ihtl_run");
      run.set("app", app);
      run.set("kernel", kernel_str);
      run.set("iterations", static_cast<std::uint64_t>(iterations));
      run.set("batch", static_cast<std::uint64_t>(batch));
      run.set("threads", static_cast<std::uint64_t>(pool.size()));
      JsonValue graph = JsonValue::object();
      graph.set("vertices", static_cast<std::uint64_t>(g.num_vertices()));
      graph.set("edges", static_cast<std::uint64_t>(g.num_edges()));
      JsonValue config = JsonValue::object();
      config.set("buffer_bytes", static_cast<std::uint64_t>(cfg.buffer_bytes));
      config.set("admission_ratio", cfg.admission_ratio);
      config.set("push_policy", push_policy_name(cfg.push_policy));
      metrics.file << telemetry::make_report(reg, std::move(run),
                                             std::move(graph),
                                             std::move(config))
                          .dump();
      metrics.file.flush();
      if (!metrics.file) {
        std::fprintf(stderr, "ihtl_run: write to '%s' failed\n",
                     metrics.path.c_str());
        return 1;
      }
      metrics.keep = true;
      std::fprintf(stderr, "wrote metrics to %s\n", metrics.path.c_str());
    }
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ihtl_run: %s\n", e.what());
    return 1;
  }
}

namespace {

/// One row of the profile table: wall time, HW-counter deltas and the
/// phase-appropriate work denominator, summed over every measured
/// repetition.
struct ProfileRow {
  double seconds = 0.0;
  telemetry::HwStats hw;
  std::uint64_t work = 0;  ///< edges (push/pull) or values (reset/merge)
};

void print_profile_row(const char* name, const ProfileRow& row,
                       std::uint64_t iterations_total) {
  const double per_iter_ms =
      iterations_total ? 1e3 * row.seconds / static_cast<double>(iterations_total)
                       : 0.0;
  std::printf("%-12s %10.3f %14llu", name, per_iter_ms,
              static_cast<unsigned long long>(
                  iterations_total ? row.work / iterations_total : 0));
  if (row.hw.samples > 0 && row.work > 0) {
    const double per_work = 1.0 / static_cast<double>(row.work);
    std::printf(" %12.4f %12.4f %12.4f %8.2f\n",
                static_cast<double>(row.hw.sum.llc_misses) * per_work,
                static_cast<double>(row.hw.sum.l1d_misses) * per_work,
                static_cast<double>(row.hw.sum.dtlb_misses) * per_work,
                row.hw.sum.ipc());
  } else {
    std::printf(" %12s %12s %12s %8s\n", "-", "-", "-", "-");
  }
}

telemetry::JsonValue profile_row_to_json(const ProfileRow& row,
                                         std::uint64_t iterations_total) {
  using telemetry::JsonValue;
  JsonValue entry = JsonValue::object();
  entry.set("seconds_total", row.seconds);
  entry.set("seconds_per_iteration",
            iterations_total
                ? row.seconds / static_cast<double>(iterations_total)
                : 0.0);
  entry.set("work_items", row.work);
  if (row.hw.samples > 0) {
    JsonValue hw = JsonValue::object();
    hw.set("cycles", row.hw.sum.cycles);
    hw.set("instructions", row.hw.sum.instructions);
    hw.set("ipc", row.hw.sum.ipc());
    hw.set("llc_loads", row.hw.sum.llc_loads);
    hw.set("llc_misses", row.hw.sum.llc_misses);
    hw.set("l1d_misses", row.hw.sum.l1d_misses);
    hw.set("dtlb_misses", row.hw.sum.dtlb_misses);
    hw.set("samples", row.hw.samples);
    if (row.work > 0) {
      hw.set("llc_misses_per_item",
             static_cast<double>(row.hw.sum.llc_misses) /
                 static_cast<double>(row.work));
      hw.set("l1d_misses_per_item",
             static_cast<double>(row.hw.sum.l1d_misses) /
                 static_cast<double>(row.work));
    }
    entry.set("hw", std::move(hw));
  }
  return entry;
}

}  // namespace

int cmd_profile(int argc, const char* const* argv) {
  ArgParser args;
  add_common_input_flags(args);
  args.add_flag("dataset", true, "alias for --gen (named generated dataset)");
  args.add_flag("iterations", true,
                "SpMV iterations per repetition (default 10)");
  args.add_flag("repeat", true, "measured repetitions (default 3)");
  args.add_flag("threads", true, "worker threads (default hw concurrency)");
  args.add_flag("compare", true,
                "baseline profiled alongside: pull | none (default pull)");
  args.add_flag("per-block", false,
                "add per-flipped-block push rows (needs hardware counters)");
  args.add_flag("no-hw", false,
                "skip perf_event_open; software timings only");
  args.add_flag("require-hw", false,
                "exit 1 if hardware counters are unavailable");
  args.add_flag("fallback-ok", false,
                "exit 0 without hardware counters (the default; explicit "
                "for CI jobs)");
  args.add_flag("out", true, "write the profile report JSON here");
  args.add_flag("trace-out", true,
                "write a Chrome trace_event JSON timeline here (open in "
                "chrome://tracing or Perfetto)");
  try {
    args.parse(argc, argv);
    if (args.has("help")) return usage("ihtl_profile", args);
    const auto iterations = static_cast<std::uint64_t>(
        std::max<std::int64_t>(1, args.get_int("iterations", 10)));
    const auto repeat = static_cast<std::uint64_t>(
        std::max<std::int64_t>(1, args.get_int("repeat", 3)));
    const std::string compare = args.get_string("compare", "pull");
    if (compare != "pull" && compare != "none") {
      throw std::invalid_argument("--compare must be 'pull' or 'none'");
    }
    if (args.has("require-hw") && args.has("no-hw")) {
      throw std::invalid_argument("--require-hw contradicts --no-hw");
    }

    OutputFileGuard out;
    if (!out.open(args, "out", "ihtl_profile")) return 1;

    // Hardware counters: probe availability once. Unavailability is a
    // reported outcome, not an error — unless --require-hw asks otherwise.
    if (args.has("no-hw")) {
      telemetry::perf::force_unavailable("disabled via --no-hw");
    }
    const bool hw_available = telemetry::perf::enable();
    const std::string hw_reason =
        hw_available ? "" : telemetry::perf::unavailable_reason();
    if (!hw_available) {
      std::fprintf(stderr, "ihtl_profile: hw_counters: unavailable (%s)\n",
                   hw_reason.c_str());
      if (args.has("require-hw")) return 1;
    }

    const Graph g = load_input_graph(args);
    ThreadPool pool(static_cast<std::size_t>(args.get_int("threads", 0)));
    const IhtlConfig cfg = config_from_args(args);
    Timer prep;
    const IhtlGraph ig = build_ihtl_graph(g, cfg);
    const double preprocessing_s = prep.elapsed_seconds();

    auto& reg = telemetry::MetricsRegistry::global();
    reg.clear();
    IhtlEngine<PlusMonoid> engine(ig, pool, cfg.push_policy);
    engine.set_metrics(&reg);
    engine.set_per_block_hw(args.has("per-block"));

    // Uniform input vector: the PageRank-shaped SpMV workload the paper
    // profiles in Table 3. Outputs are kept separate per kernel so the
    // comparison never reads the other kernel's result.
    const std::size_t n = ig.num_vertices();
    std::vector<value_t> x(n, n ? value_t{1} / static_cast<value_t>(n)
                                : value_t{0});
    std::vector<value_t> y(n, value_t{0});
    std::vector<value_t> y_base(n, value_t{0});

    // Warmup: touch every buffer/page once so the measured repetitions
    // profile steady-state behavior, not first-touch faults.
    engine.spmv(x, y);
    if (compare == "pull") spmv_pull(pool, g, x, y_base);

    TraceGuard trace;
    trace.install(args.get_string("trace-out"), pool.size());

    ProfileRow reset_row, push_row, merge_row, pull_row, base_row;
    std::map<std::string, ProfileRow> block_rows;
    const std::uint64_t iterations_total = iterations * repeat;

    for (std::uint64_t rep = 0; rep < repeat; ++rep) {
      // Fresh counters every repetition: a slow first rep (cold caches,
      // frequency ramp) must not contaminate the later ones' attribution,
      // and the scheduler stats feed the per-rep imbalance gauge.
      reg.clear();
      pool.reset_stats();
      reg.set_hw_status(hw_available, hw_reason);

      std::uint64_t reset_values = 0, merge_segments = 0;
      for (std::uint64_t it = 0; it < iterations; ++it) {
        engine.spmv(x, y);
        reset_values += engine.last_stats().reset_values_cleared;
        merge_segments += engine.last_stats().merge_segments_streamed;
      }
      if (compare == "pull") {
        // Worker HW deltas land on "baseline/pull" via the PhaseScope; the
        // wall time is recorded per iteration by hand (a ScopedSpan would
        // double-count the master thread's HW delta).
        telemetry::perf::PhaseScope scope(&reg, "baseline/pull");
        for (std::uint64_t it = 0; it < iterations; ++it) {
          Timer t;
          spmv_pull(pool, g, x, y_base);
          reg.record_span("baseline/pull", t.elapsed_seconds());
        }
      }

      const auto spans = reg.spans();
      const auto hw = reg.hw();
      auto take = [&](const char* path, ProfileRow& row,
                      std::uint64_t work) {
        if (const auto it = spans.find(path); it != spans.end()) {
          row.seconds += it->second.total_s;
        }
        if (const auto it = hw.find(path); it != hw.end()) {
          row.hw.sum.accumulate(it->second.sum);
          row.hw.samples += it->second.samples;
        }
        row.work += work;
      };
      take("spmv/reset", reset_row, reset_values);
      take("spmv/push", push_row, ig.flipped_edges() * iterations);
      take("spmv/merge", merge_row, merge_segments);
      take("spmv/pull", pull_row, ig.sparse_edges() * iterations);
      if (compare == "pull") {
        take("baseline/pull", base_row, g.num_edges() * iterations);
      }
      for (const auto& [path, stats] : hw) {
        if (path.rfind("spmv/push/block", 0) != 0) continue;
        const std::size_t b = std::stoul(path.substr(15));
        ProfileRow& row = block_rows[path];
        row.hw.sum.accumulate(stats.sum);
        row.hw.samples += stats.samples;
        row.work = b < ig.blocks().size()
                       ? static_cast<std::uint64_t>(
                             ig.blocks()[b].num_edges()) *
                             iterations * (rep + 1)
                       : 0;
      }
    }

    const int trc = trace.write("ihtl_profile");
    if (trc != 0) return trc;

    // The paper's Table 3 shape: one row per phase, misses normalized by
    // the phase's own work unit (edges for the traversals, buffer values
    // for reset, streamed tile segments for merge).
    std::printf("profile: %llu x %llu SpMV iterations, %zu threads, "
                "%zu block(s), %u hubs\n",
                static_cast<unsigned long long>(repeat),
                static_cast<unsigned long long>(iterations), pool.size(),
                ig.blocks().size(), ig.num_hubs());
    std::printf("hw_counters: %s%s%s\n",
                hw_available ? "available" : "unavailable",
                hw_available ? "" : " — ", hw_available ? "" : hw_reason.c_str());
    std::printf("%-12s %10s %14s %12s %12s %12s %8s\n", "phase",
                "ms/iter", "work/iter", "LLC-miss/wk", "L1d-miss/wk",
                "dTLB-miss/wk", "IPC");
    print_profile_row("reset", reset_row, iterations_total);
    print_profile_row("push", push_row, iterations_total);
    for (const auto& [path, row] : block_rows) {
      print_profile_row(("  " + path.substr(10)).c_str(), row,
                        iterations_total);
    }
    print_profile_row("merge", merge_row, iterations_total);
    print_profile_row("pull", pull_row, iterations_total);
    const ProfileRow total_row = [&] {
      ProfileRow t;
      for (const ProfileRow* r : {&reset_row, &push_row, &merge_row,
                                  &pull_row}) {
        t.seconds += r->seconds;
        t.hw.sum.accumulate(r->hw.sum);
        t.hw.samples += r->hw.samples;
        t.work += r->work;
      }
      t.work = (static_cast<std::uint64_t>(ig.flipped_edges()) +
                ig.sparse_edges()) *
               iterations_total;
      return t;
    }();
    print_profile_row("ihtl total", total_row, iterations_total);
    if (compare == "pull") {
      print_profile_row("pull-only", base_row, iterations_total);
      if (base_row.seconds > 0 && total_row.seconds > 0) {
        std::printf("speedup vs pull-only: %.2fx\n",
                    base_row.seconds / total_row.seconds);
      }
    }

    if (out.file.is_open()) {
      using telemetry::JsonValue;
      pool.export_metrics(reg);
      JsonValue run = JsonValue::object();
      run.set("tool", "ihtl_profile");
      run.set("iterations", iterations);
      run.set("repetitions", repeat);
      run.set("threads", static_cast<std::uint64_t>(pool.size()));
      run.set("compare", compare);
      run.set("preprocessing_seconds", preprocessing_s);
      JsonValue graph = JsonValue::object();
      graph.set("vertices", static_cast<std::uint64_t>(g.num_vertices()));
      graph.set("edges", static_cast<std::uint64_t>(g.num_edges()));
      graph.set("flipped_edges",
                static_cast<std::uint64_t>(ig.flipped_edges()));
      graph.set("sparse_edges",
                static_cast<std::uint64_t>(ig.sparse_edges()));
      graph.set("hubs", static_cast<std::uint64_t>(ig.num_hubs()));
      graph.set("blocks", static_cast<std::uint64_t>(ig.blocks().size()));
      JsonValue config = JsonValue::object();
      config.set("buffer_bytes",
                 static_cast<std::uint64_t>(cfg.buffer_bytes));
      config.set("admission_ratio", cfg.admission_ratio);
      config.set("push_policy", push_policy_name(cfg.push_policy));
      JsonValue report = telemetry::make_report(reg, std::move(run),
                                                std::move(graph),
                                                std::move(config));
      JsonValue phases = JsonValue::object();
      phases.set("reset", profile_row_to_json(reset_row, iterations_total));
      phases.set("push", profile_row_to_json(push_row, iterations_total));
      phases.set("merge", profile_row_to_json(merge_row, iterations_total));
      phases.set("pull", profile_row_to_json(pull_row, iterations_total));
      for (const auto& [path, row] : block_rows) {
        phases.set(path, profile_row_to_json(row, iterations_total));
      }
      JsonValue profile = JsonValue::object();
      profile.set("phases", std::move(phases));
      profile.set("ihtl_total",
                  profile_row_to_json(total_row, iterations_total));
      if (compare == "pull") {
        profile.set("pull_baseline",
                    profile_row_to_json(base_row, iterations_total));
        if (base_row.seconds > 0 && total_row.seconds > 0) {
          profile.set("speedup_vs_pull",
                      base_row.seconds / total_row.seconds);
        }
      }
      report.set("profile", std::move(profile));
      out.file << report.dump();
      out.file.flush();
      if (!out.file) {
        std::fprintf(stderr, "ihtl_profile: write to '%s' failed\n",
                     out.path.c_str());
        return 1;
      }
      out.keep = true;
      std::fprintf(stderr, "wrote profile to %s\n", out.path.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ihtl_profile: %s\n", e.what());
    return 1;
  }
}

}  // namespace ihtl
