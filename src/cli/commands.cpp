#include "cli/commands.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <exception>
#include <fstream>
#include <numeric>
#include <string>
#include <vector>

#include "apps/analytics.h"
#include "apps/bfs.h"
#include "apps/hits.h"
#include "apps/kcore.h"
#include "apps/pagerank.h"
#include "apps/pagerank_delta.h"
#include "apps/triangle_count.h"
#include "cli/args.h"
#include "core/ihtl_graph.h"
#include "gen/datasets.h"
#include "graph/io.h"
#include "graph/stats.h"
#include "parallel/thread_pool.h"
#include "parallel/timer.h"
#include "telemetry/json.h"
#include "telemetry/metrics.h"
#include "telemetry/report.h"

namespace ihtl {

namespace {

/// Loads a graph from --graph (binary container or edge-list text) or
/// generates one from --gen/--gen-scale.
Graph load_input_graph(const ArgParser& args) {
  if (args.has("gen")) {
    const std::string scale_name = args.get_string("gen-scale", "bench");
    DatasetScale scale;
    if (scale_name == "tiny") {
      scale = DatasetScale::tiny;
    } else if (scale_name == "small") {
      scale = DatasetScale::small;
    } else if (scale_name == "bench") {
      scale = DatasetScale::bench;
    } else if (scale_name == "large") {
      scale = DatasetScale::large;
    } else {
      throw std::invalid_argument("unknown --gen-scale: " + scale_name);
    }
    return make_dataset(args.get_string("gen"), scale);
  }
  const std::string path = args.get_string("graph");
  if (path.empty()) {
    throw std::invalid_argument("need --graph <file> or --gen <dataset>");
  }
  try {
    return load_graph_binary(path);
  } catch (const std::exception&) {
    BuildOptions opt;
    opt.dedup = true;
    opt.remove_self_loops = true;
    opt.sort_neighbors = true;
    return load_edge_list(path, opt);
  }
}

IhtlConfig config_from_args(const ArgParser& args) {
  IhtlConfig cfg;
  if (args.has("buffer-bytes")) {
    cfg.buffer_bytes = static_cast<std::size_t>(args.get_int("buffer-bytes"));
  }
  if (args.has("admission-ratio")) {
    cfg.admission_ratio = args.get_double("admission-ratio");
  }
  if (args.has("push-policy")) {
    const std::string name = args.get_string("push-policy");
    const auto policy = push_policy_from_name(name);
    if (!policy) {
      throw std::invalid_argument("unknown --push-policy '" + name +
                                  "' (auto, shared, single-owner)");
    }
    cfg.push_policy = *policy;
  }
  return cfg;
}

void add_common_input_flags(ArgParser& args) {
  args.add_flag("graph", true, "input graph: ihtl binary or edge-list text");
  args.add_flag("gen", true, "generate a named dataset instead (e.g. TwtrMpi)");
  args.add_flag("gen-scale", true, "tiny|small|bench|large (default bench)");
  args.add_flag("buffer-bytes", true, "iHTL hub-buffer bytes (default 1 MiB)");
  args.add_flag("admission-ratio", true,
                "flipped-block admission ratio (default 0.5)");
  args.add_flag("push-policy", true,
                "engine push/merge policy: auto | shared | single-owner "
                "(default auto)");
  args.add_flag("help", false, "show usage");
}

int usage(const char* tool, const ArgParser& args) {
  std::printf("usage: %s [flags]\n%s", tool, args.help_text().c_str());
  return 0;
}

/// Basename of argv[0], so a multi-named binary (ihtl_convert / ihtl_build)
/// prints the name it was invoked under; falls back for empty argv.
std::string invoked_as(int argc, const char* const* argv,
                       const char* fallback) {
  if (argc < 1 || !argv[0] || !*argv[0]) return fallback;
  const std::string path = argv[0];
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

}  // namespace

int cmd_convert(int argc, const char* const* argv) {
  ArgParser args;
  add_common_input_flags(args);
  args.add_flag("output", true, "output path (required)");
  args.add_flag("to", true, "output format: graph | ihtl (default graph)");
  try {
    args.parse(argc, argv);
    if (args.has("help")) {
      return usage(invoked_as(argc, argv, "ihtl_convert").c_str(), args);
    }
    const std::string output = args.get_string("output");
    if (output.empty()) throw std::invalid_argument("need --output <path>");
    const std::string to = args.get_string("to", "graph");

    Timer t;
    const Graph g = load_input_graph(args);
    std::fprintf(stderr, "loaded graph: %u vertices, %llu edges (%.1fs)\n",
                 g.num_vertices(),
                 static_cast<unsigned long long>(g.num_edges()),
                 t.elapsed_seconds());
    t.reset();
    if (to == "graph") {
      save_graph_binary(g, output);
    } else if (to == "ihtl") {
      const IhtlGraph ig = build_ihtl_graph(g, config_from_args(args));
      std::fprintf(stderr,
                   "iHTL preprocessing: %zu block(s), %u hubs, %.0f%% of "
                   "edges flipped (%.1fs)\n",
                   ig.blocks().size(), ig.num_hubs(),
                   ig.num_edges()
                       ? 100.0 * ig.flipped_edges() / ig.num_edges()
                       : 0.0,
                   t.elapsed_seconds());
      ig.save_binary(output);
    } else {
      throw std::invalid_argument("--to must be 'graph' or 'ihtl'");
    }
    std::fprintf(stderr, "wrote %s\n", output.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", invoked_as(argc, argv, "ihtl_convert").c_str(),
                 e.what());
    return 1;
  }
}

int cmd_info(int argc, const char* const* argv) {
  ArgParser args;
  add_common_input_flags(args);
  try {
    args.parse(argc, argv);
    if (args.has("help")) return usage("ihtl_info", args);
    const Graph g = load_input_graph(args);
    const GraphStats s = compute_stats(g);
    std::printf("vertices          %u\n", s.num_vertices);
    std::printf("edges             %llu\n",
                static_cast<unsigned long long>(s.num_edges));
    std::printf("avg degree        %.2f\n", s.avg_degree);
    std::printf("max in-degree     %llu\n",
                static_cast<unsigned long long>(s.max_in_degree));
    std::printf("max out-degree    %llu\n",
                static_cast<unsigned long long>(s.max_out_degree));
    std::printf("top-1%% edge share %.1f%%\n", 100.0 * s.top1pct_in_edge_share);
    std::printf("CSC topology      %.2f MiB\n",
                g.csc_topology_bytes() / (1024.0 * 1024.0));

    const IhtlConfig cfg = config_from_args(args);
    const HubSelection sel = select_hubs(g, cfg);
    std::printf("\niHTL preview (buffer %zu KiB -> %u hubs/block):\n",
                cfg.buffer_bytes >> 10, cfg.hubs_per_block());
    std::printf("flipped blocks    %zu\n", sel.num_blocks);
    std::printf("hubs              %zu\n", sel.hubs.size());
    std::printf("min hub degree    %llu\n",
                static_cast<unsigned long long>(sel.min_hub_degree));
    eid_t flipped = 0;
    for (const vid_t h : sel.hubs) flipped += g.in_degree(h);
    std::printf("flipped edges     %llu (%.0f%%)\n",
                static_cast<unsigned long long>(flipped),
                s.num_edges ? 100.0 * flipped / s.num_edges : 0.0);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ihtl_info: %s\n", e.what());
    return 1;
  }
}

int cmd_run(int argc, const char* const* argv) {
  ArgParser args;
  add_common_input_flags(args);
  args.add_flag("app", true,
                "pagerank | pagerank-delta | cc | sssp | bfs | bfs-frontier "
                "| hits | triangles | kcore (required)");
  args.add_flag("kernel", true,
                "pull | pull-edge-balanced | segmented-pull | push-atomic | "
                "push-buffered | push-partitioned | ihtl (default ihtl)");
  args.add_flag("iterations", true, "iteration count (default 20)");
  args.add_flag("source", true, "source vertex for sssp/bfs (default 0)");
  args.add_flag("top", true, "print top-K vertices (default 5)");
  args.add_flag("threads", true, "worker threads (default hw concurrency)");
  args.add_flag("metrics-out", true,
                "write a JSON telemetry report (spans/counters/gauges) here");
  try {
    args.parse(argc, argv);
    if (args.has("help")) return usage("ihtl_run", args);
    const std::string app = args.get_string("app");
    if (app.empty()) throw std::invalid_argument("need --app <name>");

    // Validate the metrics path up front: a 20-minute run must not discover
    // an unwritable output directory after the work is done. The guard
    // removes the pre-opened file again if the run fails for any reason
    // (including exceptions), so failures leave no empty report behind.
    struct MetricsFileGuard {
      std::ofstream file;
      std::string path;
      bool keep = false;
      ~MetricsFileGuard() {
        if (file.is_open() && !keep) {
          file.close();
          std::remove(path.c_str());
        }
      }
    } metrics;
    metrics.path = args.get_string("metrics-out");
    if (!metrics.path.empty()) {
      metrics.file.open(metrics.path);
      if (!metrics.file) {
        std::fprintf(stderr,
                     "ihtl_run: cannot open --metrics-out path '%s' for "
                     "writing\n",
                     metrics.path.c_str());
        return 1;
      }
      telemetry::MetricsRegistry::global().clear();
    }

    const Graph g = load_input_graph(args);
    ThreadPool pool(static_cast<std::size_t>(args.get_int("threads", 0)));
    const IhtlConfig cfg = config_from_args(args);
    const auto iterations =
        static_cast<unsigned>(args.get_int("iterations", 20));
    const auto top_k =
        static_cast<std::size_t>(std::max<std::int64_t>(0, args.get_int("top", 5)));
    const std::string kernel_str = args.get_string("kernel", "ihtl");

    auto print_top = [&](const std::vector<value_t>& score,
                         const char* what) {
      std::vector<vid_t> idx(score.size());
      std::iota(idx.begin(), idx.end(), vid_t{0});
      const std::size_t k = std::min(top_k, idx.size());
      std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k),
                        idx.end(),
                        [&](vid_t a, vid_t b) { return score[a] > score[b]; });
      for (std::size_t i = 0; i < k; ++i) {
        std::printf("top %s #%zu: vertex %u (%.4e)\n", what, i + 1, idx[i],
                    score[idx[i]]);
      }
    };

    // Dispatch in a lambda so every successful app path funnels through the
    // telemetry report writer below.
    const int rc = [&]() -> int {
    if (app == "pagerank") {
      SpmvKernel kernel = SpmvKernel::ihtl;
      const SpmvKernel all[] = {
          SpmvKernel::pull,          SpmvKernel::pull_edge_balanced,
          SpmvKernel::segmented_pull, SpmvKernel::push_atomic,
          SpmvKernel::push_buffered, SpmvKernel::push_partitioned,
          SpmvKernel::ihtl};
      bool found = false;
      for (const SpmvKernel k : all) {
        if (kernel_name(k) == kernel_str) {
          kernel = k;
          found = true;
        }
      }
      if (!found) throw std::invalid_argument("unknown kernel: " + kernel_str);
      PageRankOptions opt;
      opt.iterations = iterations;
      opt.ihtl = cfg;
      const PageRankResult r = pagerank(pool, g, kernel, opt);
      std::printf("pagerank[%s]: %.2f ms/iteration (preprocessing %.1f ms)\n",
                  kernel_str.c_str(), 1e3 * r.seconds_per_iteration,
                  1e3 * r.preprocessing_seconds);
      print_top(r.ranks, "rank");
      return 0;
    }

    const AnalyticsKernel akernel = kernel_str == "pull"
                                        ? AnalyticsKernel::pull
                                        : AnalyticsKernel::ihtl;
    if (app == "cc") {
      const Graph sym = symmetrize(g);
      const AnalyticsResult r = connected_components(pool, sym, akernel, cfg);
      std::vector<value_t> sorted_labels = r.values;
      std::sort(sorted_labels.begin(), sorted_labels.end());
      const auto components = static_cast<std::size_t>(
          std::unique(sorted_labels.begin(), sorted_labels.end()) -
          sorted_labels.begin());
      std::printf("cc[%s]: %zu components in %u rounds (%.1f ms)\n",
                  kernel_str.c_str(), components, r.iterations,
                  1e3 * r.seconds);
      return 0;
    }
    if (app == "sssp" || app == "bfs") {
      const auto source = static_cast<vid_t>(args.get_int("source", 0));
      if (source >= g.num_vertices()) {
        throw std::invalid_argument("--source out of range");
      }
      const AnalyticsResult r = sssp_unit(pool, g, source, akernel, cfg);
      vid_t reached = 0;
      double ecc = 0;
      for (const value_t d : r.values) {
        if (std::isfinite(d)) {
          ++reached;
          ecc = std::max(ecc, d);
        }
      }
      std::printf("%s[%s] from %u: reached %u/%u, eccentricity %.0f, "
                  "%u rounds (%.1f ms)\n",
                  app.c_str(), kernel_str.c_str(), source, reached,
                  g.num_vertices(), ecc, r.iterations, 1e3 * r.seconds);
      return 0;
    }
    if (app == "hits") {
      HitsOptions opt;
      opt.iterations = iterations;
      opt.kernel = kernel_str == "pull" ? HitsKernel::pull : HitsKernel::ihtl;
      opt.ihtl = cfg;
      const HitsResult r = hits(pool, g, opt);
      std::printf("hits[%s]: %.2f ms/iteration (preprocessing %.1f ms)\n",
                  kernel_str.c_str(), 1e3 * r.seconds_per_iteration,
                  1e3 * r.preprocessing_seconds);
      print_top(r.authority, "authority");
      print_top(r.hub, "hub");
      return 0;
    }
    if (app == "pagerank-delta") {
      PageRankDeltaOptions dopt;
      dopt.max_rounds = iterations;
      const PageRankDeltaResult r = pagerank_delta(pool, g, dopt);
      std::printf("pagerank-delta: %u rounds, %llu total-active vertices "
                  "(%.1f ms)\n",
                  r.rounds, static_cast<unsigned long long>(r.total_active),
                  1e3 * r.seconds);
      print_top(r.ranks, "rank");
      return 0;
    }
    if (app == "kcore") {
      const Graph sym = symmetrize(g);
      const KCoreResult r = kcore_decomposition(pool, sym);
      std::printf("kcore: degeneracy %u, %u peel rounds (%.1f ms)\n",
                  r.max_core, r.peel_rounds, 1e3 * r.seconds);
      return 0;
    }
    if (app == "bfs-frontier") {
      // Direction-optimizing frontier BFS (Section 5.2 baseline family).
      const auto source = static_cast<vid_t>(args.get_int("source", 0));
      if (source >= g.num_vertices()) {
        throw std::invalid_argument("--source out of range");
      }
      const BfsResult r = bfs(pool, g, source);
      vid_t reached = 0;
      std::int64_t ecc = 0;
      for (const std::int64_t l : r.level) {
        if (l != BfsResult::kUnreached) {
          ++reached;
          ecc = std::max(ecc, l);
        }
      }
      std::printf("bfs-frontier from %u: reached %u/%u, eccentricity %lld, "
                  "%u steps (%u bottom-up) in %.1f ms\n",
                  source, reached, g.num_vertices(),
                  static_cast<long long>(ecc), r.steps, r.bottom_up_steps,
                  1e3 * r.seconds);
      return 0;
    }
    if (app == "triangles") {
      const Graph sym = symmetrize(g);
      const TriangleCountResult r = count_triangles(pool, sym);
      std::printf("triangles: %llu (%u bitmap hubs, %.1f ms)\n",
                  static_cast<unsigned long long>(r.triangles),
                  r.hub_vertices, 1e3 * r.seconds);
      return 0;
    }
    throw std::invalid_argument("unknown app: " + app);
    }();

    if (rc == 0 && metrics.file.is_open()) {
      using telemetry::JsonValue;
      auto& reg = telemetry::MetricsRegistry::global();
      pool.export_metrics(reg);
      JsonValue run = JsonValue::object();
      run.set("tool", "ihtl_run");
      run.set("app", app);
      run.set("kernel", kernel_str);
      run.set("iterations", static_cast<std::uint64_t>(iterations));
      run.set("threads", static_cast<std::uint64_t>(pool.size()));
      JsonValue graph = JsonValue::object();
      graph.set("vertices", static_cast<std::uint64_t>(g.num_vertices()));
      graph.set("edges", static_cast<std::uint64_t>(g.num_edges()));
      JsonValue config = JsonValue::object();
      config.set("buffer_bytes", static_cast<std::uint64_t>(cfg.buffer_bytes));
      config.set("admission_ratio", cfg.admission_ratio);
      config.set("push_policy", push_policy_name(cfg.push_policy));
      metrics.file << telemetry::make_report(reg, std::move(run),
                                             std::move(graph),
                                             std::move(config))
                          .dump();
      metrics.file.flush();
      if (!metrics.file) {
        std::fprintf(stderr, "ihtl_run: write to '%s' failed\n",
                     metrics.path.c_str());
        return 1;
      }
      metrics.keep = true;
      std::fprintf(stderr, "wrote metrics to %s\n", metrics.path.c_str());
    }
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ihtl_run: %s\n", e.what());
    return 1;
  }
}

}  // namespace ihtl
