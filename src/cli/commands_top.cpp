// cmd_top — `top` for a running ihtl_serve daemon.
//
// Polls the server's `metrics` op (Prometheus text exposition, the same
// payload a scraper would read) and renders a refreshing operational view:
// per-op-class phase latencies (queue / compute / cache / serialize),
// result-cache and batcher state, watchdog trip counters, and per-shard
// load when the session runs a ShardedEngine. The renderer works from the
// exposition text alone, so it exercises exactly what external monitoring
// sees — if ihtl_top can draw the screen, a scraper can parse the feed.
#include <algorithm>
#include <cctype>
#include <charconv>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "cli/args.h"
#include "cli/commands.h"
#include "cli/common.h"
#include "serve/protocol.h"
#include "telemetry/json.h"

namespace ihtl {

namespace {

using telemetry::JsonValue;

/// One parsed exposition sample: `name{labels} value`. Labels are kept as
/// the raw `k="v",...` text — the renderer only needs exact-match lookup.
struct Sample {
  std::string name;
  std::string labels;
  double value = 0.0;
};

/// Parses the non-comment lines of a Prometheus text exposition. Lines
/// that do not match `name[{labels}] value` are skipped rather than fatal:
/// a live view should degrade, not die, on a feed it half-understands.
std::vector<Sample> parse_exposition(const std::string& text) {
  std::vector<Sample> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    Sample s;
    std::size_t i = 0;
    while (i < line.size() && line[i] != '{' && line[i] != ' ') ++i;
    s.name = line.substr(0, i);
    if (i < line.size() && line[i] == '{') {
      const std::size_t close = line.find('}', i);
      if (close == std::string::npos) continue;
      s.labels = line.substr(i + 1, close - i - 1);
      i = close + 1;
    }
    while (i < line.size() && line[i] == ' ') ++i;
    const char* begin = line.data() + i;
    const char* end = line.data() + line.size();
    if (auto [p, ec] = std::from_chars(begin, end, s.value);
        ec != std::errc()) {
      continue;  // +Inf / NaN / garbage: not needed for the view
    }
    out.push_back(std::move(s));
  }
  return out;
}

/// Unlabelled samples as a flat name -> value map for exact lookups.
std::map<std::string, double> flat_gauges(const std::vector<Sample>& samples) {
  std::map<std::string, double> out;
  for (const Sample& s : samples) {
    if (s.labels.empty()) out[s.name] = s.value;
  }
  return out;
}

double get_or(const std::map<std::string, double>& m, const std::string& key,
              double fallback = 0.0) {
  const auto it = m.find(key);
  return it == m.end() ? fallback : it->second;
}

/// The per-op gauge family exported by RequestPhaseStats::export_gauges is
/// `ihtl_serve_ops_<op>_<phase>_<stat>` after sanitization. Ops and phases
/// are closed sets, so the renderer enumerates them instead of guessing at
/// underscores inside names (`bump_epoch` would otherwise be ambiguous).
const char* const kOps[] = {"ppr",     "bfs",     "spmv",
                            "update",  "stats",   "metrics",
                            "bump_epoch", "shutdown"};
const char* const kPhases[] = {"queue", "compute", "cache", "serialize",
                               "total"};

void render_op_table(std::string& out,
                     const std::map<std::string, double>& g) {
  char buf[256];
  bool any = false;
  for (const char* op : kOps) {
    const std::string base = std::string("ihtl_serve_ops_") + op + "_";
    const double count = get_or(g, base + "total_count");
    if (count <= 0) continue;
    if (!any) {
      std::snprintf(buf, sizeof(buf), "  %-10s %8s %10s %10s %10s %10s\n",
                    "op", "count", "queue", "compute", "cache", "serialize");
      out += buf;
      any = true;
    }
    std::snprintf(buf, sizeof(buf), "  %-10s %8.0f", op, count);
    out += buf;
    for (const char* phase : kPhases) {
      if (std::string(phase) == "total") continue;
      const std::string pb = base + phase + "_";
      std::snprintf(buf, sizeof(buf), " %4.0f/%-5.0f",
                    get_or(g, pb + "p50_us"), get_or(g, pb + "p99_us"));
      out += buf;
    }
    const std::string tb = base + "total_";
    std::snprintf(buf, sizeof(buf), "   total %4.0f/%-5.0f us (p50/p99)\n",
                  get_or(g, tb + "p50_us"), get_or(g, tb + "p99_us"));
    out += buf;
  }
  if (!any) out += "  (no requests recorded yet)\n";
}

void render_shards(std::string& out, const std::map<std::string, double>& g) {
  char buf[256];
  for (int shard = 0;; ++shard) {
    const std::string base =
        "ihtl_sharded_shard" + std::to_string(shard) + "_";
    const auto it = g.find(base + "edges");
    if (it == g.end()) break;
    std::snprintf(buf, sizeof(buf),
                  "  shard %-3d edges=%-10.0f flipped_blocks=%-6.0f "
                  "remote_sources=%-8.0f team=%.0f\n",
                  shard, it->second, get_or(g, base + "flipped_blocks"),
                  get_or(g, base + "remote_sources"),
                  get_or(g, base + "team_size"));
    out += buf;
  }
}

std::string render(const std::string& exposition) {
  const std::vector<Sample> samples = parse_exposition(exposition);
  const std::map<std::string, double> g = flat_gauges(samples);
  std::string out;
  char buf[256];

  std::snprintf(buf, sizeof(buf),
                "ihtl_top — requests=%.0f epoch=%.0f connections=%.0f "
                "threads=%.0f shards=%.0f imbalance=%.2f\n",
                get_or(g, "ihtl_serve_requests_accepted"),
                get_or(g, "ihtl_serve_epoch"),
                get_or(g, "ihtl_serve_connections"),
                get_or(g, "ihtl_serve_threads"),
                get_or(g, "ihtl_serve_shards"),
                get_or(g, "ihtl_serve_shard_imbalance", 1.0));
  out += buf;

  out += "\nper-op phase latency, p50/p99 us:\n";
  render_op_table(out, g);

  std::snprintf(buf, sizeof(buf),
                "\ncache: hit_rate=%.2f hits=%.0f misses=%.0f entries=%.0f "
                "evictions=%.0f bytes=%.0f\n",
                get_or(g, "ihtl_serve_cache_hit_rate"),
                get_or(g, "ihtl_serve_cache_hits"),
                get_or(g, "ihtl_serve_cache_misses"),
                get_or(g, "ihtl_serve_cache_entries"),
                get_or(g, "ihtl_serve_cache_evictions"),
                get_or(g, "ihtl_serve_cache_bytes"));
  out += buf;

  std::snprintf(buf, sizeof(buf),
                "batch: flushes=%.0f full=%.0f deadline=%.0f dropped=%.0f "
                "lanes=%.0f\n",
                get_or(g, "ihtl_serve_batch_flushes"),
                get_or(g, "ihtl_serve_batch_full_flushes"),
                get_or(g, "ihtl_serve_batch_deadline_flushes"),
                get_or(g, "ihtl_serve_batch_dropped"),
                get_or(g, "ihtl_serve_batch_lanes_flushed"));
  out += buf;

  std::snprintf(buf, sizeof(buf),
                "watchdog: deadline_misses=%.0f saturation=%.0f "
                "hitrate_collapses=%.0f imbalance_alerts=%.0f "
                "window_hit_rate=%.2f\n",
                get_or(g, "ihtl_serve_watchdog_deadline_misses"),
                get_or(g, "ihtl_serve_watchdog_saturation_events"),
                get_or(g, "ihtl_serve_watchdog_hitrate_collapses"),
                get_or(g, "ihtl_serve_watchdog_imbalance_alerts"),
                get_or(g, "ihtl_serve_watchdog_window_hit_rate", 1.0));
  out += buf;

  if (g.count("ihtl_sharded_shard0_edges") != 0) {
    out += "\nshards:\n";
    render_shards(out, g);
  }

  std::snprintf(buf, sizeof(buf),
                "\neventlog: recorded=%.0f dropped=%.0f\n",
                get_or(g, "ihtl_serve_eventlog_recorded"),
                get_or(g, "ihtl_serve_eventlog_dropped"));
  out += buf;
  return out;
}

}  // namespace

int cmd_top(int argc, const char* const* argv) {
  ArgParser args;
  args.add_flag("host", true, "server host (default 127.0.0.1)");
  args.add_flag("port", true, "server port (required unless --port-file)");
  args.add_flag("port-file", true, "read the port from this file");
  args.add_flag("interval-ms", true,
                "delay between metric polls (default 1000)");
  args.add_flag("iterations", true,
                "stop after N polls (default 0 = until the server goes "
                "away or ctrl-c)");
  args.add_flag("once", false,
                "poll exactly once, print, and exit (implies --no-clear)");
  args.add_flag("raw", false,
                "print the raw Prometheus exposition instead of the "
                "rendered view");
  args.add_flag("no-clear", false,
                "do not clear the terminal between refreshes");
  args.add_flag("help", false, "show usage");
  try {
    args.parse(argc, argv);
    if (args.has("help")) return usage("ihtl_top", args);
    const std::string host = args.get_string("host", "127.0.0.1");
    std::uint16_t port = static_cast<std::uint16_t>(args.get_int("port", 0));
    const std::string port_file = args.get_string("port-file");
    if (port == 0 && !port_file.empty()) {
      std::ifstream pf(port_file);
      unsigned p = 0;
      if (!(pf >> p) || p == 0 || p > 65535) {
        throw std::runtime_error("cannot read a port from " + port_file);
      }
      port = static_cast<std::uint16_t>(p);
    }
    if (port == 0) throw std::invalid_argument("need --port or --port-file");
    const std::int64_t interval_ms =
        std::max<std::int64_t>(1, args.get_int("interval-ms", 1000));
    std::int64_t iterations = args.get_int("iterations", 0);
    const bool once = args.has("once");
    if (once) iterations = 1;
    const bool clear = !once && !args.has("no-clear");

    serve::Client client;
    client.connect(host, port);
    JsonValue req = JsonValue::object();
    req.set("op", "metrics");

    for (std::int64_t poll = 0; iterations == 0 || poll < iterations;
         ++poll) {
      if (poll > 0) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(interval_ms));
      }
      const JsonValue resp = client.roundtrip(req);
      const JsonValue* ok = resp.find("ok");
      const JsonValue* text = resp.find("metrics");
      if (ok == nullptr || !ok->as_bool() || text == nullptr) {
        std::fprintf(stderr, "ihtl_top: bad metrics response: %s\n",
                     resp.dump(0).c_str());
        return 1;
      }
      // \x1b[H\x1b[2J: cursor home + clear, so each refresh repaints in
      // place instead of scrolling the terminal.
      if (clear) std::fputs("\x1b[H\x1b[2J", stdout);
      if (args.has("raw")) {
        std::fputs(text->as_string().c_str(), stdout);
      } else {
        std::fputs(render(text->as_string()).c_str(), stdout);
      }
      std::fflush(stdout);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ihtl_top: %s\n", e.what());
    return 1;
  }
}

}  // namespace ihtl
