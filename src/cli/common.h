// Shared plumbing of the cmd_* implementations: input-graph loading,
// common flags, and the output-file / trace guards. Internal to src/cli —
// the public surface is commands.h.
#pragma once

#include <fstream>
#include <memory>
#include <string>

#include "cli/args.h"
#include "core/ihtl_config.h"
#include "graph/graph.h"
#include "telemetry/trace.h"

namespace ihtl {

/// Loads a graph from --graph (binary container or edge-list text) or
/// generates one from --gen/--gen-scale (--dataset is a --gen alias).
Graph load_input_graph(const ArgParser& args);

/// --buffer-bytes / --admission-ratio / --push-policy → IhtlConfig.
IhtlConfig config_from_args(const ArgParser& args);

/// Registers the input flags shared by every graph-consuming tool.
void add_common_input_flags(ArgParser& args);

/// Prints usage for `tool` and returns exit code 0.
int usage(const char* tool, const ArgParser& args);

/// Basename of argv[0], so a multi-named binary (ihtl_convert / ihtl_build)
/// prints the name it was invoked under; falls back for empty argv.
std::string invoked_as(int argc, const char* const* argv,
                       const char* fallback);

/// Validates a JSON output path up front: a long run must not discover an
/// unwritable output directory after the work is done. The guard removes
/// the pre-opened file again if the run fails for any reason (including
/// exceptions), so failures leave no empty report behind.
struct OutputFileGuard {
  std::ofstream file;
  std::string path;
  bool keep = false;
  /// Returns false (after printing an error) when the path is unwritable.
  bool open(const ArgParser& args, const char* flag, const char* tool);
  ~OutputFileGuard();
};

/// Installs a TraceBuffer as the process-wide active buffer for the guard's
/// lifetime and writes the Chrome trace JSON on demand. Uninstalls before
/// the buffer is destroyed (producers must never see a dangling pointer).
struct TraceGuard {
  std::unique_ptr<telemetry::TraceBuffer> buffer;
  std::string path;
  void install(const std::string& out_path, std::size_t rings);
  void uninstall();
  ~TraceGuard();
  /// Uninstalls and writes the trace; returns a process exit code.
  int write(const char* tool);
};

}  // namespace ihtl
