// Implementations of the ihtl command-line tools, exposed as functions so
// the test suite can drive them directly; the binaries under tools/ are
// thin main() wrappers.
//
//   ihtl_convert — edge list / binary graph -> binary graph or iHTL graph
//   ihtl_info    — structural report: stats, skew, hub-selection preview
//   ihtl_run     — run an analytic (pagerank / cc / sssp / bfs / hits /
//                  triangles) with a chosen kernel and print results
//   ihtl_profile — per-phase hardware-counter profile of the iHTL SpMV
//                  against the pull baseline (the paper's Table 3)
//   ihtl_serve   — long-lived query daemon: load a graph once, serve
//                  ppr / multi-source bfs / spmv over TCP with
//                  micro-batching and a result cache
//   ihtl_query   — client for ihtl_serve: single queries or a seeded
//                  concurrent mixed workload
//   ihtl_top     — live operational view of a running ihtl_serve: polls
//                  the `metrics` op and renders per-op phase latencies,
//                  cache/batcher state, watchdog trips, per-shard load
//   bench_diff   — diff two telemetry JSON snapshots, flag regressions
#pragma once

namespace ihtl {

/// Each returns a process exit code (0 = success) and reports errors on
/// stderr. Pass standard (argc, argv).
int cmd_convert(int argc, const char* const* argv);
int cmd_info(int argc, const char* const* argv);
int cmd_run(int argc, const char* const* argv);
int cmd_profile(int argc, const char* const* argv);
int cmd_serve(int argc, const char* const* argv);
int cmd_query(int argc, const char* const* argv);
int cmd_top(int argc, const char* const* argv);
int cmd_bench_diff(int argc, const char* const* argv);

}  // namespace ihtl
