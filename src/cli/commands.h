// Implementations of the ihtl command-line tools, exposed as functions so
// the test suite can drive them directly; the binaries under tools/ are
// thin main() wrappers.
//
//   ihtl_convert — edge list / binary graph -> binary graph or iHTL graph
//   ihtl_info    — structural report: stats, skew, hub-selection preview
//   ihtl_run     — run an analytic (pagerank / cc / sssp / bfs / hits /
//                  triangles) with a chosen kernel and print results
//   ihtl_profile — per-phase hardware-counter profile of the iHTL SpMV
//                  against the pull baseline (the paper's Table 3)
#pragma once

namespace ihtl {

/// Each returns a process exit code (0 = success) and reports errors on
/// stderr. Pass standard (argc, argv).
int cmd_convert(int argc, const char* const* argv);
int cmd_info(int argc, const char* const* argv);
int cmd_run(int argc, const char* const* argv);
int cmd_profile(int argc, const char* const* argv);

}  // namespace ihtl
