// Minimal command-line flag parser for the ihtl tools.
//
// Supports `--key value`, `--key=value`, boolean `--flag`, and positional
// arguments. Unknown flags are an error (typos should not silently change
// an experiment). Values are fetched typed with defaults.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace ihtl {

class ArgParser {
 public:
  /// Declares a flag before parsing. `takes_value` distinguishes
  /// `--key value` from boolean `--flag`.
  void add_flag(const std::string& name, bool takes_value,
                const std::string& help);

  /// Parses argv. Throws std::invalid_argument on unknown/malformed flags.
  void parse(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get_string(const std::string& name,
                         const std::string& default_value = "") const;
  std::int64_t get_int(const std::string& name,
                       std::int64_t default_value = 0) const;
  double get_double(const std::string& name, double default_value = 0) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Formatted flag list for --help output.
  std::string help_text() const;

 private:
  struct Spec {
    bool takes_value = false;
    std::string help;
  };
  std::map<std::string, Spec> specs_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace ihtl
