// Differential oracle: runs a workload through an independent serial
// reference engine and through the iHTL engine, and reports the first
// divergence with its structural classification — the divergent vertex, its
// class under the iHTL relabeling (hub / VWEH / FV), the flipped block that
// owns it (for hubs), and the first divergent iteration.
//
// iHTL's claim is that flipped-push + merge + pull is equivalent to plain
// pull SpMV; this oracle is the machine-checkable form of that claim, over
// every workload the repo implements. The diff runner (diff_runner.h) drives
// it across a seeded configuration lattice; tests drive it directly and can
// substitute a deliberately broken engine to exercise the reporter.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>

#include "core/ihtl_config.h"
#include "core/ihtl_graph.h"
#include "core/ihtl_spmv.h"
#include "graph/graph.h"
#include "parallel/thread_pool.h"
#include "telemetry/trace.h"

namespace ihtl::check {

/// Workloads the oracle can differentiate. The three spmv_* entries exercise
/// the raw engine under each semiring; the rest are full analytics whose
/// iHTL path must match an independent serial implementation.
enum class Workload {
  spmv_plus,
  spmv_min,
  spmv_max,
  pagerank,
  pagerank_delta,
  hits,
  bfs,
  kcore,
};
inline constexpr int kNumWorkloads = 8;

std::string workload_name(Workload w);
std::optional<Workload> workload_from_name(const std::string& name);

/// Vertex class under the iHTL relabeling (none = no iHTL graph involved in
/// the divergent engine, e.g. the kcore peeler).
enum class VertexClass { hub, vweh, fv, none };
std::string vertex_class_name(VertexClass c);

/// Classifies a NEW (relabeled) vertex ID; for hubs, *block_out receives the
/// owning flipped-block index (otherwise -1).
VertexClass classify_vertex(const IhtlGraph& ig, vid_t new_id, int* block_out);

/// The first divergent vertex of a failed comparison.
struct Mismatch {
  vid_t vertex_old = 0;  ///< original-ID-space vertex
  vid_t vertex_new = 0;  ///< relabeled ID (== vertex_old when cls == none)
  VertexClass cls = VertexClass::none;
  int block = -1;        ///< owning flipped block for hubs, else -1
  int lane = -1;         ///< batch lane for batched workloads, else -1
  unsigned iteration = 0;  ///< first divergent iteration (0-based)
  value_t expected = 0;
  value_t actual = 0;
};

struct OracleReport {
  Workload workload = Workload::spmv_plus;
  bool ok = true;
  /// "value" = outputs diverged; "structure" = IhtlGraph::valid() failed
  /// (edge partition / permutation broken before any traversal ran).
  std::string kind = "value";
  /// Which engine under test diverged ("ihtl", "ihtl-min-spmv",
  /// "frontier-bfs", "kcore", ...).
  std::string engine = "ihtl";
  std::optional<Mismatch> first;
  vid_t num_divergent = 0;  ///< divergent vertices at the first bad iteration
  /// Bin-drop faults the engine under test actually applied (see
  /// OracleOptions::inject_bin_drop); 0 when the hook was not armed or the
  /// sparse block never resolved to the binned path.
  std::uint64_t bin_drops_applied = 0;
  std::string summary() const;  ///< one line: "OK" or the classification
};

/// An SpMV engine under test: y = combine over in-neighbours of x, in the
/// NEW (relabeled) ID space — the signature of IhtlEngine::spmv.
using SpmvFn =
    std::function<void(std::span<const value_t>, std::span<value_t>)>;

/// Test hook: replaces the plus-monoid engine under test. Receives the real
/// engine (to delegate to) and its graph; returns the spmv to use instead.
/// Applied by the spmv_plus and pagerank workloads only.
using EngineOverride =
    std::function<SpmvFn(IhtlEngine<PlusMonoid>&, const IhtlGraph&)>;

/// A deliberately broken engine: delegates to the real engine, then drops
/// the merge of the LAST flipped block (its hubs read back as identity, as
/// if the per-thread buffers for that block were never aggregated). Used by
/// tests and `ihtl_check --inject-fault` to prove the oracle detects,
/// replays, and minimizes real fault shapes.
EngineOverride drop_merge_fault();

/// Fault injection for the tracing pipeline: while alive, installs a tiny
/// (one ring, minimal capacity) TraceBuffer in drop-all mode as the
/// process-wide active buffer, so every trace producer runs its degraded
/// path — events are counted and discarded, as on a severe overflow. The
/// oracle and the report pipeline must reach identical verdicts with it
/// installed; tests and `ihtl_check --inject-trace-drop` verify that.
/// Restores the previously active buffer on destruction.
class TraceDropFault {
 public:
  TraceDropFault();
  ~TraceDropFault();

  TraceDropFault(const TraceDropFault&) = delete;
  TraceDropFault& operator=(const TraceDropFault&) = delete;

  /// Events producers attempted to record (all force-dropped).
  std::uint64_t dropped() const { return buffer_->dropped(); }

 private:
  std::unique_ptr<telemetry::TraceBuffer> buffer_;
  telemetry::TraceBuffer* previous_;
};

struct OracleOptions {
  Workload workload = Workload::spmv_plus;
  unsigned iterations = 3;   ///< iterations for iterative workloads
  vid_t source = 0;          ///< BFS source (taken modulo |V|)
  std::uint64_t x_seed = 1;  ///< seed of the SpMV input vector
  double tolerance = 1e-9;   ///< relative tolerance for float workloads
  /// Lanes for the SpMV-shaped workloads (spmv_plus/min/max): batch > 1
  /// runs the engine's spmv_batch over `batch` independently seeded input
  /// vectors against the serial batched pull, comparing every lane. Other
  /// workloads (and fault-injected runs, whose override hook is scalar)
  /// ignore it.
  std::size_t batch = 1;
  /// Shard axis: 0 runs the unsharded IhtlEngine (the historical path);
  /// >= 1 runs the engine-level workloads (spmv_plus/min/max, pagerank,
  /// batched or scalar) through a ShardedEngine with this many shards.
  /// S=1 must be bitwise-identical to the unsharded engine. Workloads that
  /// never construct the raw engine (hits, bfs, kcore, pagerank_delta)
  /// ignore it, as do fault-injected runs (the override hook is
  /// IhtlEngine-shaped).
  std::size_t shards = 0;
  /// Shard fault injection: corrupt this shard's exchange slice every
  /// iteration (requires shards >= 1; -1 = off). The oracle must report a
  /// divergence whenever the corruption was actually applied.
  int corrupt_exchange_shard = -1;
  /// Binned-path fault injection: arm the engine under test's bin-drop hook
  /// (one staged cache line of scattered contributions reads back as the
  /// identity after every scatter). Arms nothing when the sparse block did
  /// not resolve to the binned path; the report's bin_drops_applied says
  /// how many drops actually landed. Under spmv_plus (positive inputs) an
  /// applied drop must surface as a divergence — run_point enforces that.
  bool inject_bin_drop = false;
  EngineOverride plus_engine_override;  ///< test-only fault injection
  /// When set, the iHTL-traversing workloads run over THIS layout instead
  /// of building one from (g, cfg) — the mutation lattice passes the
  /// incrementally patched IhtlGraph here, so a value divergence indicts
  /// the patch, not the builder. The structural pre-check (valid(g)) still
  /// runs against it. Must describe exactly `g`; not owned.
  const IhtlGraph* prebuilt_ihtl = nullptr;
};

/// Runs `opt.workload` on `g` through the serial reference and the iHTL
/// engine built from `cfg`, comparing per iteration.
OracleReport run_oracle(ThreadPool& pool, const Graph& g,
                        const IhtlConfig& cfg, const OracleOptions& opt = {});

}  // namespace ihtl::check
