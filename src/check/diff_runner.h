// Generative differential runner: walks a seeded configuration lattice
// (generator family x build options x hub-selection policy x flipped-block
// budget x thread count x workload) and executes the oracle at every point.
// Any point is exactly reproducible from its 64-bit seed (`ihtl_check
// --replay <seed>`), and a failing point can be greedily minimized to a
// small self-contained repro snippet.
//
// SEED-STABILITY CONTRACT: every lattice parameter is drawn centrally in
// CaseParams::draw, which draws EVERY field exactly once in a frozen order
// regardless of which family/workload ends up using it. Adding a parameter
// means appending a draw at the end — never inserting one — so existing
// replay seeds keep meaning across refactors. (The old fuzz tier drew
// parameters inline with family-dependent order; editing it silently
// re-keyed every seed.)
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "check/oracle.h"
#include "graph/graph.h"

namespace ihtl::check {

enum class GenFamily {
  rmat,           ///< social-network stand-in (skewed, reciprocal hubs)
  web,            ///< web-crawl stand-in (asymmetric in-hubs)
  erdos_renyi,    ///< uniform negative control
  ring,           ///< single cycle: diameter n, one in-edge per vertex
  star,           ///< all edges into vertex 0: one mega-hub
  empty_edges,    ///< vertices but no edges
  single_vertex,  ///< the 1-vertex graph
};
inline constexpr int kNumFamilies = 7;
std::string family_name(GenFamily f);

/// Hub-selection extremes of the lattice. `all_hub` forces every vertex
/// with an in-edge into a flipped block; `zero_hub` disables hub selection
/// entirely (pure sparse pull).
enum class HubPolicy { standard, all_hub, zero_hub };
std::string hub_policy_name(HubPolicy p);

/// Every parameter of one differential point, with explicit fields.
struct CaseParams {
  // -- identity ------------------------------------------------------------
  std::uint64_t seed = 0;  ///< the point's replay key
  // -- graph ---------------------------------------------------------------
  GenFamily family = GenFamily::rmat;
  vid_t num_vertices = 0;       ///< arbitrary (non-power-of-two) counts
  unsigned edge_factor = 0;     ///< rmat
  double reciprocity = 0.0;     ///< rmat
  unsigned avg_out_degree = 0;  ///< web
  double hub_fraction = 0.0;    ///< web
  double hub_edge_share = 0.0;  ///< web
  eid_t num_edges = 0;          ///< erdos_renyi
  std::uint64_t graph_seed = 0;
  BuildOptions build;
  // -- iHTL configuration lattice ------------------------------------------
  std::size_t buffer_values = 0;  ///< hubs per flipped block
  double admission_ratio = 0.5;
  eid_t min_hub_in_degree = 2;
  bool separate_fringe = true;
  HubPolicy hub_policy = HubPolicy::standard;
  /// Engine push/merge policy axis (drawn LAST — appended after x_seed per
  /// the seed-stability contract, so pre-existing replay seeds still decode
  /// to the same graph/workload and simply gain a policy).
  PushPolicy push_policy = PushPolicy::automatic;
  // -- execution -----------------------------------------------------------
  unsigned threads = 1;
  Workload workload = Workload::spmv_plus;
  unsigned iterations = 3;
  vid_t source = 0;  ///< BFS source (modulo |V| at use)
  std::uint64_t x_seed = 1;
  /// Batch axis (appended after push_policy per the seed-stability
  /// contract): lanes for the SpMV-shaped workloads; others ignore it.
  std::size_t batch = 1;

  /// Draws a full point from `seed`. See the seed-stability contract above.
  static CaseParams draw(std::uint64_t seed);

  /// The IhtlConfig for this point, with the hub policy folded in.
  IhtlConfig ihtl_config() const;
  /// The oracle options for this point (without any engine override).
  OracleOptions oracle_options() const;
  /// One-line human description for logs and failure reports.
  std::string describe() const;
};

/// Seed of lattice point `index` under `base_seed` (splitmix-decorrelated,
/// so neighbouring indices share no RNG structure).
std::uint64_t point_seed(std::uint64_t base_seed, std::size_t index);

/// The raw generated edge list of a point (before BuildOptions are applied);
/// the minimizer shrinks exactly this list.
std::vector<Edge> make_case_edges(const CaseParams& p);
/// Builds the point's graph: build_graph(num_vertices, edges, build).
Graph make_case_graph(const CaseParams& p);

struct CaseResult {
  CaseParams params;  ///< effective parameters (after any forces)
  OracleReport report;
};

struct DiffOptions {
  std::uint64_t base_seed = 2026;
  std::size_t points = 64;
  unsigned force_threads = 0;  ///< > 0 overrides CaseParams::threads
  std::optional<Workload> force_workload;
  std::optional<PushPolicy> force_push_policy;
  std::optional<std::size_t> force_batch;  ///< overrides CaseParams::batch
  /// Shard axis: set = run the engine-level workloads through a
  /// ShardedEngine with this many shards (see OracleOptions::shards).
  /// Not drawn by CaseParams — the shard lattice (shard_check.h) sweeps it
  /// explicitly per point, so replay seeds keep their historical meaning.
  std::optional<std::size_t> force_shards;
  EngineOverride engine_override;  ///< fault injection (tests / --inject-fault)
  /// Arm the binned sparse path's bin-drop fault on every point (tests /
  /// --inject-bin-drop). Points whose sparse block resolved binned must
  /// report a divergence under spmv_plus; run_point flips a clean report
  /// with applied drops to a "fault-missed" failure.
  bool inject_bin_drop = false;
  bool verbose = false;
  std::ostream* out = nullptr;  ///< progress stream (nullptr = silent)
};

/// Runs one lattice point. Telemetry: increments check/points_run, and
/// check/mismatches on failure.
CaseResult run_point(std::uint64_t seed, const DiffOptions& opt = {});

/// Walks `opt.points` lattice points; returns the first failing case, or
/// nullopt if every point passed.
std::optional<CaseResult> run_lattice(const DiffOptions& opt);

/// A failing case shrunk by the greedy minimizer.
struct MinimizedCase {
  bool reproduced = false;  ///< regenerated inputs reproduced the failure
  bool injected_fault = false;  ///< an engine override was active (self-test)
  bool injected_bin_drop = false;  ///< the bin-drop fault was armed (self-test)
  vid_t num_vertices = 0;
  std::vector<Edge> edges;  ///< input to build_graph (params.build applies)
  CaseParams params;
  OracleReport report;    ///< report on the minimized graph
  std::size_t steps = 0;  ///< oracle evaluations spent minimizing
};

/// Greedy delta-debugging minimizer: removes edge chunks (halving the chunk
/// size down to single edges) while the oracle still fails, then truncates
/// and compacts the vertex ID space. Telemetry: each oracle evaluation
/// increments check/minimize_steps.
MinimizedCase minimize_case(const CaseResult& failure,
                            const DiffOptions& opt = {});

/// A self-contained compilable C++ repro of a minimized case.
std::string repro_snippet(const MinimizedCase& m);

}  // namespace ihtl::check
