#include "check/update_check.h"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_set>
#include <utility>
#include <vector>

#include "check/oracle.h"
#include "core/ihtl_graph.h"
#include "core/ihtl_update.h"
#include "gen/datasets.h"
#include "graph/graph.h"
#include "parallel/thread_pool.h"

namespace ihtl::check {

namespace {

std::uint64_t splitmix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

struct Draw {
  std::uint64_t state;
  std::uint64_t next() { return state = splitmix64(state); }
  std::uint64_t next(std::uint64_t bound) { return next() % bound; }
};

/// Seeded mutation batch over the CURRENT graph. Inserts are uniform pairs
/// (duplicates drawn deliberately, self-loops arise naturally); removes are
/// DISTINCT indices into to_edge_list(g) — each index names a distinct edge
/// instance, so the batch is always multiplicity-valid even on rows the
/// previous batches made repetitive.
UpdateBatch make_batch(Draw d, const Graph& g) {
  UpdateBatch b;
  const vid_t n = g.num_vertices();
  if (n == 0) return b;
  const std::uint64_t inserts = d.next(12);
  for (std::uint64_t i = 0; i < inserts; ++i) {
    const Edge e{static_cast<vid_t>(d.next(n)),
                 static_cast<vid_t>(d.next(n))};
    b.insert.push_back(e);
    if (d.next(4) == 0) b.insert.push_back(e);  // duplicate instance
  }
  if (d.next(4) == 0) {
    const vid_t v = static_cast<vid_t>(d.next(n));
    b.insert.push_back({v, v});  // explicit self-loop
  }
  const std::vector<Edge> edges = to_edge_list(g);
  if (!edges.empty()) {
    const std::uint64_t removes = d.next(8);
    std::unordered_set<std::size_t> used;
    for (std::uint64_t i = 0; i < removes; ++i) {
      const std::size_t idx = d.next(edges.size());
      if (!used.insert(idx).second) continue;
      b.remove.push_back(edges[idx]);
    }
  }
  return b;
}

bool has_edge(const Graph& g, vid_t src, vid_t dst) {
  for (const vid_t t : g.out().neighbors(src)) {
    if (t == dst) return true;
  }
  return false;
}

/// Runs one lattice point; returns the failure description or "".
std::string run_point(const UpdatePointParams& p,
                      const UpdateCheckOptions& opt, UpdateCheckResult& res) {
  IhtlConfig cfg;
  cfg.buffer_bytes = p.buffer_values * sizeof(value_t);
  cfg.min_hub_in_degree = p.min_hub_in_degree;
  UpdateConfig ucfg;
  ucfg.rebuild_threshold =
      opt.force_threshold ? *opt.force_threshold : p.threshold;
  const bool forced_rebuild = ucfg.rebuild_threshold < 0.0;

  Graph g = make_dataset(p.dataset, DatasetScale::tiny);
  IhtlGraph ig = build_ihtl_graph(g, cfg);
  if (!ig.valid(g)) return "seed layout invalid before any batch";
  ThreadPool pool(p.threads);

  // Empty batch: a no-op that must come back structurally intact and
  // flagged as neither rebuilt nor drifted.
  {
    UpdateStats st;
    const IhtlGraph same =
        update_ihtl_graph(ig, g, g, UpdateBatch{}, cfg, ucfg, &st);
    if (st.rebuilt || st.drift != 0.0) {
      return "empty batch reported rebuilt=" + std::to_string(st.rebuilt) +
             " drift=" + std::to_string(st.drift);
    }
    if (!same.valid(g)) return "empty batch broke the layout";
  }

  const unsigned batches = std::min(p.batches, opt.max_batches);
  for (unsigned b = 0; b < batches; ++b) {
    Draw bd{splitmix64(p.seed ^ (b + 1))};
    const UpdateBatch batch = make_batch(bd, g);
    const std::string where = "batch " + std::to_string(b) + " (" +
                              std::to_string(batch.insert.size()) + " ins/" +
                              std::to_string(batch.remove.size()) + " rm)";

    Graph g_next = apply_update(g, batch);
    UpdateStats st;
    IhtlGraph ig_next =
        update_ihtl_graph(ig, g, g_next, batch, cfg, ucfg, &st);
    ++res.batches_checked;
    if (st.rebuilt) {
      ++res.rebuilds;
    } else {
      ++res.incremental;
    }

    // (1) structure: the patched layout AND the from-scratch layout must
    // both reconstruct g_next's edge multiset — same graph semantics.
    if (!ig_next.valid(g_next)) {
      return where + ": patched layout fails valid(g_next) [rebuilt=" +
             std::to_string(st.rebuilt) + "]";
    }
    const IhtlGraph rebuilt = build_ihtl_graph(g_next, cfg);
    if (!rebuilt.valid(g_next)) {
      return where + ": from-scratch oracle layout fails valid(g_next)";
    }
    if (ig_next.num_edges() != rebuilt.num_edges() ||
        ig_next.num_vertices() != rebuilt.num_vertices()) {
      return where + ": patched/oracle size mismatch";
    }

    // (3) policy: the forced-rebuild baseline must never patch.
    if (forced_rebuild && !batch.empty() && !st.rebuilt) {
      return where + ": negative threshold did not force a rebuild";
    }

    // (2) values: drive the iHTL engine THROUGH the patched layout against
    // the serial reference on g_next.
    OracleOptions oopt;
    oopt.prebuilt_ihtl = &ig_next;
    oopt.workload = Workload::spmv_plus;
    oopt.x_seed = splitmix64(p.seed ^ (0xABCDu + b));
    oopt.iterations = 3;
    OracleReport rep = run_oracle(pool, g_next, cfg, oopt);
    ++res.oracle_runs;
    if (!rep.ok) {
      return where + " [spmv_plus over patched layout]: " + rep.summary();
    }
    static const Workload kExtra[] = {Workload::spmv_min, Workload::spmv_max,
                                      Workload::pagerank, Workload::bfs};
    oopt.workload = kExtra[bd.next(4)];
    oopt.source = static_cast<vid_t>(bd.next(g_next.num_vertices()));
    rep = run_oracle(pool, g_next, cfg, oopt);
    ++res.oracle_runs;
    if (!rep.ok) {
      return where + " [" + workload_name(oopt.workload) +
             " over patched layout]: " + rep.summary();
    }

    g = std::move(g_next);
    ig = std::move(ig_next);
  }

  // Fault injection: a poisoned batch must throw std::invalid_argument and
  // leave the replayed state untouched.
  if (p.poison) {
    Draw pd{splitmix64(p.seed ^ 0xF00Du)};
    UpdateBatch bad;
    bool built = false;
    if (p.poison_kind == 0) {
      for (int attempt = 0; attempt < 64 && !built; ++attempt) {
        const vid_t u = static_cast<vid_t>(pd.next(g.num_vertices()));
        const vid_t v = static_cast<vid_t>(pd.next(g.num_vertices()));
        if (!has_edge(g, u, v)) {
          bad.remove.push_back({u, v});
          built = true;
        }
      }
    }
    if (!built) {
      bad = UpdateBatch{};
      bad.insert.push_back({g.num_vertices(), 0});  // endpoint >= n
      built = true;
    }
    bool threw = false;
    try {
      (void)apply_update(g, bad);
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    if (!threw) return "poisoned batch was accepted";
    ++res.faults_injected;
    if (!ig.valid(g)) return "state mutated by a rejected batch";
  }
  return "";
}

}  // namespace

UpdatePointParams UpdatePointParams::draw(std::uint64_t seed) {
  Draw d{seed};
  UpdatePointParams p;
  p.seed = seed;
  // APPEND-ONLY draw order — golden-pinned by SeedStability tests.
  static const char* kDatasets[] = {"TwtrMpi", "Frndstr", "SK", "UU"};
  p.dataset = kDatasets[d.next(4)];
  // Small blocks force multi-block layouts even on tiny datasets, so the
  // patch path's block routing gets exercised, not just block 0.
  static const std::size_t kBufferValues[] = {64, 256, 1024, 4096};
  p.buffer_values = kBufferValues[d.next(4)];
  p.min_hub_in_degree = 2 + d.next(2);
  static const unsigned kThreads[] = {1, 2, 4};
  p.threads = kThreads[d.next(3)];
  p.threshold_mode = static_cast<int>(d.next(4));
  const double drawn = static_cast<double>(d.next(1000)) / 2000.0;  // [0,0.5)
  switch (p.threshold_mode) {
    case 2: p.threshold = -1.0; p.threshold_mode = 1; break;
    case 3: p.threshold = 1e9; p.threshold_mode = 2; break;
    default: p.threshold = drawn; p.threshold_mode = 0; break;
  }
  p.batches = 1 + static_cast<unsigned>(d.next(4));
  p.poison = d.next(4) == 0;
  p.poison_kind = static_cast<int>(d.next(2));
  return p;
}

std::string UpdatePointParams::describe() const {
  std::ostringstream s;
  s << "dataset=" << dataset << " buffer_values=" << buffer_values
    << " min_hub_deg=" << min_hub_in_degree << " threads=" << threads
    << " threshold=" << threshold << " batches=" << batches
    << " poison=" << (poison ? (poison_kind == 0 ? "rm-missing" : "oob")
                             : "no");
  return s.str();
}

UpdateCheckResult run_update_lattice(const UpdateCheckOptions& opt) {
  UpdateCheckResult result;
  for (std::size_t i = 0; i < opt.points; ++i) {
    const std::uint64_t point_seed = splitmix64(opt.base_seed + i);
    const UpdatePointParams p = UpdatePointParams::draw(point_seed);
    if (opt.verbose && opt.out) {
      (*opt.out) << "update point " << i << " (seed " << point_seed
                 << "): " << p.describe() << "\n";
    }
    const std::string failure = run_point(p, opt, result);
    ++result.points_run;
    if (!failure.empty()) {
      result.ok = false;
      std::ostringstream s;
      s << "update point " << i << " (seed " << point_seed << ", "
        << p.describe() << "): " << failure;
      result.failure = s.str();
      return result;
    }
  }
  return result;
}

}  // namespace ihtl::check
