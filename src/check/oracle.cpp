#include "check/oracle.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <deque>
#include <type_traits>
#include <vector>

#include "apps/analytics.h"
#include "apps/bfs.h"
#include "apps/hits.h"
#include "apps/kcore.h"
#include "apps/pagerank_delta.h"
#include "baselines/spmv.h"
#include "core/sharded_engine.h"
#include "gen/rng.h"

namespace ihtl::check {

std::string workload_name(Workload w) {
  switch (w) {
    case Workload::spmv_plus:
      return "spmv-plus";
    case Workload::spmv_min:
      return "spmv-min";
    case Workload::spmv_max:
      return "spmv-max";
    case Workload::pagerank:
      return "pagerank";
    case Workload::pagerank_delta:
      return "pagerank-delta";
    case Workload::hits:
      return "hits";
    case Workload::bfs:
      return "bfs";
    case Workload::kcore:
      return "kcore";
  }
  return "unknown";
}

std::optional<Workload> workload_from_name(const std::string& name) {
  for (int i = 0; i < kNumWorkloads; ++i) {
    const auto w = static_cast<Workload>(i);
    if (workload_name(w) == name) return w;
  }
  return std::nullopt;
}

std::string vertex_class_name(VertexClass c) {
  switch (c) {
    case VertexClass::hub:
      return "hub";
    case VertexClass::vweh:
      return "vweh";
    case VertexClass::fv:
      return "fv";
    case VertexClass::none:
      return "none";
  }
  return "unknown";
}

VertexClass classify_vertex(const IhtlGraph& ig, vid_t new_id,
                            int* block_out) {
  if (block_out) *block_out = -1;
  if (new_id < ig.num_hubs()) {
    if (block_out) {
      for (std::size_t b = 0; b < ig.blocks().size(); ++b) {
        const FlippedBlock& blk = ig.blocks()[b];
        if (new_id >= blk.hub_begin && new_id < blk.hub_end) {
          *block_out = static_cast<int>(b);
          break;
        }
      }
    }
    return VertexClass::hub;
  }
  if (new_id < ig.num_push_sources()) return VertexClass::vweh;
  return VertexClass::fv;
}

std::string OracleReport::summary() const {
  char buf[256];
  if (ok) {
    std::snprintf(buf, sizeof(buf), "OK[%s]", workload_name(workload).c_str());
    return buf;
  }
  if (kind == "structure") {
    std::snprintf(buf, sizeof(buf),
                  "MISMATCH[%s/structure]: IhtlGraph::valid() failed",
                  workload_name(workload).c_str());
    return buf;
  }
  if (kind == "fault-missed") {
    std::snprintf(buf, sizeof(buf),
                  "MISMATCH[%s/fault-missed]: %llu bin drop(s) applied but "
                  "no divergence reported",
                  workload_name(workload).c_str(),
                  static_cast<unsigned long long>(bin_drops_applied));
    return buf;
  }
  const Mismatch& m = *first;
  std::snprintf(buf, sizeof(buf),
                "MISMATCH[%s] engine=%s iteration=%u vertex=%u (new %u, "
                "class %s, block %d): expected %.17g actual %.17g (+%u more)",
                workload_name(workload).c_str(), engine.c_str(), m.iteration,
                m.vertex_old, m.vertex_new, vertex_class_name(m.cls).c_str(),
                m.block, static_cast<double>(m.expected),
                static_cast<double>(m.actual),
                num_divergent ? num_divergent - 1 : 0);
  return buf;
}

EngineOverride drop_merge_fault() {
  return [](IhtlEngine<PlusMonoid>& engine, const IhtlGraph& ig) -> SpmvFn {
    return [&engine, &ig](std::span<const value_t> x, std::span<value_t> y) {
      engine.spmv(x, y);
      if (ig.blocks().empty()) return;
      // The fault: the last flipped block's merge never lands — its hubs
      // read back as if every per-thread buffer held the identity.
      const FlippedBlock& blk = ig.blocks().back();
      for (vid_t h = blk.hub_begin; h < blk.hub_end; ++h) {
        y[h] = PlusMonoid::identity();
      }
    };
  };
}

TraceDropFault::TraceDropFault()
    : buffer_(std::make_unique<telemetry::TraceBuffer>(1, 1)) {
  buffer_->set_drop_all(true);
  previous_ = telemetry::TraceBuffer::set_active(buffer_.get());
}

TraceDropFault::~TraceDropFault() {
  telemetry::TraceBuffer::set_active(previous_);
}

namespace {

bool values_differ(value_t expected, value_t actual, double tol) {
  if (std::isinf(expected) || std::isinf(actual)) return expected != actual;
  return std::abs(expected - actual) > tol * std::max(1.0, std::abs(expected));
}

/// Compares old-ID-space vectors; on divergence fills `rep` (classifying
/// through `ig` when given) and returns true.
bool report_compare(std::span<const value_t> expected,
                    std::span<const value_t> actual, double tol,
                    unsigned iteration, const IhtlGraph* ig,
                    const char* engine, OracleReport& rep) {
  std::optional<Mismatch> first;
  vid_t divergent = 0;
  for (std::size_t v = 0; v < expected.size(); ++v) {
    if (!values_differ(expected[v], actual[v], tol)) continue;
    ++divergent;
    if (!first) {
      Mismatch m;
      m.vertex_old = static_cast<vid_t>(v);
      m.vertex_new = m.vertex_old;
      if (ig) {
        m.vertex_new = ig->old_to_new()[v];
        m.cls = classify_vertex(*ig, m.vertex_new, &m.block);
      }
      m.iteration = iteration;
      m.expected = expected[v];
      m.actual = actual[v];
      first = m;
    }
  }
  if (divergent == 0) return false;
  rep.ok = false;
  rep.kind = "value";
  rep.engine = engine;
  rep.first = first;
  rep.num_divergent = divergent;
  return true;
}

std::vector<value_t> reference_input(vid_t n, std::uint64_t seed) {
  std::vector<value_t> x(n);
  Rng rng(seed);
  for (auto& v : x) v = rng.next_double();
  return x;
}

/// Repeated-SpMV oracle: per iteration, the serial pull on the original
/// graph is the reference; the engine (possibly overridden) runs on the
/// relabeled graph. The reference result feeds both sides' next iteration,
/// so a divergence at iteration i means the engines disagree on IDENTICAL
/// input at that iteration.
template <typename Monoid>
void oracle_spmv(ThreadPool& pool, const Graph& g, const IhtlGraph& ig,
                 const IhtlConfig& cfg, const OracleOptions& opt,
                 OracleReport& rep) {
  const vid_t n = g.num_vertices();
  // Shard axis: shards >= 1 swaps the engine under test for a
  // ShardedEngine; the serial reference side is untouched, so the same
  // tolerance contract indicts the shard partitioning/exchange on any
  // divergence. The override hook stays on the unsharded engine.
  std::optional<IhtlEngine<Monoid>> engine;
  std::optional<ShardedEngine<Monoid>> sharded;
  SpmvFn under_test;
  if (opt.shards >= 1) {
    sharded.emplace(ig, pool, opt.shards, cfg.push_policy);
    if (opt.corrupt_exchange_shard >= 0) {
      sharded->inject_exchange_corruption(
          static_cast<std::size_t>(opt.corrupt_exchange_shard));
    }
    if (opt.inject_bin_drop) sharded->inject_bin_drop();
    under_test = [&s = *sharded](std::span<const value_t> x,
                                 std::span<value_t> y) { s.spmv(x, y); };
  } else {
    engine.emplace(ig, pool, cfg.push_policy);
    if (opt.inject_bin_drop) engine->inject_bin_drop();
    under_test = [&e = *engine](std::span<const value_t> x,
                                std::span<value_t> y) { e.spmv(x, y); };
    if constexpr (std::is_same_v<Monoid, PlusMonoid>) {
      if (opt.plus_engine_override) {
        under_test = opt.plus_engine_override(*engine, ig);
      }
    }
  }
  const auto& o2n = ig.old_to_new();
  std::vector<value_t> x = reference_input(n, opt.x_seed);
  std::vector<value_t> expected(n), xp(n), yp(n), actual(n);
  for (unsigned it = 0; it < opt.iterations; ++it) {
    spmv_pull_serial<Monoid>(g, x, expected);
    for (vid_t v = 0; v < n; ++v) xp[o2n[v]] = x[v];
    under_test(xp, yp);
    for (vid_t v = 0; v < n; ++v) actual[v] = yp[o2n[v]];
    if (report_compare(expected, actual, opt.tolerance, it, &ig, "ihtl",
                       rep)) {
      break;
    }
    // Feed the reference forward; rescale plus results so magnitudes stay
    // O(1) and the relative tolerance keeps meaning across iterations.
    if constexpr (std::is_same_v<Monoid, PlusMonoid>) {
      value_t maxv = 0;
      for (const value_t v : expected) maxv = std::max(maxv, std::abs(v));
      const value_t scale = maxv > 0 ? 1.0 / maxv : 1.0;
      for (vid_t v = 0; v < n; ++v) x[v] = expected[v] * scale;
    } else {
      x = expected;
    }
  }
  rep.bin_drops_applied =
      sharded ? sharded->bin_drops_applied() : engine->bin_drops_applied();
}

/// Batched repeated-SpMV oracle: `opt.batch` independently seeded input
/// vectors run through the engine's spmv_batch in one traversal per
/// iteration, against the serial batched pull. Every lane is compared; a
/// divergence is attributed to its lane so a replay can drop to that lane's
/// scalar case.
template <typename Monoid>
void oracle_spmv_batch(ThreadPool& pool, const Graph& g, const IhtlGraph& ig,
                       const IhtlConfig& cfg, const OracleOptions& opt,
                       OracleReport& rep) {
  const vid_t n = g.num_vertices();
  const std::size_t k = opt.batch;
  std::optional<IhtlEngine<Monoid>> engine;
  std::optional<ShardedEngine<Monoid>> sharded;
  if (opt.shards >= 1) {
    sharded.emplace(ig, pool, opt.shards, cfg.push_policy);
    if (opt.corrupt_exchange_shard >= 0) {
      sharded->inject_exchange_corruption(
          static_cast<std::size_t>(opt.corrupt_exchange_shard));
    }
    if (opt.inject_bin_drop) sharded->inject_bin_drop();
  } else {
    engine.emplace(ig, pool, cfg.push_policy);
    if (opt.inject_bin_drop) engine->inject_bin_drop();
  }
  const auto& o2n = ig.old_to_new();
  // Vertex-major n×k input; lane l is the scalar oracle's input at seed
  // x_seed + l, so lane 0 reproduces the scalar case exactly.
  std::vector<value_t> xb(static_cast<std::size_t>(n) * k);
  for (std::size_t lane = 0; lane < k; ++lane) {
    const auto lane_x = reference_input(n, opt.x_seed + lane);
    for (vid_t v = 0; v < n; ++v) xb[static_cast<std::size_t>(v) * k + lane] = lane_x[v];
  }
  std::vector<value_t> eb(xb.size()), xp(xb.size()), yp(xb.size());
  std::vector<value_t> expected(n), actual(n);
  bool diverged = false;
  for (unsigned it = 0; it < opt.iterations && !diverged; ++it) {
    spmv_pull_serial_batch<Monoid>(g, xb, eb, k);
    for (vid_t v = 0; v < n; ++v) {
      const std::size_t src = static_cast<std::size_t>(v) * k;
      const std::size_t dst = static_cast<std::size_t>(o2n[v]) * k;
      for (std::size_t lane = 0; lane < k; ++lane) xp[dst + lane] = xb[src + lane];
    }
    if (sharded) {
      sharded->spmv_batch(xp, yp, k);
    } else {
      engine->spmv_batch(xp, yp, k);
    }
    for (std::size_t lane = 0; lane < k; ++lane) {
      for (vid_t v = 0; v < n; ++v) {
        expected[v] = eb[static_cast<std::size_t>(v) * k + lane];
        actual[v] = yp[static_cast<std::size_t>(o2n[v]) * k + lane];
      }
      const std::string engine_name =
          "ihtl-batch" + std::to_string(k) + "-lane" + std::to_string(lane);
      if (report_compare(expected, actual, opt.tolerance, it, &ig,
                         engine_name.c_str(), rep)) {
        rep.first->lane = static_cast<int>(lane);
        diverged = true;
        break;
      }
    }
    if (diverged) break;
    // Feed forward per lane, with the plus-monoid rescaling of the scalar
    // oracle applied lane-wise so magnitudes stay O(1) in every lane.
    if constexpr (std::is_same_v<Monoid, PlusMonoid>) {
      for (std::size_t lane = 0; lane < k; ++lane) {
        value_t maxv = 0;
        for (vid_t v = 0; v < n; ++v) {
          maxv = std::max(maxv,
                          std::abs(eb[static_cast<std::size_t>(v) * k + lane]));
        }
        const value_t scale = maxv > 0 ? 1.0 / maxv : 1.0;
        for (vid_t v = 0; v < n; ++v) {
          const std::size_t i = static_cast<std::size_t>(v) * k + lane;
          xb[i] = eb[i] * scale;
        }
      }
    } else {
      xb = eb;
    }
  }
  rep.bin_drops_applied =
      sharded ? sharded->bin_drops_applied() : engine->bin_drops_applied();
}

/// PageRank oracle: the reference is a from-scratch serial power iteration;
/// the engine side replicates the same recurrence in the relabeled space on
/// top of the (possibly overridden) iHTL engine. Compared per iteration.
void oracle_pagerank(ThreadPool& pool, const Graph& g, const IhtlGraph& ig,
                     const IhtlConfig& cfg, const OracleOptions& opt,
                     OracleReport& rep) {
  const vid_t n = g.num_vertices();
  if (n == 0) return;
  const double damping = 0.85;
  const value_t base = (1.0 - damping) / n;

  std::optional<IhtlEngine<PlusMonoid>> engine;
  std::optional<ShardedEngine<PlusMonoid>> sharded;
  SpmvFn under_test;
  if (opt.shards >= 1) {
    sharded.emplace(ig, pool, opt.shards, cfg.push_policy);
    if (opt.corrupt_exchange_shard >= 0) {
      sharded->inject_exchange_corruption(
          static_cast<std::size_t>(opt.corrupt_exchange_shard));
    }
    if (opt.inject_bin_drop) sharded->inject_bin_drop();
    under_test = [&s = *sharded](std::span<const value_t> x,
                                 std::span<value_t> y) { s.spmv(x, y); };
  } else {
    engine.emplace(ig, pool, cfg.push_policy);
    if (opt.inject_bin_drop) engine->inject_bin_drop();
    under_test = [&e = *engine](std::span<const value_t> x,
                                std::span<value_t> y) { e.spmv(x, y); };
    if (opt.plus_engine_override) {
      under_test = opt.plus_engine_override(*engine, ig);
    }
  }
  const auto& o2n = ig.old_to_new();

  std::vector<value_t> pr(n, 1.0 / n), x(n), y(n);
  std::vector<value_t> pr_new(n, 1.0 / n), xn(n), yn(n), actual(n);
  std::vector<eid_t> deg(n), deg_new(n);
  for (vid_t v = 0; v < n; ++v) {
    deg[v] = g.out_degree(v);
    deg_new[o2n[v]] = deg[v];
  }
  for (unsigned it = 0; it < opt.iterations; ++it) {
    for (vid_t v = 0; v < n; ++v) {
      x[v] = deg[v] ? damping * pr[v] / deg[v] : 0.0;
    }
    spmv_pull_serial<PlusMonoid>(g, x, y);
    for (vid_t v = 0; v < n; ++v) pr[v] = base + y[v];

    for (vid_t v = 0; v < n; ++v) {
      xn[v] = deg_new[v] ? damping * pr_new[v] / deg_new[v] : 0.0;
    }
    under_test(xn, yn);
    for (vid_t v = 0; v < n; ++v) pr_new[v] = base + yn[v];

    for (vid_t v = 0; v < n; ++v) actual[v] = pr_new[o2n[v]];
    if (report_compare(pr, actual, opt.tolerance, it, &ig, "ihtl", rep)) {
      break;
    }
  }
  rep.bin_drops_applied =
      sharded ? sharded->bin_drops_applied() : engine->bin_drops_applied();
}

/// Delta-PageRank oracle: with epsilon = 0, the frontier formulation must
/// reproduce the plain power iteration exactly (up to fp associativity).
void oracle_pagerank_delta(ThreadPool& pool, const Graph& g,
                           const OracleOptions& opt, OracleReport& rep) {
  const vid_t n = g.num_vertices();
  if (n == 0) return;
  const double damping = 0.85;
  const value_t base = (1.0 - damping) / n;
  std::vector<value_t> pr(n, 1.0 / n), x(n), y(n);
  for (unsigned it = 0; it < opt.iterations; ++it) {
    for (vid_t v = 0; v < n; ++v) {
      const eid_t deg = g.out_degree(v);
      x[v] = deg ? damping * pr[v] / deg : 0.0;
    }
    spmv_pull_serial<PlusMonoid>(g, x, y);
    for (vid_t v = 0; v < n; ++v) pr[v] = base + y[v];
  }

  PageRankDeltaOptions dopt;
  dopt.damping = damping;
  dopt.epsilon = 0.0;
  dopt.max_rounds = opt.iterations;
  const PageRankDeltaResult r = pagerank_delta(pool, g, dopt);
  report_compare(pr, r.ranks, opt.tolerance,
                 opt.iterations ? opt.iterations - 1 : 0, nullptr,
                 "pagerank-delta", rep);
}

void serial_l2_normalize(std::vector<value_t>& v) {
  double norm_sq = 0;
  for (const value_t e : v) norm_sq += e * e;
  const double norm = std::sqrt(norm_sq);
  if (norm == 0.0) return;
  for (value_t& e : v) e /= norm;
}

/// HITS oracle: serial authority/hub recurrence vs the two-direction iHTL
/// path. Authority mismatches are classified through the forward iHTL graph
/// (the one that accelerates the authority pull).
void oracle_hits(ThreadPool& pool, const Graph& g, const IhtlGraph& ig,
                 const IhtlConfig& cfg, const OracleOptions& opt,
                 OracleReport& rep) {
  const vid_t n = g.num_vertices();
  if (n == 0) return;
  std::vector<value_t> auth(n, 1.0), hub(n, 1.0);
  for (unsigned it = 0; it < opt.iterations; ++it) {
    std::vector<value_t> auth_next(n, 0.0), hub_next(n, 0.0);
    for (vid_t v = 0; v < n; ++v) {
      value_t acc = 0;
      for (const vid_t u : g.in().neighbors(v)) acc += hub[u];
      auth_next[v] = acc;
    }
    serial_l2_normalize(auth_next);
    for (vid_t v = 0; v < n; ++v) {
      value_t acc = 0;
      for (const vid_t u : g.out().neighbors(v)) acc += auth_next[u];
      hub_next[v] = acc;
    }
    serial_l2_normalize(hub_next);
    auth = std::move(auth_next);
    hub = std::move(hub_next);
  }

  HitsOptions hopt;
  hopt.iterations = opt.iterations;
  hopt.kernel = HitsKernel::ihtl;
  hopt.ihtl = cfg;
  const HitsResult r = hits(pool, g, hopt);
  const unsigned last = opt.iterations ? opt.iterations - 1 : 0;
  if (report_compare(auth, r.authority, opt.tolerance, last, &ig,
                     "ihtl-hits-authority", rep)) {
    return;
  }
  report_compare(hub, r.hub, opt.tolerance, last, nullptr, "ihtl-hits-hub",
                 rep);
}

std::vector<value_t> serial_bfs_levels(const Graph& g, vid_t source) {
  const vid_t n = g.num_vertices();
  std::vector<value_t> level(n, MinMonoid::identity());
  if (n == 0) return level;
  std::deque<vid_t> queue;
  level[source] = 0.0;
  queue.push_back(source);
  while (!queue.empty()) {
    const vid_t u = queue.front();
    queue.pop_front();
    for (const vid_t t : g.out().neighbors(u)) {
      if (std::isinf(level[t])) {
        level[t] = level[u] + 1.0;
        queue.push_back(t);
      }
    }
  }
  return level;
}

/// BFS oracle: a textbook serial queue BFS is the reference; both the
/// min-monoid iHTL fixpoint and the frontier direction-optimizing BFS must
/// reproduce its levels exactly (small integers in doubles — no tolerance).
void oracle_bfs(ThreadPool& pool, const Graph& g, const IhtlGraph& ig,
                const IhtlConfig& cfg, const OracleOptions& opt,
                OracleReport& rep) {
  const vid_t n = g.num_vertices();
  if (n == 0) return;
  const vid_t source = opt.source % n;
  const std::vector<value_t> expected = serial_bfs_levels(g, source);

  const AnalyticsResult r =
      sssp_unit(pool, g, source, AnalyticsKernel::ihtl, cfg);
  if (report_compare(expected, r.values, 0.0, 0, &ig, "ihtl-min-spmv", rep)) {
    return;
  }

  const BfsResult fr = bfs(pool, g, source);
  std::vector<value_t> frontier_levels(n);
  for (vid_t v = 0; v < n; ++v) {
    frontier_levels[v] = fr.level[v] == BfsResult::kUnreached
                             ? MinMonoid::identity()
                             : static_cast<value_t>(fr.level[v]);
  }
  report_compare(expected, frontier_levels, 0.0, 0, nullptr, "frontier-bfs",
                 rep);
}

/// k-core oracle: serial one-vertex-at-a-time peeling vs the parallel
/// wave peeler, both on the symmetric closure. Coreness is order-independent
/// so the two must agree exactly.
void oracle_kcore(ThreadPool& pool, const Graph& g, const OracleOptions& opt,
                  OracleReport& rep) {
  (void)opt;
  const Graph sym = symmetrize(g);
  const vid_t n = sym.num_vertices();
  std::vector<value_t> expected(n, 0.0);
  {
    std::vector<std::int64_t> degree(n);
    std::vector<char> alive(n, 1);
    vid_t remaining = n;
    for (vid_t v = 0; v < n; ++v) {
      degree[v] = static_cast<std::int64_t>(sym.out_degree(v));
    }
    vid_t k = 1;
    while (remaining > 0) {
      bool peeled = true;
      while (peeled) {
        peeled = false;
        for (vid_t v = 0; v < n; ++v) {
          if (!alive[v] || degree[v] >= static_cast<std::int64_t>(k)) continue;
          alive[v] = 0;
          expected[v] = static_cast<value_t>(k - 1);
          --remaining;
          for (const vid_t u : sym.in().neighbors(v)) --degree[u];
          peeled = true;
        }
      }
      if (remaining > 0) ++k;
    }
  }
  const KCoreResult r = kcore_decomposition(pool, sym);
  std::vector<value_t> actual(n);
  for (vid_t v = 0; v < n; ++v) actual[v] = static_cast<value_t>(r.coreness[v]);
  report_compare(expected, actual, 0.0, 0, nullptr, "kcore-peeler", rep);
}

}  // namespace

OracleReport run_oracle(ThreadPool& pool, const Graph& g,
                        const IhtlConfig& cfg, const OracleOptions& opt) {
  OracleReport rep;
  rep.workload = opt.workload;

  // Workloads that traverse through the relabeled space get a structural
  // pre-check: a broken edge partition or permutation is reported as such
  // rather than as a downstream value divergence.
  const bool needs_ihtl = opt.workload != Workload::pagerank_delta &&
                          opt.workload != Workload::kcore;
  IhtlGraph built;
  const IhtlGraph* igp = opt.prebuilt_ihtl;
  if (needs_ihtl) {
    if (!igp) {
      built = build_ihtl_graph(g, cfg);
      igp = &built;
    }
    if (!igp->valid(g)) {
      rep.ok = false;
      rep.kind = "structure";
      return rep;
    }
  }
  const IhtlGraph& ig = igp ? *igp : built;

  // The fault-injection hook wraps the scalar spmv signature, so injected
  // runs stay on the scalar path regardless of the requested batch.
  const bool batched =
      opt.batch > 1 &&
      !(opt.workload == Workload::spmv_plus && opt.plus_engine_override);
  switch (opt.workload) {
    case Workload::spmv_plus:
      if (batched) {
        oracle_spmv_batch<PlusMonoid>(pool, g, ig, cfg, opt, rep);
      } else {
        oracle_spmv<PlusMonoid>(pool, g, ig, cfg, opt, rep);
      }
      break;
    case Workload::spmv_min:
      if (batched) {
        oracle_spmv_batch<MinMonoid>(pool, g, ig, cfg, opt, rep);
      } else {
        oracle_spmv<MinMonoid>(pool, g, ig, cfg, opt, rep);
      }
      break;
    case Workload::spmv_max:
      if (batched) {
        oracle_spmv_batch<MaxMonoid>(pool, g, ig, cfg, opt, rep);
      } else {
        oracle_spmv<MaxMonoid>(pool, g, ig, cfg, opt, rep);
      }
      break;
    case Workload::pagerank:
      oracle_pagerank(pool, g, ig, cfg, opt, rep);
      break;
    case Workload::pagerank_delta:
      oracle_pagerank_delta(pool, g, opt, rep);
      break;
    case Workload::hits:
      oracle_hits(pool, g, ig, cfg, opt, rep);
      break;
    case Workload::bfs:
      oracle_bfs(pool, g, ig, cfg, opt, rep);
      break;
    case Workload::kcore:
      oracle_kcore(pool, g, opt, rep);
      break;
  }
  return rep;
}

}  // namespace ihtl::check
