#include "check/diff_runner.h"

#include <algorithm>
#include <limits>
#include <ostream>
#include <sstream>

#include "gen/generators.h"
#include "gen/rng.h"
#include "telemetry/metrics.h"

namespace ihtl::check {

std::string family_name(GenFamily f) {
  switch (f) {
    case GenFamily::rmat:
      return "rmat";
    case GenFamily::web:
      return "web";
    case GenFamily::erdos_renyi:
      return "erdos-renyi";
    case GenFamily::ring:
      return "ring";
    case GenFamily::star:
      return "star";
    case GenFamily::empty_edges:
      return "empty";
    case GenFamily::single_vertex:
      return "single-vertex";
  }
  return "unknown";
}

std::string hub_policy_name(HubPolicy p) {
  switch (p) {
    case HubPolicy::standard:
      return "standard";
    case HubPolicy::all_hub:
      return "all-hub";
    case HubPolicy::zero_hub:
      return "zero-hub";
  }
  return "unknown";
}

CaseParams CaseParams::draw(std::uint64_t seed) {
  // SEED-STABILITY: every field below is drawn exactly once, in this frozen
  // order, regardless of which family/workload consumes it. APPEND new
  // draws at the end; never insert, remove, or make one conditional —
  // doing so re-keys every replay seed ever recorded.
  Rng rng(seed);
  CaseParams p;
  p.seed = seed;
  const std::uint64_t family_roll = rng.next_below(16);
  p.num_vertices = static_cast<vid_t>(33 + rng.next_below(992));
  p.edge_factor = static_cast<unsigned>(2 + rng.next_below(15));
  p.reciprocity = rng.next_double();
  p.avg_out_degree = static_cast<unsigned>(2 + rng.next_below(20));
  p.hub_fraction = 0.001 + 0.01 * rng.next_double();
  p.hub_edge_share = rng.next_double();
  p.num_edges =
      static_cast<eid_t>(p.num_vertices) * (1 + rng.next_below(12));
  p.graph_seed = rng.next_u64();
  p.build.remove_self_loops = rng.next_below(2) == 0;
  p.build.dedup = rng.next_below(2) == 0;
  p.build.remove_zero_degree = rng.next_below(2) == 0;
  p.build.sort_neighbors = true;
  p.buffer_values = std::size_t{4} << rng.next_below(8);
  p.admission_ratio = 0.05 + 0.9 * rng.next_double();
  p.min_hub_in_degree = 1 + rng.next_below(4);
  p.separate_fringe = rng.next_below(2) == 0;
  const std::uint64_t policy_roll = rng.next_below(10);
  p.threads = static_cast<unsigned>(1 + rng.next_below(4));
  p.workload = static_cast<Workload>(rng.next_below(kNumWorkloads));
  p.iterations = static_cast<unsigned>(2 + rng.next_below(3));
  p.source = static_cast<vid_t>(rng.next_below(1u << 20));
  p.x_seed = rng.next_u64();
  const std::uint64_t push_roll = rng.next_below(6);    // appended (PR 3)
  const std::uint64_t batch_roll = rng.next_below(8);   // appended (PR 5)
  const std::uint64_t binned_roll = rng.next_below(4);  // appended (PR 10)

  // Derived values (no draws): rolls map onto families/policies so the
  // degenerate shapes keep a fixed share of the lattice.
  if (family_roll < 5) {
    p.family = GenFamily::rmat;
  } else if (family_roll < 9) {
    p.family = GenFamily::web;
  } else if (family_roll < 12) {
    p.family = GenFamily::erdos_renyi;
  } else if (family_roll == 12) {
    p.family = GenFamily::ring;
  } else if (family_roll == 13) {
    p.family = GenFamily::star;
  } else if (family_roll == 14) {
    p.family = GenFamily::empty_edges;
  } else {
    p.family = GenFamily::single_vertex;
  }
  if (p.family == GenFamily::single_vertex) p.num_vertices = 1;
  if (policy_roll == 0) {
    p.hub_policy = HubPolicy::all_hub;
  } else if (policy_roll == 1) {
    p.hub_policy = HubPolicy::zero_hub;
  }
  if (push_roll < 2) {
    p.push_policy = PushPolicy::automatic;
  } else if (push_roll < 4) {
    p.push_policy = PushPolicy::shared;
  } else {
    p.push_policy = PushPolicy::single_owner;
  }
  // A quarter of the lattice overrides the PR-3 policy with the binned
  // sparse path, so every workload/family/shard/batch combination also runs
  // the scatter->accumulate kernel.
  if (binned_roll == 0) p.push_policy = PushPolicy::binned;
  // Half the lattice stays scalar; the rest splits across small powers of
  // two, with k=8 (one cache line of doubles per row) the deepest point.
  if (batch_roll < 4) {
    p.batch = 1;
  } else if (batch_roll < 6) {
    p.batch = 2;
  } else if (batch_roll == 6) {
    p.batch = 4;
  } else {
    p.batch = 8;
  }
  return p;
}

IhtlConfig CaseParams::ihtl_config() const {
  IhtlConfig cfg;
  cfg.buffer_bytes = buffer_values * sizeof(value_t);
  cfg.admission_ratio = admission_ratio;
  cfg.min_hub_in_degree = min_hub_in_degree;
  cfg.separate_fringe = separate_fringe;
  switch (hub_policy) {
    case HubPolicy::standard:
      break;
    case HubPolicy::all_hub:
      // Admit every vertex with an in-edge into some flipped block.
      cfg.min_hub_in_degree = 1;
      cfg.admission_ratio = 0.0;
      break;
    case HubPolicy::zero_hub:
      // No vertex qualifies: the iHTL graph degenerates to pure pull.
      cfg.min_hub_in_degree = std::numeric_limits<eid_t>::max();
      break;
  }
  cfg.push_policy = push_policy;
  return cfg;
}

OracleOptions CaseParams::oracle_options() const {
  OracleOptions opt;
  opt.workload = workload;
  opt.iterations = iterations;
  opt.source = source;
  opt.x_seed = x_seed;
  opt.batch = batch;
  return opt;
}

std::string CaseParams::describe() const {
  std::ostringstream os;
  os << "seed 0x" << std::hex << seed << std::dec << " family="
     << family_name(family) << " n=" << num_vertices << " workload="
     << workload_name(workload) << " threads=" << threads << " policy="
     << hub_policy_name(hub_policy) << " push="
     << push_policy_name(push_policy) << " batch=" << batch
     << " hubs/block=" << buffer_values
     << " admission=" << admission_ratio << " minHubDeg=" << min_hub_in_degree
     << " fringe=" << (separate_fringe ? 1 : 0) << " build[loops="
     << (build.remove_self_loops ? 1 : 0) << ",dedup=" << (build.dedup ? 1 : 0)
     << ",zerodeg=" << (build.remove_zero_degree ? 1 : 0) << "]";
  return os.str();
}

std::uint64_t point_seed(std::uint64_t base_seed, std::size_t index) {
  std::uint64_t state =
      base_seed + 0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(index + 1);
  return splitmix64(state);
}

std::vector<Edge> make_case_edges(const CaseParams& p) {
  const vid_t n = p.num_vertices;
  switch (p.family) {
    case GenFamily::rmat: {
      RmatParams rp;
      rp.scale = 0;
      while ((vid_t{1} << rp.scale) < n) ++rp.scale;
      rp.edge_factor = p.edge_factor;
      rp.reciprocity = p.reciprocity;
      rp.seed = p.graph_seed;
      std::vector<Edge> edges = rmat_edges(rp);
      // Fold the 2^scale ID space onto [0, n): keeps the skew while letting
      // the lattice cover non-power-of-two vertex counts.
      for (Edge& e : edges) {
        e.src %= n;
        e.dst %= n;
      }
      return edges;
    }
    case GenFamily::web: {
      WebParams wp;
      wp.num_vertices = n;
      wp.avg_out_degree = p.avg_out_degree;
      wp.max_out_degree = p.avg_out_degree * 3;
      wp.hub_fraction = p.hub_fraction;
      wp.hub_edge_share = p.hub_edge_share;
      wp.seed = p.graph_seed;
      return web_edges(wp);
    }
    case GenFamily::erdos_renyi:
      return erdos_renyi_edges(n, p.num_edges, p.graph_seed);
    case GenFamily::ring: {
      std::vector<Edge> edges;
      if (n >= 2) {
        edges.reserve(n);
        for (vid_t v = 0; v < n; ++v) edges.push_back({v, (v + 1) % n});
      }
      return edges;
    }
    case GenFamily::star: {
      std::vector<Edge> edges;
      edges.reserve(n > 0 ? n - 1 : 0);
      for (vid_t v = 1; v < n; ++v) edges.push_back({v, 0});
      return edges;
    }
    case GenFamily::empty_edges:
    case GenFamily::single_vertex:
      return {};
  }
  return {};
}

Graph make_case_graph(const CaseParams& p) {
  return build_graph(p.num_vertices, make_case_edges(p), p.build);
}

CaseResult run_point(std::uint64_t seed, const DiffOptions& opt) {
  CaseParams p = CaseParams::draw(seed);
  if (opt.force_threads > 0) p.threads = opt.force_threads;
  if (opt.force_workload) p.workload = *opt.force_workload;
  if (opt.force_push_policy) p.push_policy = *opt.force_push_policy;
  if (opt.force_batch) p.batch = *opt.force_batch;

  const Graph g = make_case_graph(p);
  ThreadPool pool(p.threads);
  OracleOptions oopt = p.oracle_options();
  if (opt.force_shards) oopt.shards = *opt.force_shards;
  oopt.plus_engine_override = opt.engine_override;
  oopt.inject_bin_drop = opt.inject_bin_drop;
  CaseResult result{p, run_oracle(pool, g, p.ihtl_config(), oopt)};

  // Bin-drop self-test contract: under the plus semiring every scattered
  // contribution is positive, so an applied drop must surface as a value
  // divergence — a clean report with drops applied means the oracle failed
  // to notice the fault.
  if (opt.inject_bin_drop && result.report.ok &&
      result.report.bin_drops_applied > 0 &&
      p.workload == Workload::spmv_plus) {
    result.report.ok = false;
    result.report.kind = "fault-missed";
  }

  auto& reg = telemetry::MetricsRegistry::global();
  reg.counter("check/points_run").inc(0);
  reg.counter("check/mismatches").add(0, result.report.ok ? 0 : 1);
  reg.counter("check/minimize_steps").add(0, 0);  // register for reports
  return result;
}

std::optional<CaseResult> run_lattice(const DiffOptions& opt) {
  for (std::size_t i = 0; i < opt.points; ++i) {
    const std::uint64_t seed = point_seed(opt.base_seed, i);
    CaseResult r = run_point(seed, opt);
    if (opt.out && opt.verbose) {
      *opt.out << "[" << i + 1 << "/" << opt.points << "] "
               << r.params.describe() << " -> " << r.report.summary() << "\n";
    }
    if (!r.report.ok) return r;
  }
  return std::nullopt;
}

MinimizedCase minimize_case(const CaseResult& failure,
                            const DiffOptions& opt) {
  MinimizedCase m;
  m.params = failure.params;
  m.report = failure.report;
  m.injected_fault = static_cast<bool>(opt.engine_override);
  m.injected_bin_drop = opt.inject_bin_drop;

  auto step_counter =
      telemetry::MetricsRegistry::global().counter("check/minimize_steps");
  const IhtlConfig cfg = m.params.ihtl_config();
  OracleOptions oopt = m.params.oracle_options();
  oopt.plus_engine_override = opt.engine_override;
  oopt.inject_bin_drop = opt.inject_bin_drop;

  auto fails = [&](vid_t n, const std::vector<Edge>& edges,
                   OracleReport* out) {
    ++m.steps;
    step_counter.inc(0);
    const Graph g = build_graph(n, edges, m.params.build);
    ThreadPool pool(m.params.threads);
    OracleReport rep = run_oracle(pool, g, cfg, oopt);
    if (out) *out = rep;
    return !rep.ok;
  };

  vid_t n = m.params.num_vertices;
  std::vector<Edge> edges = make_case_edges(m.params);

  // The failure must reproduce from the regenerated inputs before any
  // shrinking is trusted.
  OracleReport rep;
  if (!fails(n, edges, &rep)) {
    m.num_vertices = n;
    m.edges = std::move(edges);
    return m;  // reproduced stays false; caller reports the replay anomaly
  }
  m.reproduced = true;
  m.report = rep;

  // Phase 1: greedy chunked edge removal (ddmin-style). Chunks halve down
  // to single edges; a pass at chunk size 1 with no removal is a fixpoint.
  const std::size_t budget = 4000;  // oracle evaluations
  std::size_t chunk = std::max<std::size_t>(1, edges.size() / 2);
  while (m.steps < budget) {
    bool removed_any = false;
    for (std::size_t start = 0; start < edges.size() && m.steps < budget;) {
      const std::size_t end = std::min(edges.size(), start + chunk);
      std::vector<Edge> candidate;
      candidate.reserve(edges.size() - (end - start));
      candidate.insert(candidate.end(), edges.begin(),
                       edges.begin() + static_cast<std::ptrdiff_t>(start));
      candidate.insert(candidate.end(),
                       edges.begin() + static_cast<std::ptrdiff_t>(end),
                       edges.end());
      if (fails(n, candidate, &rep)) {
        edges = std::move(candidate);
        m.report = rep;
        removed_any = true;  // same start now covers new edges; retry it
      } else {
        start = end;
      }
    }
    if (chunk == 1) {
      if (!removed_any) break;
    } else {
      chunk = std::max<std::size_t>(1, chunk / 2);
    }
  }

  // Phase 2: shrink the vertex space — truncate past the highest used ID,
  // then compact out interior isolated vertices (kept only if the failure
  // survives; e.g. PageRank's 1/n base term depends on the count).
  vid_t max_used = 0;
  for (const Edge& e : edges) {
    max_used = std::max(max_used, std::max(e.src, e.dst));
  }
  const vid_t truncated = edges.empty() ? 1 : max_used + 1;
  if (truncated < n && fails(truncated, edges, &rep)) {
    n = truncated;
    m.report = rep;
  }
  {
    std::vector<vid_t> remap(n, n);
    vid_t next_id = 0;
    for (vid_t v = 0; v < n; ++v) {
      for (const Edge& e : edges) {
        if (e.src == v || e.dst == v) {
          remap[v] = next_id++;
          break;
        }
      }
    }
    if (next_id > 0 && next_id < n) {
      std::vector<Edge> compacted;
      compacted.reserve(edges.size());
      for (const Edge& e : edges) {
        compacted.push_back({remap[e.src], remap[e.dst]});
      }
      if (fails(next_id, compacted, &rep)) {
        n = next_id;
        edges = std::move(compacted);
        m.report = rep;
      }
    }
  }

  m.num_vertices = n;
  m.edges = std::move(edges);
  return m;
}

namespace {

const char* workload_enum_name(Workload w) {
  switch (w) {
    case Workload::spmv_plus:
      return "spmv_plus";
    case Workload::spmv_min:
      return "spmv_min";
    case Workload::spmv_max:
      return "spmv_max";
    case Workload::pagerank:
      return "pagerank";
    case Workload::pagerank_delta:
      return "pagerank_delta";
    case Workload::hits:
      return "hits";
    case Workload::bfs:
      return "bfs";
    case Workload::kcore:
      return "kcore";
  }
  return "spmv_plus";
}

const char* push_policy_enum_name(PushPolicy p) {
  switch (p) {
    case PushPolicy::automatic:
      return "automatic";
    case PushPolicy::shared:
      return "shared";
    case PushPolicy::single_owner:
      return "single_owner";
    case PushPolicy::binned:
      return "binned";
  }
  return "automatic";
}

}  // namespace

std::string repro_snippet(const MinimizedCase& m) {
  const CaseParams& p = m.params;
  const IhtlConfig cfg = p.ihtl_config();
  std::ostringstream os;
  os.precision(17);  // doubles must round-trip exactly for replay fidelity
  os << "// Minimized ihtl_check repro: replay seed 0x" << std::hex << p.seed
     << std::dec << ", " << m.num_vertices << " vertices, " << m.edges.size()
     << " edges.\n"
     << "// Failure: " << m.report.summary() << "\n"
     << "// Compile against the ihtl libraries (see tests/test_check.cpp for\n"
     << "// the same call driven under gtest) and commit as a regression.\n"
     << "#include <cstdio>\n"
     << "#include <vector>\n"
     << "\n"
     << "#include \"check/oracle.h\"\n"
     << "#include \"graph/graph.h\"\n"
     << "#include \"parallel/thread_pool.h\"\n"
     << "\n"
     << "int main() {\n"
     << "  using namespace ihtl;\n"
     << "  const std::vector<Edge> edges = {";
  for (std::size_t i = 0; i < m.edges.size(); ++i) {
    if (i % 8 == 0) os << "\n      ";
    os << "{" << m.edges[i].src << ", " << m.edges[i].dst << "},";
    if (i % 8 != 7 && i + 1 != m.edges.size()) os << " ";
  }
  os << "\n  };\n"
     << "  BuildOptions build;\n"
     << "  build.remove_self_loops = " << (p.build.remove_self_loops ? "true" : "false")
     << ";\n"
     << "  build.dedup = " << (p.build.dedup ? "true" : "false") << ";\n"
     << "  build.remove_zero_degree = "
     << (p.build.remove_zero_degree ? "true" : "false") << ";\n"
     << "  build.sort_neighbors = true;\n"
     << "  const Graph g = build_graph(" << m.num_vertices
     << ", edges, build);\n"
     << "  IhtlConfig cfg;\n"
     << "  cfg.buffer_bytes = " << cfg.buffer_bytes << ";\n"
     << "  cfg.admission_ratio = " << cfg.admission_ratio << ";\n"
     << "  cfg.min_hub_in_degree = " << cfg.min_hub_in_degree << "ULL;\n"
     << "  cfg.separate_fringe = " << (cfg.separate_fringe ? "true" : "false")
     << ";\n"
     << "  cfg.push_policy = PushPolicy::"
     << push_policy_enum_name(cfg.push_policy) << ";\n"
     << "  ThreadPool pool(" << p.threads << ");\n"
     << "  check::OracleOptions opt;\n"
     << "  opt.workload = check::Workload::" << workload_enum_name(p.workload)
     << ";\n"
     << "  opt.iterations = " << p.iterations << ";\n"
     << "  opt.source = " << p.source << ";\n"
     << "  opt.x_seed = " << p.x_seed << "ULL;\n"
     << "  opt.batch = " << p.batch << ";\n";
  if (m.injected_fault) {
    os << "  // The original run injected the drop-merge fault; without this\n"
       << "  // line the real engine passes and the repro proves nothing.\n"
       << "  opt.plus_engine_override = check::drop_merge_fault();\n";
  }
  if (m.injected_bin_drop) {
    os << "  // The original run armed the bin-drop fault; without this line\n"
       << "  // the real engine passes and the repro proves nothing.\n"
       << "  opt.inject_bin_drop = true;\n";
  }
  os << "  const check::OracleReport report = check::run_oracle(pool, g, cfg, opt);\n"
     << "  std::puts(report.summary().c_str());\n"
     << "  return report.ok ? 0 : 1;\n"
     << "}\n";
  return os.str();
}

}  // namespace ihtl::check
