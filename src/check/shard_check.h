// Shard axis of the check lattice.
//
// Reuses the MAIN diff-runner lattice points (CaseParams::draw — the
// seed-stability contract stays untouched because the shard count is a
// FORCED option, not a drawn parameter) and re-runs every point's workload
// through the ShardedEngine at each shard count in `shard_counts`, against
// the same serial references the unsharded engine is checked against.
//
// On top of the tolerance-based oracle, each point pins two exact
// contracts:
//   - S=1 BITWISE identity: at one thread the sharded engine must produce
//     bit-for-bit the unsharded engine's output (identical decomposition,
//     identical execution order), for the plus monoid over random doubles.
//   - Order-independence BITWISE identity: with small-integer inputs
//     (exact sums) or the min monoid (idempotent), ShardedEngine at ANY S
//     and thread count must match the unsharded engine bit for bit —
//     catching double-counted, dropped, or mis-owned destinations that a
//     1e-9 tolerance could mask.
//
// A fault-injection pass corrupts one shard's exchange slice
// (ShardedEngine::inject_exchange_corruption) and requires the oracle to
// report a divergence — proving the lattice actually watches the exchange.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace ihtl::check {

struct ShardCheckOptions {
  std::uint64_t base_seed = 2026;
  std::size_t points = 16;
  /// Shard counts swept per point. 1 pins the bitwise-identity contract.
  std::vector<std::size_t> shard_counts = {1, 2, 4};
  unsigned force_threads = 0;  ///< > 0 overrides the drawn thread count
  /// Also run the exchange-corruption self-test on every point (skipped on
  /// points whose shards have no cross-shard slice to corrupt).
  bool inject_fault = false;
  bool verbose = false;
  std::ostream* out = nullptr;  ///< progress stream (nullptr = silent)
};

struct ShardCheckResult {
  bool ok = true;
  std::size_t points_run = 0;
  std::size_t oracle_runs = 0;     ///< full oracle evaluations (per S)
  std::size_t bitwise_checks = 0;  ///< exact-identity comparisons passed
  std::size_t faults_injected = 0;
  std::size_t faults_skipped = 0;  ///< no remote slice existed to corrupt
  std::string failure;  ///< first failing check's description, empty if ok
};

/// Runs the shard lattice; every point is reproducible from
/// (base_seed, point index) plus the forced options alone.
ShardCheckResult run_shard_lattice(const ShardCheckOptions& opt);

}  // namespace ihtl::check
