#include "check/serve_check.h"

#include <atomic>
#include <cmath>
#include <cstring>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>
#include <vector>

#include "gen/datasets.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/session.h"
#include "telemetry/json.h"

namespace ihtl::check {

namespace {

using serve::QueryOp;
using serve::QueryRequest;
using telemetry::JsonValue;

std::uint64_t splitmix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Tiny deterministic stream over one point's seed; the lattice draws and
/// every client workload come from here, so a point is reproducible from
/// (base_seed, index) alone.
struct Draw {
  std::uint64_t state;
  std::uint64_t next() { return state = splitmix64(state); }
  std::uint64_t next(std::uint64_t bound) { return next() % bound; }
};

/// One point's configuration, fully derived from its seed.
struct ServePoint {
  std::string dataset;
  unsigned threads = 1;
  std::size_t max_lanes = 8;
  unsigned delay_us = 200;
  std::size_t cache_bytes = 8u << 20;
  unsigned clients = 4;
  std::string describe() const {
    std::ostringstream s;
    s << "dataset=" << dataset << " threads=" << threads
      << " max_lanes=" << max_lanes << " delay_us=" << delay_us
      << " cache=" << (cache_bytes ? "on" : "off")
      << " clients=" << clients;
    return s.str();
  }
};

ServePoint draw_point(Draw& d, const ServeCheckOptions& opt) {
  ServePoint p;
  // Social + web shapes, both skew extremes; tiny keeps a point sub-second.
  static const char* kDatasets[] = {"TwtrMpi", "Frndstr", "SK", "UU"};
  p.dataset = kDatasets[d.next(4)];
  // Biased to 1 thread: that is the bit-identical configuration, the
  // strongest comparison the check can make.
  static const unsigned kThreads[] = {1, 1, 2, 4};
  p.threads = opt.force_threads ? opt.force_threads : kThreads[d.next(4)];
  static const std::size_t kLanes[] = {1, 2, 4, 8};
  p.max_lanes = kLanes[d.next(4)];
  static const unsigned kDelay[] = {0, 50, 200, 1000};
  p.delay_us = kDelay[d.next(4)];
  p.cache_bytes = d.next(4) == 0 ? 0 : (8u << 20);
  static const unsigned kClients[] = {2, 4, 8};
  p.clients = opt.force_clients ? opt.force_clients : kClients[d.next(3)];
  return p;
}

/// Seeded mixed workload of one client (mirrors ihtl_query --mix, but
/// independent — the check must not depend on the CLI layer).
std::vector<QueryRequest> make_workload(Draw d, unsigned count, vid_t n) {
  std::vector<QueryRequest> out;
  out.reserve(count);
  const vid_t pool = std::min<vid_t>(n ? n : 1, 64);
  for (unsigned i = 0; i < count; ++i) {
    QueryRequest req;
    switch (d.next(3)) {
      case 0:
        req.op = QueryOp::ppr;
        req.iterations = 4;
        break;
      case 1:
        req.op = QueryOp::bfs;
        break;
      default:
        req.op = QueryOp::spmv;
        req.x_seed = d.next(8);
        break;
    }
    if (req.op != QueryOp::spmv) {
      const std::size_t k = 1 + d.next(4);
      for (std::size_t j = 0; j < k; ++j) {
        req.sources.push_back(static_cast<vid_t>(d.next(pool)));
      }
    }
    out.push_back(std::move(req));
  }
  return out;
}

/// Serial oracle: answer one request alone on the 1-thread session.
std::vector<value_t> oracle_answer(serve::GraphSession& oracle,
                                   const QueryRequest& req) {
  switch (req.op) {
    case QueryOp::ppr:
      return oracle.ppr_batch(req.sources, req.iterations, req.damping);
    case QueryOp::bfs:
      return oracle.bfs_batch(req.sources);
    default: {
      const std::uint64_t seed = req.x_seed;
      return oracle.spmv_batch(std::span<const std::uint64_t>(&seed, 1));
    }
  }
}

/// Bitwise when exact, else relative 1e-9 (or 1e-9 absolute near zero).
bool values_match(const std::vector<value_t>& got,
                  const std::vector<value_t>& want, bool exact,
                  std::string* why) {
  if (got.size() != want.size()) {
    if (why) {
      *why = "size mismatch: got " + std::to_string(got.size()) +
             ", want " + std::to_string(want.size());
    }
    return false;
  }
  for (std::size_t i = 0; i < got.size(); ++i) {
    bool ok;
    if (exact) {
      // Bitwise: distinguishes -0.0/0.0 and NaN patterns, the strongest
      // statement that batching composition changed nothing.
      ok = std::memcmp(&got[i], &want[i], sizeof(value_t)) == 0;
    } else {
      const double scale = std::max(std::fabs(want[i]), 1.0);
      ok = std::fabs(got[i] - want[i]) <= 1e-9 * scale;
    }
    if (!ok) {
      if (why) {
        std::ostringstream s;
        s.precision(17);
        s << "index " << i << ": got " << got[i] << ", want " << want[i]
          << (exact ? " (bitwise)" : " (rel 1e-9)");
        *why = s.str();
      }
      return false;
    }
  }
  return true;
}

/// Parses the "values" array of an ok response.
bool parse_values(const JsonValue& resp, std::vector<value_t>& out,
                  bool& cached, std::string* why) {
  const JsonValue* ok = resp.find("ok");
  if (!ok || !ok->is_bool() || !ok->as_bool()) {
    const JsonValue* err = resp.find("error");
    if (why) {
      *why = "server error: " +
             (err && err->is_string() ? err->as_string() : "(none)");
    }
    return false;
  }
  const JsonValue* c = resp.find("cached");
  cached = c && c->is_bool() && c->as_bool();
  const JsonValue* values = resp.find("values");
  if (!values || !values->is_array()) {
    if (why) *why = "response has no values array";
    return false;
  }
  out.clear();
  out.reserve(values->items().size());
  for (const JsonValue& v : values->items()) {
    // BFS unreachable travels as -1; non-finite would arrive as null.
    if (!v.is_number()) {
      if (why) *why = "non-numeric value in response";
      return false;
    }
    out.push_back(v.as_number());
  }
  return true;
}

struct PointFailure {
  std::mutex mutex;
  std::string message;  ///< first failure wins
  void record(const std::string& m) {
    std::lock_guard<std::mutex> lock(mutex);
    if (message.empty()) message = m;
  }
  bool failed() {
    std::lock_guard<std::mutex> lock(mutex);
    return !message.empty();
  }
};

/// Runs one lattice point; returns the failure description or "".
std::string run_point(std::uint64_t point_seed, const ServeCheckOptions& opt,
                      std::uint64_t& queries_checked) {
  Draw draw{point_seed};
  const ServePoint p = draw_point(draw, opt);

  Graph g = make_dataset(p.dataset, DatasetScale::tiny);
  const vid_t n = g.num_vertices();

  // The oracle session: same preprocessing, one thread, answers each
  // request alone. Computed up front (its engine allows one caller).
  serve::SessionOptions oracle_opt;
  oracle_opt.threads = 1;
  serve::GraphSession oracle(g, oracle_opt);

  std::vector<std::vector<QueryRequest>> workloads(p.clients);
  std::vector<std::vector<std::vector<value_t>>> expected(p.clients);
  for (unsigned c = 0; c < p.clients; ++c) {
    workloads[c] =
        make_workload(Draw{splitmix64(point_seed ^ (c + 1))},
                      opt.queries_per_client, n);
    for (const QueryRequest& req : workloads[c]) {
      expected[c].push_back(oracle_answer(oracle, req));
    }
  }

  serve::SessionOptions sopt;
  sopt.threads = p.threads;
  serve::GraphSession session(std::move(g), sopt);
  serve::ServerOptions server_opt;
  server_opt.max_lanes = p.max_lanes;
  server_opt.max_batch_delay = std::chrono::microseconds(p.delay_us);
  server_opt.cache_bytes = p.cache_bytes;
  server_opt.fault = opt.fault;
  serve::Server server(session, server_opt);

  // Exact when one compute thread (deterministic chunk order) or min-
  // monoid ops; bfs stays exact at any thread count.
  const bool exact_all = p.threads == 1;

  PointFailure failure;
  std::atomic<std::uint64_t> checked{0};
  std::vector<std::thread> clients;
  clients.reserve(p.clients);
  for (unsigned c = 0; c < p.clients; ++c) {
    clients.emplace_back([&, c] {
      try {
        serve::Client client;
        client.connect("127.0.0.1", server.port());
        // Two passes over the same workload: pass 2 re-sends identical
        // fingerprints, so with the cache on its answers must come back
        // cached AND equal — the cache-coherence half of the check.
        for (int pass = 0; pass < 2; ++pass) {
          for (std::size_t q = 0; q < workloads[c].size(); ++q) {
            if (failure.failed()) return;
            const QueryRequest& req = workloads[c][q];
            const JsonValue resp = client.roundtrip(req);
            std::vector<value_t> got;
            bool cached = false;
            std::string why;
            if (!parse_values(resp, got, cached, &why)) {
              failure.record("client " + std::to_string(c) + " query " +
                             std::to_string(q) + ": " + why);
              return;
            }
            // A cached answer is the stored computed vector verbatim, so
            // the same exactness rule applies to both passes.
            const bool exact = exact_all || req.op == QueryOp::bfs;
            if (!values_match(got, expected[c][q], exact, &why)) {
              failure.record("client " + std::to_string(c) + " query " +
                             std::to_string(q) + " (" +
                             serve::op_name(req.op) + ", pass " +
                             std::to_string(pass) + "): " + why);
              return;
            }
            checked.fetch_add(1, std::memory_order_relaxed);
          }
        }
      } catch (const std::exception& e) {
        failure.record("client " + std::to_string(c) +
                       " transport: " + e.what());
      }
    });
  }
  for (std::thread& t : clients) t.join();

  // Cache-hit floor: every pass-2 query re-sent an already-answered
  // fingerprint (put-before-respond guarantees visibility).
  if (!failure.failed() && p.cache_bytes > 0) {
    serve::Client client;
    client.connect("127.0.0.1", server.port());
    QueryRequest stats;
    stats.op = QueryOp::stats;
    const JsonValue resp = client.roundtrip(stats);
    const JsonValue* s = resp.find("stats");
    const JsonValue* gauges = s ? s->find("gauges") : nullptr;
    const JsonValue* hits =
        gauges ? gauges->find("serve.cache.hits") : nullptr;
    const double floor =
        static_cast<double>(p.clients) * opt.queries_per_client;
    if (!hits || !hits->is_number() || hits->as_number() < floor) {
      std::ostringstream why;
      why << "cache hits " << (hits ? hits->as_number() : -1)
          << " below the duplicate-pass floor " << floor;
      failure.record(why.str());
    }
  }

  // Epoch contract: bump, re-send one query — must recompute (cached
  // false) and still match the oracle (the graph did not actually change).
  if (!failure.failed() && !workloads.empty() && !workloads[0].empty()) {
    serve::Client client;
    client.connect("127.0.0.1", server.port());
    QueryRequest bump;
    bump.op = QueryOp::bump_epoch;
    client.roundtrip(bump);
    const QueryRequest& req = workloads[0][0];
    const JsonValue resp = client.roundtrip(req);
    std::vector<value_t> got;
    bool cached = false;
    std::string why;
    if (!parse_values(resp, got, cached, &why)) {
      failure.record("post-bump query: " + why);
    } else if (cached) {
      failure.record("post-bump answer still served from cache");
    } else if (!values_match(got, expected[0][0],
                             exact_all || req.op == QueryOp::bfs, &why)) {
      failure.record("post-bump recompute diverged: " + why);
    } else {
      checked.fetch_add(1, std::memory_order_relaxed);
    }
  }

  server.stop();
  queries_checked += checked.load();
  std::lock_guard<std::mutex> lock(failure.mutex);
  return failure.message;
}

}  // namespace

ServeCheckResult run_serve_lattice(const ServeCheckOptions& opt) {
  ServeCheckResult result;
  for (std::size_t i = 0; i < opt.points; ++i) {
    const std::uint64_t point_seed = splitmix64(opt.base_seed + i);
    Draw d{point_seed};
    if (opt.verbose && opt.out) {
      (*opt.out) << "serve point " << i << " (seed " << point_seed
                 << "): " << draw_point(d, opt).describe() << "\n";
    }
    const std::string failure = run_point(point_seed, opt,
                                          result.queries_checked);
    ++result.points_run;
    if (!failure.empty()) {
      result.ok = false;
      std::ostringstream s;
      Draw d2{point_seed};
      s << "serve point " << i << " (seed " << point_seed << ", "
        << draw_point(d2, opt).describe() << "): " << failure;
      result.failure = s.str();
      return result;
    }
  }
  return result;
}

}  // namespace ihtl::check
