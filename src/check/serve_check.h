// Concurrent-client differential check of the serve subsystem.
//
// A SEPARATE lattice from diff_runner's (the CaseParams seed-stability
// contract stays untouched): each point builds one dataset, starts a real
// Server on a loopback TCP port, fires N concurrent clients with seeded
// mixed ppr/bfs/spmv workloads, and compares every response against a
// serial oracle — a second 1-thread GraphSession answering each request
// alone, with no batching, no cache, and no concurrency. The comparison is
// BITWISE when the server computes with one thread or the op is bfs (min
// is order-independent), and within 1e-9 relative tolerance otherwise
// (plus-reduction order varies under work stealing).
//
// Each point also exercises the caching contract (a repeated pass must be
// served from cache, verbatim) and the epoch contract (bump-epoch forces a
// recompute that still matches the oracle). Fault injection (delayed /
// dropped batch flushes) stresses the deadline path: answers must stay
// correct, only latency may change.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "serve/batcher.h"

namespace ihtl::check {

struct ServeCheckOptions {
  std::uint64_t base_seed = 2026;
  std::size_t points = 4;
  unsigned force_clients = 0;  ///< 0 = lattice (2/4/8)
  unsigned force_threads = 0;  ///< 0 = lattice (biased to 1 = exact compare)
  unsigned queries_per_client = 6;
  serve::FlushFault fault;  ///< injected into every point's batcher
  bool verbose = false;
  std::ostream* out = nullptr;  ///< progress/diagnostics (nullptr = silent)
};

struct ServeCheckResult {
  bool ok = true;
  std::size_t points_run = 0;
  std::uint64_t queries_checked = 0;
  std::string failure;  ///< first failing point's description, empty if ok
};

/// Runs the serve lattice; every point is reproducible from
/// (base_seed, point index) alone.
ServeCheckResult run_serve_lattice(const ServeCheckOptions& opt);

}  // namespace ihtl::check
