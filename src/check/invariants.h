// Debug-build invariant hooks (the check subsystem's third leg, next to the
// oracle and the differential runner).
//
// Compiled in only under -DIHTL_CHECK_INVARIANTS (CMake option of the same
// name); in normal builds every macro expands to nothing, so hot paths keep
// their Release codegen. Hook sites live in ihtl_graph.cpp (edge-partition
// conservation, permutation bijectivity), ihtl_spmv.h (push-chunk tiling,
// per-thread buffer disjointness before merge), thread_pool.cpp (no nested
// jobs), and bfs.cpp / kcore.cpp (monotone frontier / peel).
//
// This header is intentionally dependency-free (stdio only) so that every
// layer — parallel/, core/, apps/ — can include it without cycles.
#pragma once

#ifdef IHTL_CHECK_INVARIANTS

#include <cstdio>
#include <cstdlib>

namespace ihtl::check {

/// Reports a violated invariant and aborts (so CI and sanitizer runs fail
/// loudly at the first violation, with the hook site in the backtrace).
[[noreturn]] inline void invariant_failure(const char* file, int line,
                                           const char* what) {
  std::fprintf(stderr, "IHTL_INVARIANT violated at %s:%d: %s\n", file, line,
               what);
  std::fflush(stderr);
  std::abort();
}

}  // namespace ihtl::check

/// Checks `cond` in invariant builds; no-op otherwise.
#define IHTL_INVARIANT(cond, msg)          \
  (static_cast<bool>(cond)                 \
       ? static_cast<void>(0)              \
       : ::ihtl::check::invariant_failure(__FILE__, __LINE__, msg))

/// Emits `...` (declarations/statements) only in invariant builds. Use for
/// check code whose setup would otherwise cost time or memory in Release.
#define IHTL_IF_INVARIANTS(...) __VA_ARGS__

#else  // !IHTL_CHECK_INVARIANTS

#define IHTL_INVARIANT(cond, msg) static_cast<void>(0)
#define IHTL_IF_INVARIANTS(...)

#endif  // IHTL_CHECK_INVARIANTS
