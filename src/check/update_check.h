// Mutation-differential check lattice for the streaming-update path.
//
// A SEPARATE lattice from diff_runner's and serve_check's (their seed
// streams stay untouched): each point builds one dataset and its iHTL
// layout, then REPLAYS a seeded stream of UpdateBatches through
// apply_update + update_ihtl_graph. After EVERY batch the incrementally
// maintained layout is checked against the from-scratch rebuild oracle:
//
//   1. structure — the patched IhtlGraph must satisfy valid(g_next), and so
//      must build_ihtl_graph(g_next, cfg); both therefore reconstruct the
//      SAME edge multiset (g_next's), which is structural equality of graph
//      semantics regardless of hub-set differences between the two layouts.
//   2. values — run_oracle over the PATCHED layout (prebuilt_ihtl): the
//      iHTL engine driven through the incremental blocks must match the
//      serial reference on g_next, for spmv_plus plus one drawn workload.
//   3. policy — a negative threshold (the forced-rebuild mode) must rebuild
//      on every non-empty batch; drift/threshold accounting is pinned by
//      unit tests, the lattice checks the end-to-end contract.
//
// Fault injection rides along: some points append a poisoned batch (remove
// of a missing edge, or an endpoint outside the fixed vertex set) that must
// throw std::invalid_argument and leave the replayed state untouched — the
// "partial batch" failure mode the strong exception guarantee forbids.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>

#include "graph/types.h"

namespace ihtl::check {

/// One point's drawn configuration. The draw order is FROZEN (append-only,
/// like CaseParams::draw) — tests golden-pin draw(424242), so new knobs
/// must be appended at the END of draw(), never inserted.
struct UpdatePointParams {
  std::uint64_t seed = 0;
  std::string dataset;
  std::size_t buffer_values = 1024;  ///< hubs per block = this (8 B values)
  eid_t min_hub_in_degree = 2;
  unsigned threads = 1;
  /// 0 = drawn threshold, 1 = forced rebuild (-1), 2 = forced incremental
  /// (1e9; the FV->hub fallback may still rebuild).
  int threshold_mode = 0;
  double threshold = 0.1;  ///< resolved from the mode
  unsigned batches = 1;    ///< clamped to UpdateCheckOptions::max_batches
  bool poison = false;     ///< append a must-reject batch at the end
  int poison_kind = 0;     ///< 0 = remove missing edge, 1 = endpoint >= n

  static UpdatePointParams draw(std::uint64_t seed);
  std::string describe() const;
};

struct UpdateCheckOptions {
  std::uint64_t base_seed = 2026;
  std::size_t points = 8;
  unsigned max_batches = 4;  ///< cap on drawn batches per point
  /// Overrides every point's threshold (and mode): the CI forced-rebuild
  /// pass sets -1 so each point also exercises the from-scratch path.
  std::optional<double> force_threshold;
  bool verbose = false;
  std::ostream* out = nullptr;
};

struct UpdateCheckResult {
  bool ok = true;
  std::size_t points_run = 0;
  std::uint64_t batches_checked = 0;
  std::uint64_t rebuilds = 0;     ///< batches that took the rebuild path
  std::uint64_t incremental = 0;  ///< batches patched in place
  std::uint64_t oracle_runs = 0;  ///< run_oracle invocations, all workloads
  std::uint64_t faults_injected = 0;  ///< poisoned batches that threw
  std::string failure;  ///< first failing point's description, empty if ok
};

/// Runs the mutation lattice; every point is reproducible from
/// (base_seed, point index) alone.
UpdateCheckResult run_update_lattice(const UpdateCheckOptions& opt);

}  // namespace ihtl::check
