#include "check/shard_check.h"

#include <cstring>
#include <ostream>
#include <sstream>

#include "check/diff_runner.h"
#include "check/oracle.h"
#include "core/ihtl_graph.h"
#include "core/ihtl_spmv.h"
#include "core/sharded_engine.h"
#include "gen/rng.h"
#include "parallel/thread_pool.h"
#include "telemetry/metrics.h"

namespace ihtl::check {

namespace {

std::vector<value_t> random_input(vid_t n, std::uint64_t seed) {
  std::vector<value_t> x(n);
  Rng rng(seed);
  for (auto& v : x) v = rng.next_double();
  return x;
}

/// Small-integer input: plus-monoid sums over these are exact in double
/// for any combine order, so sharded vs unsharded must agree bitwise.
std::vector<value_t> integer_input(vid_t n, std::uint64_t seed) {
  std::vector<value_t> x(n);
  Rng rng(seed);
  for (auto& v : x) v = static_cast<value_t>(rng.next_below(16));
  return x;
}

bool bitwise_equal(const std::vector<value_t>& a,
                   const std::vector<value_t>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(value_t)) == 0);
}

/// Runs `iters` feed-forward SpMV iterations through both engines on the
/// same input and returns the first iteration whose outputs differ bitwise
/// (-1 = none). `Monoid` and the input generator are the caller's choice
/// of exactness argument (see header).
template <typename Monoid>
int first_bitwise_divergence(ThreadPool& pool, const IhtlGraph& ig,
                             PushPolicy policy, std::size_t shards,
                             std::vector<value_t> x, unsigned iters,
                             std::size_t batch) {
  const std::size_t n = ig.num_vertices();
  IhtlEngine<Monoid> reference(ig, pool, policy);
  ShardedEngine<Monoid> sharded(ig, pool, shards, policy);
  std::vector<value_t> xb(n * batch), ya(n * batch), yb(n * batch);
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t lane = 0; lane < batch; ++lane) {
      xb[v * batch + lane] = x[v];  // identical lanes: lane 0 is the case
    }
  }
  for (unsigned it = 0; it < iters; ++it) {
    if (batch == 1) {
      reference.spmv(xb, ya);
      sharded.spmv(xb, yb);
    } else {
      reference.spmv_batch(xb, ya, batch);
      sharded.spmv_batch(xb, yb, batch);
    }
    if (!bitwise_equal(ya, yb)) return static_cast<int>(it);
    xb = ya;
  }
  return -1;
}

std::string describe_point(std::size_t index, std::uint64_t seed,
                           const CaseParams& p) {
  std::ostringstream s;
  s << "shard point " << index << " (seed " << seed << ", "
    << p.describe() << ")";
  return s.str();
}

}  // namespace

ShardCheckResult run_shard_lattice(const ShardCheckOptions& opt) {
  ShardCheckResult res;
  auto& reg = telemetry::MetricsRegistry::global();
  for (std::size_t i = 0; i < opt.points; ++i) {
    const std::uint64_t seed = point_seed(opt.base_seed, i);
    CaseParams p = CaseParams::draw(seed);
    if (opt.force_threads > 0) p.threads = opt.force_threads;
    if (opt.verbose && opt.out) {
      (*opt.out) << "shard point " << i << " (seed " << seed << ", "
                 << p.describe() << ")\n";
    }

    // 1. Full oracle per shard count: the drawn workload (whatever it is)
    //    must match its serial reference with the sharded engine swapped
    //    in underneath.
    for (const std::size_t s : opt.shard_counts) {
      DiffOptions dopt;
      dopt.base_seed = opt.base_seed;
      dopt.force_threads = opt.force_threads;
      dopt.force_shards = s;
      const CaseResult r = run_point(seed, dopt);
      ++res.oracle_runs;
      if (!r.report.ok) {
        res.ok = false;
        res.failure = describe_point(i, seed, r.params) + " at --shards " +
                      std::to_string(s) + ": " + r.report.summary();
        return res;
      }
    }

    // 2. Exact-identity contracts, directly on the engines (new-ID space).
    const Graph g = make_case_graph(p);
    const IhtlConfig cfg = p.ihtl_config();
    const IhtlGraph ig = build_ihtl_graph(g, cfg);
    const vid_t n = g.num_vertices();
    const std::uint64_t x_seed = p.x_seed;
    {
      // S=1, one thread: same decomposition, same execution order — any
      // monoid, any input must agree bit for bit.
      ThreadPool pool(1);
      const int it = first_bitwise_divergence<PlusMonoid>(
          pool, ig, p.push_policy, 1, random_input(n, x_seed), 3, 1);
      if (it >= 0) {
        res.ok = false;
        res.failure = describe_point(i, seed, p) +
                      ": --shards 1 diverged bitwise from the unsharded "
                      "engine at 1 thread, iteration " +
                      std::to_string(it);
        return res;
      }
      ++res.bitwise_checks;
    }
    {
      // Any S, drawn thread count: exact integer sums (plus) and the
      // idempotent min monoid are combine-order-independent, so sharding
      // must not change a single bit.
      ThreadPool pool(p.threads);
      for (const std::size_t s : opt.shard_counts) {
        int it = first_bitwise_divergence<PlusMonoid>(
            pool, ig, p.push_policy, s, integer_input(n, x_seed), 3, 1);
        if (it < 0 && n > 0) {
          it = first_bitwise_divergence<PlusMonoid>(
              pool, ig, p.push_policy, s, integer_input(n, x_seed + 1), 2, 4);
        }
        if (it < 0) {
          it = first_bitwise_divergence<MinMonoid>(
              pool, ig, p.push_policy, s, random_input(n, x_seed), 2, 1);
        }
        if (it >= 0) {
          res.ok = false;
          res.failure = describe_point(i, seed, p) + " at --shards " +
                        std::to_string(s) +
                        ": order-independent workload diverged bitwise from "
                        "the unsharded engine, iteration " +
                        std::to_string(it);
          return res;
        }
        ++res.bitwise_checks;
      }
    }

    // 3. Exchange-corruption self-test: corrupting one shard's gathered
    //    slice must surface as an oracle divergence. Skipped when no shard
    //    gathers anything (tiny or edgeless points).
    if (opt.inject_fault) {
      std::size_t max_s = 0;
      for (const std::size_t s : opt.shard_counts) max_s = std::max(max_s, s);
      int victim = -1;
      if (max_s >= 2 && n > 0) {
        ThreadPool pool(p.threads);
        ShardedEngine<PlusMonoid> probe(ig, pool, max_s, p.push_policy);
        for (std::size_t s = 0; s < probe.num_shards(); ++s) {
          if (!probe.shard(s).remote_sources.empty()) {
            victim = static_cast<int>(s);
            break;
          }
        }
      }
      if (victim < 0) {
        ++res.faults_skipped;
      } else {
        ThreadPool pool(p.threads);
        OracleOptions oopt;
        oopt.workload = Workload::spmv_plus;
        oopt.x_seed = p.x_seed;
        oopt.shards = max_s;
        oopt.corrupt_exchange_shard = victim;
        const OracleReport rep = run_oracle(pool, g, cfg, oopt);
        ++res.faults_injected;
        if (rep.ok) {
          res.ok = false;
          res.failure = describe_point(i, seed, p) +
                        ": corrupted exchange slice of shard " +
                        std::to_string(victim) + " at --shards " +
                        std::to_string(max_s) +
                        " went UNDETECTED by the oracle";
          return res;
        }
      }
    }

    ++res.points_run;
    reg.counter("check/shard_points_run").inc(0);
  }
  return res;
}

}  // namespace ihtl::check
