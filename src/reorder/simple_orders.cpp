#include <algorithm>
#include <numeric>

#include "gen/rng.h"
#include "reorder/reorder.h"

namespace ihtl {

std::vector<vid_t> degree_order(const Graph& g) {
  const vid_t n = g.num_vertices();
  std::vector<vid_t> by_degree(n);
  std::iota(by_degree.begin(), by_degree.end(), vid_t{0});
  std::stable_sort(by_degree.begin(), by_degree.end(), [&](vid_t a, vid_t b) {
    const eid_t da = g.in_degree(a) + g.out_degree(a);
    const eid_t db = g.in_degree(b) + g.out_degree(b);
    return da > db;
  });
  std::vector<vid_t> perm(n);
  for (vid_t i = 0; i < n; ++i) perm[by_degree[i]] = i;
  return perm;
}

std::vector<vid_t> random_order(vid_t n, std::uint64_t seed) {
  std::vector<vid_t> perm(n);
  std::iota(perm.begin(), perm.end(), vid_t{0});
  Rng rng(seed);
  for (vid_t i = n; i > 1; --i) {
    const auto j = static_cast<vid_t>(rng.next_below(i));
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

}  // namespace ihtl
