#include <cstdint>
#include <queue>

#include "reorder/reorder.h"

namespace ihtl {

// GOrder [41]: place vertices greedily; a candidate's priority is the sum,
// over the last `window` placed vertices b, of
//    S_n(b, v) = 1 if there is an edge b->v or v->b, plus
//    S_s(b, v) = |common in-neighbours of b and v|.
// Incremental maintenance: when b enters (leaves) the window, priorities of
// affected candidates are incremented (decremented):
//    - out-neighbours v of b:   +1            (edge b->v)
//    - in-neighbours v of b:    +1            (edge v->b)
//    - for every in-neighbour u of b, every out-neighbour v of u: +1
//      (u is a common in-neighbour of b and v).
// A lazy max-heap holds (priority, vertex) snapshots; stale entries are
// skipped on pop. This is the standard published implementation strategy —
// and the reason GOrder preprocessing is orders of magnitude slower than
// iHTL's (Figure 8, right half).
std::vector<vid_t> gorder(const Graph& g, unsigned window) {
  const vid_t n = g.num_vertices();
  std::vector<vid_t> perm(n, 0);
  if (n == 0) return perm;
  if (window == 0) window = 1;

  std::vector<std::int64_t> priority(n, 0);
  std::vector<char> placed(n, 0);
  using Entry = std::pair<std::int64_t, vid_t>;  // (priority, vertex)
  std::priority_queue<Entry> heap;

  auto adjust = [&](vid_t b, std::int64_t delta) {
    auto bump = [&](vid_t v) {
      if (placed[v]) return;
      priority[v] += delta;
      if (delta > 0) heap.push({priority[v], v});
    };
    for (const vid_t v : g.out().neighbors(b)) bump(v);
    for (const vid_t v : g.in().neighbors(b)) bump(v);
    for (const vid_t u : g.in().neighbors(b)) {
      for (const vid_t v : g.out().neighbors(u)) bump(v);
    }
  };

  // Start from the maximum in-degree vertex (as in the reference code).
  vid_t seed = 0;
  for (vid_t v = 1; v < n; ++v) {
    if (g.in_degree(v) > g.in_degree(seed)) seed = v;
  }

  std::vector<vid_t> window_ring(window, n);  // n = empty slot
  vid_t next_id = 0;
  vid_t current = seed;
  for (vid_t placed_count = 0; placed_count < n; ++placed_count) {
    placed[current] = 1;
    perm[current] = next_id++;

    // Slide the window: evict the vertex falling out, insert `current`.
    const std::size_t slot = placed_count % window;
    if (window_ring[slot] != n) adjust(window_ring[slot], -1);
    window_ring[slot] = current;
    adjust(current, +1);

    // Next: highest-priority unplaced vertex (lazy heap; may be stale).
    vid_t next_vertex = n;
    while (!heap.empty()) {
      const auto [pri, v] = heap.top();
      heap.pop();
      if (!placed[v] && pri == priority[v]) {
        next_vertex = v;
        break;
      }
    }
    if (next_vertex == n) {
      // Heap drained (disconnected region): pick the unplaced vertex with
      // the highest in-degree.
      eid_t best_deg = 0;
      for (vid_t v = 0; v < n; ++v) {
        if (!placed[v] && (next_vertex == n || g.in_degree(v) > best_deg)) {
          next_vertex = v;
          best_deg = g.in_degree(v);
        }
      }
      if (next_vertex == n) break;  // all placed
    }
    current = next_vertex;
  }
  return perm;
}

}  // namespace ihtl
