#include <algorithm>
#include <numeric>

#include "reorder/reorder.h"

namespace ihtl {

namespace {

/// Union-find over vertex IDs with union by size.
class UnionFind {
 public:
  explicit UnionFind(vid_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), vid_t{0});
  }
  vid_t find(vid_t v) {
    while (parent_[v] != v) {
      parent_[v] = parent_[parent_[v]];
      v = parent_[v];
    }
    return v;
  }
  void unite(vid_t a, vid_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
  }
  vid_t component_size(vid_t v) { return size_[find(v)]; }

 private:
  std::vector<vid_t> parent_;
  std::vector<vid_t> size_;
};

}  // namespace

std::vector<vid_t> slashburn_order(const Graph& g, SlashBurnParams p) {
  const vid_t n = g.num_vertices();
  std::vector<vid_t> perm(n, 0);
  if (n == 0) return perm;

  const vid_t k = std::max<vid_t>(
      1, static_cast<vid_t>(p.k_fraction * static_cast<double>(n)));

  std::vector<char> active(n, 1);   // still in the shrinking giant component
  std::vector<vid_t> degree(n, 0);  // degree within the active subgraph
  vid_t front = 0;  // next low ID to hand out (hubs)
  vid_t back = n;   // one past the next high ID to hand out (spokes)

  auto active_degree = [&](vid_t v) {
    vid_t d = 0;
    for (const vid_t u : g.out().neighbors(v)) d += active[u];
    for (const vid_t u : g.in().neighbors(v)) d += active[u];
    return d;
  };

  std::vector<vid_t> order_buf;
  for (std::size_t iter = 0; iter < p.max_iterations && front < back; ++iter) {
    // Gather active vertices and their degrees within the active subgraph.
    order_buf.clear();
    for (vid_t v = 0; v < n; ++v) {
      if (active[v]) {
        degree[v] = active_degree(v);
        order_buf.push_back(v);
      }
    }
    if (order_buf.empty()) break;
    if (order_buf.size() <= k) {
      // Remainder smaller than one slash: hand out front IDs and stop.
      std::sort(order_buf.begin(), order_buf.end(), [&](vid_t a, vid_t b) {
        return degree[a] != degree[b] ? degree[a] > degree[b] : a < b;
      });
      for (const vid_t v : order_buf) {
        perm[v] = front++;
        active[v] = 0;
      }
      break;
    }

    // Slash: k highest-degree vertices go to the front.
    std::partial_sort(order_buf.begin(), order_buf.begin() + k,
                      order_buf.end(), [&](vid_t a, vid_t b) {
                        return degree[a] != degree[b] ? degree[a] > degree[b]
                                                      : a < b;
                      });
    for (vid_t i = 0; i < k; ++i) {
      perm[order_buf[i]] = front++;
      active[order_buf[i]] = 0;
    }

    // Burn: find connected components of the remainder (undirected view);
    // every non-giant ("spoke") vertex goes to the back.
    UnionFind uf(n);
    for (vid_t v = 0; v < n; ++v) {
      if (!active[v]) continue;
      for (const vid_t u : g.out().neighbors(v)) {
        if (active[u]) uf.unite(v, u);
      }
    }
    vid_t giant_root = n;
    vid_t giant_size = 0;
    for (vid_t v = 0; v < n; ++v) {
      if (active[v] && uf.component_size(v) > giant_size) {
        giant_size = uf.component_size(v);
        giant_root = uf.find(v);
      }
    }
    // Spokes taken in descending vertex order so the back region fills from
    // the end, keeping small components contiguous.
    for (vid_t v = n; v-- > 0;) {
      if (active[v] && uf.find(v) != giant_root) {
        perm[v] = --back;
        active[v] = 0;
      }
    }
  }

  // Safety: any vertex not yet placed (max_iterations hit) gets front IDs.
  for (vid_t v = 0; v < n; ++v) {
    if (active[v]) perm[v] = front++;
  }
  return perm;
}

}  // namespace ihtl
