// Locality-optimizing relabeling algorithms (the paper's Section 4.5
// comparison set), implemented from their original publications:
//   - SlashBurn [24]: iterative hub removal + spoke separation.
//   - GOrder [41]: windowed greedy ordering maximizing sibling/neighbour
//     score within a sliding window of w recently placed vertices.
//   - Rabbit-Order [2]: modularity-driven community aggregation followed by
//     DFS numbering of the merge dendrogram.
// Plus two controls: descending-degree sort and a seeded random shuffle.
//
// All functions return a permutation mapping OLD id -> NEW id.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace ihtl {

/// SlashBurn parameters.
struct SlashBurnParams {
  /// Hubs removed per iteration, as a fraction of |V| (the paper's k).
  double k_fraction = 0.005;
  std::size_t max_iterations = 1000;
};

/// SlashBurn: per round, the k highest-degree vertices of the remaining
/// giant component move to the front of the order, non-giant connected
/// components ("spokes") move to the back; repeats on the giant component.
std::vector<vid_t> slashburn_order(const Graph& g, SlashBurnParams p = {});

/// GOrder: greedy placement maximizing, over a window of the last `window`
/// placed vertices, the sum of (a) direct edges to the candidate and
/// (b) common in-neighbours with the candidate. Uses a lazy max-heap.
/// Deliberately expensive — its preprocessing cost is part of Figure 8.
std::vector<vid_t> gorder(const Graph& g, unsigned window = 5);

/// Rabbit-Order: greedy modularity aggregation (vertices visited in
/// ascending degree) building a merge forest; new IDs assigned by DFS over
/// that forest so each community becomes a contiguous ID range.
std::vector<vid_t> rabbit_order(const Graph& g);

/// Descending total-degree sort (stable).
std::vector<vid_t> degree_order(const Graph& g);

/// Seeded uniform random permutation (locality-destroying control).
std::vector<vid_t> random_order(vid_t n, std::uint64_t seed);

}  // namespace ihtl
