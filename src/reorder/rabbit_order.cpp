#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "reorder/reorder.h"

namespace ihtl {

// Rabbit-Order [2]: hierarchical community aggregation.
//
// Vertices are visited in ascending total-degree order; each vertex merges
// into the neighbouring community with the highest modularity gain
//     dQ ~ w(v,c)/m - deg(v)*deg(c)/(2 m^2)
// (undirected view of the graph). Merges form a forest; the final order is
// a DFS over that forest, so every community — and recursively every
// sub-community — occupies a contiguous new-ID range. This reproduces the
// algorithm's "just-in-time" flavour: one pass, no global optimization.
std::vector<vid_t> rabbit_order(const Graph& g) {
  const vid_t n = g.num_vertices();
  std::vector<vid_t> perm(n, 0);
  if (n == 0) return perm;
  const double m2 = 2.0 * static_cast<double>(std::max<eid_t>(1, g.num_edges()));

  // Union-find over communities, tracking aggregate degree.
  std::vector<vid_t> parent(n);
  std::iota(parent.begin(), parent.end(), vid_t{0});
  std::vector<double> comm_degree(n, 0.0);
  std::vector<eid_t> total_degree(n, 0);
  for (vid_t v = 0; v < n; ++v) {
    total_degree[v] = g.in_degree(v) + g.out_degree(v);
    comm_degree[v] = static_cast<double>(total_degree[v]);
  }
  auto find = [&](vid_t v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];
      v = parent[v];
    }
    return v;
  };

  // Merge forest: children[c] lists vertices merged directly into c.
  std::vector<std::vector<vid_t>> children(n);
  std::vector<char> merged(n, 0);

  std::vector<vid_t> visit(n);
  std::iota(visit.begin(), visit.end(), vid_t{0});
  std::sort(visit.begin(), visit.end(), [&](vid_t a, vid_t b) {
    return total_degree[a] != total_degree[b]
               ? total_degree[a] < total_degree[b]
               : a < b;
  });

  std::unordered_map<vid_t, double> weight_to_comm;
  for (const vid_t v : visit) {
    weight_to_comm.clear();
    auto tally = [&](vid_t u) {
      if (u == v) return;
      weight_to_comm[find(u)] += 1.0;
    };
    for (const vid_t u : g.out().neighbors(v)) tally(u);
    for (const vid_t u : g.in().neighbors(v)) tally(u);

    const vid_t v_root = find(v);
    const double dv = static_cast<double>(total_degree[v]);
    vid_t best_comm = n;
    double best_gain = 0.0;
    for (const auto& [c, w] : weight_to_comm) {
      if (c == v_root) continue;
      const double gain = w / m2 - dv * comm_degree[c] / (m2 * m2) * 2.0;
      if (gain > best_gain) {
        best_gain = gain;
        best_comm = c;
      }
    }
    if (best_comm == n) continue;  // no positive-gain merge: v stays a root
    // Merge v's community into best_comm.
    parent[v_root] = best_comm;
    comm_degree[best_comm] += comm_degree[v_root];
    children[best_comm].push_back(v_root == v ? v : v_root);
    merged[v_root] = 1;
  }

  // DFS over the merge forest: roots in ascending ID, children in merge
  // order. Each vertex receives its new ID at first visit.
  vid_t next_id = 0;
  std::vector<vid_t> stack;
  for (vid_t r = 0; r < n; ++r) {
    if (merged[r]) continue;  // not a root
    stack.push_back(r);
    while (!stack.empty()) {
      const vid_t v = stack.back();
      stack.pop_back();
      perm[v] = next_id++;
      // Children pushed in reverse so earliest merge is visited first.
      for (auto it = children[v].rbegin(); it != children[v].rend(); ++it) {
        stack.push_back(*it);
      }
    }
  }
  return perm;
}

}  // namespace ihtl
