// HITS (Hyperlink-Induced Topic Search) — the first pull-underpinned
// analytic the paper's introduction lists. Both half-steps are plus-SpMVs:
//    authority[v] = sum of hub[u]        over in-neighbours  u of v
//    hub[v]       = sum of authority[u]  over out-neighbours u of v
// The authority step is a pull over the CSC; the hub step is a pull over
// the REVERSED graph, which costs nothing to form (swap the CSR/CSC views).
// Both steps run on either the baseline pull kernel or two iHTL executors
// (one per direction) — demonstrating iHTL on a two-direction analytic.
#pragma once

#include <vector>

#include "core/ihtl_config.h"
#include "graph/graph.h"
#include "parallel/thread_pool.h"

namespace ihtl {

enum class HitsKernel { pull, ihtl };

struct HitsOptions {
  unsigned iterations = 20;
  HitsKernel kernel = HitsKernel::pull;
  IhtlConfig ihtl;  ///< used when kernel == ihtl (applied to both directions)
};

struct HitsResult {
  std::vector<value_t> authority;  ///< L2-normalized, original-ID space
  std::vector<value_t> hub;        ///< L2-normalized, original-ID space
  double seconds_per_iteration = 0.0;
  double preprocessing_seconds = 0.0;
};

/// Runs `iterations` full HITS rounds (authority update, hub update, each
/// followed by L2 normalization).
HitsResult hits(ThreadPool& pool, const Graph& g, const HitsOptions& opt = {});

/// The reversed view of g: out-edges become in-edges. O(1) — shares no
/// work with transpose(); simply swaps which adjacency is which.
inline Graph reversed(const Graph& g) { return Graph(g.in(), g.out()); }

}  // namespace ihtl
