#include "apps/triangle_count.h"

#include <algorithm>
#include <cmath>

#include "parallel/parallel_for.h"
#include "parallel/timer.h"

namespace ihtl {

namespace {

/// Orientation rank: lower (degree, id) first. Orienting edges toward the
/// higher rank bounds every oriented out-degree by O(sqrt(m)).
struct RankedAdjacency {
  Adjacency oriented;             // out-lists, rank-ascending & sorted
  std::vector<vid_t> rank_of;     // vertex -> rank
};

RankedAdjacency orient_by_degree(const Graph& g) {
  const vid_t n = g.num_vertices();
  std::vector<vid_t> by_rank(n);
  for (vid_t v = 0; v < n; ++v) by_rank[v] = v;
  std::sort(by_rank.begin(), by_rank.end(), [&](vid_t a, vid_t b) {
    const eid_t da = g.out_degree(a), db = g.out_degree(b);
    return da != db ? da < db : a < b;
  });
  RankedAdjacency r;
  r.rank_of.assign(n, 0);
  for (vid_t i = 0; i < n; ++i) r.rank_of[by_rank[i]] = i;

  // Keep only edges (v, u) with rank(u) > rank(v); store u as-is, sorted.
  r.oriented.offsets.assign(static_cast<std::size_t>(n) + 1, 0);
  for (vid_t v = 0; v < n; ++v) {
    eid_t cnt = 0;
    for (const vid_t u : g.out().neighbors(v)) {
      if (r.rank_of[u] > r.rank_of[v]) ++cnt;
    }
    r.oriented.offsets[v + 1] = cnt;
  }
  for (std::size_t i = 1; i < r.oriented.offsets.size(); ++i) {
    r.oriented.offsets[i] += r.oriented.offsets[i - 1];
  }
  r.oriented.targets.resize(r.oriented.offsets.back());
  std::vector<eid_t> cursor(r.oriented.offsets.begin(),
                            r.oriented.offsets.end() - 1);
  for (vid_t v = 0; v < n; ++v) {
    for (const vid_t u : g.out().neighbors(v)) {
      if (r.rank_of[u] > r.rank_of[v]) {
        r.oriented.targets[cursor[v]++] = u;
      }
    }
  }
  r.oriented.sort_all_neighbor_lists();
  return r;
}

std::uint64_t merge_intersect(std::span<const vid_t> a,
                              std::span<const vid_t> b) {
  std::uint64_t count = 0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

}  // namespace

TriangleCountResult count_triangles(ThreadPool& pool, const Graph& g,
                                    const TriangleCountOptions& opt) {
  Timer timer;
  TriangleCountResult result;
  const vid_t n = g.num_vertices();
  if (n == 0) return result;

  const RankedAdjacency ranked = orient_by_degree(g);
  const Adjacency& adj = ranked.oriented;

  const eid_t threshold =
      opt.hub_degree_threshold
          ? opt.hub_degree_threshold
          : static_cast<eid_t>(
                std::sqrt(static_cast<double>(g.num_edges())) / 2) +
                8;

  // Hub vertices (by oriented out-degree) get a neighbour bitmap so probes
  // against them cost O(1) — the degree-differentiated treatment.
  std::vector<vid_t> hub_index(n, ~vid_t{0});
  std::vector<vid_t> hubs;
  for (vid_t v = 0; v < n; ++v) {
    if (adj.degree(v) > threshold) {
      hub_index[v] = static_cast<vid_t>(hubs.size());
      hubs.push_back(v);
    }
  }
  result.hub_vertices = static_cast<vid_t>(hubs.size());
  const std::size_t words = (static_cast<std::size_t>(n) + 63) / 64;
  std::vector<std::uint64_t> bitmaps(words * hubs.size(), 0);
  for (std::size_t h = 0; h < hubs.size(); ++h) {
    std::uint64_t* bits = bitmaps.data() + h * words;
    for (const vid_t u : adj.neighbors(hubs[h])) {
      bits[u >> 6] |= std::uint64_t{1} << (u & 63);
    }
  }

  result.triangles = parallel_reduce<std::uint64_t>(
      pool, 0, n, 0,
      [&](std::uint64_t vi, std::size_t) -> std::uint64_t {
        const auto v = static_cast<vid_t>(vi);
        const auto nbrs = adj.neighbors(v);
        std::uint64_t local = 0;
        for (const vid_t u : nbrs) {
          if (hub_index[u] != ~vid_t{0}) {
            // Probe each of v's remaining out-neighbours against u's bitmap.
            const std::uint64_t* bits =
                bitmaps.data() + static_cast<std::size_t>(hub_index[u]) * words;
            for (const vid_t w : nbrs) {
              if (ranked.rank_of[w] > ranked.rank_of[u] &&
                  (bits[w >> 6] >> (w & 63)) & 1) {
                ++local;
              }
            }
          } else {
            local += merge_intersect(nbrs, adj.neighbors(u));
          }
        }
        return local;
      },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });

  result.seconds = timer.elapsed_seconds();
  return result;
}

std::uint64_t count_triangles_serial(const Graph& g) {
  const RankedAdjacency ranked = orient_by_degree(g);
  const Adjacency& adj = ranked.oriented;
  std::uint64_t total = 0;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    for (const vid_t u : adj.neighbors(v)) {
      total += merge_intersect(adj.neighbors(v), adj.neighbors(u));
    }
  }
  return total;
}

}  // namespace ihtl
