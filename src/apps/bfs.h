// Frontier-based BFS with direction optimization — the "push OR pull"
// family the paper contrasts itself against (Section 5.2, [3, 5]). Those
// systems pick ONE direction per step based on frontier density; iHTL picks
// a direction per VERTEX CLASS within a single traversal. This module
// provides the per-step-switching baseline:
//   - top-down (push): frontier vertices relax their out-neighbours;
//   - bottom-up (pull): unvisited vertices scan in-neighbours for a parent;
//   - direction-optimizing: switch by Beamer's alpha/beta heuristic.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "parallel/thread_pool.h"

namespace ihtl {

enum class BfsMode {
  top_down,              ///< push every step
  bottom_up,             ///< pull every step
  direction_optimizing,  ///< Beamer's switching heuristic [3]
};

struct BfsOptions {
  BfsMode mode = BfsMode::direction_optimizing;
  /// Switch to bottom-up when frontier out-edges exceed remaining/alpha.
  double alpha = 15.0;
  /// Switch back to top-down when frontier shrinks below |V|/beta.
  double beta = 18.0;
};

struct BfsResult {
  /// Level of each vertex (kUnreached if not reachable).
  std::vector<std::int64_t> level;
  static constexpr std::int64_t kUnreached = -1;
  unsigned steps = 0;
  unsigned bottom_up_steps = 0;  ///< how many steps ran in pull direction
  double seconds = 0.0;
};

/// BFS from `source`. Deterministic level assignment (levels are unique
/// regardless of traversal order; parents are not tracked).
BfsResult bfs(ThreadPool& pool, const Graph& g, vid_t source,
              const BfsOptions& opt = {});

}  // namespace ihtl
