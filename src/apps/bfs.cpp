#include "apps/bfs.h"

#include <atomic>

#include "check/invariants.h"
#include "parallel/parallel_for.h"
#include "parallel/timer.h"

namespace ihtl {

namespace {

/// Shared BFS state: levels double as the visited set.
struct State {
  std::vector<std::atomic<std::int64_t>> level;
  explicit State(vid_t n) : level(n) {
    for (auto& l : level) l.store(BfsResult::kUnreached,
                                  std::memory_order_relaxed);
  }
};

/// Top-down step: every frontier vertex pushes to unvisited out-neighbours.
/// Returns the next frontier (as a vertex list) and its out-edge count.
std::pair<std::vector<vid_t>, eid_t> top_down_step(
    ThreadPool& pool, const Graph& g, const std::vector<vid_t>& frontier,
    State& state, std::int64_t depth) {
  const std::size_t nt = pool.size();
  std::vector<std::vector<vid_t>> next_local(nt);
  parallel_for(pool, 0, frontier.size(), [&](std::uint64_t i, std::size_t tid) {
    const vid_t u = frontier[i];
    for (const vid_t t : g.out().neighbors(u)) {
      std::int64_t expected = BfsResult::kUnreached;
      if (state.level[t].compare_exchange_strong(expected, depth,
                                                 std::memory_order_relaxed)) {
        next_local[tid].push_back(t);
      }
    }
  });
  std::vector<vid_t> next;
  eid_t out_edges = 0;
  for (auto& local : next_local) {
    for (const vid_t v : local) {
      next.push_back(v);
      out_edges += g.out_degree(v);
    }
  }
  return {std::move(next), out_edges};
}

/// Bottom-up step: every unvisited vertex scans its in-neighbours for one
/// at depth-1; first hit claims it (no contention: one writer per vertex).
std::pair<std::vector<vid_t>, eid_t> bottom_up_step(ThreadPool& pool,
                                                    const Graph& g,
                                                    State& state,
                                                    std::int64_t depth) {
  const std::size_t nt = pool.size();
  std::vector<std::vector<vid_t>> next_local(nt);
  parallel_for(pool, 0, g.num_vertices(), [&](std::uint64_t vi,
                                              std::size_t tid) {
    const auto v = static_cast<vid_t>(vi);
    if (state.level[v].load(std::memory_order_relaxed) !=
        BfsResult::kUnreached) {
      return;
    }
    for (const vid_t u : g.in().neighbors(v)) {
      if (state.level[u].load(std::memory_order_relaxed) == depth - 1) {
        state.level[v].store(depth, std::memory_order_relaxed);
        next_local[tid].push_back(v);
        break;
      }
    }
  });
  std::vector<vid_t> next;
  eid_t out_edges = 0;
  for (auto& local : next_local) {
    for (const vid_t v : local) {
      next.push_back(v);
      out_edges += g.out_degree(v);
    }
  }
  return {std::move(next), out_edges};
}

}  // namespace

BfsResult bfs(ThreadPool& pool, const Graph& g, vid_t source,
              const BfsOptions& opt) {
  Timer timer;
  BfsResult result;
  const vid_t n = g.num_vertices();
  if (n == 0) return result;
  State state(n);
  state.level[source].store(0, std::memory_order_relaxed);

  std::vector<vid_t> frontier = {source};
  eid_t frontier_out_edges = g.out_degree(source);
  eid_t remaining_edges = g.num_edges();
  std::int64_t depth = 1;

  while (!frontier.empty()) {
    bool go_bottom_up = false;
    switch (opt.mode) {
      case BfsMode::top_down:
        break;
      case BfsMode::bottom_up:
        go_bottom_up = true;
        break;
      case BfsMode::direction_optimizing:
        // Beamer: bottom-up pays off when the frontier covers a large edge
        // share; top-down when it is small.
        go_bottom_up = static_cast<double>(frontier_out_edges) >
                           static_cast<double>(remaining_edges) / opt.alpha &&
                       frontier.size() > n / opt.beta / opt.beta;
        if (frontier.size() > n / opt.beta) go_bottom_up = true;
        break;
    }

    std::pair<std::vector<vid_t>, eid_t> next;
    if (go_bottom_up) {
      next = bottom_up_step(pool, g, state, depth);
      ++result.bottom_up_steps;
    } else {
      next = top_down_step(pool, g, frontier, state, depth);
    }
    remaining_edges -= std::min(remaining_edges, frontier_out_edges);
    frontier = std::move(next.first);
    frontier_out_edges = next.second;
    // Monotone-frontier invariant: every vertex claimed this step carries
    // exactly the current depth (a smaller level would mean a visited vertex
    // was re-claimed; a larger one, a skipped level).
    IHTL_IF_INVARIANTS(for (const vid_t v : frontier) {
      IHTL_INVARIANT(
          state.level[v].load(std::memory_order_relaxed) == depth,
          "BFS frontier vertex level does not match the current depth");
    })
    ++result.steps;
    ++depth;
  }

  result.level.resize(n);
  for (vid_t v = 0; v < n; ++v) {
    result.level[v] = state.level[v].load(std::memory_order_relaxed);
  }
  result.seconds = timer.elapsed_seconds();
  return result;
}

}  // namespace ihtl
