// The future-work analytics (Section 6): Connected Components and
// BFS/unit-weight SSSP, expressed as fixpoints of min-monoid SpMVs so they
// run on either the pull baseline or the iHTL executor. "Irregular datasets
// require irregular traversals" applies beyond PageRank.
#pragma once

#include <span>
#include <vector>

#include "core/ihtl_config.h"
#include "core/ihtl_graph.h"
#include "graph/graph.h"
#include "parallel/thread_pool.h"

namespace ihtl {

/// Which executor drives the min-SpMV iterations.
enum class AnalyticsKernel { pull, ihtl };

/// Adds the reverse of every edge (then dedups). CC requires the symmetric
/// closure to find weakly-connected components with pull-only propagation.
Graph symmetrize(const Graph& g);

struct AnalyticsResult {
  std::vector<value_t> values;  ///< per-vertex result, original-ID space
  unsigned iterations = 0;      ///< rounds until fixpoint
  double seconds = 0.0;
  double preprocessing_seconds = 0.0;
};

/// Connected components by min-label propagation on a SYMMETRIC graph
/// (pass the result of symmetrize() for directed inputs). values[v] is the
/// smallest original vertex ID in v's component.
AnalyticsResult connected_components(ThreadPool& pool, const Graph& g,
                                     AnalyticsKernel kernel,
                                     const IhtlConfig& cfg = {});

/// Unit-weight SSSP (== BFS level) from `source` by Bellman-Ford rounds:
/// dist_v = min over u in N-(v) of dist_u + 1. Unreachable vertices get
/// +infinity.
AnalyticsResult sssp_unit(ThreadPool& pool, const Graph& g, vid_t source,
                          AnalyticsKernel kernel, const IhtlConfig& cfg = {});

/// Multi-source BFS: one level vector per source, all k = sources.size()
/// frontiers advanced together by batched min-SpMV rounds (every edge is
/// traversed once per round for all sources). `values` comes back as a
/// vertex-major n×k array in the original ID space — lane l of vertex v at
/// v*k + l holds v's BFS level from sources[l] (+infinity if unreached).
/// Rounds continue until no lane improves.
AnalyticsResult bfs_multi_source(ThreadPool& pool, const Graph& g,
                                 std::span<const vid_t> sources,
                                 AnalyticsKernel kernel,
                                 const IhtlConfig& cfg = {});

}  // namespace ihtl
