#include "apps/pagerank_delta.h"

#include <atomic>
#include <cmath>
#include <stdexcept>

#include "baselines/spmv.h"
#include "parallel/parallel_for.h"
#include "parallel/timer.h"

namespace ihtl {

namespace {

/// Power iteration in delta form from an arbitrary starting vector. With
/// rank_0 = `rank`, the first round computes the TRUE first delta
/// (base + dA(rank_0) - rank_0, every vertex active); each later round
/// propagates only the deltas of the surviving frontier. For the uniform
/// start this reduces exactly to the original PageRank-Delta recurrence.
PageRankDeltaResult pagerank_delta_core(ThreadPool& pool, const Graph& g,
                                        std::vector<value_t> rank,
                                        const PageRankDeltaOptions& opt) {
  Timer timer;
  PageRankDeltaResult result;
  const vid_t n = g.num_vertices();
  if (n == 0) return result;

  std::vector<value_t> delta(n, 0.0);
  std::vector<char> frontier(n, 1);
  std::vector<value_t> x(n), ngh_sum(n);
  const value_t base = (1.0 - opt.damping) / n;

  std::uint64_t active = n;
  for (unsigned round = 0; round < opt.max_rounds && active > 0; ++round) {
    result.total_active += active;
    // Round 0 propagates the full starting ranks (delta_1 needs A·rank_0);
    // later rounds propagate active deltas only, which keeps the traversal
    // dense-pull (reusing the SpMV kernel) while preserving frontier
    // semantics — inactive vertices contribute 0.
    parallel_for(pool, 0, n, [&](std::uint64_t v, std::size_t) {
      const eid_t deg = g.out_degree(static_cast<vid_t>(v));
      const value_t num = round == 0 ? rank[v] : (frontier[v] ? delta[v] : 0);
      x[v] = deg ? num / static_cast<value_t>(deg) : 0.0;
    });
    spmv_pull(pool, g, x, ngh_sum);

    std::atomic<std::uint64_t> next_active{0};
    parallel_for(pool, 0, n, [&](std::uint64_t v, std::size_t) {
      value_t d = opt.damping * ngh_sum[v];
      if (round == 0) d += base - rank[v];  // delta_1 = rank_1 - rank_0
      rank[v] += d;
      delta[v] = d;
      const bool stays = std::abs(d) > opt.epsilon * rank[v];
      frontier[v] = stays;
      if (stays) next_active.fetch_add(1, std::memory_order_relaxed);
    });
    active = next_active.load();
    ++result.rounds;
  }
  result.ranks = std::move(rank);
  result.seconds = timer.elapsed_seconds();
  return result;
}

}  // namespace

PageRankDeltaResult pagerank_delta(ThreadPool& pool, const Graph& g,
                                   const PageRankDeltaOptions& opt) {
  const vid_t n = g.num_vertices();
  return pagerank_delta_core(
      pool, g, std::vector<value_t>(n, n ? 1.0 / n : 0.0), opt);
}

PageRankDeltaResult pagerank_delta_from(ThreadPool& pool, const Graph& g,
                                        std::span<const value_t> prev,
                                        const PageRankDeltaOptions& opt) {
  if (prev.size() != g.num_vertices()) {
    throw std::invalid_argument(
        "pagerank_delta_from: starting vector has " +
        std::to_string(prev.size()) + " entries for " +
        std::to_string(g.num_vertices()) + " vertices");
  }
  return pagerank_delta_core(
      pool, g, std::vector<value_t>(prev.begin(), prev.end()), opt);
}

}  // namespace ihtl
