#include "apps/pagerank_delta.h"

#include <atomic>
#include <cmath>

#include "baselines/spmv.h"
#include "parallel/parallel_for.h"
#include "parallel/timer.h"

namespace ihtl {

PageRankDeltaResult pagerank_delta(ThreadPool& pool, const Graph& g,
                                   const PageRankDeltaOptions& opt) {
  Timer timer;
  PageRankDeltaResult result;
  const vid_t n = g.num_vertices();
  if (n == 0) return result;

  // rank starts at the uniform vector and delta_k = rank_k - rank_{k-1};
  // with that framing delta_1 = base + dA(1/n) - 1/n and every later delta
  // is just dA(delta), so the accumulated rank IS the power-iteration
  // sequence.
  std::vector<value_t> rank(n, 1.0 / n);
  std::vector<value_t> delta(n, 1.0 / n);
  std::vector<char> frontier(n, 1);
  std::vector<value_t> x(n), ngh_sum(n);
  const value_t base = (1.0 - opt.damping) / n;

  std::uint64_t active = n;
  for (unsigned round = 0; round < opt.max_rounds && active > 0; ++round) {
    result.total_active += active;
    // Contribution of active vertices only; inactive ones propagate 0,
    // which keeps the traversal dense-pull (reusing the SpMV kernel) while
    // preserving frontier semantics.
    parallel_for(pool, 0, n, [&](std::uint64_t v, std::size_t) {
      const eid_t deg = g.out_degree(static_cast<vid_t>(v));
      x[v] = (frontier[v] && deg) ? delta[v] / static_cast<value_t>(deg)
                                  : 0.0;
    });
    spmv_pull(pool, g, x, ngh_sum);

    std::atomic<std::uint64_t> next_active{0};
    parallel_for(pool, 0, n, [&](std::uint64_t v, std::size_t) {
      value_t d = opt.damping * ngh_sum[v];
      if (round == 0) d += base - 1.0 / n;  // delta_1 = rank_1 - rank_0
      rank[v] += d;
      delta[v] = d;
      const bool stays = std::abs(d) > opt.epsilon * rank[v];
      frontier[v] = stays;
      if (stays) next_active.fetch_add(1, std::memory_order_relaxed);
    });
    active = next_active.load();
    ++result.rounds;
  }
  result.ranks = std::move(rank);
  result.seconds = timer.elapsed_seconds();
  return result;
}

}  // namespace ihtl
