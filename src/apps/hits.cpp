#include "apps/hits.h"

#include <cmath>
#include <memory>

#include "baselines/spmv.h"
#include "core/ihtl_spmv.h"
#include "parallel/parallel_for.h"
#include "parallel/timer.h"

namespace ihtl {

namespace {

void l2_normalize(ThreadPool& pool, std::vector<value_t>& v) {
  const double norm_sq = parallel_reduce<double>(
      pool, 0, v.size(), 0.0,
      [&](std::uint64_t i, std::size_t) { return v[i] * v[i]; },
      [](double a, double b) { return a + b; });
  const double norm = std::sqrt(norm_sq);
  if (norm == 0.0) return;
  parallel_for(pool, 0, v.size(),
               [&](std::uint64_t i, std::size_t) { v[i] /= norm; });
}

}  // namespace

HitsResult hits(ThreadPool& pool, const Graph& g, const HitsOptions& opt) {
  const vid_t n = g.num_vertices();
  HitsResult result;
  result.authority.assign(n, 1.0);
  result.hub.assign(n, 1.0);
  if (n == 0) return result;

  if (opt.kernel == HitsKernel::pull) {
    const Graph rev = reversed(g);
    Timer timer;
    for (unsigned it = 0; it < opt.iterations; ++it) {
      std::vector<value_t> auth_next(n), hub_next(n);
      spmv_pull(pool, g, result.hub, auth_next);      // in-neighbour sum
      l2_normalize(pool, auth_next);
      spmv_pull(pool, rev, auth_next, hub_next);      // out-neighbour sum
      l2_normalize(pool, hub_next);
      result.authority = std::move(auth_next);
      result.hub = std::move(hub_next);
    }
    result.seconds_per_iteration =
        opt.iterations ? timer.elapsed_seconds() / opt.iterations : 0.0;
    return result;
  }

  // iHTL: one preprocessed graph per direction. The forward iHTL graph
  // accelerates the authority pull (in-hubs); the reversed one accelerates
  // the hub pull (out-hubs of the original graph become in-hubs).
  Timer prep;
  const Graph rev = reversed(g);
  const IhtlGraph ig_fwd = build_ihtl_graph(g, opt.ihtl);
  const IhtlGraph ig_rev = build_ihtl_graph(rev, opt.ihtl);
  IhtlEngine<PlusMonoid> fwd(ig_fwd, pool, opt.ihtl.push_policy);
  IhtlEngine<PlusMonoid> bwd(ig_rev, pool, opt.ihtl.push_policy);
  result.preprocessing_seconds = prep.elapsed_seconds();

  // Iterate in each direction's relabeled space; translate between the two
  // spaces through original IDs each half-step.
  const auto& fwd_o2n = ig_fwd.old_to_new();
  const auto& rev_o2n = ig_rev.old_to_new();
  std::vector<value_t> hub_fwd(n), auth_fwd(n), auth_rev(n), hub_rev(n);
  for (vid_t v = 0; v < n; ++v) hub_fwd[fwd_o2n[v]] = result.hub[v];

  Timer timer;
  for (unsigned it = 0; it < opt.iterations; ++it) {
    fwd.spmv(hub_fwd, auth_fwd);
    l2_normalize(pool, auth_fwd);
    parallel_for(pool, 0, n, [&](std::uint64_t v, std::size_t) {
      auth_rev[rev_o2n[v]] = auth_fwd[fwd_o2n[v]];
    });
    bwd.spmv(auth_rev, hub_rev);
    l2_normalize(pool, hub_rev);
    parallel_for(pool, 0, n, [&](std::uint64_t v, std::size_t) {
      hub_fwd[fwd_o2n[v]] = hub_rev[rev_o2n[v]];
    });
  }
  result.seconds_per_iteration =
      opt.iterations ? timer.elapsed_seconds() / opt.iterations : 0.0;
  for (vid_t v = 0; v < n; ++v) {
    result.authority[v] = auth_fwd[fwd_o2n[v]];
    result.hub[v] = hub_rev[rev_o2n[v]];
  }
  return result;
}

}  // namespace ihtl
