#include "apps/kcore.h"

#include <atomic>

#include "check/invariants.h"
#include "parallel/parallel_for.h"
#include "parallel/timer.h"

namespace ihtl {

KCoreResult kcore_decomposition(ThreadPool& pool, const Graph& g) {
  Timer timer;
  KCoreResult result;
  const vid_t n = g.num_vertices();
  result.coreness.assign(n, 0);
  if (n == 0) return result;

  // Remaining degree per vertex. On a symmetric graph the out-degree IS the
  // undirected degree (in+out would double-count every reciprocal edge);
  // when v peels, each in-neighbour u loses its edge u->v.
  std::vector<std::atomic<std::int64_t>> degree(n);
  parallel_for(pool, 0, n, [&](std::uint64_t v, std::size_t) {
    degree[v].store(
        static_cast<std::int64_t>(g.out_degree(static_cast<vid_t>(v))),
        std::memory_order_relaxed);
  });
  std::vector<char> alive(n, 1);
  vid_t remaining = n;

  vid_t k = 1;
  while (remaining > 0) {
    // Peel all vertices of degree < k to a fixpoint; they have coreness
    // k-1. A vertex's removal may drag neighbours under the threshold
    // within the same k-phase.
    bool peeled_any = true;
    while (peeled_any) {
      peeled_any = false;
      std::atomic<vid_t> removed{0};
      const std::size_t nt = pool.size();
      std::vector<std::vector<vid_t>> peeled(nt);
      parallel_for(pool, 0, n, [&](std::uint64_t vi, std::size_t tid) {
        const auto v = static_cast<vid_t>(vi);
        if (!alive[v]) return;
        if (degree[v].load(std::memory_order_relaxed) <
            static_cast<std::int64_t>(k)) {
          peeled[tid].push_back(v);
        }
      });
      for (std::size_t t = 0; t < nt; ++t) {
        for (const vid_t v : peeled[t]) {
          // Monotone-peel invariant: a vertex is peeled at most once, and
          // only while its remaining degree is genuinely below k.
          IHTL_INVARIANT(alive[v], "k-core peeled a vertex twice");
          IHTL_INVARIANT(degree[v].load(std::memory_order_relaxed) <
                             static_cast<std::int64_t>(k),
                         "k-core peeled a vertex with degree >= k");
          alive[v] = 0;
          result.coreness[v] = k - 1;
          ++removed;
        }
      }
      // Decrement neighbours of everything peeled this wave.
      parallel_for(pool, 0, nt, [&](std::uint64_t t, std::size_t) {
        for (const vid_t v : peeled[t]) {
          for (const vid_t u : g.in().neighbors(v)) {
            degree[u].fetch_sub(1, std::memory_order_relaxed);
          }
        }
      });
      const vid_t r = removed.load();
      if (r > 0) {
        peeled_any = true;
        remaining -= r;
        ++result.peel_rounds;
      }
    }
    if (remaining > 0) {
      result.max_core = k;
      ++k;
    }
  }
  result.seconds = timer.elapsed_seconds();
  return result;
}

}  // namespace ihtl
