// k-core decomposition by parallel iterative peeling.
//
// The coreness of a vertex is the largest k such that it belongs to a
// subgraph where every vertex has degree >= k. Hubs — the vertices iHTL
// singles out — are exactly the deep-core vertices, so the decomposition is
// a useful structural companion to hub selection: `core_of(hub)` is high,
// fringe vertices peel away in the first rounds.
//
// Algorithm: synchronous peeling. Round k removes every remaining vertex
// with current degree < k until none remain, assigning coreness k-1; the
// undirected (in+out) degree is used.
#pragma once

#include <vector>

#include "graph/graph.h"
#include "parallel/thread_pool.h"

namespace ihtl {

struct KCoreResult {
  std::vector<vid_t> coreness;  ///< per vertex
  vid_t max_core = 0;           ///< degeneracy of the graph
  unsigned peel_rounds = 0;
  double seconds = 0.0;
};

/// Computes per-vertex coreness. Pass a SYMMETRIC graph (symmetrize(g)) for
/// the classical undirected definition; on a directed graph this peels by
/// remaining out-degree.
KCoreResult kcore_decomposition(ThreadPool& pool, const Graph& g);

}  // namespace ihtl
