// PageRank-Delta: frontier-based incremental PageRank (the Ligra-style
// member of the "push OR pull per step" family, Section 5.2). Instead of
// propagating full ranks each round, only vertices whose rank changed by
// more than epsilon * rank stay in the frontier and propagate their delta.
// With epsilon = 0 it degenerates to exact power iteration.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "parallel/thread_pool.h"

namespace ihtl {

struct PageRankDeltaOptions {
  double damping = 0.85;
  /// Frontier threshold: v stays active while |delta_v| > epsilon * rank_v.
  double epsilon = 1e-7;
  unsigned max_rounds = 100;
};

struct PageRankDeltaResult {
  std::vector<value_t> ranks;
  unsigned rounds = 0;
  /// Sum of frontier sizes over all rounds — the work saved vs dense
  /// iteration shows up here.
  std::uint64_t total_active = 0;
  double seconds = 0.0;
};

PageRankDeltaResult pagerank_delta(ThreadPool& pool, const Graph& g,
                                   const PageRankDeltaOptions& opt = {});

/// Warm-start variant — the consuming workload of the streaming-update
/// path: resumes power iteration from `prev` (typically the PRE-update
/// graph's converged ranks) instead of the uniform vector. The fixpoint is
/// a property of `g` alone, so the result matches the cold start within
/// the epsilon tolerance; the payoff is frontier work — after a small
/// UpdateBatch the old ranks are already near the new fixpoint, so
/// total_active collapses by an order of magnitude even when low-rank
/// stragglers keep the round count similar (measured by
/// bench/update_ingest).
/// Throws std::invalid_argument when prev.size() != g.num_vertices().
PageRankDeltaResult pagerank_delta_from(ThreadPool& pool, const Graph& g,
                                        std::span<const value_t> prev,
                                        const PageRankDeltaOptions& opt = {});

}  // namespace ihtl
