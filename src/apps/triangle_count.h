// Triangle counting with degree-differentiated treatment of vertices —
// the AYZ lineage the paper cites as the origin of "different traversals
// for different vertices" (Section 5.1), and one of the analytics its
// future-work section targets (Section 6).
//
// Algorithm: rank vertices by (degree, id); orient every undirected edge
// from lower to higher rank; count, for each vertex, the intersections of
// its out-list with its out-neighbours' out-lists. Each triangle is counted
// exactly once. The hybrid twist mirrors iHTL's hub-awareness: adjacency
// checks against LOW-degree vertices use sorted-merge intersection, checks
// against HUB-degree vertices use a bitmap of the hub's neighbours —
// O(1) per probe where the merge would be O(degree).
#pragma once

#include <cstdint>

#include "graph/graph.h"
#include "parallel/thread_pool.h"

namespace ihtl {

struct TriangleCountOptions {
  /// Vertices with oriented out-degree above this threshold get bitmap
  /// treatment. 0 = auto (sqrt of edge count, the AYZ split point).
  eid_t hub_degree_threshold = 0;
};

struct TriangleCountResult {
  std::uint64_t triangles = 0;
  vid_t hub_vertices = 0;  ///< vertices handled via the bitmap path
  double seconds = 0.0;
};

/// Counts triangles in the UNDIRECTED view of `g` (pass a symmetric graph,
/// e.g. symmetrize(g); each triangle counted once).
TriangleCountResult count_triangles(ThreadPool& pool, const Graph& g,
                                    const TriangleCountOptions& opt = {});

/// Reference O(sum deg^2) serial counter for testing (merge-only).
std::uint64_t count_triangles_serial(const Graph& g);

}  // namespace ihtl
