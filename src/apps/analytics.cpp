#include "apps/analytics.h"

#include <atomic>
#include <cmath>

#include "baselines/spmv.h"
#include "core/ihtl_spmv.h"
#include "parallel/parallel_for.h"
#include "parallel/timer.h"

namespace ihtl {

Graph symmetrize(const Graph& g) {
  std::vector<Edge> edges = to_edge_list(g);
  const std::size_t m = edges.size();
  edges.reserve(2 * m);
  for (std::size_t i = 0; i < m; ++i) {
    edges.push_back({edges[i].dst, edges[i].src});
  }
  BuildOptions opt;
  opt.dedup = true;
  opt.remove_self_loops = true;
  opt.sort_neighbors = true;
  return build_graph(g.num_vertices(), edges, opt);
}

namespace {

/// Runs `values' = update(min-SpMV(map(values)))` rounds to fixpoint.
/// `map` transforms the propagated value (identity for CC, +1 for SSSP).
template <typename SpmvFn, typename MapFn>
AnalyticsResult min_fixpoint(ThreadPool& pool, vid_t n,
                             std::vector<value_t> init, const SpmvFn& spmv,
                             const MapFn& map, unsigned max_rounds) {
  std::vector<value_t> vals = std::move(init);
  std::vector<value_t> x(n), y(n);
  AnalyticsResult result;
  Timer timer;
  for (unsigned round = 0; round < max_rounds; ++round) {
    parallel_for(pool, 0, n,
                 [&](std::uint64_t v, std::size_t) { x[v] = map(vals[v]); });
    spmv(std::span<const value_t>(x), std::span<value_t>(y));
    std::atomic<bool> changed{false};
    parallel_for(pool, 0, n, [&](std::uint64_t v, std::size_t) {
      if (y[v] < vals[v]) {
        vals[v] = y[v];
        changed.store(true, std::memory_order_relaxed);
      }
    });
    ++result.iterations;
    if (!changed.load()) break;
  }
  result.seconds = timer.elapsed_seconds();
  result.values = std::move(vals);
  return result;
}

template <typename MapFn>
AnalyticsResult run_kernel(ThreadPool& pool, const Graph& g,
                           AnalyticsKernel kernel, const IhtlConfig& cfg,
                           std::vector<value_t> init, const MapFn& map,
                           unsigned max_rounds) {
  const vid_t n = g.num_vertices();
  if (kernel == AnalyticsKernel::pull) {
    return min_fixpoint(
        pool, n, std::move(init),
        [&](std::span<const value_t> x, std::span<value_t> y) {
          spmv_pull<MinMonoid>(pool, g, x, y);
        },
        map, max_rounds);
  }
  // iHTL: permute into the relabeled space, iterate, permute back.
  Timer prep;
  const IhtlGraph ig = build_ihtl_graph(g, cfg);
  IhtlEngine<MinMonoid> engine(ig, pool, cfg.push_policy);
  const double prep_s = prep.elapsed_seconds();
  const auto& o2n = ig.old_to_new();
  std::vector<value_t> init_new(n);
  for (vid_t v = 0; v < n; ++v) init_new[o2n[v]] = init[v];
  AnalyticsResult result = min_fixpoint(
      pool, n, std::move(init_new),
      [&](std::span<const value_t> x, std::span<value_t> y) {
        engine.spmv(x, y);
      },
      map, max_rounds);
  std::vector<value_t> back(n);
  for (vid_t v = 0; v < n; ++v) back[v] = result.values[o2n[v]];
  result.values = std::move(back);
  result.preprocessing_seconds = prep_s;
  return result;
}

/// Batched min fixpoint over a vertex-major n×k value array: one SpMV per
/// round advances all k lanes; the round loop ends when no lane improves
/// anywhere. `spmv(x, y)` must be a batched min-SpMV over n×k arrays.
template <typename SpmvFn>
AnalyticsResult min_fixpoint_batch(ThreadPool& pool, vid_t n, std::size_t k,
                                   std::vector<value_t> init,
                                   const SpmvFn& spmv, unsigned max_rounds) {
  std::vector<value_t> vals = std::move(init);
  std::vector<value_t> x(vals.size()), y(vals.size());
  AnalyticsResult result;
  Timer timer;
  for (unsigned round = 0; round < max_rounds; ++round) {
    parallel_for(pool, 0, n, [&](std::uint64_t v, std::size_t) {
      for (std::size_t lane = 0; lane < k; ++lane) {
        x[v * k + lane] = vals[v * k + lane] + 1.0;
      }
    });
    spmv(std::span<const value_t>(x), std::span<value_t>(y));
    std::atomic<bool> changed{false};
    parallel_for(pool, 0, n, [&](std::uint64_t v, std::size_t) {
      bool improved = false;
      for (std::size_t lane = 0; lane < k; ++lane) {
        const std::size_t i = v * k + lane;
        if (y[i] < vals[i]) {
          vals[i] = y[i];
          improved = true;
        }
      }
      if (improved) changed.store(true, std::memory_order_relaxed);
    });
    ++result.iterations;
    if (!changed.load()) break;
  }
  result.seconds = timer.elapsed_seconds();
  result.values = std::move(vals);
  return result;
}

}  // namespace

AnalyticsResult bfs_multi_source(ThreadPool& pool, const Graph& g,
                                 std::span<const vid_t> sources,
                                 AnalyticsKernel kernel,
                                 const IhtlConfig& cfg) {
  const vid_t n = g.num_vertices();
  const std::size_t k = sources.size();
  if (n == 0 || k == 0) return {};
  std::vector<value_t> init(static_cast<std::size_t>(n) * k,
                            MinMonoid::identity());
  const unsigned max_rounds = n;
  if (kernel == AnalyticsKernel::pull) {
    for (std::size_t lane = 0; lane < k; ++lane) {
      init[static_cast<std::size_t>(sources[lane] % n) * k + lane] = 0.0;
    }
    return min_fixpoint_batch(
        pool, n, k, std::move(init),
        [&](std::span<const value_t> x, std::span<value_t> y) {
          spmv_pull_batch<MinMonoid>(pool, g, x, y, k);
        },
        max_rounds);
  }
  // iHTL: iterate in the relabeled space, rows moving as k-lane blocks.
  Timer prep;
  const IhtlGraph ig = build_ihtl_graph(g, cfg);
  IhtlEngine<MinMonoid> engine(ig, pool, cfg.push_policy);
  const double prep_s = prep.elapsed_seconds();
  const auto& o2n = ig.old_to_new();
  for (std::size_t lane = 0; lane < k; ++lane) {
    init[static_cast<std::size_t>(o2n[sources[lane] % n]) * k + lane] = 0.0;
  }
  AnalyticsResult result = min_fixpoint_batch(
      pool, n, k, std::move(init),
      [&](std::span<const value_t> x, std::span<value_t> y) {
        engine.spmv_batch(x, y, k);
      },
      max_rounds);
  std::vector<value_t> back(result.values.size());
  for (vid_t v = 0; v < n; ++v) {
    const std::size_t src = static_cast<std::size_t>(o2n[v]) * k;
    const std::size_t dst = static_cast<std::size_t>(v) * k;
    for (std::size_t lane = 0; lane < k; ++lane) {
      back[dst + lane] = result.values[src + lane];
    }
  }
  result.values = std::move(back);
  result.preprocessing_seconds = prep_s;
  return result;
}

AnalyticsResult connected_components(ThreadPool& pool, const Graph& g,
                                     AnalyticsKernel kernel,
                                     const IhtlConfig& cfg) {
  const vid_t n = g.num_vertices();
  std::vector<value_t> init(n);
  for (vid_t v = 0; v < n; ++v) init[v] = static_cast<value_t>(v);
  return run_kernel(
      pool, g, kernel, cfg, std::move(init),
      [](value_t label) { return label; }, n ? n : 1);
}

AnalyticsResult sssp_unit(ThreadPool& pool, const Graph& g, vid_t source,
                          AnalyticsKernel kernel, const IhtlConfig& cfg) {
  const vid_t n = g.num_vertices();
  std::vector<value_t> init(n, MinMonoid::identity());
  if (source < n) init[source] = 0.0;
  return run_kernel(
      pool, g, kernel, cfg, std::move(init),
      [](value_t d) { return d + 1.0; }, n ? n : 1);
}

}  // namespace ihtl
