#include "apps/pagerank.h"

#include <cmath>
#include <optional>
#include <stdexcept>

#include "baselines/spmv.h"
#include "core/ihtl_spmv.h"
#include "core/sharded_engine.h"
#include "parallel/timer.h"

namespace ihtl {

std::string kernel_name(SpmvKernel k) {
  switch (k) {
    case SpmvKernel::pull:
      return "pull";
    case SpmvKernel::pull_edge_balanced:
      return "pull-edge-balanced";
    case SpmvKernel::segmented_pull:
      return "segmented-pull";
    case SpmvKernel::push_atomic:
      return "push-atomic";
    case SpmvKernel::push_buffered:
      return "push-buffered";
    case SpmvKernel::push_partitioned:
      return "push-partitioned";
    case SpmvKernel::ihtl:
      return "ihtl";
  }
  return "unknown";
}

namespace {

/// Shared iteration driver: `spmv(x, y)` computes the plus-SpMV; the driver
/// handles contribution scaling and the damping update.
template <typename SpmvFn>
PageRankResult run_pagerank(ThreadPool& pool, std::span<const eid_t> out_deg,
                            vid_t n, const PageRankOptions& opt,
                            const SpmvFn& spmv) {
  std::vector<value_t> pr(n, n ? 1.0 / n : 0.0);
  std::vector<value_t> x(n), y(n);
  const value_t base = n ? (1.0 - opt.damping) / n : 0.0;

  PageRankResult result;
  Timer timer;
  for (unsigned it = 0; it < opt.iterations; ++it) {
    parallel_for(pool, 0, n, [&](std::uint64_t v, std::size_t) {
      x[v] = out_deg[v] ? opt.damping * pr[v] / out_deg[v] : 0.0;
    });
    spmv(std::span<const value_t>(x), std::span<value_t>(y));
    ++result.iterations_run;
    if (opt.tolerance > 0.0) {
      // Convergence-based termination: L1 norm of the rank change.
      const double delta = parallel_reduce<double>(
          pool, 0, n, 0.0,
          [&](std::uint64_t v, std::size_t) {
            const value_t next = base + y[v];
            const double d = std::abs(next - pr[v]);
            pr[v] = next;
            return d;
          },
          [](double a, double b) { return a + b; });
      if (delta < opt.tolerance) break;
    } else {
      parallel_for(pool, 0, n,
                   [&](std::uint64_t v, std::size_t) { pr[v] = base + y[v]; });
    }
  }
  result.seconds_per_iteration =
      result.iterations_run
          ? timer.elapsed_seconds() / result.iterations_run
          : 0.0;
  result.ranks = std::move(pr);
  return result;
}

std::vector<eid_t> out_degrees(const Graph& g) {
  std::vector<eid_t> deg(g.num_vertices());
  for (vid_t v = 0; v < g.num_vertices(); ++v) deg[v] = g.out_degree(v);
  return deg;
}

}  // namespace

PageRankResult pagerank_ihtl(ThreadPool& pool, const Graph& g,
                             const IhtlGraph& ig, const PageRankOptions& opt) {
  const vid_t n = g.num_vertices();
  const auto& o2n = ig.old_to_new();
  // Out-degrees permuted into the relabeled space; all iterations run there.
  std::vector<eid_t> deg_new(n);
  for (vid_t v = 0; v < n; ++v) deg_new[o2n[v]] = g.out_degree(v);

  PageRankResult result;
  if (opt.shards > 1) {
    ShardedEngine<PlusMonoid> engine(ig, pool, opt.shards,
                                     opt.ihtl.push_policy);
    result = run_pagerank(pool, deg_new, n, opt,
                          [&](std::span<const value_t> x,
                              std::span<value_t> y) { engine.spmv(x, y); });
  } else {
    IhtlEngine<PlusMonoid> engine(ig, pool, opt.ihtl.push_policy);
    result = run_pagerank(pool, deg_new, n, opt,
                          [&](std::span<const value_t> x,
                              std::span<value_t> y) { engine.spmv(x, y); });
  }
  // Back to original IDs.
  std::vector<value_t> ranks(n);
  for (vid_t v = 0; v < n; ++v) ranks[v] = result.ranks[o2n[v]];
  result.ranks = std::move(ranks);
  return result;
}

PageRankResult pagerank_personalized_batch(ThreadPool& pool, const Graph& g,
                                           const IhtlGraph& ig,
                                           std::span<const vid_t> sources,
                                           const PageRankOptions& opt) {
  const vid_t n = g.num_vertices();
  const std::size_t k = sources.size();
  PageRankResult result;
  if (n == 0 || k == 0) return result;
  const auto& o2n = ig.old_to_new();
  std::vector<eid_t> deg_new(n);
  for (vid_t v = 0; v < n; ++v) deg_new[o2n[v]] = g.out_degree(v);

  // One-hot restart per lane: lane l's mass re-enters only at sources[l]
  // (taken modulo n, matching the oracle's source handling).
  std::vector<value_t> base(static_cast<std::size_t>(n) * k, 0.0);
  std::vector<value_t> pr(base.size(), 0.0);
  for (std::size_t lane = 0; lane < k; ++lane) {
    const std::size_t row = static_cast<std::size_t>(o2n[sources[lane] % n]);
    base[row * k + lane] = 1.0 - opt.damping;
    pr[row * k + lane] = 1.0;
  }

  // Both engines expose the same (x, y, k) batched call; pick once here so
  // the iteration loop stays engine-agnostic.
  std::optional<IhtlEngine<PlusMonoid>> unsharded;
  std::optional<ShardedEngine<PlusMonoid>> sharded;
  if (opt.shards > 1) {
    sharded.emplace(ig, pool, opt.shards, opt.ihtl.push_policy);
  } else {
    unsharded.emplace(ig, pool, opt.ihtl.push_policy);
  }
  std::vector<value_t> x(pr.size()), y(pr.size());
  Timer timer;
  for (unsigned it = 0; it < opt.iterations; ++it) {
    parallel_for(pool, 0, n, [&](std::uint64_t v, std::size_t) {
      const value_t scale =
          deg_new[v] ? opt.damping / static_cast<value_t>(deg_new[v]) : 0.0;
      for (std::size_t lane = 0; lane < k; ++lane) {
        x[v * k + lane] = pr[v * k + lane] * scale;
      }
    });
    if (sharded) {
      sharded->spmv_batch(x, y, k);
    } else {
      unsharded->spmv_batch(x, y, k);
    }
    ++result.iterations_run;
    if (opt.tolerance > 0.0) {
      const double delta = parallel_reduce<double>(
          pool, 0, n, 0.0,
          [&](std::uint64_t v, std::size_t) {
            double d = 0.0;
            for (std::size_t lane = 0; lane < k; ++lane) {
              const std::size_t i = v * k + lane;
              const value_t next = base[i] + y[i];
              d += std::abs(next - pr[i]);
              pr[i] = next;
            }
            return d;
          },
          [](double a, double b) { return a + b; });
      if (delta < opt.tolerance * static_cast<double>(k)) break;
    } else {
      parallel_for(pool, 0, n, [&](std::uint64_t v, std::size_t) {
        for (std::size_t lane = 0; lane < k; ++lane) {
          const std::size_t i = v * k + lane;
          pr[i] = base[i] + y[i];
        }
      });
    }
  }
  result.seconds_per_iteration =
      result.iterations_run ? timer.elapsed_seconds() / result.iterations_run
                            : 0.0;
  // Back to original IDs, lane rows moving as contiguous blocks.
  result.ranks.resize(pr.size());
  for (vid_t v = 0; v < n; ++v) {
    const std::size_t src = static_cast<std::size_t>(o2n[v]) * k;
    const std::size_t dst = static_cast<std::size_t>(v) * k;
    for (std::size_t lane = 0; lane < k; ++lane) {
      result.ranks[dst + lane] = pr[src + lane];
    }
  }
  return result;
}

PageRankResult pagerank(ThreadPool& pool, const Graph& g, SpmvKernel kernel,
                        const PageRankOptions& opt) {
  const vid_t n = g.num_vertices();
  const std::vector<eid_t> deg = out_degrees(g);

  switch (kernel) {
    case SpmvKernel::pull:
      return run_pagerank(pool, deg, n, opt,
                          [&](std::span<const value_t> x,
                              std::span<value_t> y) { spmv_pull(pool, g, x, y); });
    case SpmvKernel::pull_edge_balanced:
      return run_pagerank(
          pool, deg, n, opt,
          [&](std::span<const value_t> x, std::span<value_t> y) {
            spmv_pull_edge_balanced(pool, g, x, y);
          });
    case SpmvKernel::push_atomic:
      return run_pagerank(
          pool, deg, n, opt,
          [&](std::span<const value_t> x, std::span<value_t> y) {
            spmv_push_atomic(pool, g, x, y);
          });
    case SpmvKernel::push_buffered:
      return run_pagerank(
          pool, deg, n, opt,
          [&](std::span<const value_t> x, std::span<value_t> y) {
            spmv_push_buffered(pool, g, x, y);
          });
    case SpmvKernel::push_partitioned: {
      const std::size_t parts =
          opt.push_partitions ? opt.push_partitions : pool.size() * 4;
      Timer prep;
      DestinationPartitionedPush push(g, parts);
      const double prep_s = prep.elapsed_seconds();
      PageRankResult result = run_pagerank(
          pool, deg, n, opt,
          [&](std::span<const value_t> x, std::span<value_t> y) {
            push.run(pool, x, y);
          });
      result.preprocessing_seconds = prep_s;
      return result;
    }
    case SpmvKernel::segmented_pull: {
      const std::size_t seg_bytes =
          opt.segment_bytes ? opt.segment_bytes : (256u << 10);
      const auto seg_vertices =
          static_cast<vid_t>(std::max<std::size_t>(1, seg_bytes / sizeof(value_t)));
      Timer prep;
      SegmentedPull pull(g, seg_vertices);
      const double prep_s = prep.elapsed_seconds();
      PageRankResult result = run_pagerank(
          pool, deg, n, opt,
          [&](std::span<const value_t> x, std::span<value_t> y) {
            pull.run(pool, x, y);
          });
      result.preprocessing_seconds = prep_s;
      return result;
    }
    case SpmvKernel::ihtl: {
      Timer prep;
      const IhtlGraph ig = build_ihtl_graph(g, opt.ihtl);
      const double prep_s = prep.elapsed_seconds();
      PageRankResult result = pagerank_ihtl(pool, g, ig, opt);
      result.preprocessing_seconds = prep_s;
      return result;
    }
  }
  throw std::invalid_argument("unknown SpmvKernel");
}

}  // namespace ihtl
