// PageRank — the paper's evaluation application (Section 4.1):
//     PR_v = 0.15/n + 0.85 * sum over u in N-(v) of PR_u / |N+(u)|
// computed iteratively with any of the traversal kernels. Results are always
// returned in the ORIGINAL vertex-ID space regardless of kernel, so every
// variant is directly comparable.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/ihtl_config.h"
#include "core/ihtl_graph.h"
#include "graph/graph.h"
#include "parallel/thread_pool.h"

namespace ihtl {

/// Which traversal implements the per-iteration SpMV. The mapping to the
/// paper's frameworks (Figure 7) is documented per enumerator.
enum class SpmvKernel {
  pull,                 ///< plain pull (Galois-style)
  pull_edge_balanced,   ///< edge-balanced partitioned pull (GraphGrind pull)
  segmented_pull,       ///< Cagra-style source-blocked pull (GraphIt pull)
  push_atomic,          ///< atomic push (GraphIt push)
  push_buffered,        ///< per-thread full-copy buffered push (X-Stream)
  push_partitioned,     ///< destination-partitioned push (GraphGrind push)
  ihtl,                 ///< this paper: flipped-block push + sparse pull
};

/// Human-readable kernel name (used by benches and examples).
std::string kernel_name(SpmvKernel k);

struct PageRankOptions {
  double damping = 0.85;
  unsigned iterations = 20;  ///< maximum iterations
  /// If > 0, stop once the L1 norm of the rank change falls below this
  /// (convergence-based termination; `iterations` becomes a cap).
  double tolerance = 0.0;
  /// Used only by SpmvKernel::ihtl.
  IhtlConfig ihtl;
  /// Used only by the iHTL paths: 1 runs the unsharded IhtlEngine; >= 2
  /// runs the destination-range ShardedEngine with this many shards.
  std::size_t shards = 1;
  /// Used only by push_partitioned (0 = 4x threads).
  std::size_t push_partitions = 0;
  /// Used only by segmented_pull: bytes of source vertex data per segment
  /// (0 = 256 KiB).
  std::size_t segment_bytes = 0;
};

struct PageRankResult {
  std::vector<value_t> ranks;       ///< original-ID space
  unsigned iterations_run = 0;      ///< actual iterations executed
  double seconds_per_iteration = 0; ///< SpMV iterations only
  double preprocessing_seconds = 0; ///< kernel-specific structure build
};

/// Runs PageRank with the chosen kernel. Preprocessed structures (iHTL
/// graph, push partitions, pull segments) are built internally and their
/// build time reported separately.
PageRankResult pagerank(ThreadPool& pool, const Graph& g, SpmvKernel kernel,
                        const PageRankOptions& opt = {});

/// Variant reusing an already-built iHTL graph (preprocessing amortized, as
/// when the iHTL binary format is loaded from disk — Section 4.2).
PageRankResult pagerank_ihtl(ThreadPool& pool, const Graph& g,
                             const IhtlGraph& ig,
                             const PageRankOptions& opt = {});

/// Batched personalized PageRank on the iHTL engine: lane l restarts into
/// sources[l] (one-hot personalization), and every iteration advances all
/// k = sources.size() lanes with a single batched SpMV traversal. `ranks`
/// comes back as a vertex-major n×k array in the original ID space (lane l
/// of vertex v at v*k + l). With tolerance > 0 the iteration stops once the
/// summed L1 rank change across all lanes falls below tolerance * k (the
/// per-lane average of the scalar criterion).
PageRankResult pagerank_personalized_batch(ThreadPool& pool, const Graph& g,
                                           const IhtlGraph& ig,
                                           std::span<const vid_t> sources,
                                           const PageRankOptions& opt = {});

}  // namespace ihtl
