#include "telemetry/event_log.h"

#include <chrono>
#include <utility>

namespace ihtl::telemetry {

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::debug:
      return "debug";
    case LogLevel::info:
      return "info";
    case LogLevel::warn:
      return "warn";
    case LogLevel::error:
      return "error";
  }
  return "?";
}

EventLog::EventLog(std::size_t capacity)
    : capacity_(capacity ? capacity : 1) {
  ring_.resize(capacity_);
}

void EventLog::set_min_level(LogLevel level) {
  std::lock_guard<std::mutex> lock(mutex_);
  min_level_ = level;
}

LogLevel EventLog::min_level() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return min_level_;
}

bool EventLog::open_sink(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  sink_.open(path, std::ios::out | std::ios::app);
  return sink_.is_open();
}

void EventLog::log(LogLevel level, const std::string& event,
                   JsonValue fields) {
  const auto ts_ms = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  std::lock_guard<std::mutex> lock(mutex_);
  if (level < min_level_) return;
  Entry& slot = ring_[head_ % capacity_];
  slot.seq = head_;
  slot.ts_ms = ts_ms;
  slot.level = level;
  slot.event = event;
  slot.fields = std::move(fields);
  ++head_;
  if (sink_.is_open()) {
    sink_ << to_json(slot).dump(0) << '\n';
    sink_.flush();
  }
}

std::uint64_t EventLog::recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return head_;
}

std::uint64_t EventLog::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return head_ > capacity_ ? head_ - capacity_ : 0;
}

JsonValue EventLog::to_json(const Entry& e) {
  JsonValue out = JsonValue::object();
  out.set("seq", e.seq);
  out.set("ts_ms", e.ts_ms);
  out.set("level", log_level_name(e.level));
  out.set("event", e.event);
  if (e.fields.is_object()) {
    for (const auto& [k, v] : e.fields.entries()) out.set(k, v);
  }
  return out;
}

JsonValue EventLog::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  JsonValue out = JsonValue::array();
  const std::uint64_t n = head_ < capacity_ ? head_ : capacity_;
  const std::uint64_t first = head_ - n;
  for (std::uint64_t i = 0; i < n; ++i) {
    out.push_back(to_json(ring_[(first + i) % capacity_]));
  }
  return out;
}

std::uint64_t EventLog::count_event(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t n = head_ < capacity_ ? head_ : capacity_;
  std::uint64_t hits = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    if (ring_[i].event == name) ++hits;
  }
  return hits;
}

}  // namespace ihtl::telemetry
