#include "telemetry/metrics.h"

#include <thread>

#include "telemetry/trace.h"

namespace ihtl::telemetry {

MetricsRegistry::MetricsRegistry(std::size_t shards) : shards_(shards) {
  if (shards_ == 0) {
    shards_ = std::thread::hardware_concurrency();
    if (shards_ == 0) shards_ = 1;
  }
}

Counter MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(name, std::make_unique<detail::CounterShards>(shards_))
             .first;
  }
  return Counter(it->second.get());
}

TimerStat MetricsRegistry::timer(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = timers_.find(path);
  if (it == timers_.end()) {
    it = timers_.emplace(path, std::make_unique<detail::TimerCells>()).first;
  }
  return TimerStat(it->second.get());
}

void MetricsRegistry::set_gauge(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  gauges_[name] = value;
}

std::uint64_t MetricsRegistry::counter_total(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  if (it == counters_.end()) return 0;
  std::uint64_t sum = 0;
  for (const auto& c : it->second->cells) {
    sum += c.value.load(std::memory_order_relaxed);
  }
  return sum;
}

SpanStats MetricsRegistry::to_stats(const detail::TimerCells& c) {
  SpanStats s;
  s.count = c.count.load(std::memory_order_relaxed);
  s.total_s = static_cast<double>(c.total_ns.load(std::memory_order_relaxed)) * 1e-9;
  if (s.count > 0) {
    s.min_s = static_cast<double>(c.min_ns.load(std::memory_order_relaxed)) * 1e-9;
    s.max_s = static_cast<double>(c.max_ns.load(std::memory_order_relaxed)) * 1e-9;
  }
  return s;
}

std::optional<SpanStats> MetricsRegistry::span(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = timers_.find(path);
  if (it == timers_.end()) return std::nullopt;
  return to_stats(*it->second);
}

std::optional<double> MetricsRegistry::gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  if (it == gauges_.end()) return std::nullopt;
  return it->second;
}

std::map<std::string, std::uint64_t> MetricsRegistry::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, shards] : counters_) {
    std::uint64_t sum = 0;
    for (const auto& c : shards->cells) {
      sum += c.value.load(std::memory_order_relaxed);
    }
    out.emplace(name, sum);
  }
  return out;
}

std::map<std::string, SpanStats> MetricsRegistry::spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, SpanStats> out;
  for (const auto& [path, cells] : timers_) {
    out.emplace(path, to_stats(*cells));
  }
  return out;
}

std::map<std::string, double> MetricsRegistry::gauges() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return gauges_;
}

void MetricsRegistry::add_hw(const std::string& path,
                             const PerfCounterValues& delta) {
  if (!delta.available) return;
  std::lock_guard<std::mutex> lock(mutex_);
  HwStats& stats = hw_[path];
  stats.sum.accumulate(delta);
  ++stats.samples;
}

std::optional<HwStats> MetricsRegistry::hw_stats(
    const std::string& path) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = hw_.find(path);
  if (it == hw_.end()) return std::nullopt;
  return it->second;
}

void MetricsRegistry::set_hw_status(bool available, std::string reason) {
  std::lock_guard<std::mutex> lock(mutex_);
  hw_status_ = {available, std::move(reason)};
}

std::optional<std::pair<bool, std::string>> MetricsRegistry::hw_status()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hw_status_;
}

std::map<std::string, HwStats> MetricsRegistry::hw() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hw_;
}

void MetricsRegistry::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, shards] : counters_) {
    for (auto& c : shards->cells) c.value.store(0, std::memory_order_relaxed);
  }
  for (auto& [path, cells] : timers_) {
    cells->count.store(0, std::memory_order_relaxed);
    cells->total_ns.store(0, std::memory_order_relaxed);
    cells->min_ns.store(~std::uint64_t{0}, std::memory_order_relaxed);
    cells->max_ns.store(0, std::memory_order_relaxed);
  }
  gauges_.clear();
  hw_.clear();
  hw_status_.reset();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry reg;
  return reg;
}

namespace {

/// Per-thread stack of open span names; joined with '/' at record time.
thread_local std::vector<std::string> t_span_path;

std::string joined_path() {
  std::string path;
  for (const std::string& part : t_span_path) {
    if (!path.empty()) path += '/';
    path += part;
  }
  return path;
}

}  // namespace

ScopedSpan::ScopedSpan(MetricsRegistry* reg, std::string_view name)
    : reg_(reg), start_(clock::now()) {
  t_span_path.emplace_back(name);
  if (reg_ && perf::available()) hw_start_ = perf::snapshot_this_thread();
  if ((trace_ = TraceBuffer::active())) trace_start_ns_ = trace_->now_ns();
}

double ScopedSpan::stop() {
  if (!open_) return 0.0;
  open_ = false;
  const double elapsed =
      std::chrono::duration<double>(clock::now() - start_).count();
  if (reg_ || trace_) {
    const std::string path = joined_path();
    if (reg_) {
      reg_->record_span(path, elapsed);
      if (hw_start_.available) {
        reg_->add_hw(path,
                     perf::snapshot_this_thread().delta_since(hw_start_));
      }
    }
    // Only record into the buffer that was active at construction — a
    // buffer swapped mid-span would give the event a foreign time base.
    if (trace_ && TraceBuffer::active() == trace_) {
      trace_->record(TraceEventKind::span, trace_->intern(path),
                     trace_start_ns_, trace_->now_ns() - trace_start_ns_);
    }
  }
  t_span_path.pop_back();
  return elapsed;
}

}  // namespace ihtl::telemetry
