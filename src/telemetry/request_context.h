// RequestContext: the per-request observability record threaded through
// the serve pipeline.
//
// One context is created per accepted frame (with a monotonically-
// increasing request id) and handed by pointer through parse → admission
// queue → batch flush → cache → serialize. Each stage deposits its phase
// latency into the matching field; the handler thread folds the finished
// context into the per-op-class phase histograms and (when the total
// crosses the slow-request threshold) into the event log.
//
// Thread-safety: the fields are plain integers, NOT atomics. The handler
// thread writes cache/serialize/total; the dispatch thread writes
// queue/compute — but the two never race, because the handler blocks on
// the batcher future while the dispatch thread runs, and promise::set_value
// happens-before future::get() returns. The request id is also the flow id
// stamped onto TraceBuffer flow events (truncated to 32 bits there).
#pragma once

#include <cstdint>

namespace ihtl::telemetry {

struct RequestContext {
  std::uint64_t id = 0;      ///< monotone per-server request id (1-based)
  const char* op = "";       ///< stable op-class name ("ppr", "update", ...)
  std::uint64_t queue_ns = 0;      ///< admission-queue wait before flush
  std::uint64_t compute_ns = 0;    ///< the group's traversal (shared by all
                                   ///< requests coalesced into the flush)
  std::uint64_t cache_ns = 0;      ///< result-cache lookup + insert
  std::uint64_t serialize_ns = 0;  ///< response build + frame write
  std::uint64_t total_ns = 0;      ///< frame receipt to response written
  bool cache_hit = false;

  std::uint64_t phase_sum_ns() const {
    return queue_ns + compute_ns + cache_ns + serialize_ns;
  }
};

}  // namespace ihtl::telemetry
